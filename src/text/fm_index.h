// FM-index: the static compressed index I_s plugged into the paper's
// Transformations. Backward search over a wavelet tree on the BWT, suffix
// array sampled every `sample_rate` text positions (the paper's parameter s).
//
//   Find      : trange  = O(|P| log sigma)
//   Locate    : tlocate = O(s log sigma) per occurrence
//   Extract   : textract= O((s + l) log sigma)
//   ForEachDocRow (deletion support): O(1) LF-steps per suffix from the
//     stored separator row (the paper's tSA hook).
#ifndef DYNDEX_TEXT_FM_INDEX_H_
#define DYNDEX_TEXT_FM_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "bits/rank_select.h"
#include "seq/wavelet_tree.h"
#include "text/concat_text.h"
#include "text/row_range.h"
#include "util/int_vector.h"

namespace dyndex {

/// Compressed full-text index over a document concatenation.
class FmIndex {
 public:
  struct Options {
    /// SA sample rate s: every s-th text position is sampled. Smaller s means
    /// faster locate/extract and more space — the Table 1 trade-off knob.
    uint32_t sample_rate = 32;
  };

  FmIndex() = default;

  /// Builds the index in O(n) time and O(n log sigma) working space.
  static FmIndex Build(const ConcatText& text, const Options& options);

  /// Number of suffix-array rows (text size + 1 for the sentinel).
  uint64_t NumRows() const { return wt_.size(); }
  /// Concatenation length (excluding the sentinel).
  uint64_t TextSize() const { return wt_.size() == 0 ? 0 : wt_.size() - 1; }
  uint32_t sigma() const { return sigma_; }
  uint32_t num_docs() const { return static_cast<uint32_t>(starts_.size()); }
  uint64_t doc_start(uint32_t d) const { return starts_[d]; }
  uint64_t doc_len(uint32_t d) const { return lens_[d]; }

  /// Backward search: rows whose suffixes start with `pattern`.
  RowRange Find(const Symbol* pattern, uint64_t len) const;
  RowRange Find(const std::vector<Symbol>& p) const {
    return Find(p.data(), p.size());
  }

  /// Text position of the suffix at `row`. O(s) LF-steps.
  uint64_t Locate(uint64_t row) const;

  /// Extracts text[pos, pos+len) into `out` (appends). O(s + len) LF-steps.
  void Extract(uint64_t pos, uint64_t len, std::vector<Symbol>* out) const;

  /// One backward step: row of the suffix starting one position earlier.
  uint64_t LF(uint64_t row) const {
    auto [c, r] = wt_.InverseSelect(row);
    return c_[c] + r;
  }

  /// Calls fn(row) for every suffix-array row of suffixes starting inside
  /// document d (including its separator suffix): doc_len(d)+1 rows.
  template <typename Fn>
  void ForEachDocRow(uint32_t d, Fn fn) const {
    uint64_t row = sep_rows_.Get(d);
    fn(row);
    for (uint64_t k = 0; k < lens_[d]; ++k) {
      row = LF(row);
      fn(row);
    }
  }

  /// Local document containing text position `pos`; the separator at a
  /// document's end belongs to that document.
  uint32_t DocOfPos(uint64_t pos) const;

  uint64_t SpaceBytes() const;

 private:
  WaveletTree wt_;              // over the BWT
  std::vector<uint64_t> c_;     // C array: rows starting with symbol < c
  RankSelect sampled_;          // rows whose SA value is a multiple of s
  IntVector sa_samples_;        // SA values of sampled rows, in row order
  IntVector inv_samples_;       // inv_samples_[j] = row of suffix at j*s
  IntVector sep_rows_;          // row of each doc's separator suffix
  std::vector<uint64_t> starts_, lens_;
  uint32_t sigma_ = 0;
  uint32_t sample_rate_ = 32;
};

}  // namespace dyndex

#endif  // DYNDEX_TEXT_FM_INDEX_H_
