// Suffix-array row range shared by every static index implementation.
#ifndef DYNDEX_TEXT_ROW_RANGE_H_
#define DYNDEX_TEXT_ROW_RANGE_H_

#include <cstdint>

namespace dyndex {

/// Half-open range of suffix-array rows returned by range-finding.
struct RowRange {
  uint64_t begin = 0;
  uint64_t end = 0;
  uint64_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

}  // namespace dyndex

#endif  // DYNDEX_TEXT_ROW_RANGE_H_
