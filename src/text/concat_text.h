// Symbol conventions and the document-concatenation input to static indexes.
//
// Symbols are uint32 values. Value 0 is the global SA-IS sentinel, value 1 the
// document separator; user symbols start at 2 (byte strings map to 2..257).
// Patterns never contain 0/1, so matches never cross document borders.
#ifndef DYNDEX_TEXT_CONCAT_TEXT_H_
#define DYNDEX_TEXT_CONCAT_TEXT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dyndex {

using Symbol = uint32_t;

inline constexpr Symbol kSentinel = 0;
inline constexpr Symbol kSeparator = 1;
inline constexpr Symbol kMinSymbol = 2;

/// Stable handle of a document within a dynamic collection.
using DocId = uint64_t;
inline constexpr DocId kInvalidDocId = ~0ull;

/// A document: stable id + its symbols (all >= kMinSymbol, non-empty).
struct Document {
  DocId id = kInvalidDocId;
  std::vector<Symbol> symbols;
};

/// Widens a byte string into symbols (byte value + kMinSymbol).
std::vector<Symbol> SymbolsFromString(std::string_view s);

/// Inverse of SymbolsFromString (values must be in [kMinSymbol, 257]).
std::string StringFromSymbols(const std::vector<Symbol>& symbols);

/// Concatenation "doc0 sep doc1 sep ... docm-1 sep" plus boundary metadata.
/// The trailing SA-IS sentinel is appended by index builders, not stored here.
class ConcatText {
 public:
  ConcatText() = default;

  /// Builds the concatenation. Documents must be non-empty with symbols in
  /// [kMinSymbol, 2^32).
  explicit ConcatText(const std::vector<Document>& docs);

  /// Total symbols including one separator per document.
  uint64_t size() const { return symbols_.size(); }
  uint32_t num_docs() const { return static_cast<uint32_t>(starts_.size()); }
  /// Alphabet bound: max symbol value + 1 (>= 2).
  uint32_t sigma() const { return sigma_; }

  const std::vector<Symbol>& symbols() const { return symbols_; }
  uint64_t doc_start(uint32_t local_doc) const { return starts_[local_doc]; }
  /// Length excluding the separator.
  uint64_t doc_len(uint32_t local_doc) const { return lens_[local_doc]; }
  const std::vector<uint64_t>& starts() const { return starts_; }
  const std::vector<uint64_t>& lens() const { return lens_; }

 private:
  std::vector<Symbol> symbols_;
  std::vector<uint64_t> starts_;
  std::vector<uint64_t> lens_;
  uint32_t sigma_ = kMinSymbol;
};

}  // namespace dyndex

#endif  // DYNDEX_TEXT_CONCAT_TEXT_H_
