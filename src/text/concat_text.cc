#include "text/concat_text.h"

#include "util/check.h"

namespace dyndex {

std::vector<Symbol> SymbolsFromString(std::string_view s) {
  std::vector<Symbol> out;
  out.reserve(s.size());
  for (unsigned char c : s) out.push_back(static_cast<Symbol>(c) + kMinSymbol);
  return out;
}

std::string StringFromSymbols(const std::vector<Symbol>& symbols) {
  std::string out;
  out.reserve(symbols.size());
  for (Symbol s : symbols) {
    DYNDEX_CHECK(s >= kMinSymbol && s < kMinSymbol + 256);
    out.push_back(static_cast<char>(s - kMinSymbol));
  }
  return out;
}

ConcatText::ConcatText(const std::vector<Document>& docs) {
  uint64_t total = 0;
  for (const Document& d : docs) total += d.symbols.size() + 1;
  symbols_.reserve(total);
  starts_.reserve(docs.size());
  lens_.reserve(docs.size());
  for (const Document& d : docs) {
    DYNDEX_CHECK(!d.symbols.empty());
    starts_.push_back(symbols_.size());
    lens_.push_back(d.symbols.size());
    for (Symbol s : d.symbols) {
      DYNDEX_CHECK(s >= kMinSymbol);
      if (s + 1 > sigma_) sigma_ = s + 1;
      symbols_.push_back(s);
    }
    symbols_.push_back(kSeparator);
  }
}

}  // namespace dyndex
