#include "text/packed_sa_index.h"

#include <algorithm>

#include "suffix/sais.h"
#include "util/bits.h"
#include "util/check.h"

namespace dyndex {

PackedSaIndex PackedSaIndex::Build(const ConcatText& text,
                                   const Options& options) {
  (void)options;
  PackedSaIndex idx;
  idx.starts_ = text.starts();
  idx.lens_ = text.lens();
  idx.sigma_ = text.sigma();
  idx.width_ = BitWidth(idx.sigma_ - 1);

  std::vector<Symbol> t = text.symbols();
  t.push_back(kSentinel);
  uint64_t n_rows = t.size();
  idx.text_.Reset(n_rows, idx.width_);
  for (uint64_t i = 0; i < n_rows; ++i) idx.text_.Set(i, t[i]);

  std::vector<uint64_t> sa = BuildSuffixArray(t, idx.sigma_);
  uint32_t row_width = BitWidth(n_rows - 1 == 0 ? 1 : n_rows - 1);
  idx.sa_.Reset(n_rows, row_width);
  idx.isa_.Reset(n_rows, row_width);
  for (uint64_t row = 0; row < n_rows; ++row) {
    idx.sa_.Set(row, sa[row]);
    idx.isa_.Set(sa[row], row);
  }
  return idx;
}

uint32_t PackedSaIndex::DocOfPos(uint64_t pos) const {
  auto it = std::upper_bound(starts_.begin(), starts_.end(), pos);
  DYNDEX_DCHECK(it != starts_.begin());
  return static_cast<uint32_t>((it - starts_.begin()) - 1);
}

int PackedSaIndex::CompareSuffix(uint64_t row, const Symbol* pattern,
                                 uint64_t len) const {
  uint64_t pos = sa_.Get(row);
  uint64_t n = NumRows();
  uint64_t avail = n - pos;
  uint32_t per_word = width_ == 0 ? 64 : 64 / width_;
  // Pattern symbols are pre-packed by Find into words; here we compare by
  // re-packing on the fly in chunks of per_word symbols.
  uint64_t i = 0;
  while (i < len) {
    uint32_t chunk = static_cast<uint32_t>(
        std::min<uint64_t>({per_word, len - i, avail > i ? avail - i : 0}));
    if (chunk == 0) return -1;  // suffix exhausted: it is a proper prefix of P
    uint64_t text_bits = text_.GetBits((pos + i) * width_,
                                       chunk * width_);
    uint64_t pat_bits = 0;
    for (uint32_t j = 0; j < chunk; ++j) {
      pat_bits |= static_cast<uint64_t>(pattern[i + j]) << (j * width_);
    }
    if (text_bits != pat_bits) {
      // Locate the first differing symbol within the chunk. Symbols are
      // packed LSB-first, so the lowest differing bit pins the symbol index.
      uint32_t sym = Ctz(text_bits ^ pat_bits) / width_;
      uint64_t tc = (text_bits >> (sym * width_)) & LowMask(width_);
      uint64_t pc = (pat_bits >> (sym * width_)) & LowMask(width_);
      return tc < pc ? -1 : 1;
    }
    i += chunk;
  }
  return 0;  // P is a prefix of the suffix (or equal)
}

RowRange PackedSaIndex::Find(const Symbol* pattern, uint64_t len) const {
  uint64_t n = NumRows();
  if (n == 0) return {0, 0};
  for (uint64_t i = 0; i < len; ++i) {
    if (pattern[i] >= sigma_) return {0, 0};
  }
  // Lower bound: first row with CompareSuffix >= 0.
  uint64_t lo = 0, hi = n;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (CompareSuffix(mid, pattern, len) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  uint64_t begin = lo;
  // Upper bound: first row with CompareSuffix > 0.
  hi = n;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (CompareSuffix(mid, pattern, len) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {begin, lo};
}

void PackedSaIndex::Extract(uint64_t pos, uint64_t len,
                            std::vector<Symbol>* out) const {
  DYNDEX_CHECK(pos + len <= TextSize());
  out->reserve(out->size() + len);
  for (uint64_t i = 0; i < len; ++i) {
    out->push_back(static_cast<Symbol>(text_.Get(pos + i)));
  }
}

uint64_t PackedSaIndex::SpaceBytes() const {
  return text_.SpaceBytes() + sa_.SpaceBytes() + isa_.SpaceBytes() +
         (starts_.capacity() + lens_.capacity()) * sizeof(uint64_t);
}

}  // namespace dyndex
