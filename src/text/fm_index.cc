#include "text/fm_index.h"

#include <algorithm>

#include "suffix/bwt.h"
#include "suffix/sais.h"
#include "util/check.h"

namespace dyndex {

FmIndex FmIndex::Build(const ConcatText& text, const Options& options) {
  FmIndex idx;
  idx.sample_rate_ = options.sample_rate == 0 ? 1 : options.sample_rate;
  idx.starts_ = text.starts();
  idx.lens_ = text.lens();
  idx.sigma_ = text.sigma();

  // Append the sentinel and build the suffix array.
  std::vector<Symbol> t = text.symbols();
  t.push_back(kSentinel);
  uint64_t n_rows = t.size();
  std::vector<uint64_t> sa = BuildSuffixArray(t, idx.sigma_);
  std::vector<Symbol> bwt = BwtFromSuffixArray(t, sa);
  idx.wt_ = WaveletTree(bwt, idx.sigma_);

  // C array.
  idx.c_.assign(idx.sigma_ + 1, 0);
  for (Symbol c : bwt) ++idx.c_[c + 1];
  for (uint32_t c = 1; c <= idx.sigma_; ++c) idx.c_[c] += idx.c_[c - 1];

  // Sampling: rows whose SA value is a multiple of s, in row order, plus the
  // inverse samples for extraction.
  uint32_t s = idx.sample_rate_;
  BitVector sampled(n_rows);
  std::vector<uint64_t> sample_values;
  idx.inv_samples_.Reset((n_rows - 1) / s + 1, BitWidth(n_rows - 1));
  for (uint64_t row = 0; row < n_rows; ++row) {
    if (sa[row] % s == 0) {
      sampled.Set(row, true);
      sample_values.push_back(sa[row]);
      idx.inv_samples_.Set(sa[row] / s, row);
    }
  }
  idx.sampled_.Build(std::move(sampled));
  idx.sa_samples_ = IntVector::Pack(sample_values);

  // Separator rows: scan the SA once; a separator at position p terminates
  // the document whose range contains p.
  uint32_t m = text.num_docs();
  idx.sep_rows_.Reset(m, BitWidth(n_rows == 0 ? 1 : n_rows - 1));
  for (uint64_t row = 0; row < n_rows; ++row) {
    uint64_t pos = sa[row];
    if (pos + 1 < n_rows && t[pos] == kSeparator) {
      idx.sep_rows_.Set(idx.DocOfPos(pos), row);
    }
  }
  return idx;
}

uint32_t FmIndex::DocOfPos(uint64_t pos) const {
  DYNDEX_DCHECK(!starts_.empty());
  auto it = std::upper_bound(starts_.begin(), starts_.end(), pos);
  DYNDEX_DCHECK(it != starts_.begin());
  return static_cast<uint32_t>((it - starts_.begin()) - 1);
}

RowRange FmIndex::Find(const Symbol* pattern, uint64_t len) const {
  uint64_t lo = 0, hi = NumRows();
  for (uint64_t k = len; k > 0; --k) {
    Symbol c = pattern[k - 1];
    if (c >= sigma_) return {0, 0};
    lo = c_[c] + wt_.Rank(c, lo);
    hi = c_[c] + wt_.Rank(c, hi);
    if (lo >= hi) return {0, 0};
  }
  return {lo, hi};
}

uint64_t FmIndex::Locate(uint64_t row) const {
  uint64_t k = 0;
  while (!sampled_.Get(row)) {
    row = LF(row);
    ++k;
  }
  return sa_samples_.Get(sampled_.Rank1(row)) + k;
}

void FmIndex::Extract(uint64_t pos, uint64_t len,
                      std::vector<Symbol>* out) const {
  uint64_t n = TextSize();
  DYNDEX_CHECK(pos + len <= n);
  if (len == 0) return;
  uint64_t target = pos + len;
  uint32_t s = sample_rate_;
  // The nearest sampled text position at or after `target`; position n (the
  // sentinel) is always reachable as row 0.
  uint64_t p = CeilDiv(target, s) * s;
  uint64_t row;
  if (p >= n) {
    p = n;
    row = 0;  // sentinel suffix has the smallest row
  } else {
    row = inv_samples_.Get(p / s);
  }
  std::vector<Symbol> buf(p - pos);
  uint64_t q = p;
  while (q > pos) {
    auto [c, r] = wt_.InverseSelect(row);
    buf[q - 1 - pos] = c;
    row = c_[c] + r;
    --q;
  }
  out->insert(out->end(), buf.begin(), buf.begin() + static_cast<int64_t>(len));
}

uint64_t FmIndex::SpaceBytes() const {
  return wt_.SpaceBytes() + c_.capacity() * sizeof(uint64_t) +
         sampled_.SpaceBytes() + sa_samples_.SpaceBytes() +
         inv_samples_.SpaceBytes() + sep_rows_.SpaceBytes() +
         (starts_.capacity() + lens_.capacity()) * sizeof(uint64_t);
}

}  // namespace dyndex
