// Packed suffix-array index: the engineering surrogate for the Grossi-Vitter
// O(n log sigma)-bit index [22] used by Table 3 of the paper.
//
// The text is bit-packed to ceil(log2 sigma) bits per symbol, so one 64-bit
// word holds Theta(w / log sigma) symbols; binary search compares pattern and
// suffix a word at a time. Query shapes (the Table 3 claims):
//   Find    : O((|P| log sigma / w + 1) * log n) -- sublinear in |P|
//   Locate  : O(1)            (direct SA lookup)
//   Extract : O(l log sigma / w + 1)
// Space is n log n + n log sigma bits (plain SA + ISA + packed text) rather
// than the paper's O(n log sigma); the substitution is recorded in DESIGN.md.
#ifndef DYNDEX_TEXT_PACKED_SA_INDEX_H_
#define DYNDEX_TEXT_PACKED_SA_INDEX_H_

#include <cstdint>
#include <vector>

#include "text/concat_text.h"
#include "text/row_range.h"
#include "util/int_vector.h"

namespace dyndex {

/// Word-packed plain suffix-array index with the same static-index interface
/// as FmIndex, so the Transformations are generic over either.
class PackedSaIndex {
 public:
  struct Options {};  // no knobs: locate/extract are O(1) by construction

  PackedSaIndex() = default;

  static PackedSaIndex Build(const ConcatText& text, const Options& options);

  uint64_t NumRows() const { return sa_.size(); }
  uint64_t TextSize() const { return sa_.size() == 0 ? 0 : sa_.size() - 1; }
  uint32_t sigma() const { return sigma_; }
  uint32_t num_docs() const { return static_cast<uint32_t>(starts_.size()); }
  uint64_t doc_start(uint32_t d) const { return starts_[d]; }
  uint64_t doc_len(uint32_t d) const { return lens_[d]; }

  RowRange Find(const Symbol* pattern, uint64_t len) const;
  RowRange Find(const std::vector<Symbol>& p) const {
    return Find(p.data(), p.size());
  }

  uint64_t Locate(uint64_t row) const { return sa_.Get(row); }

  void Extract(uint64_t pos, uint64_t len, std::vector<Symbol>* out) const;

  template <typename Fn>
  void ForEachDocRow(uint32_t d, Fn fn) const {
    uint64_t start = starts_[d];
    uint64_t end = start + lens_[d];  // separator position
    for (uint64_t p = start; p <= end; ++p) fn(isa_.Get(p));
  }

  uint32_t DocOfPos(uint64_t pos) const;

  uint64_t SpaceBytes() const;

 private:
  IntVector text_;  // packed, includes the trailing sentinel
  IntVector sa_, isa_;
  std::vector<uint64_t> starts_, lens_;
  uint32_t sigma_ = 0;
  uint32_t width_ = 1;

  /// Lexicographic comparison of the suffix at `row` against the pattern:
  /// -1 suffix < P, 0 P is a prefix of the suffix, +1 suffix > P.
  int CompareSuffix(uint64_t row, const Symbol* pattern, uint64_t len) const;
};

}  // namespace dyndex

#endif  // DYNDEX_TEXT_PACKED_SA_INDEX_H_
