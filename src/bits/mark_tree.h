// Hierarchical 64-ary bitmap ("van Emde Boas lite") over a fixed universe.
//
// This is the engineering substitute for the Mortensen-Pagh-Patrascu dynamic
// one-dimensional range-reporting structure [33] used by Lemma 2 of the paper:
// it maintains a set of marked positions under Mark/Unmark and enumerates all
// marked positions in a range in O(1) amortized per reported item with an
// O(log_64 u) additive term (<= 4 levels for u <= 2^24 words, 6 for 2^36).
#ifndef DYNDEX_BITS_MARK_TREE_H_
#define DYNDEX_BITS_MARK_TREE_H_

#include <cstdint>
#include <vector>

#include "util/bits.h"

namespace dyndex {

/// Dynamic set over [0, universe) with successor queries.
class MarkTree {
 public:
  static constexpr uint64_t kNone = ~0ull;

  MarkTree() = default;
  explicit MarkTree(uint64_t universe) { Reset(universe); }

  /// Re-initializes for universe size `universe`, all positions unmarked.
  void Reset(uint64_t universe);

  uint64_t universe() const { return universe_; }

  void Mark(uint64_t i);
  void Unmark(uint64_t i);
  bool IsMarked(uint64_t i) const;

  /// Smallest marked position >= i, or kNone.
  uint64_t NextMarked(uint64_t i) const;

  /// Calls fn(pos) for every marked position in [s, e), in increasing order.
  template <typename Fn>
  void ForEachMarked(uint64_t s, uint64_t e, Fn fn) const {
    uint64_t p = NextMarked(s);
    while (p != kNone && p < e) {
      fn(p);
      p = NextMarked(p + 1);
    }
  }

  uint64_t SpaceBytes() const;

 private:
  // levels_[0] covers positions; levels_[k] has one bit per word of
  // levels_[k-1], set iff that word is non-zero.
  std::vector<std::vector<uint64_t>> levels_;
  uint64_t universe_ = 0;
};

}  // namespace dyndex

#endif  // DYNDEX_BITS_MARK_TREE_H_
