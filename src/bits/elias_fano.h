// Elias-Fano encoding of a monotone sequence. Used for document-boundary maps
// (global text position -> document) and other sparse monotone dictionaries.
#ifndef DYNDEX_BITS_ELIAS_FANO_H_
#define DYNDEX_BITS_ELIAS_FANO_H_

#include <cstdint>
#include <vector>

#include "bits/rank_select.h"
#include "util/int_vector.h"

namespace dyndex {

/// Compressed store of a non-decreasing sequence v_0 <= v_1 <= ... < universe,
/// in ~ m(2 + log(universe/m)) bits, with O(1) access and O(log)-ish
/// predecessor search.
class EliasFano {
 public:
  EliasFano() = default;

  /// Builds from a non-decreasing vector of values < universe.
  EliasFano(const std::vector<uint64_t>& values, uint64_t universe);

  uint64_t size() const { return size_; }
  uint64_t universe() const { return universe_; }

  /// Returns v_i.
  uint64_t Get(uint64_t i) const;

  /// Number of stored values strictly less than x.
  uint64_t RankLess(uint64_t x) const;

  /// Index of the largest value <= x. Requires at least one value <= x.
  uint64_t PredecessorIndex(uint64_t x) const;

  uint64_t SpaceBytes() const { return high_.SpaceBytes() + low_.SpaceBytes(); }

 private:
  RankSelect high_;  // unary-coded high parts: value i at Select1(i) - i
  IntVector low_;
  uint64_t size_ = 0;
  uint64_t universe_ = 0;
  uint32_t low_bits_ = 0;
};

}  // namespace dyndex

#endif  // DYNDEX_BITS_ELIAS_FANO_H_
