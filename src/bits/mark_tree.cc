#include "bits/mark_tree.h"

#include "util/check.h"

namespace dyndex {

void MarkTree::Reset(uint64_t universe) {
  universe_ = universe;
  levels_.clear();
  uint64_t n = universe == 0 ? 1 : universe;
  while (true) {
    uint64_t words = CeilDiv(n, 64);
    levels_.emplace_back(words, 0);
    if (words == 1) break;
    n = words;
  }
}

void MarkTree::Mark(uint64_t i) {
  DYNDEX_DCHECK(i < universe_);
  for (auto& level : levels_) {
    uint64_t word = i >> 6;
    uint64_t mask = 1ull << (i & 63);
    bool was_empty = level[word] == 0;
    level[word] |= mask;
    if (!was_empty) break;  // upper levels already record this word
    i = word;
  }
}

void MarkTree::Unmark(uint64_t i) {
  DYNDEX_DCHECK(i < universe_);
  for (auto& level : levels_) {
    uint64_t word = i >> 6;
    uint64_t mask = 1ull << (i & 63);
    level[word] &= ~mask;
    if (level[word] != 0) break;  // word still non-empty: stop propagating
    i = word;
  }
}

bool MarkTree::IsMarked(uint64_t i) const {
  // Full check: optimistic serve-layer readers can pass a torn index.
  DYNDEX_CHECK(i < universe_);
  return (levels_[0][i >> 6] >> (i & 63)) & 1;
}

uint64_t MarkTree::NextMarked(uint64_t i) const {
  if (i >= universe_) return kNone;
  // Ascend until a level has a set bit at or after the current position
  // within the current word; then descend to the exact position.
  size_t lvl = 0;
  uint64_t pos = i;
  while (true) {
    const auto& level = levels_[lvl];
    uint64_t word = pos >> 6;
    uint32_t bit = static_cast<uint32_t>(pos & 63);
    uint64_t w = word < level.size() ? level[word] & ~LowMask(bit) : 0;
    if (w != 0) {
      pos = word * 64 + Ctz(w);
      // Descend back to level 0.
      while (lvl > 0) {
        --lvl;
        // Torn upper-level word (optimistic readers): keep the descent
        // inside the level instead of indexing past it.
        DYNDEX_CHECK(pos < levels_[lvl].size());
        uint64_t child = levels_[lvl][pos];
        DYNDEX_DCHECK(child != 0);
        pos = pos * 64 + Ctz(child);
      }
      return pos < universe_ ? pos : kNone;
    }
    // Move up one level, to the next word.
    if (lvl + 1 >= levels_.size()) return kNone;
    pos = word + 1;
    ++lvl;
    if (pos >= levels_[lvl].size() * 64) return kNone;
    // At the upper level we must start at bit `word+1`, i.e. skip the word we
    // just exhausted.
  }
}

uint64_t MarkTree::SpaceBytes() const {
  uint64_t total = 0;
  for (const auto& level : levels_) {
    total += level.capacity() * sizeof(uint64_t);
  }
  return total;
}

}  // namespace dyndex
