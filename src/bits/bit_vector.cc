#include "bits/bit_vector.h"

namespace dyndex {

void BitVector::Reset(uint64_t size, bool fill) {
  size_ = size;
  words_.assign(CeilDiv(size, 64) + 1, fill ? ~0ull : 0ull);
  if (fill) {
    // Clear bits beyond `size` so CountOnes and word-level scans stay exact.
    uint64_t last_bits = size & 63;
    uint64_t full_words = size >> 6;
    if (last_bits != 0) {
      words_[full_words] = LowMask(static_cast<uint32_t>(last_bits));
    }
    uint64_t first_clear = full_words + (last_bits ? 1 : 0);
    for (uint64_t w = first_clear; w < words_.size(); ++w) {
      words_[w] = 0;
    }
  }
}

void BitVector::PushBack(bool value) {
  if (CeilDiv(size_ + 1, 64) + 1 > words_.size()) {
    words_.resize(words_.size() + words_.size() / 2 + 2, 0);
  }
  ++size_;
  Set(size_ - 1, value);
}

uint64_t BitVector::CountOnes() const {
  uint64_t total = 0;
  for (uint64_t w : words_) total += Popcount(w);
  return total;
}

}  // namespace dyndex
