#include "bits/rank_select.h"

namespace dyndex {

void RankSelect::Build(BitVector bits) {
  bits_ = std::move(bits);
  uint64_t nwords = CeilDiv(bits_.size(), 64);
  uint64_t nsuper = CeilDiv(nwords, 8) + 1;
  counts_.assign(2 * nsuper, 0);
  uint64_t running = 0;
  for (uint64_t sb = 0; sb < nsuper; ++sb) {
    counts_[2 * sb] = running;
    uint64_t packed = 0;
    uint32_t in_sb = 0;
    for (uint32_t w = 0; w < 8; ++w) {
      uint64_t word_idx = sb * 8 + w;
      if (w > 0) packed |= static_cast<uint64_t>(in_sb) << (9 * (w - 1));
      if (word_idx < nwords) in_sb += Popcount(bits_.word(word_idx));
    }
    counts_[2 * sb + 1] = packed;
    running += in_sb;
  }
  ones_ = running;
}

uint64_t RankSelect::Rank1(uint64_t i) const {
  // Full check: optimistic serve-layer readers can pass a torn index.
  DYNDEX_CHECK(i <= bits_.size());
  if (i == 0) return 0;
  uint64_t word = i >> 6;
  uint64_t sb = word >> 3;
  uint32_t w_in_sb = static_cast<uint32_t>(word & 7);
  uint64_t r = SuperRank(sb) + InSuper(sb, w_in_sb);
  uint32_t bit = static_cast<uint32_t>(i & 63);
  if (bit != 0) r += Popcount(bits_.word(word) & LowMask(bit));
  return r;
}

uint64_t RankSelect::Select1(uint64_t k) const {
  // Full check: a torn rank (k >= ones_) would land the superblock search
  // on the sentinel and read words past the bit storage.
  DYNDEX_CHECK(k < ones_);
  // Binary search over superblocks on absolute rank.
  uint64_t nsuper = counts_.size() / 2;
  uint64_t lo = 0, hi = nsuper - 1;
  while (lo < hi) {
    uint64_t mid = (lo + hi + 1) / 2;
    if (SuperRank(mid) <= k) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  uint64_t sb = lo;
  uint64_t rem = k - SuperRank(sb);
  // Find the word within the superblock using the packed counts.
  uint32_t w = 0;
  while (w + 1 < 8 && InSuper(sb, w + 1) <= rem) ++w;
  rem -= InSuper(sb, w);
  uint64_t word_idx = sb * 8 + w;
  return word_idx * 64 +
         SelectInWord(bits_.word(word_idx), static_cast<uint32_t>(rem));
}

uint64_t RankSelect::Select0(uint64_t k) const {
  DYNDEX_CHECK(k < zeros());  // torn rank; see Select1
  uint64_t nsuper = counts_.size() / 2;
  uint64_t lo = 0, hi = nsuper - 1;
  // Zeros before superblock sb = 512*sb - SuperRank(sb).
  while (lo < hi) {
    uint64_t mid = (lo + hi + 1) / 2;
    if (512 * mid - SuperRank(mid) <= k) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  uint64_t sb = lo;
  uint64_t rem = k - (512 * sb - SuperRank(sb));
  uint32_t w = 0;
  while (w + 1 < 8 && 64u * (w + 1) - InSuper(sb, w + 1) <= rem) ++w;
  rem -= 64u * w - InSuper(sb, w);
  uint64_t word_idx = sb * 8 + w;
  return word_idx * 64 +
         SelectInWord(~bits_.word(word_idx), static_cast<uint32_t>(rem));
}

}  // namespace dyndex
