// Plain uncompressed bit vector with word-level access. The raw storage layer
// under RankSelect, the wavelet tree, and the Lemma-2 live-row reporter.
#ifndef DYNDEX_BITS_BIT_VECTOR_H_
#define DYNDEX_BITS_BIT_VECTOR_H_

#include <cstdint>
#include <vector>

#include "util/bits.h"
#include "util/check.h"

namespace dyndex {

/// Fixed-length mutable bit vector. Bits are numbered 0..size-1, LSB-first
/// within each 64-bit word.
class BitVector {
 public:
  BitVector() = default;

  /// Creates `size` bits, all equal to `fill`.
  explicit BitVector(uint64_t size, bool fill = false) { Reset(size, fill); }

  void Reset(uint64_t size, bool fill = false);

  uint64_t size() const { return size_; }

  bool Get(uint64_t i) const {
    // Full check, not DCHECK: optimistic serve-layer readers can arrive with
    // a torn index; fault into the retry path instead of past words_.
    DYNDEX_CHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(uint64_t i, bool value) {
    DYNDEX_DCHECK(i < size_);
    uint64_t mask = 1ull << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  /// Appends a bit (amortized O(1)).
  void PushBack(bool value);

  /// Number of 64-bit words backing the vector.
  uint64_t num_words() const { return words_.size(); }

  uint64_t word(uint64_t w) const { return words_[w]; }
  uint64_t& mutable_word(uint64_t w) { return words_[w]; }

  /// Total number of 1-bits (O(n/64) scan).
  uint64_t CountOnes() const;

  uint64_t SpaceBytes() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  std::vector<uint64_t> words_;
  uint64_t size_ = 0;
};

}  // namespace dyndex

#endif  // DYNDEX_BITS_BIT_VECTOR_H_
