#include "bits/live_row_reporter.h"

#include "util/check.h"

namespace dyndex {

namespace {

uint64_t CountLiveGeneric(uint64_t s, uint64_t e, uint64_t size,
                          const Fenwick& fenwick,
                          uint64_t (*dead_prefix)(const void*, uint64_t,
                                                  uint32_t),
                          const void* self) {
  DYNDEX_CHECK(s <= e && e <= size);
  if (s == e) return 0;
  // dead(0, x) = fenwick over full blocks + in-block word scan.
  auto dead_before = [&](uint64_t x) -> uint64_t {
    uint64_t block = x / kLiveCountBlock;
    uint64_t d = static_cast<uint64_t>(fenwick.PrefixSum(block));
    uint64_t bit = block * kLiveCountBlock;
    for (uint64_t w = bit >> 6; w * 64 < x; ++w) {
      uint64_t remaining = x - w * 64;
      uint32_t bits = remaining >= 64 ? 64 : static_cast<uint32_t>(remaining);
      d += dead_prefix(self, w, bits);
    }
    return d;
  };
  uint64_t dead = dead_before(e) - dead_before(s);
  return (e - s) - dead;
}

}  // namespace

void LiveBitsPlain::Reset(uint64_t n, bool with_counting) {
  size_ = n;
  dead_ = 0;
  counting_ = with_counting;
  bits_.Reset(n, /*fill=*/true);
  uint64_t nwords = CeilDiv(n == 0 ? 1 : n, 64);
  nonempty_.Reset(nwords);
  for (uint64_t w = 0; w < nwords; ++w) {
    if (bits_.word(w) != 0) nonempty_.Mark(w);
  }
  if (with_counting) {
    dead_fenwick_.Reset(CeilDiv(n == 0 ? 1 : n, kLiveCountBlock));
  } else {
    dead_fenwick_.Reset(0);
  }
}

void LiveBitsPlain::Kill(uint64_t i) {
  DYNDEX_CHECK(i < size_);
  if (!bits_.Get(i)) return;
  bits_.Set(i, false);
  ++dead_;
  uint64_t w = i >> 6;
  if (bits_.word(w) == 0) nonempty_.Unmark(w);
  if (counting_) dead_fenwick_.Add(i / kLiveCountBlock, 1);
}

uint64_t LiveBitsPlain::CountLive(uint64_t s, uint64_t e) const {
  DYNDEX_CHECK(counting_);
  return CountLiveGeneric(
      s, e, size_, dead_fenwick_,
      [](const void* self, uint64_t word, uint32_t bits) {
        return static_cast<const LiveBitsPlain*>(self)->DeadInWordPrefix(
            word, bits);
      },
      this);
}

void LiveBitsSparse::Reset(uint64_t n, bool with_counting) {
  size_ = n;
  dead_ = 0;
  counting_ = with_counting;
  dead_words_.clear();
  if (with_counting) {
    dead_fenwick_.Reset(CeilDiv(n == 0 ? 1 : n, kLiveCountBlock));
  } else {
    dead_fenwick_.Reset(0);
  }
}

void LiveBitsSparse::Kill(uint64_t i) {
  DYNDEX_CHECK(i < size_);
  uint64_t& mask = dead_words_[i >> 6];
  uint64_t bit = 1ull << (i & 63);
  if (mask & bit) return;
  mask |= bit;
  ++dead_;
  if (counting_) dead_fenwick_.Add(i / kLiveCountBlock, 1);
}

uint64_t LiveBitsSparse::CountLive(uint64_t s, uint64_t e) const {
  DYNDEX_CHECK(counting_);
  return CountLiveGeneric(
      s, e, size_, dead_fenwick_,
      [](const void* self, uint64_t word, uint32_t bits) {
        return static_cast<const LiveBitsSparse*>(self)->DeadInWordPrefix(
            word, bits);
      },
      this);
}

}  // namespace dyndex
