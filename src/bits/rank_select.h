// rank9-style constant-time rank and logarithmic select over an immutable
// BitVector. 25% space overhead over the raw bits.
#ifndef DYNDEX_BITS_RANK_SELECT_H_
#define DYNDEX_BITS_RANK_SELECT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "bits/bit_vector.h"

namespace dyndex {

/// Rank/select directory over a bit vector it owns.
///
/// Layout (rank9): for every superblock of 8 words (512 bits) we store the
/// absolute rank before the superblock plus seven 9-bit cumulative in-block
/// counts packed into a second 64-bit word.
class RankSelect {
 public:
  RankSelect() = default;

  /// Takes ownership of `bits` and builds the directory in O(n/64).
  explicit RankSelect(BitVector bits) { Build(std::move(bits)); }

  void Build(BitVector bits);

  uint64_t size() const { return bits_.size(); }
  uint64_t ones() const { return ones_; }
  uint64_t zeros() const { return bits_.size() - ones_; }
  bool Get(uint64_t i) const { return bits_.Get(i); }
  const BitVector& bits() const { return bits_; }

  /// Number of 1-bits in [0, i). O(1).
  uint64_t Rank1(uint64_t i) const;

  /// Number of 0-bits in [0, i). O(1).
  uint64_t Rank0(uint64_t i) const { return i - Rank1(i); }

  /// Position of the k-th (0-based) 1-bit. Requires k < ones(). O(log n).
  uint64_t Select1(uint64_t k) const;

  /// Position of the k-th (0-based) 0-bit. Requires k < zeros(). O(log n).
  uint64_t Select0(uint64_t k) const;

  uint64_t SpaceBytes() const {
    return bits_.SpaceBytes() + counts_.capacity() * sizeof(uint64_t);
  }

 private:
  BitVector bits_;
  // counts_[2*sb] = absolute rank before superblock sb;
  // counts_[2*sb+1] = seven packed 9-bit cumulative counts for words 1..7.
  std::vector<uint64_t> counts_;
  uint64_t ones_ = 0;

  uint64_t SuperRank(uint64_t sb) const { return counts_[2 * sb]; }
  uint32_t InSuper(uint64_t sb, uint32_t word_in_sb) const {
    if (word_in_sb == 0) return 0;
    return static_cast<uint32_t>(
        (counts_[2 * sb + 1] >> (9 * (word_in_sb - 1))) & 0x1FF);
  }
};

}  // namespace dyndex

#endif  // DYNDEX_BITS_RANK_SELECT_H_
