#include "bits/elias_fano.h"

#include "util/check.h"

namespace dyndex {

EliasFano::EliasFano(const std::vector<uint64_t>& values, uint64_t universe) {
  size_ = values.size();
  universe_ = universe;
  if (size_ == 0) {
    high_.Build(BitVector(1));
    return;
  }
  // Choose low bits ~ log2(universe / m).
  low_bits_ = universe > size_
                  ? static_cast<uint32_t>(FloorLog2(universe / size_))
                  : 0;
  low_.Reset(size_, low_bits_);
  BitVector high(size_ + (universe >> low_bits_) + 2);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < size_; ++i) {
    uint64_t v = values[i];
    DYNDEX_CHECK(v >= prev && v < universe);
    prev = v;
    if (low_bits_ > 0) low_.Set(i, v & LowMask(low_bits_));
    high.Set((v >> low_bits_) + i, true);
  }
  high_.Build(std::move(high));
}

uint64_t EliasFano::Get(uint64_t i) const {
  DYNDEX_DCHECK(i < size_);
  uint64_t hi = high_.Select1(i) - i;
  uint64_t lo = low_bits_ > 0 ? low_.Get(i) : 0;
  return (hi << low_bits_) | lo;
}

uint64_t EliasFano::RankLess(uint64_t x) const {
  if (size_ == 0) return 0;
  uint64_t hx = x >> low_bits_;
  // Values with high part < hx all precede; scan bucket hx.
  uint64_t start;  // index of first value with high part >= hx
  if (hx == 0) {
    start = 0;
  } else {
    uint64_t max_h = high_.zeros();
    if (hx > max_h) return size_;
    // After the (hx-1)-th zero there have been Select0(hx-1)-(hx-1)+... ones.
    uint64_t pos = high_.Select0(hx - 1);
    start = pos - (hx - 1);  // number of ones before that zero
  }
  uint64_t i = start;
  while (i < size_ && Get(i) < x && (Get(i) >> low_bits_) == hx) ++i;
  // Values in bucket hx are consecutive; anything after bucket hx is >= x only
  // if its high part > hx, which also means >= x when (x's low part covered).
  if (i < size_ && Get(i) < x) {
    // Can only happen if bucket hx ended and later buckets still hold values
    // < x, which contradicts monotonicity; guard anyway.
    while (i < size_ && Get(i) < x) ++i;
  }
  return i;
}

uint64_t EliasFano::PredecessorIndex(uint64_t x) const {
  uint64_t r = RankLess(x + 1);
  DYNDEX_CHECK(r > 0);
  return r - 1;
}

}  // namespace dyndex
