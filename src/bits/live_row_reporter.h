// Live-row reporters: the data structure V of the paper (Lemmas 2 and 3).
//
// A bit vector B of length n starts as all ones ("all suffix-array rows
// live"). Rows die one at a time (zero(i)); queries enumerate all live rows in
// a range in O(1) per reported row. Two layouts are provided:
//
//  * LiveBitsPlain  -- Lemma 2: stores B itself (n bits) plus a MarkTree over
//    non-empty words (the substitute for the dynamic range-reporting structure
//    of [33]).
//  * LiveBitsSparse -- Lemma 3: stores only the dead positions, grouped per
//    64-bit word in a hash map, so space is proportional to the number of dead
//    rows (O((n/tau) log tau) bits in the paper's accounting) instead of n.
//
// Both layouts optionally carry a Fenwick tree over per-block dead counts,
// which implements the counting augmentation of Theorem 1 (the substitute for
// the dynamic rank structures of [37]/[20]): CountLive(s, e) in O(log n).
#ifndef DYNDEX_BITS_LIVE_ROW_REPORTER_H_
#define DYNDEX_BITS_LIVE_ROW_REPORTER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bits/bit_vector.h"
#include "bits/mark_tree.h"
#include "util/fenwick.h"
#include "util/seq_hash_map.h"

namespace dyndex {

/// Block size (in bits) of the counting Fenwick tree.
inline constexpr uint64_t kLiveCountBlock = 512;

/// Lemma 2 layout: n bits + mark tree over non-empty words.
class LiveBitsPlain {
 public:
  LiveBitsPlain() = default;
  explicit LiveBitsPlain(uint64_t n, bool with_counting = false) {
    Reset(n, with_counting);
  }

  /// All rows live again.
  void Reset(uint64_t n, bool with_counting = false);

  uint64_t size() const { return size_; }
  uint64_t dead_count() const { return dead_; }

  /// Marks row i dead. No-op if already dead.
  void Kill(uint64_t i);

  bool IsLive(uint64_t i) const {
    DYNDEX_DCHECK(i < size_);
    return bits_.Get(i);
  }

  /// Calls fn(row) for each live row in [s, e), increasing order.
  template <typename Fn>
  void ForEachLive(uint64_t s, uint64_t e, Fn fn) const {
    if (s >= e) return;
    uint64_t w = s >> 6;
    uint64_t last_word = (e - 1) >> 6;
    while (w != MarkTree::kNone && w <= last_word) {
      uint64_t word = bits_.word(w);
      if (w == s >> 6) word &= ~LowMask(static_cast<uint32_t>(s & 63));
      if (w == last_word && (e & 63) != 0) {
        word &= LowMask(static_cast<uint32_t>(e & 63));
      }
      while (word != 0) {
        uint32_t b = Ctz(word);
        fn(w * 64 + b);
        word &= word - 1;
      }
      w = nonempty_.NextMarked(w + 1);
    }
  }

  void ReportLive(uint64_t s, uint64_t e, std::vector<uint64_t>* out) const {
    ForEachLive(s, e, [out](uint64_t r) { out->push_back(r); });
  }

  /// Number of live rows in [s, e). Requires counting enabled.
  uint64_t CountLive(uint64_t s, uint64_t e) const;

  bool counting_enabled() const { return counting_; }

  uint64_t SpaceBytes() const {
    return bits_.SpaceBytes() + nonempty_.SpaceBytes() +
           dead_fenwick_.SpaceBytes();
  }

 private:
  BitVector bits_;
  MarkTree nonempty_;  // over word indices
  Fenwick dead_fenwick_;
  uint64_t size_ = 0;
  uint64_t dead_ = 0;
  bool counting_ = false;

  uint64_t DeadInWordPrefix(uint64_t word, uint32_t bits) const {
    if (bits == 0) return 0;
    uint64_t w = ~bits_.word(word) & LowMask(bits);
    // Mask out positions beyond size_.
    uint64_t base = word * 64;
    if (base + bits > size_) {
      uint32_t valid = static_cast<uint32_t>(size_ > base ? size_ - base : 0);
      w &= LowMask(valid);
    }
    return Popcount(w);
  }
};

/// Lemma 3 layout: space proportional to dead rows.
class LiveBitsSparse {
 public:
  LiveBitsSparse() = default;
  explicit LiveBitsSparse(uint64_t n, bool with_counting = false) {
    Reset(n, with_counting);
  }

  void Reset(uint64_t n, bool with_counting = false);

  uint64_t size() const { return size_; }
  uint64_t dead_count() const { return dead_; }

  void Kill(uint64_t i);

  bool IsLive(uint64_t i) const {
    DYNDEX_DCHECK(i < size_);
    const uint64_t* mask = dead_words_.Find(i >> 6);
    if (mask == nullptr) return true;
    return ((*mask >> (i & 63)) & 1) == 0;
  }

  template <typename Fn>
  void ForEachLive(uint64_t s, uint64_t e, Fn fn) const {
    if (s >= e) return;
    for (uint64_t w = s >> 6, last = (e - 1) >> 6; w <= last; ++w) {
      uint64_t word = ~0ull;
      if (const uint64_t* dead = dead_words_.Find(w)) word = ~*dead;
      if (w == s >> 6) word &= ~LowMask(static_cast<uint32_t>(s & 63));
      uint64_t base = w * 64;
      uint64_t limit = e < base + 64 ? e : base + 64;
      if (limit < base + 64) {
        word &= LowMask(static_cast<uint32_t>(limit - base));
      }
      while (word != 0) {
        uint32_t b = Ctz(word);
        fn(base + b);
        word &= word - 1;
      }
    }
  }

  void ReportLive(uint64_t s, uint64_t e, std::vector<uint64_t>* out) const {
    ForEachLive(s, e, [out](uint64_t r) { out->push_back(r); });
  }

  uint64_t CountLive(uint64_t s, uint64_t e) const;

  bool counting_enabled() const { return counting_; }

  uint64_t SpaceBytes() const {
    return dead_words_.MemoryBytes() + dead_fenwick_.SpaceBytes();
  }

 private:
  // word index -> dead mask. Kill() inserts while optimistic serve-layer
  // readers probe concurrently: SeqHashMap keeps the probe's view
  // self-consistent and parks replaced tables (util/seq_hash_map.h).
  SeqHashMap<uint64_t, uint64_t> dead_words_;
  Fenwick dead_fenwick_;
  uint64_t size_ = 0;
  uint64_t dead_ = 0;
  bool counting_ = false;

  uint64_t DeadInWordPrefix(uint64_t word, uint32_t bits) const {
    if (bits == 0) return 0;
    const uint64_t* mask = dead_words_.Find(word);
    if (mask == nullptr) return 0;
    return Popcount(*mask & LowMask(bits));
  }
};

}  // namespace dyndex

#endif  // DYNDEX_BITS_LIVE_ROW_REPORTER_H_
