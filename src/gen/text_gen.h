// Workload generators: synthetic texts with controllable entropy, document
// collections, and pattern samplers. Used by tests, benchmarks and examples.
//
// The paper has no experimental section, so these generators define the
// workloads under which the claimed complexity shapes are measured
// (EXPERIMENTS.md documents the choices per table/figure).
#ifndef DYNDEX_GEN_TEXT_GEN_H_
#define DYNDEX_GEN_TEXT_GEN_H_

#include <cstdint>
#include <vector>

#include "text/concat_text.h"
#include "util/rng.h"

namespace dyndex {

/// Uniform symbols over [kMinSymbol, kMinSymbol + sigma).
std::vector<Symbol> UniformText(Rng& rng, uint64_t n, uint32_t sigma);

/// Zipf-distributed symbols (rank-frequency exponent `theta`, default ~1):
/// models skewed alphabets (natural language, log tokens). Lower H0 than
/// uniform at equal sigma.
std::vector<Symbol> ZipfText(Rng& rng, uint64_t n, uint32_t sigma,
                             double theta = 1.0);

/// Order-1 Markov chain with `branch` successors per symbol: produces text
/// with H1 << H0, exercising the k-th order entropy story.
std::vector<Symbol> MarkovText(Rng& rng, uint64_t n, uint32_t sigma,
                               uint32_t branch = 4);

/// A collection of documents with lengths uniform in [min_len, max_len].
std::vector<std::vector<Symbol>> RandomDocs(Rng& rng, uint32_t count,
                                            uint64_t min_len, uint64_t max_len,
                                            uint32_t sigma);

/// A pattern of length `len` sampled as a substring of a random document
/// (guaranteeing at least one occurrence). Falls back to a uniform pattern if
/// every document is shorter than `len`.
std::vector<Symbol> SamplePattern(Rng& rng,
                                  const std::vector<std::vector<Symbol>>& docs,
                                  uint64_t len, uint32_t sigma);

}  // namespace dyndex

#endif  // DYNDEX_GEN_TEXT_GEN_H_
