#include "gen/relation_gen.h"

#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace dyndex {

namespace {

uint32_t ZipfDraw(Rng& rng, const std::vector<double>& cdf) {
  double x = rng.NextDouble() * cdf.back();
  uint32_t lo = 0, hi = static_cast<uint32_t>(cdf.size()) - 1;
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    if (cdf[mid] < x) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<double> ZipfCdf(uint32_t n, double theta) {
  std::vector<double> cdf(n);
  double sum = 0.0;
  for (uint32_t r = 0; r < n; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf[r] = sum;
  }
  return cdf;
}

}  // namespace

std::vector<std::pair<uint32_t, uint32_t>> GenPairs(Rng& rng, uint64_t count,
                                                    uint32_t num_objects,
                                                    uint32_t num_labels,
                                                    double zipf_theta) {
  DYNDEX_CHECK(count <= static_cast<uint64_t>(num_objects) * num_labels);
  std::vector<double> cdf;
  if (zipf_theta > 0) cdf = ZipfCdf(num_labels, zipf_theta);
  std::unordered_set<uint64_t> seen;
  std::vector<std::pair<uint32_t, uint32_t>> out;
  out.reserve(count);
  while (out.size() < count) {
    uint32_t o = static_cast<uint32_t>(rng.Below(num_objects));
    uint32_t a = zipf_theta > 0 ? ZipfDraw(rng, cdf)
                                : static_cast<uint32_t>(rng.Below(num_labels));
    uint64_t key = (static_cast<uint64_t>(o) << 32) | a;
    if (seen.insert(key).second) out.emplace_back(o, a);
  }
  return out;
}

std::vector<std::pair<uint32_t, uint32_t>> GenEdges(Rng& rng, uint64_t count,
                                                    uint32_t num_nodes,
                                                    double zipf_theta) {
  return GenPairs(rng, count, num_nodes, num_nodes, zipf_theta);
}

}  // namespace dyndex
