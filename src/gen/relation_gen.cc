#include "gen/relation_gen.h"

#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace dyndex {

namespace {

uint32_t ZipfDraw(Rng& rng, const std::vector<double>& cdf) {
  double x = rng.NextDouble() * cdf.back();
  uint32_t lo = 0, hi = static_cast<uint32_t>(cdf.size()) - 1;
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    if (cdf[mid] < x) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<double> ZipfCdf(uint32_t n, double theta) {
  std::vector<double> cdf(n);
  double sum = 0.0;
  for (uint32_t r = 0; r < n; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf[r] = sum;
  }
  return cdf;
}

}  // namespace

std::vector<std::pair<uint32_t, uint32_t>> GenPairs(Rng& rng, uint64_t count,
                                                    uint32_t num_objects,
                                                    uint32_t num_labels,
                                                    double zipf_theta) {
  DYNDEX_CHECK(count <= static_cast<uint64_t>(num_objects) * num_labels);
  std::vector<double> cdf;
  if (zipf_theta > 0) cdf = ZipfCdf(num_labels, zipf_theta);
  std::unordered_set<uint64_t> seen;
  std::vector<std::pair<uint32_t, uint32_t>> out;
  out.reserve(count);
  while (out.size() < count) {
    uint32_t o = static_cast<uint32_t>(rng.Below(num_objects));
    uint32_t a = zipf_theta > 0 ? ZipfDraw(rng, cdf)
                                : static_cast<uint32_t>(rng.Below(num_labels));
    uint64_t key = (static_cast<uint64_t>(o) << 32) | a;
    if (seen.insert(key).second) out.emplace_back(o, a);
  }
  return out;
}

std::vector<std::pair<uint32_t, uint32_t>> GenEdges(Rng& rng, uint64_t count,
                                                    uint32_t num_nodes,
                                                    double zipf_theta) {
  return GenPairs(rng, count, num_nodes, num_nodes, zipf_theta);
}

std::vector<ChurnEvent> GenChurnStream(Rng& rng,
                                       const ChurnStreamOptions& opt) {
  DYNDEX_CHECK(opt.num_objects > 0 && opt.num_labels > 0);
  DYNDEX_CHECK(opt.add_fraction >= 0 && opt.remove_fraction >= 0 &&
               opt.add_fraction + opt.remove_fraction <= 1.0);
  std::vector<double> cdf;
  if (opt.zipf_theta > 0) cdf = ZipfCdf(opt.num_labels, opt.zipf_theta);
  auto draw_label = [&]() -> uint32_t {
    return opt.zipf_theta > 0 ? ZipfDraw(rng, cdf)
                              : static_cast<uint32_t>(rng.Below(opt.num_labels));
  };
  // Approximate live-pair tracking (duplicate adds may appear twice, so a
  // targeted remove can still miss — consumers must use return values or a
  // model, not assume hits).
  std::vector<std::pair<uint32_t, uint32_t>> live;
  std::vector<ChurnEvent> out;
  out.reserve(opt.num_ops);
  for (uint64_t i = 0; i < opt.num_ops; ++i) {
    const double x = rng.NextDouble();
    const bool removable = !live.empty();
    if (x < opt.add_fraction ||
        (x < opt.add_fraction + opt.remove_fraction && !removable)) {
      const uint32_t o = static_cast<uint32_t>(rng.Below(opt.num_objects));
      const uint32_t a = draw_label();
      live.emplace_back(o, a);
      out.push_back({ChurnOp::kAdd, o, a});
    } else if (x < opt.add_fraction + opt.remove_fraction) {
      if (rng.Chance(opt.remove_miss_fraction)) {
        out.push_back({ChurnOp::kRemove,
                       static_cast<uint32_t>(rng.Below(opt.num_objects)),
                       draw_label()});
      } else {
        const size_t idx = rng.Below(live.size());
        const auto [o, a] = live[idx];
        live[idx] = live.back();
        live.pop_back();
        out.push_back({ChurnOp::kRemove, o, a});
      }
    } else {
      // Query: half the time aim at a known-live pair.
      uint32_t o, a;
      if (removable && rng.Chance(0.5)) {
        const auto& p = live[rng.Below(live.size())];
        o = p.first;
        a = p.second;
      } else {
        o = static_cast<uint32_t>(rng.Below(opt.num_objects));
        a = draw_label();
      }
      switch (rng.Below(3)) {
        case 0:
          out.push_back({ChurnOp::kRelated, o, a});
          break;
        case 1:
          out.push_back({ChurnOp::kLabelsOf, o, 0});
          break;
        default:
          out.push_back({ChurnOp::kObjectsOf, 0, a});
          break;
      }
    }
  }
  return out;
}

}  // namespace dyndex
