#include "gen/text_gen.h"

#include <cmath>

#include "util/check.h"

namespace dyndex {

std::vector<Symbol> UniformText(Rng& rng, uint64_t n, uint32_t sigma) {
  DYNDEX_CHECK(sigma >= 1);
  std::vector<Symbol> t(n);
  for (uint64_t i = 0; i < n; ++i) {
    t[i] = kMinSymbol + static_cast<Symbol>(rng.Below(sigma));
  }
  return t;
}

std::vector<Symbol> ZipfText(Rng& rng, uint64_t n, uint32_t sigma,
                             double theta) {
  DYNDEX_CHECK(sigma >= 1);
  // Precompute the CDF of P(rank r) ~ 1 / r^theta.
  std::vector<double> cdf(sigma);
  double sum = 0.0;
  for (uint32_t r = 0; r < sigma; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf[r] = sum;
  }
  std::vector<Symbol> t(n);
  for (uint64_t i = 0; i < n; ++i) {
    double x = rng.NextDouble() * sum;
    uint32_t lo = 0, hi = sigma - 1;
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      if (cdf[mid] < x) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    t[i] = kMinSymbol + lo;
  }
  return t;
}

std::vector<Symbol> MarkovText(Rng& rng, uint64_t n, uint32_t sigma,
                               uint32_t branch) {
  DYNDEX_CHECK(sigma >= 1);
  if (branch == 0 || branch > sigma) branch = sigma;
  // Each state has `branch` fixed successors; transitions pick among them.
  std::vector<std::vector<uint32_t>> succ(sigma);
  for (uint32_t s = 0; s < sigma; ++s) {
    succ[s].resize(branch);
    for (uint32_t b = 0; b < branch; ++b) {
      succ[s][b] = static_cast<uint32_t>(rng.Below(sigma));
    }
  }
  std::vector<Symbol> t(n);
  uint32_t state = static_cast<uint32_t>(rng.Below(sigma));
  for (uint64_t i = 0; i < n; ++i) {
    t[i] = kMinSymbol + state;
    state = succ[state][rng.Below(branch)];
  }
  return t;
}

std::vector<std::vector<Symbol>> RandomDocs(Rng& rng, uint32_t count,
                                            uint64_t min_len, uint64_t max_len,
                                            uint32_t sigma) {
  DYNDEX_CHECK(min_len >= 1 && min_len <= max_len);
  std::vector<std::vector<Symbol>> docs(count);
  for (uint32_t d = 0; d < count; ++d) {
    docs[d] = UniformText(rng, rng.Range(min_len, max_len), sigma);
  }
  return docs;
}

std::vector<Symbol> SamplePattern(Rng& rng,
                                  const std::vector<std::vector<Symbol>>& docs,
                                  uint64_t len, uint32_t sigma) {
  for (int attempt = 0; attempt < 32 && !docs.empty(); ++attempt) {
    const auto& d = docs[rng.Below(docs.size())];
    if (d.size() < len) continue;
    uint64_t start = rng.Below(d.size() - len + 1);
    return {d.begin() + static_cast<int64_t>(start),
            d.begin() + static_cast<int64_t>(start + len)};
  }
  return UniformText(rng, len, sigma);
}

}  // namespace dyndex
