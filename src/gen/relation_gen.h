// Relation and graph workload generators for the Theorem 2/3 benchmarks.
#ifndef DYNDEX_GEN_RELATION_GEN_H_
#define DYNDEX_GEN_RELATION_GEN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace dyndex {

/// `count` distinct (object, label) pairs, objects < num_objects, labels <
/// num_labels; label popularity is Zipf-skewed when `zipf_theta` > 0.
std::vector<std::pair<uint32_t, uint32_t>> GenPairs(Rng& rng, uint64_t count,
                                                    uint32_t num_objects,
                                                    uint32_t num_labels,
                                                    double zipf_theta = 0.0);

/// `count` distinct directed edges over `num_nodes` nodes; power-law
/// in-degrees when `zipf_theta` > 0.
std::vector<std::pair<uint32_t, uint32_t>> GenEdges(Rng& rng, uint64_t count,
                                                    uint32_t num_nodes,
                                                    double zipf_theta = 0.0);

}  // namespace dyndex

#endif  // DYNDEX_GEN_RELATION_GEN_H_
