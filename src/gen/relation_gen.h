// Relation and graph workload generators for the Theorem 2/3 benchmarks.
#ifndef DYNDEX_GEN_RELATION_GEN_H_
#define DYNDEX_GEN_RELATION_GEN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace dyndex {

/// `count` distinct (object, label) pairs, objects < num_objects, labels <
/// num_labels; label popularity is Zipf-skewed when `zipf_theta` > 0.
std::vector<std::pair<uint32_t, uint32_t>> GenPairs(Rng& rng, uint64_t count,
                                                    uint32_t num_objects,
                                                    uint32_t num_labels,
                                                    double zipf_theta = 0.0);

/// `count` distinct directed edges over `num_nodes` nodes; power-law
/// in-degrees when `zipf_theta` > 0.
std::vector<std::pair<uint32_t, uint32_t>> GenEdges(Rng& rng, uint64_t count,
                                                    uint32_t num_nodes,
                                                    double zipf_theta = 0.0);

/// One operation of a seeded mixed churn stream (add/remove/query
/// interleaved). Streams are generated once and replayed anywhere — the
/// backend frontier bench, the differential fuzzer, concurrent writers — so
/// every consumer measures or checks the same workload.
enum class ChurnOp : uint8_t {
  kAdd = 0,        // AddPair(object, label)
  kRemove = 1,     // RemovePair(object, label)
  kRelated = 2,    // Related(object, label)
  kLabelsOf = 3,   // LabelsOf(object); label unused
  kObjectsOf = 4,  // ObjectsOf(label); object unused
};

struct ChurnEvent {
  ChurnOp op;
  uint32_t object = 0;
  uint32_t label = 0;
};

struct ChurnStreamOptions {
  uint64_t num_ops = 0;
  uint32_t num_objects = 1;
  uint32_t num_labels = 1;
  /// Label popularity of added pairs (0 = uniform; ~0.99 is the classic
  /// social-network skew).
  double zipf_theta = 0.0;
  /// Operation mix; whatever add + remove leaves of 1.0 is queries, split
  /// evenly across Related / LabelsOf / ObjectsOf.
  double add_fraction = 0.4;
  double remove_fraction = 0.3;
  /// Share of removes aimed at a freshly drawn (probably absent) pair
  /// instead of one known live — keeps the miss path exercised.
  double remove_miss_fraction = 0.2;
};

/// Generates `opt.num_ops` events. Removes target still-live pairs (modulo
/// `remove_miss_fraction`), and query arguments are biased toward touched
/// ids, so the stream exercises hit paths, not just misses. Deterministic in
/// (rng state, opt).
std::vector<ChurnEvent> GenChurnStream(Rng& rng,
                                       const ChurnStreamOptions& opt);

}  // namespace dyndex

#endif  // DYNDEX_GEN_RELATION_GEN_H_
