// Baseline: dynamic FM-index over a dynamic wavelet tree.
//
// This is the approach of Chan-Hon-Lam-Sadakane [10,9] / Makinen-Navarro
// [30,31] / Navarro-Nekrich [35] that the paper's framework is designed to
// beat: the BWT of the whole collection is maintained in a *dynamic* sequence,
// so every backward-search step, locate step and update step pays a dynamic
// rank/select (Theta(log n) here; Theta(log n / log log n) at the
// Fredman-Saks optimum) — the bottleneck the paper circumvents.
//
// Documents carry distinct separator symbols (drawn from a reusable pool of
// `max_docs` values below the text alphabet), which makes suffix order total
// and keeps the insertion/deletion walks exact:
//   Insert: |T|+1 dynamic-WT insertions, O(|T| log sigma log n)
//   Erase : |T|+1 LF-steps + deletions, same cost
//   Count : O(|P| log sigma log n)
//   Locate: O(s log sigma log n) per occurrence (sampled companion array)
#ifndef DYNDEX_BASELINE_DYNAMIC_FM_INDEX_H_
#define DYNDEX_BASELINE_DYNAMIC_FM_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/occurrence.h"
#include "dynbits/dynamic_bit_vector.h"
#include "seq/dynamic_wavelet_tree.h"
#include "text/concat_text.h"
#include "util/fenwick.h"
#include "util/retire.h"
#include "util/seq_hash_map.h"

namespace dyndex {

/// Fully-dynamic compressed collection index built on dynamic rank/select.
class DynamicFmIndex {
 public:
  struct Options {
    /// Maximum number of simultaneously stored documents (separator pool).
    uint32_t max_docs = 4096;
    /// Exclusive upper bound on user symbol values (>= kMinSymbol).
    uint32_t max_symbol = 258;
    /// SA sample rate for locate.
    uint32_t sample_rate = 32;
  };

  DynamicFmIndex() : DynamicFmIndex(Options()) {}
  explicit DynamicFmIndex(const Options& opt);

  /// Bulk-constructs over `docs` (convenience for benchmarks/servers).
  DynamicFmIndex(const std::vector<std::vector<Symbol>>& docs,
                 const Options& opt)
      : DynamicFmIndex(opt) {
    InsertBulk(docs);
  }

  /// Inserts a document, returns its stable handle.
  DocId Insert(const std::vector<Symbol>& symbols);

  /// Bulk-loads `docs` into an *empty* index: one SA-IS pass over the
  /// concatenation plus bulk wavelet-tree/bitvector loads, O(n log sigma),
  /// instead of n dynamic-rank insertions at O(log sigma log n) each. The
  /// resulting structure is row-for-row identical to inserting the documents
  /// one by one. Returns the handles in document order.
  std::vector<DocId> InsertBulk(const std::vector<std::vector<Symbol>>& docs);

  /// Removes a document. Returns false for unknown handles.
  bool Erase(DocId id);

  /// Number of occurrences of `pattern` across all documents.
  uint64_t Count(const std::vector<Symbol>& pattern) const;

  /// All occurrences (doc, offset).
  std::vector<Occurrence> Find(const std::vector<Symbol>& pattern) const;

  /// doc[from, from+len), reconstructed by an LF-walk from the document's
  /// separator row: O(|T| log sigma log n) regardless of `from` (the dynamic
  /// BWT keeps no positional samples per document).
  std::vector<Symbol> Extract(DocId id, uint64_t from, uint64_t len) const;

  /// Length of a stored document. Requires Contains(id).
  uint64_t DocLenOf(DocId id) const;

  bool Contains(DocId id) const { return docs_.Contains(id); }
  /// Exclusive upper bound on storable symbol values (the serving facade
  /// screens documents against it; Insert's own precondition stays strict).
  uint32_t max_symbol() const { return opt_.max_symbol; }
  uint64_t num_docs() const { return docs_.size(); }
  /// Total stored symbols (including one separator per document).
  uint64_t size() const { return bwt_.size(); }
  uint64_t live_symbols() const { return live_symbols_; }

  uint64_t SpaceBytes() const;

  // --- persistence ---------------------------------------------------------

  /// Copies the full logical state — every live document (sorted by id, each
  /// reconstructed by an LF-walk) plus the next id to mint.
  void ExportSnapshot(std::vector<Document>* docs, DocId* next_id) const;
  /// Restores an exported state into an *empty* index, preserving the
  /// exported (possibly non-contiguous) ids and the id counter. Separator
  /// pool values are reassigned; they are invisible to the logical state.
  void LoadSnapshot(std::vector<Document> docs, DocId next_id);

 private:
  struct DocInfo {
    uint32_t sep = 0;
    uint64_t len = 0;
  };
  struct Sample {
    DocId doc = kInvalidDocId;
    uint64_t offset = 0;
  };

  Options opt_;
  DynamicWaveletTree bwt_;
  Fenwick counts_;  // symbol counts -> dynamic C array
  DynamicBitVector sampled_;
  // Reader-reachable containers: reallocs and replaced hash tables under a
  // serve-layer exclusive section park abandoned buffers for in-flight
  // optimistic readers (util/retire.h, util/seq_hash_map.h).
  retire_vector<Sample> samples_;  // aligned with 1-bits of sampled_
  SeqHashMap<DocId, DocInfo> docs_;
  std::vector<uint32_t> free_seps_;
  DocId next_id_ = 0;
  uint64_t live_symbols_ = 0;

  uint32_t Internal(Symbol s) const { return s - kMinSymbol + opt_.max_docs; }

  /// C(c) + rank_c(row) on the current structure.
  uint64_t LfStep(uint32_t c, uint64_t row) const {
    return static_cast<uint64_t>(counts_.PrefixSum(c)) + bwt_.Rank(c, row);
  }

  void InsertRow(uint64_t row, uint32_t bwt_sym, DocId doc, uint64_t offset);
  void EraseRow(uint64_t row, uint32_t bwt_sym);

  /// The shared SA-IS bulk-load body: loads `docs` into the empty structure
  /// under the caller-chosen stable ids (InsertBulk mints them; LoadSnapshot
  /// restores them).
  void BulkLoad(const std::vector<std::vector<Symbol>>& docs,
                const std::vector<DocId>& ids);

  /// Backward search; returns {lo, hi} or {0,0} when empty.
  bool BackwardSearch(const std::vector<Symbol>& pattern, uint64_t* lo,
                      uint64_t* hi) const;
};

}  // namespace dyndex

#endif  // DYNDEX_BASELINE_DYNAMIC_FM_INDEX_H_
