// Baseline: the O(n log n)-bit uncompressed dynamic index (the classic
// suffix-tree solution sketched in the paper's introduction and used as the
// constant-alphabet row [9] of Table 2). Fast queries and updates, but ~an
// order of magnitude more space than the compressed structures.
#ifndef DYNDEX_BASELINE_SUFFIX_TREE_INDEX_H_
#define DYNDEX_BASELINE_SUFFIX_TREE_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/occurrence.h"
#include "gst/suffix_tree.h"
#include "text/concat_text.h"

namespace dyndex {

/// Thin collection adapter over SuffixTreeCollection with the same update /
/// query surface as the compressed dynamic collections.
class SuffixTreeIndex {
 public:
  DocId Insert(std::vector<Symbol> symbols) {
    DocId id = next_id_++;
    tree_.Insert(id, std::move(symbols));
    return id;
  }

  bool Erase(DocId id) { return tree_.Erase(id); }
  bool Contains(DocId id) const { return tree_.Contains(id); }

  std::vector<Occurrence> Find(const std::vector<Symbol>& pattern) const {
    std::vector<Occurrence> out;
    tree_.ForEachOccurrence(
        pattern, [&](DocId d, uint64_t off) { out.push_back({d, off}); });
    return out;
  }

  uint64_t Count(const std::vector<Symbol>& pattern) const {
    return tree_.Count(pattern);
  }

  std::vector<Symbol> Extract(DocId id, uint64_t from, uint64_t len) const {
    std::vector<Symbol> out;
    tree_.Extract(id, from, len, &out);
    return out;
  }

  uint64_t num_docs() const { return tree_.num_live_docs(); }
  uint64_t live_symbols() const { return tree_.live_symbols(); }
  uint64_t SpaceBytes() const { return tree_.SpaceBytes(); }

 private:
  SuffixTreeCollection tree_;
  DocId next_id_ = 0;
};

}  // namespace dyndex

#endif  // DYNDEX_BASELINE_SUFFIX_TREE_INDEX_H_
