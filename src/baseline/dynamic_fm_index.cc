#include "baseline/dynamic_fm_index.h"

#include <algorithm>
#include <functional>

#include "suffix/sais.h"
#include "util/bits.h"
#include "util/check.h"

namespace dyndex {

DynamicFmIndex::DynamicFmIndex(const Options& opt)
    : opt_(opt),
      bwt_(opt.max_docs + (opt.max_symbol - kMinSymbol)),
      counts_(opt.max_docs + (opt.max_symbol - kMinSymbol)) {
  DYNDEX_CHECK(opt.max_docs >= 1);
  DYNDEX_CHECK(opt.max_symbol > kMinSymbol);
  if (opt_.sample_rate == 0) opt_.sample_rate = 1;
  free_seps_.reserve(opt.max_docs);
  for (uint32_t s = opt.max_docs; s-- > 0;) free_seps_.push_back(s);
}

void DynamicFmIndex::InsertRow(uint64_t row, uint32_t bwt_sym, DocId doc,
                               uint64_t offset) {
  bwt_.Insert(row, bwt_sym);
  counts_.Add(bwt_sym, 1);
  bool sample = offset % opt_.sample_rate == 0;
  sampled_.Insert(row, sample);
  if (sample) {
    uint64_t k = sampled_.Rank1(row);
    samples_.insert(samples_.begin() + static_cast<int64_t>(k),
                    {doc, offset});
  }
}

void DynamicFmIndex::EraseRow(uint64_t row, uint32_t bwt_sym) {
  counts_.Add(bwt_sym, -1);
  if (sampled_.Get(row)) {
    uint64_t k = sampled_.Rank1(row);
    samples_.erase(samples_.begin() + static_cast<int64_t>(k));
  }
  sampled_.Erase(row);
  bwt_.Erase(row);
}

DocId DynamicFmIndex::Insert(const std::vector<Symbol>& symbols) {
  DYNDEX_CHECK(!symbols.empty());
  DYNDEX_CHECK(!free_seps_.empty());  // max_docs exhausted otherwise
  for (Symbol s : symbols) {
    DYNDEX_CHECK(s >= kMinSymbol && s < opt_.max_symbol);
  }
  DocId id = next_id_++;
  uint32_t sep = free_seps_.back();
  free_seps_.pop_back();
  uint64_t m = symbols.size();
  docs_[id] = {sep, m};
  live_symbols_ += m;

  // Row of the suffix "$_d": all rows starting with a smaller symbol.
  uint64_t row = static_cast<uint64_t>(counts_.PrefixSum(sep));
  uint32_t ch = m > 0 ? Internal(symbols[m - 1]) : sep;
  InsertRow(row, ch, id, m);
  uint32_t prev = ch;
  for (uint64_t i = m; i-- > 0;) {
    // Row of S_i = LF of the row of S_{i+1}; the char written at the previous
    // row is exactly T[i] (= prev). The +1 accounts for the already-inserted
    // "$_d"-starting row whose BWT counterpart (the final sep write) is still
    // pending: first-symbol counts run one separator ahead of counts_.
    uint64_t next_row = LfStep(prev, row) + 1;
    uint32_t c = i > 0 ? Internal(symbols[i - 1]) : sep;
    InsertRow(next_row, c, id, i);
    prev = c;
    row = next_row;
  }
  return id;
}

std::vector<DocId> DynamicFmIndex::InsertBulk(
    const std::vector<std::vector<Symbol>>& docs) {
  std::vector<DocId> ids;
  ids.reserve(docs.size());
  for (std::size_t d = 0; d < docs.size(); ++d) ids.push_back(next_id_++);
  BulkLoad(docs, ids);
  return ids;
}

void DynamicFmIndex::BulkLoad(const std::vector<std::vector<Symbol>>& docs,
                              const std::vector<DocId>& ids) {
  DYNDEX_CHECK(bwt_.size() == 0);  // the bulk path loads an empty index
  DYNDEX_CHECK(docs.size() <= free_seps_.size());
  DYNDEX_CHECK(docs.size() == ids.size());
  if (docs.empty()) return;
  uint64_t total = 0;
  for (const auto& d : docs) {
    DYNDEX_CHECK(!d.empty());
    for (Symbol s : d) DYNDEX_CHECK(s >= kMinSymbol && s < opt_.max_symbol);
    total += d.size();
  }
  uint64_t n_rows = total + docs.size();

  // Concatenate T_0 $_0 T_1 $_1 ... with every internal symbol shifted +1 so
  // value 0 can serve as the SA-IS sentinel. Separators take their pool
  // values in pool order, and separators sort below text symbols, so suffix
  // comparisons terminate at the first separator and the resulting row order
  // is exactly the one incremental insertion produces.
  std::vector<uint32_t> text;
  text.reserve(n_rows + 1);
  std::vector<uint64_t> doc_of(n_rows);  // position -> local doc index
  std::vector<uint64_t> off_of(n_rows);  // position -> offset (len at sep)
  std::vector<uint32_t> seps(docs.size());
  std::vector<uint64_t> start(docs.size());
  for (uint64_t d = 0; d < docs.size(); ++d) {
    DocId id = ids[d];
    seps[d] = free_seps_.back();
    free_seps_.pop_back();
    start[d] = text.size();
    for (uint64_t k = 0; k < docs[d].size(); ++k) {
      doc_of[text.size()] = d;
      off_of[text.size()] = k;
      text.push_back(Internal(docs[d][k]) + 1);
    }
    doc_of[text.size()] = d;
    off_of[text.size()] = docs[d].size();
    text.push_back(seps[d] + 1);
    docs_[id] = {seps[d], docs[d].size()};
    live_symbols_ += docs[d].size();
  }
  text.push_back(0);
  uint32_t sigma = opt_.max_docs + (opt_.max_symbol - kMinSymbol) + 1;
  std::vector<uint64_t> sa = BuildSuffixArray(text, sigma);

  // Emit rows in suffix order, skipping the sentinel suffix. The BWT char of
  // a document's first-symbol row is its own separator (the per-document
  // cyclic BWT the incremental walk maintains), not the concatenation's
  // predecessor.
  std::vector<uint32_t> bwt_syms;
  bwt_syms.reserve(n_rows);
  std::vector<uint64_t> sampled_words(CeilDiv(n_rows, 64), 0);
  std::vector<uint64_t> freq(sigma, 0);
  uint64_t row = 0;
  for (uint64_t r = 0; r < sa.size(); ++r) {
    uint64_t p = sa[r];
    if (p == n_rows) continue;  // sentinel suffix
    uint64_t d = doc_of[p];
    uint32_t sym = p == start[d] ? seps[d] : text[p - 1] - 1;
    bwt_syms.push_back(sym);
    ++freq[sym];
    uint64_t off = off_of[p];
    if (off % opt_.sample_rate == 0) {
      sampled_words[row >> 6] |= 1ull << (row & 63);
      samples_.push_back({ids[d], off});
    }
    ++row;
  }
  DYNDEX_DCHECK(row == n_rows);
  for (uint32_t sym = 0; sym + 1 < sigma; ++sym) {
    if (freq[sym] != 0) counts_.Add(sym, static_cast<int64_t>(freq[sym]));
  }
  // Park the old (empty, but possibly node-bearing) wavelet tree for
  // in-flight optimistic readers instead of freeing it under the assignment.
  Retire(std::move(bwt_));
  bwt_ = DynamicWaveletTree(opt_.max_docs + (opt_.max_symbol - kMinSymbol),
                            std::move(bwt_syms));
  sampled_.Build(sampled_words.data(), n_rows);
}

void DynamicFmIndex::ExportSnapshot(std::vector<Document>* docs,
                                    DocId* next_id) const {
  const std::size_t before = docs->size();
  docs_.ForEach([&](DocId id, const DocInfo& info) {
    docs->push_back(Document{id, Extract(id, 0, info.len)});
  });
  // Hash order is an implementation detail; exported state is id-ordered.
  std::sort(docs->begin() + static_cast<int64_t>(before), docs->end(),
            [](const Document& a, const Document& b) { return a.id < b.id; });
  *next_id = next_id_;
}

void DynamicFmIndex::LoadSnapshot(std::vector<Document> docs, DocId next_id) {
  DYNDEX_CHECK(num_docs() == 0 && bwt_.size() == 0);
  next_id_ = next_id;
  std::vector<std::vector<Symbol>> texts;
  std::vector<DocId> ids;
  texts.reserve(docs.size());
  ids.reserve(docs.size());
  for (Document& d : docs) {
    ids.push_back(d.id);
    texts.push_back(std::move(d.symbols));
  }
  BulkLoad(texts, ids);
}

bool DynamicFmIndex::Erase(DocId id) {
  const DocInfo* info = docs_.Find(id);
  if (info == nullptr) return false;
  uint32_t sep = info->sep;
  live_symbols_ -= info->len;
  // Walk the complete structure first, collecting the rows of all |T|+1
  // suffixes of the document; then delete them in descending row order so
  // earlier deletions never shift later targets. This avoids the off-by-one
  // bookkeeping of interleaved LF-steps and deletions.
  std::vector<uint64_t> rows;
  rows.reserve(info->len + 1);
  uint64_t row = static_cast<uint64_t>(counts_.PrefixSum(sep));
  while (true) {
    rows.push_back(row);
    uint32_t c = bwt_.Access(row);
    if (c == sep) break;
    row = LfStep(c, row);
  }
  std::sort(rows.begin(), rows.end(), std::greater<uint64_t>());
  for (uint64_t r : rows) {
    uint32_t c = bwt_.Access(r);
    EraseRow(r, c);
  }
  free_seps_.push_back(sep);
  docs_.Erase(id);
  return true;
}

bool DynamicFmIndex::BackwardSearch(const std::vector<Symbol>& pattern,
                                    uint64_t* lo, uint64_t* hi) const {
  DYNDEX_CHECK(!pattern.empty());
  uint64_t a = 0, b = bwt_.size();
  for (uint64_t k = pattern.size(); k-- > 0;) {
    Symbol s = pattern[k];
    if (s < kMinSymbol || s >= opt_.max_symbol) return false;
    uint32_t c = Internal(s);
    // Both LF-steps share one wavelet-tree descent via RankPair.
    uint64_t base = static_cast<uint64_t>(counts_.PrefixSum(c));
    auto [ra, rb] = bwt_.RankPair(c, a, b);
    a = base + ra;
    b = base + rb;
    if (a >= b) return false;
  }
  *lo = a;
  *hi = b;
  return true;
}

uint64_t DynamicFmIndex::Count(const std::vector<Symbol>& pattern) const {
  uint64_t lo, hi;
  if (!BackwardSearch(pattern, &lo, &hi)) return 0;
  return hi - lo;
}

std::vector<Occurrence> DynamicFmIndex::Find(
    const std::vector<Symbol>& pattern) const {
  std::vector<Occurrence> out;
  uint64_t lo, hi;
  if (!BackwardSearch(pattern, &lo, &hi)) return out;
  out.reserve(hi - lo);
  for (uint64_t r = lo; r < hi; ++r) {
    uint64_t row = r;
    uint64_t steps = 0;
    while (!sampled_.Get(row)) {
      uint32_t c = bwt_.Access(row);
      row = LfStep(c, row);
      // Samples sit every sample_rate offsets along each document, so a
      // consistent walk hits one within sample_rate steps; a torn read
      // (optimistic serve-layer readers) could otherwise cycle forever.
      DYNDEX_CHECK(++steps <= opt_.sample_rate);
    }
    uint64_t k = sampled_.Rank1(row);
    DYNDEX_CHECK(k < samples_.size());
    const Sample& s = samples_[k];
    out.push_back({s.doc, s.offset + steps});
  }
  return out;
}

std::vector<Symbol> DynamicFmIndex::Extract(DocId id, uint64_t from,
                                            uint64_t len) const {
  const DocInfo* info = docs_.Find(id);
  DYNDEX_CHECK(info != nullptr);
  uint64_t m = info->len;
  DYNDEX_CHECK(from + len <= m);
  // Walking LF from the "$_d" row yields T[m-1], T[m-2], ...; stop once the
  // walk passes `from` — positions below it are never needed.
  std::vector<Symbol> out(len);
  uint32_t sep = info->sep;
  uint64_t row = static_cast<uint64_t>(counts_.PrefixSum(sep));
  for (uint64_t i = m; i-- > from;) {
    uint32_t c = bwt_.Access(row);
    DYNDEX_CHECK(c != sep);
    if (i < from + len) out[i - from] = c - opt_.max_docs + kMinSymbol;
    row = LfStep(c, row);
  }
  return out;
}

uint64_t DynamicFmIndex::DocLenOf(DocId id) const {
  const DocInfo* info = docs_.Find(id);
  DYNDEX_CHECK(info != nullptr);
  return info->len;
}

uint64_t DynamicFmIndex::SpaceBytes() const {
  return bwt_.SpaceBytes() + counts_.SpaceBytes() + sampled_.SpaceBytes() +
         samples_.capacity() * sizeof(Sample) + docs_.MemoryBytes() +
         free_seps_.capacity() * sizeof(uint32_t);
}

}  // namespace dyndex
