#include "dynbits/dynamic_bit_vector.h"

namespace dyndex {

DynamicBitVector::~DynamicBitVector() {
  // Iterative teardown to avoid deep recursive destructor chains.
  std::vector<std::unique_ptr<Node>> stack;
  if (root_) stack.push_back(std::move(root_));
  while (!stack.empty()) {
    std::unique_ptr<Node> n = std::move(stack.back());
    stack.pop_back();
    if (n->left) stack.push_back(std::move(n->left));
    if (n->right) stack.push_back(std::move(n->right));
  }
}

DynamicBitVector::DynamicBitVector(DynamicBitVector&& other) noexcept
    : root_(std::move(other.root_)) {}

DynamicBitVector& DynamicBitVector::operator=(
    DynamicBitVector&& other) noexcept {
  root_ = std::move(other.root_);
  return *this;
}

void DynamicBitVector::Update(Node* n) {
  if (n->is_leaf()) return;
  n->size = n->left->size + n->right->size;
  n->ones = n->left->ones + n->right->ones;
  n->height = 1 + (n->left->height > n->right->height ? n->left->height
                                                      : n->right->height);
}

int DynamicBitVector::Balance(const Node* n) {
  if (n->is_leaf()) return 0;
  return n->left->height - n->right->height;
}

std::unique_ptr<DynamicBitVector::Node> DynamicBitVector::RotateLeft(
    std::unique_ptr<Node> n) {
  std::unique_ptr<Node> r = std::move(n->right);
  n->right = std::move(r->left);
  Update(n.get());
  r->left = std::move(n);
  Update(r.get());
  return r;
}

std::unique_ptr<DynamicBitVector::Node> DynamicBitVector::RotateRight(
    std::unique_ptr<Node> n) {
  std::unique_ptr<Node> l = std::move(n->left);
  n->left = std::move(l->right);
  Update(n.get());
  l->right = std::move(n);
  Update(l.get());
  return l;
}

std::unique_ptr<DynamicBitVector::Node> DynamicBitVector::Rebalance(
    std::unique_ptr<Node> n) {
  Update(n.get());
  int b = Balance(n.get());
  if (b > 1) {
    if (Balance(n->left.get()) < 0) n->left = RotateLeft(std::move(n->left));
    return RotateRight(std::move(n));
  }
  if (b < -1) {
    if (Balance(n->right.get()) > 0) {
      n->right = RotateRight(std::move(n->right));
    }
    return RotateLeft(std::move(n));
  }
  return n;
}

void DynamicBitVector::LeafInsert(Node* leaf, uint64_t i, bool bit) {
  uint64_t n = leaf->size;
  DYNDEX_DCHECK(i <= n);
  if (CeilDiv(n + 1, 64) > leaf->words.size()) leaf->words.push_back(0);
  // Shift everything at/after position i one bit towards the MSB end.
  uint64_t w = i >> 6;
  uint32_t off = static_cast<uint32_t>(i & 63);
  uint64_t carry = (leaf->words[w] >> 63) & 1;
  uint64_t low = leaf->words[w] & LowMask(off);
  uint64_t high = leaf->words[w] & ~LowMask(off);
  leaf->words[w] = low | (high << 1) | (static_cast<uint64_t>(bit) << off);
  for (uint64_t k = w + 1; k <= (n >> 6) && k < leaf->words.size(); ++k) {
    uint64_t next_carry = (leaf->words[k] >> 63) & 1;
    leaf->words[k] = (leaf->words[k] << 1) | carry;
    carry = next_carry;
  }
  ++leaf->size;
  leaf->ones += bit ? 1 : 0;
}

void DynamicBitVector::LeafErase(Node* leaf, uint64_t i) {
  uint64_t n = leaf->size;
  DYNDEX_DCHECK(i < n);
  uint64_t w = i >> 6;
  uint32_t off = static_cast<uint32_t>(i & 63);
  bool bit = (leaf->words[w] >> off) & 1;
  uint64_t low = leaf->words[w] & LowMask(off);
  uint64_t high = leaf->words[w] & ~LowMask(off + 1);
  leaf->words[w] = low | (high >> 1);
  uint64_t last_word = (n - 1) >> 6;
  for (uint64_t k = w + 1; k <= last_word; ++k) {
    // Move lowest bit of word k into the MSB of word k-1.
    leaf->words[k - 1] |= (leaf->words[k] & 1) << 63;
    leaf->words[k] >>= 1;
  }
  --leaf->size;
  leaf->ones -= bit ? 1 : 0;
  // Clear any bits beyond the new size in the last word.
  if (leaf->size > 0) {
    uint64_t lw = (leaf->size - 1) >> 6;
    uint32_t bits_in_last = static_cast<uint32_t>(leaf->size - lw * 64);
    if (bits_in_last < 64) leaf->words[lw] &= LowMask(bits_in_last);
    for (uint64_t k = lw + 1; k < leaf->words.size(); ++k) leaf->words[k] = 0;
  } else {
    for (auto& word : leaf->words) word = 0;
  }
}

std::unique_ptr<DynamicBitVector::Node> DynamicBitVector::SplitLeaf(
    std::unique_ptr<Node> leaf) {
  // Split a full leaf into an internal node with two half leaves.
  uint64_t n = leaf->size;
  uint64_t half = n / 2;
  auto left = std::make_unique<Node>();
  auto right = std::make_unique<Node>();
  left->words.assign(leaf->words.begin(),
                     leaf->words.begin() + (half + 63) / 64);
  left->size = half;
  // Right gets bits [half, n).
  uint64_t rn = n - half;
  right->words.assign(CeilDiv(rn, 64), 0);
  for (uint64_t i = 0; i < rn; ++i) {
    uint64_t src = half + i;
    uint64_t b = (leaf->words[src >> 6] >> (src & 63)) & 1;
    right->words[i >> 6] |= b << (i & 63);
  }
  right->size = rn;
  // Clear left's tail bits beyond `half`.
  if (half > 0) {
    uint64_t lw = (half - 1) >> 6;
    uint32_t bits_in_last = static_cast<uint32_t>(half - lw * 64);
    if (bits_in_last < 64) left->words[lw] &= LowMask(bits_in_last);
  }
  uint64_t lones = 0;
  for (uint64_t word : left->words) lones += Popcount(word);
  left->ones = lones;
  right->ones = leaf->ones - lones;
  auto parent = std::make_unique<Node>();
  parent->left = std::move(left);
  parent->right = std::move(right);
  Update(parent.get());
  return parent;
}

std::unique_ptr<DynamicBitVector::Node> DynamicBitVector::InsertRec(
    std::unique_ptr<Node> n, uint64_t i, bool bit) {
  if (n == nullptr) {
    auto leaf = std::make_unique<Node>();
    leaf->words.assign(1, 0);
    LeafInsert(leaf.get(), 0, bit);
    return leaf;
  }
  if (n->is_leaf()) {
    LeafInsert(n.get(), i, bit);
    if (n->size > kMaxLeafBits) return SplitLeaf(std::move(n));
    return n;
  }
  if (i <= n->left->size) {
    n->left = InsertRec(std::move(n->left), i, bit);
  } else {
    n->right = InsertRec(std::move(n->right), i - n->left->size, bit);
  }
  return Rebalance(std::move(n));
}

std::unique_ptr<DynamicBitVector::Node> DynamicBitVector::EraseRec(
    std::unique_ptr<Node> n, uint64_t i) {
  if (n->is_leaf()) {
    LeafErase(n.get(), i);
    if (n->size == 0) return nullptr;
    return n;
  }
  if (i < n->left->size) {
    n->left = EraseRec(std::move(n->left), i);
    if (n->left == nullptr) return std::move(n->right);
  } else {
    n->right = EraseRec(std::move(n->right), i - n->left->size);
    if (n->right == nullptr) return std::move(n->left);
  }
  return Rebalance(std::move(n));
}

void DynamicBitVector::Insert(uint64_t i, bool bit) {
  DYNDEX_CHECK(i <= size());
  root_ = InsertRec(std::move(root_), i, bit);
}

void DynamicBitVector::Erase(uint64_t i) {
  DYNDEX_CHECK(i < size());
  root_ = EraseRec(std::move(root_), i);
}

bool DynamicBitVector::Get(uint64_t i) const {
  DYNDEX_CHECK(i < size());
  const Node* n = root_.get();
  while (!n->is_leaf()) {
    if (i < n->left->size) {
      n = n->left.get();
    } else {
      i -= n->left->size;
      n = n->right.get();
    }
  }
  return (n->words[i >> 6] >> (i & 63)) & 1;
}

void DynamicBitVector::Set(uint64_t i, bool bit) {
  DYNDEX_CHECK(i < size());
  // Walk down, fixing `ones` along the way once we know the delta.
  bool old = Get(i);
  if (old == bit) return;
  int64_t delta = bit ? 1 : -1;
  Node* n = root_.get();
  while (!n->is_leaf()) {
    n->ones += delta;
    if (i < n->left->size) {
      n = n->left.get();
    } else {
      i -= n->left->size;
      n = n->right.get();
    }
  }
  uint64_t mask = 1ull << (i & 63);
  if (bit) {
    n->words[i >> 6] |= mask;
  } else {
    n->words[i >> 6] &= ~mask;
  }
  n->ones += delta;
}

uint64_t DynamicBitVector::Rank1(uint64_t i) const {
  DYNDEX_CHECK(i <= size());
  const Node* n = root_.get();
  uint64_t r = 0;
  if (n == nullptr) return 0;
  while (!n->is_leaf()) {
    if (i < n->left->size) {
      n = n->left.get();
    } else {
      i -= n->left->size;
      r += n->left->ones;
      n = n->right.get();
    }
  }
  uint64_t full = i >> 6;
  for (uint64_t w = 0; w < full; ++w) r += Popcount(n->words[w]);
  uint32_t bits = static_cast<uint32_t>(i & 63);
  if (bits != 0) r += Popcount(n->words[full] & LowMask(bits));
  return r;
}

uint64_t DynamicBitVector::Select1(uint64_t k) const {
  DYNDEX_CHECK(k < ones());
  const Node* n = root_.get();
  uint64_t pos = 0;
  while (!n->is_leaf()) {
    if (k < n->left->ones) {
      n = n->left.get();
    } else {
      k -= n->left->ones;
      pos += n->left->size;
      n = n->right.get();
    }
  }
  for (uint64_t w = 0;; ++w) {
    uint32_t c = Popcount(n->words[w]);
    if (k < c) {
      return pos + w * 64 + SelectInWord(n->words[w], static_cast<uint32_t>(k));
    }
    k -= c;
  }
}

uint64_t DynamicBitVector::Select0(uint64_t k) const {
  DYNDEX_CHECK(k < zeros());
  const Node* n = root_.get();
  uint64_t pos = 0;
  while (!n->is_leaf()) {
    uint64_t lzeros = n->left->size - n->left->ones;
    if (k < lzeros) {
      n = n->left.get();
    } else {
      k -= lzeros;
      pos += n->left->size;
      n = n->right.get();
    }
  }
  for (uint64_t w = 0;; ++w) {
    uint64_t inv = ~n->words[w];
    // Mask out bits beyond the leaf size in the last word.
    uint64_t remaining = n->size - w * 64;
    if (remaining < 64) inv &= LowMask(static_cast<uint32_t>(remaining));
    uint32_t c = Popcount(inv);
    if (k < c) {
      return pos + w * 64 + SelectInWord(inv, static_cast<uint32_t>(k));
    }
    k -= c;
  }
}

uint64_t DynamicBitVector::SpaceBytes() const {
  uint64_t total = 0;
  std::vector<const Node*> stack;
  if (root_) stack.push_back(root_.get());
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    total += sizeof(Node) + n->words.capacity() * sizeof(uint64_t);
    if (!n->is_leaf()) {
      stack.push_back(n->left.get());
      stack.push_back(n->right.get());
    }
  }
  return total;
}

}  // namespace dyndex
