#include "dynbits/dynamic_bit_vector.h"

#include <algorithm>

namespace dyndex {

// ---------------------------------------------------------------------------
// Leaf-local word-parallel operations.
// ---------------------------------------------------------------------------

void DynamicBitVector::LeafClearTail(Leaf& lf, uint32_t from) {
  uint32_t w = from >> 6;
  if ((from & 63) != 0) {
    lf.words[w] &= LowMask(from & 63);
    ++w;
  }
  for (; w < kLeafWords; ++w) lf.words[w] = 0;
}

void DynamicBitVector::LeafRecount(Leaf& lf) {
  uint32_t c = 0;
  for (uint32_t j = 0; j < kLeafWords / 2; ++j) {
    lf.cum[j] = static_cast<uint16_t>(c);
    c += Popcount(lf.words[2 * j]) + Popcount(lf.words[2 * j + 1]);
  }
  lf.ones = c;
}

void DynamicBitVector::LeafAssign(Leaf& lf, const uint64_t* buf, uint64_t pos,
                                  uint32_t nbits) {
  DYNDEX_DCHECK(nbits <= kLeafBits);
  for (uint32_t w = 0; w < kLeafWords; ++w) lf.words[w] = 0;
  CopyBits(lf.words, 0, buf, pos, nbits);
  lf.size = nbits;
  LeafRecount(lf);
}

void DynamicBitVector::LeafInsertBit(Leaf& lf, uint32_t i, bool bit) {
  uint32_t n = lf.size;
  DYNDEX_DCHECK(i <= n && n < kLeafBits);
  uint32_t w = i >> 6;
  uint32_t off = i & 63;
  // Incremental rank-directory update (before the words move): block j's
  // prefix gains the inserted bit and loses the old bit at position 128j-1,
  // which the shift pushes across the block boundary.
  uint32_t one = bit ? 1 : 0;
  for (uint32_t j = (i >> 7) + 1; j < kLeafWords / 2; ++j) {
    lf.cum[j] = static_cast<uint16_t>(
        lf.cum[j] + one -
        static_cast<uint32_t>(lf.words[2 * j - 1] >> 63));
  }
  // Shift everything at/after position i one bit towards the MSB end.
  uint64_t carry = lf.words[w] >> 63;
  uint64_t low = lf.words[w] & LowMask(off);
  uint64_t high = lf.words[w] & ~LowMask(off);
  lf.words[w] = low | (high << 1) | (static_cast<uint64_t>(bit) << off);
  uint32_t last = n >> 6;  // highest word the grown leaf occupies
  for (uint32_t k = w + 1; k <= last && k < kLeafWords; ++k) {
    uint64_t next_carry = lf.words[k] >> 63;
    lf.words[k] = (lf.words[k] << 1) | carry;
    carry = next_carry;
  }
  ++lf.size;
  lf.ones += one;
}

bool DynamicBitVector::LeafEraseBit(Leaf& lf, uint32_t i) {
  uint32_t n = lf.size;
  DYNDEX_DCHECK(i < n);
  uint32_t w = i >> 6;
  uint32_t off = i & 63;
  bool bit = (lf.words[w] >> off) & 1;
  // Incremental rank-directory update (before the words move): block j's
  // prefix loses the erased bit and gains the old bit at position 128j,
  // which the shift pulls across the block boundary.
  uint32_t one = bit ? 1 : 0;
  for (uint32_t j = (i >> 7) + 1; j < kLeafWords / 2; ++j) {
    lf.cum[j] = static_cast<uint16_t>(
        lf.cum[j] + static_cast<uint32_t>(lf.words[2 * j] & 1) - one);
  }
  uint64_t low = lf.words[w] & LowMask(off);
  uint64_t high = lf.words[w] & ~LowMask(off + 1);
  lf.words[w] = low | (high >> 1);
  uint32_t last = (n - 1) >> 6;
  for (uint32_t k = w + 1; k <= last; ++k) {
    // Move the lowest bit of word k into the MSB of word k-1.
    lf.words[k - 1] |= (lf.words[k] & 1) << 63;
    lf.words[k] >>= 1;
  }
  --lf.size;
  lf.ones -= one;
  return bit;
}

uint64_t DynamicBitVector::LeafRank1(const Leaf& lf, uint32_t i) {
  DYNDEX_DCHECK(i <= lf.size);
  // Jump via the 128-bit rank directory, then at most one full popcount
  // plus the partial word — no serial word scan.
  // Full-leaf boundary: cum[8] absent. >= rather than ==: a torn descent
  // (optimistic serve-layer readers) can pass i past the leaf, and the
  // directory probe below must stay inside the struct.
  if (i >= kLeafBits) return lf.ones;
  uint32_t full = i >> 6;
  uint32_t w = (i >> 7) * 2;
  uint64_t r = lf.cum[i >> 7];
  // Within the 2-word block: whole first word + partial second when i falls
  // in the block's upper word, partial first word otherwise — masked rather
  // than branched (the parity of `full` is a coin flip).
  uint64_t partial = LowMask(i & 63);
  uint64_t m_first = (full & 1) != 0 ? ~0ull : partial;
  uint64_t m_second = (full & 1) != 0 ? partial : 0;
  r += Popcount(lf.words[w] & m_first);
  r += Popcount(lf.words[w | 1] & m_second);
  return r;
}

uint32_t DynamicBitVector::LeafSelect1(const Leaf& lf, uint32_t k) {
  DYNDEX_DCHECK(k < lf.ones);
  // Branch-free block find in the rank directory (monotone), then at most
  // two words.
  uint32_t b = 0;
  for (uint32_t j = 1; j < kLeafWords / 2; ++j) b += lf.cum[j] <= k ? 1 : 0;
  k -= lf.cum[b];
  uint32_t w = 2 * b;
  uint32_t c = Popcount(lf.words[w]);
  // Branchless step into the block's upper word (the choice is a coin flip).
  uint32_t go = k >= c ? 1 : 0;
  k -= go * c;
  w += go;
  return w * 64 + SelectInWord(lf.words[w], k);
}

uint32_t DynamicBitVector::LeafSelect0(const Leaf& lf, uint32_t k) {
  DYNDEX_DCHECK(k < lf.size - lf.ones);
  // Zeros directory derived on the fly: zeros before block j is
  // min(128j, size) - cum[j] (tail bits past `size` are zero in storage but
  // not part of the sequence).
  uint32_t b = 0;
  for (uint32_t j = 1; j < kLeafWords / 2; ++j) {
    uint32_t limit = 128 * j < lf.size ? 128 * j : lf.size;
    b += limit - lf.cum[j] <= k ? 1 : 0;
  }
  uint32_t limit_b = 128 * b < lf.size ? 128 * b : lf.size;
  k -= limit_b - lf.cum[b];
  uint32_t w = 2 * b;
  uint64_t inv = ~lf.words[w];
  uint32_t remaining = lf.size - w * 64;
  if (remaining < 64) inv &= LowMask(remaining);
  uint32_t c = Popcount(inv);
  if (k >= c) {
    k -= c;
    ++w;
    inv = ~lf.words[w];
    remaining = lf.size - w * 64;
    if (remaining < 64) inv &= LowMask(remaining);
  }
  return w * 64 + SelectInWord(inv, k);
}

// ---------------------------------------------------------------------------
// Branch-free child selection. The prefix arrays are monotone, so the child
// index equals the number of boundaries below the target. Counting runs in
// two branch-free passes — whole blocks of 8 boundaries first, then the one
// straddling block — ~15 independent compares per node instead of a
// mispredict-prone early-exit scan with a serial subtract chain.
// ---------------------------------------------------------------------------

uint32_t DynamicBitVector::ChildForRank(const Inner& nd, uint64_t i) {
  // Clamp keeps a torn fanout from walking the prefix arrays out of bounds
  // (no-op for valid nodes); with n <= kMaxFanout + 1 the result c stays
  // <= kMaxFanout, so the caller's bits/ones/child probes are in bounds too.
  uint32_t n = nd.n <= kMaxFanout + 1 ? nd.n : kMaxFanout + 1;
  uint32_t c = 0;
  for (uint32_t k = 8; k < n; k += 8) c += nd.bits[k] < i ? 8 : 0;
  // The final index lands within 8 of the coarse count: pull the companion
  // ones/child lines in while the fine pass runs.
  __builtin_prefetch(&nd.ones[c]);
  __builtin_prefetch(&nd.child[c]);
  uint32_t end = n < c + 8 ? n : c + 8;
  uint32_t base = c;
  for (uint32_t k = base + 1; k < end; ++k) c += nd.bits[k] < i ? 1 : 0;
  return c;
}

uint32_t DynamicBitVector::ChildForPos(const Inner& nd, uint64_t i) {
  DYNDEX_DCHECK(i < nd.bits[nd.n]);
  // Clamp keeps a torn fanout from walking the prefix arrays out of bounds
  // (no-op for valid nodes); with n <= kMaxFanout + 1 the result c stays
  // <= kMaxFanout, so the caller's bits/ones/child probes are in bounds too.
  uint32_t n = nd.n <= kMaxFanout + 1 ? nd.n : kMaxFanout + 1;
  uint32_t c = 0;
  for (uint32_t k = 8; k < n; k += 8) c += nd.bits[k] <= i ? 8 : 0;
  __builtin_prefetch(&nd.child[c]);
  uint32_t end = n < c + 8 ? n : c + 8;
  uint32_t base = c;
  for (uint32_t k = base + 1; k < end; ++k) c += nd.bits[k] <= i ? 1 : 0;
  return c;
}

uint32_t DynamicBitVector::ChildForSelect1(const Inner& nd, uint64_t k) {
  DYNDEX_DCHECK(k < nd.ones[nd.n]);
  // Clamp keeps a torn fanout from walking the prefix arrays out of bounds
  // (no-op for valid nodes); with n <= kMaxFanout + 1 the result c stays
  // <= kMaxFanout, so the caller's bits/ones/child probes are in bounds too.
  uint32_t n = nd.n <= kMaxFanout + 1 ? nd.n : kMaxFanout + 1;
  uint32_t c = 0;
  for (uint32_t j = 8; j < n; j += 8) c += nd.ones[j] <= k ? 8 : 0;
  __builtin_prefetch(&nd.bits[c]);
  __builtin_prefetch(&nd.child[c]);
  uint32_t end = n < c + 8 ? n : c + 8;
  uint32_t base = c;
  for (uint32_t j = base + 1; j < end; ++j) c += nd.ones[j] <= k ? 1 : 0;
  return c;
}

uint32_t DynamicBitVector::ChildForSelect0(const Inner& nd, uint64_t k) {
  DYNDEX_DCHECK(k < nd.bits[nd.n] - nd.ones[nd.n]);
  // Clamp keeps a torn fanout from walking the prefix arrays out of bounds
  // (no-op for valid nodes); with n <= kMaxFanout + 1 the result c stays
  // <= kMaxFanout, so the caller's bits/ones/child probes are in bounds too.
  uint32_t n = nd.n <= kMaxFanout + 1 ? nd.n : kMaxFanout + 1;
  uint32_t c = 0;
  for (uint32_t j = 8; j < n; j += 8) {
    c += nd.bits[j] - nd.ones[j] <= k ? 8 : 0;
  }
  __builtin_prefetch(&nd.child[c]);
  uint32_t end = n < c + 8 ? n : c + 8;
  uint32_t base = c;
  for (uint32_t j = base + 1; j < end; ++j) {
    c += nd.bits[j] - nd.ones[j] <= k ? 1 : 0;
  }
  return c;
}

// ---------------------------------------------------------------------------
// Structural helpers.
// ---------------------------------------------------------------------------

void DynamicBitVector::ToDeltas(const Inner& nd, Deltas* d) {
  d->n = nd.n;
  for (uint32_t k = 0; k < nd.n; ++k) {
    d->bits[k] = nd.bits[k + 1] - nd.bits[k];
    d->ones[k] = nd.ones[k + 1] - nd.ones[k];
    d->child[k] = nd.child[k];
  }
}

void DynamicBitVector::FromDeltas(const Deltas& d, Inner* nd) {
  nd->n = d.n;
  nd->bits[0] = 0;
  nd->ones[0] = 0;
  for (uint32_t k = 0; k < d.n; ++k) {
    nd->bits[k + 1] = nd->bits[k] + d.bits[k];
    nd->ones[k + 1] = nd->ones[k] + d.ones[k];
    nd->child[k] = d.child[k];
  }
}

DynamicBitVector::Entry DynamicBitVector::SplitLeafNode(uint32_t id) {
  uint32_t rid = leaves_.Alloc();
  Leaf& l = leaves_[id];
  Leaf& r = leaves_[rid];
  uint32_t half = l.size / 2;
  uint32_t rn = l.size - half;
  CopyBits(r.words, 0, l.words, half, rn);
  r.size = rn;
  LeafRecount(r);
  LeafClearTail(l, half);
  l.size = half;
  LeafRecount(l);
  return {rid, rn, r.ones};
}

DynamicBitVector::Entry DynamicBitVector::SplitInnerNode(uint32_t id) {
  uint32_t rid = inners_.Alloc();
  Inner& l = inners_[id];
  Inner& r = inners_[rid];
  Deltas d;
  ToDeltas(l, &d);
  uint32_t keep = (d.n + 1) / 2;
  Deltas dr;
  dr.n = d.n - keep;
  for (uint32_t k = 0; k < dr.n; ++k) {
    dr.bits[k] = d.bits[keep + k];
    dr.ones[k] = d.ones[keep + k];
    dr.child[k] = d.child[keep + k];
  }
  d.n = keep;
  FromDeltas(d, &l);
  FromDeltas(dr, &r);
  return {rid, r.bits[r.n], r.ones[r.n]};
}

// Inserts `e` as the new child at position idx, carving its counts from the
// tail of child idx-1 (whose prefix entries must already cover e's content).
void DynamicBitVector::InsertChildEntry(Inner& nd, uint32_t idx,
                                        const Entry& e) {
  DYNDEX_DCHECK(idx >= 1 && idx <= nd.n && nd.n <= kMaxFanout);
  for (uint32_t k = nd.n; k > idx; --k) nd.child[k] = nd.child[k - 1];
  nd.child[idx] = e.id;
  for (uint32_t k = nd.n + 1; k > idx; --k) {
    nd.bits[k] = nd.bits[k - 1];
    nd.ones[k] = nd.ones[k - 1];
  }
  nd.bits[idx] = nd.bits[idx + 1] - e.bits;
  nd.ones[idx] = nd.ones[idx + 1] - e.ones;
  ++nd.n;
}

// Drops child idx, folding its span into child idx-1 (whose content must
// already have absorbed it).
void DynamicBitVector::RemoveChildEntry(Inner& nd, uint32_t idx) {
  DYNDEX_DCHECK(idx >= 1 && idx < nd.n);
  for (uint32_t k = idx; k + 1 < nd.n; ++k) nd.child[k] = nd.child[k + 1];
  for (uint32_t k = idx; k < nd.n; ++k) {
    nd.bits[k] = nd.bits[k + 1];
    nd.ones[k] = nd.ones[k + 1];
  }
  --nd.n;
}

void DynamicBitVector::RebalanceLeafChild(Inner& parent, uint32_t idx) {
  DYNDEX_DCHECK(parent.n >= 2);
  uint32_t l = idx > 0 ? idx - 1 : idx;
  uint32_t r = l + 1;
  Leaf& a = leaves_[parent.child[l]];
  Leaf& b = leaves_[parent.child[r]];
  uint32_t total = a.size + b.size;
  if (total <= kFillBits) {
    CopyBits(a.words, a.size, b.words, 0, b.size);
    a.size = total;
    LeafRecount(a);
    leaves_.Free(parent.child[r]);
    RemoveChildEntry(parent, r);
    return;
  }
  uint64_t buf[2 * kLeafWords] = {};
  CopyBits(buf, 0, a.words, 0, a.size);
  CopyBits(buf, a.size, b.words, 0, b.size);
  uint32_t half = total / 2;
  LeafAssign(a, buf, 0, half);
  LeafAssign(b, buf, half, total - half);
  parent.bits[r] = parent.bits[l] + a.size;
  parent.ones[r] = parent.ones[l] + a.ones;
}

void DynamicBitVector::RebalanceInnerChild(Inner& parent, uint32_t idx) {
  DYNDEX_DCHECK(parent.n >= 2);
  uint32_t l = idx > 0 ? idx - 1 : idx;
  uint32_t r = l + 1;
  Inner& a = inners_[parent.child[l]];
  Inner& b = inners_[parent.child[r]];
  uint32_t total = a.n + b.n;
  Deltas da, db;
  ToDeltas(a, &da);
  ToDeltas(b, &db);
  if (total <= kFillFanout) {
    for (uint32_t k = 0; k < db.n; ++k) {
      da.bits[da.n + k] = db.bits[k];
      da.ones[da.n + k] = db.ones[k];
      da.child[da.n + k] = db.child[k];
    }
    da.n = total;
    FromDeltas(da, &a);
    inners_.Free(parent.child[r]);
    RemoveChildEntry(parent, r);
    return;
  }
  // Redistribute evenly through one concatenated delta list (can exceed a
  // single node's capacity, so it gets its own double-width scratch).
  uint64_t all_bits[2 * (kMaxFanout + 1)];
  uint64_t all_ones[2 * (kMaxFanout + 1)];
  uint32_t all_child[2 * (kMaxFanout + 1)];
  for (uint32_t k = 0; k < da.n; ++k) {
    all_bits[k] = da.bits[k];
    all_ones[k] = da.ones[k];
    all_child[k] = da.child[k];
  }
  for (uint32_t k = 0; k < db.n; ++k) {
    all_bits[da.n + k] = db.bits[k];
    all_ones[da.n + k] = db.ones[k];
    all_child[da.n + k] = db.child[k];
  }
  uint32_t na = total / 2;
  Deltas ra, rb;
  ra.n = na;
  rb.n = total - na;
  for (uint32_t k = 0; k < na; ++k) {
    ra.bits[k] = all_bits[k];
    ra.ones[k] = all_ones[k];
    ra.child[k] = all_child[k];
  }
  for (uint32_t k = 0; k < rb.n; ++k) {
    rb.bits[k] = all_bits[na + k];
    rb.ones[k] = all_ones[na + k];
    rb.child[k] = all_child[na + k];
  }
  FromDeltas(ra, &a);
  FromDeltas(rb, &b);
  parent.bits[r] = parent.bits[l] + a.bits[a.n];
  parent.ones[r] = parent.ones[l] + a.ones[a.n];
}

// ---------------------------------------------------------------------------
// Point updates.
// ---------------------------------------------------------------------------

DynamicBitVector::Entry DynamicBitVector::InsertRec(uint32_t id, uint32_t h,
                                                    uint64_t i, bool bit) {
  if (h == 0) {
    if (leaves_[id].size == kLeafBits) {
      Entry right = SplitLeafNode(id);
      Leaf& l = leaves_[id];
      if (i <= l.size) {
        LeafInsertBit(l, static_cast<uint32_t>(i), bit);
      } else {
        Leaf& r = leaves_[right.id];
        LeafInsertBit(r, static_cast<uint32_t>(i - l.size), bit);
        right.bits = r.size;
        right.ones = r.ones;
      }
      return right;
    }
    LeafInsertBit(leaves_[id], static_cast<uint32_t>(i), bit);
    return {};
  }
  Inner& nd = inners_[id];
  uint32_t c = ChildForRank(nd, i);
  Entry split = InsertRec(nd.child[c], h - 1, i - nd.bits[c], bit);
  uint32_t one = bit ? 1 : 0;
  for (uint32_t k = c + 1; k <= nd.n; ++k) {
    nd.bits[k] += 1;
    nd.ones[k] += one;
  }
  if (split.id == kNil) return {};
  InsertChildEntry(nd, c + 1, split);
  if (nd.n > kMaxFanout) return SplitInnerNode(id);
  return {};
}

void DynamicBitVector::Insert(uint64_t i, bool bit) {
  DYNDEX_CHECK(i <= size_);
  if (root_ == kNil) {
    root_ = leaves_.Alloc();
    height_ = 0;
  }
  Entry split = InsertRec(root_, height_, i, bit);
  ++size_;
  ones_ += bit ? 1 : 0;
  if (split.id != kNil) GrowRoot({split});
}

bool DynamicBitVector::EraseRec(uint32_t id, uint32_t h, uint64_t i) {
  Inner& nd = inners_[id];
  uint32_t c = ChildForPos(nd, i);
  uint64_t ci = i - nd.bits[c];
  bool bit;
  if (h == 1) {
    bit = LeafEraseBit(leaves_[nd.child[c]], static_cast<uint32_t>(ci));
  } else {
    bit = EraseRec(nd.child[c], h - 1, ci);
  }
  uint32_t one = bit ? 1 : 0;
  for (uint32_t k = c + 1; k <= nd.n; ++k) {
    nd.bits[k] -= 1;
    nd.ones[k] -= one;
  }
  if (h == 1) {
    if (leaves_[nd.child[c]].size < kMinLeafBits && nd.n > 1) {
      RebalanceLeafChild(nd, c);
    }
  } else {
    if (inners_[nd.child[c]].n < kMinFanout && nd.n > 1) {
      RebalanceInnerChild(nd, c);
    }
  }
  return bit;
}

void DynamicBitVector::Erase(uint64_t i) {
  DYNDEX_CHECK(i < size_);
  bool bit;
  if (height_ == 0) {
    bit = LeafEraseBit(leaves_[root_], static_cast<uint32_t>(i));
  } else {
    bit = EraseRec(root_, height_, i);
  }
  --size_;
  ones_ -= bit ? 1 : 0;
  while (height_ > 0 && inners_[root_].n == 1) {
    uint32_t only = inners_[root_].child[0];
    inners_.Free(root_);
    root_ = only;
    --height_;
  }
  if (size_ == 0) {
    DYNDEX_DCHECK(height_ == 0);
    leaves_.Free(root_);
    root_ = kNil;
  }
}

void DynamicBitVector::Set(uint64_t i, bool bit) {
  DYNDEX_CHECK(i < size_);
  DYNDEX_DCHECK(height_ < 16);
  // One descent recording the path; counts are fixed only if the bit flips.
  uint32_t path_node[16];
  uint32_t path_child[16];
  uint32_t id = root_;
  uint64_t pos = i;
  for (uint32_t h = height_; h > 0; --h) {
    Inner& nd = inners_[id];
    uint32_t c = ChildForPos(nd, pos);
    pos -= nd.bits[c];
    path_node[h - 1] = id;
    path_child[h - 1] = c;
    id = nd.child[c];
  }
  Leaf& lf = leaves_[id];
  uint64_t mask = 1ull << (pos & 63);
  bool old = (lf.words[pos >> 6] & mask) != 0;
  if (old == bit) return;
  int64_t delta = bit ? 1 : -1;
  if (bit) {
    lf.words[pos >> 6] |= mask;
    ++lf.ones;
    ++ones_;
  } else {
    lf.words[pos >> 6] &= ~mask;
    --lf.ones;
    --ones_;
  }
  for (uint32_t j = static_cast<uint32_t>(pos >> 7) + 1; j < kLeafWords / 2;
       ++j) {
    lf.cum[j] = static_cast<uint16_t>(lf.cum[j] + delta);
  }
  for (uint32_t h = height_; h > 0; --h) {
    Inner& nd = inners_[path_node[h - 1]];
    for (uint32_t k = path_child[h - 1] + 1; k <= nd.n; ++k) {
      nd.ones[k] += delta;
    }
  }
}

// ---------------------------------------------------------------------------
// Queries.
// ---------------------------------------------------------------------------

bool DynamicBitVector::Get(uint64_t i) const {
  DYNDEX_CHECK(i < size_);
  uint32_t id = root_;
  for (uint32_t h = height_; h > 0; --h) {
    const Inner& nd = inners_[id];
    uint32_t c = ChildForPos(nd, i);
    i -= nd.bits[c];
    id = nd.child[c];
  }
  const Leaf& lf = leaves_[id];
  // Mask keeps a torn descent position inside the leaf (no-op for valid i).
  i &= kLeafBits - 1;
  return (lf.words[i >> 6] >> (i & 63)) & 1;
}

uint64_t DynamicBitVector::RankFrom(uint32_t id, uint32_t h, uint64_t i) const {
  uint64_t r = 0;
  for (; h > 0; --h) {
    const Inner& nd = inners_[id];
    uint32_t c = ChildForRank(nd, i);
    i -= nd.bits[c];
    r += nd.ones[c];
    id = nd.child[c];
  }
  return r + LeafRank1(leaves_[id], static_cast<uint32_t>(i));
}

uint64_t DynamicBitVector::Rank1(uint64_t i) const {
  DYNDEX_CHECK(i <= size_);
  if (root_ == kNil) return 0;
  return RankFrom(root_, height_, i);
}

std::pair<uint64_t, uint64_t> DynamicBitVector::RankPair(uint64_t i,
                                                         uint64_t j) const {
  DYNDEX_CHECK(i <= j && j <= size_);
  if (root_ == kNil) return {0, 0};
  uint32_t id = root_;
  uint64_t acc = 0;  // ones before the shared child
  uint32_t h = height_;
  while (h > 0) {
    const Inner& nd = inners_[id];
    uint32_t ci = ChildForRank(nd, i);
    uint32_t cj = ChildForRank(nd, j);
    if (ci != cj) {
      // The positions diverge here: finish each side independently.
      uint64_t ri =
          acc + nd.ones[ci] + RankFrom(nd.child[ci], h - 1, i - nd.bits[ci]);
      uint64_t rj =
          acc + nd.ones[cj] + RankFrom(nd.child[cj], h - 1, j - nd.bits[cj]);
      return {ri, rj};
    }
    acc += nd.ones[ci];
    i -= nd.bits[ci];
    j -= nd.bits[ci];
    id = nd.child[ci];
    --h;
  }
  const Leaf& lf = leaves_[id];
  return {acc + LeafRank1(lf, static_cast<uint32_t>(i)),
          acc + LeafRank1(lf, static_cast<uint32_t>(j))};
}

uint64_t DynamicBitVector::Select1(uint64_t k) const {
  DYNDEX_CHECK(k < ones_);
  uint32_t id = root_;
  uint64_t pos = 0;
  for (uint32_t h = height_; h > 0; --h) {
    const Inner& nd = inners_[id];
    uint32_t c = ChildForSelect1(nd, k);
    k -= nd.ones[c];
    pos += nd.bits[c];
    id = nd.child[c];
  }
  return pos + LeafSelect1(leaves_[id], static_cast<uint32_t>(k));
}

uint64_t DynamicBitVector::Select0(uint64_t k) const {
  DYNDEX_CHECK(k < zeros());
  uint32_t id = root_;
  uint64_t pos = 0;
  for (uint32_t h = height_; h > 0; --h) {
    const Inner& nd = inners_[id];
    uint32_t c = ChildForSelect0(nd, k);
    k -= nd.bits[c] - nd.ones[c];
    pos += nd.bits[c];
    id = nd.child[c];
  }
  return pos + LeafSelect0(leaves_[id], static_cast<uint32_t>(k));
}

// ---------------------------------------------------------------------------
// Bulk paths.
// ---------------------------------------------------------------------------

void DynamicBitVector::Clear() {
  leaves_.Clear();
  inners_.Clear();
  root_ = kNil;
  height_ = 0;
  size_ = 0;
  ones_ = 0;
}

void DynamicBitVector::PackEntries(const std::vector<Entry>& entries,
                                   uint32_t reuse_id,
                                   std::vector<Entry>* out) {
  uint64_t n = entries.size();
  uint64_t chunks = n <= kMaxFanout ? 1 : CeilDiv(n, kFillFanout);
  out->reserve(out->size() + chunks);
  uint64_t per = n / chunks, rem = n % chunks;
  uint64_t pos = 0;
  for (uint64_t k = 0; k < chunks; ++k) {
    uint64_t cnt = per + (k < rem ? 1 : 0);
    uint32_t id =
        k == 0 && reuse_id != kNil ? reuse_id : inners_.Alloc();
    Inner& nd = inners_[id];
    nd.n = static_cast<uint32_t>(cnt);
    nd.bits[0] = 0;
    nd.ones[0] = 0;
    for (uint64_t e = 0; e < cnt; ++e) {
      const Entry& src = entries[pos + e];
      nd.bits[e + 1] = nd.bits[e] + src.bits;
      nd.ones[e + 1] = nd.ones[e] + src.ones;
      nd.child[e] = src.id;
    }
    out->push_back({id, nd.bits[cnt], nd.ones[cnt]});
    pos += cnt;
  }
}

void DynamicBitVector::PackLevel(std::vector<Entry>* level) {
  std::vector<Entry> parents;
  PackEntries(*level, kNil, &parents);
  *level = std::move(parents);
}

void DynamicBitVector::GrowRoot(std::vector<Entry> extra) {
  if (extra.empty()) return;
  uint64_t eb = 0, eo = 0;
  for (const Entry& e : extra) {
    eb += e.bits;
    eo += e.ones;
  }
  std::vector<Entry> level;
  level.reserve(1 + extra.size());
  level.push_back({root_, size_ - eb, ones_ - eo});
  level.insert(level.end(), extra.begin(), extra.end());
  while (level.size() > 1) {
    PackLevel(&level);
    ++height_;
  }
  root_ = level[0].id;
}

void DynamicBitVector::Build(const uint64_t* words, uint64_t nbits) {
  Clear();
  if (nbits == 0) return;
  uint64_t nleaves = CeilDiv(nbits, kFillBits);
  uint64_t per = nbits / nleaves, rem = nbits % nleaves;
  std::vector<Entry> level;
  level.reserve(nleaves);
  uint64_t pos = 0;
  for (uint64_t k = 0; k < nleaves; ++k) {
    uint64_t cnt = per + (k < rem ? 1 : 0);
    uint32_t id = leaves_.Alloc();
    Leaf& lf = leaves_[id];
    LeafAssign(lf, words, pos, static_cast<uint32_t>(cnt));
    level.push_back({id, cnt, lf.ones});
    ones_ += lf.ones;
    pos += cnt;
  }
  while (level.size() > 1) {
    PackLevel(&level);
    ++height_;
  }
  root_ = level[0].id;
  size_ = nbits;
}

void DynamicBitVector::LeafRangeInsert(uint32_t id, uint64_t i,
                                       const uint64_t* words, uint64_t nbits,
                                       std::vector<Entry>* extra) {
  Leaf& lf = leaves_[id];
  DYNDEX_DCHECK(i <= lf.size);
  uint64_t total = lf.size + nbits;
  if (total <= kLeafBits) {
    uint64_t buf[kLeafWords] = {};
    CopyBits(buf, 0, lf.words, 0, i);
    CopyBits(buf, i, words, 0, nbits);
    CopyBits(buf, i + nbits, lf.words, i, lf.size - i);
    LeafAssign(lf, buf, 0, static_cast<uint32_t>(total));
    return;
  }
  // Splice into a scratch buffer, then repack into evenly filled leaves; the
  // first chunk reuses this leaf, the rest surface as new right siblings.
  std::vector<uint64_t> buf(CeilDiv(total, 64) + 1, 0);
  CopyBits(buf.data(), 0, lf.words, 0, i);
  CopyBits(buf.data(), i, words, 0, nbits);
  CopyBits(buf.data(), i + nbits, lf.words, i, lf.size - i);
  uint64_t chunks = CeilDiv(total, kFillBits);
  uint64_t per = total / chunks, rem = total % chunks;
  uint64_t pos = 0;
  for (uint64_t k = 0; k < chunks; ++k) {
    uint64_t cnt = per + (k < rem ? 1 : 0);
    uint32_t nid = k == 0 ? id : leaves_.Alloc();
    Leaf& out = leaves_[nid];
    LeafAssign(out, buf.data(), pos, static_cast<uint32_t>(cnt));
    if (k > 0) extra->push_back({nid, cnt, out.ones});
    pos += cnt;
  }
}

void DynamicBitVector::InsertRangeRec(uint32_t id, uint32_t h, uint64_t i,
                                      const uint64_t* words, uint64_t nbits,
                                      uint64_t add_ones,
                                      std::vector<Entry>* extra) {
  Inner& nd = inners_[id];
  uint32_t c = ChildForRank(nd, i);
  std::vector<Entry> sub;
  if (h == 1) {
    LeafRangeInsert(nd.child[c], i - nd.bits[c], words, nbits, &sub);
  } else {
    InsertRangeRec(nd.child[c], h - 1, i - nd.bits[c], words, nbits, add_ones,
                   &sub);
  }
  for (uint32_t k = c + 1; k <= nd.n; ++k) {
    nd.bits[k] += nbits;
    nd.ones[k] += add_ones;
  }
  if (sub.empty()) return;
  if (nd.n + sub.size() <= kMaxFanout) {
    // Carve the new right siblings off child c's tail, last first, so each
    // insertion slices the correct suffix.
    for (uint32_t k = static_cast<uint32_t>(sub.size()); k-- > 0;) {
      InsertChildEntry(nd, c + 1, sub[k]);
    }
    return;
  }
  // Overflow: gather every entry (with the new siblings spliced in after c)
  // and repack into evenly filled nodes; the first reuses this node, the
  // rest surface as new right siblings of it.
  std::vector<Entry> all;
  all.reserve(nd.n + sub.size());
  for (uint32_t k = 0; k < nd.n; ++k) {
    uint64_t cb = nd.bits[k + 1] - nd.bits[k];
    uint64_t co = nd.ones[k + 1] - nd.ones[k];
    if (k == c) {
      // Child c's prefix span still includes the content that moved into
      // the new siblings; restore its own count before splicing them in.
      for (const Entry& e : sub) {
        cb -= e.bits;
        co -= e.ones;
      }
    }
    all.push_back({nd.child[k], cb, co});
    if (k == c) all.insert(all.end(), sub.begin(), sub.end());
  }
  std::vector<Entry> packed;
  PackEntries(all, id, &packed);
  extra->insert(extra->end(), packed.begin() + 1, packed.end());
}

void DynamicBitVector::InsertRange(uint64_t i, const uint64_t* words,
                                   uint64_t nbits) {
  DYNDEX_CHECK(i <= size_);
  if (nbits == 0) return;
  if (root_ == kNil) {
    Build(words, nbits);
    return;
  }
  uint64_t add_ones = PopcountBits(words, nbits);
  std::vector<Entry> extra;
  if (height_ == 0) {
    LeafRangeInsert(root_, i, words, nbits, &extra);
  } else {
    InsertRangeRec(root_, height_, i, words, nbits, add_ones, &extra);
  }
  size_ += nbits;
  ones_ += add_ones;
  GrowRoot(std::move(extra));
}

void DynamicBitVector::AppendRun(bool bit, uint64_t count) {
  if (count == 0) return;
  std::vector<uint64_t> words(CeilDiv(count, 64), bit ? ~0ull : 0ull);
  InsertRange(size_, words.data(), count);
}

uint64_t DynamicBitVector::SpaceBytes() const {
  return sizeof(*this) + leaves_.CapacityBytes() + inners_.CapacityBytes();
}

}  // namespace dyndex
