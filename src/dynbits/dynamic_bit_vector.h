// Dynamic bit vector: insert/delete/access/rank/select in O(log n), plus
// bulk paths (Build, InsertRange, AppendRun) and a two-position RankPair.
//
// This is the substrate of the *baseline* structures ([30]/[35]-style dynamic
// wavelet trees): every operation routes through a balanced tree, which is
// exactly the Fredman-Saks-bounded bottleneck the paper's framework avoids.
// The engine keeps that asymptotic role but removes the constant-factor
// slack, in the style of practical dynamic-succinct systems (Coimbra et al.
// 2019; Brisaboa et al. 2017):
//
//  * Counted B-tree with fanout up to kMaxFanout (64): internal nodes hold
//    exclusive (bits, ones) prefix counts in flat arrays, so choosing a
//    child is a branch-free predicate count over a few cache lines — no
//    serial subtract chain, no mispredicted early exit, no pointer chase.
//  * Leaves are fixed-capacity kLeafBits (1024) bit blocks stored inline in
//    the node — no per-leaf heap payload.
//  * All nodes live in chunked pool allocators with freelist reuse; nodes are
//    addressed by 32-bit ids and chunks never move, so there is no
//    allocation churn on the update path and teardown is O(#chunks).
//  * Leaf-internal rank/select is word-parallel popcount + table-driven
//    in-word select (util/bits.h).
//
// All leaves sit at the same depth; `height_` counts the internal levels, so
// a node id's type (leaf vs internal) is known from the descent depth alone.
#ifndef DYNDEX_DYNBITS_DYNAMIC_BIT_VECTOR_H_
#define DYNDEX_DYNBITS_DYNAMIC_BIT_VECTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/bits.h"
#include "util/check.h"
#include "util/retire.h"

namespace dyndex {

/// Growable/shrinkable bit sequence with positional updates and rank/select.
// lint:reader-shared
class DynamicBitVector {
 public:
  DynamicBitVector() = default;
  ~DynamicBitVector() = default;
  // Moved-from vectors are valid empty vectors (the historical contract).
  DynamicBitVector(DynamicBitVector&& other) noexcept
      : leaves_(std::move(other.leaves_)),
        inners_(std::move(other.inners_)),
        root_(other.root_),
        height_(other.height_),
        size_(other.size_),
        ones_(other.ones_) {
    other.ResetToEmpty();
  }
  DynamicBitVector& operator=(DynamicBitVector&& other) noexcept {
    leaves_ = std::move(other.leaves_);
    inners_ = std::move(other.inners_);
    root_ = other.root_;
    height_ = other.height_;
    size_ = other.size_;
    ones_ = other.ones_;
    other.ResetToEmpty();
    return *this;
  }
  DynamicBitVector(const DynamicBitVector&) = delete;
  DynamicBitVector& operator=(const DynamicBitVector&) = delete;

  uint64_t size() const { return size_; }
  uint64_t ones() const { return ones_; }
  uint64_t zeros() const { return size_ - ones_; }

  /// Discards all content and releases the node pools.
  void Clear();

  /// Bulk-loads from `nbits` LSB-first packed bits (replacing any previous
  /// content): leaves are filled to kFillBits and internal levels are built
  /// bottom-up, O(n/w) words moved — no per-bit tree descents.
  void Build(const uint64_t* words, uint64_t nbits);

  /// Inserts `bit` before position i (i == size() appends). O(log n).
  void Insert(uint64_t i, bool bit);

  /// Inserts `nbits` packed bits before position i in one descent: one leaf
  /// splice plus O(nbits/w) leaf fills, instead of nbits full descents.
  void InsertRange(uint64_t i, const uint64_t* words, uint64_t nbits);

  /// Appends `count` copies of `bit` (bulk path).
  void AppendRun(bool bit, uint64_t count);

  /// Removes the bit at position i. O(log n).
  void Erase(uint64_t i);

  /// Appends a bit.
  void PushBack(bool bit) { Insert(size_, bit); }

  bool Get(uint64_t i) const;

  /// Sets the bit at position i (no structural change). O(log n).
  void Set(uint64_t i, bool bit);

  /// Number of 1-bits in [0, i). O(log n).
  uint64_t Rank1(uint64_t i) const;
  uint64_t Rank0(uint64_t i) const { return i - Rank1(i); }

  /// {Rank1(i), Rank1(j)} sharing the descent while both positions fall into
  /// the same child — the backward-search (LF-pair) primitive. Requires
  /// i <= j <= size().
  std::pair<uint64_t, uint64_t> RankPair(uint64_t i, uint64_t j) const;

  /// Position of the k-th (0-based) 1-bit. Requires k < ones(). O(log n).
  uint64_t Select1(uint64_t k) const;

  /// Position of the k-th (0-based) 0-bit. Requires k < zeros(). O(log n).
  uint64_t Select0(uint64_t k) const;

  /// Arena-resident bytes: allocated pool chunks (capacity, not just live
  /// payload) plus bookkeeping, so space/time trade-offs are reported
  /// honestly.
  uint64_t SpaceBytes() const;

 private:
  static constexpr uint32_t kLeafWords = 16;               // 1024 bits
  static constexpr uint32_t kLeafBits = kLeafWords * 64;
  static constexpr uint32_t kMinLeafBits = kLeafBits / 4;  // merge below this
  static constexpr uint32_t kFillBits = kLeafBits * 3 / 4;  // bulk-load fill
  static constexpr uint32_t kMaxFanout = 64;
  static constexpr uint32_t kMinFanout = 24;   // merge/borrow below this
  static constexpr uint32_t kFillFanout = 48;  // bulk-load / repack fill
  static constexpr uint32_t kNil = ~0u;

  struct alignas(64) Leaf {
    uint64_t words[kLeafWords];
    uint32_t size = 0;  // bits; bits >= size are kept zero
    uint32_t ones = 0;
    // Rank directory at 2-word (128-bit) granularity, living in what would
    // otherwise be alignment padding: cum[j] = ones in words[0, 2j). Makes
    // leaf rank/select O(1) popcounts instead of a serial word scan.
    uint16_t cum[kLeafWords / 2] = {};
  };

  struct alignas(64) Inner {
    // Exclusive prefix counts: bits[k]/ones[k] cover children [0, k), so
    // bits[n] is the subtree total and child c spans [bits[c], bits[c+1]).
    // One spare child slot holds the overflow entry between an insert and
    // the split it triggers.
    uint64_t bits[kMaxFanout + 2];
    uint64_t ones[kMaxFanout + 2];
    uint32_t child[kMaxFanout + 1];
    uint32_t n = 0;
  };

  /// Per-child (delta) view of an Inner, used by the rare structural ops
  /// (splits, merges, redistributes) where list edits are simpler than
  /// prefix-array surgery; the hot paths never materialize it.
  struct Deltas {
    uint64_t bits[kMaxFanout + 1];
    uint64_t ones[kMaxFanout + 1];
    uint32_t child[kMaxFanout + 1];
    uint32_t n = 0;
  };

  /// Chunked arena with freelist reuse: ids are stable, chunks never move,
  /// and freed slots are recycled before the bump pointer grows.
  ///
  /// The chunk directory is published the way SeqHashMap publishes its slot
  /// array: one acquire load of `dir_` yields an immutable Dir whose slot
  /// array never reallocates, so an optimistic reader's bounds check and
  /// probe can never disagree, and slots hold plain chunk pointers (null
  /// until the chunk exists), so a stale view lands in DYNDEX_CHECK rather
  /// than on a dangling pointer. A vector of unique_ptr chunks is NOT safe
  /// here: growing it moves the elements, which nulls the old buffer's
  /// pointers in place under a reader mid-descent.
  // lint:reader-shared
  template <typename T>
  class Pool {
   public:
    Pool() = default;
    ~Pool() { Clear(); }
    Pool(Pool&& other) noexcept
        : owner_(std::move(other.owner_)),
          free_(std::move(other.free_)),
          used_(other.used_),
          num_chunks_(other.num_chunks_) {
      // Ownership transfer: the directory moves from `other` into this pool
      // and the source empties; nothing is displaced, so there is nothing to
      // Retire.
      // lint:allow(publish-retire) ownership transfer, nothing displaced
      dir_.store(owner_.get(), std::memory_order_release);
      other.dir_.store(nullptr, std::memory_order_release);
      other.used_ = 0;
      other.num_chunks_ = 0;
    }
    Pool& operator=(Pool&& other) noexcept {
      if (this != &other) {
        // Clear() parks this pool's old directory through the retire sink, so
        // the ownership transfer below displaces nothing live.
        Clear();
        owner_ = std::move(other.owner_);
        free_ = std::move(other.free_);
        used_ = other.used_;
        num_chunks_ = other.num_chunks_;
        // lint:allow(publish-retire) old dir already parked by Clear() above
        dir_.store(owner_.get(), std::memory_order_release);
        other.dir_.store(nullptr, std::memory_order_release);
        other.used_ = 0;
        other.num_chunks_ = 0;
      }
      return *this;
    }
    uint32_t Alloc() {
      if (!free_.empty()) {
        uint32_t id = free_.back();
        free_.pop_back();
        (*this)[id] = T{};
        return id;
      }
      if ((used_ >> kChunkLog) == num_chunks_) AddChunk();
      uint32_t id = used_++;
      (*this)[id] = T{};
      return id;
    }
    void Free(uint32_t id) { free_.push_back(id); }
    T& operator[](uint32_t id) {
      return owner_->ptrs[id >> kChunkLog].load(
          std::memory_order_relaxed)[id & (kChunkSize - 1)];
    }
    const T& operator[](uint32_t id) const {
      // Read paths may run optimistically (serve/epoch_guard.h) and descend
      // with a torn node id, or against a pool being cleared; the checks keep
      // the access inside live chunks (throwing TornReadError mid-attempt)
      // instead of chasing a stale or null pointer.
      const Dir* d = dir_.load(std::memory_order_acquire);
      DYNDEX_CHECK(d != nullptr && (id >> kChunkLog) < d->ptrs.size());
      const T* chunk = d->ptrs[id >> kChunkLog].load(std::memory_order_acquire);
      DYNDEX_CHECK(chunk != nullptr);
      return chunk[id & (kChunkSize - 1)];
    }
    void Clear() {
      // Park the chunks and the directory instead of freeing while an
      // optimistic reader may be mid-descent; without an active retire sink
      // this destroys them here, as before.
      if (owner_ != nullptr) {
        dir_.store(nullptr, std::memory_order_release);
        Garbage g;
        g.num_chunks = num_chunks_;
        g.dir = std::move(owner_);
        Retire(std::move(g));
      }
      free_.clear();
      used_ = 0;
      num_chunks_ = 0;
    }
    uint64_t CapacityBytes() const {
      const Dir* d = owner_.get();
      return uint64_t{num_chunks_} * kChunkSize * sizeof(T) +
             (d != nullptr ? d->ptrs.size() * sizeof(d->ptrs[0]) : 0) +
             free_.capacity() * sizeof(uint32_t);
    }

   private:
    static constexpr uint32_t kChunkLog = 6;
    static constexpr uint32_t kChunkSize = 1u << kChunkLog;
    static constexpr uint64_t kMinDirSlots = 8;

    /// Immutable chunk directory: slot count and storage are fixed at
    /// construction, so one `dir_` load gives a self-consistent
    /// (bounds, data) pair. Slots fill monotonically as chunks are
    /// allocated. Does not own the chunks — growth shares them with the
    /// replacement Dir; Garbage owns them at teardown.
    struct Dir {
      explicit Dir(uint64_t cap) : ptrs(cap) {}
      retire_vector<std::atomic<T*>> ptrs;
    };

    /// Owns a retired directory plus its chunks; frees both when destroyed
    /// (at reclaim time, or immediately when no sink is active).
    struct Garbage {
      std::unique_ptr<Dir> dir;
      uint64_t num_chunks = 0;
      Garbage() = default;
      Garbage(Garbage&&) = default;
      Garbage& operator=(Garbage&&) = default;
      ~Garbage() {
        if (dir == nullptr) return;
        for (uint64_t k = 0; k < num_chunks; ++k) {
          delete[] dir->ptrs[k].load(std::memory_order_relaxed);
        }
      }
    };

    void AddChunk() {
      if (owner_ == nullptr || num_chunks_ == owner_->ptrs.size()) {
        uint64_t cap =
            owner_ == nullptr ? kMinDirSlots : owner_->ptrs.size() * 2;
        auto grown = std::make_unique<Dir>(cap);
        for (uint64_t k = 0; k < num_chunks_; ++k) {
          grown->ptrs[k].store(owner_->ptrs[k].load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
        }
        Dir* raw = grown.get();
        if (owner_ != nullptr) Retire(std::move(owner_));
        owner_ = std::move(grown);
        dir_.store(raw, std::memory_order_release);
      }
      owner_->ptrs[num_chunks_].store(new T[kChunkSize](),
                                      std::memory_order_release);
      ++num_chunks_;
    }

    std::unique_ptr<Dir> owner_;
    std::atomic<Dir*> dir_{nullptr};
    // Writer-side freelist: readers never touch it, they only descend through
    // the atomically published dir_ above.
    // lint:allow(reader-container) writer-side freelist, not a read path
    std::vector<uint32_t> free_;
    uint32_t used_ = 0;
    uint32_t num_chunks_ = 0;
  };

  /// (node id, subtree bit count, subtree one count) handed up during
  /// splits, bulk loads and range inserts.
  struct Entry {
    uint32_t id = kNil;
    uint64_t bits = 0;
    uint64_t ones = 0;
  };

  Pool<Leaf> leaves_;
  Pool<Inner> inners_;
  uint32_t root_ = kNil;
  uint32_t height_ = 0;  // internal levels above the leaves
  uint64_t size_ = 0;
  uint64_t ones_ = 0;

  void ResetToEmpty() {
    root_ = kNil;
    height_ = 0;
    size_ = 0;
    ones_ = 0;
  }

  // Leaf-local ops (word-parallel).
  static void LeafInsertBit(Leaf& lf, uint32_t i, bool bit);
  static bool LeafEraseBit(Leaf& lf, uint32_t i);
  static uint64_t LeafRank1(const Leaf& lf, uint32_t i);
  static uint32_t LeafSelect1(const Leaf& lf, uint32_t k);
  static uint32_t LeafSelect0(const Leaf& lf, uint32_t k);
  static void LeafAssign(Leaf& lf, const uint64_t* buf, uint64_t pos,
                         uint32_t nbits);
  static void LeafClearTail(Leaf& lf, uint32_t from);
  static void LeafRecount(Leaf& lf);

  // Branch-free child selection over the prefix arrays. "Rank" style sends
  // a position equal to a child boundary left; "Pos" style requires
  // i < subtree size.
  static uint32_t ChildForRank(const Inner& nd, uint64_t i);
  static uint32_t ChildForPos(const Inner& nd, uint64_t i);
  static uint32_t ChildForSelect1(const Inner& nd, uint64_t k);
  static uint32_t ChildForSelect0(const Inner& nd, uint64_t k);

  // Structural helpers.
  static void ToDeltas(const Inner& nd, Deltas* d);
  static void FromDeltas(const Deltas& d, Inner* nd);
  Entry SplitLeafNode(uint32_t id);
  Entry SplitInnerNode(uint32_t id);
  static void InsertChildEntry(Inner& nd, uint32_t idx, const Entry& e);
  static void RemoveChildEntry(Inner& nd, uint32_t idx);
  void RebalanceLeafChild(Inner& parent, uint32_t idx);
  void RebalanceInnerChild(Inner& parent, uint32_t idx);

  Entry InsertRec(uint32_t id, uint32_t h, uint64_t i, bool bit);
  bool EraseRec(uint32_t id, uint32_t h, uint64_t i);
  void LeafRangeInsert(uint32_t id, uint64_t i, const uint64_t* words,
                       uint64_t nbits, std::vector<Entry>* extra);
  void InsertRangeRec(uint32_t id, uint32_t h, uint64_t i,
                      const uint64_t* words, uint64_t nbits,
                      uint64_t add_ones, std::vector<Entry>* extra);
  /// Packs `entries` into evenly filled Inner nodes (one node when they fit
  /// kMaxFanout, else ceil(n/kFillFanout) nodes). The first node reuses
  /// `reuse_id` when given (else allocates); one Entry per packed node is
  /// appended to *out.
  void PackEntries(const std::vector<Entry>& entries, uint32_t reuse_id,
                   std::vector<Entry>* out);
  /// Replaces `level` (entries of one tree level, left to right) with the
  /// entries of a freshly built parent level.
  void PackLevel(std::vector<Entry>* level);
  /// Absorbs `extra` (new right siblings of the root) by growing new root
  /// levels until a single root remains.
  void GrowRoot(std::vector<Entry> extra);
  uint64_t RankFrom(uint32_t id, uint32_t h, uint64_t i) const;
};

}  // namespace dyndex

#endif  // DYNDEX_DYNBITS_DYNAMIC_BIT_VECTOR_H_
