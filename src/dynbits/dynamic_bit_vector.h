// Dynamic bit vector: insert/delete/access/rank/select in O(log n).
//
// This is the substrate of the *baseline* structures ([30]/[35]-style dynamic
// wavelet trees): every operation routes through a balanced tree, which is
// exactly the Fredman-Saks-bounded bottleneck the paper's framework avoids.
//
// Implementation: an AVL tree whose leaves hold packed bit blocks of up to
// kMaxLeafBits bits; internal nodes cache (subtree bits, subtree ones, height).
#ifndef DYNDEX_DYNBITS_DYNAMIC_BIT_VECTOR_H_
#define DYNDEX_DYNBITS_DYNAMIC_BIT_VECTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/bits.h"
#include "util/check.h"

namespace dyndex {

/// Growable/shrinkable bit sequence with positional updates and rank/select.
class DynamicBitVector {
 public:
  DynamicBitVector() = default;
  ~DynamicBitVector();
  DynamicBitVector(DynamicBitVector&&) noexcept;
  DynamicBitVector& operator=(DynamicBitVector&&) noexcept;
  DynamicBitVector(const DynamicBitVector&) = delete;
  DynamicBitVector& operator=(const DynamicBitVector&) = delete;

  uint64_t size() const { return root_ ? root_->size : 0; }
  uint64_t ones() const { return root_ ? root_->ones : 0; }
  uint64_t zeros() const { return size() - ones(); }

  /// Inserts `bit` before position i (i == size() appends). O(log n).
  void Insert(uint64_t i, bool bit);

  /// Removes the bit at position i. O(log n).
  void Erase(uint64_t i);

  /// Appends a bit.
  void PushBack(bool bit) { Insert(size(), bit); }

  bool Get(uint64_t i) const;

  /// Sets the bit at position i (no structural change). O(log n).
  void Set(uint64_t i, bool bit);

  /// Number of 1-bits in [0, i). O(log n).
  uint64_t Rank1(uint64_t i) const;
  uint64_t Rank0(uint64_t i) const { return i - Rank1(i); }

  /// Position of the k-th (0-based) 1-bit. Requires k < ones(). O(log n).
  uint64_t Select1(uint64_t k) const;

  /// Position of the k-th (0-based) 0-bit. Requires k < zeros(). O(log n).
  uint64_t Select0(uint64_t k) const;

  uint64_t SpaceBytes() const;

 private:
  static constexpr uint32_t kMaxLeafWords = 12;  // 768 bits
  static constexpr uint32_t kMaxLeafBits = kMaxLeafWords * 64;

  struct Node {
    // Internal iff left != nullptr (then right != nullptr too).
    std::unique_ptr<Node> left, right;
    uint64_t size = 0;   // bits in subtree (or leaf)
    uint64_t ones = 0;   // ones in subtree (or leaf)
    int32_t height = 0;  // leaf height 0
    std::vector<uint64_t> words;  // leaf payload

    bool is_leaf() const { return left == nullptr; }
  };

  std::unique_ptr<Node> root_;

  static void Update(Node* n);
  static int Balance(const Node* n);
  static std::unique_ptr<Node> RotateLeft(std::unique_ptr<Node> n);
  static std::unique_ptr<Node> RotateRight(std::unique_ptr<Node> n);
  static std::unique_ptr<Node> Rebalance(std::unique_ptr<Node> n);
  static std::unique_ptr<Node> InsertRec(std::unique_ptr<Node> n, uint64_t i,
                                         bool bit);
  static std::unique_ptr<Node> EraseRec(std::unique_ptr<Node> n, uint64_t i);

  static void LeafInsert(Node* leaf, uint64_t i, bool bit);
  static void LeafErase(Node* leaf, uint64_t i);
  static std::unique_ptr<Node> SplitLeaf(std::unique_ptr<Node> leaf);
};

}  // namespace dyndex

#endif  // DYNDEX_DYNBITS_DYNAMIC_BIT_VECTOR_H_
