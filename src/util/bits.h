// Broadword/bit-manipulation primitives used by every succinct structure in the
// library: popcount, select-in-word, integer logs and ceil-div helpers.
#ifndef DYNDEX_UTIL_BITS_H_
#define DYNDEX_UTIL_BITS_H_

#include <bit>
#include <cstdint>

#include "util/check.h"

namespace dyndex {

/// Number of 1-bits in `x`.
inline uint32_t Popcount(uint64_t x) {
  return static_cast<uint32_t>(std::popcount(x));
}

/// Position (0-based, LSB first) of the k-th (0-based) 1-bit of `x`.
/// Requires k < Popcount(x).
uint32_t SelectInWord(uint64_t x, uint32_t k);

/// Position of the lowest set bit. Requires x != 0.
inline uint32_t Ctz(uint64_t x) {
  DYNDEX_DCHECK(x != 0);
  return static_cast<uint32_t>(std::countr_zero(x));
}

/// floor(log2(x)) for x >= 1; returns 0 for x == 0.
inline uint32_t FloorLog2(uint64_t x) {
  return x == 0 ? 0 : 63u - static_cast<uint32_t>(std::countl_zero(x));
}

/// ceil(log2(x)): number of bits needed to represent values in [0, x).
/// CeilLog2(0) == CeilLog2(1) == 0.
inline uint32_t CeilLog2(uint64_t x) {
  if (x <= 1) return 0;
  return FloorLog2(x - 1) + 1;
}

/// Number of bits needed to store the value `x` itself (at least 1).
inline uint32_t BitWidth(uint64_t x) { return x == 0 ? 1 : FloorLog2(x) + 1; }

/// ceil(a / b) for b > 0.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) {
  DYNDEX_DCHECK(b > 0);
  return (a + b - 1) / b;
}

/// Mask with the low `n` bits set; n in [0, 64].
inline uint64_t LowMask(uint32_t n) {
  return n >= 64 ? ~0ull : ((1ull << n) - 1);
}

/// Reads `len` (0..64) bits starting at absolute bit `pos` from `words`,
/// LSB-first. May touch the word after the one containing `pos`, but only
/// when the range genuinely straddles it.
inline uint64_t ReadBits(const uint64_t* words, uint64_t pos, uint32_t len) {
  if (len == 0) return 0;
  uint64_t w = pos >> 6;
  uint32_t off = static_cast<uint32_t>(pos & 63);
  uint64_t v = words[w] >> off;
  if (off + len > 64) v |= words[w + 1] << (64 - off);
  return v & LowMask(len);
}

/// Writes the low `len` (0..64) bits of `value` at absolute bit `pos`,
/// preserving all surrounding bits.
inline void WriteBits(uint64_t* words, uint64_t pos, uint32_t len,
                      uint64_t value) {
  if (len == 0) return;
  value &= LowMask(len);
  uint64_t w = pos >> 6;
  uint32_t off = static_cast<uint32_t>(pos & 63);
  words[w] = (words[w] & ~(LowMask(len) << off)) | (value << off);
  if (off + len > 64) {
    uint32_t hi = off + len - 64;
    words[w + 1] = (words[w + 1] & ~LowMask(hi)) | (value >> (64 - off));
  }
}

/// Copies `len` bits from `src` starting at bit `src_pos` into `dst` starting
/// at bit `dst_pos`, 64 bits at a time. The ranges must not overlap (the
/// callers that splice within one buffer stage through a scratch buffer).
void CopyBits(uint64_t* dst, uint64_t dst_pos, const uint64_t* src,
              uint64_t src_pos, uint64_t len);

/// Number of 1-bits among the first `nbits` bits of `words` (bits of the last
/// word beyond `nbits` are ignored).
inline uint64_t PopcountBits(const uint64_t* words, uint64_t nbits) {
  uint64_t full = nbits >> 6;
  uint64_t ones = 0;
  for (uint64_t w = 0; w < full; ++w) ones += Popcount(words[w]);
  uint32_t tail = static_cast<uint32_t>(nbits & 63);
  if (tail != 0) ones += Popcount(words[full] & LowMask(tail));
  return ones;
}

/// log2(n)/log2(log2(n)) style helper used for default τ: returns
/// max(4, log n / log log n) on the current size.
inline uint32_t DefaultTau(uint64_t n) {
  uint32_t logn = BitWidth(n | 1);
  uint32_t loglogn = BitWidth(logn | 1);
  uint32_t tau = logn / (loglogn == 0 ? 1 : loglogn);
  return tau < 4 ? 4 : tau;
}

}  // namespace dyndex

#endif  // DYNDEX_UTIL_BITS_H_
