// Annotated synchronization primitives for Clang Thread Safety Analysis.
//
// libstdc++'s std::mutex / std::shared_mutex / std::condition_variable carry
// no thread-safety attributes, so locking them directly is invisible to
// -Wthread-safety. These thin wrappers forward to the std primitives (zero
// overhead: every method is a one-line inline forward) while exposing the
// capability surface the analysis needs. All serve-layer code locks through
// these types; see util/thread_annotations.h for the macro vocabulary.
#ifndef DYNDEX_UTIL_SYNC_H_
#define DYNDEX_UTIL_SYNC_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace dyndex {

/// std::mutex with capability annotations.
class DYNDEX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DYNDEX_ACQUIRE() { mu_.lock(); }
  void unlock() DYNDEX_RELEASE() { mu_.unlock(); }
  bool try_lock() DYNDEX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for interop with std wait machinery (CondVar).
  /// Callers must not lock/unlock through this directly — the analysis
  /// cannot see it.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// std::shared_mutex with capability annotations (exclusive + shared modes).
class DYNDEX_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() DYNDEX_ACQUIRE() { mu_.lock(); }
  void unlock() DYNDEX_RELEASE() { mu_.unlock(); }
  bool try_lock() DYNDEX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() DYNDEX_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() DYNDEX_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() DYNDEX_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// std::lock_guard<Mutex>-shaped scoped capability.
class DYNDEX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DYNDEX_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DYNDEX_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with dyndex::Mutex. Wait() requires the mutex
/// (checkably), releases it while blocked, and reacquires before returning —
/// exactly std::condition_variable::wait semantics, but visible to the
/// analysis.
///
/// Deliberately no predicate overload: a predicate lambda is a separate
/// function to the analysis, so its reads of GUARDED_BY state would need
/// suppressions. Call sites loop explicitly instead —
///   while (!condition) cv.Wait(mu);
/// — which keeps every guarded read inside the annotated caller.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Spurious wakeups happen; callers re-check their condition in a loop.
  void Wait(Mutex& mu) DYNDEX_REQUIRES(mu) {
    // Adopt the already-held native mutex so std::condition_variable can
    // atomically release/reacquire it, then release ownership back to the
    // caller's scoped lock. The capability is held on entry and on exit, so
    // REQUIRES is the honest annotation even though the wait drops the lock
    // internally (guarded state must be re-read after Wait returns — the
    // caller's condition loop does that by construction).
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// A "role" capability: a contract that a family of methods is only called
/// from one logical thread (e.g. DurableLog's single-writer discipline),
/// enforced by annotation rather than by a runtime lock. Methods take
/// DYNDEX_REQUIRES(role); call sites establish the capability with
/// role.AssertHeld() — a no-op at runtime, a checked assertion to the
/// analysis. The pattern follows the assert_capability idiom from the clang
/// TSA documentation.
class DYNDEX_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  /// Caller vouches that it is the role's thread (the serve facades call
  /// this at the top of each writer-side function and inside each writer
  /// lambda, which the analysis treats as separate functions).
  void AssertHeld() const DYNDEX_ASSERT_CAPABILITY(this) {}
};

}  // namespace dyndex

#endif  // DYNDEX_UTIL_SYNC_H_
