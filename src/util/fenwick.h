// Fenwick (binary indexed) tree over 64-bit counts.
//
// Used as the engineering substitute for the dynamic-rank structures of
// Navarro-Sadakane [37] and Gonzalez-Navarro [20]: counting dead suffix-array
// rows in a range (Theorem 1) and maintaining dynamic symbol counts (the C
// array of the baseline dynamic FM-index). O(log n) query/update.
#ifndef DYNDEX_UTIL_FENWICK_H_
#define DYNDEX_UTIL_FENWICK_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace dyndex {

/// Prefix-sum tree over `size` slots of int64 deltas.
class Fenwick {
 public:
  Fenwick() = default;
  explicit Fenwick(uint64_t size) { Reset(size); }

  void Reset(uint64_t size) {
    size_ = size;
    tree_.assign(size + 1, 0);
  }

  uint64_t size() const { return size_; }

  /// Adds `delta` to slot i.
  void Add(uint64_t i, int64_t delta) {
    DYNDEX_DCHECK(i < size_);
    for (uint64_t p = i + 1; p <= size_; p += p & (~p + 1)) tree_[p] += delta;
  }

  /// Sum of slots [0, i).
  int64_t PrefixSum(uint64_t i) const {
    // Full check, not DCHECK: optimistic serve-layer readers can pass an
    // index derived from a torn read; keep the scan inside tree_.
    DYNDEX_CHECK(i <= size_);
    int64_t s = 0;
    for (uint64_t p = i; p > 0; p -= p & (~p + 1)) s += tree_[p];
    return s;
  }

  /// Sum of slots [a, b).
  int64_t RangeSum(uint64_t a, uint64_t b) const {
    DYNDEX_DCHECK(a <= b);
    return PrefixSum(b) - PrefixSum(a);
  }

  /// Smallest index i such that PrefixSum(i+1) > target, i.e. the slot where
  /// the cumulative sum first exceeds `target`. All deltas must be
  /// non-negative for this to be meaningful. Returns size() if the total is
  /// <= target.
  uint64_t FindByPrefix(int64_t target) const {
    uint64_t pos = 0;
    uint64_t mask = 1;
    while ((mask << 1) <= size_) mask <<= 1;
    for (; mask > 0; mask >>= 1) {
      uint64_t next = pos + mask;
      if (next <= size_ && tree_[next] <= target) {
        target -= tree_[next];
        pos = next;
      }
    }
    return pos;  // slots [0, pos) sum to <= original target
  }

  uint64_t SpaceBytes() const { return tree_.capacity() * sizeof(int64_t); }

 private:
  uint64_t size_ = 0;
  std::vector<int64_t> tree_;
};

}  // namespace dyndex

#endif  // DYNDEX_UTIL_FENWICK_H_
