// Lightweight CHECK macros (the library does not use exceptions; invariant and
// precondition violations abort with a message, following the Google style the
// project adopts).
#ifndef DYNDEX_UTIL_CHECK_H_
#define DYNDEX_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dyndex {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace dyndex

/// Aborts the process if `cond` is false. Enabled in all build types: the cost
/// is negligible outside of inner loops and the structures here are intricate
/// enough that silent corruption is far worse than an abort.
#define DYNDEX_CHECK(cond)                                  \
  do {                                                      \
    if (!(cond)) ::dyndex::CheckFail(__FILE__, __LINE__, #cond); \
  } while (0)

/// Debug-only check for hot paths.
#ifndef NDEBUG
#define DYNDEX_DCHECK(cond) DYNDEX_CHECK(cond)
#else
#define DYNDEX_DCHECK(cond) \
  do {                      \
  } while (0)
#endif

#endif  // DYNDEX_UTIL_CHECK_H_
