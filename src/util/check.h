// Lightweight CHECK macros. Invariant and precondition violations abort with
// a message (following the Google style the project adopts) — with one narrow
// exception: inside an *optimistic read attempt* (serve/epoch_guard.h), a
// failed check throws TornReadError instead. An optimistic reader runs
// against a backend that a writer may be mutating, so a tripped CHECK there
// usually means the reader observed a torn value, not that the structure is
// corrupt; the serving layer catches the throw, discards the attempt, and
// retries or falls back to the locked path. Outside an optimistic attempt
// the behavior is unchanged: fprintf + abort, no exceptions anywhere.
#ifndef DYNDEX_UTIL_CHECK_H_
#define DYNDEX_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dyndex {

/// Thrown (instead of aborting) when a CHECK fails during an optimistic read
/// attempt. Deliberately not a std::exception subclass: nothing outside the
/// serving layer should ever catch it by a generic handler.
struct TornReadError {
  const char* file;
  int line;
  const char* expr;
};

namespace check_internal {
/// True while the calling thread is running an optimistic (unlocked,
/// validate-after) read attempt. Set only by serve/epoch_guard.h.
inline thread_local bool tl_in_optimistic_read = false;
}  // namespace check_internal

/// Marks the calling thread as inside an optimistic read attempt, converting
/// CHECK failures into recoverable TornReadError throws for its lifetime.
class OptimisticReadScope {
 public:
  OptimisticReadScope() : prev_(check_internal::tl_in_optimistic_read) {
    check_internal::tl_in_optimistic_read = true;
  }
  ~OptimisticReadScope() { check_internal::tl_in_optimistic_read = prev_; }
  OptimisticReadScope(const OptimisticReadScope&) = delete;
  OptimisticReadScope& operator=(const OptimisticReadScope&) = delete;

 private:
  bool prev_;
};

inline bool InOptimisticRead() {
  return check_internal::tl_in_optimistic_read;
}

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr) {
  if (check_internal::tl_in_optimistic_read) {
    throw TornReadError{file, line, expr};
  }
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace dyndex

/// Aborts the process if `cond` is false. Enabled in all build types: the cost
/// is negligible outside of inner loops and the structures here are intricate
/// enough that silent corruption is far worse than an abort.
#define DYNDEX_CHECK(cond)                                  \
  do {                                                      \
    if (!(cond)) ::dyndex::CheckFail(__FILE__, __LINE__, #cond); \
  } while (0)

/// Debug-only check for hot paths.
#ifndef NDEBUG
#define DYNDEX_DCHECK(cond) DYNDEX_CHECK(cond)
#else
#define DYNDEX_DCHECK(cond) \
  do {                      \
  } while (0)
#endif

#endif  // DYNDEX_UTIL_CHECK_H_
