// Clang Thread Safety Analysis annotation macros (no-ops off clang).
//
// The serve layer's concurrency contracts — which fields a mutex guards,
// which functions require it, which must never be called with it held — are
// declared with these macros and machine-checked at compile time by clang's
// -Wthread-safety analysis (enabled via the DYNDEX_THREAD_SAFETY CMake
// option; the CI static-analysis job builds with it under -Werror). Under
// GCC and other compilers every macro expands to nothing, so the annotations
// cost nothing and change nothing off clang.
//
// Naming follows the "capability" vocabulary of the upstream documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html): a mutex is a
// capability; holding it exclusively or shared is a precondition (REQUIRES /
// REQUIRES_SHARED), an effect (ACQUIRE / RELEASE), or a prohibition
// (EXCLUDES). The annotated wrapper types that make std primitives visible
// to the analysis live in util/sync.h.
//
// What the analysis cannot express — seqlock capture/validate, the
// single-pointer immutable-snapshot rule, publish-then-retire ordering — is
// enforced by scripts/lint_invariants.py instead; see README "Static
// analysis & concurrency invariants" for the catalogue and the division of
// labor between the two checkers.
#ifndef DYNDEX_UTIL_THREAD_ANNOTATIONS_H_
#define DYNDEX_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define DYNDEX_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DYNDEX_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

/// Marks a type as a capability (a mutex-like object the analysis tracks).
/// `x` is the capability kind shown in diagnostics, e.g. "mutex" or "role".
#define DYNDEX_CAPABILITY(x) DYNDEX_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires a capability and whose
/// destructor releases it (std::lock_guard-shaped).
#define DYNDEX_SCOPED_CAPABILITY DYNDEX_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while `x` is held (shared suffices
/// for reads, exclusive is needed for writes).
#define DYNDEX_GUARDED_BY(x) DYNDEX_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x` (the pointer itself may
/// be read freely).
#define DYNDEX_PT_GUARDED_BY(x) DYNDEX_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock detection).
#define DYNDEX_ACQUIRED_BEFORE(...) \
  DYNDEX_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define DYNDEX_ACQUIRED_AFTER(...) \
  DYNDEX_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function precondition: the listed capabilities must be held exclusively
/// (REQUIRES) or at least shared (REQUIRES_SHARED) on entry, and are NOT
/// released by the function.
#define DYNDEX_REQUIRES(...) \
  DYNDEX_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define DYNDEX_REQUIRES_SHARED(...) \
  DYNDEX_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function effect: acquires the listed capabilities (must not be held on
/// entry; held on exit).
#define DYNDEX_ACQUIRE(...) \
  DYNDEX_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define DYNDEX_ACQUIRE_SHARED(...) \
  DYNDEX_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function effect: releases the listed capabilities (held on entry, not on
/// exit). The _GENERIC form releases whichever mode is held — use it on the
/// destructors of scoped capabilities that may hold either mode.
#define DYNDEX_RELEASE(...) \
  DYNDEX_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define DYNDEX_RELEASE_SHARED(...) \
  DYNDEX_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define DYNDEX_RELEASE_GENERIC(...) \
  DYNDEX_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// Function that acquires the capability only when it returns `b`.
#define DYNDEX_TRY_ACQUIRE(b, ...) \
  DYNDEX_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))
#define DYNDEX_TRY_ACQUIRE_SHARED(b, ...) \
  DYNDEX_THREAD_ANNOTATION_(try_acquire_shared_capability(b, __VA_ARGS__))

/// Function precondition: the listed capabilities must NOT be held (in any
/// mode). This is how "pacing sleeps happen with no lock held" and "Write()
/// must not be called under its own lock" are stated checkably.
#define DYNDEX_EXCLUDES(...) \
  DYNDEX_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability; the
/// analysis treats it as held for the rest of the scope. Used for contracts
/// enforced by convention rather than by a lock object (see
/// util/sync.h ThreadRole).
#define DYNDEX_ASSERT_CAPABILITY(x) \
  DYNDEX_THREAD_ANNOTATION_(assert_capability(x))
#define DYNDEX_ASSERT_SHARED_CAPABILITY(x) \
  DYNDEX_THREAD_ANNOTATION_(assert_shared_capability(x))

/// Declares that a function returns a reference to the given capability
/// (lets the analysis see through accessor indirection).
#define DYNDEX_RETURN_CAPABILITY(x) \
  DYNDEX_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis inside one function body. Every use
/// in this repo must carry a comment justifying why the protocol is beyond
/// the analysis (e.g. the seqlock read path, destructor-implies-quiescence).
#define DYNDEX_NO_THREAD_SAFETY_ANALYSIS \
  DYNDEX_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // DYNDEX_UTIL_THREAD_ANNOTATIONS_H_
