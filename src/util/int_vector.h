// Packed vector of fixed-width integers. The basic storage unit of every
// succinct structure in the library: a suffix array packed to ceil(log2 n)
// bits, a text packed to ceil(log2 sigma) bits, sample tables, etc.
#ifndef DYNDEX_UTIL_INT_VECTOR_H_
#define DYNDEX_UTIL_INT_VECTOR_H_

#include <cstdint>
#include <vector>

#include "util/bits.h"
#include "util/check.h"

namespace dyndex {

/// Fixed-width packed integer vector.
///
/// Values are stored LSB-first in a flat array of 64-bit words; a value may
/// straddle a word boundary. Width 0 is allowed (all values read as 0).
class IntVector {
 public:
  IntVector() = default;

  /// Creates a vector of `size` zeros, each `width` bits wide (width <= 64).
  IntVector(uint64_t size, uint32_t width) { Reset(size, width); }

  /// Re-initializes to `size` zeros of the given width.
  void Reset(uint64_t size, uint32_t width);

  /// Builds a packed copy of `values` using width = BitWidth(max value).
  static IntVector Pack(const std::vector<uint64_t>& values);

  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t width() const { return width_; }

  /// Reads the value at index i.
  uint64_t Get(uint64_t i) const {
    DYNDEX_DCHECK(i < size_);
    if (width_ == 0) return 0;
    uint64_t bit = i * width_;
    uint64_t word = bit >> 6;
    uint32_t off = static_cast<uint32_t>(bit & 63);
    uint64_t v = words_[word] >> off;
    if (off + width_ > 64) v |= words_[word + 1] << (64 - off);
    return v & mask_;
  }

  uint64_t operator[](uint64_t i) const { return Get(i); }

  /// Writes `value` (must fit in `width` bits) at index i.
  void Set(uint64_t i, uint64_t value) {
    DYNDEX_DCHECK(i < size_);
    DYNDEX_DCHECK((value & ~mask_) == 0 || width_ == 64);
    if (width_ == 0) return;
    uint64_t bit = i * width_;
    uint64_t word = bit >> 6;
    uint32_t off = static_cast<uint32_t>(bit & 63);
    words_[word] = (words_[word] & ~(mask_ << off)) | (value << off);
    if (off + width_ > 64) {
      uint32_t high = off + width_ - 64;
      words_[word + 1] =
          (words_[word + 1] & ~LowMask(high)) | (value >> (64 - off));
    }
  }

  /// Appends a value (amortized O(1)).
  void PushBack(uint64_t value);

  /// Reads up to 64 raw bits starting at absolute bit offset `bit`. Bits
  /// beyond the storage read as 0. Used for word-packed multi-symbol reads.
  uint64_t GetBits(uint64_t bit, uint32_t nbits) const {
    DYNDEX_DCHECK(nbits <= 64);
    if (nbits == 0) return 0;
    uint64_t word = bit >> 6;
    uint32_t off = static_cast<uint32_t>(bit & 63);
    if (word >= words_.size()) return 0;
    uint64_t v = words_[word] >> off;
    if (off + nbits > 64 && word + 1 < words_.size()) {
      v |= words_[word + 1] << (64 - off);
    }
    return nbits == 64 ? v : v & LowMask(nbits);
  }

  /// Heap bytes used by the storage.
  uint64_t SpaceBytes() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  std::vector<uint64_t> words_;
  uint64_t size_ = 0;
  uint32_t width_ = 0;
  uint64_t mask_ = 0;
};

}  // namespace dyndex

#endif  // DYNDEX_UTIL_INT_VECTOR_H_
