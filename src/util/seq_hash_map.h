// Hash maps that optimistic (seqlock-validated) readers can probe while a
// single writer mutates them, without ever touching unmapped or
// inconsistently-sized memory.
//
// Why std::unordered_map is not enough even with RetireAllocator: the
// libstdc++ hashtable keeps its bucket-array pointer and bucket count in two
// separate members. A reader that loads the old pointer and the new count
// during a concurrent rehash indexes past the end of the (parked but smaller)
// old array, picks up a garbage node pointer, and faults — the retire
// allocator keeps freed buckets mapped, but it cannot make the probe's view
// of (pointer, size) self-consistent.
//
// SeqHashMap fixes that structurally:
//
//  * Open addressing over a power-of-two slot array. The probe sequence
//    touches only the slot array, never a node chain.
//  * The capacity lives in the same heap block as the slots (an immutable
//    Table header). A reader obtains its entire view — bounds and data —
//    from ONE atomic pointer load, so the view is self-consistent by
//    construction no matter what the writer does next.
//  * Slot keys are std::atomic<uint64_t>: a reader never sees a torn key, so
//    probes terminate within one table sweep. Values are plain storage; a
//    torn value read is memory-safe and is caught by the serve layer's
//    sequence validation (plus the callers' bounds clamps).
//  * Growth builds a fresh Table and publishes it with one release store;
//    the old Table is Retire()d (util/retire.h) so in-flight readers keep a
//    mapped, coherent — merely stale — view for the grace period.
//
// Single-writer contract: all mutating calls must be externally synchronized
// (the serve layer's exclusive section). Any number of concurrent readers may
// call the const members. Without a serve layer the containers behave like
// ordinary maps and Retire() frees eagerly.
//
// Keys must be unsigned integers that fit in 64 bits; the top two encodings
// (~0ull and ~0ull - 1) are reserved as empty/tombstone sentinels.
#ifndef DYNDEX_UTIL_SEQ_HASH_MAP_H_
#define DYNDEX_UTIL_SEQ_HASH_MAP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

#include "util/check.h"
#include "util/retire.h"

namespace dyndex {

/// Atomically published immutable snapshot, for SeqHashMap slot values whose
/// payload is a container. A plain vector in a slot is NOT reader-safe: the
/// writer's push_back / move-out mutates begin/end in place under a reader
/// mid-iteration. SeqBox readers take ONE acquire load and iterate a
/// snapshot that is never mutated afterwards; writers replace the snapshot
/// wholesale (copy-on-write) and Retire the old one for in-flight readers.
// lint:reader-shared
template <typename V>
class SeqBox {
 public:
  SeqBox() = default;

  ~SeqBox() {
    // May run inside an exclusive section (slot overwrite, temporary):
    // park the snapshot for in-flight readers; frees immediately otherwise.
    if (owner_ != nullptr) Retire(std::move(owner_));
  }

  SeqBox(SeqBox&& o) noexcept : owner_(std::move(o.owner_)) {
    // Ownership transfer: the snapshot moves to this box and the source
    // empties; nothing is displaced, so there is nothing to Retire.
    // lint:allow(publish-retire) ownership transfer, nothing displaced
    ptr_.store(owner_.get(), std::memory_order_release);
    o.ptr_.store(nullptr, std::memory_order_release);
  }

  SeqBox& operator=(SeqBox&& o) noexcept {
    if (this != &o) {
      ptr_.store(nullptr, std::memory_order_release);
      if (owner_ != nullptr) Retire(std::move(owner_));
      owner_ = std::move(o.owner_);
      ptr_.store(owner_.get(), std::memory_order_release);
      o.ptr_.store(nullptr, std::memory_order_release);
    }
    return *this;
  }

  SeqBox(const SeqBox& o) {
    if (o.owner_ != nullptr) {
      owner_ = std::make_unique<V>(*o.owner_);
      // Fresh object: publishing the first snapshot displaces nothing.
      // lint:allow(publish-retire) fresh object, nothing displaced
      ptr_.store(owner_.get(), std::memory_order_release);
    }
  }

  SeqBox& operator=(const SeqBox& o) {
    if (this != &o) *this = SeqBox(o);
    return *this;
  }

  /// Reader-safe: the current snapshot, or nullptr when empty. The snapshot
  /// stays mapped and bit-stable for the reader's whole grace period.
  const V* Load() const { return ptr_.load(std::memory_order_acquire); }

  /// Writer-side copy of the current snapshot (default V when empty), for
  /// copy-on-write updates: mutate the copy, then Store() it.
  V Copy() const { return owner_ != nullptr ? *owner_ : V{}; }

  /// Writer-only: publishes `v` as the new snapshot, parks the old one.
  void Store(V v) {
    auto next = std::make_unique<V>(std::move(v));
    ptr_.store(next.get(), std::memory_order_release);
    if (owner_ != nullptr) Retire(std::move(owner_));
    owner_ = std::move(next);
  }

 private:
  std::unique_ptr<V> owner_;
  std::atomic<V*> ptr_{nullptr};  // readers' view; mirrors owner_
};

namespace seq_hash_internal {
template <typename T>
struct IsSeqBox : std::false_type {};
template <typename T>
struct IsSeqBox<SeqBox<T>> : std::true_type {};
}  // namespace seq_hash_internal

// lint:reader-shared
template <typename K, typename V>
class SeqHashMap {
  static_assert(std::is_unsigned_v<K> && sizeof(K) <= sizeof(uint64_t),
                "SeqHashMap keys must be unsigned integers up to 64 bits");
  static_assert(std::is_trivially_copyable_v<V> ||
                    seq_hash_internal::IsSeqBox<V>::value,
                "SeqHashMap slot values are read in place by optimistic "
                "readers while the writer assigns/moves them; only trivially "
                "copyable payloads tear harmlessly. Wrap containers in "
                "SeqBox<V> so readers iterate an immutable snapshot.");

 public:
  SeqHashMap() = default;

  ~SeqHashMap() {
    // Park the whole table: a concurrent reader may still probe the header.
    if (owner_ != nullptr) Retire(std::move(owner_));
  }

  SeqHashMap(SeqHashMap&& o) noexcept
      : owner_(std::move(o.owner_)), size_(o.size_), used_(o.used_) {
    // Ownership transfer: the table moves to this map and the source
    // empties; nothing is displaced.
    // lint:allow(publish-retire) ownership transfer, nothing displaced
    table_.store(owner_.get(), std::memory_order_release);
    o.table_.store(nullptr, std::memory_order_release);
    o.size_ = o.used_ = 0;
  }

  SeqHashMap& operator=(SeqHashMap&& o) noexcept {
    if (this != &o) {
      table_.store(nullptr, std::memory_order_release);
      if (owner_ != nullptr) Retire(std::move(owner_));
      owner_ = std::move(o.owner_);
      table_.store(owner_.get(), std::memory_order_release);
      o.table_.store(nullptr, std::memory_order_release);
      size_ = o.size_;
      used_ = o.used_;
      o.size_ = o.used_ = 0;
    }
    return *this;
  }

  SeqHashMap(const SeqHashMap& o) : size_(o.size_), used_(o.used_) {
    if (const Table* t = o.owner_.get()) {
      owner_ = std::make_unique<Table>(t->mask + 1);
      for (uint64_t i = 0; i <= t->mask; ++i) {
        owner_->slots[i].key.store(
            t->slots[i].key.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        owner_->slots[i].value = t->slots[i].value;
      }
      // Fresh object: publishing the first table of a new copy displaces
      // nothing.
      // lint:allow(publish-retire) fresh object, nothing displaced
      table_.store(owner_.get(), std::memory_order_release);
    }
  }

  SeqHashMap& operator=(const SeqHashMap& o) {
    if (this != &o) *this = SeqHashMap(o);
    return *this;
  }

  /// Reader-safe point lookup; nullptr if absent.
  const V* Find(K k) const {
    const Table* t = table_.load(std::memory_order_acquire);
    if (t == nullptr) return nullptr;
    const uint64_t key = static_cast<uint64_t>(k);
    uint64_t idx = Mix(key) & t->mask;
    // Bounded by the table size: terminates even on a fully-used sweep.
    for (uint64_t probes = 0; probes <= t->mask; ++probes) {
      const Slot& s = t->slots[idx];
      uint64_t sk = s.key.load(std::memory_order_acquire);
      if (sk == kEmptyKey) return nullptr;
      if (sk == key) return &s.value;
      idx = (idx + 1) & t->mask;
    }
    return nullptr;
  }

  V* Find(K k) {
    return const_cast<V*>(static_cast<const SeqHashMap*>(this)->Find(k));
  }

  bool Contains(K k) const { return Find(k) != nullptr; }

  /// Writer-only: value reference for `k`, default-constructed if absent.
  /// A reader racing the insert sees either no key or the key with a
  /// default/partially-assigned value — memory-safe; the seqlock retries.
  V& operator[](K k) {
    if (V* v = Find(k)) return *v;
    const uint64_t key = static_cast<uint64_t>(k);
    DYNDEX_DCHECK(key < kTombstoneKey);
    ReserveOne();
    Table* t = owner_.get();
    uint64_t idx = Mix(key) & t->mask;
    while (true) {
      Slot& s = t->slots[idx];
      uint64_t sk = s.key.load(std::memory_order_relaxed);
      if (sk >= kTombstoneKey) {  // empty or tombstone
        if (sk == kEmptyKey) ++used_;
        ++size_;
        s.value = V{};
        // Publish the key after the (default) value so a reader matching the
        // key never reads pre-construction garbage.
        s.key.store(key, std::memory_order_release);
        return s.value;
      }
      idx = (idx + 1) & t->mask;
    }
  }

  /// Writer-only. Retires the value (readers may still be reading it) and
  /// tombstones the slot. Returns false if absent.
  bool Erase(K k) {
    Table* t = owner_.get();
    if (t == nullptr) return false;
    const uint64_t key = static_cast<uint64_t>(k);
    uint64_t idx = Mix(key) & t->mask;
    for (uint64_t probes = 0; probes <= t->mask; ++probes) {
      Slot& s = t->slots[idx];
      uint64_t sk = s.key.load(std::memory_order_relaxed);
      if (sk == kEmptyKey) return false;
      if (sk == key) {
        s.key.store(kTombstoneKey, std::memory_order_release);
        if constexpr (!std::is_trivially_destructible_v<V>) {
          // Park the value's owned memory for in-flight readers, then leave
          // a benign empty value in the slot.
          Retire(std::move(s.value));
          s.value = V{};
        }
        // Trivial values keep their bytes: stale but stable for readers.
        --size_;
        return true;
      }
      idx = (idx + 1) & t->mask;
    }
    return false;
  }

  /// Writer-only. Readers see an empty map after the single pointer store.
  void clear() {
    size_ = used_ = 0;
    if (owner_ == nullptr) return;
    table_.store(nullptr, std::memory_order_release);
    Retire(std::move(owner_));
  }

  /// fn(key, const V&) for every entry; reader-safe (one table load).
  template <typename Fn>
  void ForEach(Fn fn) const {
    const Table* t = table_.load(std::memory_order_acquire);
    if (t == nullptr) return;
    for (uint64_t i = 0; i <= t->mask; ++i) {
      const Slot& s = t->slots[i];
      uint64_t sk = s.key.load(std::memory_order_acquire);
      if (sk < kTombstoneKey) fn(static_cast<K>(sk), s.value);
    }
  }

  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Heap footprint (slot array + header), for space accounting.
  uint64_t MemoryBytes() const {
    const Table* t = table_.load(std::memory_order_relaxed);
    if (t == nullptr) return 0;
    return sizeof(Table) + (t->mask + 1) * sizeof(Slot);
  }

 private:
  static constexpr uint64_t kEmptyKey = ~0ull;
  static constexpr uint64_t kTombstoneKey = ~0ull - 1;
  static constexpr uint64_t kMinCapacity = 8;

  // lint:reader-shared
  struct Slot {
    std::atomic<uint64_t> key{kEmptyKey};
    V value{};
  };

  // Immutable after construction: readers derive bounds and data from the
  // same allocation, so one pointer load yields a self-consistent view.
  // lint:reader-shared
  struct Table {
    explicit Table(uint64_t cap) : mask(cap - 1), slots(cap) {}
    uint64_t mask;
    retire_vector<Slot> slots;
  };

  static uint64_t Mix(uint64_t x) {  // splitmix64 finalizer
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  /// Ensures room for one more entry; rehashes at 3/4 occupancy
  /// (live + tombstones), doubling only when live entries dominate.
  void ReserveOne() {
    Table* t = owner_.get();
    if (t == nullptr) {
      Install(std::make_unique<Table>(kMinCapacity));
      return;
    }
    uint64_t cap = t->mask + 1;
    if ((used_ + 1) * 4 <= cap * 3) return;
    uint64_t new_cap = (size_ + 1) * 2 > cap ? cap * 2 : cap;
    auto nt = std::make_unique<Table>(new_cap);
    for (uint64_t i = 0; i <= t->mask; ++i) {
      Slot& s = t->slots[i];
      uint64_t sk = s.key.load(std::memory_order_relaxed);
      if (sk >= kTombstoneKey) continue;
      uint64_t idx = Mix(sk) & nt->mask;
      while (nt->slots[idx].key.load(std::memory_order_relaxed) != kEmptyKey) {
        idx = (idx + 1) & nt->mask;
      }
      // Moved-from values in the old table read as empty — stale readers of
      // the parked table see coherent (if wrong) data and revalidate.
      nt->slots[idx].value = std::move(s.value);
      nt->slots[idx].key.store(sk, std::memory_order_relaxed);
    }
    used_ = size_;
    Install(std::move(nt));
  }

  void Install(std::unique_ptr<Table> nt) {
    table_.store(nt.get(), std::memory_order_release);
    if (owner_ != nullptr) Retire(std::move(owner_));
    owner_ = std::move(nt);
  }

  std::unique_ptr<Table> owner_;
  std::atomic<Table*> table_{nullptr};  // readers' view; mirrors owner_
  uint64_t size_ = 0;  // live entries
  uint64_t used_ = 0;  // live + tombstoned slots (rehash trigger)
};

/// Set counterpart; same reader guarantees. std::unordered_set-ish surface.
template <typename K>
class SeqHashSet {
 public:
  bool insert(K k) {
    if (map_.Contains(k)) return false;
    map_[k] = 0;
    return true;
  }
  uint64_t erase(K k) { return map_.Erase(k) ? 1 : 0; }
  uint64_t count(K k) const { return map_.Contains(k) ? 1 : 0; }
  void clear() { map_.clear(); }
  uint64_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  uint64_t MemoryBytes() const { return map_.MemoryBytes(); }

  template <typename Fn>
  void ForEach(Fn fn) const {
    map_.ForEach([&](K k, uint8_t) { fn(k); });
  }

 private:
  SeqHashMap<K, uint8_t> map_;
};

}  // namespace dyndex

#endif  // DYNDEX_UTIL_SEQ_HASH_MAP_H_
