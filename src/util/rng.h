// Small deterministic RNG (splitmix64 + xoshiro-style mixing) used by tests,
// workload generators and benchmarks. Deterministic across platforms, unlike
// std::mt19937 distributions.
#ifndef DYNDEX_UTIL_RNG_H_
#define DYNDEX_UTIL_RNG_H_

#include <cstdint>

namespace dyndex {

/// Deterministic 64-bit RNG.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Next raw 64-bit value (splitmix64).
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform value in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Bernoulli(p).
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace dyndex

#endif  // DYNDEX_UTIL_RNG_H_
