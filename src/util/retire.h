// Deferred-reclamation plumbing for the optimistic read path.
//
// The serving layer (serve/epoch_guard.h) lets readers run queries against a
// backend with no lock held, validating a sequence word afterwards. A torn
// read is *detected* by the validation, but it is only *memory-safe* if
// nothing a reader might still be traversing is ever returned to the
// allocator while that reader is in flight. This header is the mechanism the
// backends use to honor that contract without knowing anything about the
// serving layer above them:
//
//  * EpochGuard installs a RetireScope around every exclusive section. While
//    the scope is active, a thread-local sink collects everything the writer
//    frees instead of freeing it.
//  * Backends call Retire(std::move(x)) at every site that would otherwise
//    destroy a structure readers may be traversing (a replaced sub-collection
//    level, a swapped Transformation-2 structure, a cleared arena). With no
//    scope active — single-threaded use, tests, tools — Retire destroys the
//    value immediately, so unguarded code pays nothing and changes nothing.
//  * RetireAllocator<T> routes container *buffer* frees (std::vector
//    reallocation, hash-table rehash) through the same sink, so growing an
//    index under readers never unmaps memory a reader is walking.
//
// The sink's contents are reclaimed by EpochGuard once no optimistic reader
// can still hold the sequence under which the freed objects were live (see
// the grace-period scan in epoch_guard.h).
#ifndef DYNDEX_UTIL_RETIRE_H_
#define DYNDEX_UTIL_RETIRE_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace dyndex {

/// A batch of retired objects. Destroying the sink (or calling Reclaim)
/// destroys every parked value; until then their memory stays mapped and
/// bit-stable for in-flight optimistic readers.
class RetireSink {
 public:
  RetireSink() = default;
  RetireSink(RetireSink&&) = default;
  RetireSink& operator=(RetireSink&&) = default;
  RetireSink(const RetireSink&) = delete;
  RetireSink& operator=(const RetireSink&) = delete;

  /// Takes ownership of `v`; its destructor runs at Reclaim time.
  template <typename T>
  void Park(T v) {
    parked_.push_back(std::make_unique<Holder<T>>(std::move(v)));
  }

  bool empty() const { return parked_.empty(); }
  std::size_t size() const { return parked_.size(); }

  /// Destroys every parked value now.
  void Reclaim() { parked_.clear(); }

  /// Moves everything parked in `other` onto this sink.
  void Absorb(RetireSink&& other) {
    for (auto& node : other.parked_) parked_.push_back(std::move(node));
    other.parked_.clear();
  }

 private:
  struct Node {
    virtual ~Node() = default;
  };
  template <typename T>
  struct Holder final : Node {
    explicit Holder(T&& x) : v(std::move(x)) {}
    T v;
  };
  std::vector<std::unique_ptr<Node>> parked_;
};

namespace retire_internal {
inline thread_local RetireSink* tl_sink = nullptr;
}  // namespace retire_internal

/// True while the calling thread is inside an exclusive section whose frees
/// must be deferred (a RetireScope is installed).
inline bool RetireActive() { return retire_internal::tl_sink != nullptr; }

/// Installs `sink` as the calling thread's retire sink for the scope's
/// lifetime. Nests: the previous sink is restored on destruction.
class RetireScope {
 public:
  explicit RetireScope(RetireSink* sink) : prev_(retire_internal::tl_sink) {
    retire_internal::tl_sink = sink;
  }
  ~RetireScope() { retire_internal::tl_sink = prev_; }
  RetireScope(const RetireScope&) = delete;
  RetireScope& operator=(const RetireScope&) = delete;

 private:
  RetireSink* prev_;
};

/// Retires a value: parked on the active sink if one is installed, destroyed
/// immediately otherwise. Callers pass ownership (std::move).
template <typename T>
void Retire(T v) {
  if (RetireSink* sink = retire_internal::tl_sink) {
    sink->Park(std::move(v));
  }
  // No sink: `v` is destroyed here, exactly as the plain free would have.
}

/// Minimal std::allocator clone whose deallocate parks the buffer on the
/// active retire sink instead of freeing it. Containers that reallocate
/// while a writer mutates under readers (std::vector growth, hash rehash)
/// must use this so the abandoned buffer outlives in-flight readers.
template <typename T>
struct RetireAllocator {
  using value_type = T;

  RetireAllocator() = default;
  template <typename U>
  RetireAllocator(const RetireAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) { return std::allocator<T>().allocate(n); }

  void deallocate(T* p, std::size_t n) noexcept {
    if (RetireSink* sink = retire_internal::tl_sink) {
      sink->Park(DeferredFree{p, n});
    } else {
      std::allocator<T>().deallocate(p, n);
    }
  }

  friend bool operator==(const RetireAllocator&, const RetireAllocator&) {
    return true;
  }

 private:
  /// Owns a raw buffer; frees it when destroyed (i.e. at Reclaim time).
  /// Elements were already destroyed by the container before deallocate —
  /// that leaves the bytes unchanged for the trivially-destructible payloads
  /// used on read paths, which is all a validating reader needs.
  struct DeferredFree {
    DeferredFree(T* p, std::size_t n) : p_(p), n_(n) {}
    DeferredFree(DeferredFree&& o) noexcept : p_(o.p_), n_(o.n_) {
      o.p_ = nullptr;
    }
    DeferredFree& operator=(DeferredFree&&) = delete;
    DeferredFree(const DeferredFree&) = delete;
    ~DeferredFree() {
      if (p_ != nullptr) std::allocator<T>().deallocate(p_, n_);
    }
    T* p_;
    std::size_t n_;
  };
};

// Vector alias for state traversed by optimistic readers. NOTE: hash maps on
// read paths must be SeqHashMap (util/seq_hash_map.h), NOT std::unordered_map
// with this allocator — the std hashtable's bucket pointer and bucket count
// can tear under a concurrent rehash, sending a reader out of bounds of the
// (parked but smaller) old bucket array.
template <typename T>
using retire_vector = std::vector<T, RetireAllocator<T>>;

}  // namespace dyndex

#endif  // DYNDEX_UTIL_RETIRE_H_
