#include "util/int_vector.h"

namespace dyndex {

void IntVector::Reset(uint64_t size, uint32_t width) {
  DYNDEX_CHECK(width <= 64);
  size_ = size;
  width_ = width;
  mask_ = width == 64 ? ~0ull : LowMask(width);
  words_.assign(CeilDiv(size * width, 64) + 1, 0);
}

IntVector IntVector::Pack(const std::vector<uint64_t>& values) {
  uint64_t max = 0;
  for (uint64_t v : values) max = v > max ? v : max;
  IntVector out(values.size(), BitWidth(max));
  for (uint64_t i = 0; i < values.size(); ++i) out.Set(i, values[i]);
  return out;
}

void IntVector::PushBack(uint64_t value) {
  uint64_t needed = CeilDiv((size_ + 1) * width_, 64) + 1;
  if (words_.size() < needed) {
    uint64_t grow = words_.size() + words_.size() / 2 + 2;
    words_.resize(grow > needed ? grow : needed, 0);
  }
  ++size_;
  Set(size_ - 1, value);
}

}  // namespace dyndex
