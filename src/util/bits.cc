#include "util/bits.h"

namespace dyndex {

namespace {

// Per-byte select table: kSelectInByte[k][b] = position of the k-th 1-bit in
// byte b, or 8 if it does not exist.
struct SelectTable {
  uint8_t pos[8][256];
  constexpr SelectTable() : pos{} {
    for (int b = 0; b < 256; ++b) {
      int seen = 0;
      for (int i = 0; i < 8; ++i) {
        if (b & (1 << i)) {
          pos[seen][b] = static_cast<uint8_t>(i);
          ++seen;
        }
      }
      for (int k = seen; k < 8; ++k) pos[k][b] = 8;
    }
  }
};

constexpr SelectTable kSelect{};

}  // namespace

uint32_t SelectInWord(uint64_t x, uint32_t k) {
  DYNDEX_DCHECK(k < Popcount(x));
  // Broadword (Vigna, "Broadword implementation of rank/select queries"):
  // SWAR byte popcounts, prefix-summed by multiply; locate the byte with a
  // parallel <= compare, then finish in the byte table. Branch-free.
  constexpr uint64_t kOnesStep8 = 0x0101010101010101ull;
  constexpr uint64_t kMsbsStep8 = 0x8080808080808080ull;
  uint64_t s = x - ((x >> 1) & 0x5555555555555555ull);
  s = (s & 0x3333333333333333ull) + ((s >> 2) & 0x3333333333333333ull);
  s = (s + (s >> 4)) & 0x0f0f0f0f0f0f0f0full;
  uint64_t byte_sums = s * kOnesStep8;  // inclusive cumulative per byte
  uint64_t k_step = static_cast<uint64_t>(k) * kOnesStep8;
  uint64_t geq = ((k_step | kMsbsStep8) - byte_sums) & kMsbsStep8;
  uint32_t place = Popcount(geq) * 8;
  // Torn-input clamps: optimistic serve-layer readers can reach this with
  // k >= Popcount(x) (the DCHECK above is compiled out), which would drive
  // place to 64 (undefined shift) and wrap byte_rank past the table. Mask
  // both; the garbage result is discarded by the seqlock validation.
  place &= 63;
  uint32_t byte_rank =
      k - static_cast<uint32_t>(((byte_sums << 8) >> place) & 0xFF);
  return place + kSelect.pos[byte_rank & 7][(x >> place) & 0xFF];
}

void CopyBits(uint64_t* dst, uint64_t dst_pos, const uint64_t* src,
              uint64_t src_pos, uint64_t len) {
  // Word-aligned fast path: plain word copies once both cursors line up.
  if ((dst_pos & 63) == 0 && (src_pos & 63) == 0) {
    uint64_t full = len >> 6;
    uint64_t dw = dst_pos >> 6, sw = src_pos >> 6;
    for (uint64_t k = 0; k < full; ++k) dst[dw + k] = src[sw + k];
    uint32_t tail = static_cast<uint32_t>(len & 63);
    if (tail != 0) {
      WriteBits(dst, dst_pos + (full << 6), tail,
                src[sw + full] & LowMask(tail));
    }
    return;
  }
  while (len >= 64) {
    WriteBits(dst, dst_pos, 64, ReadBits(src, src_pos, 64));
    dst_pos += 64;
    src_pos += 64;
    len -= 64;
  }
  if (len > 0) {
    WriteBits(dst, dst_pos, static_cast<uint32_t>(len),
              ReadBits(src, src_pos, static_cast<uint32_t>(len)));
  }
}

}  // namespace dyndex
