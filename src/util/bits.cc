#include "util/bits.h"

namespace dyndex {

namespace {

// Per-byte select table: kSelectInByte[k][b] = position of the k-th 1-bit in
// byte b, or 8 if it does not exist.
struct SelectTable {
  uint8_t pos[8][256];
  constexpr SelectTable() : pos{} {
    for (int b = 0; b < 256; ++b) {
      int seen = 0;
      for (int i = 0; i < 8; ++i) {
        if (b & (1 << i)) {
          pos[seen][b] = static_cast<uint8_t>(i);
          ++seen;
        }
      }
      for (int k = seen; k < 8; ++k) pos[k][b] = 8;
    }
  }
};

constexpr SelectTable kSelect{};

}  // namespace

uint32_t SelectInWord(uint64_t x, uint32_t k) {
  DYNDEX_DCHECK(k < Popcount(x));
  uint32_t offset = 0;
  for (int byte = 0; byte < 8; ++byte) {
    uint32_t b = static_cast<uint32_t>(x & 0xFF);
    uint32_t cnt = Popcount(b);
    if (k < cnt) return offset + kSelect.pos[k][b];
    k -= cnt;
    x >>= 8;
    offset += 8;
  }
  DYNDEX_CHECK(false);  // unreachable: k < Popcount(x) was violated
  return 64;
}

}  // namespace dyndex
