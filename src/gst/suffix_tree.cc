#include "gst/suffix_tree.h"

#include <utility>

#include "util/check.h"

namespace dyndex {

void SuffixTreeCollection::Clear() {
  nodes_.clear();
  nodes_.emplace_back();  // root; root.slink unused (treated as root)
  docs_.clear();
  slot_of_.clear();
  live_symbols_ = 0;
  dead_symbols_ = 0;
  num_live_docs_ = 0;
}

uint32_t SuffixTreeCollection::NewNode() {
  nodes_.emplace_back();
  return static_cast<uint32_t>(nodes_.size() - 1);
}

uint64_t SuffixTreeCollection::EdgeLength(const Node& n, uint32_t cur_slot,
                                          uint64_t cur_pos) const {
  uint64_t end;
  if (n.edge_end >= 0) {
    end = static_cast<uint64_t>(n.edge_end);
  } else if (n.edge_doc == cur_slot) {
    end = cur_pos + 1;  // open edge of the document being inserted
  } else {
    end = docs_[n.edge_doc].text.size();
  }
  return end - n.edge_start;
}

void SuffixTreeCollection::Insert(DocId id, std::vector<Symbol> symbols) {
  DYNDEX_CHECK(!symbols.empty());
  DYNDEX_CHECK(slot_of_.find(id) == slot_of_.end());
  for (Symbol s : symbols) DYNDEX_CHECK(s >= kMinSymbol && s < kTermBase);
  uint32_t slot = static_cast<uint32_t>(docs_.size());
  docs_.emplace_back();
  DocRecord& rec = docs_.back();
  rec.id = id;
  rec.text = std::move(symbols);
  rec.text.push_back(kTermBase + slot);
  slot_of_[id] = slot;
  live_symbols_ += rec.text.size() - 1;
  ++num_live_docs_;
  InsertIntoTree(slot);
}

void SuffixTreeCollection::InsertIntoTree(uint32_t slot) {
  const std::vector<Symbol>& t = docs_[slot].text;
  uint64_t L = t.size();
  uint32_t active_node = 0;
  uint64_t active_edge = 0;  // index into t
  uint64_t active_len = 0;
  uint64_t remainder = 0;
  uint32_t need_slink = kNil;

  auto add_slink = [&](uint32_t node) {
    if (need_slink != kNil) nodes_[need_slink].slink = node;
    need_slink = node;
  };

  for (uint64_t i = 0; i < L; ++i) {
    ++remainder;
    need_slink = kNil;
    while (remainder > 0) {
      if (active_len == 0) active_edge = i;
      Symbol edge_sym = t[active_edge];
      auto it = nodes_[active_node].children.find(edge_sym);
      if (it == nodes_[active_node].children.end()) {
        // Rule 2: new leaf directly under active_node.
        uint32_t leaf = NewNode();
        Node& ln = nodes_[leaf];
        ln.edge_doc = slot;
        ln.edge_start = i;
        ln.edge_end = -1;
        ln.leaf_slot = static_cast<int32_t>(slot);
        ln.suffix_start = i + 1 - remainder;
        nodes_[active_node].children[edge_sym] = leaf;
        add_slink(active_node);
      } else {
        uint32_t nxt = it->second;
        uint64_t elen = EdgeLength(nodes_[nxt], slot, i);
        if (active_len >= elen) {
          // Walk down.
          active_node = nxt;
          active_edge += elen;
          active_len -= elen;
          continue;
        }
        const Node& nn = nodes_[nxt];
        Symbol on_edge =
            docs_[nn.edge_doc].text[nn.edge_start + active_len];
        if (on_edge == t[i]) {
          // Rule 3: already present; advance and stop this phase.
          ++active_len;
          add_slink(active_node);
          break;
        }
        // Split the edge.
        uint32_t split = NewNode();
        Node& sp = nodes_[split];
        sp.edge_doc = nodes_[nxt].edge_doc;
        sp.edge_start = nodes_[nxt].edge_start;
        sp.edge_end = static_cast<int64_t>(nodes_[nxt].edge_start + active_len);
        nodes_[active_node].children[edge_sym] = split;
        uint32_t leaf = NewNode();
        Node& ln = nodes_[leaf];
        ln.edge_doc = slot;
        ln.edge_start = i;
        ln.edge_end = -1;
        ln.leaf_slot = static_cast<int32_t>(slot);
        ln.suffix_start = i + 1 - remainder;
        nodes_[split].children[t[i]] = leaf;
        nodes_[nxt].edge_start += active_len;
        Symbol nxt_sym =
            docs_[nodes_[nxt].edge_doc].text[nodes_[nxt].edge_start];
        nodes_[split].children[nxt_sym] = nxt;
        add_slink(split);
      }
      --remainder;
      if (active_node == 0 && active_len > 0) {
        --active_len;
        active_edge = i + 1 - remainder;
      } else if (active_node != 0) {
        uint32_t sl = nodes_[active_node].slink;
        active_node = sl == kNil ? 0 : sl;
      }
    }
  }
  // The unique terminator guarantees remainder == 0 at the end.
  DYNDEX_DCHECK(remainder == 0);
}

bool SuffixTreeCollection::Erase(DocId id) {
  auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return false;
  DocRecord& rec = docs_[it->second];
  DYNDEX_CHECK(!rec.dead);
  rec.dead = true;
  uint64_t len = rec.text.size() - 1;
  live_symbols_ -= len;
  dead_symbols_ += len;
  --num_live_docs_;
  slot_of_.erase(it);
  RebuildIfNeeded();
  return true;
}

void SuffixTreeCollection::RebuildIfNeeded() {
  if (dead_symbols_ > 0 && dead_symbols_ >= live_symbols_) Rebuild();
}

void SuffixTreeCollection::Rebuild() {
  std::vector<DocRecord> old = std::move(docs_);
  Clear();
  for (DocRecord& rec : old) {
    if (rec.dead) continue;
    rec.text.pop_back();  // strip the old terminator
    Insert(rec.id, std::move(rec.text));
  }
}

bool SuffixTreeCollection::Contains(DocId id) const {
  return slot_of_.find(id) != slot_of_.end();
}

uint32_t SuffixTreeCollection::Locus(const std::vector<Symbol>& pattern) const {
  DYNDEX_CHECK(!pattern.empty());
  uint32_t node = 0;
  uint64_t matched = 0;
  while (matched < pattern.size()) {
    auto it = nodes_[node].children.find(pattern[matched]);
    if (it == nodes_[node].children.end()) return kNil;
    uint32_t nxt = it->second;
    const Node& nn = nodes_[nxt];
    uint64_t end = nn.edge_end >= 0 ? static_cast<uint64_t>(nn.edge_end)
                                    : docs_[nn.edge_doc].text.size();
    const std::vector<Symbol>& label_text = docs_[nn.edge_doc].text;
    for (uint64_t p = nn.edge_start; p < end && matched < pattern.size(); ++p) {
      if (label_text[p] != pattern[matched]) return kNil;
      ++matched;
    }
    node = nxt;
  }
  return node;
}

uint64_t SuffixTreeCollection::Count(const std::vector<Symbol>& pattern) const {
  uint64_t count = 0;
  ForEachOccurrence(pattern, [&](DocId, uint64_t) { ++count; });
  return count;
}

const std::vector<Symbol>& SuffixTreeCollection::DocSymbols(DocId id) const {
  auto it = slot_of_.find(id);
  DYNDEX_CHECK(it != slot_of_.end());
  // Note: includes the trailing terminator; callers use Extract for slices.
  return docs_[it->second].text;
}

uint64_t SuffixTreeCollection::DocLen(DocId id) const {
  auto it = slot_of_.find(id);
  DYNDEX_CHECK(it != slot_of_.end());
  return docs_[it->second].text.size() - 1;
}

void SuffixTreeCollection::Extract(DocId id, uint64_t from, uint64_t len,
                                   std::vector<Symbol>* out) const {
  auto it = slot_of_.find(id);
  DYNDEX_CHECK(it != slot_of_.end());
  const std::vector<Symbol>& t = docs_[it->second].text;
  DYNDEX_CHECK(from + len + 1 <= t.size());
  out->insert(out->end(), t.begin() + static_cast<int64_t>(from),
              t.begin() + static_cast<int64_t>(from + len));
}

void SuffixTreeCollection::ExportLiveDocs(std::vector<Document>* out) {
  for (DocRecord& rec : docs_) {
    if (rec.dead) continue;
    rec.text.pop_back();
    out->push_back(Document{rec.id, std::move(rec.text)});
  }
  Clear();
}

uint64_t SuffixTreeCollection::SpaceBytes() const {
  uint64_t total = nodes_.capacity() * sizeof(Node);
  for (const Node& n : nodes_) total += n.children.size() * 24;
  for (const DocRecord& d : docs_) {
    total += sizeof(DocRecord) + d.text.capacity() * sizeof(Symbol);
  }
  return total;
}

}  // namespace dyndex
