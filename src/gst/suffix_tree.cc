#include "gst/suffix_tree.h"

#include <utility>

#include "util/check.h"

namespace dyndex {

void SuffixTreeCollection::Clear() {
  nodes_.clear();
  nodes_.emplace_back();  // root; root.slink unused (treated as root)
  docs_.clear();
  slot_of_.clear();
  live_symbols_ = 0;
  dead_symbols_ = 0;
  num_live_docs_ = 0;
}

uint32_t SuffixTreeCollection::NewNode() {
  nodes_.emplace_back();
  return static_cast<uint32_t>(nodes_.size() - 1);
}

uint64_t SuffixTreeCollection::EdgeLength(const Node& n, uint32_t cur_slot,
                                          uint64_t cur_pos) const {
  uint64_t end;
  if (n.edge_end >= 0) {
    end = static_cast<uint64_t>(n.edge_end);
  } else if (n.edge_doc == cur_slot) {
    end = cur_pos + 1;  // open edge of the document being inserted
  } else {
    end = docs_[n.edge_doc].text.size();
  }
  return end - n.edge_start;
}

void SuffixTreeCollection::Insert(DocId id, std::vector<Symbol> symbols) {
  DYNDEX_CHECK(!symbols.empty());
  DYNDEX_CHECK(!slot_of_.Contains(id));
  for (Symbol s : symbols) DYNDEX_CHECK(s >= kMinSymbol && s < kTermBase);
  uint32_t slot = static_cast<uint32_t>(docs_.size());
  docs_.emplace_back();
  DocRecord& rec = docs_.back();
  rec.id = id;
  // Copy into the retire-backed buffer (allocators differ, so no move).
  rec.text.reserve(symbols.size() + 1);
  rec.text.assign(symbols.begin(), symbols.end());
  rec.text.push_back(kTermBase + slot);
  slot_of_[id] = slot;
  live_symbols_ += rec.text.size() - 1;
  ++num_live_docs_;
  InsertIntoTree(slot);
}

void SuffixTreeCollection::InsertIntoTree(uint32_t slot) {
  const retire_vector<Symbol>& t = docs_[slot].text;
  uint64_t L = t.size();
  uint32_t active_node = 0;
  uint64_t active_edge = 0;  // index into t
  uint64_t active_len = 0;
  uint64_t remainder = 0;
  uint32_t need_slink = kNil;

  auto add_slink = [&](uint32_t node) {
    if (need_slink != kNil) nodes_[need_slink].slink = node;
    need_slink = node;
  };

  for (uint64_t i = 0; i < L; ++i) {
    ++remainder;
    need_slink = kNil;
    while (remainder > 0) {
      if (active_len == 0) active_edge = i;
      Symbol edge_sym = t[active_edge];
      const uint32_t* child = nodes_[active_node].children.Find(edge_sym);
      if (child == nullptr) {
        // Rule 2: new leaf directly under active_node.
        uint32_t leaf = NewNode();
        Node& ln = nodes_[leaf];
        ln.edge_doc = slot;
        ln.edge_start = i;
        ln.edge_end = -1;
        ln.leaf_slot = static_cast<int32_t>(slot);
        ln.suffix_start = i + 1 - remainder;
        nodes_[active_node].children[edge_sym] = leaf;
        add_slink(active_node);
      } else {
        uint32_t nxt = *child;
        uint64_t elen = EdgeLength(nodes_[nxt], slot, i);
        if (active_len >= elen) {
          // Walk down.
          active_node = nxt;
          active_edge += elen;
          active_len -= elen;
          continue;
        }
        const Node& nn = nodes_[nxt];
        Symbol on_edge =
            docs_[nn.edge_doc].text[nn.edge_start + active_len];
        if (on_edge == t[i]) {
          // Rule 3: already present; advance and stop this phase.
          ++active_len;
          add_slink(active_node);
          break;
        }
        // Split the edge.
        uint32_t split = NewNode();
        Node& sp = nodes_[split];
        sp.edge_doc = nodes_[nxt].edge_doc;
        sp.edge_start = nodes_[nxt].edge_start;
        sp.edge_end = static_cast<int64_t>(nodes_[nxt].edge_start + active_len);
        nodes_[active_node].children[edge_sym] = split;
        uint32_t leaf = NewNode();
        Node& ln = nodes_[leaf];
        ln.edge_doc = slot;
        ln.edge_start = i;
        ln.edge_end = -1;
        ln.leaf_slot = static_cast<int32_t>(slot);
        ln.suffix_start = i + 1 - remainder;
        nodes_[split].children[t[i]] = leaf;
        nodes_[nxt].edge_start += active_len;
        Symbol nxt_sym =
            docs_[nodes_[nxt].edge_doc].text[nodes_[nxt].edge_start];
        nodes_[split].children[nxt_sym] = nxt;
        add_slink(split);
      }
      --remainder;
      if (active_node == 0 && active_len > 0) {
        --active_len;
        active_edge = i + 1 - remainder;
      } else if (active_node != 0) {
        uint32_t sl = nodes_[active_node].slink;
        active_node = sl == kNil ? 0 : sl;
      }
    }
  }
  // The unique terminator guarantees remainder == 0 at the end.
  DYNDEX_DCHECK(remainder == 0);
}

bool SuffixTreeCollection::Erase(DocId id) {
  const uint32_t* slot = slot_of_.Find(id);
  if (slot == nullptr) return false;
  DocRecord& rec = docs_[*slot];
  DYNDEX_CHECK(!rec.dead);
  rec.dead = true;
  uint64_t len = rec.text.size() - 1;
  live_symbols_ -= len;
  dead_symbols_ += len;
  --num_live_docs_;
  slot_of_.Erase(id);
  RebuildIfNeeded();
  return true;
}

void SuffixTreeCollection::RebuildIfNeeded() {
  if (dead_symbols_ > 0 && dead_symbols_ >= live_symbols_) Rebuild();
}

void SuffixTreeCollection::Rebuild() {
  retire_vector<DocRecord> old = std::move(docs_);
  Clear();
  for (DocRecord& rec : old) {
    if (rec.dead) continue;
    // Copy (terminator stripped): the old buffer must stay intact in `old`
    // for readers still traversing the pre-rebuild tree.
    std::vector<Symbol> t(rec.text.begin(), rec.text.end() - 1);
    Insert(rec.id, std::move(t));
  }
  // Optimistic readers may still be traversing the pre-rebuild records (the
  // dead texts in particular); park the old array instead of freeing it.
  Retire(std::move(old));
}

bool SuffixTreeCollection::Contains(DocId id) const {
  return slot_of_.Contains(id);
}

uint32_t SuffixTreeCollection::Locus(const std::vector<Symbol>& pattern) const {
  DYNDEX_CHECK(!pattern.empty());
  uint32_t node = 0;
  uint64_t matched = 0;
  while (matched < pattern.size()) {
    const uint32_t* child = nodes_[node].children.Find(pattern[matched]);
    if (child == nullptr) return kNil;
    uint32_t nxt = *child;
    // Torn-read clamps (optimistic serve-layer readers): a child id or edge
    // descriptor read mid-mutation must not index out of bounds.
    DYNDEX_CHECK(nxt < nodes_.size());
    const Node& nn = nodes_[nxt];
    DYNDEX_CHECK(nn.edge_doc < docs_.size());
    const retire_vector<Symbol>& label_text = docs_[nn.edge_doc].text;
    uint64_t end = nn.edge_end >= 0 ? static_cast<uint64_t>(nn.edge_end)
                                    : label_text.size();
    DYNDEX_CHECK(end <= label_text.size());
    for (uint64_t p = nn.edge_start; p < end && matched < pattern.size(); ++p) {
      if (label_text[p] != pattern[matched]) return kNil;
      ++matched;
    }
    node = nxt;
  }
  return node;
}

uint64_t SuffixTreeCollection::Count(const std::vector<Symbol>& pattern) const {
  uint64_t count = 0;
  ForEachOccurrence(pattern, [&](DocId, uint64_t) { ++count; });
  return count;
}

const retire_vector<Symbol>& SuffixTreeCollection::DocSymbols(DocId id) const {
  const uint32_t* slot = slot_of_.Find(id);
  DYNDEX_CHECK(slot != nullptr);
  DYNDEX_CHECK(*slot < docs_.size());
  // Note: includes the trailing terminator; callers use Extract for slices.
  return docs_[*slot].text;
}

uint64_t SuffixTreeCollection::DocLen(DocId id) const {
  const uint32_t* slot = slot_of_.Find(id);
  DYNDEX_CHECK(slot != nullptr);
  DYNDEX_CHECK(*slot < docs_.size());
  return docs_[*slot].text.size() - 1;
}

void SuffixTreeCollection::Extract(DocId id, uint64_t from, uint64_t len,
                                   std::vector<Symbol>* out) const {
  const uint32_t* slot = slot_of_.Find(id);
  DYNDEX_CHECK(slot != nullptr);
  DYNDEX_CHECK(*slot < docs_.size());
  const retire_vector<Symbol>& t = docs_[*slot].text;
  DYNDEX_CHECK(from + len + 1 <= t.size());
  out->insert(out->end(), t.begin() + static_cast<int64_t>(from),
              t.begin() + static_cast<int64_t>(from + len));
}

void SuffixTreeCollection::PeekLiveDocs(std::vector<Document>* out) const {
  for (const DocRecord& rec : docs_) {
    if (rec.dead) continue;
    out->push_back(Document{
        rec.id, std::vector<Symbol>(rec.text.begin(), rec.text.end() - 1)});
  }
}

void SuffixTreeCollection::ExportLiveDocs(std::vector<Document>* out) {
  // Copy (terminator stripped) rather than move: the exported Documents are
  // writer-local and die inside the exclusive section, while readers may
  // still chase edge labels into the original buffers. Those buffers are
  // parked by the retire allocator when Clear() drops the records.
  PeekLiveDocs(out);
  Clear();
}

uint64_t SuffixTreeCollection::SpaceBytes() const {
  uint64_t total = nodes_.capacity() * sizeof(Node) + slot_of_.MemoryBytes();
  for (const Node& n : nodes_) total += n.children.MemoryBytes();
  for (const DocRecord& d : docs_) {
    total += sizeof(DocRecord) + d.text.capacity() * sizeof(Symbol);
  }
  return total;
}

}  // namespace dyndex
