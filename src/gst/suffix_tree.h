// Generalized suffix tree over a small document collection: the uncompressed
// fully-dynamic structure C0 of the paper (Section A.2).
//
// Documents are inserted in O(|T|) expected time (Ukkonen's algorithm with
// hash-map child dictionaries; each document is terminated by a unique
// per-slot terminator symbol so all suffixes are explicit). Pattern queries
// take O(|P| + occ).
//
// Deletion is lazy (the paper's McCreight-style physical deletion is replaced
// by dead-marking plus a physical rebuild once half the symbols are dead; C0
// holds only O(n / log^2 n) symbols, so rebuilds amortize to O(1) per update
// symbol — see DESIGN.md, substitution 6).
#ifndef DYNDEX_GST_SUFFIX_TREE_H_
#define DYNDEX_GST_SUFFIX_TREE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "text/concat_text.h"
#include "util/check.h"
#include "util/retire.h"
#include "util/seq_hash_map.h"

namespace dyndex {

/// Dynamic uncompressed document collection with O(|P| + occ) search.
class SuffixTreeCollection {
 public:
  SuffixTreeCollection() { Clear(); }

  /// Inserts a document under the caller's stable id. O(|T|) expected.
  void Insert(DocId id, std::vector<Symbol> symbols);

  /// Lazily removes the document. Returns false if the id is unknown.
  bool Erase(DocId id);

  bool Contains(DocId id) const;

  /// Calls fn(id, offset) for every occurrence of `pattern` in every live
  /// document. O(|P| + occ) plus the (bounded) cost of skipping dead leaves.
  template <typename Fn>
  void ForEachOccurrence(const std::vector<Symbol>& pattern, Fn fn) const {
    uint32_t locus = Locus(pattern);
    if (locus == kNil) return;
    CollectLeaves(locus, fn);
  }

  /// Number of live occurrences of `pattern`.
  uint64_t Count(const std::vector<Symbol>& pattern) const;

  /// Document content. NOTE: includes the internal terminator as the last
  /// element; prefer Extract/DocLen for slicing.
  const retire_vector<Symbol>& DocSymbols(DocId id) const;

  /// Length of the document (excluding the terminator). Requires Contains.
  uint64_t DocLen(DocId id) const;

  /// Appends doc[from, from+len) to out. Requires the range to be valid.
  void Extract(DocId id, uint64_t from, uint64_t len,
               std::vector<Symbol>* out) const;

  uint64_t live_symbols() const { return live_symbols_; }
  uint64_t dead_symbols() const { return dead_symbols_; }
  uint32_t num_live_docs() const { return num_live_docs_; }

  /// Copies all live documents (terminator stripped) into `out` without
  /// touching the structure — the snapshot-export path.
  void PeekLiveDocs(std::vector<Document>* out) const;

  /// Moves all live documents into `out` and resets the structure.
  void ExportLiveDocs(std::vector<Document>* out);

  /// Drops everything.
  void Clear();

  uint64_t SpaceBytes() const;

  /// Base of the per-document terminator symbols (terminator = kTermBase +
  /// slot). User symbols must stay below it; the serving facade screens
  /// patterns and documents against this bound.
  static constexpr Symbol kTermBase = 1u << 31;

 private:
  static constexpr uint32_t kNil = ~0u;

  // Optimistic readers (serve-layer seqlock) may traverse the tree while a
  // writer mutates it, so every reader-reachable container parks abandoned
  // buffers on the thread-local retire sink instead of freeing them
  // (util/retire.h): nodes_/docs_ reallocs and retired hash tables all defer
  // until no reader can still hold them. The hash maps are SeqHashMap — a
  // probe's bounds come from a single pointer load, so a reader mid-rehash
  // never indexes out of the (parked) old table (util/seq_hash_map.h).
  struct Node {
    SeqHashMap<Symbol, uint32_t> children;
    uint32_t slink = kNil;
    uint32_t edge_doc = 0;    // slot whose text labels the incoming edge
    uint64_t edge_start = 0;  // label = text[edge_start, edge_end)
    int64_t edge_end = -1;    // -1: to the end of edge_doc's text
    int32_t leaf_slot = -1;   // >= 0 for leaves
    uint64_t suffix_start = 0;
  };

  struct DocRecord {
    DocId id = kInvalidDocId;
    // Includes the terminator. Retire-backed: edge labels point into these
    // buffers, and readers may still chase them after the record is dropped
    // (Clear() post-export, rebuilds), so frees must wait out the grace period.
    retire_vector<Symbol> text;
    bool dead = false;
  };

  retire_vector<Node> nodes_;
  retire_vector<DocRecord> docs_;
  SeqHashMap<DocId, uint32_t> slot_of_;
  uint64_t live_symbols_ = 0;  // excludes terminators
  uint64_t dead_symbols_ = 0;
  uint32_t num_live_docs_ = 0;

  uint32_t NewNode();
  uint64_t EdgeLength(const Node& n, uint32_t cur_slot, uint64_t cur_pos) const;
  void InsertIntoTree(uint32_t slot);
  void RebuildIfNeeded();
  void Rebuild();

  /// Node whose subtree holds exactly the suffixes starting with `pattern`,
  /// or kNil. (If the pattern ends mid-edge, the edge's lower node.)
  uint32_t Locus(const std::vector<Symbol>& pattern) const;

  template <typename Fn>
  void CollectLeaves(uint32_t node, Fn fn) const {
    // Iterative DFS. The bounds checks double as torn-read detectors for
    // optimistic readers: a node id or leaf slot read mid-mutation may point
    // anywhere, and a torn tree may even contain cycles — the step budget
    // (a valid tree visits each node at most once) breaks out of those.
    std::vector<uint32_t> stack{node};
    uint64_t steps = 0;
    while (!stack.empty()) {
      DYNDEX_CHECK(++steps <= nodes_.size());
      uint32_t v = stack.back();
      stack.pop_back();
      DYNDEX_CHECK(v < nodes_.size());
      const Node& n = nodes_[v];
      if (n.leaf_slot >= 0) {
        DYNDEX_CHECK(static_cast<uint32_t>(n.leaf_slot) < docs_.size());
        const DocRecord& d = docs_[static_cast<uint32_t>(n.leaf_slot)];
        if (!d.dead && n.suffix_start + 1 < d.text.size()) {
          // Exclude the terminator-only suffix (never matches a pattern, but
          // guard for robustness).
          fn(d.id, n.suffix_start);
        }
        continue;
      }
      n.children.ForEach(
          [&](Symbol, uint32_t child) { stack.push_back(child); });
    }
  }

  friend class SuffixTreeTestPeer;
};

}  // namespace dyndex

#endif  // DYNDEX_GST_SUFFIX_TREE_H_
