// Little-endian binary encoding helpers shared by the WAL, the snapshot
// container, and the serving layer's record codecs. The Decoder is
// bounds-checked and *never* trusts a length field: on truncated or
// malformed input it reports failure instead of reading past the buffer —
// the property every "recover or refuse loudly" guarantee bottoms out on.
#ifndef DYNDEX_PERSIST_FORMAT_H_
#define DYNDEX_PERSIST_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace dyndex {
namespace persist {

inline void PutU8(std::string* dst, uint8_t v) {
  dst->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* dst, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  dst->append(buf, 4);
}

inline void PutU64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  dst->append(buf, 8);
}

inline void PutLengthPrefixed(std::string* dst, std::string_view v) {
  PutU64(dst, v.size());
  dst->append(v.data(), v.size());
}

inline uint32_t DecodeU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

inline uint64_t DecodeU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

/// Bounds-checked cursor over an encoded buffer. Every Get* returns false
/// (leaving the output untouched) once the input is exhausted or a length
/// field points past the end; `ok()` stays false from then on.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (!ok_ || data_.size() - pos_ < 1) return Fail();
    *v = static_cast<uint8_t>(data_[pos_]);
    pos_ += 1;
    return true;
  }

  bool GetU32(uint32_t* v) {
    if (!ok_ || data_.size() - pos_ < 4) return Fail();
    *v = DecodeU32(data_.data() + pos_);
    pos_ += 4;
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (!ok_ || data_.size() - pos_ < 8) return Fail();
    *v = DecodeU64(data_.data() + pos_);
    pos_ += 8;
    return true;
  }

  bool GetLengthPrefixed(std::string_view* v) {
    uint64_t n = 0;
    if (!GetU64(&n)) return false;
    if (data_.size() - pos_ < n) return Fail();
    *v = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }
  uint64_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }

  std::string_view data_;
  uint64_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace persist
}  // namespace dyndex

#endif  // DYNDEX_PERSIST_FORMAT_H_
