#include "persist/wal.h"

#include <cstring>
#include <utility>

#include "persist/crc32c.h"
#include "persist/format.h"

namespace dyndex {
namespace persist {

namespace {

uint32_t FrameCrc(uint64_t seq, std::string_view payload) {
  char seq_le[8];
  for (int i = 0; i < 8; ++i) seq_le[i] = static_cast<char>(seq >> (8 * i));
  uint32_t crc = Crc32c(seq_le, sizeof(seq_le));
  return Crc32c(crc, payload.data(), payload.size());
}

}  // namespace

std::string EncodeWalFrame(uint64_t seq, std::string_view payload) {
  std::string frame;
  frame.reserve(kWalFrameHeaderSize + payload.size());
  PutU32(&frame, kWalFrameMagic);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU64(&frame, seq);
  PutU32(&frame, MaskCrc(FrameCrc(seq, payload)));
  frame.append(payload.data(), payload.size());
  return frame;
}

Status WalWriter::Create(Env* env, const std::string& path,
                         std::unique_ptr<WalWriter>* out) {
  std::unique_ptr<WritableFile> file;
  DYNDEX_RETURN_IF_ERROR(env->NewWritableFile(path, &file));
  DYNDEX_RETURN_IF_ERROR(file->Append(std::string_view(kWalMagic, 8)));
  // Sync the header now: a log that exists with a torn header would read as
  // empty, which is correct (nothing acked), but a synced header means every
  // later "file >= 8 bytes, wrong magic" case is genuine corruption.
  DYNDEX_RETURN_IF_ERROR(file->Sync());
  out->reset(new WalWriter(std::move(file)));
  return Status::Ok();
}

Status WalWriter::OpenForAppend(Env* env, const std::string& path,
                                std::unique_ptr<WalWriter>* out) {
  std::unique_ptr<WritableFile> file;
  DYNDEX_RETURN_IF_ERROR(env->NewAppendableFile(path, &file));
  out->reset(new WalWriter(std::move(file)));
  return Status::Ok();
}

Status WalWriter::Append(uint64_t seq, std::string_view payload) {
  if (payload.size() > kWalMaxPayload) {
    return Status::InvalidArgument("WAL payload too large");
  }
  DYNDEX_RETURN_IF_ERROR(file_->Append(EncodeWalFrame(seq, payload)));
  ++unsynced_appends_;
  return Status::Ok();
}

Status WalWriter::Sync() {
  DYNDEX_RETURN_IF_ERROR(file_->Sync());
  unsynced_appends_ = 0;
  return Status::Ok();
}

Status ScanWal(Env* env, const std::string& path, WalScanResult* out) {
  *out = WalScanResult{};
  uint64_t size = 0;
  Status st = env->GetFileSize(path, &size);
  if (!st.ok()) return st;  // NotFound propagates: no log at all
  std::unique_ptr<RandomAccessFile> file;
  DYNDEX_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &file));
  std::string data;
  DYNDEX_RETURN_IF_ERROR(file->Read(0, size, &data));
  // A short read shrinks the visible file; every outcome below is still a
  // valid prefix of the acked frames, which is the contract.
  if (data.size() < kWalHeaderSize) {
    // Torn header: the crash hit between file creation and the header sync.
    // Nothing was ever acked on this log — empty, not corrupt.
    out->valid_bytes = 0;
    out->dropped_bytes = data.size();
    return Status::Ok();
  }
  if (std::memcmp(data.data(), kWalMagic, 8) != 0) {
    return Status::Corruption("WAL header magic mismatch: " + path);
  }
  uint64_t pos = kWalHeaderSize;
  while (data.size() - pos >= kWalFrameHeaderSize) {
    const char* p = data.data() + pos;
    const uint32_t magic = DecodeU32(p);
    const uint32_t len = DecodeU32(p + 4);
    const uint64_t seq = DecodeU64(p + 8);
    const uint32_t stored_crc = UnmaskCrc(DecodeU32(p + 16));
    if (magic != kWalFrameMagic || len > kWalMaxPayload ||
        data.size() - pos - kWalFrameHeaderSize < len) {
      break;  // garbage or torn frame: the prefix ends here
    }
    std::string_view payload(p + kWalFrameHeaderSize, len);
    if (FrameCrc(seq, payload) != stored_crc) break;  // bit rot / torn payload
    out->frames.push_back(WalFrame{seq, std::string(payload)});
    pos += kWalFrameHeaderSize + len;
  }
  out->valid_bytes = pos;
  out->dropped_bytes = data.size() - pos;
  return Status::Ok();
}

Status RewriteTruncated(Env* env, const std::string& path,
                        const WalScanResult& scan) {
  const std::string tmp = path + ".tmp";
  std::unique_ptr<WritableFile> file;
  DYNDEX_RETURN_IF_ERROR(env->NewWritableFile(tmp, &file));
  DYNDEX_RETURN_IF_ERROR(file->Append(std::string_view(kWalMagic, 8)));
  for (const WalFrame& f : scan.frames) {
    DYNDEX_RETURN_IF_ERROR(file->Append(EncodeWalFrame(f.seq, f.payload)));
  }
  DYNDEX_RETURN_IF_ERROR(file->Sync());
  DYNDEX_RETURN_IF_ERROR(file->Close());
  return env->RenameFile(tmp, path);
}

}  // namespace persist
}  // namespace dyndex
