// The filesystem seam of the persistence layer. Everything that touches
// durable bytes — WAL frames, snapshot sections, manifests — goes through
// this small Env interface, for two reasons:
//
//  * PosixEnv is the production implementation (write/fsync/pread/rename,
//    with directory fsync after renames so the rename itself is durable).
//  * MemEnv is the *testable* implementation: it tracks, per file, how many
//    bytes have been fsync'd, so a test can crash the "machine"
//    (SimulateCrash) and get exactly the on-disk states a real power cut can
//    produce — synced prefix kept, unsynced tail dropped or torn at any
//    byte. FaultEnv (fault_env.h) wraps either one to inject failures at
//    scripted call counts.
//
// Contracts the recovery code relies on:
//  * Append is buffered until Sync; after Sync returns ok, those bytes
//    survive a crash. A crash before Sync may keep any prefix of the
//    unsynced tail (torn write).
//  * RenameFile is atomic: after a crash, either the old or the new name
//    maps to the complete file, never a mix. (PosixEnv fsyncs the parent
//    directory; MemEnv models rename as atomic+durable.)
#ifndef DYNDEX_PERSIST_ENV_H_
#define DYNDEX_PERSIST_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "persist/status.h"

namespace dyndex {
namespace persist {

/// Sequential, buffered output file.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  /// Makes every appended byte crash-durable.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Positional input file (stateless reads; safe from any thread).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  /// Reads up to `n` bytes at `offset` into *out (replaced, not appended).
  /// Short reads (EOF or an injected fault) return ok with fewer bytes;
  /// callers must treat "fewer bytes than needed" as truncation/corruption.
  virtual Status Read(uint64_t offset, uint64_t n, std::string* out) const = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Creates/truncates `path` for writing.
  virtual Status NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* out) = 0;
  /// Opens `path` for appending (creates it when missing).
  virtual Status NewAppendableFile(const std::string& path,
                                   std::unique_ptr<WritableFile>* out) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& path, std::unique_ptr<RandomAccessFile>* out) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Status GetFileSize(const std::string& path, uint64_t* size) = 0;
  /// Atomic replace; see the durability contract in the file comment.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  /// Ok when the directory already exists.
  virtual Status CreateDir(const std::string& path) = 0;
};

/// The real filesystem. Stateless; one instance serves any number of threads.
Env* GetPosixEnv();

/// In-memory filesystem with crash simulation. Thread-safe.
class MemEnv final : public Env {
 public:
  MemEnv() = default;

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override;
  Status NewAppendableFile(const std::string& path,
                           std::unique_ptr<WritableFile>* out) override;
  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* out) override;
  bool FileExists(const std::string& path) override;
  Status GetFileSize(const std::string& path, uint64_t* size) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status DeleteFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;

  // --- crash / fault hooks (tests only) -------------------------------------

  /// Power cut: every file keeps its synced prefix plus the first
  /// `torn_extra` bytes of its unsynced tail (0 = clean cut at the sync
  /// boundary — the classic "everything after the last fsync is gone").
  /// Open handles keep working but their unsynced buffer is gone too.
  void SimulateCrash(uint64_t torn_extra = 0);

  /// Truncates one file to `keep_bytes` (scripted torn tail / truncated log).
  Status TruncateFile(const std::string& path, uint64_t keep_bytes);

  /// XORs `mask` into the byte at `offset` (scripted bit flip / rot).
  Status CorruptByte(const std::string& path, uint64_t offset, uint8_t mask);

  uint64_t synced_bytes(const std::string& path);

 private:
  friend class MemWritableFile;
  friend class MemRandomAccessFile;

  struct FileState {
    std::string data;
    uint64_t synced_len = 0;  // prefix guaranteed to survive SimulateCrash
  };

  std::mutex mu_;
  std::map<std::string, std::shared_ptr<FileState>> files_;  // guarded by mu_
  std::map<std::string, bool> dirs_;                         // guarded by mu_
};

}  // namespace persist
}  // namespace dyndex

#endif  // DYNDEX_PERSIST_ENV_H_
