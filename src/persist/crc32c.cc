#include "persist/crc32c.h"

#include <array>

namespace dyndex {
namespace persist {

namespace {

// Reflected CRC-32C, polynomial 0x1EDC6F41 (reflected form 0x82F63B78).
constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32c(uint32_t init, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~init;
  for (std::size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace persist
}  // namespace dyndex
