// CRC-32C (Castagnoli) — the checksum guarding every snapshot section and
// WAL frame. Software table implementation (the container toolchain makes no
// SSE4.2 promise); throughput is far above what checkpoint/replay needs.
//
// Stored CRCs are *masked* (rotate + constant, the scheme Bigtable/LevelDB
// popularized): a CRC of data that itself contains CRCs is a fixed point of
// the unmasked function often enough to be a real false-negative source, and
// a file of zeros must not verify (crc32c(0...0) starts at a well-known
// value; Mask(0) does not).
#ifndef DYNDEX_PERSIST_CRC32C_H_
#define DYNDEX_PERSIST_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace dyndex {
namespace persist {

/// CRC-32C of `data[0, n)` extending `init` (pass 0 to start a new CRC).
uint32_t Crc32c(uint32_t init, const void* data, std::size_t n);

inline uint32_t Crc32c(const void* data, std::size_t n) {
  return Crc32c(0, data, n);
}

inline constexpr uint32_t kCrcMaskDelta = 0xa282ead8u;

/// Masked form for storage (never store a raw CRC of data containing CRCs).
inline constexpr uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kCrcMaskDelta;
}
inline constexpr uint32_t UnmaskCrc(uint32_t masked) {
  const uint32_t rot = masked - kCrcMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace persist
}  // namespace dyndex

#endif  // DYNDEX_PERSIST_CRC32C_H_
