#include "persist/fault_env.h"

#include <algorithm>
#include <utility>

namespace dyndex {
namespace persist {

bool FaultEnv::CountdownHit(std::atomic<uint64_t>* counter) {
  uint64_t v = counter->load();
  for (;;) {
    if (v == 0) return false;  // unarmed
    if (v == 1) return true;   // exhausted: stay at 1 => fail forever
    if (counter->compare_exchange_weak(v, v - 1)) return false;
  }
}

class FaultyWritableFile final : public WritableFile {
 public:
  FaultyWritableFile(FaultEnv* env, std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    if (FaultEnv::CountdownHit(&env_->appends_until_fail_)) {
      return Status::IoError("injected append failure");
    }
    return base_->Append(data);
  }

  Status Sync() override {
    env_->sync_calls_.fetch_add(1);
    if (FaultEnv::CountdownHit(&env_->syncs_until_fail_)) {
      return Status::IoError("injected fsync failure");
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

class FaultyRandomAccessFile final : public RandomAccessFile {
 public:
  FaultyRandomAccessFile(FaultEnv* env, std::unique_ptr<RandomAccessFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Read(uint64_t offset, uint64_t n, std::string* out) const override {
    uint64_t cap = n;
    // One-shot short read: the countdown disarms itself after firing.
    uint64_t v = env_->reads_until_short_.load();
    while (v != 0) {
      if (env_->reads_until_short_.compare_exchange_weak(v, v - 1)) {
        if (v == 1) cap = std::min(cap, env_->short_read_bytes_.load());
        break;
      }
    }
    return base_->Read(offset, cap, out);
  }

 private:
  FaultEnv* env_;
  std::unique_ptr<RandomAccessFile> base_;
};

Status FaultEnv::NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* out) {
  std::unique_ptr<WritableFile> base;
  DYNDEX_RETURN_IF_ERROR(base_->NewWritableFile(path, &base));
  *out = std::make_unique<FaultyWritableFile>(this, std::move(base));
  return Status::Ok();
}

Status FaultEnv::NewAppendableFile(const std::string& path,
                                   std::unique_ptr<WritableFile>* out) {
  std::unique_ptr<WritableFile> base;
  DYNDEX_RETURN_IF_ERROR(base_->NewAppendableFile(path, &base));
  *out = std::make_unique<FaultyWritableFile>(this, std::move(base));
  return Status::Ok();
}

Status FaultEnv::NewRandomAccessFile(const std::string& path,
                                     std::unique_ptr<RandomAccessFile>* out) {
  std::unique_ptr<RandomAccessFile> base;
  DYNDEX_RETURN_IF_ERROR(base_->NewRandomAccessFile(path, &base));
  *out = std::make_unique<FaultyRandomAccessFile>(this, std::move(base));
  return Status::Ok();
}

}  // namespace persist
}  // namespace dyndex
