#include "persist/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace dyndex {
namespace persist {

namespace {

Status PosixError(const std::string& context, int err) {
  return Status::IoError(context + ": " + std::strerror(err));
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return PosixError("write " + path_, errno);
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return PosixError("fsync " + path_, errno);
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ >= 0 && ::close(fd_) != 0) {
      fd_ = -1;
      return PosixError("close " + path_, errno);
    }
    fd_ = -1;
    return Status::Ok();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, uint64_t n, std::string* out) const override {
    out->resize(n);
    uint64_t got = 0;
    while (got < n) {
      ssize_t r = ::pread(fd_, out->data() + got, n - got,
                          static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError("pread " + path_, errno);
      }
      if (r == 0) break;  // EOF: short read, caller decides
      got += static_cast<uint64_t>(r);
    }
    out->resize(got);
    return Status::Ok();
  }

 private:
  std::string path_;
  int fd_;
};

/// Fsyncs `path`'s parent directory so a completed rename survives a crash.
Status SyncParentDir(const std::string& path) {
  std::string dir = ".";
  const std::size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash);
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return PosixError("open dir " + dir, errno);
  Status st;
  if (::fsync(fd) != 0) st = PosixError("fsync dir " + dir, errno);
  ::close(fd);
  return st;
}

class PosixEnv final : public Env {
 public:
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override {
    return Open(path, O_WRONLY | O_CREAT | O_TRUNC, out);
  }

  Status NewAppendableFile(const std::string& path,
                           std::unique_ptr<WritableFile>* out) override {
    return Open(path, O_WRONLY | O_CREAT | O_APPEND, out);
  }

  Status NewRandomAccessFile(
      const std::string& path,
      std::unique_ptr<RandomAccessFile>* out) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound(path);
      return PosixError("open " + path, errno);
    }
    *out = std::make_unique<PosixRandomAccessFile>(path, fd);
    return Status::Ok();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status GetFileSize(const std::string& path, uint64_t* size) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) return Status::NotFound(path);
      return PosixError("stat " + path, errno);
    }
    *size = static_cast<uint64_t>(st.st_size);
    return Status::Ok();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return PosixError("rename " + from + " -> " + to, errno);
    }
    return SyncParentDir(to);
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) return Status::NotFound(path);
      return PosixError("unlink " + path, errno);
    }
    return Status::Ok();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError("mkdir " + path, errno);
    }
    return Status::Ok();
  }

 private:
  static Status Open(const std::string& path, int flags,
                     std::unique_ptr<WritableFile>* out) {
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return PosixError("open " + path, errno);
    *out = std::make_unique<PosixWritableFile>(path, fd);
    return Status::Ok();
  }
};

}  // namespace

Env* GetPosixEnv() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

// --- MemEnv ------------------------------------------------------------------

class MemWritableFile final : public WritableFile {
 public:
  MemWritableFile(MemEnv* env, std::shared_ptr<MemEnv::FileState> state)
      : env_(env), state_(std::move(state)) {}

  Status Append(std::string_view data) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    state_->data.append(data.data(), data.size());
    return Status::Ok();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    state_->synced_len = state_->data.size();
    return Status::Ok();
  }

  Status Close() override { return Status::Ok(); }

 private:
  MemEnv* env_;
  std::shared_ptr<MemEnv::FileState> state_;
};

class MemRandomAccessFile final : public RandomAccessFile {
 public:
  MemRandomAccessFile(MemEnv* env, std::shared_ptr<MemEnv::FileState> state)
      : env_(env), state_(std::move(state)) {}

  Status Read(uint64_t offset, uint64_t n, std::string* out) const override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    out->clear();
    if (offset >= state_->data.size()) return Status::Ok();
    const uint64_t avail = state_->data.size() - offset;
    out->assign(state_->data, offset, std::min(n, avail));
    return Status::Ok();
  }

 private:
  MemEnv* env_;
  std::shared_ptr<MemEnv::FileState> state_;
};

Status MemEnv::NewWritableFile(const std::string& path,
                               std::unique_ptr<WritableFile>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto state = std::make_shared<FileState>();
  files_[path] = state;
  *out = std::make_unique<MemWritableFile>(this, std::move(state));
  return Status::Ok();
}

Status MemEnv::NewAppendableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  std::shared_ptr<FileState> state;
  if (it == files_.end()) {
    state = std::make_shared<FileState>();
    files_[path] = state;
  } else {
    state = it->second;
  }
  *out = std::make_unique<MemWritableFile>(this, std::move(state));
  return Status::Ok();
}

Status MemEnv::NewRandomAccessFile(const std::string& path,
                                   std::unique_ptr<RandomAccessFile>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  *out = std::make_unique<MemRandomAccessFile>(this, it->second);
  return Status::Ok();
}

bool MemEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) != 0;
}

Status MemEnv::GetFileSize(const std::string& path, uint64_t* size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  *size = it->second->data.size();
  return Status::Ok();
}

Status MemEnv::RenameFile(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound(from);
  // Atomic + durable (the snapshot writer syncs file contents before
  // renaming, so modeling the rename itself as durable matches what the
  // directory fsync gives PosixEnv).
  it->second->synced_len = it->second->data.size();
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::Ok();
}

Status MemEnv::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) return Status::NotFound(path);
  return Status::Ok();
}

Status MemEnv::CreateDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  dirs_[path] = true;
  return Status::Ok();
}

void MemEnv::SimulateCrash(uint64_t torn_extra) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [path, state] : files_) {
    const uint64_t unsynced = state->data.size() - state->synced_len;
    const uint64_t keep = state->synced_len + std::min(torn_extra, unsynced);
    state->data.resize(keep);
    state->synced_len = std::min(state->synced_len, keep);
  }
}

Status MemEnv::TruncateFile(const std::string& path, uint64_t keep_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  FileState& state = *it->second;
  state.data.resize(std::min<uint64_t>(state.data.size(), keep_bytes));
  state.synced_len = std::min<uint64_t>(state.synced_len, state.data.size());
  return Status::Ok();
}

Status MemEnv::CorruptByte(const std::string& path, uint64_t offset,
                           uint8_t mask) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  if (offset >= it->second->data.size()) {
    return Status::InvalidArgument("offset beyond EOF of " + path);
  }
  it->second->data[offset] = static_cast<char>(
      static_cast<uint8_t>(it->second->data[offset]) ^ mask);
  return Status::Ok();
}

uint64_t MemEnv::synced_bytes(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second->synced_len;
}

}  // namespace persist
}  // namespace dyndex
