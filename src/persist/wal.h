// Framed write-ahead log.
//
// File layout:
//   [8-byte file magic "dyxwal01"]
//   frame*   where frame = [u32 frame magic] [u32 payload_len] [u64 seq]
//                          [u32 masked crc32c(seq || payload)] [payload]
//
// `seq` is the batch sequence number the serving layer assigns (strictly
// increasing by 1 per logged batch); the CRC covers it so a frame can never
// be replayed under the wrong position. Appends are buffered; the caller
// decides when Sync() runs (group commit lives in the serving layer).
//
// Scanning returns the longest valid *prefix* and stops at the first bad
// frame — torn tail, truncated length, wrong magic, CRC mismatch, or a
// length pointing past EOF all end the scan the same way. This is the
// recovery contract: every fault mode degrades to "some prefix of the acked
// batches", never to a reordered or bit-flipped batch slipping through.
// A file shorter than the 8-byte header is an *empty* log (the crash may
// have hit between creating the file and syncing the header — nothing was
// acked); a full-size header with the wrong magic is loud corruption.
#ifndef DYNDEX_PERSIST_WAL_H_
#define DYNDEX_PERSIST_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "persist/env.h"
#include "persist/status.h"

namespace dyndex {
namespace persist {

inline constexpr char kWalMagic[8] = {'d', 'y', 'x', 'w', 'a', 'l', '0', '1'};
inline constexpr uint32_t kWalFrameMagic = 0xD1F7A9C3u;
/// Frames larger than this are treated as corruption (a flipped bit in a
/// length field must not allocate gigabytes or swallow the rest of the log).
inline constexpr uint32_t kWalMaxPayload = 1u << 30;
inline constexpr uint64_t kWalHeaderSize = 8;
inline constexpr uint64_t kWalFrameHeaderSize = 4 + 4 + 8 + 4;

class WalWriter {
 public:
  /// Creates/truncates the log and writes + syncs the file header.
  static Status Create(Env* env, const std::string& path,
                       std::unique_ptr<WalWriter>* out);
  /// Opens an existing log for appending. The caller must have established
  /// that the file is a valid prefix (see RewriteTruncated / ScanWal).
  static Status OpenForAppend(Env* env, const std::string& path,
                              std::unique_ptr<WalWriter>* out);

  /// Buffers one frame. Durable only after the next successful Sync().
  Status Append(uint64_t seq, std::string_view payload);
  Status Sync();

  /// Appends since the last successful Sync (the group-commit ledger).
  uint64_t unsynced_appends() const { return unsynced_appends_; }

 private:
  WalWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  std::unique_ptr<WritableFile> file_;
  uint64_t unsynced_appends_ = 0;
};

struct WalFrame {
  uint64_t seq = 0;
  std::string payload;
};

struct WalScanResult {
  std::vector<WalFrame> frames;  // the valid prefix, in file order
  uint64_t valid_bytes = 0;      // header + valid frames
  uint64_t dropped_bytes = 0;    // bytes past the first bad frame
};

/// Scans the longest valid frame prefix of `path`. NotFound when the file
/// does not exist; Corruption when a full header carries the wrong magic
/// (this is not a WAL — refuse, don't treat as empty); Ok otherwise, with
/// dropped_bytes > 0 when a bad/torn frame cut the scan short.
Status ScanWal(Env* env, const std::string& path, WalScanResult* out);

/// Rewrites `path` in place (via temp + rename) to exactly the valid prefix
/// `scan` reported — recovery's "truncate at the first bad frame" step, made
/// atomic so a crash mid-truncation leaves either the old or the new file.
Status RewriteTruncated(Env* env, const std::string& path,
                        const WalScanResult& scan);

/// Serializes one frame (exposed for tests that need byte-exact fixtures).
std::string EncodeWalFrame(uint64_t seq, std::string_view payload);

}  // namespace persist
}  // namespace dyndex

#endif  // DYNDEX_PERSIST_WAL_H_
