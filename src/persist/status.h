// Error propagation for the persistence layer. Durability code must report
// bad bytes, not abort on them: a checksum mismatch in a snapshot is an
// expected runtime condition (a half-written file after a crash, a flipped
// bit on disk), and recovery's contract is "restore a consistent prefix or
// refuse loudly" — so every persist-layer operation returns a Status the
// serving layer can surface, and DYNDEX_CHECK stays reserved for programmer
// errors.
#ifndef DYNDEX_PERSIST_STATUS_H_
#define DYNDEX_PERSIST_STATUS_H_

#include <string>
#include <utility>

namespace dyndex {
namespace persist {

enum class StatusCode {
  kOk = 0,
  kNotFound,         // file/dir missing where one may legitimately be absent
  kCorruption,       // checksum/format mismatch: refuse loudly, never guess
  kIoError,          // the environment failed (write/sync/rename/...)
  kInvalidArgument,  // caller misuse detectable at runtime (wrong kind, ...)
};

class Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "unknown";
    switch (code_) {
      case StatusCode::kOk: name = "OK"; break;
      case StatusCode::kNotFound: name = "NotFound"; break;
      case StatusCode::kCorruption: name = "Corruption"; break;
      case StatusCode::kIoError: name = "IoError"; break;
      case StatusCode::kInvalidArgument: name = "InvalidArgument"; break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Early-return helper for call sites threading a Status chain.
#define DYNDEX_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::dyndex::persist::Status _st = (expr);            \
    if (!_st.ok()) return _st;                         \
  } while (false)

}  // namespace persist
}  // namespace dyndex

#endif  // DYNDEX_PERSIST_STATUS_H_
