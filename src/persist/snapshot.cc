#include "persist/snapshot.h"

#include <cstring>
#include <memory>
#include <utility>

#include "persist/crc32c.h"
#include "persist/format.h"

namespace dyndex {
namespace persist {

namespace {
constexpr uint64_t kTrailerSize = 8 + 4 + 8;  // footer_off + crc + magic
}  // namespace

Status WriteSnapshotFile(Env* env, const std::string& path,
                         const std::vector<SnapshotSection>& sections) {
  std::string footer;
  PutU32(&footer, static_cast<uint32_t>(sections.size()));
  std::string body;
  for (const SnapshotSection& sec : sections) {
    PutLengthPrefixed(&footer, sec.name);
    PutU64(&footer, body.size());
    PutU64(&footer, sec.data.size());
    PutU32(&footer, MaskCrc(Crc32c(sec.data.data(), sec.data.size())));
    body += sec.data;
  }
  std::string trailer;
  PutU64(&trailer, body.size());  // footer offset
  PutU32(&trailer, MaskCrc(Crc32c(footer.data(), footer.size())));
  trailer.append(kSnapshotMagic, 8);

  const std::string tmp = path + ".tmp";
  std::unique_ptr<WritableFile> file;
  DYNDEX_RETURN_IF_ERROR(env->NewWritableFile(tmp, &file));
  DYNDEX_RETURN_IF_ERROR(file->Append(body));
  DYNDEX_RETURN_IF_ERROR(file->Append(footer));
  DYNDEX_RETURN_IF_ERROR(file->Append(trailer));
  DYNDEX_RETURN_IF_ERROR(file->Sync());
  DYNDEX_RETURN_IF_ERROR(file->Close());
  return env->RenameFile(tmp, path);
}

Status ReadSnapshotFile(Env* env, const std::string& path,
                        std::vector<SnapshotSection>* out) {
  out->clear();
  uint64_t size = 0;
  Status st = env->GetFileSize(path, &size);
  if (!st.ok()) return st;
  std::unique_ptr<RandomAccessFile> file;
  DYNDEX_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &file));
  std::string data;
  DYNDEX_RETURN_IF_ERROR(file->Read(0, size, &data));
  if (data.size() != size) {
    // Short read: unlike the WAL (where a shorter file is a shorter valid
    // prefix), a snapshot is all-or-nothing.
    return Status::Corruption("snapshot short read: " + path);
  }
  if (data.size() < kTrailerSize) {
    return Status::Corruption("snapshot too small: " + path);
  }
  const char* trailer = data.data() + data.size() - kTrailerSize;
  if (std::memcmp(trailer + 12, kSnapshotMagic, 8) != 0) {
    return Status::Corruption("snapshot magic mismatch: " + path);
  }
  const uint64_t footer_off = DecodeU64(trailer);
  const uint32_t footer_crc = UnmaskCrc(DecodeU32(trailer + 8));
  if (footer_off > data.size() - kTrailerSize) {
    return Status::Corruption("snapshot footer offset out of range: " + path);
  }
  const std::string_view footer(data.data() + footer_off,
                                data.size() - kTrailerSize - footer_off);
  if (Crc32c(footer.data(), footer.size()) != footer_crc) {
    return Status::Corruption("snapshot footer checksum mismatch: " + path);
  }
  Decoder dec(footer);
  uint32_t n = 0;
  if (!dec.GetU32(&n)) {
    return Status::Corruption("snapshot footer truncated: " + path);
  }
  for (uint32_t i = 0; i < n; ++i) {
    std::string_view name;
    uint64_t off = 0, len = 0;
    uint32_t crc = 0;
    if (!dec.GetLengthPrefixed(&name) || !dec.GetU64(&off) ||
        !dec.GetU64(&len) || !dec.GetU32(&crc)) {
      return Status::Corruption("snapshot footer truncated: " + path);
    }
    if (off > footer_off || footer_off - off < len) {
      return Status::Corruption("snapshot section out of range: " + path);
    }
    const char* sec = data.data() + off;
    if (Crc32c(sec, len) != UnmaskCrc(crc)) {
      return Status::Corruption("snapshot section '" + std::string(name) +
                                "' checksum mismatch: " + path);
    }
    out->push_back(SnapshotSection{std::string(name), std::string(sec, len)});
  }
  if (!dec.AtEnd()) {
    return Status::Corruption("snapshot footer trailing bytes: " + path);
  }
  return Status::Ok();
}

const SnapshotSection* FindSection(const std::vector<SnapshotSection>& secs,
                                   const std::string& name) {
  for (const SnapshotSection& s : secs) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace persist
}  // namespace dyndex
