// Checksummed multi-section snapshot container, written atomically.
//
// File layout:
//   body:    section payloads, back to back
//   footer:  [u32 n] then per section
//            [len-prefixed name] [u64 offset] [u64 len] [u32 masked crc32c]
//   trailer: [u64 footer_offset] [u32 masked crc32c(footer)]
//            [8-byte file magic "dyxsnap1"]
//
// The footer doubles as the per-file manifest: readers locate sections by
// name and verify each against its CRC; the trailer CRC guards the footer
// itself. Any mismatch — truncated body, flipped bit, short read, foreign
// file — is kCorruption: a snapshot is either verified whole or refused,
// there is no partial snapshot recovery (the WAL provides the incremental
// story; the sharded facades bind shard snapshots together with one more
// instance of this same container as their cross-shard manifest).
//
// Atomicity: WriteSnapshotFile writes `<path>.tmp`, syncs, then renames
// onto `path` — a crash leaves either the previous complete snapshot or the
// new one, never a torn mix.
#ifndef DYNDEX_PERSIST_SNAPSHOT_H_
#define DYNDEX_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "persist/env.h"
#include "persist/status.h"

namespace dyndex {
namespace persist {

inline constexpr char kSnapshotMagic[8] = {'d', 'y', 'x', 's',
                                           'n', 'a', 'p', '1'};

struct SnapshotSection {
  std::string name;
  std::string data;
};

/// Writes `sections` to `path` atomically (temp file + sync + rename).
Status WriteSnapshotFile(Env* env, const std::string& path,
                         const std::vector<SnapshotSection>& sections);

/// Reads and fully verifies `path`. NotFound when absent; kCorruption on any
/// checksum/format mismatch; on Ok, `out` holds every section.
Status ReadSnapshotFile(Env* env, const std::string& path,
                        std::vector<SnapshotSection>* out);

/// Section lookup; nullptr when absent.
const SnapshotSection* FindSection(const std::vector<SnapshotSection>& secs,
                                   const std::string& name);

}  // namespace persist
}  // namespace dyndex

#endif  // DYNDEX_PERSIST_SNAPSHOT_H_
