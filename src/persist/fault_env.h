// Fault-injecting Env wrapper — the `FaultyFile` shim of the fault matrix.
// Wraps any base Env (MemEnv in the tests) and fails operations at scripted
// call counts, so every failure mode recovery claims to survive can be
// produced deterministically:
//
//   * failed fsync      -- FailSyncsAfter(n): the (n+1)-th and all later
//                          Sync() calls return IoError without syncing.
//   * failed append     -- FailAppendsAfter(n): later Append() calls fail
//                          without writing (a full disk / pulled device).
//   * short read        -- ShortReadAt(k, max): the k-th Read() (counted
//                          across all files) returns at most `max` bytes.
//
// Torn tails, truncation and bit flips are *state* faults, not call faults —
// they live on MemEnv (SimulateCrash / TruncateFile / CorruptByte).
#ifndef DYNDEX_PERSIST_FAULT_ENV_H_
#define DYNDEX_PERSIST_FAULT_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "persist/env.h"

namespace dyndex {
namespace persist {

class FaultEnv final : public Env {
 public:
  explicit FaultEnv(Env* base) : base_(base) {}

  // --- fault script ---------------------------------------------------------

  /// After `n` more successful Sync() calls, every Sync() fails.
  void FailSyncsAfter(uint64_t n) { syncs_until_fail_.store(n + 1); }
  /// After `n` more successful Append() calls, every Append() fails.
  void FailAppendsAfter(uint64_t n) { appends_until_fail_.store(n + 1); }
  /// The `k`-th Read() call from now (1-based) returns at most `max_bytes`.
  void ShortReadAt(uint64_t k, uint64_t max_bytes) {
    short_read_bytes_.store(max_bytes);
    reads_until_short_.store(k);
  }
  void ClearFaults() {
    syncs_until_fail_.store(0);
    appends_until_fail_.store(0);
    reads_until_short_.store(0);
  }

  uint64_t sync_calls() const { return sync_calls_.load(); }

  // --- Env ------------------------------------------------------------------

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override;
  Status NewAppendableFile(const std::string& path,
                           std::unique_ptr<WritableFile>* out) override;
  Status NewRandomAccessFile(
      const std::string& path, std::unique_ptr<RandomAccessFile>* out) override;
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Status GetFileSize(const std::string& path, uint64_t* size) override {
    return base_->GetFileSize(path, size);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  Status DeleteFile(const std::string& path) override {
    return base_->DeleteFile(path);
  }
  Status CreateDir(const std::string& path) override {
    return base_->CreateDir(path);
  }

 private:
  friend class FaultyWritableFile;
  friend class FaultyRandomAccessFile;

  /// Counts `counter` down; true when the scripted failure point is reached
  /// (counter armed and now exhausted).
  static bool CountdownHit(std::atomic<uint64_t>* counter);

  Env* base_;
  std::atomic<uint64_t> syncs_until_fail_{0};    // 0 = fault unarmed
  std::atomic<uint64_t> appends_until_fail_{0};  // 0 = fault unarmed
  std::atomic<uint64_t> reads_until_short_{0};   // 0 = fault unarmed
  std::atomic<uint64_t> short_read_bytes_{0};
  std::atomic<uint64_t> sync_calls_{0};
};

}  // namespace persist
}  // namespace dyndex

#endif  // DYNDEX_PERSIST_FAULT_ENV_H_
