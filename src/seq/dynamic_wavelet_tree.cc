#include "seq/dynamic_wavelet_tree.h"

#include "util/bits.h"
#include "util/check.h"

namespace dyndex {

DynamicWaveletTree::DynamicWaveletTree(uint32_t capacity) {
  DYNDEX_CHECK(capacity >= 1);
  depth_ = CeilLog2(capacity);
  if (depth_ == 0) depth_ = 1;  // keep at least one level so code paths unify
  capacity_ = 1u << depth_;
  root_ = std::make_unique<Node>();
}

DynamicWaveletTree::DynamicWaveletTree(uint32_t capacity,
                                       std::vector<uint32_t> data)
    : DynamicWaveletTree(capacity) {
  for (uint32_t c : data) DYNDEX_CHECK(c < capacity_);
  size_ = data.size();
  if (!data.empty()) BuildRec(root_.get(), 0, data);
}

void DynamicWaveletTree::PackLevelBits(uint32_t level,
                                       std::vector<uint32_t>& syms,
                                       std::vector<uint64_t>* words,
                                       std::vector<uint32_t>* left,
                                       std::vector<uint32_t>* right) const {
  uint64_t n = syms.size();
  uint32_t shift = depth_ - 1 - level;
  words->assign(CeilDiv(n, 64), 0);
  uint64_t ones = 0;
  for (uint64_t k = 0; k < n; ++k) {
    uint64_t bit = (syms[k] >> shift) & 1;
    (*words)[k >> 6] |= bit << (k & 63);
    ones += bit;
  }
  if (level + 1 == depth_) return;
  // Stable-partition by the current bit; `syms` is consumed.
  left->reserve(n - ones);
  right->reserve(ones);
  for (uint32_t c : syms) {
    if ((c >> shift) & 1) {
      right->push_back(c);
    } else {
      left->push_back(c);
    }
  }
  syms.clear();
  syms.shrink_to_fit();
}

void DynamicWaveletTree::BuildRec(Node* node, uint32_t level,
                                  std::vector<uint32_t>& syms) {
  uint64_t n = syms.size();
  std::vector<uint64_t> words;
  std::vector<uint32_t> left, right;
  PackLevelBits(level, syms, &words, &left, &right);
  node->bits.Build(words.data(), n);
  if (level + 1 == depth_) return;
  if (!left.empty()) {
    if (node->left == nullptr) node->left = std::make_unique<Node>();
    BuildRec(node->left.get(), level + 1, left);
  }
  if (!right.empty()) {
    if (node->right == nullptr) node->right = std::make_unique<Node>();
    BuildRec(node->right.get(), level + 1, right);
  }
}

void DynamicWaveletTree::InsertBatch(uint64_t i, const uint32_t* symbols,
                                     uint64_t count) {
  DYNDEX_CHECK(i <= size_);
  if (count == 0) return;
  std::vector<uint32_t> syms(symbols, symbols + count);
  for (uint32_t c : syms) DYNDEX_CHECK(c < capacity_);
  InsertBatchRec(root_.get(), 0, i, syms);
  size_ += count;
}

void DynamicWaveletTree::InsertBatchRec(Node* node, uint32_t level, uint64_t i,
                                        std::vector<uint32_t>& syms) {
  uint64_t n = syms.size();
  std::vector<uint64_t> words;
  std::vector<uint32_t> left, right;
  PackLevelBits(level, syms, &words, &left, &right);
  // Child positions of the batch head, taken before the range lands (the
  // batch is contiguous, so both children receive contiguous sub-batches).
  uint64_t i0 = node->bits.Rank0(i);
  uint64_t i1 = i - i0;
  node->bits.InsertRange(i, words.data(), n);
  if (level + 1 == depth_) return;
  if (!left.empty()) {
    if (node->left == nullptr) node->left = std::make_unique<Node>();
    InsertBatchRec(node->left.get(), level + 1, i0, left);
  }
  if (!right.empty()) {
    if (node->right == nullptr) node->right = std::make_unique<Node>();
    InsertBatchRec(node->right.get(), level + 1, i1, right);
  }
}

void DynamicWaveletTree::Insert(uint64_t i, uint32_t c) {
  DYNDEX_CHECK(c < capacity_);
  DYNDEX_CHECK(i <= size_);
  Node* node = root_.get();
  for (uint32_t level = 0; level < depth_; ++level) {
    bool bit = (c >> (depth_ - 1 - level)) & 1;
    node->bits.Insert(i, bit);
    if (level + 1 == depth_) break;
    if (!bit) {
      i = node->bits.Rank0(i);
      if (node->left == nullptr) node->left = std::make_unique<Node>();
      node = node->left.get();
    } else {
      i = node->bits.Rank1(i);
      if (node->right == nullptr) node->right = std::make_unique<Node>();
      node = node->right.get();
    }
  }
  ++size_;
}

uint32_t DynamicWaveletTree::Erase(uint64_t i) {
  DYNDEX_CHECK(i < size_);
  Node* node = root_.get();
  uint32_t c = 0;
  for (uint32_t level = 0; level < depth_; ++level) {
    bool bit = node->bits.Get(i);
    c = (c << 1) | (bit ? 1 : 0);
    uint64_t child_i = bit ? node->bits.Rank1(i) : node->bits.Rank0(i);
    node->bits.Erase(i);
    if (level + 1 == depth_) break;
    node = bit ? node->right.get() : node->left.get();
    DYNDEX_DCHECK(node != nullptr);
    i = child_i;
  }
  --size_;
  return c;
}

uint32_t DynamicWaveletTree::Access(uint64_t i) const {
  DYNDEX_CHECK(i < size_);
  const Node* node = root_.get();
  uint32_t c = 0;
  for (uint32_t level = 0; level < depth_; ++level) {
    // Torn descent (optimistic serve-layer readers): a garbage bit can step
    // into an absent child; fault into the retry path, not through null.
    DYNDEX_CHECK(node != nullptr);
    bool bit = node->bits.Get(i);
    c = (c << 1) | (bit ? 1 : 0);
    if (level + 1 == depth_) break;
    i = bit ? node->bits.Rank1(i) : node->bits.Rank0(i);
    node = bit ? node->right.get() : node->left.get();
  }
  return c;
}

uint64_t DynamicWaveletTree::Rank(uint32_t c, uint64_t i) const {
  DYNDEX_CHECK(c < capacity_);
  DYNDEX_CHECK(i <= size_);
  const Node* node = root_.get();
  for (uint32_t level = 0; level < depth_; ++level) {
    DYNDEX_CHECK(node != nullptr);  // torn state: root can lag depth_
    bool bit = (c >> (depth_ - 1 - level)) & 1;
    i = bit ? node->bits.Rank1(i) : node->bits.Rank0(i);
    if (level + 1 == depth_) return i;
    node = bit ? node->right.get() : node->left.get();
    if (node == nullptr) return 0;
  }
  return i;
}

std::pair<uint64_t, uint64_t> DynamicWaveletTree::RankPair(uint32_t c,
                                                           uint64_t i,
                                                           uint64_t j) const {
  DYNDEX_CHECK(c < capacity_);
  DYNDEX_CHECK(i <= j && j <= size_);
  const Node* node = root_.get();
  for (uint32_t level = 0; level < depth_; ++level) {
    DYNDEX_CHECK(node != nullptr);  // torn state: root can lag depth_
    bool bit = (c >> (depth_ - 1 - level)) & 1;
    auto [ri, rj] = node->bits.RankPair(i, j);
    i = bit ? ri : i - ri;
    j = bit ? rj : j - rj;
    if (level + 1 == depth_) return {i, j};
    node = bit ? node->right.get() : node->left.get();
    if (node == nullptr) return {0, 0};
  }
  return {i, j};
}

std::pair<uint32_t, uint64_t> DynamicWaveletTree::InverseSelect(
    uint64_t i) const {
  DYNDEX_CHECK(i < size_);
  const Node* node = root_.get();
  uint32_t c = 0;
  for (uint32_t level = 0; level < depth_; ++level) {
    DYNDEX_CHECK(node != nullptr);  // torn descent; see Access
    bool bit = node->bits.Get(i);
    c = (c << 1) | (bit ? 1 : 0);
    i = bit ? node->bits.Rank1(i) : node->bits.Rank0(i);
    if (level + 1 == depth_) break;
    node = bit ? node->right.get() : node->left.get();
  }
  return {c, i};
}

uint64_t DynamicWaveletTree::SelectRec(const Node* node, uint32_t level,
                                       uint32_t c, uint64_t k) const {
  DYNDEX_CHECK(node != nullptr);  // torn state: root/child can be absent
  bool bit = (c >> (depth_ - 1 - level)) & 1;
  if (level + 1 == depth_) {
    return bit ? node->bits.Select1(k) : node->bits.Select0(k);
  }
  const Node* child = bit ? node->right.get() : node->left.get();
  DYNDEX_CHECK(child != nullptr);
  uint64_t p = SelectRec(child, level + 1, c, k);
  return bit ? node->bits.Select1(p) : node->bits.Select0(p);
}

uint64_t DynamicWaveletTree::Select(uint32_t c, uint64_t k) const {
  DYNDEX_CHECK(c < capacity_);
  return SelectRec(root_.get(), 0, c, k);
}

uint64_t DynamicWaveletTree::SpaceBytes() const {
  uint64_t total = 0;
  // Recursion via explicit stack.
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n == nullptr) continue;
    // bits.SpaceBytes() reports the arena-resident footprint including the
    // engine object itself; count the Node's two child pointers on top
    // (sizeof(Node) would double-count the embedded DynamicBitVector).
    total += sizeof(Node) - sizeof(DynamicBitVector) + n->bits.SpaceBytes();
    stack.push_back(n->left.get());
    stack.push_back(n->right.get());
  }
  return total;
}

}  // namespace dyndex
