// Static wavelet tree: access/rank/select over an integer sequence in
// O(log sigma) per operation. Pointerless level-wise layout: at every level
// each node's elements are stably partitioned in place by the current bit, so
// node boundaries can be recomputed during descent from rank queries alone.
//
// This is the static rank/select workhorse: it serves as the BWT occurrence
// structure of the FM-index and as the label string S of the static binary
// relation (Barbay et al. [4,5]).
#ifndef DYNDEX_SEQ_WAVELET_TREE_H_
#define DYNDEX_SEQ_WAVELET_TREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "bits/rank_select.h"

namespace dyndex {

/// Immutable sequence with rank/select/access, alphabet [0, sigma).
class WaveletTree {
 public:
  WaveletTree() = default;

  /// Builds over `data`; all values must be < sigma. O(n log sigma).
  WaveletTree(const std::vector<uint32_t>& data, uint32_t sigma);

  uint64_t size() const { return size_; }
  uint32_t sigma() const { return sigma_; }

  /// Value at position i. O(log sigma).
  uint32_t Access(uint64_t i) const;

  /// Number of occurrences of c in [0, i). O(log sigma).
  uint64_t Rank(uint32_t c, uint64_t i) const;

  /// Position of the k-th (0-based) occurrence of c. Requires
  /// k < Rank(c, size()). O(log sigma).
  uint64_t Select(uint32_t c, uint64_t k) const;

  /// Returns {Access(i), Rank(Access(i), i)} in one descent — the LF-step
  /// primitive of the FM-index.
  std::pair<uint32_t, uint64_t> InverseSelect(uint64_t i) const;

  /// Total occurrences of c.
  uint64_t Count(uint32_t c) const { return Rank(c, size_); }

  uint64_t SpaceBytes() const;

 private:
  std::vector<RankSelect> levels_;
  uint64_t size_ = 0;
  uint32_t sigma_ = 0;
  uint32_t depth_ = 0;

  uint64_t SelectRec(uint32_t level, uint64_t node_s, uint64_t node_e,
                     uint32_t c, uint64_t k) const;
};

}  // namespace dyndex

#endif  // DYNDEX_SEQ_WAVELET_TREE_H_
