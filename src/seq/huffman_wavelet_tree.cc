#include "seq/huffman_wavelet_tree.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace dyndex {

HuffmanWaveletTree::HuffmanWaveletTree(const std::vector<uint32_t>& data,
                                       uint32_t sigma) {
  DYNDEX_CHECK(sigma >= 1);
  size_ = data.size();
  sigma_ = sigma;
  counts_.assign(sigma, 0);
  leaf_of_.assign(sigma, -1);
  if (size_ == 0) return;
  for (uint32_t c : data) {
    DYNDEX_CHECK(c < sigma);
    ++counts_[c];
  }

  // Build the Huffman tree over present symbols.
  struct HeapItem {
    uint64_t weight;
    int32_t node;
    bool operator>(const HeapItem& o) const {
      // Deterministic tie-break on node id.
      return weight != o.weight ? weight > o.weight : node > o.node;
    }
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>>
      heap;
  for (uint32_t c = 0; c < sigma; ++c) {
    if (counts_[c] == 0) continue;
    Node leaf;
    leaf.symbol = static_cast<int32_t>(c);
    nodes_.push_back(std::move(leaf));
    int32_t id = static_cast<int32_t>(nodes_.size()) - 1;
    leaf_of_[c] = id;
    heap.push({counts_[c], id});
  }
  if (heap.size() == 1) {
    single_symbol_ = true;
    return;  // rank/select answered arithmetically
  }
  while (heap.size() > 1) {
    HeapItem a = heap.top();
    heap.pop();
    HeapItem b = heap.top();
    heap.pop();
    Node internal;
    internal.left = a.node;
    internal.right = b.node;
    nodes_.push_back(std::move(internal));
    int32_t id = static_cast<int32_t>(nodes_.size()) - 1;
    nodes_[a.node].parent = id;
    nodes_[a.node].is_right_child = false;
    nodes_[b.node].parent = id;
    nodes_[b.node].is_right_child = true;
    heap.push({a.weight + b.weight, id});
  }
  int32_t root = heap.top().node;
  // Re-root at index 0 by swapping (queries start at nodes_[0]).
  if (root != 0) {
    std::swap(nodes_[0], nodes_[static_cast<uint32_t>(root)]);
    // Fix references to the two swapped nodes.
    auto fix = [&](int32_t& ref) {
      if (ref == 0) {
        ref = root;
      } else if (ref == root) {
        ref = 0;
      }
    };
    for (uint32_t i = 0; i < nodes_.size(); ++i) {
      fix(nodes_[i].left);
      fix(nodes_[i].right);
      fix(nodes_[i].parent);
    }
    for (uint32_t c = 0; c < sigma; ++c) {
      if (leaf_of_[c] == 0) {
        leaf_of_[c] = root;
      } else if (leaf_of_[c] == root) {
        leaf_of_[c] = 0;
      }
    }
  }

  // Fill the per-node bitmaps level-wise: route every element down its code
  // path, appending one bit per internal node visited.
  std::vector<BitVector> raw(nodes_.size());
  // Instead of materializing per-node sequences (O(nH0) space anyway), do a
  // two-pass: compute code paths per symbol, then append bits in data order
  // using per-node write cursors over pre-sized bit vectors.
  std::vector<uint64_t> node_size(nodes_.size(), 0);
  std::vector<std::vector<std::pair<int32_t, bool>>> code(sigma);
  for (uint32_t c = 0; c < sigma; ++c) {
    if (counts_[c] == 0) continue;
    int32_t v = leaf_of_[c];
    std::vector<std::pair<int32_t, bool>> path;
    while (nodes_[v].parent != -1) {
      path.push_back({nodes_[v].parent, nodes_[v].is_right_child});
      v = nodes_[v].parent;
    }
    std::reverse(path.begin(), path.end());
    for (auto [node, bit] : path) {
      (void)bit;
      node_size[node] += counts_[c];
    }
    code[c] = std::move(path);
  }
  for (uint32_t v = 0; v < nodes_.size(); ++v) {
    if (nodes_[v].symbol < 0) raw[v].Reset(node_size[v]);
  }
  // Word-buffered appenders: bits accumulate in a register-resident word per
  // node and land in the bitmap 64 at a time, instead of one read-modify-
  // write per bit.
  struct Cursor {
    uint64_t word = 0;
    uint32_t fill = 0;
    uint64_t pos = 0;  // bits flushed so far (multiple of 64)
  };
  std::vector<Cursor> cur(nodes_.size());
  for (uint32_t c : data) {
    for (auto [node, bit] : code[c]) {
      Cursor& cu = cur[node];
      cu.word |= static_cast<uint64_t>(bit) << cu.fill;
      if (++cu.fill == 64) {
        raw[node].mutable_word(cu.pos >> 6) = cu.word;
        cu.pos += 64;
        cu.word = 0;
        cu.fill = 0;
      }
    }
  }
  for (uint32_t v = 0; v < nodes_.size(); ++v) {
    if (nodes_[v].symbol < 0) {
      if (cur[v].fill != 0) raw[v].mutable_word(cur[v].pos >> 6) = cur[v].word;
      nodes_[v].bits.Build(std::move(raw[v]));
    }
  }
}

uint32_t HuffmanWaveletTree::Access(uint64_t i) const {
  DYNDEX_DCHECK(i < size_);
  if (single_symbol_) return static_cast<uint32_t>(nodes_[0].symbol);
  int32_t v = 0;
  while (nodes_[v].symbol < 0) {
    bool bit = nodes_[v].bits.Get(i);
    i = bit ? nodes_[v].bits.Rank1(i) : nodes_[v].bits.Rank0(i);
    v = bit ? nodes_[v].right : nodes_[v].left;
  }
  return static_cast<uint32_t>(nodes_[v].symbol);
}

uint64_t HuffmanWaveletTree::Rank(uint32_t c, uint64_t i) const {
  DYNDEX_DCHECK(i <= size_);
  if (c >= sigma_ || leaf_of_.empty() || leaf_of_[c] < 0) return 0;
  if (single_symbol_) return i;
  // Walk down the code path, mapping the prefix length.
  int32_t v = 0;
  for (auto [node, bit] : [&] {
         // Recompute the path root->leaf from parent pointers.
         std::vector<std::pair<int32_t, bool>> path;
         int32_t u = leaf_of_[c];
         while (nodes_[u].parent != -1) {
           path.push_back({nodes_[u].parent, nodes_[u].is_right_child});
           u = nodes_[u].parent;
         }
         std::reverse(path.begin(), path.end());
         return path;
       }()) {
    (void)node;
    DYNDEX_DCHECK(node == v);
    i = bit ? nodes_[v].bits.Rank1(i) : nodes_[v].bits.Rank0(i);
    v = bit ? nodes_[v].right : nodes_[v].left;
    if (i == 0) return 0;
  }
  return i;
}

uint64_t HuffmanWaveletTree::Select(uint32_t c, uint64_t k) const {
  DYNDEX_DCHECK(c < sigma_ && leaf_of_[c] >= 0);
  if (single_symbol_) return k;
  // Ascend from the leaf, inverting each routing step with select.
  int32_t v = leaf_of_[c];
  uint64_t pos = k;
  while (nodes_[v].parent != -1) {
    int32_t p = nodes_[v].parent;
    pos = nodes_[v].is_right_child ? nodes_[p].bits.Select1(pos)
                                   : nodes_[p].bits.Select0(pos);
    v = p;
  }
  return pos;
}

double HuffmanWaveletTree::BitsPerSymbol() const {
  if (size_ == 0) return 0.0;
  uint64_t total_bits = 0;
  for (const Node& n : nodes_) {
    if (n.symbol < 0) total_bits += n.bits.size();
  }
  return static_cast<double>(total_bits) / static_cast<double>(size_);
}

uint64_t HuffmanWaveletTree::SpaceBytes() const {
  uint64_t total = nodes_.capacity() * sizeof(Node) +
                   leaf_of_.capacity() * sizeof(int32_t) +
                   counts_.capacity() * sizeof(uint64_t);
  for (const Node& n : nodes_) {
    if (n.symbol < 0) total += n.bits.SpaceBytes();
  }
  return total;
}

}  // namespace dyndex
