#include "seq/wavelet_tree.h"

#include "util/check.h"

namespace dyndex {

WaveletTree::WaveletTree(const std::vector<uint32_t>& data, uint32_t sigma) {
  DYNDEX_CHECK(sigma >= 1);
  size_ = data.size();
  sigma_ = sigma;
  depth_ = CeilLog2(sigma);
  if (depth_ == 0) return;  // unary alphabet: answered arithmetically
  levels_.resize(depth_);
  std::vector<uint32_t> cur = data;
  std::vector<uint32_t> next(cur.size());
  std::vector<uint64_t> bounds{0, size_};
  for (uint32_t level = 0; level < depth_; ++level) {
    uint32_t shift = depth_ - 1 - level;
    BitVector bv(size_);
    std::vector<uint64_t> next_bounds;
    next_bounds.reserve(bounds.size() * 2);
    for (size_t b = 0; b + 1 < bounds.size(); ++b) {
      uint64_t s = bounds[b], e = bounds[b + 1];
      // Stable partition of [s, e) by the current bit.
      uint64_t out0 = s;
      for (uint64_t i = s; i < e; ++i) {
        if (((cur[i] >> shift) & 1) == 0) ++out0;
      }
      uint64_t split = out0;
      uint64_t out1 = out0;
      out0 = s;
      for (uint64_t i = s; i < e; ++i) {
        uint32_t bit = (cur[i] >> shift) & 1;
        bv.Set(i, bit);
        if (bit == 0) {
          next[out0++] = cur[i];
        } else {
          next[out1++] = cur[i];
        }
      }
      next_bounds.push_back(s);
      next_bounds.push_back(split);
    }
    next_bounds.push_back(size_);
    levels_[level].Build(std::move(bv));
    cur.swap(next);
    bounds.swap(next_bounds);
  }
}

uint32_t WaveletTree::Access(uint64_t i) const {
  DYNDEX_DCHECK(i < size_);
  if (depth_ == 0) return 0;
  uint64_t s = 0, e = size_;
  uint32_t c = 0;
  for (uint32_t level = 0; level < depth_; ++level) {
    const RankSelect& rs = levels_[level];
    uint64_t z_before_s = rs.Rank0(s);
    uint64_t z_in = rs.Rank0(e) - z_before_s;
    bool bit = rs.Get(i);
    c = (c << 1) | (bit ? 1 : 0);
    if (!bit) {
      i = s + (rs.Rank0(i) - z_before_s);
      e = s + z_in;
    } else {
      i = s + z_in + (rs.Rank1(i) - (s - z_before_s));
      s = s + z_in;
    }
  }
  return c;
}

uint64_t WaveletTree::Rank(uint32_t c, uint64_t i) const {
  DYNDEX_DCHECK(i <= size_);
  DYNDEX_DCHECK(c < sigma_);
  if (depth_ == 0) return i;
  uint64_t s = 0, e = size_;
  for (uint32_t level = 0; level < depth_; ++level) {
    const RankSelect& rs = levels_[level];
    uint64_t z_before_s = rs.Rank0(s);
    uint64_t z_in = rs.Rank0(e) - z_before_s;
    uint32_t bit = (c >> (depth_ - 1 - level)) & 1;
    if (bit == 0) {
      i = s + (rs.Rank0(i) - z_before_s);
      e = s + z_in;
    } else {
      i = s + z_in + (rs.Rank1(i) - (s - z_before_s));
      s = s + z_in;
    }
    if (s == e) return 0;
  }
  return i - s;
}

std::pair<uint32_t, uint64_t> WaveletTree::InverseSelect(uint64_t i) const {
  DYNDEX_DCHECK(i < size_);
  if (depth_ == 0) return {0, i};
  uint64_t s = 0, e = size_;
  uint32_t c = 0;
  for (uint32_t level = 0; level < depth_; ++level) {
    const RankSelect& rs = levels_[level];
    uint64_t z_before_s = rs.Rank0(s);
    uint64_t z_in = rs.Rank0(e) - z_before_s;
    bool bit = rs.Get(i);
    c = (c << 1) | (bit ? 1 : 0);
    if (!bit) {
      i = s + (rs.Rank0(i) - z_before_s);
      e = s + z_in;
    } else {
      i = s + z_in + (rs.Rank1(i) - (s - z_before_s));
      s = s + z_in;
    }
  }
  return {c, i - s};
}

uint64_t WaveletTree::SelectRec(uint32_t level, uint64_t node_s,
                                uint64_t node_e,
                                uint32_t c, uint64_t k) const {
  if (level == depth_) return node_s + k;
  const RankSelect& rs = levels_[level];
  uint64_t z_before_s = rs.Rank0(node_s);
  uint64_t z_in = rs.Rank0(node_e) - z_before_s;
  uint32_t bit = (c >> (depth_ - 1 - level)) & 1;
  if (bit == 0) {
    uint64_t p = SelectRec(level + 1, node_s, node_s + z_in, c, k);
    uint64_t rel = p - node_s;  // index among this node's zeros
    return rs.Select0(z_before_s + rel);
  }
  uint64_t ones_before_s = node_s - z_before_s;
  uint64_t p = SelectRec(level + 1, node_s + z_in, node_e, c, k);
  uint64_t rel = p - (node_s + z_in);
  return rs.Select1(ones_before_s + rel);
}

uint64_t WaveletTree::Select(uint32_t c, uint64_t k) const {
  DYNDEX_DCHECK(c < sigma_);
  if (depth_ == 0) return k;
  return SelectRec(0, 0, size_, c, k);
}

uint64_t WaveletTree::SpaceBytes() const {
  uint64_t total = 0;
  for (const auto& level : levels_) total += level.SpaceBytes();
  return total;
}

}  // namespace dyndex
