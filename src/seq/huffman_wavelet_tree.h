// Huffman-shaped wavelet tree: access/rank/select in O(H0 + 1) expected per
// operation, using n(H0 + 1)(1 + o(1)) bits for the shape bitmaps.
//
// This realizes the paper's zero-order-entropy space bounds concretely: the
// label string S of a binary relation (Theorem 2: nH + o(n log sigma_l) bits)
// stored balanced costs n ceil(log sigma) bits; Huffman-shaped it costs nH0.
// Skewed (Zipfian) label distributions — the common case for RDF predicates
// and graph degrees — compress several-fold.
#ifndef DYNDEX_SEQ_HUFFMAN_WAVELET_TREE_H_
#define DYNDEX_SEQ_HUFFMAN_WAVELET_TREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "bits/rank_select.h"

namespace dyndex {

/// Immutable sequence with rank/select/access over alphabet [0, sigma),
/// shaped by symbol frequency.
class HuffmanWaveletTree {
 public:
  HuffmanWaveletTree() = default;

  /// Builds over `data`; all values must be < sigma. O(n H0 + sigma log
  /// sigma).
  HuffmanWaveletTree(const std::vector<uint32_t>& data, uint32_t sigma);

  uint64_t size() const { return size_; }
  uint32_t sigma() const { return sigma_; }

  /// Value at position i. O(code length).
  uint32_t Access(uint64_t i) const;

  /// Occurrences of c in [0, i).
  uint64_t Rank(uint32_t c, uint64_t i) const;

  /// Position of the k-th (0-based) occurrence of c; requires k < Count(c).
  uint64_t Select(uint32_t c, uint64_t k) const;

  uint64_t Count(uint32_t c) const {
    if (c >= sigma_ || leaf_of_.empty() || leaf_of_[c] < 0) return 0;
    return counts_[c];
  }

  /// Average code length = measured bits per symbol (~H0 + 1).
  double BitsPerSymbol() const;

  uint64_t SpaceBytes() const;

 private:
  struct Node {
    RankSelect bits;      // internal nodes only
    int32_t left = -1;    // child node ids; -1 = none
    int32_t right = -1;
    int32_t symbol = -1;  // leaves: the symbol
    int32_t parent = -1;
    bool is_right_child = false;
  };

  std::vector<Node> nodes_;   // nodes_[0] is the root (when size_ > 0)
  std::vector<int32_t> leaf_of_;  // symbol -> leaf node id (-1 if absent)
  std::vector<uint64_t> counts_;  // symbol -> frequency
  uint64_t size_ = 0;
  uint32_t sigma_ = 0;
  bool single_symbol_ = false;  // degenerate: one distinct symbol
};

}  // namespace dyndex

#endif  // DYNDEX_SEQ_HUFFMAN_WAVELET_TREE_H_
