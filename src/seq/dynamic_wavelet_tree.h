// Dynamic wavelet tree over dynamic bit vectors: insert/erase/access/rank/
// select in O(log sigma * log n).
//
// This structure *is* the bottleneck the paper talks about: every symbol
// operation pays the Fredman-Saks dynamic-rank price at each of its
// log(sigma) levels. It is the substrate of the baseline dynamic FM-index
// (Chan-Hon-Lam-Sadakane [10,9], Makinen-Navarro [30,31], Navarro-Nekrich
// [35]) and of the baseline dynamic relation, against which the paper's
// framework is benchmarked.
#ifndef DYNDEX_SEQ_DYNAMIC_WAVELET_TREE_H_
#define DYNDEX_SEQ_DYNAMIC_WAVELET_TREE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "dynbits/dynamic_bit_vector.h"

namespace dyndex {

/// Dynamic integer sequence with rank/select, alphabet [0, capacity) where
/// capacity is fixed at construction (rounded up to a power of two).
class DynamicWaveletTree {
 public:
  DynamicWaveletTree() = default;

  /// `capacity` bounds the largest symbol value + 1 ever inserted.
  explicit DynamicWaveletTree(uint32_t capacity);

  /// Bulk constructor: loads `data` through per-node bulk bit loads
  /// (one stable partition per level, O(n log sigma) total) instead of n
  /// root-to-leaf insertions. Taken by value: pass an rvalue to avoid the
  /// copy (the sequence is consumed by the partition).
  DynamicWaveletTree(uint32_t capacity, std::vector<uint32_t> data);

  uint64_t size() const { return size_; }
  uint32_t capacity() const { return capacity_; }

  /// Inserts symbol c before position i (i == size() appends).
  void Insert(uint64_t i, uint32_t c);

  /// Inserts `count` symbols before position i in one descent per wavelet
  /// node: the batch's bits enter each level as a single range insert and the
  /// batch is partitioned as it descends, instead of count full descents.
  void InsertBatch(uint64_t i, const uint32_t* symbols, uint64_t count);

  /// Removes the symbol at position i and returns it.
  uint32_t Erase(uint64_t i);

  /// Value at position i.
  uint32_t Access(uint64_t i) const;

  /// Occurrences of c in [0, i).
  uint64_t Rank(uint32_t c, uint64_t i) const;

  /// {Rank(c, i), Rank(c, j)} in one shared descent — the backward-search
  /// primitive of the dynamic FM-index. Requires i <= j <= size().
  std::pair<uint64_t, uint64_t> RankPair(uint32_t c, uint64_t i,
                                         uint64_t j) const;

  /// Position of the k-th (0-based) occurrence of c; requires k < Count(c).
  uint64_t Select(uint32_t c, uint64_t k) const;

  /// {Access(i), Rank(Access(i), i)} in one descent.
  std::pair<uint32_t, uint64_t> InverseSelect(uint64_t i) const;

  uint64_t Count(uint32_t c) const { return Rank(c, size_); }

  uint64_t SpaceBytes() const;

 private:
  struct Node {
    DynamicBitVector bits;
    std::unique_ptr<Node> left, right;  // created lazily
  };

  std::unique_ptr<Node> root_;
  uint64_t size_ = 0;
  uint32_t capacity_ = 0;
  uint32_t depth_ = 0;

  uint64_t SelectRec(const Node* node, uint32_t level, uint32_t c,
                     uint64_t k) const;
  /// Packs `syms`' bits for `level` into `words`; unless this is the last
  /// level, also stable-partitions `syms` into `left`/`right` (consuming it).
  void PackLevelBits(uint32_t level, std::vector<uint32_t>& syms,
                     std::vector<uint64_t>* words, std::vector<uint32_t>* left,
                     std::vector<uint32_t>* right) const;
  void BuildRec(Node* node, uint32_t level, std::vector<uint32_t>& syms);
  void InsertBatchRec(Node* node, uint32_t level, uint64_t i,
                      std::vector<uint32_t>& syms);
};

}  // namespace dyndex

#endif  // DYNDEX_SEQ_DYNAMIC_WAVELET_TREE_H_
