#include "relation/deletion_only_relation.h"

#include "util/check.h"

namespace dyndex {

DeletionOnlyRelation::DeletionOnlyRelation(std::vector<Pair> pairs,
                                           uint32_t num_objects,
                                           uint32_t num_labels)
    : rel_(std::move(pairs), num_objects, num_labels) {
  live_.Reset(rel_.num_pairs(), /*with_counting=*/true);
  dead_per_label_.assign(num_labels, 0);
}

bool DeletionOnlyRelation::DeletePair(uint32_t o, uint32_t a) {
  uint64_t pos = rel_.FindPair(o, a);
  if (pos == StaticRelation::kNotFound || !live_.IsLive(pos)) return false;
  live_.Kill(pos);
  ++dead_per_label_[a];
  ++dead_;
  return true;
}

bool DeletionOnlyRelation::Related(uint32_t o, uint32_t a) const {
  uint64_t pos = rel_.FindPair(o, a);
  return pos != StaticRelation::kNotFound && live_.IsLive(pos);
}

void DeletionOnlyRelation::ExportLivePairs(std::vector<Pair>* out) const {
  live_.ForEachLive(0, rel_.num_pairs(), [&](uint64_t pos) {
    out->push_back({rel_.ObjectAt(pos), rel_.LabelAt(pos)});
  });
}

}  // namespace dyndex
