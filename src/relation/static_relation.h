// Static binary relation in the Barbay et al. [4,5] representation: the label
// string S (labels listed object by object, wavelet tree) plus the unary
// degree sequence N = 1^{n_1} 0 1^{n_2} 0 ... (rank/select bit vector).
//
// All queries reduce to rank/select/access on S and N:
//   labels related to an object  : O((k+1) log sigma_l)
//   objects related to a label   : O((k+1) log sigma_l)
//   object-label adjacency       : O(log sigma_l)
#ifndef DYNDEX_RELATION_STATIC_RELATION_H_
#define DYNDEX_RELATION_STATIC_RELATION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "bits/rank_select.h"
#include "seq/wavelet_tree.h"

namespace dyndex {

/// Packs two 32-bit ids into the canonical 64-bit set/map key used by every
/// pair-membership structure in the layer (C0 buffers, bulk dedupe).
inline uint64_t PairKey(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

/// An (object, label) pair with dense local ids.
struct Pair {
  uint32_t object = 0;
  uint32_t label = 0;
  friend bool operator==(const Pair& a, const Pair& b) {
    return a.object == b.object && a.label == b.label;
  }
  friend bool operator<(const Pair& a, const Pair& b) {
    return a.object != b.object ? a.object < b.object : a.label < b.label;
  }
};

/// Immutable relation over objects [0, num_objects) and labels
/// [0, num_labels).
class StaticRelation {
 public:
  StaticRelation() = default;

  /// Builds from (not necessarily sorted, but duplicate-free) pairs.
  StaticRelation(std::vector<Pair> pairs, uint32_t num_objects,
                 uint32_t num_labels);

  uint64_t num_pairs() const { return s_.size(); }
  uint32_t num_objects() const { return num_objects_; }
  uint32_t num_labels() const { return num_labels_; }

  /// Positions [begin, end) in S holding object o's labels.
  std::pair<uint64_t, uint64_t> ObjectRange(uint32_t o) const;

  /// Label stored at S[pos].
  uint32_t LabelAt(uint64_t pos) const { return s_.Access(pos); }

  /// Object owning S[pos].
  uint32_t ObjectAt(uint64_t pos) const {
    return static_cast<uint32_t>(n_.Select1(pos) - pos);
  }

  /// Position in S of the k-th occurrence of label a.
  uint64_t SelectLabel(uint32_t a, uint64_t k) const { return s_.Select(a, k); }

  /// Occurrences of label a in S[0, pos).
  uint64_t RankLabel(uint32_t a, uint64_t pos) const { return s_.Rank(a, pos); }

  /// Total pairs carrying label a.
  uint64_t LabelCount(uint32_t a) const { return s_.Count(a); }

  /// Position of pair (o, a) in S, or kNotFound.
  static constexpr uint64_t kNotFound = ~0ull;
  uint64_t FindPair(uint32_t o, uint32_t a) const;

  uint64_t SpaceBytes() const { return s_.SpaceBytes() + n_.SpaceBytes(); }

 private:
  WaveletTree s_;
  RankSelect n_;
  uint32_t num_objects_ = 0;
  uint32_t num_labels_ = 0;
};

}  // namespace dyndex

#endif  // DYNDEX_RELATION_STATIC_RELATION_H_
