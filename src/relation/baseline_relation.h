// Baseline dynamic relation over dynamic rank/select structures
// (Navarro-Nekrich [35]): S in a dynamic wavelet tree, N in a dynamic bit
// vector. Every reported datum and every update pays a dynamic rank/select
// chain — the Fredman-Saks-bounded approach Theorem 2 improves on.
//
// Bulk paths ride the dynamic-bits engine: Build() loads S through the
// wavelet-tree bulk constructor and N through one packed-word bulk load, and
// AddPairsBulk routes a cold start onto Build instead of per-pair dynamic
// insertion.
#ifndef DYNDEX_RELATION_BASELINE_RELATION_H_
#define DYNDEX_RELATION_BASELINE_RELATION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "dynbits/dynamic_bit_vector.h"
#include "relation/static_relation.h"
#include "seq/dynamic_wavelet_tree.h"

namespace dyndex {

/// Dynamic relation with fixed capacities: objects in [0, max_objects),
/// labels in [0, max_labels).
class BaselineRelation {
 public:
  BaselineRelation(uint32_t max_objects, uint32_t max_labels);

  /// Bulk constructor: Build(pairs) over an otherwise empty relation.
  BaselineRelation(uint32_t max_objects, uint32_t max_labels,
                   std::vector<Pair> pairs);

  /// Replaces the content with `pairs` (duplicate-free) in one bulk load:
  /// S via the wavelet-tree bulk constructor (one stable partition per
  /// level), N via one packed-word Build — no per-pair dynamic insertions.
  void Build(std::vector<Pair> pairs);

  /// Adds (o, a); returns false if present.
  bool AddPair(uint32_t o, uint32_t a);

  /// Adds a batch; returns how many were new. A cold relation takes the
  /// Build path (one bulk load); a warm one falls back to per-pair AddPair.
  uint64_t AddPairsBulk(const std::vector<std::pair<uint32_t, uint32_t>>& ps);

  /// Removes (o, a); returns false if absent.
  bool RemovePair(uint32_t o, uint32_t a);

  bool Related(uint32_t o, uint32_t a) const;

  template <typename Fn>
  void ForEachLabelOfObject(uint32_t o, Fn fn) const {
    auto [l, r] = SRange(o);
    for (uint64_t p = l; p < r; ++p) fn(s_.Access(p));
  }

  template <typename Fn>
  void ForEachObjectOfLabel(uint32_t a, Fn fn) const {
    uint64_t total = s_.Count(a);
    for (uint64_t k = 0; k < total; ++k) {
      uint64_t pos = s_.Select(a, k);
      fn(ObjectOfS(pos));
    }
  }

  uint64_t CountLabelsOf(uint32_t o) const {
    auto [l, r] = SRange(o);
    return r - l;
  }

  uint64_t CountObjectsOf(uint32_t a) const { return s_.Count(a); }

  uint64_t num_pairs() const { return s_.size(); }
  uint64_t SpaceBytes() const { return s_.SpaceBytes() + n_.SpaceBytes(); }

  /// Fixed id capacities: objects in [0, max_objects()), labels in
  /// [0, max_labels()). Ids outside are preconditions violations on this
  /// class; the serving facade screens them out.
  uint32_t max_objects() const { return max_objects_; }
  uint32_t max_labels() const { return max_labels_; }

 private:
  DynamicWaveletTree s_;
  DynamicBitVector n_;  // 1 per pair, 0 terminating each object's run
  uint32_t max_objects_;
  uint32_t max_labels_;

  /// S-positions [begin, end) of object o's labels: the ones of N between
  /// the (o-1)-th and o-th zeros.
  std::pair<uint64_t, uint64_t> SRange(uint32_t o) const {
    uint64_t begin = o == 0 ? 0 : n_.Select0(o - 1) - (o - 1);
    uint64_t end = n_.Select0(o) - o;
    return {begin, end};
  }

  uint32_t ObjectOfS(uint64_t spos) const {
    uint64_t npos = n_.Select1(spos);
    return static_cast<uint32_t>(npos - spos);
  }
};

}  // namespace dyndex

#endif  // DYNDEX_RELATION_BASELINE_RELATION_H_
