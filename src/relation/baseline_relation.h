// Baseline dynamic relation over dynamic rank/select structures
// (Navarro-Nekrich [35]): S in a dynamic wavelet tree, N in a dynamic bit
// vector. Every reported datum and every update pays a dynamic rank/select
// chain — the Fredman-Saks-bounded approach Theorem 2 improves on.
//
// Bulk paths ride the dynamic-bits engine: Build() loads S through the
// wavelet-tree bulk constructor and N through one packed-word bulk load, and
// AddPairsBulk routes a cold start onto Build instead of per-pair dynamic
// insertion.
//
// Capacities grow on demand: AddPair / AddPairsBulk double the object or
// label capacity (geometric, so growth amortizes to O(1) rebuilds per
// doubling) when an id lands beyond the current bound. Object growth is an
// append of fresh 0-runs to N; label growth rebuilds S over the live pairs
// because the wavelet alphabet is fixed at construction. Queries never grow:
// ids beyond the current capacities answer false/empty/0. The only
// unrepresentable id is UINT32_MAX (it would need capacity 2^32, one past
// what the wavelet alphabet addresses); updates on it report false.
#ifndef DYNDEX_RELATION_BASELINE_RELATION_H_
#define DYNDEX_RELATION_BASELINE_RELATION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "dynbits/dynamic_bit_vector.h"
#include "relation/static_relation.h"
#include "seq/dynamic_wavelet_tree.h"

namespace dyndex {

/// Dynamic relation over uint32 object and label ids; capacities start at
/// the constructor arguments and double on demand.
class BaselineRelation {
 public:
  BaselineRelation(uint32_t initial_objects, uint32_t initial_labels);

  /// Bulk constructor: Build(pairs) over an otherwise empty relation.
  BaselineRelation(uint32_t initial_objects, uint32_t initial_labels,
                   std::vector<Pair> pairs);

  /// Replaces the content with `pairs` (duplicate-free, within the current
  /// capacities) in one bulk load: S via the wavelet-tree bulk constructor
  /// (one stable partition per level), N via one packed-word Build — no
  /// per-pair dynamic insertions.
  void Build(std::vector<Pair> pairs);

  /// Adds (o, a); returns false if present or unrepresentable (UINT32_MAX).
  /// Grows capacities as needed.
  bool AddPair(uint32_t o, uint32_t a);

  /// Adds a batch; returns how many were new. A cold relation takes the
  /// Build path (one bulk load); a warm one falls back to per-pair AddPair.
  uint64_t AddPairsBulk(const std::vector<std::pair<uint32_t, uint32_t>>& ps);

  /// Removes (o, a); returns false if absent (including out of range).
  bool RemovePair(uint32_t o, uint32_t a);

  bool Related(uint32_t o, uint32_t a) const;

  template <typename Fn>
  void ForEachLabelOfObject(uint32_t o, Fn fn) const {
    auto [l, r] = SRange(o);
    for (uint64_t p = l; p < r; ++p) fn(s_.Access(p));
  }

  template <typename Fn>
  void ForEachObjectOfLabel(uint32_t a, Fn fn) const {
    if (a >= max_labels_) return;
    uint64_t total = s_.Count(a);
    for (uint64_t k = 0; k < total; ++k) {
      uint64_t pos = s_.Select(a, k);
      fn(ObjectOfS(pos));
    }
  }

  uint64_t CountLabelsOf(uint32_t o) const {
    auto [l, r] = SRange(o);
    return r - l;
  }

  uint64_t CountObjectsOf(uint32_t a) const {
    return a < max_labels_ ? s_.Count(a) : 0;
  }

  uint64_t num_pairs() const { return s_.size(); }
  uint64_t SpaceBytes() const { return s_.SpaceBytes() + n_.SpaceBytes(); }

  /// Current id capacities: objects in [0, object_capacity()), labels in
  /// [0, label_capacity()). Informational — updates grow them on demand.
  uint64_t object_capacity() const { return max_objects_; }
  uint64_t label_capacity() const { return max_labels_; }

  /// Copies every live pair (sorted) — the snapshot-export path.
  void ExportLivePairs(std::vector<std::pair<uint32_t, uint32_t>>* out) const;

 private:
  /// The wavelet alphabet parameter is uint32, so capacity tops out at
  /// 2^32 - 1; only id UINT32_MAX is ever unrepresentable.
  static constexpr uint64_t kMaxCapacity = 0xFFFFFFFFull;

  DynamicWaveletTree s_;
  DynamicBitVector n_;  // 1 per pair, 0 terminating each object's run
  uint64_t max_objects_;
  uint64_t max_labels_;

  /// Grows capacities (doubling) so (o, a) is in range. Returns false iff
  /// the pair is unrepresentable (an id of UINT32_MAX).
  bool EnsureCapacity(uint32_t o, uint32_t a);

  /// Appends every live pair (slot space == id space here) to out.
  void ExportPairs(std::vector<Pair>* out) const;

  /// S-positions [begin, end) of object o's labels: the ones of N between
  /// the (o-1)-th and o-th zeros. Out-of-range objects have an empty range.
  std::pair<uint64_t, uint64_t> SRange(uint32_t o) const {
    if (o >= max_objects_) return {0, 0};
    uint64_t begin = o == 0 ? 0 : n_.Select0(o - 1) - (o - 1);
    uint64_t end = n_.Select0(o) - o;
    return {begin, end};
  }

  uint32_t ObjectOfS(uint64_t spos) const {
    uint64_t npos = n_.Select1(spos);
    return static_cast<uint32_t>(npos - spos);
  }
};

}  // namespace dyndex

#endif  // DYNDEX_RELATION_BASELINE_RELATION_H_
