#include "relation/static_relation.h"

#include <algorithm>

#include "util/check.h"

namespace dyndex {

StaticRelation::StaticRelation(std::vector<Pair> pairs, uint32_t num_objects,
                               uint32_t num_labels)
    : num_objects_(num_objects), num_labels_(num_labels) {
  // Purge/merge rebuilds feed pairs back in S order; the O(n) sortedness
  // check makes those batch constructions skip the sort entirely.
  if (!std::is_sorted(pairs.begin(), pairs.end())) {
    std::sort(pairs.begin(), pairs.end());
  }
  std::vector<uint32_t> labels;
  labels.reserve(pairs.size());
  BitVector n(pairs.size() + num_objects);
  uint64_t bit = 0;
  uint64_t next = 0;
  for (uint32_t o = 0; o < num_objects; ++o) {
    while (next < pairs.size() && pairs[next].object == o) {
      DYNDEX_CHECK(pairs[next].label < num_labels);
      labels.push_back(pairs[next].label);
      n.Set(bit++, true);
      ++next;
    }
    ++bit;  // the 0 terminating object o's run
  }
  DYNDEX_CHECK(next == pairs.size());  // all objects within range
  s_ = WaveletTree(labels, num_labels == 0 ? 1 : num_labels);
  n_.Build(std::move(n));
}

std::pair<uint64_t, uint64_t> StaticRelation::ObjectRange(uint32_t o) const {
  DYNDEX_CHECK(o < num_objects_);
  uint64_t begin = o == 0 ? 0 : n_.Select0(o - 1) - (o - 1);
  uint64_t end = n_.Select0(o) - o;
  return {begin, end};
}

uint64_t StaticRelation::FindPair(uint32_t o, uint32_t a) const {
  if (o >= num_objects_ || a >= num_labels_) return kNotFound;
  auto [l, r] = ObjectRange(o);
  uint64_t before = s_.Rank(a, l);
  if (before >= s_.Count(a)) return kNotFound;
  uint64_t pos = s_.Select(a, before);
  return pos < r ? pos : kNotFound;
}

}  // namespace dyndex
