#include "relation/deletion_only_shell.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/retire.h"

namespace dyndex {

DeletionOnlyShell::DeletionOnlyShell(const DeletionOnlyShellOptions& opt)
    : opt_(opt) {}

uint32_t DeletionOnlyShell::tau() const {
  return opt_.tau != 0 ? opt_.tau : 4;
}

void DeletionOnlyShell::Rebuild(std::vector<Pair> live) {
  uint32_t num_objects = 0;
  uint32_t num_labels = 0;
  for (const Pair& p : live) {
    num_objects = std::max(num_objects, p.object + 1);
    num_labels = std::max(num_labels, p.label + 1);
  }
  // Optimistic serve-layer readers may still be probing the old core: park
  // it for the grace period instead of freeing it under the assignment.
  Retire(std::move(rel_));
  rel_ = DeletionOnlyRelation(std::move(live), num_objects, num_labels);
  ++rebuilds_;
}

bool DeletionOnlyShell::AddPair(uint32_t o, uint32_t a) {
  if (o >= opt_.max_objects || a >= opt_.max_labels) return false;
  if (rel_.Related(o, a)) return false;
  std::vector<Pair> live;
  live.reserve(rel_.live_pairs() + 1);
  rel_.ExportLivePairs(&live);
  live.push_back({o, a});
  Rebuild(std::move(live));
  return true;
}

uint64_t DeletionOnlyShell::AddPairsBulk(
    const std::vector<std::pair<uint32_t, uint32_t>>& ps) {
  std::vector<Pair> live;
  live.reserve(rel_.live_pairs() + ps.size());
  rel_.ExportLivePairs(&live);
  uint64_t old_live = live.size();
  for (auto [o, a] : ps) {
    if (o >= opt_.max_objects || a >= opt_.max_labels) continue;
    if (!rel_.Related(o, a)) live.push_back({o, a});
  }
  if (live.size() == old_live) return 0;  // nothing new: skip the rebuild
  // Dedupe within the batch (the live export is already duplicate-free and
  // disjoint from the appended fresh pairs).
  std::sort(live.begin(), live.end());
  live.erase(std::unique(live.begin(), live.end()), live.end());
  uint64_t added = live.size() - old_live;
  Rebuild(std::move(live));
  return added;
}

bool DeletionOnlyShell::RemovePair(uint32_t o, uint32_t a) {
  if (!rel_.DeletePair(o, a)) return false;
  if (rel_.NeedsPurge(tau())) {
    std::vector<Pair> live;
    live.reserve(rel_.live_pairs());
    rel_.ExportLivePairs(&live);
    Rebuild(std::move(live));
  }
  return true;
}

void DeletionOnlyShell::ExportLivePairs(
    std::vector<std::pair<uint32_t, uint32_t>>* out) const {
  const std::size_t before = out->size();
  std::vector<Pair> live;
  rel_.ExportLivePairs(&live);
  out->reserve(before + live.size());
  for (const Pair& p : live) out->push_back({p.object, p.label});
  std::sort(out->begin() + static_cast<int64_t>(before), out->end());
}

void DeletionOnlyShell::CheckInvariants() const {
  std::vector<Pair> live;
  rel_.ExportLivePairs(&live);
  DYNDEX_CHECK(live.size() == rel_.live_pairs());
  DYNDEX_CHECK(rel_.live_pairs() + rel_.dead_pairs() == rel_.total_pairs());
  uint64_t by_label = 0;
  for (uint32_t a = 0; a < rel_.num_labels(); ++a) {
    by_label += rel_.CountObjectsOf(a);
  }
  DYNDEX_CHECK(by_label == rel_.live_pairs());
  for (const Pair& p : live) DYNDEX_CHECK(rel_.Related(p.object, p.label));
}

}  // namespace dyndex
