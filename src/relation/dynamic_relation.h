// Fully-dynamic compressed binary relation (Section 5, Theorem 2).
//
// The paper's framework applied to relations: a small uncompressed C0
// (adjacency hash lists, O(log n) bits per pair) absorbs insertions;
// the bulk lives in deletion-only compressed sub-collections arranged on the
// Transformation-1 geometric schedule. Global object/label ids are mapped
// through the SN/NS tables (id <-> dense slot, with free-list reuse); each
// sub-collection maps global slots to its *effective alphabet* via rank on
// presence bitmaps (the paper's GC_i sequences), so a slot reused after its
// label died maps onto all-dead pairs and reports nothing — exactly the
// paper's staleness argument.
//
// Queries visit C0 plus every sub-collection:
//   adjacency / reporting : O(#subs * log sigma_l) per datum
//   counting              : O(#subs * log n)
//   updates               : amortized O(polylog)
#ifndef DYNDEX_RELATION_DYNAMIC_RELATION_H_
#define DYNDEX_RELATION_DYNAMIC_RELATION_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bits/rank_select.h"
#include "relation/deletion_only_relation.h"
#include "util/check.h"
#include "util/retire.h"
#include "util/seq_hash_map.h"

namespace dyndex {

struct DynamicRelationOptions {
  /// Dead-fraction purge knob; 0 = auto (~log log n).
  uint32_t tau = 0;
  /// Growth exponent of the sub-collection schedule.
  double epsilon = 0.5;
  /// Minimum C0 capacity in pairs.
  uint64_t min_c0 = 1024;
};

/// Dynamic relation between arbitrary uint32 object ids and label ids.
class DynamicRelation {
 public:
  explicit DynamicRelation(const DynamicRelationOptions& opt =
                               DynamicRelationOptions());

  /// Adds (object, label). Returns false if the pair already exists.
  bool AddPair(uint32_t object, uint32_t label);

  /// Adds a batch of (object, label) pairs; returns how many were new.
  /// Batches that do not fit in C0 are built directly into one compressed
  /// sub-collection at the right level of the schedule (one static build)
  /// instead of per-pair C0 inserts cascading through merge after merge —
  /// the cold-start path costs one BuildSub over the whole batch.
  uint64_t AddPairsBulk(const std::vector<std::pair<uint32_t, uint32_t>>& ps);

  /// Removes (object, label). Returns false if absent.
  bool RemovePair(uint32_t object, uint32_t label);

  /// Adjacency test.
  bool Related(uint32_t object, uint32_t label) const;

  /// fn(label) for every label related to `object`.
  template <typename Fn>
  void ForEachLabelOfObject(uint32_t object, Fn fn) const {
    const uint32_t* slot = obj_slot_.Find(object);
    if (slot == nullptr) return;
    uint32_t os = *slot;
    // C0 adjacency is a SeqBox snapshot: one acquire load, then iterate a
    // list no writer will ever mutate (updates republish wholesale).
    if (const C0List* box = c0_by_object_.Find(os)) {
      if (const std::vector<uint32_t>* adj = box->Load()) {
        for (uint32_t ls : *adj) {
          // Torn-read clamp: a stale snapshot must not index OOB.
          DYNDEX_CHECK(ls < slot_label_.size());
          fn(slot_label_[ls]);
        }
      }
    }
    // Load each sub pointer exactly once: a writer retiring the level nulls
    // the unique_ptr element in place, so re-dereferencing it mid-traversal
    // would fault even though the parked Sub itself stays alive.
    for (const auto& sub_ptr : subs_) {
      const Sub* sub = sub_ptr.get();
      if (sub == nullptr) continue;
      uint32_t local_o;
      if (!sub->LocalObject(os, &local_o)) continue;
      sub->rel.ForEachLabelOfObject(local_o, [&](uint32_t ll) {
        uint32_t gl = sub->GlobalLabel(ll);
        DYNDEX_CHECK(gl < slot_label_.size());
        fn(slot_label_[gl]);
      });
    }
  }

  /// fn(object) for every object related to `label`.
  template <typename Fn>
  void ForEachObjectOfLabel(uint32_t label, Fn fn) const {
    const uint32_t* slot = label_slot_.Find(label);
    if (slot == nullptr) return;
    uint32_t ls = *slot;
    if (const C0List* box = c0_by_label_.Find(ls)) {
      if (const std::vector<uint32_t>* adj = box->Load()) {
        for (uint32_t os : *adj) {
          DYNDEX_CHECK(os < slot_obj_.size());
          fn(slot_obj_[os]);
        }
      }
    }
    for (const auto& sub_ptr : subs_) {
      const Sub* sub = sub_ptr.get();  // one load; see ForEachLabelOfObject
      if (sub == nullptr) continue;
      uint32_t local_a;
      if (!sub->LocalLabel(ls, &local_a)) continue;
      sub->rel.ForEachObjectOfLabel(local_a, [&](uint32_t lo) {
        uint32_t go = sub->GlobalObject(lo);
        DYNDEX_CHECK(go < slot_obj_.size());
        fn(slot_obj_[go]);
      });
    }
  }

  /// Number of labels related to `object` (O(#subs * log n)).
  uint64_t CountLabelsOf(uint32_t object) const;

  /// Number of objects related to `label`.
  uint64_t CountObjectsOf(uint32_t label) const;

  uint64_t num_pairs() const { return num_pairs_; }
  uint64_t c0_pairs() const { return c0_pairs_; }
  uint32_t num_subcollections() const;
  uint32_t tau() const { return Tau(); }

  uint64_t SpaceBytes() const;

  /// Copies every live pair (external ids, sorted) — the snapshot-export
  /// path; the structure is untouched.
  void ExportLivePairs(std::vector<std::pair<uint32_t, uint32_t>>* out) const;

  /// Test hook: registry and size invariants.
  void CheckInvariants() const;

 private:
  /// A deletion-only sub-collection plus global->effective alphabet maps.
  struct Sub {
    DeletionOnlyRelation rel;
    RankSelect objects;  // bit o set iff global object slot o occurs here
    RankSelect labels;

    bool LocalObject(uint32_t global, uint32_t* local) const {
      if (global >= objects.size() || !objects.Get(global)) return false;
      *local = static_cast<uint32_t>(objects.Rank1(global));
      return true;
    }
    bool LocalLabel(uint32_t global, uint32_t* local) const {
      if (global >= labels.size() || !labels.Get(global)) return false;
      *local = static_cast<uint32_t>(labels.Rank1(global));
      return true;
    }
    uint32_t GlobalObject(uint32_t local) const {
      return static_cast<uint32_t>(objects.Select1(local));
    }
    uint32_t GlobalLabel(uint32_t local) const {
      return static_cast<uint32_t>(labels.Select1(local));
    }
  };

  DynamicRelationOptions opt_;
  // Reader-reachable containers use SeqHashMap / the retire_* aliases
  // (util/seq_hash_map.h, util/retire.h): under the serve layer's optimistic
  // seqlock a writer's realloc, rehash, or erase parks abandoned buffers for
  // in-flight readers, and hash probes derive their bounds from a single
  // pointer load. Write-only bookkeeping (free lists, pair counts) stays
  // plain. SN/NS tables: external id <-> dense slot.
  SeqHashMap<uint32_t, uint32_t> obj_slot_, label_slot_;
  retire_vector<uint32_t> slot_obj_, slot_label_;
  std::vector<uint32_t> free_obj_slots_, free_label_slots_;
  std::vector<uint32_t> obj_pair_count_, label_pair_count_;

  // C0: uncompressed adjacency lists over slots. Each list is an immutable
  // SeqBox snapshot so lock-free readers iterate it without coordination;
  // writers copy-modify-Store (amortized fine: C0 lists are schedule-bounded).
  using C0List = SeqBox<std::vector<uint32_t>>;
  SeqHashMap<uint32_t, C0List> c0_by_object_;
  SeqHashMap<uint32_t, C0List> c0_by_label_;
  SeqHashSet<uint64_t> c0_pairs_set_;
  uint64_t c0_pairs_ = 0;

  retire_vector<std::unique_ptr<Sub>> subs_;
  uint64_t num_pairs_ = 0;
  uint64_t nf_ = 0;

  static uint64_t Key(uint32_t os, uint32_t ls) { return PairKey(os, ls); }

  uint32_t Tau() const;
  uint64_t MaxSize(uint32_t level) const;

  uint32_t InternObject(uint32_t object);
  uint32_t InternLabel(uint32_t label);
  void ReleaseObject(uint32_t slot);
  void ReleaseLabel(uint32_t slot);

  bool C0Related(uint32_t os, uint32_t ls) const {
    return c0_pairs_set_.count(Key(os, ls)) > 0;
  }
  void C0Add(uint32_t os, uint32_t ls);
  bool C0Remove(uint32_t os, uint32_t ls);

  /// Builds a Sub from pairs given in *slot* space.
  std::unique_ptr<Sub> BuildSub(const std::vector<Pair>& slot_pairs) const;

  /// Drains C0 and levels 0..j into a rebuilt level j, plus `seed_pairs`.
  void MergeThrough(uint32_t j, std::vector<Pair> seed_pairs);
  /// Places `fresh` (new slot pairs, already interned and counted) into C0 or
  /// a merged level per the schedule. Shared by AddPair and AddPairsBulk.
  void PlaceFresh(std::vector<Pair> fresh);
  void PurgeIfNeeded(uint32_t level);
  void GlobalRebase();

  /// Exports a sub's live pairs in slot space.
  void ExportSub(const Sub& sub, std::vector<Pair>* out) const;
};

}  // namespace dyndex

#endif  // DYNDEX_RELATION_DYNAMIC_RELATION_H_
