// Uncompressed speed-tier binary relation (the RadixGraph/CuckooGraph-style
// rival to the paper's wavelet-tree structures): a radix-paged directory from
// object id to a compact adjacency set, mirrored label -> objects so reverse
// queries stay O(result), trading bytes for raw update and scan rate.
//
// Layout, per direction (forward object->labels, reverse label->objects):
//
//   Table (immutable length, atomically published)
//     -> Page[id >> 12]            (installed once, never replaced)
//          -> AdjSet*[id & 4095]   (installed once per id, sticky)
//               -> Rep             (single-pointer snapshot, see below)
//
// An adjacency set has two representations behind one atomic Rep pointer:
//   * sorted inline array  -- size <= inline_threshold. The Rep is immutable:
//     point updates publish a freshly built array and retire the old one, so
//     a reader iterates a snapshot no writer ever touches.
//   * open-addressing hash -- past the threshold. Power-of-two slot array of
//     atomic ids (SplitMix64-mixed, linear probing, tombstone deletes),
//     mutated in place under the single-writer contract; growth/demotion
//     builds a fresh Rep and retires the old.
//
// Optimistic-reader discipline (serve/epoch_guard.h seqlock): every
// reader-reachable view — directory table, page slot, set pointer, Rep — is
// obtained from ONE atomic acquire load whose target is immutable in the
// fields the reader derives bounds from, so a torn read is memory-safe
// (stale, caught by sequence validation) and every probe loop is bounded by
// the capacity baked into the Rep it loaded. Everything replaced is parked
// via util/retire.h for the grace period.
//
// Single-writer contract: mutations must be externally synchronized (the
// serve layer's exclusive section); any number of concurrent readers may run
// the const members.
//
// Complexity: Related O(1) expected; LabelsOf/ObjectsOf O(result);
// updates O(1) amortized (O(inline_threshold) while a set is small).
// Space: O(1) words per pair per direction at ~50-75% hash load — several
// times the succinct backends; SpaceBytes reports it honestly, including
// directory pages and bookkeeping.
#ifndef DYNDEX_RELATION_FAST_RELATION_H_
#define DYNDEX_RELATION_FAST_RELATION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/retire.h"

namespace dyndex {

struct FastRelationOptions {
  /// Sets at or below this size stay sorted inline arrays; past it they
  /// promote to open-addressing hash sets (demote at half on shrink).
  uint32_t inline_threshold = 12;
};

namespace fast_internal {

/// Ids 0xFFFFFFFE / 0xFFFFFFFF are reserved as hash-slot sentinels, so the
/// representable id universe is [0, kMaxId].
inline constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;
inline constexpr uint32_t kTombstoneSlot = 0xFFFFFFFEu;
inline constexpr uint32_t kMaxId = 0xFFFFFFFDu;

/// SplitMix64 finalizer over an id — the slot hash of the promoted sets.
inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// One compact adjacency set. Readers derive every bound from the Rep a
/// single acquire load handed them; the writer mutates hash Reps in place
/// (atomic slot stores) and replaces sorted Reps wholesale.
// lint:reader-shared
class AdjSet {
 public:
  AdjSet() = default;
  ~AdjSet() {
    // May run inside an exclusive section: park for in-flight readers.
    if (owner_ != nullptr) Retire(std::move(owner_));
  }
  AdjSet(const AdjSet&) = delete;
  AdjSet& operator=(const AdjSet&) = delete;

  /// Reader-safe membership probe, bounded by the loaded Rep's capacity.
  bool Contains(uint32_t id) const {
    const Rep* r = rep_.load(std::memory_order_acquire);
    if (r == nullptr) return false;
    const uint32_t cap = r->capacity();
    if (!r->hashed) {
      for (uint32_t i = 0; i < cap; ++i) {
        uint32_t v = r->slots[i].load(std::memory_order_relaxed);
        if (v == id) return true;
        if (v > id) return false;  // sorted ascending; immutable after publish
      }
      return false;
    }
    const uint32_t mask = cap - 1;
    uint32_t idx = static_cast<uint32_t>(Mix(id)) & mask;
    for (uint32_t probes = 0; probes <= mask; ++probes) {
      uint32_t v = r->slots[idx].load(std::memory_order_acquire);
      if (v == kEmptySlot) return false;
      if (v == id) return true;
      idx = (idx + 1) & mask;
    }
    return false;
  }

  /// fn(id) for every member; reader-safe (one Rep load). Sorted Reps visit
  /// in ascending order, hash Reps in slot order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    const Rep* r = rep_.load(std::memory_order_acquire);
    if (r == nullptr) return;
    const uint32_t cap = r->capacity();
    if (!r->hashed) {
      for (uint32_t i = 0; i < cap; ++i) {
        fn(r->slots[i].load(std::memory_order_relaxed));
      }
      return;
    }
    for (uint32_t i = 0; i < cap; ++i) {
      uint32_t v = r->slots[i].load(std::memory_order_acquire);
      if (v < kTombstoneSlot) fn(v);
    }
  }

  /// Live member count — O(1), a plain atomic load (degree queries).
  uint32_t size() const { return size_.load(std::memory_order_relaxed); }

  // Writer-only (external synchronization). Insert/Erase return whether the
  // set changed; InsertBulk requires `ids` sorted, unique and disjoint from
  // the current members.
  bool Insert(uint32_t id, uint32_t inline_threshold);
  bool Erase(uint32_t id, uint32_t inline_threshold);
  void InsertBulk(const uint32_t* ids, uint32_t n, uint32_t inline_threshold);

  /// Heap bytes of the current Rep (reader-safe; space accounting).
  uint64_t RepBytes() const {
    const Rep* r = rep_.load(std::memory_order_acquire);
    if (r == nullptr) return 0;
    return sizeof(Rep) + r->capacity() * sizeof(std::atomic<uint32_t>);
  }

  /// Test hook: representation invariants (writer/quiesced only).
  void CheckInvariants(uint32_t inline_threshold) const;

 private:
  // lint:reader-shared
  struct Rep {
    Rep(uint32_t cap, bool hashed_mode) : hashed(hashed_mode), slots(cap) {
      if (hashed) {
        for (auto& s : slots) s.store(kEmptySlot, std::memory_order_relaxed);
      }
    }
    uint32_t capacity() const { return static_cast<uint32_t>(slots.size()); }
    const bool hashed;
    // Never resized after construction: capacity and data come from the same
    // allocation graph a single Rep* load roots, so a reader's view is
    // self-consistent no matter when the writer republishes.
    retire_vector<std::atomic<uint32_t>> slots;
  };

  /// Publishes `next` and parks the previous Rep for in-flight readers.
  void Install(std::unique_ptr<Rep> next) {
    rep_.store(next.get(), std::memory_order_release);
    if (owner_ != nullptr) Retire(std::move(owner_));
    owner_ = std::move(next);
  }

  /// Writer-side snapshot of the live members, ascending.
  std::vector<uint32_t> LiveSorted() const;

  std::unique_ptr<Rep> BuildSorted(const std::vector<uint32_t>& ids) const;
  std::unique_ptr<Rep> BuildHashed(const std::vector<uint32_t>& ids,
                                   uint32_t extra_capacity_for) const;
  static void HashedPlace(Rep* r, uint32_t id);

  std::unique_ptr<Rep> owner_;
  std::atomic<Rep*> rep_{nullptr};    // readers' view; mirrors owner_
  std::atomic<uint32_t> size_{0};     // live members
  uint32_t used_ = 0;                 // hashed: live + tombstones (writer)
};

/// Radix-paged directory id -> AdjSet. The top table (immutable length,
/// atomically republished on growth) indexes fixed 4096-entry pages of
/// atomic set pointers; pages and sets are installed once and stay mapped
/// for the structure's lifetime (sticky — an emptied set keeps its slot).
// lint:reader-shared
class PageDir {
 public:
  static constexpr uint32_t kPageBits = 12;
  static constexpr uint32_t kPageSize = 1u << kPageBits;

  PageDir() = default;
  ~PageDir() {
    if (owner_ != nullptr) Retire(std::move(owner_));
  }
  PageDir(const PageDir&) = delete;
  PageDir& operator=(const PageDir&) = delete;

  /// Reader-safe: the set for `id`, or nullptr if never created.
  const AdjSet* Find(uint32_t id) const {
    const Table* t = table_.load(std::memory_order_acquire);
    if (t == nullptr) return nullptr;
    const uint32_t p = id >> kPageBits;
    if (p >= t->pages.size()) return nullptr;
    const Page* page = t->pages[p].load(std::memory_order_acquire);
    if (page == nullptr) return nullptr;
    return page->slots[id & (kPageSize - 1)].load(std::memory_order_acquire);
  }

  /// Writer-only: the set for `id`, creating table/page/set as needed.
  AdjSet& GetOrCreate(uint32_t id);

  /// fn(id, const AdjSet&) for every created set, ascending id, including
  /// sticky empty ones; reader-safe.
  template <typename Fn>
  void ForEachSet(Fn fn) const {
    const Table* t = table_.load(std::memory_order_acquire);
    if (t == nullptr) return;
    for (uint32_t p = 0; p < t->pages.size(); ++p) {
      const Page* page = t->pages[p].load(std::memory_order_acquire);
      if (page == nullptr) continue;
      for (uint32_t s = 0; s < kPageSize; ++s) {
        const AdjSet* set = page->slots[s].load(std::memory_order_acquire);
        if (set != nullptr) fn((p << kPageBits) | s, *set);
      }
    }
  }

  /// Directory + pages + sets + reps, honestly (reader-safe walk).
  uint64_t SpaceBytes() const;

 private:
  // lint:reader-shared
  struct Page {
    std::array<std::atomic<AdjSet*>, kPageSize> slots{};
  };
  // lint:reader-shared
  struct Table {
    explicit Table(uint32_t n) : pages(n) {}
    // Immutable length; the atomic elements are page-install points.
    retire_vector<std::atomic<Page*>> pages;
  };

  std::unique_ptr<Table> owner_;
  std::atomic<Table*> table_{nullptr};  // readers' view; mirrors owner_
  // Append-only writer-side ownership (sticky pages/sets are never freed
  // before the directory itself dies, so no Retire is needed for them).
  // Readers never walk these vectors — they reach pages/sets only through
  // the atomically published table_ above.
  // lint:allow(reader-container) writer-side ownership vector, not a read path
  std::vector<std::unique_ptr<Page>> pages_;
  // lint:allow(reader-container) writer-side ownership vector, not a read path
  std::vector<std::unique_ptr<AdjSet>> sets_;
};

}  // namespace fast_internal

/// Uncompressed speed-tier dynamic relation between uint32 object and label
/// ids (both < max_objects()/max_labels(); the top two id values are
/// reserved as hash sentinels — the serve facade screens them out).
class FastRelation {
 public:
  explicit FastRelation(const FastRelationOptions& opt = FastRelationOptions())
      : opt_(opt) {
    DYNDEX_CHECK(opt_.inline_threshold >= 1);
  }

  /// Adds (object, label). Returns false if the pair already exists.
  bool AddPair(uint32_t object, uint32_t label);

  /// Adds a batch; returns how many pairs were new. The batch is deduped,
  /// grouped per adjacency set, and each touched set is rebuilt/extended
  /// once at its final size — no per-pair republish churn.
  uint64_t AddPairsBulk(const std::vector<std::pair<uint32_t, uint32_t>>& ps);

  /// Cold bulk construction (precondition: empty) — one AddPairsBulk.
  void Build(const std::vector<std::pair<uint32_t, uint32_t>>& pairs) {
    DYNDEX_CHECK(num_pairs_ == 0);
    AddPairsBulk(pairs);
  }

  /// Removes (object, label). Returns false if absent.
  bool RemovePair(uint32_t object, uint32_t label);

  /// Adjacency test — one forward probe, O(1) expected.
  bool Related(uint32_t object, uint32_t label) const {
    const fast_internal::AdjSet* set = forward_.Find(object);
    return set != nullptr && set->Contains(label);
  }

  /// fn(label) for every label related to `object`; O(result).
  template <typename Fn>
  void ForEachLabelOfObject(uint32_t object, Fn fn) const {
    if (const fast_internal::AdjSet* set = forward_.Find(object)) {
      set->ForEach(fn);
    }
  }

  /// fn(object) for every object related to `label`; O(result) via the
  /// mirrored reverse index.
  template <typename Fn>
  void ForEachObjectOfLabel(uint32_t label, Fn fn) const {
    if (const fast_internal::AdjSet* set = reverse_.Find(label)) {
      set->ForEach(fn);
    }
  }

  /// Out-degree — O(1) (a size load, no scan).
  uint64_t CountLabelsOf(uint32_t object) const {
    const fast_internal::AdjSet* set = forward_.Find(object);
    return set == nullptr ? 0 : set->size();
  }

  /// In-degree — O(1) via the reverse index.
  uint64_t CountObjectsOf(uint32_t label) const {
    const fast_internal::AdjSet* set = reverse_.Find(label);
    return set == nullptr ? 0 : set->size();
  }

  uint64_t num_pairs() const { return num_pairs_; }

  /// Fixed representable-id capacities (the facade screens ids at or above
  /// them): everything but the two reserved sentinel values.
  uint32_t max_objects() const { return fast_internal::kMaxId + 1; }
  uint32_t max_labels() const { return fast_internal::kMaxId + 1; }

  /// Honest footprint: both directories (tables, 32 KiB pages, set objects,
  /// reps) plus writer bookkeeping.
  uint64_t SpaceBytes() const;

  /// Copies every live pair (sorted, duplicate-free) — the snapshot-export
  /// path; the structure is untouched.
  void ExportLivePairs(std::vector<std::pair<uint32_t, uint32_t>>* out) const;

  /// Test hook: forward/reverse mirror consistency, per-set representation
  /// invariants, pair-count accounting (writer/quiesced only).
  void CheckInvariants() const;

 private:
  FastRelationOptions opt_;
  fast_internal::PageDir forward_;  // object -> labels
  fast_internal::PageDir reverse_;  // label  -> objects
  uint64_t num_pairs_ = 0;
};

}  // namespace dyndex

#endif  // DYNDEX_RELATION_FAST_RELATION_H_
