// DeletionOnlyRelation behind the fully-dynamic relation contract: the
// deletion-only structure of Section 5 (first half) made servable by the
// classic static-to-dynamic fallback — insertions rebuild the static core
// from its exported live pairs, deletions stay lazy until the dead fraction
// reaches 1/tau and a purge rebuilds.
//
// This is deliberately the *un*-amortized end of the design space: one flat
// structure, O(live) work per insertion batch, no sub-collection schedule.
// It exists so the serving facade (serve/relation_index.h) and the
// differential fuzz harness exercise DeletionOnlyRelation's purge/export
// boundaries directly, not only through DynamicRelation's dense local slots.
#ifndef DYNDEX_RELATION_DELETION_ONLY_SHELL_H_
#define DYNDEX_RELATION_DELETION_ONLY_SHELL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "relation/deletion_only_relation.h"

namespace dyndex {

struct DeletionOnlyShellOptions {
  /// Dead-fraction purge knob: purge when dead * tau >= total. 0 = default.
  uint32_t tau = 0;
  /// Id capacity caps. The static core is *dense* over [0, max live id], so
  /// an unbounded hostile id would cost O(id) space on the next rebuild;
  /// pairs at or above these caps are rejected instead.
  uint32_t max_objects = 1u << 20;
  uint32_t max_labels = 1u << 20;
};

/// Fully-dynamic facade-shaped shell over one DeletionOnlyRelation.
class DeletionOnlyShell {
 public:
  explicit DeletionOnlyShell(const DeletionOnlyShellOptions& opt = {});

  /// Adds (o, a) by rebuilding the static core over live pairs + the new
  /// pair. Returns false if already live. O(live pairs).
  bool AddPair(uint32_t o, uint32_t a);

  /// Adds a batch in ONE rebuild (duplicates within the batch and against
  /// live pairs are dropped); returns how many pairs were new.
  uint64_t AddPairsBulk(const std::vector<std::pair<uint32_t, uint32_t>>& ps);

  /// Lazy deletion; purges (rebuild over exported live pairs) once the dead
  /// fraction reaches 1/tau. Returns false if absent.
  bool RemovePair(uint32_t o, uint32_t a);

  bool Related(uint32_t o, uint32_t a) const { return rel_.Related(o, a); }

  template <typename Fn>
  void ForEachLabelOfObject(uint32_t o, Fn fn) const {
    rel_.ForEachLabelOfObject(o, fn);
  }

  template <typename Fn>
  void ForEachObjectOfLabel(uint32_t a, Fn fn) const {
    rel_.ForEachObjectOfLabel(a, fn);
  }

  uint64_t CountLabelsOf(uint32_t o) const { return rel_.CountLabelsOf(o); }
  uint64_t CountObjectsOf(uint32_t a) const { return rel_.CountObjectsOf(a); }

  uint64_t num_pairs() const { return rel_.live_pairs(); }
  uint64_t SpaceBytes() const { return rel_.SpaceBytes(); }

  /// Id capacities (dense universe bound; see DeletionOnlyShellOptions).
  /// The serving facade screens out-of-range ids against these.
  uint32_t max_objects() const { return opt_.max_objects; }
  uint32_t max_labels() const { return opt_.max_labels; }

  /// Rebuilds performed so far (insertions + purges); test introspection.
  uint64_t rebuilds() const { return rebuilds_; }
  uint32_t tau() const;

  /// Copies every live pair (sorted) — the snapshot-export path.
  void ExportLivePairs(std::vector<std::pair<uint32_t, uint32_t>>* out) const;

  /// Test hook: the exported live view must agree with the counters.
  void CheckInvariants() const;

 private:
  /// Replaces the core with one built over exactly `live` (duplicate-free).
  void Rebuild(std::vector<Pair> live);

  DeletionOnlyRelation rel_;
  DeletionOnlyShellOptions opt_;
  uint64_t rebuilds_ = 0;
};

}  // namespace dyndex

#endif  // DYNDEX_RELATION_DELETION_ONLY_SHELL_H_
