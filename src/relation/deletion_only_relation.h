// Deletion-only binary relation (Section 5, first half): a static relation
// plus the dead-pair bit vector D (live-row reporter with Fenwick counting,
// standing in for the rank structure of [20]) and per-label dead counters
// (the paper's D_a sequences, realized through select on S + D probes).
#ifndef DYNDEX_RELATION_DELETION_ONLY_RELATION_H_
#define DYNDEX_RELATION_DELETION_ONLY_RELATION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "bits/live_row_reporter.h"
#include "relation/static_relation.h"

namespace dyndex {

/// Static relation supporting lazy pair deletion.
class DeletionOnlyRelation {
 public:
  DeletionOnlyRelation() = default;

  DeletionOnlyRelation(std::vector<Pair> pairs, uint32_t num_objects,
                       uint32_t num_labels);

  uint64_t live_pairs() const { return rel_.num_pairs() - dead_; }
  uint64_t dead_pairs() const { return dead_; }
  uint64_t total_pairs() const { return rel_.num_pairs(); }
  uint32_t num_objects() const { return rel_.num_objects(); }
  uint32_t num_labels() const { return rel_.num_labels(); }

  bool NeedsPurge(uint32_t tau) const {
    return dead_ > 0 && dead_ * tau >= rel_.num_pairs();
  }

  /// Marks (o, a) dead. Returns false if absent or already dead.
  bool DeletePair(uint32_t o, uint32_t a);

  /// Is (o, a) present and live?
  bool Related(uint32_t o, uint32_t a) const;

  /// fn(label) for each live label of object o, O(log sigma_l) per datum.
  /// Objects outside [0, num_objects) have no pairs (ObjectRange's
  /// precondition is strict, so the guard lives here — standalone servers
  /// pass arbitrary ids, unlike DynamicRelation's dense local slots).
  template <typename Fn>
  void ForEachLabelOfObject(uint32_t o, Fn fn) const {
    if (o >= rel_.num_objects()) return;
    auto [l, r] = rel_.ObjectRange(o);
    live_.ForEachLive(l, r, [&](uint64_t pos) { fn(rel_.LabelAt(pos)); });
  }

  /// fn(object) for each live object of label a. Dead occurrences are
  /// skipped (their fraction is bounded by the purge rule).
  template <typename Fn>
  void ForEachObjectOfLabel(uint32_t a, Fn fn) const {
    if (a >= rel_.num_labels()) return;
    uint64_t total = rel_.LabelCount(a);
    for (uint64_t k = 0; k < total; ++k) {
      uint64_t pos = rel_.SelectLabel(a, k);
      if (live_.IsLive(pos)) fn(rel_.ObjectAt(pos));
    }
  }

  /// Live labels related to object o: O(log n) via the counting reporter.
  uint64_t CountLabelsOf(uint32_t o) const {
    if (o >= rel_.num_objects()) return 0;
    auto [l, r] = rel_.ObjectRange(o);
    return live_.CountLive(l, r);
  }

  /// Live objects related to label a: O(1).
  uint64_t CountObjectsOf(uint32_t a) const {
    if (a >= rel_.num_labels()) return 0;
    return rel_.LabelCount(a) - dead_per_label_[a];
  }

  /// Appends all live pairs to out (used by purges/merges).
  void ExportLivePairs(std::vector<Pair>* out) const;

  uint64_t SpaceBytes() const {
    return rel_.SpaceBytes() + live_.SpaceBytes() +
           dead_per_label_.capacity() * sizeof(uint32_t);
  }

 private:
  StaticRelation rel_;
  LiveBitsSparse live_;
  std::vector<uint32_t> dead_per_label_;
  uint64_t dead_ = 0;
};

}  // namespace dyndex

#endif  // DYNDEX_RELATION_DELETION_ONLY_RELATION_H_
