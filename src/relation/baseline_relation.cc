#include "relation/baseline_relation.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"
#include "util/retire.h"

namespace dyndex {

BaselineRelation::BaselineRelation(uint32_t initial_objects,
                                   uint32_t initial_labels)
    : s_(initial_labels == 0 ? 1 : initial_labels),
      max_objects_(initial_objects == 0 ? 1 : initial_objects),
      max_labels_(initial_labels) {
  // N starts as one 0 per object (every object initially unrelated).
  n_.AppendRun(false, max_objects_);
}

BaselineRelation::BaselineRelation(uint32_t initial_objects,
                                   uint32_t initial_labels,
                                   std::vector<Pair> pairs)
    : BaselineRelation(initial_objects, initial_labels) {
  Build(std::move(pairs));
}

void BaselineRelation::Build(std::vector<Pair> pairs) {
  std::sort(pairs.begin(), pairs.end());
  // S = labels listed object by object, loaded through the wavelet-tree bulk
  // constructor; N = 1^{deg(0)} 0 1^{deg(1)} 0 ... packed into words and
  // bulk-loaded in one pass.
  std::vector<uint32_t> labels;
  labels.reserve(pairs.size());
  uint64_t nbits = pairs.size() + max_objects_;
  std::vector<uint64_t> nwords((nbits + 63) / 64, 0);
  uint64_t bit = 0;
  uint64_t next = 0;
  for (uint64_t o = 0; o < max_objects_; ++o) {
    while (next < pairs.size() && pairs[next].object == o) {
      DYNDEX_CHECK(pairs[next].label < max_labels_);
      labels.push_back(pairs[next].label);
      nwords[bit >> 6] |= 1ull << (bit & 63);
      ++bit;
      ++next;
    }
    ++bit;  // the 0 terminating object o's run
  }
  DYNDEX_CHECK(next == pairs.size());  // all objects within range
  // Optimistic serve-layer readers may still be descending the old wavelet
  // tree: park it instead of freeing it under the move-assignment. N's
  // Build() goes through Pool::Clear, which parks its own chunks.
  Retire(std::move(s_));
  s_ = DynamicWaveletTree(
      static_cast<uint32_t>(max_labels_ == 0 ? 1 : max_labels_),
      std::move(labels));
  n_.Build(nwords.data(), nbits);
}

bool BaselineRelation::EnsureCapacity(uint32_t o, uint32_t a) {
  uint64_t need_o = static_cast<uint64_t>(o) + 1;
  uint64_t need_a = static_cast<uint64_t>(a) + 1;
  if (need_o > kMaxCapacity || need_a > kMaxCapacity) return false;
  if (need_o <= max_objects_ && need_a <= max_labels_) return true;
  uint64_t new_objects = max_objects_;
  while (new_objects < need_o) {
    new_objects = std::min(new_objects * 2, kMaxCapacity);
  }
  uint64_t new_labels = max_labels_ == 0 ? 1 : max_labels_;
  while (new_labels < need_a) {
    new_labels = std::min(new_labels * 2, kMaxCapacity);
  }
  if (new_labels != max_labels_) {
    // Label alphabet growth: the wavelet alphabet is fixed at construction,
    // so rebuild S (and N) over the live pairs at the doubled capacities.
    std::vector<Pair> pairs;
    ExportPairs(&pairs);
    max_objects_ = new_objects;
    max_labels_ = new_labels;
    Build(std::move(pairs));
  } else if (new_objects != max_objects_) {
    // Object-only growth: fresh objects are one appended 0-run in N.
    n_.AppendRun(false, new_objects - max_objects_);
    max_objects_ = new_objects;
  }
  return true;
}

void BaselineRelation::ExportPairs(std::vector<Pair>* out) const {
  out->reserve(out->size() + num_pairs());
  for (uint64_t o = 0; o < max_objects_; ++o) {
    auto [l, r] = SRange(static_cast<uint32_t>(o));
    for (uint64_t p = l; p < r; ++p) {
      out->push_back({static_cast<uint32_t>(o), s_.Access(p)});
    }
  }
}

bool BaselineRelation::AddPair(uint32_t o, uint32_t a) {
  if (!EnsureCapacity(o, a)) return false;
  if (Related(o, a)) return false;
  auto [l, r] = SRange(o);
  (void)l;
  s_.Insert(r, a);
  // Insert the pair's 1-bit just before object o's terminating 0.
  n_.Insert(n_.Select0(o), true);
  return true;
}

uint64_t BaselineRelation::AddPairsBulk(
    const std::vector<std::pair<uint32_t, uint32_t>>& ps) {
  if (num_pairs() != 0) {
    uint64_t added = 0;
    for (auto [o, a] : ps) added += AddPair(o, a);
    return added;
  }
  std::vector<Pair> fresh;
  fresh.reserve(ps.size());
  std::unordered_set<uint64_t> seen;
  seen.reserve(ps.size());
  for (auto [o, a] : ps) {
    if (!EnsureCapacity(o, a)) continue;  // the UINT32_MAX corner
    if (!seen.insert(PairKey(o, a)).second) continue;
    fresh.push_back({o, a});
  }
  uint64_t added = fresh.size();
  Build(std::move(fresh));
  return added;
}

bool BaselineRelation::RemovePair(uint32_t o, uint32_t a) {
  if (o >= max_objects_ || a >= max_labels_) return false;
  auto [l, r] = SRange(o);
  auto [kl, kr] = s_.RankPair(a, l, r);  // one descent for both boundaries
  if (kl == kr) return false;
  uint64_t pos = s_.Select(a, kl);
  n_.Erase(n_.Select1(pos));
  s_.Erase(pos);
  return true;
}

bool BaselineRelation::Related(uint32_t o, uint32_t a) const {
  if (o >= max_objects_ || a >= max_labels_) return false;
  auto [l, r] = SRange(o);
  auto [kl, kr] = s_.RankPair(a, l, r);
  return kr > kl;
}

void BaselineRelation::ExportLivePairs(
    std::vector<std::pair<uint32_t, uint32_t>>* out) const {
  const std::size_t before = out->size();
  std::vector<Pair> pairs;
  ExportPairs(&pairs);
  out->reserve(before + pairs.size());
  for (const Pair& p : pairs) out->push_back({p.object, p.label});
  std::sort(out->begin() + static_cast<int64_t>(before), out->end());
}

}  // namespace dyndex
