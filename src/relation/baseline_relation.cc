#include "relation/baseline_relation.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace dyndex {

BaselineRelation::BaselineRelation(uint32_t max_objects, uint32_t max_labels)
    : s_(max_labels == 0 ? 1 : max_labels),
      max_objects_(max_objects),
      max_labels_(max_labels) {
  DYNDEX_CHECK(max_objects >= 1);
  // N starts as one 0 per object (every object initially unrelated).
  n_.AppendRun(false, max_objects);
}

BaselineRelation::BaselineRelation(uint32_t max_objects, uint32_t max_labels,
                                   std::vector<Pair> pairs)
    : BaselineRelation(max_objects, max_labels) {
  Build(std::move(pairs));
}

void BaselineRelation::Build(std::vector<Pair> pairs) {
  std::sort(pairs.begin(), pairs.end());
  // S = labels listed object by object, loaded through the wavelet-tree bulk
  // constructor; N = 1^{deg(0)} 0 1^{deg(1)} 0 ... packed into words and
  // bulk-loaded in one pass.
  std::vector<uint32_t> labels;
  labels.reserve(pairs.size());
  uint64_t nbits = pairs.size() + max_objects_;
  std::vector<uint64_t> nwords((nbits + 63) / 64, 0);
  uint64_t bit = 0;
  uint64_t next = 0;
  for (uint32_t o = 0; o < max_objects_; ++o) {
    while (next < pairs.size() && pairs[next].object == o) {
      DYNDEX_CHECK(pairs[next].label < max_labels_);
      labels.push_back(pairs[next].label);
      nwords[bit >> 6] |= 1ull << (bit & 63);
      ++bit;
      ++next;
    }
    ++bit;  // the 0 terminating object o's run
  }
  DYNDEX_CHECK(next == pairs.size());  // all objects within range
  s_ = DynamicWaveletTree(max_labels_ == 0 ? 1 : max_labels_,
                          std::move(labels));
  n_.Build(nwords.data(), nbits);
}

bool BaselineRelation::AddPair(uint32_t o, uint32_t a) {
  DYNDEX_CHECK(o < max_objects_ && a < max_labels_);
  if (Related(o, a)) return false;
  auto [l, r] = SRange(o);
  (void)l;
  s_.Insert(r, a);
  // Insert the pair's 1-bit just before object o's terminating 0.
  n_.Insert(n_.Select0(o), true);
  return true;
}

uint64_t BaselineRelation::AddPairsBulk(
    const std::vector<std::pair<uint32_t, uint32_t>>& ps) {
  if (num_pairs() != 0) {
    uint64_t added = 0;
    for (auto [o, a] : ps) added += AddPair(o, a);
    return added;
  }
  std::vector<Pair> fresh;
  fresh.reserve(ps.size());
  std::unordered_set<uint64_t> seen;
  seen.reserve(ps.size());
  for (auto [o, a] : ps) {
    DYNDEX_CHECK(o < max_objects_ && a < max_labels_);
    if (!seen.insert(PairKey(o, a)).second) continue;
    fresh.push_back({o, a});
  }
  uint64_t added = fresh.size();
  Build(std::move(fresh));
  return added;
}

bool BaselineRelation::RemovePair(uint32_t o, uint32_t a) {
  DYNDEX_CHECK(o < max_objects_ && a < max_labels_);
  auto [l, r] = SRange(o);
  auto [kl, kr] = s_.RankPair(a, l, r);  // one descent for both boundaries
  if (kl == kr) return false;
  uint64_t pos = s_.Select(a, kl);
  n_.Erase(n_.Select1(pos));
  s_.Erase(pos);
  return true;
}

bool BaselineRelation::Related(uint32_t o, uint32_t a) const {
  auto [l, r] = SRange(o);
  auto [kl, kr] = s_.RankPair(a, l, r);
  return kr > kl;
}

}  // namespace dyndex
