#include "relation/baseline_relation.h"

#include "util/check.h"

namespace dyndex {

BaselineRelation::BaselineRelation(uint32_t max_objects, uint32_t max_labels)
    : s_(max_labels == 0 ? 1 : max_labels),
      max_objects_(max_objects),
      max_labels_(max_labels) {
  DYNDEX_CHECK(max_objects >= 1);
  // N starts as one 0 per object (every object initially unrelated).
  for (uint32_t o = 0; o < max_objects; ++o) n_.PushBack(false);
}

bool BaselineRelation::AddPair(uint32_t o, uint32_t a) {
  DYNDEX_CHECK(o < max_objects_ && a < max_labels_);
  if (Related(o, a)) return false;
  auto [l, r] = SRange(o);
  (void)l;
  s_.Insert(r, a);
  // Insert the pair's 1-bit just before object o's terminating 0.
  n_.Insert(n_.Select0(o), true);
  return true;
}

bool BaselineRelation::RemovePair(uint32_t o, uint32_t a) {
  DYNDEX_CHECK(o < max_objects_ && a < max_labels_);
  auto [l, r] = SRange(o);
  uint64_t k = s_.Rank(a, l);
  if (k >= s_.Count(a)) return false;
  uint64_t pos = s_.Select(a, k);
  if (pos >= r) return false;
  n_.Erase(n_.Select1(pos));
  s_.Erase(pos);
  return true;
}

bool BaselineRelation::Related(uint32_t o, uint32_t a) const {
  auto [l, r] = SRange(o);
  return s_.Rank(a, r) > s_.Rank(a, l);
}

}  // namespace dyndex
