// Dynamic directed graph as a binary relation between nodes (Theorem 3):
// an edge u -> v relates object u to label v, so out-neighbors are "labels of
// object u", in-neighbors (reverse neighbors) are "objects of label v", and
// adjacency is pair membership.
#ifndef DYNDEX_RELATION_DYNAMIC_GRAPH_H_
#define DYNDEX_RELATION_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "relation/dynamic_relation.h"

namespace dyndex {

/// Compressed dynamic digraph over uint32 node ids.
class DynamicGraph {
 public:
  explicit DynamicGraph(const DynamicRelationOptions& opt =
                            DynamicRelationOptions())
      : rel_(opt) {}

  /// Adds edge u -> v. Returns false if already present.
  bool AddEdge(uint32_t u, uint32_t v) { return rel_.AddPair(u, v); }

  /// Adds a batch of edges in one bulk relation load (cold-start batches
  /// build one compressed sub-collection); returns how many were new.
  uint64_t AddEdgesBulk(const std::vector<std::pair<uint32_t, uint32_t>>& es) {
    return rel_.AddPairsBulk(es);
  }

  /// Removes edge u -> v. Returns false if absent.
  bool RemoveEdge(uint32_t u, uint32_t v) { return rel_.RemovePair(u, v); }

  /// Is there an edge u -> v?
  bool HasEdge(uint32_t u, uint32_t v) const { return rel_.Related(u, v); }

  /// fn(v) for every edge u -> v.
  template <typename Fn>
  void ForEachOutNeighbor(uint32_t u, Fn fn) const {
    rel_.ForEachLabelOfObject(u, fn);
  }

  /// fn(w) for every edge w -> v (reverse neighbors).
  template <typename Fn>
  void ForEachInNeighbor(uint32_t v, Fn fn) const {
    rel_.ForEachObjectOfLabel(v, fn);
  }

  std::vector<uint32_t> OutNeighbors(uint32_t u) const {
    std::vector<uint32_t> out;
    ForEachOutNeighbor(u, [&](uint32_t v) { out.push_back(v); });
    return out;
  }

  std::vector<uint32_t> InNeighbors(uint32_t v) const {
    std::vector<uint32_t> out;
    ForEachInNeighbor(v, [&](uint32_t u) { out.push_back(u); });
    return out;
  }

  uint64_t OutDegree(uint32_t u) const { return rel_.CountLabelsOf(u); }
  uint64_t InDegree(uint32_t v) const { return rel_.CountObjectsOf(v); }
  uint64_t num_edges() const { return rel_.num_pairs(); }

  uint64_t SpaceBytes() const { return rel_.SpaceBytes(); }

  /// Copies every live edge (sorted) — the snapshot-export path.
  void ExportLiveEdges(std::vector<std::pair<uint32_t, uint32_t>>* out) const {
    rel_.ExportLivePairs(out);
  }

  void CheckInvariants() const { rel_.CheckInvariants(); }

 private:
  DynamicRelation rel_;
};

}  // namespace dyndex

#endif  // DYNDEX_RELATION_DYNAMIC_GRAPH_H_
