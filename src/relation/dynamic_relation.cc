#include "relation/dynamic_relation.h"

#include <algorithm>
#include <cmath>

#include "util/bits.h"
#include "util/check.h"

namespace dyndex {

DynamicRelation::DynamicRelation(const DynamicRelationOptions& opt)
    : opt_(opt) {}

uint32_t DynamicRelation::Tau() const {
  if (opt_.tau != 0) return opt_.tau;
  // tau = Theta(log log n), the paper's choice for Theorem 2.
  uint32_t logn = BitWidth(std::max<uint64_t>(num_pairs_, 16));
  uint32_t t = BitWidth(logn);
  return t < 3 ? 3 : t;
}

uint64_t DynamicRelation::MaxSize(uint32_t level) const {
  double logn = std::max(
      2.0, std::log2(static_cast<double>(std::max<uint64_t>(nf_, 4))));
  double max0 = std::max(static_cast<double>(opt_.min_c0),
                         2.0 * static_cast<double>(nf_) / (logn * logn));
  double ratio = std::max(2.0, std::pow(logn, opt_.epsilon));
  double v = max0 * std::pow(ratio, level);
  return v > 1e18 ? ~0ull : static_cast<uint64_t>(v);
}

uint32_t DynamicRelation::InternObject(uint32_t object) {
  if (const uint32_t* found = obj_slot_.Find(object)) return *found;
  uint32_t slot;
  if (!free_obj_slots_.empty()) {
    slot = free_obj_slots_.back();
    free_obj_slots_.pop_back();
    slot_obj_[slot] = object;
    obj_pair_count_[slot] = 0;
  } else {
    slot = static_cast<uint32_t>(slot_obj_.size());
    slot_obj_.push_back(object);
    obj_pair_count_.push_back(0);
  }
  obj_slot_[object] = slot;
  return slot;
}

uint32_t DynamicRelation::InternLabel(uint32_t label) {
  if (const uint32_t* found = label_slot_.Find(label)) return *found;
  uint32_t slot;
  if (!free_label_slots_.empty()) {
    slot = free_label_slots_.back();
    free_label_slots_.pop_back();
    slot_label_[slot] = label;
    label_pair_count_[slot] = 0;
  } else {
    slot = static_cast<uint32_t>(slot_label_.size());
    slot_label_.push_back(label);
    label_pair_count_.push_back(0);
  }
  label_slot_[label] = slot;
  return slot;
}

void DynamicRelation::ReleaseObject(uint32_t slot) {
  obj_slot_.Erase(slot_obj_[slot]);
  free_obj_slots_.push_back(slot);
}

void DynamicRelation::ReleaseLabel(uint32_t slot) {
  label_slot_.Erase(slot_label_[slot]);
  free_label_slots_.push_back(slot);
}

// C0 adjacency lists are copy-on-write: in-flight optimistic readers iterate
// the published snapshot, so inserts/removals build a new list and Store() it
// (the old one is parked for the grace period). Amortized cost stays within
// the schedule: C0 holds at most MaxSize(0) pairs before a merge drains it.
void DynamicRelation::C0Add(uint32_t os, uint32_t ls) {
  C0List& by_obj = c0_by_object_[os];
  std::vector<uint32_t> labels = by_obj.Copy();
  labels.push_back(ls);
  by_obj.Store(std::move(labels));
  C0List& by_label = c0_by_label_[ls];
  std::vector<uint32_t> objects = by_label.Copy();
  objects.push_back(os);
  by_label.Store(std::move(objects));
  c0_pairs_set_.insert(Key(os, ls));
  ++c0_pairs_;
}

bool DynamicRelation::C0Remove(uint32_t os, uint32_t ls) {
  if (c0_pairs_set_.erase(Key(os, ls)) == 0) return false;
  auto drop = [](std::vector<uint32_t>& v, uint32_t x) {
    auto it = std::find(v.begin(), v.end(), x);
    DYNDEX_CHECK(it != v.end());
    *it = v.back();
    v.pop_back();
  };
  C0List* by_obj = c0_by_object_.Find(os);
  std::vector<uint32_t> labels = by_obj->Copy();
  drop(labels, ls);
  if (labels.empty()) {
    c0_by_object_.Erase(os);
  } else {
    by_obj->Store(std::move(labels));
  }
  C0List* by_label = c0_by_label_.Find(ls);
  std::vector<uint32_t> objects = by_label->Copy();
  drop(objects, os);
  if (objects.empty()) {
    c0_by_label_.Erase(ls);
  } else {
    by_label->Store(std::move(objects));
  }
  --c0_pairs_;
  return true;
}

bool DynamicRelation::Related(uint32_t object, uint32_t label) const {
  const uint32_t* oi = obj_slot_.Find(object);
  const uint32_t* li = label_slot_.Find(label);
  if (oi == nullptr || li == nullptr) return false;
  uint32_t os = *oi, ls = *li;
  if (C0Related(os, ls)) return true;
  // One load per sub: a concurrent writer nulls retired slots in place, so
  // the pointer must not be re-read mid-traversal (see ForEachLabelOfObject).
  for (const auto& sub_ptr : subs_) {
    const Sub* sub = sub_ptr.get();
    if (sub == nullptr) continue;
    uint32_t lo, la;
    if (!sub->LocalObject(os, &lo) || !sub->LocalLabel(ls, &la)) continue;
    if (sub->rel.Related(lo, la)) return true;
  }
  return false;
}

bool DynamicRelation::AddPair(uint32_t object, uint32_t label) {
  if (Related(object, label)) return false;
  uint32_t os = InternObject(object);
  uint32_t ls = InternLabel(label);
  ++obj_pair_count_[os];
  ++label_pair_count_[ls];
  ++num_pairs_;
  if (nf_ == 0) nf_ = std::max<uint64_t>(num_pairs_, opt_.min_c0);
  if (num_pairs_ < 2 * nf_ && c0_pairs_ + 1 <= MaxSize(0)) {
    C0Add(os, ls);  // hot path: no batch vector
    return true;
  }
  PlaceFresh({{os, ls}});
  return true;
}

uint64_t DynamicRelation::AddPairsBulk(
    const std::vector<std::pair<uint32_t, uint32_t>>& ps) {
  std::vector<Pair> fresh;
  fresh.reserve(ps.size());
  std::unordered_set<uint64_t> batch_seen;
  batch_seen.reserve(ps.size());
  for (auto [object, label] : ps) {
    if (!batch_seen.insert(PairKey(object, label)).second) {
      continue;  // duplicate within the batch
    }
    if (Related(object, label)) continue;          // already present
    fresh.push_back({InternObject(object), InternLabel(label)});
  }
  if (fresh.empty()) return 0;
  for (const Pair& p : fresh) {
    ++obj_pair_count_[p.object];
    ++label_pair_count_[p.label];
  }
  num_pairs_ += fresh.size();
  if (nf_ == 0) nf_ = std::max<uint64_t>(num_pairs_, opt_.min_c0);
  uint64_t added = fresh.size();
  PlaceFresh(std::move(fresh));
  return added;
}

// Routes new pairs per the Transformation-1 schedule. A batch that fits C0
// lands there pairwise; anything larger triggers exactly one merge into the
// smallest level whose capacity holds the prefix — so a cold-start bulk load
// costs one BuildSub over the whole batch instead of |batch| C0 inserts
// cascading through merge after merge.
void DynamicRelation::PlaceFresh(std::vector<Pair> fresh) {
  if (num_pairs_ >= 2 * nf_) {
    for (const Pair& p : fresh) C0Add(p.object, p.label);
    GlobalRebase();
    return;
  }
  if (c0_pairs_ + fresh.size() <= MaxSize(0)) {
    for (const Pair& p : fresh) C0Add(p.object, p.label);
    return;
  }
  // Merge cascade: smallest level j with the prefix fitting below max_j.
  uint64_t prefix = c0_pairs_ + fresh.size();
  for (uint32_t j = 0;; ++j) {
    if (j < subs_.size() && subs_[j] != nullptr) {
      prefix += subs_[j]->rel.live_pairs();
    }
    if (prefix <= MaxSize(j + 1)) {
      MergeThrough(j, std::move(fresh));
      return;
    }
    DYNDEX_CHECK(j <= subs_.size() + 64);
  }
}

bool DynamicRelation::RemovePair(uint32_t object, uint32_t label) {
  const uint32_t* oi = obj_slot_.Find(object);
  const uint32_t* li = label_slot_.Find(label);
  if (oi == nullptr || li == nullptr) return false;
  uint32_t os = *oi, ls = *li;
  bool removed = C0Remove(os, ls);
  if (!removed) {
    for (uint32_t j = 0; j < subs_.size() && !removed; ++j) {
      if (subs_[j] == nullptr) continue;
      uint32_t lo, la;
      if (!subs_[j]->LocalObject(os, &lo) || !subs_[j]->LocalLabel(ls, &la)) {
        continue;
      }
      if (subs_[j]->rel.DeletePair(lo, la)) {
        removed = true;
        PurgeIfNeeded(j);
      }
    }
  }
  if (!removed) return false;
  --num_pairs_;
  if (--obj_pair_count_[os] == 0) ReleaseObject(os);
  if (--label_pair_count_[ls] == 0) ReleaseLabel(ls);
  if (nf_ > 2 * opt_.min_c0 && num_pairs_ * 2 <= nf_) GlobalRebase();
  return true;
}

uint64_t DynamicRelation::CountLabelsOf(uint32_t object) const {
  const uint32_t* slot = obj_slot_.Find(object);
  if (slot == nullptr) return 0;
  uint32_t os = *slot;
  uint64_t count = 0;
  if (const C0List* box = c0_by_object_.Find(os)) {
    if (const std::vector<uint32_t>* adj = box->Load()) count += adj->size();
  }
  for (const auto& sub_ptr : subs_) {
    const Sub* sub = sub_ptr.get();
    if (sub == nullptr) continue;
    uint32_t lo;
    if (sub->LocalObject(os, &lo)) count += sub->rel.CountLabelsOf(lo);
  }
  return count;
}

uint64_t DynamicRelation::CountObjectsOf(uint32_t label) const {
  const uint32_t* slot = label_slot_.Find(label);
  if (slot == nullptr) return 0;
  uint32_t ls = *slot;
  uint64_t count = 0;
  if (const C0List* box = c0_by_label_.Find(ls)) {
    if (const std::vector<uint32_t>* adj = box->Load()) count += adj->size();
  }
  for (const auto& sub_ptr : subs_) {
    const Sub* sub = sub_ptr.get();
    if (sub == nullptr) continue;
    uint32_t la;
    if (sub->LocalLabel(ls, &la)) count += sub->rel.CountObjectsOf(la);
  }
  return count;
}

uint32_t DynamicRelation::num_subcollections() const {
  uint32_t n = 0;
  for (const auto& s : subs_) n += s.get() != nullptr;
  return n;
}

std::unique_ptr<DynamicRelation::Sub> DynamicRelation::BuildSub(
    const std::vector<Pair>& slot_pairs) const {
  auto sub = std::make_unique<Sub>();
  // Effective alphabets: presence bitmaps over global slot space.
  uint32_t max_obj = 0, max_label = 0;
  for (const Pair& p : slot_pairs) {
    max_obj = std::max(max_obj, p.object + 1);
    max_label = std::max(max_label, p.label + 1);
  }
  BitVector ob(max_obj), lb(max_label);
  for (const Pair& p : slot_pairs) {
    ob.Set(p.object, true);
    lb.Set(p.label, true);
  }
  sub->objects.Build(std::move(ob));
  sub->labels.Build(std::move(lb));
  std::vector<Pair> local;
  local.reserve(slot_pairs.size());
  for (const Pair& p : slot_pairs) {
    local.push_back({static_cast<uint32_t>(sub->objects.Rank1(p.object)),
                     static_cast<uint32_t>(sub->labels.Rank1(p.label))});
  }
  sub->rel = DeletionOnlyRelation(
      std::move(local), static_cast<uint32_t>(sub->objects.ones()),
      static_cast<uint32_t>(sub->labels.ones()));
  return sub;
}

void DynamicRelation::ExportSub(const Sub& sub, std::vector<Pair>* out) const {
  std::vector<Pair> local;
  sub.rel.ExportLivePairs(&local);
  for (const Pair& p : local) {
    out->push_back({sub.GlobalObject(p.object), sub.GlobalLabel(p.label)});
  }
}

void DynamicRelation::MergeThrough(uint32_t j, std::vector<Pair> seed_pairs) {
  std::vector<Pair> pairs = std::move(seed_pairs);
  c0_by_object_.ForEach([&](uint32_t os, const C0List& box) {
    if (const std::vector<uint32_t>* labels = box.Load()) {
      for (uint32_t ls : *labels) pairs.push_back({os, ls});
    }
  });
  c0_by_object_.clear();
  c0_by_label_.clear();
  c0_pairs_set_.clear();
  c0_pairs_ = 0;
  for (uint32_t i = 0; i <= j && i < subs_.size(); ++i) {
    if (subs_[i] != nullptr) {
      ExportSub(*subs_[i], &pairs);
      // Optimistic readers may still be walking the sub: park, don't free.
      Retire(std::move(subs_[i]));
    }
  }
  if (subs_.size() <= j) subs_.resize(j + 1);
  subs_[j] = BuildSub(pairs);
}

void DynamicRelation::PurgeIfNeeded(uint32_t level) {
  Sub* s = subs_[level].get();
  if (s == nullptr || !s->rel.NeedsPurge(Tau())) return;
  std::vector<Pair> pairs;
  ExportSub(*s, &pairs);
  Retire(std::move(subs_[level]));  // readers may still be walking it
  if (!pairs.empty()) subs_[level] = BuildSub(pairs);
}

void DynamicRelation::GlobalRebase() {
  std::vector<Pair> pairs;
  c0_by_object_.ForEach([&](uint32_t os, const C0List& box) {
    if (const std::vector<uint32_t>* labels = box.Load()) {
      for (uint32_t ls : *labels) pairs.push_back({os, ls});
    }
  });
  c0_by_object_.clear();
  c0_by_label_.clear();
  c0_pairs_set_.clear();
  c0_pairs_ = 0;
  for (auto& s : subs_) {
    if (s != nullptr) {
      ExportSub(*s, &pairs);
      Retire(std::move(s));  // readers may still be walking it
    }
  }
  subs_.clear();
  nf_ = std::max<uint64_t>(pairs.size(), opt_.min_c0);
  if (pairs.empty()) return;
  if (pairs.size() <= MaxSize(0)) {
    for (const Pair& p : pairs) C0Add(p.object, p.label);
    return;
  }
  uint32_t j = 0;
  while (MaxSize(j + 1) < pairs.size()) ++j;
  subs_.resize(j + 1);
  subs_[j] = BuildSub(pairs);
}

uint64_t DynamicRelation::SpaceBytes() const {
  uint64_t total = 0;
  for (const auto& sub_ptr : subs_) {
    const Sub* s = sub_ptr.get();
    if (s == nullptr) continue;
    total += s->rel.SpaceBytes() + s->objects.SpaceBytes() +
             s->labels.SpaceBytes() + sizeof(Sub);
  }
  // C0 buffers: the adjacency vectors' heap capacity hanging off both hash
  // maps, the map nodes/buckets themselves, and the pair-membership set.
  auto c0_bytes = [&](uint32_t, const C0List& box) {
    if (const std::vector<uint32_t>* v = box.Load()) {
      total += sizeof(std::vector<uint32_t>) + v->capacity() * sizeof(uint32_t);
    }
  };
  c0_by_object_.ForEach(c0_bytes);
  c0_by_label_.ForEach(c0_bytes);
  total += c0_by_object_.MemoryBytes() + c0_by_label_.MemoryBytes() +
           c0_pairs_set_.MemoryBytes();
  // Slot registries: SN/NS id<->slot maps, dense side tables, free lists.
  total += obj_slot_.MemoryBytes() + label_slot_.MemoryBytes();
  total += (slot_obj_.capacity() + slot_label_.capacity() +
            obj_pair_count_.capacity() + label_pair_count_.capacity() +
            free_obj_slots_.capacity() + free_label_slots_.capacity()) *
           sizeof(uint32_t);
  return total;
}

void DynamicRelation::ExportLivePairs(
    std::vector<std::pair<uint32_t, uint32_t>>* out) const {
  const std::size_t before = out->size();
  obj_slot_.ForEach([&](uint32_t object, uint32_t) {
    ForEachLabelOfObject(object,
                         [&](uint32_t label) { out->push_back({object, label}); });
  });
  // Hash order is an implementation detail; exported state is sorted.
  std::sort(out->begin() + static_cast<int64_t>(before), out->end());
}

void DynamicRelation::CheckInvariants() const {
  uint64_t pairs = c0_pairs_;
  for (const auto& sub_ptr : subs_) {
    const Sub* s = sub_ptr.get();
    if (s != nullptr) pairs += s->rel.live_pairs();
  }
  DYNDEX_CHECK(pairs == num_pairs_);
  DYNDEX_CHECK(c0_pairs_set_.size() == c0_pairs_);
  for (const auto& sub_ptr : subs_) {
    const Sub* s = sub_ptr.get();
    if (s != nullptr) DYNDEX_CHECK(!s->rel.NeedsPurge(Tau()));
  }
}

}  // namespace dyndex
