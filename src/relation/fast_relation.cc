#include "relation/fast_relation.h"

#include <algorithm>

namespace dyndex {
namespace fast_internal {
namespace {

/// Smallest power of two >= n (and >= 16, the minimum hash capacity).
uint32_t HashCapacityFor(uint32_t live) {
  uint64_t want = std::max<uint64_t>(16, static_cast<uint64_t>(live) * 2);
  uint64_t cap = 16;
  while (cap < want) cap <<= 1;
  DYNDEX_CHECK(cap <= (1ull << 31));
  return static_cast<uint32_t>(cap);
}

}  // namespace

std::vector<uint32_t> AdjSet::LiveSorted() const {
  std::vector<uint32_t> out;
  out.reserve(size());
  ForEach([&out](uint32_t v) { out.push_back(v); });
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<AdjSet::Rep> AdjSet::BuildSorted(
    const std::vector<uint32_t>& ids) const {
  auto rep = std::make_unique<Rep>(static_cast<uint32_t>(ids.size()),
                                   /*hashed_mode=*/false);
  for (uint32_t i = 0; i < ids.size(); ++i) {
    rep->slots[i].store(ids[i], std::memory_order_relaxed);
  }
  return rep;
}

std::unique_ptr<AdjSet::Rep> AdjSet::BuildHashed(
    const std::vector<uint32_t>& ids, uint32_t extra_capacity_for) const {
  auto rep = std::make_unique<Rep>(
      HashCapacityFor(static_cast<uint32_t>(ids.size()) + extra_capacity_for),
      /*hashed_mode=*/true);
  for (uint32_t v : ids) HashedPlace(rep.get(), v);
  return rep;
}

void AdjSet::HashedPlace(Rep* r, uint32_t id) {
  const uint32_t mask = r->capacity() - 1;
  uint32_t idx = static_cast<uint32_t>(Mix(id)) & mask;
  while (r->slots[idx].load(std::memory_order_relaxed) != kEmptySlot) {
    idx = (idx + 1) & mask;
  }
  // Fresh Reps are published wholesale (release store of the Rep pointer),
  // so relaxed is enough while building.
  r->slots[idx].store(id, std::memory_order_relaxed);
}

bool AdjSet::Insert(uint32_t id, uint32_t inline_threshold) {
  DYNDEX_CHECK(id <= kMaxId);
  Rep* r = owner_.get();
  const uint32_t n = size();
  if (r == nullptr || !r->hashed) {
    if (r != nullptr && Contains(id)) return false;
    std::vector<uint32_t> live = r == nullptr ? std::vector<uint32_t>{}
                                              : LiveSorted();
    live.insert(std::upper_bound(live.begin(), live.end(), id), id);
    if (live.size() <= inline_threshold) {
      Install(BuildSorted(live));
    } else {
      Install(BuildHashed(live, 0));
      used_ = static_cast<uint32_t>(live.size());
    }
    size_.store(n + 1, std::memory_order_relaxed);
    return true;
  }
  // Hash mode: probe for membership, remembering the first reusable slot.
  const uint32_t mask = r->capacity() - 1;
  uint32_t idx = static_cast<uint32_t>(Mix(id)) & mask;
  uint32_t target = kEmptySlot;  // slot index to write, if absent
  bool target_is_tombstone = false;
  for (;;) {
    uint32_t v = r->slots[idx].load(std::memory_order_relaxed);
    if (v == id) return false;
    if (v == kTombstoneSlot && target == kEmptySlot) {
      target = idx;
      target_is_tombstone = true;
    }
    if (v == kEmptySlot) {
      if (target == kEmptySlot) target = idx;
      break;
    }
    idx = (idx + 1) & mask;
  }
  if (!target_is_tombstone && (used_ + 1) * 4 > r->capacity() * 3) {
    // Rebuild at the live size: clears tombstones, doubles if genuinely full.
    std::vector<uint32_t> live = LiveSorted();
    live.push_back(id);
    Install(BuildHashed(live, 0));
    used_ = static_cast<uint32_t>(live.size());
  } else {
    r->slots[target].store(id, std::memory_order_release);
    if (!target_is_tombstone) ++used_;
  }
  size_.store(n + 1, std::memory_order_relaxed);
  return true;
}

bool AdjSet::Erase(uint32_t id, uint32_t inline_threshold) {
  Rep* r = owner_.get();
  if (r == nullptr) return false;
  const uint32_t n = size();
  if (!r->hashed) {
    if (!Contains(id)) return false;
    if (n == 1) {
      rep_.store(nullptr, std::memory_order_release);
      Retire(std::move(owner_));
    } else {
      std::vector<uint32_t> live = LiveSorted();
      live.erase(std::lower_bound(live.begin(), live.end(), id));
      Install(BuildSorted(live));
    }
    size_.store(n - 1, std::memory_order_relaxed);
    return true;
  }
  const uint32_t mask = r->capacity() - 1;
  uint32_t idx = static_cast<uint32_t>(Mix(id)) & mask;
  for (;;) {
    uint32_t v = r->slots[idx].load(std::memory_order_relaxed);
    if (v == kEmptySlot) return false;
    if (v == id) break;
    idx = (idx + 1) & mask;
  }
  r->slots[idx].store(kTombstoneSlot, std::memory_order_release);
  size_.store(n - 1, std::memory_order_relaxed);
  if (n - 1 < inline_threshold / 2) {
    // Shrunk well below the promotion point: demote to a sorted array.
    std::vector<uint32_t> live = LiveSorted();
    if (live.empty()) {
      rep_.store(nullptr, std::memory_order_release);
      Retire(std::move(owner_));
    } else {
      Install(BuildSorted(live));
    }
    used_ = 0;
  }
  return true;
}

void AdjSet::InsertBulk(const uint32_t* ids, uint32_t n,
                        uint32_t inline_threshold) {
  if (n == 0) return;
  DYNDEX_CHECK(ids[n - 1] <= kMaxId);
  const uint32_t old = size();
  const uint64_t final_size = static_cast<uint64_t>(old) + n;
  DYNDEX_CHECK(final_size <= kMaxId + 1ull);
  std::vector<uint32_t> live = LiveSorted();
  // Callers guarantee `ids` sorted, unique, disjoint from current members.
  std::vector<uint32_t> merged(live.size() + n);
  std::merge(live.begin(), live.end(), ids, ids + n, merged.begin());
  if (merged.size() <= inline_threshold) {
    Install(BuildSorted(merged));
  } else {
    Install(BuildHashed(merged, 0));
    used_ = static_cast<uint32_t>(merged.size());
  }
  size_.store(static_cast<uint32_t>(final_size), std::memory_order_relaxed);
}

void AdjSet::CheckInvariants(uint32_t inline_threshold) const {
  const Rep* r = rep_.load(std::memory_order_acquire);
  DYNDEX_CHECK(r == owner_.get());
  if (r == nullptr) {
    DYNDEX_CHECK(size() == 0);
    return;
  }
  uint32_t live = 0;
  uint32_t prev = 0;
  bool first = true;
  for (uint32_t i = 0; i < r->capacity(); ++i) {
    uint32_t v = r->slots[i].load(std::memory_order_relaxed);
    if (!r->hashed) {
      DYNDEX_CHECK(v <= kMaxId);
      DYNDEX_CHECK(first || v > prev);  // strictly ascending
      prev = v;
      first = false;
      ++live;
    } else if (v < kTombstoneSlot) {
      ++live;
    }
  }
  DYNDEX_CHECK(live == size());
  if (!r->hashed) {
    DYNDEX_CHECK(r->capacity() == size());
    DYNDEX_CHECK(size() <= inline_threshold);
  } else {
    DYNDEX_CHECK((r->capacity() & (r->capacity() - 1)) == 0);
    DYNDEX_CHECK(used_ >= live && used_ <= r->capacity());
  }
  // Every member must be findable through the probe path.
  ForEach([this](uint32_t v) { DYNDEX_CHECK(Contains(v)); });
}

AdjSet& PageDir::GetOrCreate(uint32_t id) {
  DYNDEX_CHECK(id <= kMaxId);
  const uint32_t p = id >> kPageBits;
  Table* t = owner_.get();
  if (t == nullptr || p >= t->pages.size()) {
    const uint32_t old = t == nullptr ? 0
                                      : static_cast<uint32_t>(t->pages.size());
    constexpr uint32_t kMaxPages = (kMaxId >> kPageBits) + 1;
    uint32_t want = std::max(p + 1, std::min(old * 2, kMaxPages));
    want = std::max<uint32_t>(want, 8);
    auto next = std::make_unique<Table>(want);
    for (uint32_t i = 0; i < old; ++i) {
      next->pages[i].store(t->pages[i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }
    table_.store(next.get(), std::memory_order_release);
    if (owner_ != nullptr) Retire(std::move(owner_));
    owner_ = std::move(next);
    t = owner_.get();
  }
  Page* page = t->pages[p].load(std::memory_order_relaxed);
  if (page == nullptr) {
    pages_.push_back(std::make_unique<Page>());
    page = pages_.back().get();
    t->pages[p].store(page, std::memory_order_release);
  }
  std::atomic<AdjSet*>& slot = page->slots[id & (kPageSize - 1)];
  AdjSet* set = slot.load(std::memory_order_relaxed);
  if (set == nullptr) {
    sets_.push_back(std::make_unique<AdjSet>());
    set = sets_.back().get();
    slot.store(set, std::memory_order_release);
  }
  return *set;
}

uint64_t PageDir::SpaceBytes() const {
  uint64_t bytes = sizeof(PageDir);
  bytes += pages_.capacity() * sizeof(std::unique_ptr<Page>);
  bytes += sets_.capacity() * sizeof(std::unique_ptr<AdjSet>);
  const Table* t = table_.load(std::memory_order_acquire);
  if (t == nullptr) return bytes;
  bytes += sizeof(Table) + t->pages.size() * sizeof(std::atomic<Page*>);
  for (uint32_t p = 0; p < t->pages.size(); ++p) {
    const Page* page = t->pages[p].load(std::memory_order_acquire);
    if (page == nullptr) continue;
    bytes += sizeof(Page);
    for (const auto& slot : page->slots) {
      const AdjSet* set = slot.load(std::memory_order_acquire);
      if (set != nullptr) bytes += sizeof(AdjSet) + set->RepBytes();
    }
  }
  return bytes;
}

}  // namespace fast_internal

bool FastRelation::AddPair(uint32_t object, uint32_t label) {
  DYNDEX_CHECK(object <= fast_internal::kMaxId &&
               label <= fast_internal::kMaxId);
  if (!forward_.GetOrCreate(object).Insert(label, opt_.inline_threshold)) {
    return false;
  }
  bool fresh = reverse_.GetOrCreate(label).Insert(object,
                                                  opt_.inline_threshold);
  DYNDEX_CHECK(fresh);  // mirror invariant
  ++num_pairs_;
  return true;
}

bool FastRelation::RemovePair(uint32_t object, uint32_t label) {
  fast_internal::AdjSet* fwd =
      const_cast<fast_internal::AdjSet*>(forward_.Find(object));
  if (fwd == nullptr || !fwd->Erase(label, opt_.inline_threshold)) {
    return false;
  }
  fast_internal::AdjSet* rev =
      const_cast<fast_internal::AdjSet*>(reverse_.Find(label));
  DYNDEX_CHECK(rev != nullptr &&
               rev->Erase(object, opt_.inline_threshold));  // mirror
  --num_pairs_;
  return true;
}

uint64_t FastRelation::AddPairsBulk(
    const std::vector<std::pair<uint32_t, uint32_t>>& ps) {
  std::vector<std::pair<uint32_t, uint32_t>> fresh;
  fresh.reserve(ps.size());
  for (const auto& [o, l] : ps) {
    DYNDEX_CHECK(o <= fast_internal::kMaxId && l <= fast_internal::kMaxId);
    if (!Related(o, l)) fresh.emplace_back(o, l);
  }
  std::sort(fresh.begin(), fresh.end());
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
  if (fresh.empty()) return 0;
  // One InsertBulk per touched set, at its final size: group by object for
  // the forward direction...
  std::vector<uint32_t> ids;
  for (size_t i = 0; i < fresh.size();) {
    const uint32_t object = fresh[i].first;
    ids.clear();
    for (; i < fresh.size() && fresh[i].first == object; ++i) {
      ids.push_back(fresh[i].second);
    }
    forward_.GetOrCreate(object).InsertBulk(
        ids.data(), static_cast<uint32_t>(ids.size()), opt_.inline_threshold);
  }
  // ...then regroup by label for the mirror.
  std::sort(fresh.begin(), fresh.end(),
            [](const std::pair<uint32_t, uint32_t>& a,
               const std::pair<uint32_t, uint32_t>& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  for (size_t i = 0; i < fresh.size();) {
    const uint32_t label = fresh[i].second;
    ids.clear();
    for (; i < fresh.size() && fresh[i].second == label; ++i) {
      ids.push_back(fresh[i].first);
    }
    reverse_.GetOrCreate(label).InsertBulk(
        ids.data(), static_cast<uint32_t>(ids.size()), opt_.inline_threshold);
  }
  num_pairs_ += fresh.size();
  return fresh.size();
}

uint64_t FastRelation::SpaceBytes() const {
  return sizeof(FastRelation) + forward_.SpaceBytes() + reverse_.SpaceBytes();
}

void FastRelation::ExportLivePairs(
    std::vector<std::pair<uint32_t, uint32_t>>* out) const {
  out->clear();
  out->reserve(num_pairs_);
  forward_.ForEachSet([out](uint32_t object, const fast_internal::AdjSet& s) {
    s.ForEach([out, object](uint32_t label) { out->emplace_back(object, label); });
  });
  std::sort(out->begin(), out->end());
}

void FastRelation::CheckInvariants() const {
  uint64_t forward_pairs = 0;
  forward_.ForEachSet(
      [&](uint32_t object, const fast_internal::AdjSet& s) {
        s.CheckInvariants(opt_.inline_threshold);
        forward_pairs += s.size();
        s.ForEach([&](uint32_t label) {
          const fast_internal::AdjSet* rev = reverse_.Find(label);
          DYNDEX_CHECK(rev != nullptr && rev->Contains(object));
        });
      });
  uint64_t reverse_pairs = 0;
  reverse_.ForEachSet(
      [&](uint32_t label, const fast_internal::AdjSet& s) {
        s.CheckInvariants(opt_.inline_threshold);
        reverse_pairs += s.size();
        s.ForEach([&](uint32_t object) {
          const fast_internal::AdjSet* fwd = forward_.Find(object);
          DYNDEX_CHECK(fwd != nullptr && fwd->Contains(label));
        });
      });
  DYNDEX_CHECK(forward_pairs == num_pairs_);
  DYNDEX_CHECK(reverse_pairs == num_pairs_);
}

}  // namespace dyndex
