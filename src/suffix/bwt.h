// Burrows-Wheeler transform helpers built on the suffix array.
#ifndef DYNDEX_SUFFIX_BWT_H_
#define DYNDEX_SUFFIX_BWT_H_

#include <cstdint>
#include <vector>

namespace dyndex {

/// BWT of `text` given its suffix array: bwt[i] = text[(sa[i]+n-1) mod n].
/// The sentinel symbol (0, at text[n-1]) appears exactly once in the output.
std::vector<uint32_t> BwtFromSuffixArray(const std::vector<uint32_t>& text,
                                         const std::vector<uint64_t>& sa);

/// Inverts a BWT produced over a 0-sentinel-terminated text; returns the
/// original text (including the trailing sentinel). Used by tests.
std::vector<uint32_t> InverseBwt(const std::vector<uint32_t>& bwt,
                                 uint32_t sigma);

}  // namespace dyndex

#endif  // DYNDEX_SUFFIX_BWT_H_
