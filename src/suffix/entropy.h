// Empirical entropy statistics (H0, Hk) used by the space-accounting
// benchmarks: the paper's space bounds are stated in terms of nHk, so every
// space report includes the measured entropy bounds next to the actual bytes.
#ifndef DYNDEX_SUFFIX_ENTROPY_H_
#define DYNDEX_SUFFIX_ENTROPY_H_

#include <cstdint>
#include <vector>

namespace dyndex {

/// Zero-order empirical entropy of `text` in bits per symbol.
double EntropyH0(const std::vector<uint32_t>& text);

/// k-th order empirical entropy of `text` in bits per symbol
/// (Hk = sum over contexts w of |T_w|/n * H0(T_w)). k = 0 falls back to H0.
double EntropyHk(const std::vector<uint32_t>& text, uint32_t k);

}  // namespace dyndex

#endif  // DYNDEX_SUFFIX_ENTROPY_H_
