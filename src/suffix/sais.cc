#include "suffix/sais.h"

#include "util/check.h"

namespace dyndex {

namespace {

constexpr int64_t kEmpty = -1;

// Generic SA-IS over a sequence `s` of length n with alphabet [0, K); the
// last element must be the unique smallest ("sentinel") element.
void SaIs(const int64_t* s, int64_t* sa, int64_t n, int64_t K) {
  if (n == 1) {
    sa[0] = 0;
    return;
  }
  // Classify suffixes: true = S-type, false = L-type.
  std::vector<bool> is_s(n);
  is_s[n - 1] = true;
  for (int64_t i = n - 2; i >= 0; --i) {
    is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
  }
  auto is_lms = [&](int64_t i) { return i > 0 && is_s[i] && !is_s[i - 1]; };

  std::vector<int64_t> bkt(K, 0);
  auto bucket_bounds = [&](bool ends) {
    for (int64_t c = 0; c < K; ++c) bkt[c] = 0;
    for (int64_t i = 0; i < n; ++i) ++bkt[s[i]];
    int64_t sum = 0;
    for (int64_t c = 0; c < K; ++c) {
      sum += bkt[c];
      bkt[c] = ends ? sum : sum - bkt[c];
    }
  };

  auto induce = [&]() {
    // Induce L-type suffixes left to right.
    bucket_bounds(/*ends=*/false);
    for (int64_t i = 0; i < n; ++i) {
      int64_t j = sa[i] - 1;
      if (sa[i] != kEmpty && sa[i] > 0 && !is_s[j]) sa[bkt[s[j]]++] = j;
    }
    // Induce S-type suffixes right to left.
    bucket_bounds(/*ends=*/true);
    for (int64_t i = n - 1; i >= 0; --i) {
      int64_t j = sa[i] - 1;
      if (sa[i] != kEmpty && sa[i] > 0 && is_s[j]) sa[--bkt[s[j]]] = j;
    }
  };

  // Stage 1: place LMS suffixes at the ends of their buckets (arbitrary
  // order), then induce.
  for (int64_t i = 0; i < n; ++i) sa[i] = kEmpty;
  bucket_bounds(/*ends=*/true);
  for (int64_t i = 1; i < n; ++i) {
    if (is_lms(i)) sa[--bkt[s[i]]] = i;
  }
  induce();

  // Collect sorted LMS substrings.
  std::vector<int64_t> lms_order;
  lms_order.reserve(n / 2 + 1);
  for (int64_t i = 0; i < n; ++i) {
    if (sa[i] != kEmpty && is_lms(sa[i])) lms_order.push_back(sa[i]);
  }
  int64_t n_lms = static_cast<int64_t>(lms_order.size());

  // Name LMS substrings.
  std::vector<int64_t> name_of(n, kEmpty);
  int64_t names = 0;
  int64_t prev = -1;
  for (int64_t idx = 0; idx < n_lms; ++idx) {
    int64_t cur = lms_order[idx];
    bool differ = prev < 0;
    if (!differ) {
      // Compare LMS substrings starting at prev and cur.
      for (int64_t d = 0;; ++d) {
        if (s[prev + d] != s[cur + d] || is_s[prev + d] != is_s[cur + d]) {
          differ = true;
          break;
        }
        if (d > 0 && (is_lms(prev + d) || is_lms(cur + d))) {
          differ = !(is_lms(prev + d) && is_lms(cur + d));
          break;
        }
      }
    }
    if (differ) {
      ++names;
      prev = cur;
    }
    name_of[cur] = names - 1;
  }

  // Build the reduced problem: names of LMS suffixes in text order.
  std::vector<int64_t> lms_pos;
  lms_pos.reserve(n_lms);
  for (int64_t i = 1; i < n; ++i) {
    if (is_lms(i)) lms_pos.push_back(i);
  }
  std::vector<int64_t> reduced(n_lms);
  for (int64_t i = 0; i < n_lms; ++i) reduced[i] = name_of[lms_pos[i]];

  std::vector<int64_t> lms_sa(n_lms);
  if (names < n_lms) {
    SaIs(reduced.data(), lms_sa.data(), n_lms, names);
  } else {
    for (int64_t i = 0; i < n_lms; ++i) lms_sa[reduced[i]] = i;
  }

  // Stage 2: place LMS suffixes in their now-known order and induce.
  for (int64_t i = 0; i < n; ++i) sa[i] = kEmpty;
  bucket_bounds(/*ends=*/true);
  for (int64_t i = n_lms - 1; i >= 0; --i) {
    int64_t j = lms_pos[lms_sa[i]];
    sa[--bkt[s[j]]] = j;
  }
  induce();
}

}  // namespace

std::vector<uint64_t> BuildSuffixArray(const std::vector<uint32_t>& text,
                                       uint32_t sigma) {
  int64_t n = static_cast<int64_t>(text.size());
  DYNDEX_CHECK(n >= 1);
  DYNDEX_CHECK(text[n - 1] == 0);
  std::vector<int64_t> s(n);
  for (int64_t i = 0; i < n; ++i) {
    DYNDEX_DCHECK(text[i] < sigma);
    DYNDEX_DCHECK(text[i] != 0 || i == n - 1);
    s[i] = text[i];
  }
  std::vector<int64_t> sa(n);
  SaIs(s.data(), sa.data(), n, sigma);
  std::vector<uint64_t> out(n);
  for (int64_t i = 0; i < n; ++i) out[i] = static_cast<uint64_t>(sa[i]);
  return out;
}

}  // namespace dyndex
