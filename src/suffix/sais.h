// SA-IS suffix array construction for integer alphabets, O(n) time.
// The construction backbone of every static index in the library.
#ifndef DYNDEX_SUFFIX_SAIS_H_
#define DYNDEX_SUFFIX_SAIS_H_

#include <cstdint>
#include <vector>

namespace dyndex {

/// Builds the suffix array of `text`.
///
/// Requirements: text is non-empty, its last symbol is 0, 0 occurs nowhere
/// else, and all symbols are < `sigma`. Returns SA with SA[0] = n-1 (the
/// sentinel suffix).
std::vector<uint64_t> BuildSuffixArray(const std::vector<uint32_t>& text,
                                       uint32_t sigma);

}  // namespace dyndex

#endif  // DYNDEX_SUFFIX_SAIS_H_
