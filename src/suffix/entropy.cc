#include "suffix/entropy.h"

#include <cmath>
#include <map>
#include <string>
#include <unordered_map>

namespace dyndex {

namespace {

double H0OfCounts(const std::unordered_map<uint32_t, uint64_t>& counts,
                  uint64_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto& [sym, c] : counts) {
    (void)sym;
    if (c == 0) continue;
    double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

double EntropyH0(const std::vector<uint32_t>& text) {
  std::unordered_map<uint32_t, uint64_t> counts;
  for (uint32_t c : text) ++counts[c];
  return H0OfCounts(counts, text.size());
}

double EntropyHk(const std::vector<uint32_t>& text, uint32_t k) {
  if (k == 0) return EntropyH0(text);
  if (text.size() <= k) return 0.0;
  // Group symbols by their preceding k-symbol context.
  std::map<std::u32string, std::unordered_map<uint32_t, uint64_t>> by_context;
  std::map<std::u32string, uint64_t> context_total;
  std::u32string ctx;
  for (uint64_t i = k; i < text.size(); ++i) {
    ctx.clear();
    for (uint64_t j = i - k; j < i; ++j) ctx.push_back(text[j]);
    ++by_context[ctx][text[i]];
    ++context_total[ctx];
  }
  double total_bits = 0.0;
  for (const auto& [c, dist] : by_context) {
    uint64_t t = context_total[c];
    total_bits += static_cast<double>(t) * H0OfCounts(dist, t);
  }
  return total_bits / static_cast<double>(text.size());
}

}  // namespace dyndex
