#include "suffix/bwt.h"

#include "util/check.h"

namespace dyndex {

std::vector<uint32_t> BwtFromSuffixArray(const std::vector<uint32_t>& text,
                                         const std::vector<uint64_t>& sa) {
  uint64_t n = text.size();
  DYNDEX_CHECK(sa.size() == n);
  std::vector<uint32_t> bwt(n);
  for (uint64_t i = 0; i < n; ++i) {
    bwt[i] = sa[i] == 0 ? text[n - 1] : text[sa[i] - 1];
  }
  return bwt;
}

std::vector<uint32_t> InverseBwt(const std::vector<uint32_t>& bwt,
                                 uint32_t sigma) {
  uint64_t n = bwt.size();
  // C[c] = number of symbols < c.
  std::vector<uint64_t> count(sigma + 1, 0);
  for (uint32_t c : bwt) ++count[c + 1];
  for (uint32_t c = 1; c <= sigma; ++c) count[c] += count[c - 1];
  // LF mapping.
  std::vector<uint64_t> lf(n);
  std::vector<uint64_t> seen(sigma, 0);
  for (uint64_t i = 0; i < n; ++i) {
    lf[i] = count[bwt[i]] + seen[bwt[i]];
    ++seen[bwt[i]];
  }
  // Walk backwards from the sentinel row (row 0 holds the suffix "0"; its BWT
  // symbol is the last real symbol of the text).
  std::vector<uint32_t> text(n);
  text[n - 1] = 0;
  uint64_t row = 0;
  for (uint64_t k = 1; k < n; ++k) {
    text[n - 1 - k] = bwt[row];
    row = lf[row];
  }
  return text;
}

}  // namespace dyndex
