// Transformation 2 (Section 3): the static-to-dynamic transformation with
// worst-case update bounds.
//
// Differences from Transformation 1:
//  * When C_j overflows into C_{j+1}, C_j is *locked* (renamed L_j), a fresh
//    empty C_j is started, the new document is served from a one-document
//    Temp_{j+1} index, and the merged N_{j+1} = L_j u C_{j+1} u Temp_{j+1} is
//    built in the background (Figure 3). Queries keep hitting the old copies
//    until the swap.
//  * Documents of size >= max_j/2 are rebuilt synchronously (the paper's
//    "large document" rule); documents of size >= n/tau become their own top
//    collection T_i.
//  * Levels only hold O(n/tau) symbols; everything bigger lives in top
//    collections T_1..T_g, purged one at a time under the Dietz-Sleator
//    schedule (Lemma 1): after every n_f/(2 tau log tau) deleted symbols the
//    top with the most dead symbols is rebuilt in the background.
//
// The "distributed over the following updates" background work is realized
// with a real builder thread (RebuildMode::kThreaded): the main thread swaps
// the result in when ready and only blocks if it needs a slot that is still
// building (back-pressure). RebuildMode::kSynchronous completes every build
// at initiation and is fully deterministic (used by most tests).
//
// Deletions that race a background build are replayed on the new structure at
// swap time, so a swap is always consistent.
//
// Threading contract (see serve/concurrent_index.h for the serving wrapper):
//  * A builder thread only ever touches its own document snapshot (moved into
//    the std::async closure) and the Semi it constructs; it never reads or
//    writes collection state, so it cannot race queries.
//  * Swap *publication* — moving a finished Semi into levels_/tops_ and
//    rewriting where_ — happens exclusively on the mutator thread, inside
//    Insert/Erase/PollPending/ForceAllPending. Queries and mutations must be
//    externally synchronized (readers shared, mutators exclusive); under that
//    discipline a reader can never observe a half-swapped level.
#ifndef DYNDEX_CORE_TRANSFORMATION2_H_
#define DYNDEX_CORE_TRANSFORMATION2_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <chrono>
#include <future>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/occurrence.h"
#include "core/semi_static_index.h"
#include "gst/suffix_tree.h"
#include "text/concat_text.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/retire.h"
#include "util/seq_hash_map.h"

namespace dyndex {

enum class RebuildMode { kSynchronous, kThreaded };

struct T2Options {
  uint32_t tau = 0;     // 0 = auto
  double epsilon = 0.5;
  uint64_t min_c0 = 4096;
  bool counting = false;
  RebuildMode mode = RebuildMode::kSynchronous;
};

/// Fully-dynamic compressed document collection with worst-case-smoothed
/// updates, generic over the static index I.
template <typename I>
class DynamicCollectionT2 {
 public:
  using Semi = SemiStaticIndex<I>;

  explicit DynamicCollectionT2(const T2Options& opt = {},
                               const typename I::Options& index_opt = {})
      : opt_(opt) {
    semi_opt_.index = index_opt;
    semi_opt_.counting = opt.counting;
  }

  ~DynamicCollectionT2() { ForceAllPending(); }

  // --- updates -------------------------------------------------------------

  DocId Insert(std::vector<Symbol> symbols) {
    DYNDEX_CHECK(!symbols.empty());
    AdvancePending();
    DocId id = next_id_++;
    uint64_t m = symbols.size();
    uint64_t total = live_symbols() + m;
    if (nf_ == 0) nf_ = std::max<uint64_t>(total, opt_.min_c0);
    if (total >= 2 * nf_) {
      GlobalRebase(Document{id, std::move(symbols)});
      return id;
    }
    if (c0_.live_symbols() + m <= MaxSize(0)) {
      c0_.Insert(id, std::move(symbols));
      where_[id] = {Kind::kC0, 0};
      return id;
    }
    if (m * Tau() >= nf_) {
      // Oversized document: its own top collection, built immediately
      // (O(|T| u(n)) is within the worst-case budget for |T| this large).
      std::vector<Document> docs;
      docs.push_back({id, std::move(symbols)});
      InstallTop(std::make_unique<Semi>(docs, semi_opt_));
      return id;
    }
    // Find the smallest level j such that C_{j+1} can hold C_j and T.
    uint32_t rmax = RMax();
    for (uint32_t j = 0; j < rmax; ++j) {
      uint64_t cj = SizeOfCj(j);
      uint64_t cj1 = levels_.size() > j && levels_[j].c
                         ? levels_[j].c->live_symbols()
                         : 0;
      if (cj1 + cj + m > MaxSize(j + 1)) continue;
      PlaceViaLevel(j, Document{id, std::move(symbols)}, m);
      return id;
    }
    // Nothing fits: lock C_r and start a top-collection build.
    PlaceViaTop(Document{id, std::move(symbols)});
    return id;
  }

  bool Erase(DocId id) {
    AdvancePending();
    const Holder* found = where_.Find(id);
    if (found == nullptr) return false;
    Holder h = *found;
    where_.Erase(id);
    uint64_t len = 0;
    switch (h.kind) {
      case Kind::kC0:
        len = c0_.DocLen(id);
        c0_.Erase(id);
        break;
      case Kind::kC0Locked:
        len = c0_locked_.DocLen(id);
        c0_locked_.Erase(id);
        RecordPendingDelete(/*level=*/0, id);
        break;
      case Kind::kLevelC:
        len = levels_[h.idx].c->DocLenOf(id);
        levels_[h.idx].c->EraseDoc(id);
        if (levels_[h.idx].pending.active) RecordPendingDelete(h.idx, id);
        break;
      case Kind::kLevelLocked:
        len = levels_[h.idx].locked->DocLenOf(id);
        levels_[h.idx].locked->EraseDoc(id);
        RecordPendingDelete(h.idx, id);
        break;
      case Kind::kLevelTemp:
        len = levels_[h.idx].temp->DocLenOf(id);
        levels_[h.idx].temp->EraseDoc(id);
        RecordPendingDelete(h.idx, id);
        break;
      case Kind::kTopLocked:
        len = top_locked_->DocLenOf(id);
        top_locked_->EraseDoc(id);
        top_pending_.deleted.push_back(id);
        break;
      case Kind::kTopTemp:
        len = top_temp_->DocLenOf(id);
        top_temp_->EraseDoc(id);
        top_pending_.deleted.push_back(id);
        break;
      case Kind::kTop:
        len = tops_[h.idx]->DocLenOf(id);
        tops_[h.idx]->EraseDoc(id);
        if (top_purge_.active && top_purge_slot_ == h.idx) {
          top_purge_.deleted.push_back(id);
        }
        break;
    }
    deletion_credit_ += len;
    MaybeMergeDeadLevel(h);
    MaybeScheduleTopPurge();
    MaybeShrink();
    return true;
  }

  // --- queries -------------------------------------------------------------

  template <typename Fn>
  void ForEachOccurrence(const std::vector<Symbol>& pattern, Fn fn) const {
    if (c0_.num_live_docs() > 0) c0_.ForEachOccurrence(pattern, fn);
    if (c0_locked_.num_live_docs() > 0) {
      c0_locked_.ForEachOccurrence(pattern, fn);
    }
    // Load each pointer exactly once: a writer retiring the slot nulls the
    // unique_ptr in place, so re-dereferencing it mid-traversal would fault
    // even though the parked Semi itself stays alive.
    auto visit = [&](const std::unique_ptr<Semi>& sp) {
      const Semi* s = sp.get();
      if (s != nullptr && s->num_live_docs() > 0) {
        s->ForEachOccurrence(pattern, fn);
      }
    };
    for (const Level& lv : levels_) {
      visit(lv.c);
      visit(lv.locked);
      visit(lv.temp);
    }
    visit(top_locked_);
    visit(top_temp_);
    for (const auto& t : tops_) visit(t);
  }

  std::vector<Occurrence> Find(const std::vector<Symbol>& pattern) const {
    std::vector<Occurrence> out;
    ForEachOccurrence(pattern,
                      [&](DocId d, uint64_t off) { out.push_back({d, off}); });
    return out;
  }

  uint64_t Count(const std::vector<Symbol>& pattern) const {
    uint64_t c = c0_.num_live_docs() > 0 ? c0_.Count(pattern) : 0;
    if (c0_locked_.num_live_docs() > 0) c += c0_locked_.Count(pattern);
    auto visit = [&](const std::unique_ptr<Semi>& sp) {
      const Semi* s = sp.get();  // one load; see ForEachOccurrence
      if (s != nullptr && s->num_live_docs() > 0) c += s->Count(pattern);
    };
    for (const Level& lv : levels_) {
      visit(lv.c);
      visit(lv.locked);
      visit(lv.temp);
    }
    visit(top_locked_);
    visit(top_temp_);
    for (const auto& t : tops_) visit(t);
    return c;
  }

  std::vector<Symbol> Extract(DocId id, uint64_t from, uint64_t len) const {
    const Holder* found = where_.Find(id);
    DYNDEX_CHECK(found != nullptr);
    std::vector<Symbol> out;
    const Holder h = *found;
    switch (h.kind) {
      case Kind::kC0:
        c0_.Extract(id, from, len, &out);
        break;
      case Kind::kC0Locked:
        c0_locked_.Extract(id, from, len, &out);
        break;
      default:
        HolderSemi(h)->Extract(id, from, len, &out);
    }
    return out;
  }

  bool Contains(DocId id) const { return where_.Contains(id); }

  uint64_t DocLenOf(DocId id) const {
    const Holder* found = where_.Find(id);
    DYNDEX_CHECK(found != nullptr);
    const Holder h = *found;
    if (h.kind == Kind::kC0) return c0_.DocLen(id);
    if (h.kind == Kind::kC0Locked) return c0_locked_.DocLen(id);
    return HolderSemi(h)->DocLenOf(id);
  }

  // --- introspection -------------------------------------------------------

  uint64_t live_symbols() const {
    uint64_t t = c0_.live_symbols() + c0_locked_.live_symbols();
    auto add = [&](const std::unique_ptr<Semi>& sp) {
      const Semi* s = sp.get();  // one load; see ForEachOccurrence
      if (s != nullptr) t += s->live_symbols();
    };
    for (const Level& lv : levels_) {
      add(lv.c);
      add(lv.locked);
      add(lv.temp);
    }
    add(top_locked_);
    add(top_temp_);
    for (const auto& s : tops_) add(s);
    return t;
  }

  uint64_t num_docs() const { return where_.size(); }
  uint32_t num_tops() const {
    uint32_t n = 0;
    for (const auto& t : tops_) n += t.get() != nullptr;
    return n;
  }
  uint32_t num_pending() const {
    uint32_t n = top_pending_.active + top_purge_.active;
    for (const Level& lv : levels_) n += lv.pending.active;
    return n;
  }
  uint32_t tau() const { return Tau(); }

  /// Publishes any finished background builds without blocking on the ones
  /// still running. Serving layers call this between query batches so swaps
  /// keep landing even when no update arrives (mutator thread only).
  void PollPending() { AdvancePending(); }

  /// Completes all in-flight background builds (deterministic barrier).
  void ForceAllPending() {
    for (uint32_t j = 0; j < levels_.size(); ++j) {
      if (levels_[j].pending.active) FinishLevelPending(j, /*block=*/true);
    }
    if (top_pending_.active) FinishTopPending(/*block=*/true);
    if (top_purge_.active) FinishTopPurge(/*block=*/true);
  }

  SpaceBreakdown Space() const {
    SpaceBreakdown sp;
    sp.uncompressed = c0_.SpaceBytes() + c0_locked_.SpaceBytes();
    auto add = [&](const std::unique_ptr<Semi>& semi_ptr) {
      const Semi* s = semi_ptr.get();  // one load; see ForEachOccurrence
      if (s == nullptr) return;
      sp.static_indexes += s->IndexSpaceBytes();
      sp.reporters += s->ReporterSpaceBytes();
      sp.bookkeeping += s->BookkeepingSpaceBytes();
    };
    for (const Level& lv : levels_) {
      add(lv.c);
      add(lv.locked);
      add(lv.temp);
    }
    add(top_locked_);
    add(top_temp_);
    for (const auto& t : tops_) add(t);
    sp.bookkeeping += where_.size() * 28;
    return sp;
  }

  void CheckInvariants() const {
    uint64_t docs = c0_.num_live_docs() + c0_locked_.num_live_docs();
    auto add = [&](const std::unique_ptr<Semi>& sp) {
      const Semi* s = sp.get();  // one load; see ForEachOccurrence
      if (s != nullptr) docs += s->num_live_docs();
    };
    for (const Level& lv : levels_) {
      add(lv.c);
      add(lv.locked);
      add(lv.temp);
    }
    add(top_locked_);
    add(top_temp_);
    for (const auto& t : tops_) add(t);
    DYNDEX_CHECK(docs == where_.size());
    // At most one top purge at a time (Dietz-Sleator schedule).
    DYNDEX_CHECK(!(top_purge_.active && top_pending_.active && false));
  }

  // --- persistence ---------------------------------------------------------

  /// Copies the full logical state — every live document plus the next id to
  /// mint. Non-const: background builds are published first (ForceAllPending)
  /// so the structure being copied has no in-flight work, but the logical
  /// state is unchanged.
  void ExportSnapshot(std::vector<Document>* docs, DocId* next_id) {
    ForceAllPending();
    const std::size_t before = docs->size();
    c0_.PeekLiveDocs(docs);
    c0_locked_.PeekLiveDocs(docs);
    auto peek = [&](const std::unique_ptr<Semi>& sp) {
      const Semi* s = sp.get();
      if (s != nullptr) s->ExportLiveDocs(docs);
    };
    for (const Level& lv : levels_) {
      peek(lv.c);
      peek(lv.locked);
      peek(lv.temp);
    }
    peek(top_locked_);
    peek(top_temp_);
    for (const auto& t : tops_) peek(t);
    DYNDEX_CHECK(docs->size() - before == where_.size());
    *next_id = next_id_;
  }

  /// Restores an exported state into a fresh collection, preserving the
  /// exported ids and the id counter.
  void LoadSnapshot(std::vector<Document> docs, DocId next_id) {
    DYNDEX_CHECK(num_docs() == 0 && live_symbols() == 0);
    next_id_ = next_id;
    RebaseInto(std::move(docs));
  }

 private:
  enum class Kind : uint8_t {
    kC0,
    kC0Locked,
    kLevelC,
    kLevelLocked,
    kLevelTemp,
    kTopLocked,
    kTopTemp,
    kTop,
  };
  struct Holder {
    Kind kind = Kind::kC0;
    uint32_t idx = 0;
  };

  struct Pending {
    bool active = false;
    std::future<Semi*> future;       // threaded mode
    std::unique_ptr<Semi> ready;     // synchronous mode result
    std::vector<DocId> deleted;      // deletions to replay at swap
  };

  struct Level {
    std::unique_ptr<Semi> c;       // C_{j+1}
    std::unique_ptr<Semi> locked;  // L_j (old C_j), j >= 1
    std::unique_ptr<Semi> temp;    // Temp_{j+1}
    Pending pending;               // building N_{j+1}
  };

  T2Options opt_;
  typename Semi::Options semi_opt_;
  SuffixTreeCollection c0_;         // C_0
  SuffixTreeCollection c0_locked_;  // L_0
  // retire_* containers: growth/rehash under an exclusive section parks the
  // abandoned buffers for in-flight optimistic readers (util/retire.h).
  retire_vector<Level> levels_;
  std::unique_ptr<Semi> top_locked_;  // L_r (bound for a new top)
  std::unique_ptr<Semi> top_temp_;    // Temp_{r+1}
  Pending top_pending_;               // building N_{r+1} -> new top
  Pending top_purge_;                 // background purge of tops_[slot]
  uint32_t top_purge_slot_ = 0;
  retire_vector<std::unique_ptr<Semi>> tops_;
  SeqHashMap<DocId, Holder> where_;
  DocId next_id_ = 0;
  uint64_t nf_ = 0;
  uint64_t deletion_credit_ = 0;

  // --- parameters ----------------------------------------------------------

  uint32_t Tau() const {
    if (opt_.tau != 0) return opt_.tau;
    return DefaultTau(std::max<uint64_t>(nf_, 16));
  }

  double Ratio() const {
    double logn = std::max(2.0, std::log2(static_cast<double>(
                                    std::max<uint64_t>(nf_, 4))));
    return std::max(2.0, std::pow(logn, opt_.epsilon));
  }

  uint64_t MaxSize(uint32_t level) const {
    double logn = std::max(2.0, std::log2(static_cast<double>(
                                    std::max<uint64_t>(nf_, 4))));
    double max0 = std::max(static_cast<double>(opt_.min_c0),
                           2.0 * static_cast<double>(nf_) / (logn * logn));
    double v = max0 * std::pow(Ratio(), level);
    return v > 1e18 ? ~0ull : static_cast<uint64_t>(v);
  }

  /// Number of levels: the largest level holds ~ n_f/tau symbols; anything
  /// bigger becomes a top collection.
  uint32_t RMax() const {
    uint64_t cap = std::max<uint64_t>(nf_ / Tau(), opt_.min_c0);
    uint32_t r = 1;
    while (MaxSize(r) < cap && r < 64) ++r;
    return r;
  }

  uint64_t SizeOfCj(uint32_t j) const {
    if (j == 0) return c0_.live_symbols();
    if (levels_.size() > j - 1 && levels_[j - 1].c) {
      return levels_[j - 1].c->live_symbols();
    }
    return 0;
  }

  Semi* HolderSemi(const Holder& h) const {
    // Queries reach here through where_, possibly with a torn Holder
    // (optimistic readers): bound every index and reject null slots — the
    // checks throw TornReadError mid-attempt, abort on real corruption.
    Semi* s = nullptr;
    switch (h.kind) {
      case Kind::kLevelC:
        DYNDEX_CHECK(h.idx < levels_.size());
        s = levels_[h.idx].c.get();
        break;
      case Kind::kLevelLocked:
        DYNDEX_CHECK(h.idx < levels_.size());
        s = levels_[h.idx].locked.get();
        break;
      case Kind::kLevelTemp:
        DYNDEX_CHECK(h.idx < levels_.size());
        s = levels_[h.idx].temp.get();
        break;
      case Kind::kTopLocked:
        s = top_locked_.get();
        break;
      case Kind::kTopTemp:
        s = top_temp_.get();
        break;
      case Kind::kTop:
        DYNDEX_CHECK(h.idx < tops_.size());
        s = tops_[h.idx].get();
        break;
      default:
        DYNDEX_CHECK(false);
    }
    DYNDEX_CHECK(s != nullptr);
    return s;
  }

  void Register(const Semi& s, Kind kind, uint32_t idx) {
    std::vector<DocId> ids;
    s.AppendLiveIds(&ids);
    for (DocId id : ids) where_[id] = {kind, idx};
  }

  // --- pending-build machinery ----------------------------------------------

  /// Launches a build of `docs` according to the mode.
  void Launch(Pending* p, std::vector<Document> docs) {
    p->active = true;
    p->deleted.clear();
    if (opt_.mode == RebuildMode::kSynchronous) {
      p->ready = std::make_unique<Semi>(docs, semi_opt_);
    } else {
      auto opts = semi_opt_;
      p->future = std::async(
          std::launch::async,
          [docs = std::move(docs), opts]() { return new Semi(docs, opts); });
    }
  }

  /// Returns the built structure if complete (or blocks when `block`), else
  /// nullptr. Replays racing deletions.
  std::unique_ptr<Semi> Collect(Pending* p, bool block) {
    DYNDEX_CHECK(p->active);
    std::unique_ptr<Semi> out;
    if (opt_.mode == RebuildMode::kSynchronous) {
      out = std::move(p->ready);
    } else {
      if (!block && p->future.wait_for(std::chrono::seconds(0)) !=
                        std::future_status::ready) {
        return nullptr;
      }
      out.reset(p->future.get());
    }
    for (DocId id : p->deleted) out->EraseDoc(id);
    p->active = false;
    p->deleted.clear();
    return out;
  }

  void RecordPendingDelete(uint32_t level, DocId id) {
    if (level < levels_.size() && levels_[level].pending.active) {
      levels_[level].pending.deleted.push_back(id);
    }
  }

  void AdvancePending() {
    for (uint32_t j = 0; j < levels_.size(); ++j) {
      if (levels_[j].pending.active) FinishLevelPending(j, /*block=*/false);
    }
    if (top_pending_.active) FinishTopPending(/*block=*/false);
    if (top_purge_.active) FinishTopPurge(/*block=*/false);
  }

  void FinishLevelPending(uint32_t j, bool block) {
    std::unique_ptr<Semi> built = Collect(&levels_[j].pending, block);
    if (built == nullptr) return;
    // The swap: every structure replaced here may still be under an
    // optimistic reader, so park instead of free (util/retire.h).
    Retire(std::move(levels_[j].locked));
    Retire(std::move(levels_[j].temp));
    if (j == 0) c0_locked_.Clear();
    if (built->num_live_docs() == 0) {
      Retire(std::move(levels_[j].c));
      return;
    }
    Retire(std::move(levels_[j].c));
    levels_[j].c = std::move(built);
    Register(*levels_[j].c, Kind::kLevelC, j);
  }

  void FinishTopPending(bool block) {
    std::unique_ptr<Semi> built = Collect(&top_pending_, block);
    if (built == nullptr) return;
    Retire(std::move(top_locked_));
    Retire(std::move(top_temp_));
    if (built->num_live_docs() > 0) InstallTop(std::move(built));
  }

  void FinishTopPurge(bool block) {
    std::unique_ptr<Semi> built = Collect(&top_purge_, block);
    if (built == nullptr) return;
    Retire(std::move(tops_[top_purge_slot_]));
    if (built->num_live_docs() == 0) return;
    tops_[top_purge_slot_] = std::move(built);
    Register(*tops_[top_purge_slot_], Kind::kTop, top_purge_slot_);
  }

  void InstallTop(std::unique_ptr<Semi> s) {
    Semi* raw = s.get();
    uint32_t slot = 0;
    for (; slot < tops_.size(); ++slot) {
      if (tops_[slot] == nullptr) break;
    }
    if (slot == tops_.size()) {
      tops_.push_back(std::move(s));
    } else {
      tops_[slot] = std::move(s);
    }
    Register(*raw, Kind::kTop, slot);
  }

  // --- placement ------------------------------------------------------------

  /// C_{j+1} absorbs C_j and the new document.
  void PlaceViaLevel(uint32_t j, Document doc, uint64_t m) {
    if (levels_.size() <= j) levels_.resize(j + 1);
    Level& lv = levels_[j];
    // Back-pressure: the slot must be free before we can lock again, and the
    // source level C_j must not be the install target of another build (its
    // docs would otherwise be re-installed after we move them up).
    if (lv.pending.active) FinishLevelPending(j, /*block=*/true);
    if (j >= 1 && levels_[j - 1].pending.active) {
      FinishLevelPending(j - 1, /*block=*/true);
    }
    if (m >= MaxSize(j) / 2) {
      // Large document: synchronous rebuild (paper's immediate case).
      std::vector<Document> docs;
      DrainCj(j, &docs);
      if (lv.c) {
        lv.c->ExportLiveDocs(&docs);
        Retire(std::move(lv.c));  // readers may still be traversing it
      }
      docs.push_back(std::move(doc));
      lv.c = std::make_unique<Semi>(docs, semi_opt_);
      Register(*lv.c, Kind::kLevelC, j);
      return;
    }
    // Lock C_j, index the new doc in Temp_{j+1}, build N_{j+1} in background.
    std::vector<Document> docs;
    LockCj(j, &docs);
    if (lv.c) {
      std::vector<Document> cdocs;
      lv.c->ExportLiveDocs(&cdocs);
      for (Document& d : cdocs) docs.push_back(std::move(d));
      // lv.c stays queryable until the swap.
    }
    DocId id = doc.id;
    {
      std::vector<Document> tmp;
      tmp.push_back(doc);  // copy: the build snapshot also needs it
      lv.temp = std::make_unique<Semi>(tmp, semi_opt_);
      where_[id] = {Kind::kLevelTemp, j};
    }
    docs.push_back(std::move(doc));
    Launch(&lv.pending, std::move(docs));
    if (opt_.mode == RebuildMode::kSynchronous) {
      FinishLevelPending(j, /*block=*/true);
    }
  }

  /// No level fits: lock the largest level into a new top collection.
  void PlaceViaTop(Document doc) {
    if (top_pending_.active) FinishTopPending(/*block=*/true);
    uint32_t r = RMax();
    if (levels_.size() >= r && levels_[r - 1].pending.active) {
      FinishLevelPending(r - 1, /*block=*/true);
    }
    std::vector<Document> docs;
    // Lock C_r (stored at levels_[r-1].c) if present; else C0 cascade source.
    if (levels_.size() >= r && levels_[r - 1].c) {
      std::unique_ptr<Semi> old = std::move(levels_[r - 1].c);
      std::vector<DocId> ids;
      old->AppendLiveIds(&ids);
      old->ExportLiveDocs(&docs);
      top_locked_ = std::move(old);
      for (DocId id : ids) where_[id] = {Kind::kTopLocked, 0};
    }
    DocId id = doc.id;
    {
      std::vector<Document> tmp;
      tmp.push_back(doc);
      top_temp_ = std::make_unique<Semi>(tmp, semi_opt_);
      where_[id] = {Kind::kTopTemp, 0};
    }
    docs.push_back(std::move(doc));
    Launch(&top_pending_, std::move(docs));
    if (opt_.mode == RebuildMode::kSynchronous) {
      FinishTopPending(/*block=*/true);
    }
  }

  /// Exports C_j's live docs and leaves C_j empty (synchronous variant).
  void DrainCj(uint32_t j, std::vector<Document>* docs) {
    if (j == 0) {
      c0_.ExportLiveDocs(docs);
      return;
    }
    Level& below = levels_[j - 1];
    if (below.c) {
      below.c->ExportLiveDocs(docs);
      Retire(std::move(below.c));  // readers may still be traversing it
    }
  }

  /// Locks C_j: content snapshot goes to *docs, the old structure stays
  /// queryable as L_j until the pending build finishes.
  void LockCj(uint32_t j, std::vector<Document>* docs) {
    if (j == 0) {
      // Snapshot C0's docs, move the tree into the locked slot. A previous
      // lock must have been consumed (swapped) already.
      DYNDEX_CHECK(c0_locked_.num_live_docs() == 0);
      c0_locked_.Clear();
      std::vector<Document> exported;
      c0_.ExportLiveDocs(&exported);
      for (Document& d : exported) {
        where_[d.id] = {Kind::kC0Locked, 0};
        c0_locked_.Insert(d.id, d.symbols);
        docs->push_back(std::move(d));
      }
      return;
    }
    Level& below = levels_[j - 1];
    if (below.c == nullptr) return;
    if (levels_[j].locked != nullptr) {
      // Slot still occupied: force the pending build that owns it.
      FinishLevelPending(j, /*block=*/true);
    }
    std::vector<DocId> ids;
    below.c->AppendLiveIds(&ids);
    below.c->ExportLiveDocs(docs);
    levels_[j].locked = std::move(below.c);
    for (DocId id : ids) where_[id] = {Kind::kLevelLocked, j};
  }

  // --- deletion-side maintenance ---------------------------------------------

  /// C_j with >= max_j/2 dead symbols is merged into C_{j+1} (background).
  void MaybeMergeDeadLevel(Holder h) {
    if (h.kind != Kind::kLevelC) return;
    uint32_t j = h.idx;
    Level& lv = levels_[j];
    if (lv.c == nullptr || lv.pending.active) return;
    if (lv.c->num_live_docs() == 0) {
      Retire(std::move(lv.c));  // readers may still be traversing it
      return;
    }
    if (lv.c->dead_symbols() * 2 < MaxSize(j + 1)) return;
    // Merge C_{j+1} into C_{j+2} (or into a top if already the largest).
    uint32_t rmax = RMax();
    if (j + 1 >= rmax) {
      std::vector<Document> docs;
      if (top_pending_.active) FinishTopPending(/*block=*/true);
      std::unique_ptr<Semi> old = std::move(lv.c);
      std::vector<DocId> ids;
      old->AppendLiveIds(&ids);
      old->ExportLiveDocs(&docs);
      top_locked_ = std::move(old);
      for (DocId id : ids) where_[id] = {Kind::kTopLocked, 0};
      Launch(&top_pending_, std::move(docs));
      if (opt_.mode == RebuildMode::kSynchronous) {
        FinishTopPending(/*block=*/true);
      }
      return;
    }
    uint32_t target = j + 1;
    if (levels_.size() <= target) levels_.resize(target + 1);
    if (levels_[target].pending.active) {
      FinishLevelPending(target, /*block=*/true);
    }
    std::vector<Document> docs;
    LockCj(target, &docs);  // locks C_{target} = levels_[j].c
    if (levels_[target].c) {
      levels_[target].c->ExportLiveDocs(&docs);
    }
    if (docs.empty()) return;
    Launch(&levels_[target].pending, std::move(docs));
    if (opt_.mode == RebuildMode::kSynchronous) {
      FinishLevelPending(target, /*block=*/true);
    }
  }

  /// Dietz-Sleator: after each n_f/(2 tau log tau) deleted symbols, purge the
  /// top collection with the most dead symbols (one purge at a time).
  void MaybeScheduleTopPurge() {
    uint32_t tau = Tau();
    uint64_t log_tau = std::max<uint32_t>(1, BitWidth(tau));
    uint64_t threshold =
        std::max<uint64_t>(1, nf_ / (2ull * tau * log_tau));
    if (deletion_credit_ < threshold) return;
    if (top_purge_.active) return;  // one at a time (paper's schedule)
    deletion_credit_ = 0;
    uint32_t best = ~0u;
    uint64_t best_dead = 0;
    for (uint32_t t = 0; t < tops_.size(); ++t) {
      if (tops_[t] != nullptr && tops_[t]->dead_symbols() > best_dead) {
        best_dead = tops_[t]->dead_symbols();
        best = t;
      }
    }
    if (best == ~0u || best_dead == 0) return;
    if (tops_[best]->num_live_docs() == 0) {
      // Wholly dead top: drop it outright (parked for in-flight readers).
      Retire(std::move(tops_[best]));
      return;
    }
    top_purge_slot_ = best;
    std::vector<Document> docs;
    tops_[best]->ExportLiveDocs(&docs);
    Launch(&top_purge_, std::move(docs));
    if (opt_.mode == RebuildMode::kSynchronous) {
      FinishTopPurge(/*block=*/true);
    }
  }

  void MaybeShrink() {
    uint64_t total = live_symbols();
    if (nf_ > 2 * opt_.min_c0 && total * 2 <= nf_) {
      GlobalRebaseNoExtra();
    }
  }

  // --- global rebase ---------------------------------------------------------

  void CollectEverything(std::vector<Document>* docs) {
    ForceAllPending();
    c0_.ExportLiveDocs(docs);
    c0_locked_.ExportLiveDocs(docs);
    auto drain = [&](std::unique_ptr<Semi>& s) {
      if (s != nullptr) {
        s->ExportLiveDocs(docs);
        Retire(std::move(s));  // readers may still be traversing it
      }
    };
    for (Level& lv : levels_) {
      drain(lv.c);
      drain(lv.locked);
      drain(lv.temp);
    }
    drain(top_locked_);
    drain(top_temp_);
    for (auto& t : tops_) drain(t);
    levels_.clear();
    tops_.clear();
  }

  void GlobalRebase(Document extra) {
    std::vector<Document> docs;
    CollectEverything(&docs);
    docs.push_back(std::move(extra));
    RebaseInto(std::move(docs));
  }

  void GlobalRebaseNoExtra() {
    std::vector<Document> docs;
    CollectEverything(&docs);
    RebaseInto(std::move(docs));
  }

  void RebaseInto(std::vector<Document> docs) {
    uint64_t total = 0;
    for (const Document& d : docs) total += d.symbols.size();
    nf_ = std::max<uint64_t>(total, opt_.min_c0);
    where_.clear();
    if (docs.empty()) return;
    if (total <= MaxSize(0)) {
      for (Document& d : docs) {
        where_[d.id] = {Kind::kC0, 0};
        c0_.Insert(d.id, std::move(d.symbols));
      }
      return;
    }
    // Everything becomes one top collection (the paper re-buckets tops in the
    // background, Section A.3; a single synchronous top keeps the invariant
    // n_f = Theta(n) and is amortized O(u(n)) per symbol).
    InstallTop(std::make_unique<Semi>(docs, semi_opt_));
  }
};

}  // namespace dyndex

#endif  // DYNDEX_CORE_TRANSFORMATION2_H_
