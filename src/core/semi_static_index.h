// Deletion-only ("semi-dynamic") wrapper around a static index: the first
// half of Section 2 of the paper.
//
// A static index I_s is built over a document collection. Deleting a document
// kills its suffix-array rows in a live-row reporter V (Lemma 3 layout);
// queries enumerate live rows in O(1) per row. When a 1/tau fraction of the
// symbols is dead the owner purges (rebuilds) the structure.
//
// The wrapper is generic over the static index type I, which must provide:
//   static I Build(const ConcatText&, const I::Options&)
//   NumRows, Find, Locate, Extract, ForEachDocRow, DocOfPos,
//   doc_start, doc_len, num_docs, SpaceBytes.
// Both FmIndex and PackedSaIndex satisfy this concept.
#ifndef DYNDEX_CORE_SEMI_STATIC_INDEX_H_
#define DYNDEX_CORE_SEMI_STATIC_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bits/live_row_reporter.h"
#include "core/occurrence.h"
#include "text/concat_text.h"
#include "text/row_range.h"
#include "util/check.h"
#include "util/seq_hash_map.h"

namespace dyndex {

template <typename I>
class SemiStaticIndex {
 public:
  struct Options {
    typename I::Options index;
    /// Enables the Theorem-1 counting augmentation (Fenwick over dead rows).
    bool counting = false;
  };

  /// Builds the static index over `docs` (all non-empty, distinct ids).
  SemiStaticIndex(const std::vector<Document>& docs, const Options& opt)
      : counting_(opt.counting) {
    ConcatText text(docs);
    index_ = I::Build(text, opt.index);
    live_.Reset(index_.NumRows(), counting_);
    ids_.reserve(docs.size());
    for (const Document& d : docs) {
      local_of_[d.id] = static_cast<uint32_t>(ids_.size());
      ids_.push_back(d.id);
      live_symbols_ += d.symbols.size();
    }
    doc_dead_.assign(docs.size(), false);
  }

  uint64_t live_symbols() const { return live_symbols_; }
  uint64_t dead_symbols() const { return dead_symbols_; }
  uint64_t total_symbols() const { return live_symbols_ + dead_symbols_; }
  uint32_t num_live_docs() const {
    return static_cast<uint32_t>(local_of_.size());
  }
  bool counting_enabled() const { return counting_; }

  bool ContainsLive(DocId id) const { return local_of_.Contains(id); }

  /// True once the dead fraction reaches 1/tau (the paper's purge trigger).
  bool NeedsPurge(uint32_t tau) const {
    return dead_symbols_ * tau >= total_symbols() && dead_symbols_ > 0;
  }

  /// Lazy deletion: kills the doc's suffix rows via an LF/ISA walk
  /// (the paper's tSA-per-symbol step). Returns false if id is not live here.
  bool EraseDoc(DocId id) {
    const uint32_t* found = local_of_.Find(id);
    if (found == nullptr) return false;
    uint32_t local = *found;
    index_.ForEachDocRow(local, [&](uint64_t row) { live_.Kill(row); });
    doc_dead_[local] = true;
    uint64_t len = index_.doc_len(local);
    live_symbols_ -= len;
    dead_symbols_ += len;
    local_of_.Erase(id);
    return true;
  }

  /// fn(DocId, offset) for every live occurrence of the pattern.
  template <typename Fn>
  void ForEachOccurrence(const std::vector<Symbol>& pattern, Fn fn) const {
    DYNDEX_CHECK(!pattern.empty());
    RowRange r = index_.Find(pattern);
    live_.ForEachLive(r.begin, r.end, [&](uint64_t row) {
      uint64_t pos = index_.Locate(row);
      uint32_t local = index_.DocOfPos(pos);
      DYNDEX_DCHECK(!doc_dead_[local]);
      fn(ids_[local], pos - index_.doc_start(local));
    });
  }

  /// Number of live occurrences. With counting enabled this is
  /// O(trange + log n) (Theorem 1); otherwise it enumerates.
  uint64_t Count(const std::vector<Symbol>& pattern) const {
    DYNDEX_CHECK(!pattern.empty());
    RowRange r = index_.Find(pattern);
    if (r.empty()) return 0;
    if (counting_) return live_.CountLive(r.begin, r.end);
    uint64_t c = 0;
    live_.ForEachLive(r.begin, r.end, [&](uint64_t) { ++c; });
    return c;
  }

  /// Appends doc[from, from+len) to out. Requires the doc to be live here.
  void Extract(DocId id, uint64_t from, uint64_t len,
               std::vector<Symbol>* out) const {
    const uint32_t* found = local_of_.Find(id);
    DYNDEX_CHECK(found != nullptr);
    uint32_t local = *found;
    DYNDEX_CHECK(from + len <= index_.doc_len(local));
    index_.Extract(index_.doc_start(local) + from, len, out);
  }

  uint64_t DocLenOf(DocId id) const {
    const uint32_t* found = local_of_.Find(id);
    DYNDEX_CHECK(found != nullptr);
    return index_.doc_len(*found);
  }

  /// Reconstructs all live documents (via Extract) and appends them to out.
  void ExportLiveDocs(std::vector<Document>* out) const {
    for (uint32_t local = 0; local < ids_.size(); ++local) {
      if (doc_dead_[local]) continue;
      Document d;
      d.id = ids_[local];
      index_.Extract(index_.doc_start(local), index_.doc_len(local),
                     &d.symbols);
      out->push_back(std::move(d));
    }
  }

  /// Ids of all live documents.
  void AppendLiveIds(std::vector<DocId>* out) const {
    for (uint32_t local = 0; local < ids_.size(); ++local) {
      if (!doc_dead_[local]) out->push_back(ids_[local]);
    }
  }

  const I& index() const { return index_; }

  uint64_t IndexSpaceBytes() const { return index_.SpaceBytes(); }
  uint64_t ReporterSpaceBytes() const { return live_.SpaceBytes(); }
  uint64_t BookkeepingSpaceBytes() const {
    return ids_.capacity() * sizeof(DocId) + local_of_.MemoryBytes() +
           doc_dead_.capacity() / 8;
  }

 private:
  I index_;
  LiveBitsSparse live_;
  std::vector<DocId> ids_;
  std::vector<bool> doc_dead_;
  // EraseDoc tombstones entries while optimistic serve-layer readers probe
  // the map; SeqHashMap keeps their view self-consistent and parks replaced
  // tables for the grace period (util/seq_hash_map.h).
  SeqHashMap<DocId, uint32_t> local_of_;
  uint64_t live_symbols_ = 0;
  uint64_t dead_symbols_ = 0;
  bool counting_ = false;
};

}  // namespace dyndex

#endif  // DYNDEX_CORE_SEMI_STATIC_INDEX_H_
