// Shared query-result types of the dynamic collection interfaces.
#ifndef DYNDEX_CORE_OCCURRENCE_H_
#define DYNDEX_CORE_OCCURRENCE_H_

#include <cstdint>
#include <tuple>

#include "text/concat_text.h"

namespace dyndex {

/// One pattern occurrence: document handle + offset within that document.
/// Per the paper, positions are relative to document starts, so updates to
/// other documents never shift reported positions.
struct Occurrence {
  DocId doc = kInvalidDocId;
  uint64_t offset = 0;

  friend bool operator==(const Occurrence& a, const Occurrence& b) {
    return a.doc == b.doc && a.offset == b.offset;
  }
  friend bool operator<(const Occurrence& a, const Occurrence& b) {
    return std::tie(a.doc, a.offset) < std::tie(b.doc, b.offset);
  }
};

/// Space accounting snapshot (bytes) for the dynamic collections.
struct SpaceBreakdown {
  uint64_t static_indexes = 0;  // compressed sub-collection indexes
  uint64_t reporters = 0;       // live-row structures (B + V of the paper)
  uint64_t uncompressed = 0;    // C0 suffix tree (+ temp raw docs)
  uint64_t bookkeeping = 0;     // registry, doc tables
  uint64_t total() const {
    return static_indexes + reporters + uncompressed + bookkeeping;
  }
};

}  // namespace dyndex

#endif  // DYNDEX_CORE_OCCURRENCE_H_
