// Transformation 1 (Section 2) and Transformation 3 (Appendix A.4): the
// static-to-dynamic transformation with amortized update bounds.
//
// Layout: C0 is an uncompressed generalized suffix tree holding at most
// max0 = max(min_c0, 2n/log^2 n) symbols; C_1..C_r are deletion-only static
// indexes whose capacities grow geometrically,
//   max_j = max0 * ratio^j,
// with ratio = (log n)^epsilon under Transformation 1 (r = O(1/epsilon)
// levels) and ratio = 2 under Transformation 3 (r = O(log log n) levels,
// cheaper amortized insertion, O(log log n)-factor slower range-finding).
//
// Insertion: new documents go to C0; when C0 overflows, the smallest level j
// such that C0 + C_1..C_j + T fits in max_j is rebuilt as the merge of all of
// them (the paper's cascade). If nothing fits, a global rebuild re-bases the
// size parameter n_f.
//
// Deletion: lazy kill in the owning sub-collection (Section 2's deletion-only
// scheme); a sub-collection is purged when its dead fraction reaches 1/tau.
#ifndef DYNDEX_CORE_DYNAMIC_COLLECTION_H_
#define DYNDEX_CORE_DYNAMIC_COLLECTION_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/occurrence.h"
#include "core/semi_static_index.h"
#include "gst/suffix_tree.h"
#include "text/concat_text.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/retire.h"

namespace dyndex {

/// Sub-collection capacity schedule: kPolylog is Transformation 1,
/// kDoubling is Transformation 3.
enum class GrowthPolicy { kPolylog, kDoubling };

struct DynamicCollectionOptions {
  /// Dead-fraction purge knob tau; 0 = auto (log n / log log n).
  uint32_t tau = 0;
  /// Growth exponent epsilon of Transformation 1.
  double epsilon = 0.5;
  /// Lower bound on C0 capacity so small collections stay in the suffix tree.
  uint64_t min_c0 = 4096;
  /// Enable the Theorem-1 counting augmentation on every sub-collection.
  bool counting = false;
  GrowthPolicy growth = GrowthPolicy::kPolylog;
};

/// Fully-dynamic compressed document collection, generic over the static
/// index I (FmIndex, PackedSaIndex, ...). Amortized updates.
template <typename I>
class DynamicCollectionT1 {
 public:
  using Semi = SemiStaticIndex<I>;

  explicit DynamicCollectionT1(const DynamicCollectionOptions& opt = {},
                               const typename I::Options& index_opt = {})
      : opt_(opt) {
    semi_opt_.index = index_opt;
    semi_opt_.counting = opt.counting;
  }

  // --- updates -------------------------------------------------------------

  /// Inserts a document (symbols >= kMinSymbol, non-empty); returns its
  /// stable handle. Amortized O(u(n) log^eps n) per symbol.
  DocId Insert(std::vector<Symbol> symbols) {
    DYNDEX_CHECK(!symbols.empty());
    DocId id = next_id_++;
    uint64_t m = symbols.size();
    uint64_t total = live_symbols() + m;
    if (nf_ == 0) nf_ = std::max<uint64_t>(total, opt_.min_c0);
    if (total >= 2 * nf_) {
      // Global rebuild: re-base n_f (the paper's doubling rule).
      GlobalRebuild(Document{id, std::move(symbols)});
      return id;
    }
    if (c0_.live_symbols() + m <= MaxSize(0)) {
      c0_.Insert(id, std::move(symbols));
      where_[id] = kInC0;
      return id;
    }
    // Find the smallest level j (holding C_{j+1}) such that C0..C_{j+1} + T
    // fits below max_{j+1}.
    uint64_t prefix = c0_.live_symbols() + m;
    for (uint32_t j = 0;; ++j) {
      if (j < subs_.size() && subs_[j] != nullptr) {
        prefix += subs_[j]->live_symbols();
      }
      if (prefix <= MaxSize(j + 1)) {
        MergeThrough(j, Document{id, std::move(symbols)});
        return id;
      }
      if (j > subs_.size() + 64) {
        // Unreachable under the geometric schedule; defensive stop.
        DYNDEX_CHECK(false);
      }
    }
    return id;  // unreachable
  }

  /// Erases a document. Returns false for unknown handles.
  bool Erase(DocId id) {
    const int32_t* found = where_.Find(id);
    if (found == nullptr) return false;
    int32_t loc = *found;
    if (loc == kInC0) {
      c0_.Erase(id);
    } else {
      Semi* s = subs_[static_cast<uint32_t>(loc)].get();
      DYNDEX_CHECK(s != nullptr && s->EraseDoc(id));
      PurgeIfNeeded(static_cast<uint32_t>(loc));
    }
    where_.Erase(id);
    // Global shrink rule keeps n_f = Theta(n).
    uint64_t total = live_symbols();
    if (nf_ > 2 * opt_.min_c0 && total * 2 <= nf_) {
      GlobalRebuildNoExtra();
    }
    return true;
  }

  // --- queries -------------------------------------------------------------

  /// fn(DocId, offset) for every live occurrence, across C0 and all levels.
  template <typename Fn>
  void ForEachOccurrence(const std::vector<Symbol>& pattern, Fn fn) const {
    if (c0_.num_live_docs() > 0) c0_.ForEachOccurrence(pattern, fn);
    // Load each sub pointer exactly once: a writer retiring the level nulls
    // the unique_ptr element in place, so re-dereferencing it mid-traversal
    // would fault even though the parked Semi itself stays alive.
    for (const auto& sub : subs_) {
      const Semi* s = sub.get();
      if (s != nullptr && s->num_live_docs() > 0) {
        s->ForEachOccurrence(pattern, fn);
      }
    }
  }

  std::vector<Occurrence> Find(const std::vector<Symbol>& pattern) const {
    std::vector<Occurrence> out;
    ForEachOccurrence(pattern,
                      [&](DocId d, uint64_t off) { out.push_back({d, off}); });
    return out;
  }

  uint64_t Count(const std::vector<Symbol>& pattern) const {
    uint64_t c = c0_.num_live_docs() > 0 ? c0_.Count(pattern) : 0;
    for (const auto& sub : subs_) {
      const Semi* s = sub.get();  // one load; see ForEachOccurrence
      if (s != nullptr && s->num_live_docs() > 0) c += s->Count(pattern);
    }
    return c;
  }

  /// doc[from, from+len).
  std::vector<Symbol> Extract(DocId id, uint64_t from, uint64_t len) const {
    const int32_t* found = where_.Find(id);
    DYNDEX_CHECK(found != nullptr);
    std::vector<Symbol> out;
    if (*found == kInC0) {
      c0_.Extract(id, from, len, &out);
    } else {
      // A torn where_ value must not index past subs_ (optimistic readers;
      // the checks throw TornReadError mid-attempt, abort otherwise).
      const uint32_t j = static_cast<uint32_t>(*found);
      DYNDEX_CHECK(j < subs_.size());
      const Semi* s = subs_[j].get();  // one load; see ForEachOccurrence
      DYNDEX_CHECK(s != nullptr);
      s->Extract(id, from, len, &out);
    }
    return out;
  }

  bool Contains(DocId id) const { return where_.Contains(id); }

  uint64_t DocLenOf(DocId id) const {
    const int32_t* found = where_.Find(id);
    DYNDEX_CHECK(found != nullptr);
    if (*found == kInC0) return c0_.DocLen(id);
    const uint32_t j = static_cast<uint32_t>(*found);
    DYNDEX_CHECK(j < subs_.size());
    const Semi* s = subs_[j].get();  // one load; see ForEachOccurrence
    DYNDEX_CHECK(s != nullptr);
    return s->DocLenOf(id);
  }

  // --- introspection -------------------------------------------------------

  uint64_t live_symbols() const {
    uint64_t t = c0_.live_symbols();
    for (const auto& sub : subs_) {
      const Semi* s = sub.get();  // one load; see ForEachOccurrence
      if (s != nullptr) t += s->live_symbols();
    }
    return t;
  }

  uint64_t num_docs() const { return where_.size(); }
  uint64_t c0_symbols() const { return c0_.live_symbols(); }

  uint32_t num_levels() const {
    uint32_t n = 0;
    for (const auto& s : subs_) n += s.get() != nullptr;
    return n;
  }

  /// Live symbols per level (empty levels reported as 0) — Figure 1 data.
  std::vector<uint64_t> LevelSizes() const {
    std::vector<uint64_t> v;
    for (const auto& sub : subs_) {
      const Semi* s = sub.get();  // one load; see ForEachOccurrence
      v.push_back(s == nullptr ? 0 : s->live_symbols());
    }
    return v;
  }

  uint64_t MaxSizeOfLevel(uint32_t level) const { return MaxSize(level); }
  uint32_t tau() const { return Tau(); }

  SpaceBreakdown Space() const {
    SpaceBreakdown sp;
    sp.uncompressed = c0_.SpaceBytes();
    for (const auto& sub : subs_) {
      const Semi* s = sub.get();  // one load; see ForEachOccurrence
      if (s == nullptr) continue;
      sp.static_indexes += s->IndexSpaceBytes();
      sp.reporters += s->ReporterSpaceBytes();
      sp.bookkeeping += s->BookkeepingSpaceBytes();
    }
    sp.bookkeeping += where_.size() * 24;
    return sp;
  }

  // --- persistence ---------------------------------------------------------

  /// Copies the full logical state — every live document plus the next id to
  /// mint — without mutating the structure (snapshot-export path).
  void ExportSnapshot(std::vector<Document>* docs, DocId* next_id) const {
    c0_.PeekLiveDocs(docs);
    for (const auto& sub : subs_) {
      const Semi* s = sub.get();
      if (s != nullptr) s->ExportLiveDocs(docs);
    }
    *next_id = next_id_;
  }

  /// Restores an exported state into a fresh collection, preserving the
  /// exported ids and the id counter.
  void LoadSnapshot(std::vector<Document> docs, DocId next_id) {
    DYNDEX_CHECK(num_docs() == 0 && live_symbols() == 0);
    next_id_ = next_id;
    RebaseInto(std::move(docs));
  }

  /// Validates internal invariants (test hook): sub-collection size bounds and
  /// registry consistency.
  void CheckInvariants() const {
    uint64_t docs = c0_.num_live_docs();
    for (uint32_t j = 0; j < subs_.size(); ++j) {
      const Semi* s = subs_[j].get();  // one load; see ForEachOccurrence
      if (s == nullptr) continue;
      docs += s->num_live_docs();
      // A sub-collection never exceeds its capacity (single oversized docs
      // are the allowed exception, as in the paper's top collections).
      if (s->num_live_docs() > 1) {
        DYNDEX_CHECK(s->total_symbols() <=
                     2 * MaxSize(j + 1) + s->dead_symbols());
      }
      DYNDEX_CHECK(!s->NeedsPurge(Tau()));
    }
    DYNDEX_CHECK(docs == where_.size());
  }

 private:
  static constexpr int32_t kInC0 = -1;

  DynamicCollectionOptions opt_;
  typename Semi::Options semi_opt_;
  SuffixTreeCollection c0_;
  // retire_* containers: growth/rehash under an exclusive section parks the
  // abandoned buffers for in-flight optimistic readers (util/retire.h).
  retire_vector<std::unique_ptr<Semi>> subs_;  // subs_[j] holds C_{j+1}
  SeqHashMap<DocId, int32_t> where_;
  DocId next_id_ = 0;
  uint64_t nf_ = 0;

  uint32_t Tau() const {
    if (opt_.tau != 0) return opt_.tau;
    return DefaultTau(std::max<uint64_t>(live_symbols(), 16));
  }

  double Ratio() const {
    if (opt_.growth == GrowthPolicy::kDoubling) return 2.0;
    double logn = std::max(2.0, std::log2(static_cast<double>(
                                    std::max<uint64_t>(nf_, 4))));
    return std::max(2.0, std::pow(logn, opt_.epsilon));
  }

  /// Capacity of level `level`: level 0 is C0, level j >= 1 is C_j.
  uint64_t MaxSize(uint32_t level) const {
    double logn = std::max(2.0, std::log2(static_cast<double>(
                                    std::max<uint64_t>(nf_, 4))));
    double max0 = std::max(static_cast<double>(opt_.min_c0),
                           2.0 * static_cast<double>(nf_) / (logn * logn));
    double v = max0 * std::pow(Ratio(), level);
    return v > 1e18 ? ~0ull : static_cast<uint64_t>(v);
  }

  int32_t FindLevelOf(DocId id) const {
    for (uint32_t j = 0; j < subs_.size(); ++j) {
      const Semi* s = subs_[j].get();
      if (s != nullptr && s->ContainsLive(id)) {
        return static_cast<int32_t>(j);
      }
    }
    return kInC0;
  }

  /// Rebuilds level `j` as the merge of C0, levels 0..j and `extra`.
  void MergeThrough(uint32_t j, Document extra) {
    std::vector<Document> docs;
    c0_.ExportLiveDocs(&docs);
    for (uint32_t i = 0; i <= j && i < subs_.size(); ++i) {
      if (subs_[i] != nullptr) {
        subs_[i]->ExportLiveDocs(&docs);
        Retire(std::move(subs_[i]));  // readers may still be traversing it
      }
    }
    DocId id = extra.id;
    docs.push_back(std::move(extra));
    if (subs_.size() <= j) subs_.resize(j + 1);
    subs_[j] = std::make_unique<Semi>(docs, semi_opt_);
    for (const Document& d : docs) where_[d.id] = static_cast<int32_t>(j);
    where_[id] = static_cast<int32_t>(j);
  }

  void GlobalRebuild(Document extra) {
    std::vector<Document> docs;
    CollectAll(&docs);
    docs.push_back(std::move(extra));
    RebaseInto(std::move(docs));
  }

  void GlobalRebuildNoExtra() {
    std::vector<Document> docs;
    CollectAll(&docs);
    RebaseInto(std::move(docs));
  }

  void CollectAll(std::vector<Document>* docs) {
    c0_.ExportLiveDocs(docs);
    for (auto& s : subs_) {
      if (s != nullptr) {
        s->ExportLiveDocs(docs);
        Retire(std::move(s));  // readers may still be traversing it
      }
    }
    subs_.clear();
  }

  void RebaseInto(std::vector<Document> docs) {
    uint64_t total = 0;
    for (const Document& d : docs) total += d.symbols.size();
    nf_ = std::max<uint64_t>(total, opt_.min_c0);
    if (docs.empty()) {
      where_.clear();
      return;
    }
    if (total <= MaxSize(0)) {
      // Everything fits back into C0.
      for (Document& d : docs) {
        where_[d.id] = kInC0;
        c0_.Insert(d.id, std::move(d.symbols));
      }
      return;
    }
    // Smallest level that fits the whole collection.
    uint32_t j = 0;
    while (MaxSize(j + 1) < total) ++j;
    if (subs_.size() <= j) subs_.resize(j + 1);
    subs_[j] = std::make_unique<Semi>(docs, semi_opt_);
    for (const Document& d : docs) where_[d.id] = static_cast<int32_t>(j);
  }

  void PurgeIfNeeded(uint32_t level) {
    Semi* s = subs_[level].get();
    if (s == nullptr || !s->NeedsPurge(Tau())) return;
    std::vector<Document> docs;
    s->ExportLiveDocs(&docs);
    Retire(std::move(subs_[level]));  // readers may still be traversing it
    if (docs.empty()) return;
    subs_[level] = std::make_unique<Semi>(docs, semi_opt_);
    for (const Document& d : docs) {
      where_[d.id] = static_cast<int32_t>(level);
    }
  }
};

/// Transformation 3 is Transformation 1 with the doubling schedule.
template <typename I>
class DynamicCollectionT3 : public DynamicCollectionT1<I> {
 public:
  explicit DynamicCollectionT3(DynamicCollectionOptions opt = {},
                               const typename I::Options& index_opt = {})
      : DynamicCollectionT1<I>(WithDoubling(opt), index_opt) {}

 private:
  static DynamicCollectionOptions WithDoubling(DynamicCollectionOptions opt) {
    opt.growth = GrowthPolicy::kDoubling;
    return opt;
  }
};

}  // namespace dyndex

#endif  // DYNDEX_CORE_DYNAMIC_COLLECTION_H_
