// Sharded document serving: K independent EpochGuard<DynamicIndex> shards
// behind one facade, so K writers proceed concurrently instead of
// serializing on ConcurrentIndex's single exclusive lock — the scaling axis
// the dynamic succinct graph literature (RadixGraph, Coimbra et al.) reaches
// by partitioning the structure.
//
// Partitioning. Documents are placed round-robin and their global ids are
// minted as  global = local * K + shard,  so the stable partition function
// shard_of(id) = id % K routes every id-keyed operation to exactly one shard
// and ids never collide across shards (backends assign local ids densely
// from 0 and never reuse them).
//
// Writes. InsertBatch / EraseBatch split the batch per shard and apply the
// per-shard sub-batches in parallel on a scatter-join pool; each sub-batch
// runs under its shard's exclusive lock and bumps that shard's epoch once.
//
// Reads. Pattern queries (Count/Locate) fan out across all K shards in
// parallel, merge the per-shard answers, and report a *per-shard epoch
// vector* as the snapshot token; id-keyed queries (Extract/DocLenOf/...)
// touch one shard and report that shard's scalar epoch.
//
// Consistency model. A cross-shard batch is atomic *per shard*, not
// globally: a concurrent reader may observe shard A after a batch and shard
// B before it. The epoch vector is exactly the linearization point of that
// observation — shard s's slice of the answer is the state of shard s at
// epoch epochs[s] — which is what the differential harness keys its
// expectations on. Shards whose sub-batch is empty are skipped (their epoch
// does not move).
#ifndef DYNDEX_SERVE_SHARDED_INDEX_H_
#define DYNDEX_SERVE_SHARDED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/occurrence.h"
#include "persist/env.h"
#include "persist/status.h"
#include "serve/dynamic_index.h"
#include "serve/epoch_guard.h"
#include "serve/persistence.h"
#include "serve/thread_pool.h"
#include "text/concat_text.h"

namespace dyndex {

/// Per-shard epochs observed by one fanned-out query (index = shard).
using ShardEpochs = std::vector<uint64_t>;

/// Per-shard seqlock words (index = shard; even = quiescent). The cheap
/// change-detection poll of the sharded facades: a shard whose sequence is
/// unchanged between two polls served no write in between.
using ShardSeqs = std::vector<uint64_t>;

namespace shard_internal {

/// The single fan-out implementation behind every merged query in
/// ShardedIndex / ShardedRelation: scatter per_shard(s, &epoch) -> R across
/// all shards on the pool, join, fill `epochs` when requested, and hand
/// back the per-shard results in shard order.
template <typename R, typename PerShard>
std::vector<R> FanOutRead(ThreadPool& pool, uint32_t num_shards,
                          ShardEpochs* epochs, const PerShard& per_shard) {
  std::vector<R> part(num_shards);
  ShardEpochs eps(num_shards, 0);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    tasks.push_back(
        [&part, &eps, &per_shard, s] { part[s] = per_shard(s, &eps[s]); });
  }
  pool.RunAll(std::move(tasks));
  if (epochs != nullptr) *epochs = std::move(eps);
  return part;
}

template <typename T>
uint64_t SumOf(const std::vector<T>& part) {
  uint64_t total = 0;
  for (const T& v : part) total += v;
  return total;
}

/// Concatenates the per-shard slices in shard order.
template <typename T>
std::vector<T> Flatten(std::vector<std::vector<T>> part) {
  uint64_t total = 0;
  for (const auto& p : part) total += p.size();
  std::vector<T> out;
  out.reserve(total);
  for (auto& p : part) out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace shard_internal

class ShardedIndex {
 public:
  /// K shards, each built by `shard_factory` (must be K independent
  /// instances). The pool holds K-1 workers: the calling thread always
  /// executes one shard's slice itself.
  ShardedIndex(uint32_t num_shards,
               const std::function<std::unique_ptr<DynamicIndex>()>&
                   shard_factory);

  /// Convenience: K shards of MakeDynamicIndex(backend, opt).
  ShardedIndex(uint32_t num_shards, Backend backend,
               const DynamicIndexOptions& opt = {});

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  /// Stable partition function over document ids.
  uint32_t shard_of(DocId id) const {
    return static_cast<uint32_t>(id % shards_.size());
  }

  // --- reader API (any thread) ---------------------------------------------

  /// Occurrences summed across shards. `epochs` (when non-null) receives the
  /// per-shard snapshot epochs the query observed.
  uint64_t Count(const std::vector<Symbol>& pattern,
                 ShardEpochs* epochs = nullptr) const;
  /// Occurrences of all shards (global doc ids), concatenated in shard
  /// order; callers needing a total order sort.
  std::vector<Occurrence> Locate(const std::vector<Symbol>& pattern,
                                 ShardEpochs* epochs = nullptr) const;
  /// False (out untouched) when the document is absent in its shard's
  /// snapshot. `epoch` reports the owning shard's epoch.
  bool Extract(DocId id, uint64_t from, uint64_t len, std::vector<Symbol>* out,
               uint64_t* epoch = nullptr) const;
  bool Contains(DocId id, uint64_t* epoch = nullptr) const;
  /// 0 for unknown ids (facade hardening semantics).
  uint64_t DocLenOf(DocId id, uint64_t* epoch = nullptr) const;
  uint64_t num_docs(ShardEpochs* epochs = nullptr) const;
  uint64_t live_symbols(ShardEpochs* epochs = nullptr) const;

  /// Current per-shard epochs (not a consistent cross-shard snapshot; use
  /// the per-query epoch outputs for linearization).
  ShardEpochs epochs() const;
  /// Current per-shard sequence words (plain atomic loads).
  ShardSeqs seqs() const;

  /// Optimistic read-path knobs / counters, fanned to every shard's core
  /// (see serve/epoch_guard.h). Policies are atomic snapshots — settable
  /// at any time.
  void set_optimistic_policy(const OptimisticPolicy& policy);
  /// Counters summed across shards.
  OptimisticStats optimistic_stats() const;
  /// Write pacing, fanned to every shard's core. Shards pace independently:
  /// each shard's writer gate keys on that shard's own stalled readers and
  /// sleeps before taking that shard's lock (never inside one), so a paced
  /// shard cannot delay batches bound for quiet shards.
  void set_pacing_policy(const PacingPolicy& policy);
  /// Pacing counters summed across shards.
  PacingStats pacing_stats() const;
  /// Retired-but-not-yet-reclaimed batches summed across shards.
  uint64_t retired_pending() const;

  // --- writer API (any number of concurrent callers) -----------------------

  /// Splits the batch per shard (round-robin placement) and applies the
  /// sub-batches in parallel. Returns the new global ids in batch order;
  /// empty documents report kInvalidDocId.
  std::vector<DocId> InsertBatch(std::vector<std::vector<Symbol>> docs);
  /// Routes each id to its shard, erases in parallel; returns how many of
  /// `ids` were present and erased.
  uint64_t EraseBatch(const std::vector<DocId>& ids);
  /// Publishes finished background builds on every shard (epochs unchanged).
  void Poll();
  /// Blocks until all shards' background builds are published.
  void Flush();

  // --- durability (see serve/persistence.h) --------------------------------
  //
  // Per-shard layout under `dir`: shard s's snapshot + WAL live in
  // `<dir>/shard-<s>/`, and one MANIFEST in `dir` binds the shard count and
  // backend — reopening with a different K or backend, or with a bound
  // shard's log missing, is refused loudly instead of silently serving a
  // partial collection. Recovery fans out across the pool (one shard per
  // worker). Batch writers may still run concurrently afterwards: each
  // shard's WAL is only touched inside that shard's exclusive section
  // (including the group-commit fsync). OpenDurable / Checkpoint / SyncWal /
  // CloseDurable themselves require writer quiescence.

  persist::Status OpenDurable(persist::Env* env, const std::string& dir,
                              const DurableOptions& opt = {},
                              RecoveryStats* stats = nullptr);
  /// Checkpoints every shard in parallel: snapshot + WAL reset per shard.
  persist::Status Checkpoint();
  /// Forces every shard's WAL to disk; surfaces sticky append/sync failures.
  persist::Status SyncWal();
  /// Final sync + detach; the facade keeps serving, un-durably.
  persist::Status CloseDurable();
  bool durable() const { return !logs_.empty(); }

  const char* backend_name() const {
    return shards_[0]->unsynchronized().backend_name();
  }

  /// Structural self-check across all shards (takes each shard's shared
  /// lock in turn).
  void CheckInvariants() const;

  /// Shard s's index, with no locking. Callers must guarantee quiescence.
  DynamicIndex& unsynchronized_shard(uint32_t s) {
    return shards_[s]->unsynchronized();
  }

 private:
  std::vector<std::unique_ptr<EpochGuard<DynamicIndex>>> shards_;
  mutable ThreadPool pool_;
  /// Round-robin placement cursor for new documents (balances shards while
  /// keeping id minting deterministic for a single writer).
  std::atomic<uint64_t> next_place_{0};
  /// Per-shard durable logs; empty until OpenDurable (then index = shard).
  std::vector<std::unique_ptr<serve_persist::DurableLog>> logs_;
};

}  // namespace dyndex

#endif  // DYNDEX_SERVE_SHARDED_INDEX_H_
