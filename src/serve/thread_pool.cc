#include "serve/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace dyndex {

namespace {

/// Per-RunAll completion state. Shared-owned by every enqueued closure and
/// the joining caller: the caller may return the instant `remaining` hits
/// zero, while the last worker is still inside notify_one() — with stack
/// storage that would destroy the condvar under the notifier (a real race
/// TSan caught in an earlier revision).
struct Join {
  explicit Join(uint32_t n) : remaining(n) {}
  std::atomic<uint32_t> remaining;
  Mutex mu;
  CondVar cv;
  std::exception_ptr error DYNDEX_GUARDED_BY(mu);  // first failing slice

  /// Records the in-flight exception; first one wins (the caller can only
  /// rethrow one, and the first is the one that happened earliest).
  void Record() DYNDEX_EXCLUDES(mu) {
    MutexLock lock(mu);
    if (!error) error = std::current_exception();
  }
};

}  // namespace

ThreadPool::ThreadPool(uint32_t workers) {
  threads_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (threads_.empty() || tasks.size() == 1) {
    // Sequential path, same contract as the scattered one: a throwing task
    // must not skip its siblings (a cross-shard batch would silently apply
    // to some shards only), so run everything and rethrow the first.
    std::exception_ptr first;
    for (auto& task : tasks) {
      try {
        task();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }
  // Scatter tasks[1..] to the workers. Completion is tracked per call, so
  // concurrent RunAll batches interleave freely in one queue; the notify
  // runs under join->mu, which makes the final wait lost-wakeup-free. The
  // closures reference `tasks` on this stack — safe because this frame
  // outlives remaining > 0 — but only shared-own the Join (see Join).
  // A throwing slice is caught into the Join (workers never unwind into
  // WorkerLoop, which would std::terminate) and rethrown after the join.
  auto join = std::make_shared<Join>(static_cast<uint32_t>(tasks.size() - 1));
  {
    MutexLock lock(mu_);
    for (size_t i = 1; i < tasks.size(); ++i) {
      queue_.push_back([&tasks, i, join] {
        try {
          tasks[i]();
        } catch (...) {
          join->Record();
        }
        if (join->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          MutexLock done_lock(join->mu);
          join->cv.NotifyOne();
        }
      });
    }
  }
  cv_.NotifyAll();
  try {
    tasks[0]();
  } catch (...) {
    join->Record();
  }
  // Help drain while waiting: running queued closures (possibly another
  // caller's) keeps batches progressing when every worker is busy. Stolen
  // closures are the wrappers above — they catch into their own Join.
  while (join->remaining.load(std::memory_order_acquire) != 0) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      }
    }
    if (!task) break;  // nothing left to steal: block on completion
    task();
  }
  // The join proper. `remaining` is atomic (the wrappers decrement it after
  // running, possibly without join->mu), but the wait/notify handshake runs
  // under join->mu, so a final decrement cannot slip between the condition
  // check and the Wait. The error is copied out before rethrowing so the
  // lock is never held across the throw.
  std::exception_ptr error;
  {
    MutexLock lock(join->mu);
    while (join->remaining.load(std::memory_order_acquire) != 0) {
      join->cv.Wait(join->mu);
    }
    error = join->error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace dyndex
