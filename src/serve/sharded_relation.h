// Sharded relation/graph serving: K independent EpochGuard<RelationIndex>
// shards behind one facade — the Theorem 2/3 analogue of
// serve/sharded_index.h, partitioned the way RadixGraph and the dynamic
// succinct graph representations partition adjacency: by source vertex.
//
// Partitioning. A pair (object, label) — an edge u -> v — lives in shard
// shard_of_object(object), a stable hash of the *object* id. All labels of
// one object therefore share a shard: adjacency tests, LabelsOf/Neighbors
// and out-degree route to exactly one shard, while the label-keyed reverse
// queries (ObjectsOf/Reverse, in-degree) fan out across all K shards and
// merge.
//
// Writes split a batch per shard and apply the sub-batches in parallel,
// each under its shard's exclusive lock (one epoch bump per touched shard).
// The consistency model matches ShardedIndex: per-shard atomicity, with the
// per-shard epoch vector as the snapshot token of fanned-out reads.
#ifndef DYNDEX_SERVE_SHARDED_RELATION_H_
#define DYNDEX_SERVE_SHARDED_RELATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "persist/env.h"
#include "persist/status.h"
#include "serve/epoch_guard.h"
#include "serve/persistence.h"
#include "serve/relation_index.h"
#include "serve/sharded_index.h"  // ShardEpochs
#include "serve/thread_pool.h"

namespace dyndex {

class ShardedRelation {
 public:
  /// K shards, each built by `shard_factory` (K independent instances); the
  /// pool holds K-1 workers (the caller executes one slice itself).
  ShardedRelation(uint32_t num_shards,
                  const std::function<std::unique_ptr<RelationIndex>()>&
                      shard_factory);

  /// Convenience: K shards of MakeRelationIndex(backend, opt).
  ShardedRelation(uint32_t num_shards, RelationBackend backend,
                  const RelationIndexOptions& opt = {});

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  /// Stable hash partition over object (source-vertex) ids.
  uint32_t shard_of_object(uint32_t object) const;

  // --- reader API (any thread) ---------------------------------------------

  /// Object-keyed queries touch one shard; `epoch` reports its epoch.
  bool Related(uint32_t object, uint32_t label,
               uint64_t* epoch = nullptr) const;
  std::vector<uint32_t> LabelsOf(uint32_t object,
                                 uint64_t* epoch = nullptr) const;
  uint64_t CountLabelsOf(uint32_t object, uint64_t* epoch = nullptr) const;

  /// Label-keyed queries fan out; `epochs` receives the per-shard epochs.
  /// ObjectsOf concatenates the shard answers in shard order.
  std::vector<uint32_t> ObjectsOf(uint32_t label,
                                  ShardEpochs* epochs = nullptr) const;
  uint64_t CountObjectsOf(uint32_t label, ShardEpochs* epochs = nullptr) const;
  uint64_t num_pairs(ShardEpochs* epochs = nullptr) const;

  // Graph view (Theorem 3): edge u -> v is the pair (u, v).
  bool HasEdge(uint32_t u, uint32_t v, uint64_t* epoch = nullptr) const {
    return Related(u, v, epoch);
  }
  std::vector<uint32_t> Neighbors(uint32_t u, uint64_t* epoch = nullptr) const {
    return LabelsOf(u, epoch);
  }
  std::vector<uint32_t> Reverse(uint32_t v, ShardEpochs* epochs = nullptr)
      const {
    return ObjectsOf(v, epochs);
  }
  uint64_t OutDegree(uint32_t u, uint64_t* epoch = nullptr) const {
    return CountLabelsOf(u, epoch);
  }
  uint64_t InDegree(uint32_t v, ShardEpochs* epochs = nullptr) const {
    return CountObjectsOf(v, epochs);
  }
  uint64_t num_edges(ShardEpochs* epochs = nullptr) const {
    return num_pairs(epochs);
  }

  /// Current per-shard epochs (not a consistent cross-shard snapshot).
  ShardEpochs epochs() const;
  /// Current per-shard sequence words (plain atomic loads).
  ShardSeqs seqs() const;

  /// Optimistic read-path knobs / counters, fanned to every shard's core
  /// (see serve/epoch_guard.h). Policies are atomic snapshots — settable
  /// at any time.
  void set_optimistic_policy(const OptimisticPolicy& policy);
  /// Counters summed across shards.
  OptimisticStats optimistic_stats() const;
  /// Write pacing, fanned to every shard's core. Shards pace independently:
  /// each shard's writer gate keys on that shard's own stalled readers and
  /// sleeps before taking that shard's lock (never inside one), so a paced
  /// shard cannot delay batches bound for quiet shards.
  void set_pacing_policy(const PacingPolicy& policy);
  /// Pacing counters summed across shards.
  PacingStats pacing_stats() const;
  /// Retired-but-not-yet-reclaimed batches summed across shards.
  uint64_t retired_pending() const;

  // --- writer API (any number of concurrent callers) -----------------------

  /// Splits the batch by object shard and applies the sub-batches in
  /// parallel (bulk path per shard); returns how many pairs were new.
  uint64_t AddPairsBatch(const RelationPairs& pairs);
  /// Returns how many of `pairs` were present and removed.
  uint64_t RemovePairsBatch(const RelationPairs& pairs);
  uint64_t AddEdgesBatch(const RelationPairs& edges) {
    return AddPairsBatch(edges);
  }
  uint64_t RemoveEdgesBatch(const RelationPairs& edges) {
    return RemovePairsBatch(edges);
  }

  // --- durability (see serve/persistence.h) --------------------------------
  //
  // Same layout and contract as ShardedIndex: per-shard snapshot + WAL under
  // `<dir>/shard-<s>/`, one MANIFEST binding the shard count and backend,
  // parallel recovery, loud refusal on a mismatched sharding or a bound
  // shard whose log vanished. Batch writers may run concurrently afterwards
  // (per-shard WAL work stays inside that shard's exclusive section);
  // OpenDurable / Checkpoint / SyncWal / CloseDurable require quiescence.

  persist::Status OpenDurable(persist::Env* env, const std::string& dir,
                              const DurableOptions& opt = {},
                              RecoveryStats* stats = nullptr);
  persist::Status Checkpoint();
  persist::Status SyncWal();
  persist::Status CloseDurable();
  bool durable() const { return !logs_.empty(); }

  const char* backend_name() const {
    return shards_[0]->unsynchronized().backend_name();
  }

  /// Structural self-check across all shards.
  void CheckInvariants() const;

  /// Shard s's relation, with no locking. Callers must guarantee quiescence.
  RelationIndex& unsynchronized_shard(uint32_t s) {
    return shards_[s]->unsynchronized();
  }

 private:
  std::vector<std::unique_ptr<EpochGuard<RelationIndex>>> shards_;
  mutable ThreadPool pool_;
  /// Per-shard durable logs; empty until OpenDurable (then index = shard).
  std::vector<std::unique_ptr<serve_persist::DurableLog>> logs_;
};

}  // namespace dyndex

#endif  // DYNDEX_SERVE_SHARDED_RELATION_H_
