#include "serve/sharded_relation.h"

#include <string>
#include <utility>

#include "util/check.h"

namespace dyndex {

namespace {

/// SplitMix64 finalizer: a stable, well-mixed hash so consecutive object ids
/// (the common external id pattern) spread evenly across shards.
uint64_t MixId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ShardedRelation::ShardedRelation(
    uint32_t num_shards,
    const std::function<std::unique_ptr<RelationIndex>()>& shard_factory)
    : pool_(num_shards > 0 ? num_shards - 1 : 0) {
  DYNDEX_CHECK(num_shards >= 1);
  shards_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    shards_.push_back(
        std::make_unique<EpochGuard<RelationIndex>>(shard_factory()));
  }
}

ShardedRelation::ShardedRelation(uint32_t num_shards, RelationBackend backend,
                                 const RelationIndexOptions& opt)
    : ShardedRelation(num_shards,
                      [&] { return MakeRelationIndex(backend, opt); }) {}

uint32_t ShardedRelation::shard_of_object(uint32_t object) const {
  return static_cast<uint32_t>(MixId(object) % shards_.size());
}

bool ShardedRelation::Related(uint32_t object, uint32_t label,
                              uint64_t* epoch) const {
  return shards_[shard_of_object(object)]->Read(
      epoch,
      [&](const RelationIndex& rel) { return rel.Related(object, label); });
}

std::vector<uint32_t> ShardedRelation::LabelsOf(uint32_t object,
                                                uint64_t* epoch) const {
  return shards_[shard_of_object(object)]->Read(
      epoch, [&](const RelationIndex& rel) { return rel.LabelsOf(object); });
}

uint64_t ShardedRelation::CountLabelsOf(uint32_t object,
                                        uint64_t* epoch) const {
  return shards_[shard_of_object(object)]->Read(
      epoch,
      [&](const RelationIndex& rel) { return rel.CountLabelsOf(object); });
}

std::vector<uint32_t> ShardedRelation::ObjectsOf(uint32_t label,
                                                 ShardEpochs* epochs) const {
  return shard_internal::Flatten(
      shard_internal::FanOutRead<std::vector<uint32_t>>(
          pool_, num_shards(), epochs, [&](uint32_t s, uint64_t* epoch) {
            return shards_[s]->Read(epoch, [&](const RelationIndex& rel) {
              return rel.ObjectsOf(label);
            });
          }));
}

uint64_t ShardedRelation::CountObjectsOf(uint32_t label,
                                         ShardEpochs* epochs) const {
  return shard_internal::SumOf(shard_internal::FanOutRead<uint64_t>(
      pool_, num_shards(), epochs, [&](uint32_t s, uint64_t* epoch) {
        return shards_[s]->Read(epoch, [&](const RelationIndex& rel) {
          return rel.CountObjectsOf(label);
        });
      }));
}

uint64_t ShardedRelation::num_pairs(ShardEpochs* epochs) const {
  return shard_internal::SumOf(shard_internal::FanOutRead<uint64_t>(
      pool_, num_shards(), epochs, [&](uint32_t s, uint64_t* epoch) {
        return shards_[s]->Read(
            epoch, [](const RelationIndex& rel) { return rel.num_pairs(); });
      }));
}

ShardEpochs ShardedRelation::epochs() const {
  ShardEpochs eps(num_shards(), 0);
  for (uint32_t s = 0; s < num_shards(); ++s) eps[s] = shards_[s]->epoch();
  return eps;
}

ShardSeqs ShardedRelation::seqs() const {
  ShardSeqs sq(num_shards(), 0);
  for (uint32_t s = 0; s < num_shards(); ++s) sq[s] = shards_[s]->sequence();
  return sq;
}

void ShardedRelation::set_optimistic_policy(const OptimisticPolicy& policy) {
  for (auto& shard : shards_) shard->set_optimistic_policy(policy);
}

OptimisticStats ShardedRelation::optimistic_stats() const {
  OptimisticStats total;
  for (const auto& shard : shards_) {
    const OptimisticStats s = shard->optimistic_stats();
    total.attempts += s.attempts;
    total.validated += s.validated;
    total.retries += s.retries;
    total.fallbacks += s.fallbacks;
    total.capture_exhausted += s.capture_exhausted;
    total.retries_exhausted += s.retries_exhausted;
    total.capture_stalled += s.capture_stalled;
    total.locked_reads += s.locked_reads;
  }
  return total;
}

void ShardedRelation::set_pacing_policy(const PacingPolicy& policy) {
  for (auto& shard : shards_) shard->set_pacing_policy(policy);
}

PacingStats ShardedRelation::pacing_stats() const {
  PacingStats total;
  for (const auto& shard : shards_) {
    const PacingStats s = shard->pacing_stats();
    total.waits += s.waits;
    total.wait_us += s.wait_us;
  }
  return total;
}

uint64_t ShardedRelation::retired_pending() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->retired_pending();
  return total;
}

uint64_t ShardedRelation::AddPairsBatch(const RelationPairs& pairs) {
  const uint32_t k = num_shards();
  std::vector<RelationPairs> sub(k);
  for (auto [o, a] : pairs) sub[shard_of_object(o)].push_back({o, a});
  std::vector<uint64_t> added(k, 0);
  std::vector<std::function<void()>> tasks;
  for (uint32_t s = 0; s < k; ++s) {
    if (sub[s].empty()) continue;  // untouched shards keep their epoch
    tasks.push_back([this, s, &sub, &added] {
      // Each shard logs its own sub-batch; the append and the group-commit
      // fsync run inside the shard's exclusive section, so concurrent batch
      // writers never share a WAL.
      std::string payload;
      serve_persist::DurableLog* log = logs_.empty() ? nullptr : logs_[s].get();
      if (log != nullptr) {
        payload = serve_persist::EncodePairsBatch(
            serve_persist::WalOp::kAddPairs, sub[s]);
      }
      added[s] = shards_[s]->Write([&](RelationIndex& rel) {
        uint64_t n = rel.AddPairsBulk(sub[s]);
        if (log != nullptr) {
          // Inside this shard's exclusive section: the pool worker is the
          // shard log's writer for the batch.
          log->writer_role().AssertHeld();
          log->LogApplied(payload);
          log->MaybeSync();
        }
        return n;
      });
    });
  }
  pool_.RunAll(std::move(tasks));
  uint64_t total = 0;
  for (uint64_t a : added) total += a;
  return total;
}

uint64_t ShardedRelation::RemovePairsBatch(const RelationPairs& pairs) {
  const uint32_t k = num_shards();
  std::vector<RelationPairs> sub(k);
  for (auto [o, a] : pairs) sub[shard_of_object(o)].push_back({o, a});
  std::vector<uint64_t> removed(k, 0);
  std::vector<std::function<void()>> tasks;
  for (uint32_t s = 0; s < k; ++s) {
    if (sub[s].empty()) continue;
    tasks.push_back([this, s, &sub, &removed] {
      std::string payload;
      serve_persist::DurableLog* log = logs_.empty() ? nullptr : logs_[s].get();
      if (log != nullptr) {
        payload = serve_persist::EncodePairsBatch(
            serve_persist::WalOp::kRemovePairs, sub[s]);
      }
      removed[s] = shards_[s]->Write([&](RelationIndex& rel) {
        uint64_t n = 0;
        for (auto [o, a] : sub[s]) n += rel.RemovePair(o, a);
        if (log != nullptr) {
          log->writer_role().AssertHeld();
          log->LogApplied(payload);
          log->MaybeSync();
        }
        return n;
      });
    });
  }
  pool_.RunAll(std::move(tasks));
  uint64_t total = 0;
  for (uint64_t r : removed) total += r;
  return total;
}

persist::Status ShardedRelation::OpenDurable(persist::Env* env,
                                             const std::string& dir,
                                             const DurableOptions& opt,
                                             RecoveryStats* stats) {
  DYNDEX_CHECK(logs_.empty());
  const uint32_t k = num_shards();
  DYNDEX_RETURN_IF_ERROR(env->CreateDir(dir));

  serve_persist::SnapshotMeta manifest;
  persist::Status ms = serve_persist::ReadManifest(env, dir, &manifest);
  const bool fresh = ms.IsNotFound();
  if (!fresh) {
    DYNDEX_RETURN_IF_ERROR(ms);  // a damaged manifest is loud, not "fresh"
    DYNDEX_RETURN_IF_ERROR(serve_persist::CheckManifest(
        manifest, serve_persist::StateKind::kShardedRelation, k,
        backend_name()));
  }

  std::vector<std::string> shard_dirs(k);
  for (uint32_t s = 0; s < k; ++s) {
    shard_dirs[s] = dir + "/shard-" + std::to_string(s);
    if (!fresh && !env->FileExists(shard_dirs[s] + "/" +
                                   serve_persist::kWalFileName)) {
      // The manifest binds this shard; its vanished state must not be served
      // as an empty shard.
      return persist::Status::Corruption(
          "manifest binds shard " + std::to_string(s) +
          " but its durable state is missing");
    }
  }

  // Parallel recovery: shards are independent (own dir, own core, own log).
  std::vector<std::unique_ptr<serve_persist::DurableLog>> logs(k);
  std::vector<persist::Status> st(k);
  std::vector<RecoveryStats> shard_stats(k);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(k);
  for (uint32_t s = 0; s < k; ++s) {
    tasks.push_back([this, s, env, &opt, &shard_dirs, &logs, &st,
                     &shard_stats] {
      st[s] = serve_persist::OpenDurableRelationCore(
          env, shard_dirs[s], opt, *shards_[s], &logs[s], &shard_stats[s]);
    });
  }
  pool_.RunAll(std::move(tasks));
  for (uint32_t s = 0; s < k; ++s) DYNDEX_RETURN_IF_ERROR(st[s]);

  if (fresh) {
    serve_persist::SnapshotMeta meta;
    meta.kind = serve_persist::StateKind::kShardedRelation;
    meta.backend = backend_name();
    meta.num_shards = k;
    DYNDEX_RETURN_IF_ERROR(serve_persist::WriteManifest(env, dir, meta));
  }

  if (stats != nullptr) {
    RecoveryStats total;
    for (const RecoveryStats& s : shard_stats) {
      total.snapshot_loaded |= s.snapshot_loaded;
      total.snapshot_seq += s.snapshot_seq;
      total.replayed_batches += s.replayed_batches;
      total.skipped_frames += s.skipped_frames;
      total.dropped_wal_bytes += s.dropped_wal_bytes;
    }
    *stats = total;
  }
  logs_ = std::move(logs);
  return persist::Status::Ok();
}

persist::Status ShardedRelation::Checkpoint() {
  DYNDEX_CHECK(!logs_.empty());
  const uint32_t k = num_shards();
  std::vector<persist::Status> st(k);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(k);
  for (uint32_t s = 0; s < k; ++s) {
    tasks.push_back([this, s, &st] {
      st[s] = serve_persist::CheckpointRelationCore(*shards_[s], *logs_[s]);
    });
  }
  pool_.RunAll(std::move(tasks));
  for (uint32_t s = 0; s < k; ++s) DYNDEX_RETURN_IF_ERROR(st[s]);
  return persist::Status::Ok();
}

persist::Status ShardedRelation::SyncWal() {
  DYNDEX_CHECK(!logs_.empty());
  // Durability entry points run quiesced (no concurrent batch writers), so
  // this thread holds every shard log's writer role.
  for (auto& log : logs_) {
    log->writer_role().AssertHeld();
    DYNDEX_RETURN_IF_ERROR(log->Sync());
  }
  return persist::Status::Ok();
}

persist::Status ShardedRelation::CloseDurable() {
  DYNDEX_CHECK(!logs_.empty());
  persist::Status first = persist::Status::Ok();
  for (auto& log : logs_) {
    log->writer_role().AssertHeld();
    persist::Status s = log->Close();
    if (first.ok()) first = s;
  }
  logs_.clear();
  return first;
}

void ShardedRelation::CheckInvariants() const {
  for (const auto& shard : shards_) {
    shard->Read(nullptr,
                [](const RelationIndex& rel) { rel.CheckInvariants(); });
  }
}

}  // namespace dyndex
