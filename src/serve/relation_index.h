// The relation-serving facade: one polymorphic interface over every dynamic
// binary-relation structure in the repo, so servers, tests and benchmarks can
// swap backends without recompiling against a different template — the
// Theorem 2/3 analogue of serve/dynamic_index.h.
//
// Three families implement it (via one duck-typed adapter):
//  * DynamicRelation  -- Theorem 2: the paper's framework (C0 + deletion-only
//                        compressed sub-collections on the T1 schedule)
//  * BaselineRelation -- Navarro-Nekrich [35]: dynamic wavelet tree + dynamic
//                        bit vector, the structure Theorem 2 improves on
//  * DynamicGraph     -- Theorem 3: a digraph served as the relation
//                        edge u -> v == pair (u, v)
//  * FastRelation     -- uncompressed speed tier: radix-paged adjacency
//                        sets + mirrored reverse index (relation/fast_relation.h)
//
// All query methods are const: the adapter stores the relation by value and
// calls through from const members, so any mutation hiding in a backend's
// query path fails to compile here. This is the single-threaded facade;
// serve/concurrent_relation.h adds the reader/writer discipline on top.
#ifndef DYNDEX_SERVE_RELATION_INDEX_H_
#define DYNDEX_SERVE_RELATION_INDEX_H_

#include <concepts>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "relation/baseline_relation.h"
#include "relation/deletion_only_shell.h"
#include "relation/dynamic_graph.h"
#include "relation/dynamic_relation.h"
#include "relation/fast_relation.h"

namespace dyndex {

/// Batched (object, label) pairs — or (source, target) edges — in external
/// id space, as produced by gen/relation_gen.h.
using RelationPairs = std::vector<std::pair<uint32_t, uint32_t>>;

/// Polymorphic fully-dynamic binary relation / digraph.
///
/// Degenerate inputs have uniform, total semantics at this facade for every
/// backend (backends with fixed capacities keep strict DYNDEX_CHECK
/// preconditions): ids a backend cannot represent never reach it — AddPair /
/// RemovePair / Related report false, LabelsOf / ObjectsOf report empty, the
/// counting queries report 0, and nothing aborts.
class RelationIndex {
 public:
  virtual ~RelationIndex() = default;

  // Mutations (writer thread only; see concurrent_relation.h).
  virtual bool AddPair(uint32_t object, uint32_t label) = 0;
  virtual bool RemovePair(uint32_t object, uint32_t label) = 0;

  /// Adds a batch; returns how many pairs were new. Backends with a bulk
  /// path (all three) load cold-start batches in one build instead of
  /// |batch| pairwise dynamic insertions; the default loops over AddPair.
  virtual uint64_t AddPairsBulk(const RelationPairs& pairs) {
    uint64_t added = 0;
    for (auto [o, a] : pairs) added += AddPair(o, a);
    return added;
  }

  // Queries (const end to end).
  virtual bool Related(uint32_t object, uint32_t label) const = 0;
  virtual std::vector<uint32_t> LabelsOf(uint32_t object) const = 0;
  virtual std::vector<uint32_t> ObjectsOf(uint32_t label) const = 0;
  virtual uint64_t CountLabelsOf(uint32_t object) const = 0;
  virtual uint64_t CountObjectsOf(uint32_t label) const = 0;
  virtual uint64_t num_pairs() const = 0;
  virtual uint64_t SpaceBytes() const = 0;

  /// Structural self-check (no-op where the backend offers none).
  virtual void CheckInvariants() const {}

  /// Copies every live pair (sorted, duplicate-free) — the snapshot-export
  /// path; restoring is AddPairsBulk on a fresh facade (the logical state of
  /// a relation is exactly its pair set).
  virtual void ExportLivePairs(RelationPairs* out) const = 0;

  virtual const char* backend_name() const = 0;

  // Graph view (Theorem 3): edge u -> v is the pair (u, v), so out-neighbors
  // are labels-of-u and reverse (in-)neighbors are objects-of-v.
  bool AddEdge(uint32_t u, uint32_t v) { return AddPair(u, v); }
  bool RemoveEdge(uint32_t u, uint32_t v) { return RemovePair(u, v); }
  uint64_t AddEdgesBulk(const RelationPairs& edges) {
    return AddPairsBulk(edges);
  }
  bool HasEdge(uint32_t u, uint32_t v) const { return Related(u, v); }
  std::vector<uint32_t> Neighbors(uint32_t u) const { return LabelsOf(u); }
  std::vector<uint32_t> Reverse(uint32_t v) const { return ObjectsOf(v); }
  uint64_t OutDegree(uint32_t u) const { return CountLabelsOf(u); }
  uint64_t InDegree(uint32_t v) const { return CountObjectsOf(v); }
  uint64_t num_edges() const { return num_pairs(); }
};

/// The complete pair-named backend surface (DynamicRelation-style naming).
/// Bulk members are deliberately not part of the concept: AddPairsBulk /
/// AddEdgesBulk are optional capabilities, either name works regardless of
/// which family the backend's point members use.
template <typename Rel>
concept PairNamedRelationBackend =
    requires(Rel& w, const Rel& r, uint32_t id, RelationPairs* out) {
      { w.AddPair(id, id) } -> std::convertible_to<bool>;
      { w.RemovePair(id, id) } -> std::convertible_to<bool>;
      { r.Related(id, id) } -> std::convertible_to<bool>;
      r.ForEachLabelOfObject(id, [](uint32_t) {});
      r.ForEachObjectOfLabel(id, [](uint32_t) {});
      { r.CountLabelsOf(id) } -> std::convertible_to<uint64_t>;
      { r.CountObjectsOf(id) } -> std::convertible_to<uint64_t>;
      { r.num_pairs() } -> std::convertible_to<uint64_t>;
      { r.SpaceBytes() } -> std::convertible_to<uint64_t>;
      r.ExportLivePairs(out);
    };

/// The complete edge-named backend surface (DynamicGraph-style naming).
template <typename Rel>
concept EdgeNamedRelationBackend =
    requires(Rel& w, const Rel& r, uint32_t id, RelationPairs* out) {
      { w.AddEdge(id, id) } -> std::convertible_to<bool>;
      { w.RemoveEdge(id, id) } -> std::convertible_to<bool>;
      { r.HasEdge(id, id) } -> std::convertible_to<bool>;
      r.ForEachOutNeighbor(id, [](uint32_t) {});
      r.ForEachInNeighbor(id, [](uint32_t) {});
      { r.OutDegree(id) } -> std::convertible_to<uint64_t>;
      { r.InDegree(id) } -> std::convertible_to<uint64_t>;
      { r.num_edges() } -> std::convertible_to<uint64_t>;
      { r.SpaceBytes() } -> std::convertible_to<uint64_t>;
      r.ExportLiveEdges(out);
    };

/// Adapter over any relation-shaped backend. Pair-named members
/// (AddPair/RemovePair/Related/ForEach*/Count*) and edge-named members
/// (AddEdge/RemoveEdge/HasEdge/ForEach*Neighbor/Degrees) are both accepted,
/// detected with `requires`; optional capabilities (AddPairsBulk or
/// AddEdgesBulk — either name, no need for both — and CheckInvariants) are
/// forwarded when present.
template <typename Rel>
class RelationAdapter final : public RelationIndex {
  static_assert(
      PairNamedRelationBackend<Rel> || EdgeNamedRelationBackend<Rel>,
      "RelationAdapter<Rel>: Rel satisfies neither the pair-named relation "
      "surface (AddPair / RemovePair / Related / ForEachLabelOfObject / "
      "ForEachObjectOfLabel / CountLabelsOf / CountObjectsOf / num_pairs / "
      "SpaceBytes / ExportLivePairs) nor the edge-named graph surface "
      "(AddEdge / RemoveEdge / HasEdge / ForEachOutNeighbor / "
      "ForEachInNeighbor / OutDegree / InDegree / num_edges / SpaceBytes / "
      "ExportLiveEdges). Implement one family completely; the bulk member "
      "(AddPairsBulk or AddEdgesBulk) stays optional under either name.");

 public:
  template <typename... Args>
  explicit RelationAdapter(const char* name, Args&&... args)
      : name_(name), rel_(std::forward<Args>(args)...) {}

  bool AddPair(uint32_t object, uint32_t label) override {
    if (!Representable(object, label)) return false;
    if constexpr (requires(Rel& r) { r.AddPair(object, label); }) {
      return rel_.AddPair(object, label);
    } else {
      return rel_.AddEdge(object, label);
    }
  }

  bool RemovePair(uint32_t object, uint32_t label) override {
    if (!Representable(object, label)) return false;
    if constexpr (requires(Rel& r) { r.RemovePair(object, label); }) {
      return rel_.RemovePair(object, label);
    } else {
      return rel_.RemoveEdge(object, label);
    }
  }

  uint64_t AddPairsBulk(const RelationPairs& pairs) override {
    // Screen out unrepresentable pairs once, so backend bulk builds see only
    // ids within capacity (fixed-capacity backends abort otherwise).
    const RelationPairs* effective = &pairs;
    RelationPairs kept;
    if constexpr (HasCapacity()) {
      bool all_ok = true;
      for (auto [o, a] : pairs) all_ok &= Representable(o, a);
      if (!all_ok) {
        for (auto [o, a] : pairs) {
          if (Representable(o, a)) kept.push_back({o, a});
        }
        effective = &kept;
      }
    }
    if constexpr (requires(Rel& r) { r.AddPairsBulk(pairs); }) {
      return rel_.AddPairsBulk(*effective);
    } else if constexpr (requires(Rel& r) { r.AddEdgesBulk(pairs); }) {
      return rel_.AddEdgesBulk(*effective);
    } else {
      return RelationIndex::AddPairsBulk(*effective);
    }
  }

  bool Related(uint32_t object, uint32_t label) const override {
    if (!Representable(object, label)) return false;
    if constexpr (requires(const Rel& r) { r.Related(object, label); }) {
      return rel_.Related(object, label);
    } else {
      return rel_.HasEdge(object, label);
    }
  }

  std::vector<uint32_t> LabelsOf(uint32_t object) const override {
    if (!ObjectInRange(object)) return {};
    std::vector<uint32_t> out;
    if constexpr (requires(const Rel& r) {
                    r.ForEachLabelOfObject(object, [](uint32_t) {});
                  }) {
      rel_.ForEachLabelOfObject(object,
                                [&](uint32_t a) { out.push_back(a); });
    } else {
      rel_.ForEachOutNeighbor(object, [&](uint32_t a) { out.push_back(a); });
    }
    return out;
  }

  std::vector<uint32_t> ObjectsOf(uint32_t label) const override {
    if (!LabelInRange(label)) return {};
    std::vector<uint32_t> out;
    if constexpr (requires(const Rel& r) {
                    r.ForEachObjectOfLabel(label, [](uint32_t) {});
                  }) {
      rel_.ForEachObjectOfLabel(label, [&](uint32_t o) { out.push_back(o); });
    } else {
      rel_.ForEachInNeighbor(label, [&](uint32_t o) { out.push_back(o); });
    }
    return out;
  }

  uint64_t CountLabelsOf(uint32_t object) const override {
    if (!ObjectInRange(object)) return 0;
    if constexpr (requires(const Rel& r) { r.CountLabelsOf(object); }) {
      return rel_.CountLabelsOf(object);
    } else {
      return rel_.OutDegree(object);
    }
  }

  uint64_t CountObjectsOf(uint32_t label) const override {
    if (!LabelInRange(label)) return 0;
    if constexpr (requires(const Rel& r) { r.CountObjectsOf(label); }) {
      return rel_.CountObjectsOf(label);
    } else {
      return rel_.InDegree(label);
    }
  }

  uint64_t num_pairs() const override {
    if constexpr (requires(const Rel& r) { r.num_pairs(); }) {
      return rel_.num_pairs();
    } else {
      return rel_.num_edges();
    }
  }

  uint64_t SpaceBytes() const override { return rel_.SpaceBytes(); }

  void CheckInvariants() const override {
    if constexpr (requires(const Rel& r) { r.CheckInvariants(); }) {
      rel_.CheckInvariants();
    }
  }

  void ExportLivePairs(RelationPairs* out) const override {
    if constexpr (requires(const Rel& r) { r.ExportLivePairs(out); }) {
      rel_.ExportLivePairs(out);
    } else {
      rel_.ExportLiveEdges(out);
    }
  }

  const char* backend_name() const override { return name_; }

  Rel& relation() { return rel_; }
  const Rel& relation() const { return rel_; }

 private:
  /// Whether the backend advertises fixed id capacities (the deletion-only
  /// shell does; the Theorem 2/3 structures accept any uint32 id and the
  /// Navarro-Nekrich baseline grows its capacities on demand).
  static constexpr bool HasCapacity() {
    return requires(const Rel& r) {
      r.max_objects();
      r.max_labels();
    };
  }

  bool ObjectInRange(uint32_t object) const {
    if constexpr (HasCapacity()) return object < rel_.max_objects();
    return true;
  }
  bool LabelInRange(uint32_t label) const {
    if constexpr (HasCapacity()) return label < rel_.max_labels();
    return true;
  }
  bool Representable(uint32_t object, uint32_t label) const {
    return ObjectInRange(object) && LabelInRange(label);
  }

  const char* name_;
  Rel rel_;
};

/// Which structure backs the relation facade.
///  * kTheorem2     -- the paper's framework (DynamicRelation)
///  * kBaseline     -- Navarro-Nekrich dynamic rank/select (BaselineRelation)
///  * kGraph        -- Theorem 3 digraph view (DynamicGraph)
///  * kDeletionOnly -- Section 5's deletion-only structure behind the
///                     rebuild-on-insert shell (DeletionOnlyShell)
///  * kFast         -- uncompressed speed tier (FastRelation): radix-paged
///                     directory of inline/hash adjacency sets, mirrored
///                     reverse index — bytes traded for raw update and scan
///                     rate (the hot tier; the succinct backends are the
///                     cold tier)
enum class RelationBackend { kTheorem2, kBaseline, kGraph, kDeletionOnly, kFast };

const char* RelationBackendName(RelationBackend backend);

/// One options bag for every backend; fields irrelevant to the chosen
/// backend are ignored (e.g. `baseline_*` outside kBaseline).
struct RelationIndexOptions {
  uint32_t tau = 0;        // dead-fraction purge knob; 0 = auto
  double epsilon = 0.5;    // Transformation-1 growth exponent
  uint64_t min_c0 = 1024;  // C0 capacity floor in pairs
  uint32_t baseline_max_objects = 4096;  // initial capacities of [35];
  uint32_t baseline_max_labels = 4096;   // they double on demand
  uint32_t fast_inline_threshold = 12;   // kFast: sorted-array -> hash-set
                                         // promotion size
};

/// Builds a facade over the requested backend.
std::unique_ptr<RelationIndex> MakeRelationIndex(
    RelationBackend backend, const RelationIndexOptions& opt = {});

}  // namespace dyndex

#endif  // DYNDEX_SERVE_RELATION_INDEX_H_
