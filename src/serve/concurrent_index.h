// Concurrent query serving over a DynamicIndex: N reader threads run
// Count/Locate/Extract against a consistent snapshot while one writer thread
// applies batched updates.
//
// The lock discipline (shared_mutex readers, writer-priority gate, epoch as
// the linearization point, publication of Transformation 2's background
// builds under the exclusive lock) lives in the shared serving core,
// serve/epoch_guard.h; this class only maps the document API onto it. The
// relation/graph analogue is serve/concurrent_relation.h.
#ifndef DYNDEX_SERVE_CONCURRENT_INDEX_H_
#define DYNDEX_SERVE_CONCURRENT_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/occurrence.h"
#include "persist/env.h"
#include "persist/status.h"
#include "serve/dynamic_index.h"
#include "serve/epoch_guard.h"
#include "serve/persistence.h"
#include "text/concat_text.h"

namespace dyndex {

class ConcurrentIndex {
 public:
  explicit ConcurrentIndex(std::unique_ptr<DynamicIndex> index)
      : core_(std::move(index)) {}

  // --- reader API (any thread) ---------------------------------------------
  // Every query optionally reports the epoch of the snapshot it observed.

  uint64_t Count(const std::vector<Symbol>& pattern,
                 uint64_t* epoch = nullptr) const;
  std::vector<Occurrence> Locate(const std::vector<Symbol>& pattern,
                                 uint64_t* epoch = nullptr) const;
  /// False (out untouched) when the document is absent in the snapshot.
  bool Extract(DocId id, uint64_t from, uint64_t len, std::vector<Symbol>* out,
               uint64_t* epoch = nullptr) const;
  uint64_t num_docs(uint64_t* epoch = nullptr) const;

  /// Number of applied write batches so far (plain atomic load).
  uint64_t epoch() const { return core_.epoch(); }
  /// Current seqlock word of the serving core (even = quiescent).
  uint64_t sequence() const { return core_.sequence(); }

  /// Optimistic read-path knobs / counters (see serve/epoch_guard.h).
  /// Policies are atomic snapshots — settable at any time, readers in
  /// flight or not.
  void set_optimistic_policy(const OptimisticPolicy& policy) {
    core_.set_optimistic_policy(policy);
  }
  OptimisticStats optimistic_stats() const {
    return core_.optimistic_stats();
  }
  /// Reader-progress-aware write pacing knobs / counters: when enabled and
  /// readers report stalled captures, InsertBatch/EraseBatch wait (bounded,
  /// no lock held) for an even-sequence window before admitting the batch.
  void set_pacing_policy(const PacingPolicy& policy) {
    core_.set_pacing_policy(policy);
  }
  PacingPolicy pacing_policy() const { return core_.pacing_policy(); }
  PacingStats pacing_stats() const { return core_.pacing_stats(); }
  /// Retired-but-not-yet-reclaimed batches (grace period still open).
  uint64_t retired_pending() const { return core_.retired_pending(); }

  // --- writer API (one thread at a time) -----------------------------------

  /// Applies the batch atomically w.r.t. readers; returns the new ids.
  std::vector<DocId> InsertBatch(std::vector<std::vector<Symbol>> docs);
  /// Returns how many of `ids` were present and erased.
  uint64_t EraseBatch(const std::vector<DocId>& ids);
  /// Publishes finished background builds without applying updates.
  void Poll();
  /// Blocks until all background builds are published (test barrier).
  void Flush();

  // --- durability (writer thread; see serve/persistence.h) -----------------

  /// Binds this (fresh, empty) facade to `dir`: recovers snapshot + WAL tail
  /// if present, then logs every subsequent batch. Corrupt snapshot /
  /// mismatched backend is a loud error, never a silently-empty index.
  persist::Status OpenDurable(persist::Env* env, const std::string& dir,
                              const DurableOptions& opt = {},
                              RecoveryStats* stats = nullptr);
  /// Writes a fresh snapshot (atomic rename) and resets the WAL.
  persist::Status Checkpoint();
  /// Forces the WAL to disk regardless of the group-commit window; also
  /// surfaces any sticky append/sync failure from earlier batches.
  persist::Status SyncWal();
  /// Final sync + detach; the facade keeps serving, un-durably.
  persist::Status CloseDurable();
  bool durable() const { return log_ != nullptr; }

  const char* backend_name() const {
    return core_.unsynchronized().backend_name();
  }

  /// The wrapped index, with no locking. Callers must guarantee quiescence.
  DynamicIndex& unsynchronized() { return core_.unsynchronized(); }

 private:
  EpochGuard<DynamicIndex> core_;
  std::unique_ptr<serve_persist::DurableLog> log_;  // null until OpenDurable
};

}  // namespace dyndex

#endif  // DYNDEX_SERVE_CONCURRENT_INDEX_H_
