// Concurrent query serving over a DynamicIndex: N reader threads run
// Count/Locate/Extract against a consistent snapshot while one writer thread
// applies batched updates.
//
// Concurrency model (documented in README.md):
//  * Readers take the shared side of a std::shared_mutex for the duration of
//    one query; any number may run in parallel. A writer-priority gate
//    (writer_waiting_) makes new readers stand aside while a writer is
//    queued: glibc's rwlock prefers readers by default, and a saturating
//    read workload would otherwise starve the writer forever (observed as a
//    livelock in serve_concurrent_test before the gate existed).
//  * The single writer takes the exclusive side per *batch*: it applies every
//    update of the batch, publishes any finished background builds
//    (DynamicIndex::PollPending — Transformation 2's swap step), bumps the
//    epoch, and releases. Readers therefore never observe a half-applied
//    batch or a half-swapped level.
//  * Transformation 2's builder threads keep running outside the lock: they
//    touch only their private document snapshots (see transformation2.h), so
//    a rebuild costs readers nothing until its O(1)-ish publication.
//
// The epoch is the linearization point: every query reports the epoch of the
// snapshot it ran against, and two queries reporting the same epoch saw the
// same collection state. The differential model-checking harness keys its
// per-state expectations on exactly this value.
#ifndef DYNDEX_SERVE_CONCURRENT_INDEX_H_
#define DYNDEX_SERVE_CONCURRENT_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "core/occurrence.h"
#include "serve/dynamic_index.h"
#include "text/concat_text.h"

namespace dyndex {

class ConcurrentIndex {
 public:
  explicit ConcurrentIndex(std::unique_ptr<DynamicIndex> index);

  // --- reader API (any thread) ---------------------------------------------
  // Every query optionally reports the epoch of the snapshot it observed.

  uint64_t Count(const std::vector<Symbol>& pattern,
                 uint64_t* epoch = nullptr) const;
  std::vector<Occurrence> Locate(const std::vector<Symbol>& pattern,
                                 uint64_t* epoch = nullptr) const;
  /// False (out untouched) when the document is absent in the snapshot.
  bool Extract(DocId id, uint64_t from, uint64_t len, std::vector<Symbol>* out,
               uint64_t* epoch = nullptr) const;
  uint64_t num_docs(uint64_t* epoch = nullptr) const;

  /// Number of applied write batches so far.
  uint64_t epoch() const;

  // --- writer API (one thread at a time) -----------------------------------

  /// Applies the batch atomically w.r.t. readers; returns the new ids.
  std::vector<DocId> InsertBatch(std::vector<std::vector<Symbol>> docs);
  /// Returns how many of `ids` were present and erased.
  uint64_t EraseBatch(const std::vector<DocId>& ids);
  /// Publishes finished background builds without applying updates.
  void Poll();
  /// Blocks until all background builds are published (test barrier).
  void Flush();

  const char* backend_name() const { return index_->backend_name(); }

  /// The wrapped index, with no locking. Callers must guarantee quiescence.
  DynamicIndex& unsynchronized() { return *index_; }

 private:
  /// Shared lock with the writer-priority gate applied.
  class ReadGuard {
   public:
    explicit ReadGuard(const ConcurrentIndex& idx);
    ~ReadGuard();

   private:
    const ConcurrentIndex& idx_;
  };
  /// Exclusive lock that raises writer_waiting_ while queueing.
  class WriteGuard {
   public:
    explicit WriteGuard(ConcurrentIndex& idx);
    ~WriteGuard();

   private:
    ConcurrentIndex& idx_;
  };

  mutable std::shared_mutex mu_;
  std::atomic<uint32_t> writer_waiting_{0};  // queued writers
  std::unique_ptr<DynamicIndex> index_;      // guarded by mu_
  uint64_t epoch_ = 0;                       // guarded by mu_
};

}  // namespace dyndex

#endif  // DYNDEX_SERVE_CONCURRENT_INDEX_H_
