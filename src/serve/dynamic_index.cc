#include "serve/dynamic_index.h"

#include "text/fm_index.h"
#include "util/check.h"

namespace dyndex {

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kT1:
      return "t1";
    case Backend::kT2:
      return "t2";
    case Backend::kT3:
      return "t3";
    case Backend::kBaseline:
      return "baseline";
  }
  DYNDEX_CHECK(false);
  return "?";
}

std::unique_ptr<DynamicIndex> MakeDynamicIndex(Backend backend,
                                               const DynamicIndexOptions& opt) {
  FmIndex::Options fm;
  fm.sample_rate = opt.sample_rate;
  switch (backend) {
    case Backend::kT1:
    case Backend::kT3: {
      DynamicCollectionOptions o;
      o.tau = opt.tau;
      o.epsilon = opt.epsilon;
      o.min_c0 = opt.min_c0;
      o.counting = opt.counting;
      o.growth = backend == Backend::kT3 ? GrowthPolicy::kDoubling
                                         : GrowthPolicy::kPolylog;
      return std::make_unique<CollectionIndex<DynamicCollectionT1<FmIndex>>>(
          BackendName(backend), o, fm);
    }
    case Backend::kT2: {
      T2Options o;
      o.tau = opt.tau;
      o.epsilon = opt.epsilon;
      o.min_c0 = opt.min_c0;
      o.counting = opt.counting;
      o.mode = opt.mode;
      return std::make_unique<CollectionIndex<DynamicCollectionT2<FmIndex>>>(
          BackendName(backend), o, fm);
    }
    case Backend::kBaseline: {
      DynamicFmIndex::Options o;
      o.max_docs = opt.baseline_max_docs;
      o.max_symbol = opt.baseline_max_symbol;
      o.sample_rate = opt.sample_rate;
      return std::make_unique<CollectionIndex<DynamicFmIndex>>(
          BackendName(backend), o);
    }
  }
  DYNDEX_CHECK(false);
  return nullptr;
}

}  // namespace dyndex
