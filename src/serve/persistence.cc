#include "serve/persistence.h"

#include <string>
#include <utility>
#include <vector>

#include "persist/format.h"
#include "util/check.h"

namespace dyndex {
namespace serve_persist {

namespace {

using persist::Decoder;
using persist::Status;

/// Guards against a length field (already CRC-checked, but possibly from a
/// foreign or future-format record) demanding more elements than the payload
/// can physically hold — refuse before allocating.
bool FitsRemaining(const Decoder& dec, uint64_t count, uint64_t unit) {
  return unit == 0 || count <= dec.remaining() / unit;
}

}  // namespace

// --- WAL record codec ------------------------------------------------------

std::string EncodeInsertBatch(const std::vector<std::vector<Symbol>>& docs) {
  std::string out;
  persist::PutU8(&out, static_cast<uint8_t>(WalOp::kInsertDocs));
  persist::PutU32(&out, static_cast<uint32_t>(docs.size()));
  for (const auto& doc : docs) {
    persist::PutU64(&out, doc.size());
    for (Symbol s : doc) persist::PutU32(&out, s);
  }
  return out;
}

std::string EncodeEraseBatch(const std::vector<DocId>& ids) {
  std::string out;
  persist::PutU8(&out, static_cast<uint8_t>(WalOp::kEraseDocs));
  persist::PutU32(&out, static_cast<uint32_t>(ids.size()));
  for (DocId id : ids) persist::PutU64(&out, id);
  return out;
}

std::string EncodePairsBatch(WalOp op, const RelationPairs& pairs) {
  DYNDEX_CHECK(op == WalOp::kAddPairs || op == WalOp::kRemovePairs);
  std::string out;
  persist::PutU8(&out, static_cast<uint8_t>(op));
  persist::PutU32(&out, static_cast<uint32_t>(pairs.size()));
  for (auto [o, a] : pairs) {
    persist::PutU32(&out, o);
    persist::PutU32(&out, a);
  }
  return out;
}

persist::Status DecodeWalRecord(std::string_view payload, WalRecord* out) {
  Decoder dec(payload);
  uint8_t op = 0;
  uint32_t n = 0;
  if (!dec.GetU8(&op) || !dec.GetU32(&n)) {
    return Status::Corruption("WAL record header truncated");
  }
  out->docs.clear();
  out->ids.clear();
  out->pairs.clear();
  switch (static_cast<WalOp>(op)) {
    case WalOp::kInsertDocs: {
      out->op = WalOp::kInsertDocs;
      if (!FitsRemaining(dec, n, 8)) {
        return Status::Corruption("WAL insert record count overruns payload");
      }
      out->docs.reserve(n);
      for (uint32_t d = 0; d < n; ++d) {
        uint64_t len = 0;
        if (!dec.GetU64(&len) || !FitsRemaining(dec, len, 4)) {
          return Status::Corruption("WAL insert record document truncated");
        }
        std::vector<Symbol> doc;
        doc.reserve(len);
        for (uint64_t i = 0; i < len; ++i) {
          uint32_t s = 0;
          if (!dec.GetU32(&s)) {
            return Status::Corruption("WAL insert record document truncated");
          }
          doc.push_back(s);
        }
        out->docs.push_back(std::move(doc));
      }
      break;
    }
    case WalOp::kEraseDocs: {
      out->op = WalOp::kEraseDocs;
      if (!FitsRemaining(dec, n, 8)) {
        return Status::Corruption("WAL erase record count overruns payload");
      }
      out->ids.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        uint64_t id = 0;
        if (!dec.GetU64(&id)) {
          return Status::Corruption("WAL erase record truncated");
        }
        out->ids.push_back(id);
      }
      break;
    }
    case WalOp::kAddPairs:
    case WalOp::kRemovePairs: {
      out->op = static_cast<WalOp>(op);
      if (!FitsRemaining(dec, n, 8)) {
        return Status::Corruption("WAL pair record count overruns payload");
      }
      out->pairs.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        uint32_t o = 0, a = 0;
        if (!dec.GetU32(&o) || !dec.GetU32(&a)) {
          return Status::Corruption("WAL pair record truncated");
        }
        out->pairs.push_back({o, a});
      }
      break;
    }
    default:
      return Status::Corruption("WAL record has unknown op");
  }
  if (!dec.AtEnd()) {
    return Status::Corruption("WAL record has trailing bytes");
  }
  return Status::Ok();
}

// --- snapshot section codecs ----------------------------------------------

std::string EncodeMeta(const SnapshotMeta& meta) {
  std::string out;
  persist::PutU32(&out, meta.version);
  persist::PutU8(&out, static_cast<uint8_t>(meta.kind));
  persist::PutLengthPrefixed(&out, meta.backend);
  persist::PutU64(&out, meta.last_seq);
  persist::PutU64(&out, meta.next_id);
  persist::PutU32(&out, meta.num_shards);
  return out;
}

persist::Status DecodeMeta(std::string_view data, SnapshotMeta* out) {
  Decoder dec(data);
  uint8_t kind = 0;
  std::string_view backend;
  if (!dec.GetU32(&out->version) || !dec.GetU8(&kind) ||
      !dec.GetLengthPrefixed(&backend) || !dec.GetU64(&out->last_seq) ||
      !dec.GetU64(&out->next_id) || !dec.GetU32(&out->num_shards) ||
      !dec.AtEnd()) {
    return Status::Corruption("snapshot meta section malformed");
  }
  if (out->version != kFormatVersion) {
    return Status::InvalidArgument("snapshot format version " +
                                   std::to_string(out->version) +
                                   " not supported (expected " +
                                   std::to_string(kFormatVersion) + ")");
  }
  if (kind < static_cast<uint8_t>(StateKind::kIndex) ||
      kind > static_cast<uint8_t>(StateKind::kShardedRelation)) {
    return Status::Corruption("snapshot meta has unknown state kind");
  }
  out->kind = static_cast<StateKind>(kind);
  out->backend.assign(backend);
  return Status::Ok();
}

std::string EncodeDocs(const std::vector<Document>& docs) {
  std::string out;
  persist::PutU64(&out, docs.size());
  for (const Document& doc : docs) {
    persist::PutU64(&out, doc.id);
    persist::PutU64(&out, doc.symbols.size());
    for (Symbol s : doc.symbols) persist::PutU32(&out, s);
  }
  return out;
}

persist::Status DecodeDocs(std::string_view data, std::vector<Document>* out) {
  Decoder dec(data);
  uint64_t n = 0;
  if (!dec.GetU64(&n) || !FitsRemaining(dec, n, 16)) {
    return Status::Corruption("snapshot docs section malformed");
  }
  out->clear();
  out->reserve(n);
  for (uint64_t d = 0; d < n; ++d) {
    Document doc;
    uint64_t len = 0;
    if (!dec.GetU64(&doc.id) || !dec.GetU64(&len) ||
        !FitsRemaining(dec, len, 4)) {
      return Status::Corruption("snapshot docs section truncated");
    }
    doc.symbols.reserve(len);
    for (uint64_t i = 0; i < len; ++i) {
      uint32_t s = 0;
      if (!dec.GetU32(&s)) {
        return Status::Corruption("snapshot docs section truncated");
      }
      doc.symbols.push_back(s);
    }
    out->push_back(std::move(doc));
  }
  if (!dec.AtEnd()) {
    return Status::Corruption("snapshot docs section has trailing bytes");
  }
  return Status::Ok();
}

std::string EncodePairs(const RelationPairs& pairs) {
  std::string out;
  persist::PutU64(&out, pairs.size());
  for (auto [o, a] : pairs) {
    persist::PutU32(&out, o);
    persist::PutU32(&out, a);
  }
  return out;
}

persist::Status DecodePairs(std::string_view data, RelationPairs* out) {
  Decoder dec(data);
  uint64_t n = 0;
  if (!dec.GetU64(&n) || !FitsRemaining(dec, n, 8)) {
    return Status::Corruption("snapshot pairs section malformed");
  }
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t o = 0, a = 0;
    if (!dec.GetU32(&o) || !dec.GetU32(&a)) {
      return Status::Corruption("snapshot pairs section truncated");
    }
    out->push_back({o, a});
  }
  if (!dec.AtEnd()) {
    return Status::Corruption("snapshot pairs section has trailing bytes");
  }
  return Status::Ok();
}

// --- DurableLog ------------------------------------------------------------

persist::Status DurableLog::Attach(
    persist::Env* env, const std::string& dir, const DurableOptions& opt,
    std::unique_ptr<DurableLog>* out,
    std::vector<persist::SnapshotSection>* snapshot,
    persist::WalScanResult* wal) {
  DYNDEX_RETURN_IF_ERROR(env->CreateDir(dir));
  std::unique_ptr<DurableLog> log(new DurableLog(env, dir, opt));

  snapshot->clear();
  Status s = persist::ReadSnapshotFile(env, log->snapshot_path(), snapshot);
  if (!s.ok() && !s.IsNotFound()) return s;  // corruption is loud, not empty

  *wal = persist::WalScanResult();
  s = persist::ScanWal(env, log->wal_path(), wal);
  if (!s.ok() && !s.IsNotFound()) return s;

  *out = std::move(log);
  return Status::Ok();
}

persist::Status DurableLog::FinishOpen(uint64_t seq,
                                       const persist::WalScanResult& wal) {
  seq_ = seq;
  if (env_->FileExists(wal_path())) {
    if (wal.dropped_bytes > 0) {
      DYNDEX_RETURN_IF_ERROR(persist::RewriteTruncated(env_, wal_path(), wal));
    }
    return persist::WalWriter::OpenForAppend(env_, wal_path(), &wal_);
  }
  return persist::WalWriter::Create(env_, wal_path(), &wal_);
}

void DurableLog::LogApplied(std::string_view payload) {
  if (!status_.ok()) return;  // fail-stop: never log past a broken tail
  DYNDEX_CHECK(wal_ != nullptr);
  ++seq_;
  Status s = wal_->Append(seq_, payload);
  if (!s.ok()) {
    status_ = s;
    return;
  }
  ++unsynced_;
}

persist::Status DurableLog::MaybeSync() {
  if (!status_.ok()) return status_;
  if (opt_.sync_every_batches == 0 || unsynced_ < opt_.sync_every_batches) {
    return Status::Ok();
  }
  return Sync();
}

persist::Status DurableLog::Sync() {
  if (!status_.ok()) return status_;
  if (wal_ == nullptr || unsynced_ == 0) return Status::Ok();
  Status s = wal_->Sync();
  if (!s.ok()) {
    status_ = s;
    return s;
  }
  unsynced_ = 0;
  return Status::Ok();
}

persist::Status DurableLog::Checkpoint(
    const std::vector<persist::SnapshotSection>& sections) {
  if (!status_.ok()) return status_;
  // Everything the snapshot covers must be on disk first: if the snapshot
  // write dies halfway, the old snapshot + full log still reconstruct.
  DYNDEX_RETURN_IF_ERROR(Sync());
  DYNDEX_RETURN_IF_ERROR(
      persist::WriteSnapshotFile(env_, snapshot_path(), sections));
  // The snapshot is durably renamed in; frames at or below seq_ are now
  // redundant (replay skips them), so resetting the log is safe at any
  // crash point. A failure here breaks the append handle — stick.
  Status s = persist::WalWriter::Create(env_, wal_path(), &wal_);
  if (!s.ok()) {
    status_ = s;
    return s;
  }
  unsynced_ = 0;
  return Status::Ok();
}

persist::Status DurableLog::Close() {
  Status s = Sync();
  wal_.reset();
  return s.ok() ? status_ : s;
}

// --- core-level open / replay / checkpoint --------------------------------

namespace {

/// Shared open skeleton: attach, load the verified snapshot via `load`,
/// replay the frame tail via `apply`, truncate + reopen for append.
template <typename LoadFn, typename ApplyFn>
Status OpenCore(persist::Env* env, const std::string& dir,
                const DurableOptions& opt, StateKind kind,
                const char* backend, std::unique_ptr<DurableLog>* out,
                RecoveryStats* stats, LoadFn load, ApplyFn apply) {
  std::unique_ptr<DurableLog> log;
  std::vector<persist::SnapshotSection> snapshot;
  persist::WalScanResult wal;
  DYNDEX_RETURN_IF_ERROR(DurableLog::Attach(env, dir, opt, &log, &snapshot, &wal));

  RecoveryStats st;
  uint64_t last_seq = 0;
  if (!snapshot.empty()) {
    const persist::SnapshotSection* meta_sec =
        persist::FindSection(snapshot, kMetaSection);
    if (meta_sec == nullptr) {
      return Status::Corruption("snapshot has no meta section");
    }
    SnapshotMeta meta;
    DYNDEX_RETURN_IF_ERROR(DecodeMeta(meta_sec->data, &meta));
    if (meta.kind != kind) {
      return Status::InvalidArgument(
          "snapshot state kind does not match this facade");
    }
    if (meta.backend != backend) {
      return Status::InvalidArgument("snapshot was exported from backend '" +
                                     meta.backend + "', facade runs '" +
                                     backend + "'");
    }
    DYNDEX_RETURN_IF_ERROR(load(snapshot, meta));
    last_seq = meta.last_seq;
    st.snapshot_loaded = true;
    st.snapshot_seq = last_seq;
  }

  for (persist::WalFrame& frame : wal.frames) {
    if (frame.seq <= last_seq) {
      // Only a checkpointed prefix may sit at or below the snapshot seq; a
      // low seq after replay began means the frame chain is inconsistent.
      if (st.replayed_batches > 0) {
        return Status::Corruption("WAL sequence went backwards");
      }
      ++st.skipped_frames;
      continue;
    }
    if (frame.seq != last_seq + 1) {
      return Status::Corruption("WAL sequence gap at frame seq " +
                                std::to_string(frame.seq));
    }
    WalRecord rec;
    DYNDEX_RETURN_IF_ERROR(DecodeWalRecord(frame.payload, &rec));
    DYNDEX_RETURN_IF_ERROR(apply(rec));
    last_seq = frame.seq;
    ++st.replayed_batches;
  }
  st.dropped_wal_bytes = wal.dropped_bytes;

  // Recovery IS the writer (the core is externally quiesced per the
  // contract above), so this thread holds the log's single-writer role.
  log->writer_role().AssertHeld();
  DYNDEX_RETURN_IF_ERROR(log->FinishOpen(last_seq, wal));
  *out = std::move(log);
  if (stats != nullptr) *stats = st;
  return Status::Ok();
}

}  // namespace

persist::Status OpenDurableIndexCore(persist::Env* env, const std::string& dir,
                                     const DurableOptions& opt,
                                     EpochGuard<DynamicIndex>& core,
                                     std::unique_ptr<DurableLog>* out,
                                     RecoveryStats* stats) {
  DynamicIndex& idx = core.unsynchronized();
  DYNDEX_CHECK(idx.num_docs() == 0 && core.epoch() == 0);
  const char* backend = idx.backend_name();
  return OpenCore(
      env, dir, opt, StateKind::kIndex, backend, out, stats,
      [&](const std::vector<persist::SnapshotSection>& snapshot,
          const SnapshotMeta& meta) -> Status {
        const persist::SnapshotSection* docs_sec =
            persist::FindSection(snapshot, kDocsSection);
        if (docs_sec == nullptr) {
          return Status::Corruption("index snapshot has no docs section");
        }
        std::vector<Document> docs;
        DYNDEX_RETURN_IF_ERROR(DecodeDocs(docs_sec->data, &docs));
        core.Maintain([&](DynamicIndex& b) {
          b.LoadSnapshot(std::move(docs), meta.next_id);
        });
        return Status::Ok();
      },
      [&](WalRecord& rec) -> Status {
        switch (rec.op) {
          case WalOp::kInsertDocs:
            core.Write(
                [&](DynamicIndex& b) { b.InsertBulk(std::move(rec.docs)); });
            return Status::Ok();
          case WalOp::kEraseDocs:
            core.Write([&](DynamicIndex& b) {
              for (DocId id : rec.ids) b.Erase(id);
            });
            return Status::Ok();
          default:
            return Status::Corruption("relation record in an index WAL");
        }
      });
}

persist::Status CheckpointIndexCore(EpochGuard<DynamicIndex>& core,
                                    DurableLog& log) {
  // Checkpoint runs on the facade's writer thread by contract.
  log.writer_role().AssertHeld();
  if (!log.status().ok()) return log.status();
  std::vector<Document> docs;
  DocId next_id = 0;
  const char* backend = nullptr;
  core.Maintain([&](DynamicIndex& b) {
    b.ExportSnapshot(&docs, &next_id);
    backend = b.backend_name();
  });
  SnapshotMeta meta;
  meta.kind = StateKind::kIndex;
  meta.backend = backend;
  meta.last_seq = log.seq();
  meta.next_id = next_id;
  std::vector<persist::SnapshotSection> sections;
  sections.push_back({kMetaSection, EncodeMeta(meta)});
  sections.push_back({kDocsSection, EncodeDocs(docs)});
  return log.Checkpoint(sections);
}

persist::Status OpenDurableRelationCore(persist::Env* env,
                                        const std::string& dir,
                                        const DurableOptions& opt,
                                        EpochGuard<RelationIndex>& core,
                                        std::unique_ptr<DurableLog>* out,
                                        RecoveryStats* stats) {
  RelationIndex& rel = core.unsynchronized();
  DYNDEX_CHECK(rel.num_pairs() == 0 && core.epoch() == 0);
  const char* backend = rel.backend_name();
  return OpenCore(
      env, dir, opt, StateKind::kRelation, backend, out, stats,
      [&](const std::vector<persist::SnapshotSection>& snapshot,
          const SnapshotMeta&) -> Status {
        const persist::SnapshotSection* pairs_sec =
            persist::FindSection(snapshot, kPairsSection);
        if (pairs_sec == nullptr) {
          return Status::Corruption("relation snapshot has no pairs section");
        }
        RelationPairs pairs;
        DYNDEX_RETURN_IF_ERROR(DecodePairs(pairs_sec->data, &pairs));
        core.Maintain([&](RelationIndex& b) { b.AddPairsBulk(pairs); });
        return Status::Ok();
      },
      [&](WalRecord& rec) -> Status {
        switch (rec.op) {
          case WalOp::kAddPairs:
            core.Write([&](RelationIndex& b) { b.AddPairsBulk(rec.pairs); });
            return Status::Ok();
          case WalOp::kRemovePairs:
            core.Write([&](RelationIndex& b) {
              for (auto [o, a] : rec.pairs) b.RemovePair(o, a);
            });
            return Status::Ok();
          default:
            return Status::Corruption("index record in a relation WAL");
        }
      });
}

persist::Status CheckpointRelationCore(EpochGuard<RelationIndex>& core,
                                       DurableLog& log) {
  // Checkpoint runs on the facade's writer thread by contract.
  log.writer_role().AssertHeld();
  if (!log.status().ok()) return log.status();
  RelationPairs pairs;
  const char* backend = nullptr;
  core.Maintain([&](RelationIndex& b) {
    b.ExportLivePairs(&pairs);
    backend = b.backend_name();
  });
  SnapshotMeta meta;
  meta.kind = StateKind::kRelation;
  meta.backend = backend;
  meta.last_seq = log.seq();
  std::vector<persist::SnapshotSection> sections;
  sections.push_back({kMetaSection, EncodeMeta(meta)});
  sections.push_back({kPairsSection, EncodePairs(pairs)});
  return log.Checkpoint(sections);
}

// --- sharded manifest ------------------------------------------------------

persist::Status WriteManifest(persist::Env* env, const std::string& dir,
                              const SnapshotMeta& meta) {
  std::vector<persist::SnapshotSection> sections;
  sections.push_back({kMetaSection, EncodeMeta(meta)});
  return persist::WriteSnapshotFile(env, dir + "/" + kManifestFileName,
                                    sections);
}

persist::Status ReadManifest(persist::Env* env, const std::string& dir,
                             SnapshotMeta* out) {
  std::vector<persist::SnapshotSection> sections;
  DYNDEX_RETURN_IF_ERROR(persist::ReadSnapshotFile(
      env, dir + "/" + kManifestFileName, &sections));
  const persist::SnapshotSection* meta_sec =
      persist::FindSection(sections, kMetaSection);
  if (meta_sec == nullptr) {
    return Status::Corruption("manifest has no meta section");
  }
  return DecodeMeta(meta_sec->data, out);
}

persist::Status CheckManifest(const SnapshotMeta& meta, StateKind kind,
                              uint32_t num_shards, const char* backend) {
  if (meta.kind != kind) {
    return Status::InvalidArgument(
        "manifest state kind does not match this facade");
  }
  if (meta.num_shards != num_shards) {
    return Status::InvalidArgument(
        "manifest binds " + std::to_string(meta.num_shards) +
        " shards, facade was built with " + std::to_string(num_shards));
  }
  if (meta.backend != backend) {
    return Status::InvalidArgument("manifest binds backend '" + meta.backend +
                                   "', facade runs '" + backend + "'");
  }
  return Status::Ok();
}

}  // namespace serve_persist
}  // namespace dyndex
