#include "serve/relation_index.h"

#include "util/check.h"

namespace dyndex {

const char* RelationBackendName(RelationBackend backend) {
  switch (backend) {
    case RelationBackend::kTheorem2:
      return "theorem2";
    case RelationBackend::kBaseline:
      return "baseline";
    case RelationBackend::kGraph:
      return "graph";
    case RelationBackend::kDeletionOnly:
      return "deletion_only";
    case RelationBackend::kFast:
      return "fast";
  }
  DYNDEX_CHECK(false);
  return "?";
}

std::unique_ptr<RelationIndex> MakeRelationIndex(
    RelationBackend backend, const RelationIndexOptions& opt) {
  switch (backend) {
    case RelationBackend::kTheorem2: {
      DynamicRelationOptions o;
      o.tau = opt.tau;
      o.epsilon = opt.epsilon;
      o.min_c0 = opt.min_c0;
      return std::make_unique<RelationAdapter<DynamicRelation>>(
          RelationBackendName(backend), o);
    }
    case RelationBackend::kBaseline: {
      return std::make_unique<RelationAdapter<BaselineRelation>>(
          RelationBackendName(backend), opt.baseline_max_objects,
          opt.baseline_max_labels);
    }
    case RelationBackend::kGraph: {
      DynamicRelationOptions o;
      o.tau = opt.tau;
      o.epsilon = opt.epsilon;
      o.min_c0 = opt.min_c0;
      return std::make_unique<RelationAdapter<DynamicGraph>>(
          RelationBackendName(backend), o);
    }
    case RelationBackend::kDeletionOnly: {
      DeletionOnlyShellOptions o;
      o.tau = opt.tau;
      return std::make_unique<RelationAdapter<DeletionOnlyShell>>(
          RelationBackendName(backend), o);
    }
    case RelationBackend::kFast: {
      FastRelationOptions o;
      o.inline_threshold = opt.fast_inline_threshold;
      return std::make_unique<RelationAdapter<FastRelation>>(
          RelationBackendName(backend), o);
    }
  }
  DYNDEX_CHECK(false);
  return nullptr;
}

}  // namespace dyndex
