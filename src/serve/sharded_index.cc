#include "serve/sharded_index.h"

#include <utility>

#include "util/check.h"

namespace dyndex {

ShardedIndex::ShardedIndex(
    uint32_t num_shards,
    const std::function<std::unique_ptr<DynamicIndex>()>& shard_factory)
    : pool_(num_shards > 0 ? num_shards - 1 : 0) {
  DYNDEX_CHECK(num_shards >= 1);
  shards_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    shards_.push_back(
        std::make_unique<EpochGuard<DynamicIndex>>(shard_factory()));
  }
}

ShardedIndex::ShardedIndex(uint32_t num_shards, Backend backend,
                           const DynamicIndexOptions& opt)
    : ShardedIndex(num_shards,
                   [&] { return MakeDynamicIndex(backend, opt); }) {}

uint64_t ShardedIndex::Count(const std::vector<Symbol>& pattern,
                             ShardEpochs* epochs) const {
  return shard_internal::SumOf(shard_internal::FanOutRead<uint64_t>(
      pool_, num_shards(), epochs, [&](uint32_t s, uint64_t* epoch) {
        return shards_[s]->Read(epoch, [&](const DynamicIndex& idx) {
          return idx.Count(pattern);
        });
      }));
}

std::vector<Occurrence> ShardedIndex::Locate(
    const std::vector<Symbol>& pattern, ShardEpochs* epochs) const {
  const uint32_t k = num_shards();
  return shard_internal::Flatten(
      shard_internal::FanOutRead<std::vector<Occurrence>>(
          pool_, k, epochs, [&](uint32_t s, uint64_t* epoch) {
            std::vector<Occurrence> occs =
                shards_[s]->Read(epoch, [&](const DynamicIndex& idx) {
                  return idx.Locate(pattern);
                });
            // Shard-local ids -> global ids.
            for (Occurrence& occ : occs) occ.doc = occ.doc * k + s;
            return occs;
          }));
}

bool ShardedIndex::Extract(DocId id, uint64_t from, uint64_t len,
                           std::vector<Symbol>* out, uint64_t* epoch) const {
  if (id == kInvalidDocId) {
    if (epoch != nullptr) *epoch = shards_[0]->epoch();
    return false;
  }
  const uint32_t s = shard_of(id);
  const DocId local = id / num_shards();
  // Buffer into the lambda's return value, never into *out directly: a
  // discarded optimistic attempt re-runs the lambda, and the contract is
  // that *out stays untouched on false (and on any abandoned attempt).
  auto result =
      shards_[s]->Read(epoch, [&](const DynamicIndex& idx)
                                  -> std::pair<bool, std::vector<Symbol>> {
        if (!idx.Contains(local)) return {false, {}};
        return {true, idx.Extract(local, from, len)};
      });
  if (!result.first) return false;
  *out = std::move(result.second);
  return true;
}

bool ShardedIndex::Contains(DocId id, uint64_t* epoch) const {
  if (id == kInvalidDocId) {
    if (epoch != nullptr) *epoch = shards_[0]->epoch();
    return false;
  }
  const uint32_t s = shard_of(id);
  const DocId local = id / num_shards();
  return shards_[s]->Read(
      epoch, [&](const DynamicIndex& idx) { return idx.Contains(local); });
}

uint64_t ShardedIndex::DocLenOf(DocId id, uint64_t* epoch) const {
  if (id == kInvalidDocId) {
    if (epoch != nullptr) *epoch = shards_[0]->epoch();
    return 0;
  }
  const uint32_t s = shard_of(id);
  const DocId local = id / num_shards();
  return shards_[s]->Read(
      epoch, [&](const DynamicIndex& idx) { return idx.DocLenOf(local); });
}

uint64_t ShardedIndex::num_docs(ShardEpochs* epochs) const {
  return shard_internal::SumOf(shard_internal::FanOutRead<uint64_t>(
      pool_, num_shards(), epochs, [&](uint32_t s, uint64_t* epoch) {
        return shards_[s]->Read(
            epoch, [](const DynamicIndex& idx) { return idx.num_docs(); });
      }));
}

uint64_t ShardedIndex::live_symbols(ShardEpochs* epochs) const {
  return shard_internal::SumOf(shard_internal::FanOutRead<uint64_t>(
      pool_, num_shards(), epochs, [&](uint32_t s, uint64_t* epoch) {
        return shards_[s]->Read(epoch, [](const DynamicIndex& idx) {
          return idx.live_symbols();
        });
      }));
}

ShardEpochs ShardedIndex::epochs() const {
  ShardEpochs eps(num_shards(), 0);
  for (uint32_t s = 0; s < num_shards(); ++s) eps[s] = shards_[s]->epoch();
  return eps;
}

ShardSeqs ShardedIndex::seqs() const {
  ShardSeqs sq(num_shards(), 0);
  for (uint32_t s = 0; s < num_shards(); ++s) sq[s] = shards_[s]->sequence();
  return sq;
}

void ShardedIndex::set_optimistic_policy(const OptimisticPolicy& policy) {
  for (auto& shard : shards_) shard->set_optimistic_policy(policy);
}

OptimisticStats ShardedIndex::optimistic_stats() const {
  OptimisticStats total;
  for (const auto& shard : shards_) {
    const OptimisticStats s = shard->optimistic_stats();
    total.attempts += s.attempts;
    total.validated += s.validated;
    total.retries += s.retries;
    total.fallbacks += s.fallbacks;
    total.capture_exhausted += s.capture_exhausted;
    total.retries_exhausted += s.retries_exhausted;
    total.capture_stalled += s.capture_stalled;
    total.locked_reads += s.locked_reads;
  }
  return total;
}

void ShardedIndex::set_pacing_policy(const PacingPolicy& policy) {
  for (auto& shard : shards_) shard->set_pacing_policy(policy);
}

PacingStats ShardedIndex::pacing_stats() const {
  PacingStats total;
  for (const auto& shard : shards_) {
    const PacingStats s = shard->pacing_stats();
    total.waits += s.waits;
    total.wait_us += s.wait_us;
  }
  return total;
}

uint64_t ShardedIndex::retired_pending() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->retired_pending();
  return total;
}

std::vector<DocId> ShardedIndex::InsertBatch(
    std::vector<std::vector<Symbol>> docs) {
  const uint32_t k = num_shards();
  std::vector<DocId> out(docs.size(), kInvalidDocId);
  if (docs.empty()) return out;
  // Round-robin placement from a shared cursor: deterministic for a single
  // writer, balanced under concurrent writers.
  const uint64_t start =
      next_place_.fetch_add(docs.size(), std::memory_order_relaxed);
  std::vector<std::vector<std::vector<Symbol>>> sub(k);
  std::vector<std::vector<uint64_t>> positions(k);
  for (uint64_t i = 0; i < docs.size(); ++i) {
    const uint32_t s = static_cast<uint32_t>((start + i) % k);
    sub[s].push_back(std::move(docs[i]));
    positions[s].push_back(i);
  }
  std::vector<std::function<void()>> tasks;
  for (uint32_t s = 0; s < k; ++s) {
    if (sub[s].empty()) continue;  // untouched shards keep their epoch
    tasks.push_back([this, s, k, &sub, &positions, &out] {
      std::vector<DocId> local =
          shards_[s]->Write([&](DynamicIndex& idx) {
            return idx.InsertBulk(std::move(sub[s]));
          });
      // Distinct batch positions per shard: no write races on `out`.
      for (uint64_t j = 0; j < local.size(); ++j) {
        out[positions[s][j]] =
            local[j] == kInvalidDocId ? kInvalidDocId : local[j] * k + s;
      }
    });
  }
  pool_.RunAll(std::move(tasks));
  return out;
}

uint64_t ShardedIndex::EraseBatch(const std::vector<DocId>& ids) {
  const uint32_t k = num_shards();
  std::vector<std::vector<DocId>> sub(k);
  for (DocId id : ids) {
    if (id == kInvalidDocId) continue;
    sub[shard_of(id)].push_back(id / k);
  }
  std::vector<uint64_t> erased(k, 0);
  std::vector<std::function<void()>> tasks;
  for (uint32_t s = 0; s < k; ++s) {
    if (sub[s].empty()) continue;
    tasks.push_back([this, s, &sub, &erased] {
      erased[s] = shards_[s]->Write([&](DynamicIndex& idx) {
        uint64_t n = 0;
        for (DocId local : sub[s]) n += idx.Erase(local);
        return n;
      });
    });
  }
  pool_.RunAll(std::move(tasks));
  uint64_t total = 0;
  for (uint64_t e : erased) total += e;
  return total;
}

void ShardedIndex::Poll() {
  for (auto& shard : shards_) {
    shard->Maintain([](DynamicIndex& idx) { idx.PollPending(); });
  }
}

void ShardedIndex::Flush() {
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shards_.size());
  for (auto& shard : shards_) {
    tasks.push_back([&shard] {
      shard->Maintain([](DynamicIndex& idx) { idx.ForceAllPending(); });
    });
  }
  pool_.RunAll(std::move(tasks));
}

void ShardedIndex::CheckInvariants() const {
  for (const auto& shard : shards_) {
    shard->Read(nullptr,
                [](const DynamicIndex& idx) { idx.CheckInvariants(); });
  }
}

}  // namespace dyndex
