#include "serve/sharded_index.h"

#include <string>
#include <utility>

#include "util/check.h"

namespace dyndex {

ShardedIndex::ShardedIndex(
    uint32_t num_shards,
    const std::function<std::unique_ptr<DynamicIndex>()>& shard_factory)
    : pool_(num_shards > 0 ? num_shards - 1 : 0) {
  DYNDEX_CHECK(num_shards >= 1);
  shards_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    shards_.push_back(
        std::make_unique<EpochGuard<DynamicIndex>>(shard_factory()));
  }
}

ShardedIndex::ShardedIndex(uint32_t num_shards, Backend backend,
                           const DynamicIndexOptions& opt)
    : ShardedIndex(num_shards,
                   [&] { return MakeDynamicIndex(backend, opt); }) {}

uint64_t ShardedIndex::Count(const std::vector<Symbol>& pattern,
                             ShardEpochs* epochs) const {
  return shard_internal::SumOf(shard_internal::FanOutRead<uint64_t>(
      pool_, num_shards(), epochs, [&](uint32_t s, uint64_t* epoch) {
        return shards_[s]->Read(epoch, [&](const DynamicIndex& idx) {
          return idx.Count(pattern);
        });
      }));
}

std::vector<Occurrence> ShardedIndex::Locate(
    const std::vector<Symbol>& pattern, ShardEpochs* epochs) const {
  const uint32_t k = num_shards();
  return shard_internal::Flatten(
      shard_internal::FanOutRead<std::vector<Occurrence>>(
          pool_, k, epochs, [&](uint32_t s, uint64_t* epoch) {
            std::vector<Occurrence> occs =
                shards_[s]->Read(epoch, [&](const DynamicIndex& idx) {
                  return idx.Locate(pattern);
                });
            // Shard-local ids -> global ids.
            for (Occurrence& occ : occs) occ.doc = occ.doc * k + s;
            return occs;
          }));
}

bool ShardedIndex::Extract(DocId id, uint64_t from, uint64_t len,
                           std::vector<Symbol>* out, uint64_t* epoch) const {
  if (id == kInvalidDocId) {
    if (epoch != nullptr) *epoch = shards_[0]->epoch();
    return false;
  }
  const uint32_t s = shard_of(id);
  const DocId local = id / num_shards();
  // Buffer into the lambda's return value, never into *out directly: a
  // discarded optimistic attempt re-runs the lambda, and the contract is
  // that *out stays untouched on false (and on any abandoned attempt).
  auto result =
      shards_[s]->Read(epoch, [&](const DynamicIndex& idx)
                                  -> std::pair<bool, std::vector<Symbol>> {
        if (!idx.Contains(local)) return {false, {}};
        return {true, idx.Extract(local, from, len)};
      });
  if (!result.first) return false;
  *out = std::move(result.second);
  return true;
}

bool ShardedIndex::Contains(DocId id, uint64_t* epoch) const {
  if (id == kInvalidDocId) {
    if (epoch != nullptr) *epoch = shards_[0]->epoch();
    return false;
  }
  const uint32_t s = shard_of(id);
  const DocId local = id / num_shards();
  return shards_[s]->Read(
      epoch, [&](const DynamicIndex& idx) { return idx.Contains(local); });
}

uint64_t ShardedIndex::DocLenOf(DocId id, uint64_t* epoch) const {
  if (id == kInvalidDocId) {
    if (epoch != nullptr) *epoch = shards_[0]->epoch();
    return 0;
  }
  const uint32_t s = shard_of(id);
  const DocId local = id / num_shards();
  return shards_[s]->Read(
      epoch, [&](const DynamicIndex& idx) { return idx.DocLenOf(local); });
}

uint64_t ShardedIndex::num_docs(ShardEpochs* epochs) const {
  return shard_internal::SumOf(shard_internal::FanOutRead<uint64_t>(
      pool_, num_shards(), epochs, [&](uint32_t s, uint64_t* epoch) {
        return shards_[s]->Read(
            epoch, [](const DynamicIndex& idx) { return idx.num_docs(); });
      }));
}

uint64_t ShardedIndex::live_symbols(ShardEpochs* epochs) const {
  return shard_internal::SumOf(shard_internal::FanOutRead<uint64_t>(
      pool_, num_shards(), epochs, [&](uint32_t s, uint64_t* epoch) {
        return shards_[s]->Read(epoch, [](const DynamicIndex& idx) {
          return idx.live_symbols();
        });
      }));
}

ShardEpochs ShardedIndex::epochs() const {
  ShardEpochs eps(num_shards(), 0);
  for (uint32_t s = 0; s < num_shards(); ++s) eps[s] = shards_[s]->epoch();
  return eps;
}

ShardSeqs ShardedIndex::seqs() const {
  ShardSeqs sq(num_shards(), 0);
  for (uint32_t s = 0; s < num_shards(); ++s) sq[s] = shards_[s]->sequence();
  return sq;
}

void ShardedIndex::set_optimistic_policy(const OptimisticPolicy& policy) {
  for (auto& shard : shards_) shard->set_optimistic_policy(policy);
}

OptimisticStats ShardedIndex::optimistic_stats() const {
  OptimisticStats total;
  for (const auto& shard : shards_) {
    const OptimisticStats s = shard->optimistic_stats();
    total.attempts += s.attempts;
    total.validated += s.validated;
    total.retries += s.retries;
    total.fallbacks += s.fallbacks;
    total.capture_exhausted += s.capture_exhausted;
    total.retries_exhausted += s.retries_exhausted;
    total.capture_stalled += s.capture_stalled;
    total.locked_reads += s.locked_reads;
  }
  return total;
}

void ShardedIndex::set_pacing_policy(const PacingPolicy& policy) {
  for (auto& shard : shards_) shard->set_pacing_policy(policy);
}

PacingStats ShardedIndex::pacing_stats() const {
  PacingStats total;
  for (const auto& shard : shards_) {
    const PacingStats s = shard->pacing_stats();
    total.waits += s.waits;
    total.wait_us += s.wait_us;
  }
  return total;
}

uint64_t ShardedIndex::retired_pending() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->retired_pending();
  return total;
}

std::vector<DocId> ShardedIndex::InsertBatch(
    std::vector<std::vector<Symbol>> docs) {
  const uint32_t k = num_shards();
  std::vector<DocId> out(docs.size(), kInvalidDocId);
  if (docs.empty()) return out;
  // Round-robin placement from a shared cursor: deterministic for a single
  // writer, balanced under concurrent writers.
  const uint64_t start =
      next_place_.fetch_add(docs.size(), std::memory_order_relaxed);
  std::vector<std::vector<std::vector<Symbol>>> sub(k);
  std::vector<std::vector<uint64_t>> positions(k);
  for (uint64_t i = 0; i < docs.size(); ++i) {
    const uint32_t s = static_cast<uint32_t>((start + i) % k);
    sub[s].push_back(std::move(docs[i]));
    positions[s].push_back(i);
  }
  std::vector<std::function<void()>> tasks;
  for (uint32_t s = 0; s < k; ++s) {
    if (sub[s].empty()) continue;  // untouched shards keep their epoch
    tasks.push_back([this, s, k, &sub, &positions, &out] {
      // Each shard logs its own sub-batch; encode before the apply consumes
      // it. The append and the group-commit fsync run inside the shard's
      // exclusive section, so concurrent batch writers never share a WAL.
      std::string payload;
      serve_persist::DurableLog* log = logs_.empty() ? nullptr : logs_[s].get();
      if (log != nullptr) payload = serve_persist::EncodeInsertBatch(sub[s]);
      std::vector<DocId> local =
          shards_[s]->Write([&](DynamicIndex& idx) {
            auto result = idx.InsertBulk(std::move(sub[s]));
            if (log != nullptr) {
              // Inside this shard's exclusive section: the pool worker is
              // the shard log's writer for the batch.
              log->writer_role().AssertHeld();
              log->LogApplied(payload);
              log->MaybeSync();
            }
            return result;
          });
      // Distinct batch positions per shard: no write races on `out`.
      for (uint64_t j = 0; j < local.size(); ++j) {
        out[positions[s][j]] =
            local[j] == kInvalidDocId ? kInvalidDocId : local[j] * k + s;
      }
    });
  }
  pool_.RunAll(std::move(tasks));
  return out;
}

uint64_t ShardedIndex::EraseBatch(const std::vector<DocId>& ids) {
  const uint32_t k = num_shards();
  std::vector<std::vector<DocId>> sub(k);
  for (DocId id : ids) {
    if (id == kInvalidDocId) continue;
    sub[shard_of(id)].push_back(id / k);
  }
  std::vector<uint64_t> erased(k, 0);
  std::vector<std::function<void()>> tasks;
  for (uint32_t s = 0; s < k; ++s) {
    if (sub[s].empty()) continue;
    tasks.push_back([this, s, &sub, &erased] {
      std::string payload;
      serve_persist::DurableLog* log = logs_.empty() ? nullptr : logs_[s].get();
      if (log != nullptr) payload = serve_persist::EncodeEraseBatch(sub[s]);
      erased[s] = shards_[s]->Write([&](DynamicIndex& idx) {
        uint64_t n = 0;
        for (DocId local : sub[s]) n += idx.Erase(local);
        if (log != nullptr) {
          log->writer_role().AssertHeld();
          log->LogApplied(payload);
          log->MaybeSync();
        }
        return n;
      });
    });
  }
  pool_.RunAll(std::move(tasks));
  uint64_t total = 0;
  for (uint64_t e : erased) total += e;
  return total;
}

void ShardedIndex::Poll() {
  for (auto& shard : shards_) {
    shard->Maintain([](DynamicIndex& idx) { idx.PollPending(); });
  }
}

void ShardedIndex::Flush() {
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shards_.size());
  for (auto& shard : shards_) {
    tasks.push_back([&shard] {
      shard->Maintain([](DynamicIndex& idx) { idx.ForceAllPending(); });
    });
  }
  pool_.RunAll(std::move(tasks));
}

persist::Status ShardedIndex::OpenDurable(persist::Env* env,
                                          const std::string& dir,
                                          const DurableOptions& opt,
                                          RecoveryStats* stats) {
  DYNDEX_CHECK(logs_.empty());
  const uint32_t k = num_shards();
  DYNDEX_RETURN_IF_ERROR(env->CreateDir(dir));

  serve_persist::SnapshotMeta manifest;
  persist::Status ms = serve_persist::ReadManifest(env, dir, &manifest);
  const bool fresh = ms.IsNotFound();
  if (!fresh) {
    DYNDEX_RETURN_IF_ERROR(ms);  // a damaged manifest is loud, not "fresh"
    DYNDEX_RETURN_IF_ERROR(serve_persist::CheckManifest(
        manifest, serve_persist::StateKind::kShardedIndex, k, backend_name()));
  }

  std::vector<std::string> shard_dirs(k);
  for (uint32_t s = 0; s < k; ++s) {
    shard_dirs[s] = dir + "/shard-" + std::to_string(s);
    if (!fresh && !env->FileExists(shard_dirs[s] + "/" +
                                   serve_persist::kWalFileName)) {
      // The manifest binds this shard; its vanished state must not be served
      // as an empty shard.
      return persist::Status::Corruption(
          "manifest binds shard " + std::to_string(s) +
          " but its durable state is missing");
    }
  }

  // Parallel recovery: shards are independent (own dir, own core, own log).
  std::vector<std::unique_ptr<serve_persist::DurableLog>> logs(k);
  std::vector<persist::Status> st(k);
  std::vector<RecoveryStats> shard_stats(k);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(k);
  for (uint32_t s = 0; s < k; ++s) {
    tasks.push_back([this, s, env, &opt, &shard_dirs, &logs, &st,
                     &shard_stats] {
      st[s] = serve_persist::OpenDurableIndexCore(
          env, shard_dirs[s], opt, *shards_[s], &logs[s], &shard_stats[s]);
    });
  }
  pool_.RunAll(std::move(tasks));
  for (uint32_t s = 0; s < k; ++s) DYNDEX_RETURN_IF_ERROR(st[s]);

  if (fresh) {
    serve_persist::SnapshotMeta meta;
    meta.kind = serve_persist::StateKind::kShardedIndex;
    meta.backend = backend_name();
    meta.num_shards = k;
    DYNDEX_RETURN_IF_ERROR(serve_persist::WriteManifest(env, dir, meta));
  }

  if (stats != nullptr) {
    RecoveryStats total;
    for (const RecoveryStats& s : shard_stats) {
      total.snapshot_loaded |= s.snapshot_loaded;
      total.snapshot_seq += s.snapshot_seq;
      total.replayed_batches += s.replayed_batches;
      total.skipped_frames += s.skipped_frames;
      total.dropped_wal_bytes += s.dropped_wal_bytes;
    }
    *stats = total;
  }
  // Placement cursor: balance-only (ids are minted by the shards), so any
  // reasonable restart point works; total live docs keeps round-robin fair.
  uint64_t total_docs = 0;
  for (uint32_t s = 0; s < k; ++s) {
    total_docs += shards_[s]->unsynchronized().num_docs();
  }
  next_place_.store(total_docs, std::memory_order_relaxed);
  logs_ = std::move(logs);
  return persist::Status::Ok();
}

persist::Status ShardedIndex::Checkpoint() {
  DYNDEX_CHECK(!logs_.empty());
  const uint32_t k = num_shards();
  std::vector<persist::Status> st(k);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(k);
  for (uint32_t s = 0; s < k; ++s) {
    tasks.push_back([this, s, &st] {
      st[s] = serve_persist::CheckpointIndexCore(*shards_[s], *logs_[s]);
    });
  }
  pool_.RunAll(std::move(tasks));
  for (uint32_t s = 0; s < k; ++s) DYNDEX_RETURN_IF_ERROR(st[s]);
  return persist::Status::Ok();
}

persist::Status ShardedIndex::SyncWal() {
  DYNDEX_CHECK(!logs_.empty());
  // Durability entry points run quiesced (no concurrent batch writers), so
  // this thread holds every shard log's writer role.
  for (auto& log : logs_) {
    log->writer_role().AssertHeld();
    DYNDEX_RETURN_IF_ERROR(log->Sync());
  }
  return persist::Status::Ok();
}

persist::Status ShardedIndex::CloseDurable() {
  DYNDEX_CHECK(!logs_.empty());
  persist::Status first = persist::Status::Ok();
  for (auto& log : logs_) {
    log->writer_role().AssertHeld();
    persist::Status s = log->Close();
    if (first.ok()) first = s;
  }
  logs_.clear();
  return first;
}

void ShardedIndex::CheckInvariants() const {
  for (const auto& shard : shards_) {
    shard->Read(nullptr,
                [](const DynamicIndex& idx) { idx.CheckInvariants(); });
  }
}

}  // namespace dyndex
