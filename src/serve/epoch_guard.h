// The reusable concurrent-serving core: every concurrent facade in the repo
// (documents in concurrent_index.h, relations/graphs in concurrent_relation.h,
// and every shard under the sharded facades) is a thin wrapper over one
// EpochGuard<Backend>, so the read protocol, the writer-priority gate, the
// epoch, the reclamation contract, and the PollPending publication hook exist
// exactly once.
//
// Concurrency model (documented in README.md):
//
//  * The read hot path is OPTIMISTIC — no lock at all. A sequence word
//    (seq_) is even while the backend is quiescent; the writer bumps it to
//    odd before mutating and back to even after publishing. A reader
//    captures an even sequence, runs the query against the live backend,
//    and validates that the sequence is unchanged afterwards; on mismatch
//    the result is discarded and the attempt retried. After
//    OptimisticPolicy::max_attempts failed attempts (or when a writer storm
//    keeps the sequence odd past spin_limit iterations) the reader falls
//    back to the shared-lock path, so no single Read() ever blocks on the
//    optimistic protocol.
//
//  * Writer-side pacing keeps the lock-free path *useful* under saturating
//    writers, not merely safe. A writer applying back-to-back batches holds
//    the sequence odd for nearly the whole wall clock, so readers would
//    only ever validate in the slivers between exclusive sections and
//    collapse onto the shared-lock fallback. Readers therefore bump a
//    per-slot capture_stalled counter whenever CaptureSnapshot spins on an
//    odd/moving sequence, and Write() consults PacingPolicy before
//    admitting the next batch: when unanswered stalls accrued (the stall
//    debt persists across sections until a window is granted) — or between
//    every pair of sections when stall_threshold is 0, the unconditional
//    write-rate-limiter mode for hosts where readers starve for CPU rather
//    than on the sequence — the writer
//    sleeps until the sequence has been even for min_even_window_us (never
//    more than max_delay_us), with no lock held and writer_waiting_ not
//    yet raised — readers run lock-free for the whole window. The fairness guarantee is two-sided
//    and bounded: stalled readers get an even window of at least
//    min(min_even_window_us, max_delay_us) per admitted batch, and the
//    writer is delayed at most max_delay_us per batch. Batches stay atomic
//    (pacing spaces sections out; it never chunks a Write()), so epoch
//    linearization is untouched.
//
//  * Torn reads are memory-safe, not merely detectable. Before capturing a
//    sequence the reader publishes its snapshot in one of kReaderSlots
//    per-reader slots; everything a writer frees while mutating (replaced
//    sub-collection levels, swapped Transformation-2 structures, cleared
//    dynbits arenas, reallocated container buffers) is parked on a
//    retire-list via util/retire.h instead of freed, tagged with the even
//    sequence that preceded the write. A parked batch is reclaimed only
//    when every active reader slot holds a strictly newer snapshot — no
//    reader that could still be traversing the freed memory remains. The
//    slot-publish / sequence-revalidate handshake pairs seq_cst accesses
//    with the writer's publish / slot-scan (a Dekker-style store-load
//    pattern), so a reader the scan missed is guaranteed to re-capture a
//    post-publication sequence before touching any data.
//
//  * A torn attempt may still read type-stable-but-garbage values, so the
//    backends clamp loop bounds on their read paths and every DYNDEX_CHECK
//    tripped during an optimistic attempt throws TornReadError (see
//    util/check.h) instead of aborting; the attempt catches, discards, and
//    retries. Under TSan/ASan the attempt body additionally holds the
//    shared lock (released before validation), trading the lock-free hot
//    path for instrumentable, race-free execution while keeping the retry,
//    fallback, slot, and reclamation machinery fully exercised.
//
//  * The single writer takes the exclusive side per Write(): it applies the
//    whole batch, publishes any finished background builds (the PollPending
//    hook — Transformation 2's swap step), bumps the epoch, and releases.
//    Locked readers therefore never observe a half-applied batch, and
//    optimistic readers never *validate* one. Maintain() is the same
//    exclusive section without the epoch bump: publishing an internal
//    rebuild leaves the logical state unchanged. A writer-priority gate
//    (writer_waiting_) keeps the fallback path live under glibc's
//    reader-preferring rwlock.
//
// The epoch is the linearization point: every Read() reports the epoch of
// the snapshot it ran against (captured inside the validated window), and
// two reads reporting the same epoch saw the same logical state. The
// differential model-checking harnesses key their per-state expectations on
// exactly this value — the optimistic protocol changes how a snapshot is
// obtained, not what it means.
//
// Backend is any class; the hooks are detected with `requires`:
//  * b.PollPending()     -- called after every Write() body (optional)
//  * b.ForceAllPending() -- reachable through Maintain() by the wrapper
#ifndef DYNDEX_SERVE_EPOCH_GUARD_H_
#define DYNDEX_SERVE_EPOCH_GUARD_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "util/check.h"
#include "util/retire.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

// Under TSan/ASan the optimistic attempt holds the shared lock while the
// query body runs (released before validation): the sanitizers would
// otherwise flag the by-design benign races of a validated-and-discarded
// torn read, drowning real reports. The plain build runs the true lock-free
// path.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define DYNDEX_LOCK_ASSISTED_OPTIMISTIC_READS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define DYNDEX_LOCK_ASSISTED_OPTIMISTIC_READS 1
#endif
#endif
#ifndef DYNDEX_LOCK_ASSISTED_OPTIMISTIC_READS
#define DYNDEX_LOCK_ASSISTED_OPTIMISTIC_READS 0
#endif

namespace dyndex {

/// A Backend a concurrent facade can serve: readers call const members under
/// Read(), the writer mutates under Write()/Maintain(). Any object type
/// qualifies; background-publication hooks are optional and duck-typed.
template <typename B>
concept EpochServable = std::is_object_v<B> && !std::is_const_v<B>;

/// Knobs of the optimistic read path. Stored packed in one atomic word, so
/// the policy may be changed at any time — even with readers in flight —
/// and every Read() observes one coherent {max_attempts, spin_limit} pair
/// (never a torn mix of old and new fields).
struct OptimisticPolicy {
  /// Optimistic attempts per Read() before falling back to the shared lock.
  /// 0 disables the optimistic path entirely (every read takes the lock) —
  /// the benchmarks use this as the locked baseline.
  uint32_t max_attempts = 3;
  /// Sequence-capture iterations (spins past an odd/moving sequence) before
  /// the reader gives up on the optimistic path for this Read(). Deliberately
  /// impatient: a writer applying batched updates holds the sequence odd for
  /// the whole exclusive section, and a reader is far better off falling
  /// back to the shared lock (where the writer-priority gate alternates
  /// fairly) than yielding through a multi-millisecond rebuild. Saturating
  /// writers therefore drive readers onto the locked path; quiescent and
  /// read-mostly phases stay lock-free.
  uint32_t spin_limit = 64;
};

/// Knobs of reader-progress-aware write pacing. Pacing is enabled when both
/// min_even_window_us and max_delay_us are nonzero; the default is off (a
/// writer admits batches as fast as it produces them, the pre-pacing
/// behavior). Stored packed in one atomic word (fields are clamped to their
/// packed widths on set), so the policy may change at any time without
/// tearing.
struct PacingPolicy {
  /// How long the sequence should have been even before the next Write()
  /// is admitted, counted from the end of the previous exclusive section.
  /// Clamped to ~16.7 s (24 packed bits). 0 disables pacing.
  uint32_t min_even_window_us = 0;
  /// Hard bound on the sleep a single Write() accepts for readers — the
  /// writer-side half of the fairness guarantee. Clamped like the window;
  /// 0 disables pacing.
  uint32_t max_delay_us = 0;
  /// Pace only when at least this many stalled-capture observations are
  /// outstanding (clamped to 65535). With a threshold >= 1 readers that
  /// never stall never slow the writer down. 0 means *unconditional*: the
  /// even window is enforced between every pair of consecutive exclusive
  /// sections regardless of stalls — a pure write-rate limiter for
  /// deployments (and few-core hosts) where readers starve for CPU against
  /// writer-driven work that runs outside the sequence (e.g. Transformation
  /// 2 background builds), which the stall counter cannot see.
  uint32_t stall_threshold = 1;
};

/// Aggregate counters of the optimistic read path (summed over the
/// per-reader slots, so hot readers never share a counter cache line).
struct OptimisticStats {
  uint64_t attempts = 0;   // optimistic attempts started
  uint64_t validated = 0;  // attempts that validated (lock-free successes)
  uint64_t retries = 0;    // attempts discarded by validation or torn reads
  uint64_t fallbacks = 0;  // Reads that gave up and took the shared lock
  /// Fallback causes (capture_exhausted + retries_exhausted == fallbacks):
  /// capture_exhausted means the reader never captured an even sequence
  /// within spin_limit (writer pressure — the starvation signature);
  /// retries_exhausted means captures succeeded but every attempt failed
  /// validation (churn racing the query body).
  uint64_t capture_exhausted = 0;
  uint64_t retries_exhausted = 0;
  /// CaptureSnapshot calls that observed an odd or moving sequence (the
  /// reader-progress signal writer pacing keys on).
  uint64_t capture_stalled = 0;
  uint64_t locked_reads = 0;  // Reads served under the shared lock (any cause)
};

/// Writer-side pacing counters: how often Write() paused for stalled
/// readers, and for how long in total.
struct PacingStats {
  uint64_t waits = 0;    // Write()s that slept to grant readers a window
  uint64_t wait_us = 0;  // total sleep time across those waits
};

/// Shared epoch/sequence/reclamation core. Owns the backend; all access goes
/// through Read / Write / Maintain (or unsynchronized(), caller-quiesced).
template <EpochServable Backend>
class EpochGuard {
 public:
  explicit EpochGuard(std::unique_ptr<Backend> backend)
      : backend_(std::move(backend)) {
    DYNDEX_CHECK(backend_ != nullptr);
  }

  ~EpochGuard() DYNDEX_NO_THREAD_SAFETY_ANALYSIS {
    // No readers may be in flight at destruction; everything still parked
    // is reclaimable. Destruction implies exclusivity, which the analysis
    // cannot know — hence the suppression on touching retired_ lock-free.
    retired_.clear();
  }

  /// Runs fn(const Backend&), optimistically when the policy allows it,
  /// under the shared lock otherwise. If `epoch` is non-null it receives
  /// the epoch of the snapshot fn observed. fn may run more than once (a
  /// discarded attempt is re-executed), so it must be restartable: no side
  /// effects other than through its return value.
  template <typename Fn>
  decltype(auto) Read(uint64_t* epoch, Fn&& fn) const DYNDEX_EXCLUDES(mu_) {
    using R = std::invoke_result_t<Fn&, const Backend&>;
    if constexpr (std::is_void_v<R>) {
      ReadImpl(epoch, [&fn](const Backend& b) {
        fn(b);
        return std::monostate{};
      });
    } else {
      return ReadImpl(epoch, std::forward<Fn>(fn));
    }
  }

  /// Runs fn(Backend&) under the exclusive lock inside an odd sequence
  /// window, then publishes finished background builds (PollPending, when
  /// the backend has it) and bumps the epoch — all before the sequence
  /// returns to even, so the batch is atomic to readers. Everything the
  /// body frees is parked (util/retire.h) and reclaimed only after the
  /// grace period. When the PacingPolicy is enabled and readers reported
  /// stalled captures since the last exclusive section, admission waits
  /// (bounded) for the even window first — before the lock is queued on,
  /// so the sleep never holds a lock or gates locked readers.
  template <typename Fn>
  decltype(auto) Write(Fn&& fn) DYNDEX_EXCLUDES(mu_) {
    PaceBeforeWrite();
    ExclusiveSection section(*this);
    if constexpr (std::is_void_v<decltype(fn(*backend_))>) {
      std::forward<Fn>(fn)(*backend_);
      PollPendingHook();
      epoch_.store(epoch_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
    } else {
      decltype(auto) result = std::forward<Fn>(fn)(*backend_);
      PollPendingHook();
      epoch_.store(epoch_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
      return result;
    }
  }

  /// Runs fn(Backend&) under the exclusive lock *without* bumping the epoch:
  /// internal maintenance (publishing rebuilds, test barriers) leaves the
  /// logical state unchanged and must be invisible to queries. The sequence
  /// still cycles odd/even — a swap mid-read must fail validation even
  /// though the answers are unchanged, because the bytes moved.
  template <typename Fn>
  decltype(auto) Maintain(Fn&& fn) DYNDEX_EXCLUDES(mu_) {
    ExclusiveSection section(*this);
    return std::forward<Fn>(fn)(*backend_);
  }

  /// Number of applied Write() batches so far (plain atomic load — the
  /// cheap snapshot-token poll).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Current sequence word (even = quiescent, odd = writer mutating).
  uint64_t sequence() const { return seq_.load(std::memory_order_acquire); }

  /// May be called at any time, readers in flight or not: the fields are
  /// published as one atomic word, so a concurrent Read() sees either the
  /// old or the new policy, never a torn mix.
  void set_optimistic_policy(const OptimisticPolicy& policy) {
    opt_policy_bits_.store(PackOptimistic(policy), std::memory_order_release);
  }
  OptimisticPolicy optimistic_policy() const {
    return UnpackOptimistic(opt_policy_bits_.load(std::memory_order_acquire));
  }

  /// May be called at any time (same atomic-word discipline). The writer
  /// re-reads the policy before every batch, so pacing can be tuned live.
  void set_pacing_policy(const PacingPolicy& policy) {
    pacing_bits_.store(PackPacing(policy), std::memory_order_release);
  }
  PacingPolicy pacing_policy() const {
    return UnpackPacing(pacing_bits_.load(std::memory_order_acquire));
  }

  OptimisticStats optimistic_stats() const {
    OptimisticStats total;
    for (const ReaderSlot& s : slots_) {
      total.attempts += s.attempts.load(std::memory_order_relaxed);
      total.validated += s.validated.load(std::memory_order_relaxed);
      total.retries += s.retries.load(std::memory_order_relaxed);
      total.fallbacks += s.fallbacks.load(std::memory_order_relaxed);
      total.capture_exhausted +=
          s.capture_exhausted.load(std::memory_order_relaxed);
      total.retries_exhausted +=
          s.retries_exhausted.load(std::memory_order_relaxed);
      total.capture_stalled +=
          s.capture_stalled.load(std::memory_order_relaxed);
    }
    total.locked_reads = locked_reads_.load(std::memory_order_relaxed);
    return total;
  }

  PacingStats pacing_stats() const {
    return {pace_waits_.load(std::memory_order_relaxed),
            pace_wait_us_.load(std::memory_order_relaxed)};
  }

  /// Retired batches not yet reclaimed (their grace period is still open).
  uint64_t retired_pending() const {
    return retired_pending_.load(std::memory_order_acquire);
  }

  /// Takes the exclusive lock and reclaims every batch whose grace period
  /// has closed (writers do this opportunistically; tests and idle loops
  /// can force it).
  void ReclaimRetired() DYNDEX_EXCLUDES(mu_) {
    WriteLock lock(*this);
    DrainRetiredLocked();
  }

  /// Test hook: runs after every optimistic attempt, before validation
  /// (with no lock held), so tests can deterministically interleave a
  /// write into the validation window. Unlike the policies, a std::function
  /// cannot be swapped atomically, so quiescence is *enforced*: the setter
  /// takes the exclusive lock and checks that no reader slot is claimed.
  void set_read_interlope(std::function<void()> hook) DYNDEX_EXCLUDES(mu_) {
    WriteLock lock(*this);
    for (const ReaderSlot& s : slots_) {
      DYNDEX_CHECK(s.snapshot.load(std::memory_order_acquire) ==
                   kIdleSnapshot);
    }
    read_interlope_ = std::move(hook);
  }

  /// The wrapped backend, with no locking. Callers must guarantee quiescence
  /// — a contract the analysis cannot see, hence the suppression on the
  /// unguarded deref.
  Backend& unsynchronized() DYNDEX_NO_THREAD_SAFETY_ANALYSIS {
    return *backend_;
  }
  const Backend& unsynchronized() const DYNDEX_NO_THREAD_SAFETY_ANALYSIS {
    return *backend_;
  }

 private:
  static constexpr std::size_t kReaderSlots = 64;
  /// Slot is unclaimed.
  static constexpr uint64_t kIdleSnapshot = ~uint64_t{0};
  /// Slot is claimed but its owner has not captured a sequence yet, so it
  /// constrains nothing: the capture handshake guarantees the owner's first
  /// data access happens under a re-validated, post-publication sequence.
  static constexpr uint64_t kClaimedSnapshot = ~uint64_t{0} - 1;

  /// One optimistic reader's published snapshot plus its share of the
  /// stats, padded to a cache line so readers never false-share.
  struct alignas(64) ReaderSlot {
    std::atomic<uint64_t> snapshot{kIdleSnapshot};
    std::atomic<uint64_t> attempts{0};
    std::atomic<uint64_t> validated{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> fallbacks{0};
    std::atomic<uint64_t> capture_exhausted{0};
    std::atomic<uint64_t> retries_exhausted{0};
    std::atomic<uint64_t> capture_stalled{0};
  };

  /// Shared lock with the writer-priority gate applied. The gate is advisory:
  /// a reader that raced past it still holds a correct shared lock; it only
  /// bounds how long writer_waiting_ can stay hot.
  class DYNDEX_SCOPED_CAPABILITY ReadLock {
   public:
    // The gate-retry loop acquires and conditionally releases inside a loop,
    // which is beyond the analysis (it tracks a single lock state per
    // program point); the ACQUIRE_SHARED interface annotation carries the
    // contract the body is suppressed from proving.
    explicit ReadLock(const EpochGuard& guard)
        DYNDEX_ACQUIRE_SHARED(guard.mu_) DYNDEX_NO_THREAD_SAFETY_ANALYSIS
        : guard_(guard) {
      for (;;) {
        while (guard_.writer_waiting_.load(std::memory_order_acquire) != 0) {
          std::this_thread::yield();
        }
        guard_.mu_.lock_shared();
        if (guard_.writer_waiting_.load(std::memory_order_acquire) == 0) {
          return;
        }
        guard_.mu_.unlock_shared();  // a writer queued meanwhile: let it in
      }
    }
    // Releases the shared mode the retry loop above acquired; the loop is
    // already beyond the analysis, so the matching release is suppressed too.
    ~ReadLock() DYNDEX_RELEASE_GENERIC() DYNDEX_NO_THREAD_SAFETY_ANALYSIS {
      guard_.mu_.unlock_shared();
    }
    ReadLock(const ReadLock&) = delete;
    ReadLock& operator=(const ReadLock&) = delete;

   private:
    const EpochGuard& guard_;
  };

  /// Exclusive lock that raises writer_waiting_ while queueing.
  class DYNDEX_SCOPED_CAPABILITY WriteLock {
   public:
    explicit WriteLock(EpochGuard& guard) DYNDEX_ACQUIRE(guard.mu_)
        : guard_(guard) {
      guard_.writer_waiting_.fetch_add(1, std::memory_order_acq_rel);
      guard_.mu_.lock();
      guard_.writer_waiting_.fetch_sub(1, std::memory_order_acq_rel);
    }
    ~WriteLock() DYNDEX_RELEASE() { guard_.mu_.unlock(); }
    WriteLock(const WriteLock&) = delete;
    WriteLock& operator=(const WriteLock&) = delete;

   private:
    EpochGuard& guard_;
  };

  /// The writer-side discipline for one exclusive section, as a scoped
  /// capability: construction acquires the exclusive lock (via the WriteLock
  /// member, so the writer-priority gate applies) and bumps the sequence
  /// odd; destruction returns the sequence to even (publication), parks the
  /// retire sink's contents tagged with the pre-section sequence, reclaims
  /// whatever batches have aged out, and only then — by member destruction
  /// order — releases the lock.
  class DYNDEX_SCOPED_CAPABILITY ExclusiveSection {
   public:
    // Acquires through the scoped lock_ *member* (not a local), which the
    // analysis does not track — the ACQUIRE interface annotation carries
    // the net effect call sites rely on.
    explicit ExclusiveSection(EpochGuard& guard)
        DYNDEX_ACQUIRE(guard.mu_) DYNDEX_NO_THREAD_SAFETY_ANALYSIS
        : guard_(guard),
          lock_(guard),
          pre_(guard.seq_.load(std::memory_order_relaxed)),
          scope_(std::in_place, &sink_) {
      guard_.seq_.store(pre_ + 1, std::memory_order_seq_cst);
      // Full barrier: the odd store must be visible before any mutation
      // is (the store-store half of the seqlock protocol).
      std::atomic_thread_fence(std::memory_order_seq_cst);
    }

    // The body runs with the lock still held (lock_ is destroyed after it,
    // in reverse member order) and calls the REQUIRES(mu_) park/drain
    // helpers through the stored guard_ reference — an aliasing step
    // (guard_ == the mutex's owner) the intraprocedural analysis cannot
    // make, hence the suppression; the RELEASE interface annotation is what
    // call sites check against.
    ~ExclusiveSection() DYNDEX_RELEASE() DYNDEX_NO_THREAD_SAFETY_ANALYSIS {
      // This destructor is also the writer's unwind path: a throwing batch
      // body lands here with the sequence odd and the exclusive lock held,
      // and everything below must run without throwing (the sequence back
      // to even, the sink parked, the gate released by the lock_ member's
      // own destructor) — an exception escaping mid-unwind would terminate.
      //
      // Uninstall the sink *before* publishing, so reclamation below frees
      // for real instead of re-parking onto the sink being reclaimed.
      scope_.reset();
      std::atomic_thread_fence(std::memory_order_seq_cst);
      guard_.seq_.store(pre_ + 2, std::memory_order_seq_cst);
      // Pacing mark: the even window the next Write() may have to grant
      // starts now.
      guard_.last_section_end_ns_.store(NowNs(), std::memory_order_release);
      if (!sink_.empty()) {
        guard_.ParkSinkLocked(pre_, std::move(sink_));
      }
      guard_.DrainRetiredLocked();
    }

    ExclusiveSection(const ExclusiveSection&) = delete;
    ExclusiveSection& operator=(const ExclusiveSection&) = delete;

   private:
    EpochGuard& guard_;
    WriteLock lock_;  // destroyed last: park/drain above run under the lock
    uint64_t pre_;    // even sequence before this section
    RetireSink sink_;
    std::optional<RetireScope> scope_;
  };

  struct RetiredBatch {
    uint64_t tag;  // even sequence under which the parked objects were live
    RetireSink sink;
  };

  /// Releases the slot on every exit path of ReadImpl.
  struct SlotRelease {
    ReaderSlot* slot;
    ~SlotRelease() {
      if (slot != nullptr) {
        slot->snapshot.store(kIdleSnapshot, std::memory_order_release);
      }
    }
  };

  template <typename Fn>
  std::invoke_result_t<Fn&, const Backend&> ReadImpl(uint64_t* epoch,
                                                     Fn&& fn) const
      DYNDEX_EXCLUDES(mu_) {
    using R = std::invoke_result_t<Fn&, const Backend&>;
    static_assert(!std::is_reference_v<R>,
                  "Read lambdas must return by value");
    const OptimisticPolicy policy = optimistic_policy();
    if (policy.max_attempts > 0) {
      if (ReaderSlot* slot = ClaimSlot()) {
        SlotRelease release{slot};
        bool capture_failed = false;
        for (uint32_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
          uint64_t s;
          if (!CaptureSnapshot(slot, policy.spin_limit, &s)) {
            capture_failed = true;
            break;
          }
          slot->attempts.fetch_add(1, std::memory_order_relaxed);
          // Epoch of snapshot s: epoch_ only moves inside odd windows, so
          // if validation passes this load belongs to the window.
          const uint64_t e = epoch_.load(std::memory_order_acquire);
          std::optional<R> result;
          const bool completed = RunAttempt(fn, &result);
          MaybeRunInterlope();
          if (completed && seq_.load(std::memory_order_seq_cst) == s) {
            slot->validated.fetch_add(1, std::memory_order_relaxed);
            if (epoch != nullptr) *epoch = e;
            return std::move(*result);
          }
          slot->retries.fetch_add(1, std::memory_order_relaxed);
        }
        slot->fallbacks.fetch_add(1, std::memory_order_relaxed);
        // Cause split: never captured an even sequence (writer pressure)
        // vs captured but never validated (churn racing the query body).
        (capture_failed ? slot->capture_exhausted : slot->retries_exhausted)
            .fetch_add(1, std::memory_order_relaxed);
      }
    }
    return LockedRead(epoch, fn);
  }

  /// Test hook dispatch, factored out of ReadImpl so the suppression is as
  /// narrow as possible: read_interlope_ is GUARDED_BY(mu_) for its setter,
  /// but readers call it lock-free by design — safe because the setter
  /// enforces full quiescence (exclusive lock + every slot idle) before
  /// swapping the std::function, a contract the analysis cannot express.
  void MaybeRunInterlope() const DYNDEX_NO_THREAD_SAFETY_ANALYSIS {
    if (read_interlope_) read_interlope_();
  }

  /// One optimistic attempt. Returns false when the attempt was abandoned
  /// (a torn value tripped a CHECK, or any other throw mid-query); the
  /// caller discards and retries. Under sanitizers the body runs with the
  /// shared lock held (released before the caller validates).
  ///
  /// Suppressed: the lock-free path dereferences backend_ with no lock at
  /// all — the seqlock capture/validate protocol in ReadImpl (plus
  /// retire-based reclamation) is what makes that safe, and it is exactly
  /// the class of protocol -Wthread-safety cannot model.
  template <typename Fn, typename R>
  bool RunAttempt(Fn& fn, std::optional<R>* result) const
      DYNDEX_NO_THREAD_SAFETY_ANALYSIS {
#if DYNDEX_LOCK_ASSISTED_OPTIMISTIC_READS
    ReadLock lock(*this);
    result->emplace(fn(static_cast<const Backend&>(*backend_)));
    return true;
#else
    OptimisticReadScope torn_scope;
    try {
      result->emplace(fn(static_cast<const Backend&>(*backend_)));
      return true;
    } catch (const TornReadError&) {
      return false;
    } catch (...) {
      // Anything else thrown mid-attempt (e.g. bad_alloc off a torn length)
      // is treated as torn; a genuine failure recurs on the locked path,
      // where it propagates normally.
      return false;
    }
#endif
  }

  /// Claims a reader slot. The start index is a thread-local *preferred*
  /// slot: hashed from the thread id once per thread (not per read), and
  /// re-pointed at whichever slot the CAS actually won — so a hot reader
  /// claims the same uncontended slot every time and only reprobes after a
  /// genuine conflict, instead of hammering CAS traffic onto a
  /// possibly-colliding hash bucket on every read. nullptr when all slots
  /// are busy (the caller takes the locked path).
  ReaderSlot* ClaimSlot() const {
    static thread_local std::size_t preferred =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) %
        kReaderSlots;
    std::size_t idx = preferred;
    for (std::size_t i = 0; i < kReaderSlots; ++i) {
      ReaderSlot& slot = slots_[idx];
      uint64_t expect = kIdleSnapshot;
      if (slot.snapshot.compare_exchange_strong(expect, kClaimedSnapshot,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
        preferred = idx;
        return &slot;
      }
      idx = (idx + 1) % kReaderSlots;
    }
    return nullptr;
  }

  /// Publishes an even sequence snapshot in `slot` and re-validates that it
  /// is still current — the reader half of the Dekker handshake with the
  /// writer's publish/scan (see file comment). False when the sequence
  /// would not settle within `spin_limit` iterations. A call that observed
  /// an odd or moving sequence at all bumps capture_stalled exactly once —
  /// the reader-progress signal the writer's pacing keys on.
  bool CaptureSnapshot(ReaderSlot* slot, uint32_t spin_limit,
                       uint64_t* out) const {
    bool stalled = false;
    bool captured = false;
    uint64_t s = seq_.load(std::memory_order_acquire);
    for (uint32_t spins = 0; spins <= spin_limit; ++spins) {
      if ((s & 1) != 0) {  // writer mid-mutation: wait for publication
        stalled = true;
        std::this_thread::yield();
        s = seq_.load(std::memory_order_acquire);
        continue;
      }
      slot->snapshot.store(s, std::memory_order_seq_cst);
      const uint64_t s2 = seq_.load(std::memory_order_seq_cst);
      if (s2 == s) {
        *out = s;
        captured = true;
        break;
      }
      stalled = true;
      s = s2;  // a writer published meanwhile: re-capture
    }
    if (!captured) {
      slot->snapshot.store(kClaimedSnapshot, std::memory_order_seq_cst);
    }
    if (stalled) {
      slot->capture_stalled.fetch_add(1, std::memory_order_relaxed);
    }
    return captured;
  }

  template <typename Fn>
  std::invoke_result_t<Fn&, const Backend&> LockedRead(uint64_t* epoch,
                                                       Fn& fn) const
      DYNDEX_EXCLUDES(mu_) {
    locked_reads_.fetch_add(1, std::memory_order_relaxed);
    ReadLock lock(*this);
    if (epoch != nullptr) *epoch = epoch_.load(std::memory_order_relaxed);
    return fn(static_cast<const Backend&>(*backend_));
  }

  // --- policy packing -------------------------------------------------------
  // Both policies live in one atomic uint64 each, so setters never tear
  // against concurrent readers of the policy (satellite of the documented
  // "set while quiesced" contract this replaces).

  static constexpr uint64_t PackOptimistic(const OptimisticPolicy& p) {
    return uint64_t{p.max_attempts} | (uint64_t{p.spin_limit} << 32);
  }
  static constexpr OptimisticPolicy UnpackOptimistic(uint64_t bits) {
    OptimisticPolicy p;
    p.max_attempts = static_cast<uint32_t>(bits);
    p.spin_limit = static_cast<uint32_t>(bits >> 32);
    return p;
  }

  /// Packed PacingPolicy layout: window (24 bits, us) | delay (24 bits, us)
  /// | stall threshold (16 bits). Fields clamp on set.
  static constexpr uint32_t kPaceTimeMax = (1u << 24) - 1;  // ~16.7 s
  static constexpr uint32_t kStallThresholdMax = (1u << 16) - 1;
  static constexpr uint64_t PackPacing(const PacingPolicy& p) {
    const uint64_t window = std::min(p.min_even_window_us, kPaceTimeMax);
    const uint64_t delay = std::min(p.max_delay_us, kPaceTimeMax);
    const uint64_t threshold = std::min(p.stall_threshold, kStallThresholdMax);
    return window | (delay << 24) | (threshold << 48);
  }
  static constexpr PacingPolicy UnpackPacing(uint64_t bits) {
    PacingPolicy p;
    p.min_even_window_us = static_cast<uint32_t>(bits & kPaceTimeMax);
    p.max_delay_us = static_cast<uint32_t>((bits >> 24) & kPaceTimeMax);
    p.stall_threshold = static_cast<uint32_t>(bits >> 48);
    return p;
  }

  // --- writer pacing --------------------------------------------------------

  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  uint64_t TotalCaptureStalled() const {
    uint64_t total = 0;
    for (const ReaderSlot& s : slots_) {
      total += s.capture_stalled.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// The reader-progress-aware admission gate: when readers accrued at
  /// least stall_threshold stalled captures that no pace has answered yet
  /// (the stall *debt* — it persists across exclusive sections until a
  /// window is granted, because a reader that stalled three batches ago
  /// and fell back to a queued locked read is still starving), sleep until
  /// the sequence has been even for min_even_window_us (counted from the
  /// last section's end), capped at max_delay_us. Granting the window
  /// consumes the debt. With stall_threshold == 0 the window is enforced
  /// unconditionally between consecutive sections (the write-rate-limiter
  /// mode — see PacingPolicy). Runs with NO lock held and writer_waiting_
  /// not yet raised, so both optimistic and locked readers make progress
  /// for the whole window — a pool worker pacing one shard of a sharded
  /// facade sleeps outside every lock too.
  void PaceBeforeWrite() DYNDEX_EXCLUDES(mu_) {
    const PacingPolicy p = pacing_policy();
    if (p.min_even_window_us == 0 || p.max_delay_us == 0) return;
    const uint64_t end_ns =
        last_section_end_ns_.load(std::memory_order_acquire);
    if (end_ns == 0) return;  // no exclusive section yet: nothing to space
    if (p.stall_threshold > 0) {
      const uint64_t stalled = TotalCaptureStalled();
      const uint64_t mark = stalled_mark_.load(std::memory_order_acquire);
      if (stalled - mark < p.stall_threshold) return;
      // The debt is consumed whether the window is slept for below or
      // already elapsed on its own (the writer was away long enough).
      stalled_mark_.store(stalled, std::memory_order_release);
    }
    const uint64_t deadline_ns =
        end_ns + uint64_t{p.min_even_window_us} * 1000;
    const uint64_t now_ns = NowNs();
    if (now_ns >= deadline_ns) return;
    const uint64_t wait_ns =
        std::min(deadline_ns - now_ns, uint64_t{p.max_delay_us} * 1000);
    std::this_thread::sleep_for(std::chrono::nanoseconds(wait_ns));
    pace_waits_.fetch_add(1, std::memory_order_relaxed);
    pace_wait_us_.fetch_add(wait_ns / 1000, std::memory_order_relaxed);
  }

  /// Parks one section's retire sink without ever throwing — this runs on
  /// the writer's unwind path (~ExclusiveSection), where a bad_alloc from
  /// the vector growth would escalate to std::terminate. The allocation is
  /// attempted separately from the push so a failure never destroys the
  /// sink's contents early; if it fails, fall back to waiting out the grace
  /// period right here (parking exists only to defer that free), then let
  /// the sink destruct. Caller must hold the exclusive lock.
  void ParkSinkLocked(uint64_t tag, RetireSink sink) noexcept
      DYNDEX_REQUIRES(mu_) {
    bool reserved = false;
    try {
      if (retired_.size() == retired_.capacity()) {
        retired_.reserve(std::max<std::size_t>(4, retired_.capacity() * 2));
      }
      reserved = true;
    } catch (...) {
      // Out of memory mid-unwind; take the blocking path below.
    }
    if (reserved) {
      // No-throw: capacity is in hand and RetireSink's moves are noexcept.
      retired_.push_back(RetiredBatch{tag, std::move(sink)});
      retired_pending_.store(retired_.size(), std::memory_order_release);
      return;
    }
    // Freeing is safe once no reader publishes a snapshot <= tag (the same
    // grace rule DrainRetiredLocked applies); reader critical sections are
    // short by construction, so this terminates promptly.
    for (;;) {
      uint64_t min_active = kIdleSnapshot;
      for (const ReaderSlot& slot : slots_) {
        min_active = std::min(min_active,
                              slot.snapshot.load(std::memory_order_seq_cst));
      }
      if (tag < min_active) break;
      std::this_thread::yield();
    }
    // `sink` destructs on return, after its grace period closed.
  }

  /// Reclaims every retired batch whose grace period has closed: a batch
  /// tagged S is freed once no active reader slot publishes a snapshot
  /// <= S. Caller must hold the exclusive lock.
  void DrainRetiredLocked() DYNDEX_REQUIRES(mu_) {
    if (retired_.empty()) {
      retired_pending_.store(0, std::memory_order_release);
      return;
    }
    uint64_t min_active = kIdleSnapshot;
    for (const ReaderSlot& slot : slots_) {
      min_active =
          std::min(min_active, slot.snapshot.load(std::memory_order_seq_cst));
    }
    std::size_t kept = 0;
    for (std::size_t i = 0; i < retired_.size(); ++i) {
      if (retired_[i].tag < min_active) continue;  // grace closed: freed below
      if (kept != i) retired_[kept] = std::move(retired_[i]);
      ++kept;
    }
    retired_.resize(kept);
    retired_pending_.store(kept, std::memory_order_release);
  }

  void PollPendingHook() DYNDEX_REQUIRES(mu_) {
    if constexpr (requires(Backend& b) { b.PollPending(); }) {
      backend_->PollPending();
    }
  }

  mutable SharedMutex mu_;
  std::atomic<uint32_t> writer_waiting_{0};  // queued writers
  /// The pointee is mutated only under mu_ exclusive; optimistic readers
  /// reach it lock-free through the suppressed RunAttempt.
  std::unique_ptr<Backend> backend_ DYNDEX_PT_GUARDED_BY(mu_);
  std::atomic<uint64_t> seq_{0};      // even = quiescent, odd = mutating
  std::atomic<uint64_t> epoch_{0};    // applied Write() batches
  /// Policies, packed (see PackOptimistic / PackPacing): settable at any
  /// time without tearing against in-flight readers/writers.
  std::atomic<uint64_t> opt_policy_bits_{PackOptimistic(OptimisticPolicy{})};
  std::atomic<uint64_t> pacing_bits_{PackPacing(PacingPolicy{})};
  /// Pacing marks: when the last exclusive section ended, and the total
  /// stalled-capture count the last granted window answered (stalls above
  /// the mark are outstanding debt; see PaceBeforeWrite).
  std::atomic<uint64_t> last_section_end_ns_{0};
  std::atomic<uint64_t> stalled_mark_{0};
  std::atomic<uint64_t> pace_waits_{0};
  std::atomic<uint64_t> pace_wait_us_{0};
  mutable std::array<ReaderSlot, kReaderSlots> slots_;
  mutable std::atomic<uint64_t> locked_reads_{0};
  std::vector<RetiredBatch> retired_ DYNDEX_GUARDED_BY(mu_);
  std::atomic<uint64_t> retired_pending_{0};
  /// Test-only; the setter enforces quiescence (exclusive lock + idle
  /// slots), readers invoke it lock-free via MaybeRunInterlope.
  std::function<void()> read_interlope_ DYNDEX_GUARDED_BY(mu_);
};

}  // namespace dyndex

#endif  // DYNDEX_SERVE_EPOCH_GUARD_H_
