// The reusable concurrent-serving core: every concurrent facade in the repo
// (documents in concurrent_index.h, relations/graphs in concurrent_relation.h,
// and every shard under the sharded facades) is a thin wrapper over one
// EpochGuard<Backend>, so the read protocol, the writer-priority gate, the
// epoch, the reclamation contract, and the PollPending publication hook exist
// exactly once.
//
// Concurrency model (documented in README.md):
//
//  * The read hot path is OPTIMISTIC — no lock at all. A sequence word
//    (seq_) is even while the backend is quiescent; the writer bumps it to
//    odd before mutating and back to even after publishing. A reader
//    captures an even sequence, runs the query against the live backend,
//    and validates that the sequence is unchanged afterwards; on mismatch
//    the result is discarded and the attempt retried. After
//    OptimisticPolicy::max_attempts failed attempts (or when a writer storm
//    keeps the sequence odd past spin_limit iterations) the reader falls
//    back to the shared-lock path, so saturating writers can never starve
//    readers.
//
//  * Torn reads are memory-safe, not merely detectable. Before capturing a
//    sequence the reader publishes its snapshot in one of kReaderSlots
//    per-reader slots; everything a writer frees while mutating (replaced
//    sub-collection levels, swapped Transformation-2 structures, cleared
//    dynbits arenas, reallocated container buffers) is parked on a
//    retire-list via util/retire.h instead of freed, tagged with the even
//    sequence that preceded the write. A parked batch is reclaimed only
//    when every active reader slot holds a strictly newer snapshot — no
//    reader that could still be traversing the freed memory remains. The
//    slot-publish / sequence-revalidate handshake pairs seq_cst accesses
//    with the writer's publish / slot-scan (a Dekker-style store-load
//    pattern), so a reader the scan missed is guaranteed to re-capture a
//    post-publication sequence before touching any data.
//
//  * A torn attempt may still read type-stable-but-garbage values, so the
//    backends clamp loop bounds on their read paths and every DYNDEX_CHECK
//    tripped during an optimistic attempt throws TornReadError (see
//    util/check.h) instead of aborting; the attempt catches, discards, and
//    retries. Under TSan/ASan the attempt body additionally holds the
//    shared lock (released before validation), trading the lock-free hot
//    path for instrumentable, race-free execution while keeping the retry,
//    fallback, slot, and reclamation machinery fully exercised.
//
//  * The single writer takes the exclusive side per Write(): it applies the
//    whole batch, publishes any finished background builds (the PollPending
//    hook — Transformation 2's swap step), bumps the epoch, and releases.
//    Locked readers therefore never observe a half-applied batch, and
//    optimistic readers never *validate* one. Maintain() is the same
//    exclusive section without the epoch bump: publishing an internal
//    rebuild leaves the logical state unchanged. A writer-priority gate
//    (writer_waiting_) keeps the fallback path live under glibc's
//    reader-preferring rwlock.
//
// The epoch is the linearization point: every Read() reports the epoch of
// the snapshot it ran against (captured inside the validated window), and
// two reads reporting the same epoch saw the same logical state. The
// differential model-checking harnesses key their per-state expectations on
// exactly this value — the optimistic protocol changes how a snapshot is
// obtained, not what it means.
//
// Backend is any class; the hooks are detected with `requires`:
//  * b.PollPending()     -- called after every Write() body (optional)
//  * b.ForceAllPending() -- reachable through Maintain() by the wrapper
#ifndef DYNDEX_SERVE_EPOCH_GUARD_H_
#define DYNDEX_SERVE_EPOCH_GUARD_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "util/check.h"
#include "util/retire.h"

// Under TSan/ASan the optimistic attempt holds the shared lock while the
// query body runs (released before validation): the sanitizers would
// otherwise flag the by-design benign races of a validated-and-discarded
// torn read, drowning real reports. The plain build runs the true lock-free
// path.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define DYNDEX_LOCK_ASSISTED_OPTIMISTIC_READS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define DYNDEX_LOCK_ASSISTED_OPTIMISTIC_READS 1
#endif
#endif
#ifndef DYNDEX_LOCK_ASSISTED_OPTIMISTIC_READS
#define DYNDEX_LOCK_ASSISTED_OPTIMISTIC_READS 0
#endif

namespace dyndex {

/// A Backend a concurrent facade can serve: readers call const members under
/// Read(), the writer mutates under Write()/Maintain(). Any object type
/// qualifies; background-publication hooks are optional and duck-typed.
template <typename B>
concept EpochServable = std::is_object_v<B> && !std::is_const_v<B>;

/// Knobs of the optimistic read path. Set while quiesced (no readers in
/// flight); readers copy the fields at the top of each Read().
struct OptimisticPolicy {
  /// Optimistic attempts per Read() before falling back to the shared lock.
  /// 0 disables the optimistic path entirely (every read takes the lock) —
  /// the benchmarks use this as the locked baseline.
  uint32_t max_attempts = 3;
  /// Sequence-capture iterations (spins past an odd/moving sequence) before
  /// the reader gives up on the optimistic path for this Read(). Deliberately
  /// impatient: a writer applying batched updates holds the sequence odd for
  /// the whole exclusive section, and a reader is far better off falling
  /// back to the shared lock (where the writer-priority gate alternates
  /// fairly) than yielding through a multi-millisecond rebuild. Saturating
  /// writers therefore drive readers onto the locked path; quiescent and
  /// read-mostly phases stay lock-free.
  uint32_t spin_limit = 64;
};

/// Aggregate counters of the optimistic read path (summed over the
/// per-reader slots, so hot readers never share a counter cache line).
struct OptimisticStats {
  uint64_t attempts = 0;   // optimistic attempts started
  uint64_t validated = 0;  // attempts that validated (lock-free successes)
  uint64_t retries = 0;    // attempts discarded by validation or torn reads
  uint64_t fallbacks = 0;  // Reads that gave up and took the shared lock
  uint64_t locked_reads = 0;  // Reads served under the shared lock (any cause)
};

/// Shared epoch/sequence/reclamation core. Owns the backend; all access goes
/// through Read / Write / Maintain (or unsynchronized(), caller-quiesced).
template <EpochServable Backend>
class EpochGuard {
 public:
  explicit EpochGuard(std::unique_ptr<Backend> backend)
      : backend_(std::move(backend)) {
    DYNDEX_CHECK(backend_ != nullptr);
  }

  ~EpochGuard() {
    // No readers may be in flight at destruction; everything still parked
    // is reclaimable.
    retired_.clear();
  }

  /// Runs fn(const Backend&), optimistically when the policy allows it,
  /// under the shared lock otherwise. If `epoch` is non-null it receives
  /// the epoch of the snapshot fn observed. fn may run more than once (a
  /// discarded attempt is re-executed), so it must be restartable: no side
  /// effects other than through its return value.
  template <typename Fn>
  decltype(auto) Read(uint64_t* epoch, Fn&& fn) const {
    using R = std::invoke_result_t<Fn&, const Backend&>;
    if constexpr (std::is_void_v<R>) {
      ReadImpl(epoch, [&fn](const Backend& b) {
        fn(b);
        return std::monostate{};
      });
    } else {
      return ReadImpl(epoch, std::forward<Fn>(fn));
    }
  }

  /// Runs fn(Backend&) under the exclusive lock inside an odd sequence
  /// window, then publishes finished background builds (PollPending, when
  /// the backend has it) and bumps the epoch — all before the sequence
  /// returns to even, so the batch is atomic to readers. Everything the
  /// body frees is parked (util/retire.h) and reclaimed only after the
  /// grace period.
  template <typename Fn>
  decltype(auto) Write(Fn&& fn) {
    WriteLock lock(*this);
    ExclusiveSection section(*this);
    if constexpr (std::is_void_v<decltype(fn(*backend_))>) {
      std::forward<Fn>(fn)(*backend_);
      PollPendingHook();
      epoch_.store(epoch_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
    } else {
      decltype(auto) result = std::forward<Fn>(fn)(*backend_);
      PollPendingHook();
      epoch_.store(epoch_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
      return result;
    }
  }

  /// Runs fn(Backend&) under the exclusive lock *without* bumping the epoch:
  /// internal maintenance (publishing rebuilds, test barriers) leaves the
  /// logical state unchanged and must be invisible to queries. The sequence
  /// still cycles odd/even — a swap mid-read must fail validation even
  /// though the answers are unchanged, because the bytes moved.
  template <typename Fn>
  decltype(auto) Maintain(Fn&& fn) {
    WriteLock lock(*this);
    ExclusiveSection section(*this);
    return std::forward<Fn>(fn)(*backend_);
  }

  /// Number of applied Write() batches so far (plain atomic load — the
  /// cheap snapshot-token poll).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Current sequence word (even = quiescent, odd = writer mutating).
  uint64_t sequence() const { return seq_.load(std::memory_order_acquire); }

  void set_optimistic_policy(const OptimisticPolicy& policy) {
    policy_ = policy;
  }
  const OptimisticPolicy& optimistic_policy() const { return policy_; }

  OptimisticStats optimistic_stats() const {
    OptimisticStats total;
    for (const ReaderSlot& s : slots_) {
      total.attempts += s.attempts.load(std::memory_order_relaxed);
      total.validated += s.validated.load(std::memory_order_relaxed);
      total.retries += s.retries.load(std::memory_order_relaxed);
      total.fallbacks += s.fallbacks.load(std::memory_order_relaxed);
    }
    total.locked_reads = locked_reads_.load(std::memory_order_relaxed);
    return total;
  }

  /// Retired batches not yet reclaimed (their grace period is still open).
  uint64_t retired_pending() const {
    return retired_pending_.load(std::memory_order_acquire);
  }

  /// Takes the exclusive lock and reclaims every batch whose grace period
  /// has closed (writers do this opportunistically; tests and idle loops
  /// can force it).
  void ReclaimRetired() {
    WriteLock lock(*this);
    DrainRetiredLocked();
  }

  /// Test hook: runs after every optimistic attempt, before validation
  /// (with no lock held), so tests can deterministically interleave a
  /// write into the validation window. Set while quiesced.
  void set_read_interlope(std::function<void()> hook) {
    read_interlope_ = std::move(hook);
  }

  /// The wrapped backend, with no locking. Callers must guarantee quiescence.
  Backend& unsynchronized() { return *backend_; }
  const Backend& unsynchronized() const { return *backend_; }

 private:
  static constexpr std::size_t kReaderSlots = 64;
  /// Slot is unclaimed.
  static constexpr uint64_t kIdleSnapshot = ~uint64_t{0};
  /// Slot is claimed but its owner has not captured a sequence yet, so it
  /// constrains nothing: the capture handshake guarantees the owner's first
  /// data access happens under a re-validated, post-publication sequence.
  static constexpr uint64_t kClaimedSnapshot = ~uint64_t{0} - 1;

  /// One optimistic reader's published snapshot plus its share of the
  /// stats, padded to a cache line so readers never false-share.
  struct alignas(64) ReaderSlot {
    std::atomic<uint64_t> snapshot{kIdleSnapshot};
    std::atomic<uint64_t> attempts{0};
    std::atomic<uint64_t> validated{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> fallbacks{0};
  };

  /// Shared lock with the writer-priority gate applied. The gate is advisory:
  /// a reader that raced past it still holds a correct shared lock; it only
  /// bounds how long writer_waiting_ can stay hot.
  class ReadLock {
   public:
    explicit ReadLock(const EpochGuard& guard) : guard_(guard) {
      for (;;) {
        while (guard_.writer_waiting_.load(std::memory_order_acquire) != 0) {
          std::this_thread::yield();
        }
        guard_.mu_.lock_shared();
        if (guard_.writer_waiting_.load(std::memory_order_acquire) == 0) {
          return;
        }
        guard_.mu_.unlock_shared();  // a writer queued meanwhile: let it in
      }
    }
    ~ReadLock() { guard_.mu_.unlock_shared(); }
    ReadLock(const ReadLock&) = delete;
    ReadLock& operator=(const ReadLock&) = delete;

   private:
    const EpochGuard& guard_;
  };

  /// Exclusive lock that raises writer_waiting_ while queueing.
  class WriteLock {
   public:
    explicit WriteLock(EpochGuard& guard) : guard_(guard) {
      guard_.writer_waiting_.fetch_add(1, std::memory_order_acq_rel);
      guard_.mu_.lock();
      guard_.writer_waiting_.fetch_sub(1, std::memory_order_acq_rel);
    }
    ~WriteLock() { guard_.mu_.unlock(); }
    WriteLock(const WriteLock&) = delete;
    WriteLock& operator=(const WriteLock&) = delete;

   private:
    EpochGuard& guard_;
  };

  /// The writer-side sequence discipline for one exclusive section:
  /// constructor bumps the sequence odd and installs the retire sink;
  /// destructor returns the sequence to even (publication), parks the
  /// sink's contents tagged with the pre-section sequence, and reclaims
  /// whatever batches have aged out. Caller must hold the exclusive lock.
  class ExclusiveSection {
   public:
    explicit ExclusiveSection(EpochGuard& guard)
        : guard_(guard),
          pre_(guard.seq_.load(std::memory_order_relaxed)),
          scope_(std::in_place, &sink_) {
      guard_.seq_.store(pre_ + 1, std::memory_order_seq_cst);
      // Full barrier: the odd store must be visible before any mutation
      // is (the store-store half of the seqlock protocol).
      std::atomic_thread_fence(std::memory_order_seq_cst);
    }

    ~ExclusiveSection() {
      // Uninstall the sink *before* publishing, so reclamation below frees
      // for real instead of re-parking onto the sink being reclaimed.
      scope_.reset();
      std::atomic_thread_fence(std::memory_order_seq_cst);
      guard_.seq_.store(pre_ + 2, std::memory_order_seq_cst);
      if (!sink_.empty()) {
        guard_.retired_.push_back({pre_, std::move(sink_)});
      }
      guard_.DrainRetiredLocked();
    }

    ExclusiveSection(const ExclusiveSection&) = delete;
    ExclusiveSection& operator=(const ExclusiveSection&) = delete;

   private:
    EpochGuard& guard_;
    uint64_t pre_;  // even sequence before this section
    RetireSink sink_;
    std::optional<RetireScope> scope_;
  };

  struct RetiredBatch {
    uint64_t tag;  // even sequence under which the parked objects were live
    RetireSink sink;
  };

  /// Releases the slot on every exit path of ReadImpl.
  struct SlotRelease {
    ReaderSlot* slot;
    ~SlotRelease() {
      if (slot != nullptr) {
        slot->snapshot.store(kIdleSnapshot, std::memory_order_release);
      }
    }
  };

  template <typename Fn>
  auto ReadImpl(uint64_t* epoch, Fn&& fn) const
      -> std::invoke_result_t<Fn&, const Backend&> {
    using R = std::invoke_result_t<Fn&, const Backend&>;
    static_assert(!std::is_reference_v<R>,
                  "Read lambdas must return by value");
    const OptimisticPolicy policy = policy_;
    if (policy.max_attempts > 0) {
      if (ReaderSlot* slot = ClaimSlot()) {
        SlotRelease release{slot};
        for (uint32_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
          uint64_t s;
          if (!CaptureSnapshot(slot, policy.spin_limit, &s)) break;
          slot->attempts.fetch_add(1, std::memory_order_relaxed);
          // Epoch of snapshot s: epoch_ only moves inside odd windows, so
          // if validation passes this load belongs to the window.
          const uint64_t e = epoch_.load(std::memory_order_acquire);
          std::optional<R> result;
          const bool completed = RunAttempt(fn, &result);
          if (read_interlope_) read_interlope_();
          if (completed && seq_.load(std::memory_order_seq_cst) == s) {
            slot->validated.fetch_add(1, std::memory_order_relaxed);
            if (epoch != nullptr) *epoch = e;
            return std::move(*result);
          }
          slot->retries.fetch_add(1, std::memory_order_relaxed);
        }
        slot->fallbacks.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return LockedRead(epoch, fn);
  }

  /// One optimistic attempt. Returns false when the attempt was abandoned
  /// (a torn value tripped a CHECK, or any other throw mid-query); the
  /// caller discards and retries. Under sanitizers the body runs with the
  /// shared lock held (released before the caller validates).
  template <typename Fn, typename R>
  bool RunAttempt(Fn& fn, std::optional<R>* result) const {
#if DYNDEX_LOCK_ASSISTED_OPTIMISTIC_READS
    ReadLock lock(*this);
    result->emplace(fn(static_cast<const Backend&>(*backend_)));
    return true;
#else
    OptimisticReadScope torn_scope;
    try {
      result->emplace(fn(static_cast<const Backend&>(*backend_)));
      return true;
    } catch (const TornReadError&) {
      return false;
    } catch (...) {
      // Anything else thrown mid-attempt (e.g. bad_alloc off a torn length)
      // is treated as torn; a genuine failure recurs on the locked path,
      // where it propagates normally.
      return false;
    }
#endif
  }

  /// Claims a reader slot, probing from a thread-hashed start index.
  /// nullptr when all slots are busy (the caller takes the locked path).
  ReaderSlot* ClaimSlot() const {
    const std::size_t start =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    for (std::size_t i = 0; i < kReaderSlots; ++i) {
      ReaderSlot& slot = slots_[(start + i) % kReaderSlots];
      uint64_t expect = kIdleSnapshot;
      if (slot.snapshot.compare_exchange_strong(expect, kClaimedSnapshot,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
        return &slot;
      }
    }
    return nullptr;
  }

  /// Publishes an even sequence snapshot in `slot` and re-validates that it
  /// is still current — the reader half of the Dekker handshake with the
  /// writer's publish/scan (see file comment). False when the sequence
  /// would not settle within `spin_limit` iterations.
  bool CaptureSnapshot(ReaderSlot* slot, uint32_t spin_limit,
                       uint64_t* out) const {
    uint64_t s = seq_.load(std::memory_order_acquire);
    for (uint32_t spins = 0; spins <= spin_limit; ++spins) {
      if ((s & 1) != 0) {  // writer mid-mutation: wait for publication
        std::this_thread::yield();
        s = seq_.load(std::memory_order_acquire);
        continue;
      }
      slot->snapshot.store(s, std::memory_order_seq_cst);
      const uint64_t s2 = seq_.load(std::memory_order_seq_cst);
      if (s2 == s) {
        *out = s;
        return true;
      }
      s = s2;  // a writer published meanwhile: re-capture
    }
    slot->snapshot.store(kClaimedSnapshot, std::memory_order_seq_cst);
    return false;
  }

  template <typename Fn>
  auto LockedRead(uint64_t* epoch, Fn& fn) const
      -> std::invoke_result_t<Fn&, const Backend&> {
    locked_reads_.fetch_add(1, std::memory_order_relaxed);
    ReadLock lock(*this);
    if (epoch != nullptr) *epoch = epoch_.load(std::memory_order_relaxed);
    return fn(static_cast<const Backend&>(*backend_));
  }

  /// Reclaims every retired batch whose grace period has closed: a batch
  /// tagged S is freed once no active reader slot publishes a snapshot
  /// <= S. Caller must hold the exclusive lock.
  void DrainRetiredLocked() {
    if (retired_.empty()) {
      retired_pending_.store(0, std::memory_order_release);
      return;
    }
    uint64_t min_active = kIdleSnapshot;
    for (const ReaderSlot& slot : slots_) {
      min_active =
          std::min(min_active, slot.snapshot.load(std::memory_order_seq_cst));
    }
    std::size_t kept = 0;
    for (std::size_t i = 0; i < retired_.size(); ++i) {
      if (retired_[i].tag < min_active) continue;  // grace closed: freed below
      if (kept != i) retired_[kept] = std::move(retired_[i]);
      ++kept;
    }
    retired_.resize(kept);
    retired_pending_.store(kept, std::memory_order_release);
  }

  void PollPendingHook() {
    if constexpr (requires(Backend& b) { b.PollPending(); }) {
      backend_->PollPending();
    }
  }

  mutable std::shared_mutex mu_;
  std::atomic<uint32_t> writer_waiting_{0};  // queued writers
  std::unique_ptr<Backend> backend_;  // mutated only under mu_ exclusive
  std::atomic<uint64_t> seq_{0};      // even = quiescent, odd = mutating
  std::atomic<uint64_t> epoch_{0};    // applied Write() batches
  OptimisticPolicy policy_;           // set while quiesced
  mutable std::array<ReaderSlot, kReaderSlots> slots_;
  mutable std::atomic<uint64_t> locked_reads_{0};
  std::vector<RetiredBatch> retired_;  // guarded by mu_ exclusive
  std::atomic<uint64_t> retired_pending_{0};
  std::function<void()> read_interlope_;  // test-only, set while quiesced
};

}  // namespace dyndex

#endif  // DYNDEX_SERVE_EPOCH_GUARD_H_
