// The reusable concurrent-serving core: every concurrent facade in the repo
// (documents in concurrent_index.h, relations/graphs in concurrent_relation.h)
// is a thin wrapper over one EpochGuard<Backend>, so the lock discipline,
// the writer-priority gate, the epoch, and the PollPending publication hook
// exist exactly once.
//
// Concurrency model (documented in README.md):
//  * Readers take the shared side of a std::shared_mutex for the duration of
//    one Read(); any number may run in parallel. A writer-priority gate
//    (writer_waiting_) makes new readers stand aside while a writer is
//    queued: glibc's rwlock prefers readers by default, and a saturating
//    read workload would otherwise starve the writer forever (observed as a
//    livelock in serve_concurrent_test before the gate existed).
//  * The single writer takes the exclusive side per Write(): it applies the
//    whole batch, publishes any finished background builds (the PollPending
//    hook — Transformation 2's swap step), bumps the epoch, and releases.
//    Readers therefore never observe a half-applied batch or a half-swapped
//    level.
//  * Maintain() takes the exclusive side without bumping the epoch:
//    publishing an internal rebuild leaves the logical state unchanged, and
//    queries before and after a swap must see identical answers.
//
// The epoch is the linearization point: every Read() reports the epoch of
// the snapshot it ran against, and two reads reporting the same epoch saw
// the same logical state. The differential model-checking harnesses key
// their per-state expectations on exactly this value.
//
// Backend is any class; the hooks are detected with `requires`:
//  * b.PollPending()     -- called after every Write() body (optional)
//  * b.ForceAllPending() -- reachable through Maintain() by the wrapper
#ifndef DYNDEX_SERVE_EPOCH_GUARD_H_
#define DYNDEX_SERVE_EPOCH_GUARD_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <thread>
#include <type_traits>
#include <utility>

#include "util/check.h"

namespace dyndex {

/// A Backend a concurrent facade can serve: readers call const members under
/// Read(), the writer mutates under Write()/Maintain(). Any object type
/// qualifies; background-publication hooks are optional and duck-typed.
template <typename B>
concept EpochServable = std::is_object_v<B> && !std::is_const_v<B>;

/// Shared epoch/locking core. Owns the backend; all access goes through
/// Read / Write / Maintain (or unsynchronized(), caller-quiesced).
template <EpochServable Backend>
class EpochGuard {
 public:
  explicit EpochGuard(std::unique_ptr<Backend> backend)
      : backend_(std::move(backend)) {
    DYNDEX_CHECK(backend_ != nullptr);
  }

  /// Runs fn(const Backend&) under the shared lock. If `epoch` is non-null it
  /// receives the epoch of the snapshot fn observed.
  template <typename Fn>
  decltype(auto) Read(uint64_t* epoch, Fn&& fn) const {
    ReadLock lock(*this);
    if (epoch != nullptr) *epoch = epoch_;
    return std::forward<Fn>(fn)(
        static_cast<const Backend&>(*backend_));
  }

  /// Runs fn(Backend&) under the exclusive lock, then publishes finished
  /// background builds (PollPending, when the backend has it) and bumps the
  /// epoch — all before the lock drops, so the batch is atomic to readers.
  template <typename Fn>
  decltype(auto) Write(Fn&& fn) {
    WriteLock lock(*this);
    if constexpr (std::is_void_v<decltype(fn(*backend_))>) {
      std::forward<Fn>(fn)(*backend_);
      PollPendingHook();
      ++epoch_;
    } else {
      decltype(auto) result = std::forward<Fn>(fn)(*backend_);
      PollPendingHook();
      ++epoch_;
      return result;
    }
  }

  /// Runs fn(Backend&) under the exclusive lock *without* bumping the epoch:
  /// internal maintenance (publishing rebuilds, test barriers) leaves the
  /// logical state unchanged and must be invisible to queries.
  template <typename Fn>
  decltype(auto) Maintain(Fn&& fn) {
    WriteLock lock(*this);
    return std::forward<Fn>(fn)(*backend_);
  }

  /// Number of applied Write() batches so far.
  uint64_t epoch() const {
    ReadLock lock(*this);
    return epoch_;
  }

  /// The wrapped backend, with no locking. Callers must guarantee quiescence.
  Backend& unsynchronized() { return *backend_; }
  const Backend& unsynchronized() const { return *backend_; }

 private:
  /// Shared lock with the writer-priority gate applied. The gate is advisory:
  /// a reader that raced past it still holds a correct shared lock; it only
  /// bounds how long writer_waiting_ can stay hot.
  class ReadLock {
   public:
    explicit ReadLock(const EpochGuard& guard) : guard_(guard) {
      for (;;) {
        while (guard_.writer_waiting_.load(std::memory_order_acquire) != 0) {
          std::this_thread::yield();
        }
        guard_.mu_.lock_shared();
        if (guard_.writer_waiting_.load(std::memory_order_acquire) == 0) {
          return;
        }
        guard_.mu_.unlock_shared();  // a writer queued meanwhile: let it in
      }
    }
    ~ReadLock() { guard_.mu_.unlock_shared(); }
    ReadLock(const ReadLock&) = delete;
    ReadLock& operator=(const ReadLock&) = delete;

   private:
    const EpochGuard& guard_;
  };

  /// Exclusive lock that raises writer_waiting_ while queueing.
  class WriteLock {
   public:
    explicit WriteLock(EpochGuard& guard) : guard_(guard) {
      guard_.writer_waiting_.fetch_add(1, std::memory_order_acq_rel);
      guard_.mu_.lock();
      guard_.writer_waiting_.fetch_sub(1, std::memory_order_acq_rel);
    }
    ~WriteLock() { guard_.mu_.unlock(); }
    WriteLock(const WriteLock&) = delete;
    WriteLock& operator=(const WriteLock&) = delete;

   private:
    EpochGuard& guard_;
  };

  void PollPendingHook() {
    if constexpr (requires(Backend& b) { b.PollPending(); }) {
      backend_->PollPending();
    }
  }

  mutable std::shared_mutex mu_;
  std::atomic<uint32_t> writer_waiting_{0};  // queued writers
  std::unique_ptr<Backend> backend_;         // guarded by mu_
  uint64_t epoch_ = 0;                       // guarded by mu_
};

}  // namespace dyndex

#endif  // DYNDEX_SERVE_EPOCH_GUARD_H_
