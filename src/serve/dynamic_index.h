// The serving facade: one polymorphic interface over every fully-dynamic
// collection in the repo, so servers, tests and benchmarks can swap backends
// without recompiling against a different template.
//
// Three families implement it (via one duck-typed adapter):
//  * DynamicCollectionT1/T3<FmIndex>  -- Transformations 1 and 3 (amortized)
//  * DynamicCollectionT2<FmIndex>     -- Transformation 2 (worst-case, with
//                                        optional threaded background builds)
//  * DynamicFmIndex                   -- the dynamic-rank baseline the paper
//                                        is designed to beat
//
// All query methods are const: the adapter stores the collection by value and
// calls through from const members, so any mutation hiding in a backend's
// query path fails to compile here. This is the single-threaded facade;
// serve/concurrent_index.h adds the reader/writer discipline on top.
#ifndef DYNDEX_SERVE_DYNAMIC_INDEX_H_
#define DYNDEX_SERVE_DYNAMIC_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "baseline/dynamic_fm_index.h"
#include "core/dynamic_collection.h"
#include "core/occurrence.h"
#include "core/transformation2.h"
#include "text/concat_text.h"

namespace dyndex {

/// Exclusive upper bound on symbols a query pattern or stored document may
/// contain. Values at or above this are reserved for internal terminators
/// (the C0 suffix tree hands out kTermBase + slot), so a hostile pattern
/// containing one could otherwise match document boundaries.
inline constexpr Symbol kMaxPatternSymbol = 1u << 31;
static_assert(kMaxPatternSymbol == SuffixTreeCollection::kTermBase,
              "facade symbol screening must match the C0 terminator base");

/// True iff every symbol is a representable user symbol. Patterns failing
/// this (and empty patterns) match nothing by facade contract — they never
/// reach a backend, whose preconditions stay strict.
inline bool IsQueryablePattern(const std::vector<Symbol>& pattern) {
  if (pattern.empty()) return false;
  for (Symbol s : pattern) {
    if (s < kMinSymbol || s >= kMaxPatternSymbol) return false;
  }
  return true;
}

/// Polymorphic fully-dynamic document-collection index.
///
/// Degenerate inputs have uniform, total semantics at this facade for every
/// backend (the backends themselves keep strict DYNDEX_CHECK preconditions):
///  * Count/Locate of an empty or non-representable pattern: 0 / no matches.
///  * Extract/DocLenOf of an unknown id: empty / 0 (no abort).
///  * Extract beyond the end of a document: clamped to the stored suffix.
///  * Insert/InsertBulk of an empty document, or of one containing a
///    reserved symbol or a symbol beyond the backend's alphabet capacity:
///    rejected with kInvalidDocId.
/// (Resource exhaustion — e.g. the baseline's max_docs separator pool — is a
/// capacity limit, not input screening, and stays a strict precondition.)
class DynamicIndex {
 public:
  virtual ~DynamicIndex() = default;

  // Mutations (writer thread only; see concurrent_index.h).
  virtual DocId Insert(std::vector<Symbol> symbols) = 0;
  virtual bool Erase(DocId id) = 0;

  /// Inserts a batch of documents. Backends with a bulk constructor (the
  /// baseline dynamic FM-index on a cold start) build once via SA-IS instead
  /// of per-symbol dynamic-rank insertion; the default loops over Insert.
  virtual std::vector<DocId> InsertBulk(std::vector<std::vector<Symbol>> docs) {
    std::vector<DocId> ids;
    ids.reserve(docs.size());
    for (auto& doc : docs) ids.push_back(Insert(std::move(doc)));
    return ids;
  }

  // Queries (const end to end).
  virtual uint64_t Count(const std::vector<Symbol>& pattern) const = 0;
  virtual std::vector<Occurrence> Locate(
      const std::vector<Symbol>& pattern) const = 0;
  virtual std::vector<Symbol> Extract(DocId id, uint64_t from,
                                      uint64_t len) const = 0;
  virtual bool Contains(DocId id) const = 0;
  virtual uint64_t DocLenOf(DocId id) const = 0;
  virtual uint64_t num_docs() const = 0;
  virtual uint64_t live_symbols() const = 0;

  /// Publishes finished background builds without blocking (no-op for
  /// backends without background work). Writer thread only.
  virtual void PollPending() {}
  /// Blocks until every background build has been published (deterministic
  /// barrier for tests/benchmarks). Writer thread only.
  virtual void ForceAllPending() {}
  /// Structural self-check (no-op where the backend offers none).
  virtual void CheckInvariants() const {}

  // Persistence (writer thread only; see serve/persistence.h for the durable
  // wrappers). ExportSnapshot copies the full logical state — every live
  // document plus the next id to mint; non-const because backends with
  // background builds publish them first (the logical state is unchanged).
  // LoadSnapshot restores an exported state into a *fresh* index, preserving
  // the exported ids and the id counter.
  virtual void ExportSnapshot(std::vector<Document>* docs, DocId* next_id) = 0;
  virtual void LoadSnapshot(std::vector<Document> docs, DocId next_id) = 0;

  virtual const char* backend_name() const = 0;
};

/// Adapter over any collection with the shared duck-typed API
/// (Insert/Erase/Count/Find/Extract/Contains/DocLenOf/num_docs/live_symbols);
/// optional capabilities (PollPending, ForceAllPending, CheckInvariants) are
/// detected with `requires` and forwarded when present.
template <typename Coll>
class CollectionIndex final : public DynamicIndex {
 public:
  template <typename... Args>
  explicit CollectionIndex(const char* name, Args&&... args)
      : name_(name), coll_(std::forward<Args>(args)...) {}

  DocId Insert(std::vector<Symbol> symbols) override {
    if (!Storable(symbols)) return kInvalidDocId;
    return coll_.Insert(std::move(symbols));
  }
  bool Erase(DocId id) override { return coll_.Erase(id); }

  std::vector<DocId> InsertBulk(
      std::vector<std::vector<Symbol>> docs) override {
    // The backend bulk path requires a cold structure and non-degenerate
    // documents; warm indexes, batches containing unstorable documents, and
    // backends without a bulk path take the incremental loop (which rejects
    // the unstorable documents one by one).
    if constexpr (requires(Coll& c) { c.InsertBulk(docs); }) {
      bool all_storable = true;
      for (const auto& doc : docs) all_storable &= Storable(doc);
      if (all_storable && coll_.num_docs() == 0 &&
          coll_.live_symbols() == 0) {
        return coll_.InsertBulk(docs);
      }
    }
    return DynamicIndex::InsertBulk(std::move(docs));
  }

  uint64_t Count(const std::vector<Symbol>& pattern) const override {
    if (!IsQueryablePattern(pattern)) return 0;
    return coll_.Count(pattern);
  }
  std::vector<Occurrence> Locate(
      const std::vector<Symbol>& pattern) const override {
    if (!IsQueryablePattern(pattern)) return {};
    return coll_.Find(pattern);
  }
  std::vector<Symbol> Extract(DocId id, uint64_t from,
                              uint64_t len) const override {
    if (!coll_.Contains(id)) return {};
    uint64_t doc_len = coll_.DocLenOf(id);
    if (from >= doc_len) return {};
    len = std::min(len, doc_len - from);
    if (len == 0) return {};
    return coll_.Extract(id, from, len);
  }
  bool Contains(DocId id) const override { return coll_.Contains(id); }
  uint64_t DocLenOf(DocId id) const override {
    return coll_.Contains(id) ? coll_.DocLenOf(id) : 0;
  }
  uint64_t num_docs() const override { return coll_.num_docs(); }
  uint64_t live_symbols() const override { return coll_.live_symbols(); }

  void PollPending() override {
    if constexpr (requires(Coll& c) { c.PollPending(); }) {
      coll_.PollPending();
    }
  }
  void ForceAllPending() override {
    if constexpr (requires(Coll& c) { c.ForceAllPending(); }) {
      coll_.ForceAllPending();
    }
  }
  void CheckInvariants() const override {
    if constexpr (requires(const Coll& c) { c.CheckInvariants(); }) {
      coll_.CheckInvariants();
    }
  }

  void ExportSnapshot(std::vector<Document>* docs, DocId* next_id) override {
    coll_.ExportSnapshot(docs, next_id);
  }
  void LoadSnapshot(std::vector<Document> docs, DocId next_id) override {
    coll_.LoadSnapshot(std::move(docs), next_id);
  }

  const char* backend_name() const override { return name_; }

  Coll& collection() { return coll_; }
  const Coll& collection() const { return coll_; }

 private:
  /// Whether the facade accepts `doc` for this backend: non-empty, no
  /// reserved symbols, and within the backend's alphabet capacity when it
  /// advertises one (the dynamic FM baseline's fixed max_symbol; the
  /// transformation backends remap any symbol below the terminator range).
  bool Storable(const std::vector<Symbol>& doc) const {
    if (doc.empty()) return false;
    Symbol bound = kMaxPatternSymbol;
    if constexpr (requires(const Coll& c) { c.max_symbol(); }) {
      bound = std::min<Symbol>(bound, coll_.max_symbol());
    }
    for (Symbol s : doc) {
      if (s < kMinSymbol || s >= bound) return false;
    }
    return true;
  }

  const char* name_;
  Coll coll_;
};

/// Which dynamization backs the index.
enum class Backend { kT1, kT2, kT3, kBaseline };

const char* BackendName(Backend backend);

/// One options bag for every backend; fields irrelevant to the chosen backend
/// are ignored (e.g. `mode` outside kT2, `baseline_*` outside kBaseline).
struct DynamicIndexOptions {
  uint32_t tau = 0;        // dead-fraction purge knob; 0 = auto
  double epsilon = 0.5;    // Transformation-1 growth exponent
  uint64_t min_c0 = 4096;  // C0 capacity floor
  bool counting = false;   // Theorem-1 counting augmentation
  RebuildMode mode = RebuildMode::kSynchronous;  // kT2 only
  uint32_t baseline_max_docs = 4096;
  uint32_t baseline_max_symbol = 258;
  uint32_t sample_rate = 32;  // SA sample rate of the static/dynamic index
};

/// Builds a facade over the requested backend (FmIndex as the static index
/// for the Transformation backends).
std::unique_ptr<DynamicIndex> MakeDynamicIndex(
    Backend backend, const DynamicIndexOptions& opt = {});

}  // namespace dyndex

#endif  // DYNDEX_SERVE_DYNAMIC_INDEX_H_
