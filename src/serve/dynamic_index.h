// The serving facade: one polymorphic interface over every fully-dynamic
// collection in the repo, so servers, tests and benchmarks can swap backends
// without recompiling against a different template.
//
// Three families implement it (via one duck-typed adapter):
//  * DynamicCollectionT1/T3<FmIndex>  -- Transformations 1 and 3 (amortized)
//  * DynamicCollectionT2<FmIndex>     -- Transformation 2 (worst-case, with
//                                        optional threaded background builds)
//  * DynamicFmIndex                   -- the dynamic-rank baseline the paper
//                                        is designed to beat
//
// All query methods are const: the adapter stores the collection by value and
// calls through from const members, so any mutation hiding in a backend's
// query path fails to compile here. This is the single-threaded facade;
// serve/concurrent_index.h adds the reader/writer discipline on top.
#ifndef DYNDEX_SERVE_DYNAMIC_INDEX_H_
#define DYNDEX_SERVE_DYNAMIC_INDEX_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "baseline/dynamic_fm_index.h"
#include "core/dynamic_collection.h"
#include "core/occurrence.h"
#include "core/transformation2.h"
#include "text/concat_text.h"

namespace dyndex {

/// Polymorphic fully-dynamic document-collection index.
class DynamicIndex {
 public:
  virtual ~DynamicIndex() = default;

  // Mutations (writer thread only; see concurrent_index.h).
  virtual DocId Insert(std::vector<Symbol> symbols) = 0;
  virtual bool Erase(DocId id) = 0;

  /// Inserts a batch of documents. Backends with a bulk constructor (the
  /// baseline dynamic FM-index on a cold start) build once via SA-IS instead
  /// of per-symbol dynamic-rank insertion; the default loops over Insert.
  virtual std::vector<DocId> InsertBulk(std::vector<std::vector<Symbol>> docs) {
    std::vector<DocId> ids;
    ids.reserve(docs.size());
    for (auto& doc : docs) ids.push_back(Insert(std::move(doc)));
    return ids;
  }

  // Queries (const end to end).
  virtual uint64_t Count(const std::vector<Symbol>& pattern) const = 0;
  virtual std::vector<Occurrence> Locate(
      const std::vector<Symbol>& pattern) const = 0;
  virtual std::vector<Symbol> Extract(DocId id, uint64_t from,
                                      uint64_t len) const = 0;
  virtual bool Contains(DocId id) const = 0;
  virtual uint64_t DocLenOf(DocId id) const = 0;
  virtual uint64_t num_docs() const = 0;
  virtual uint64_t live_symbols() const = 0;

  /// Publishes finished background builds without blocking (no-op for
  /// backends without background work). Writer thread only.
  virtual void PollPending() {}
  /// Blocks until every background build has been published (deterministic
  /// barrier for tests/benchmarks). Writer thread only.
  virtual void ForceAllPending() {}
  /// Structural self-check (no-op where the backend offers none).
  virtual void CheckInvariants() const {}

  virtual const char* backend_name() const = 0;
};

/// Adapter over any collection with the shared duck-typed API
/// (Insert/Erase/Count/Find/Extract/Contains/DocLenOf/num_docs/live_symbols);
/// optional capabilities (PollPending, ForceAllPending, CheckInvariants) are
/// detected with `requires` and forwarded when present.
template <typename Coll>
class CollectionIndex final : public DynamicIndex {
 public:
  template <typename... Args>
  explicit CollectionIndex(const char* name, Args&&... args)
      : name_(name), coll_(std::forward<Args>(args)...) {}

  DocId Insert(std::vector<Symbol> symbols) override {
    return coll_.Insert(std::move(symbols));
  }
  bool Erase(DocId id) override { return coll_.Erase(id); }

  std::vector<DocId> InsertBulk(
      std::vector<std::vector<Symbol>> docs) override {
    // The backend bulk path requires a cold structure; warm indexes (or
    // backends without one) take the incremental loop.
    if constexpr (requires(Coll& c) { c.InsertBulk(docs); }) {
      if (coll_.num_docs() == 0 && coll_.live_symbols() == 0) {
        return coll_.InsertBulk(docs);
      }
    }
    return DynamicIndex::InsertBulk(std::move(docs));
  }

  uint64_t Count(const std::vector<Symbol>& pattern) const override {
    return coll_.Count(pattern);
  }
  std::vector<Occurrence> Locate(
      const std::vector<Symbol>& pattern) const override {
    return coll_.Find(pattern);
  }
  std::vector<Symbol> Extract(DocId id, uint64_t from,
                              uint64_t len) const override {
    return coll_.Extract(id, from, len);
  }
  bool Contains(DocId id) const override { return coll_.Contains(id); }
  uint64_t DocLenOf(DocId id) const override { return coll_.DocLenOf(id); }
  uint64_t num_docs() const override { return coll_.num_docs(); }
  uint64_t live_symbols() const override { return coll_.live_symbols(); }

  void PollPending() override {
    if constexpr (requires(Coll& c) { c.PollPending(); }) {
      coll_.PollPending();
    }
  }
  void ForceAllPending() override {
    if constexpr (requires(Coll& c) { c.ForceAllPending(); }) {
      coll_.ForceAllPending();
    }
  }
  void CheckInvariants() const override {
    if constexpr (requires(const Coll& c) { c.CheckInvariants(); }) {
      coll_.CheckInvariants();
    }
  }

  const char* backend_name() const override { return name_; }

  Coll& collection() { return coll_; }
  const Coll& collection() const { return coll_; }

 private:
  const char* name_;
  Coll coll_;
};

/// Which dynamization backs the index.
enum class Backend { kT1, kT2, kT3, kBaseline };

const char* BackendName(Backend backend);

/// One options bag for every backend; fields irrelevant to the chosen backend
/// are ignored (e.g. `mode` outside kT2, `baseline_*` outside kBaseline).
struct DynamicIndexOptions {
  uint32_t tau = 0;        // dead-fraction purge knob; 0 = auto
  double epsilon = 0.5;    // Transformation-1 growth exponent
  uint64_t min_c0 = 4096;  // C0 capacity floor
  bool counting = false;   // Theorem-1 counting augmentation
  RebuildMode mode = RebuildMode::kSynchronous;  // kT2 only
  uint32_t baseline_max_docs = 4096;
  uint32_t baseline_max_symbol = 258;
  uint32_t sample_rate = 32;  // SA sample rate of the static/dynamic index
};

/// Builds a facade over the requested backend (FmIndex as the static index
/// for the Transformation backends).
std::unique_ptr<DynamicIndex> MakeDynamicIndex(
    Backend backend, const DynamicIndexOptions& opt = {});

}  // namespace dyndex

#endif  // DYNDEX_SERVE_DYNAMIC_INDEX_H_
