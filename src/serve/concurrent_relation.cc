#include "serve/concurrent_relation.h"

namespace dyndex {

bool ConcurrentRelation::Related(uint32_t object, uint32_t label,
                                 uint64_t* epoch) const {
  return core_.Read(epoch, [&](const RelationIndex& rel) {
    return rel.Related(object, label);
  });
}

std::vector<uint32_t> ConcurrentRelation::LabelsOf(uint32_t object,
                                                   uint64_t* epoch) const {
  return core_.Read(
      epoch, [&](const RelationIndex& rel) { return rel.LabelsOf(object); });
}

std::vector<uint32_t> ConcurrentRelation::ObjectsOf(uint32_t label,
                                                    uint64_t* epoch) const {
  return core_.Read(
      epoch, [&](const RelationIndex& rel) { return rel.ObjectsOf(label); });
}

uint64_t ConcurrentRelation::CountLabelsOf(uint32_t object,
                                           uint64_t* epoch) const {
  return core_.Read(epoch, [&](const RelationIndex& rel) {
    return rel.CountLabelsOf(object);
  });
}

uint64_t ConcurrentRelation::CountObjectsOf(uint32_t label,
                                            uint64_t* epoch) const {
  return core_.Read(epoch, [&](const RelationIndex& rel) {
    return rel.CountObjectsOf(label);
  });
}

uint64_t ConcurrentRelation::num_pairs(uint64_t* epoch) const {
  return core_.Read(epoch,
                    [](const RelationIndex& rel) { return rel.num_pairs(); });
}

uint64_t ConcurrentRelation::AddPairsBatch(const RelationPairs& pairs) {
  // One virtual call for the batch: backends route cold-start batches onto
  // their bulk build instead of |batch| pairwise insertions.
  return core_.Write(
      [&](RelationIndex& rel) { return rel.AddPairsBulk(pairs); });
}

uint64_t ConcurrentRelation::RemovePairsBatch(const RelationPairs& pairs) {
  return core_.Write([&](RelationIndex& rel) {
    uint64_t removed = 0;
    for (auto [o, a] : pairs) removed += rel.RemovePair(o, a);
    return removed;
  });
}

}  // namespace dyndex
