#include "serve/concurrent_relation.h"

#include <string>

#include "util/check.h"

namespace dyndex {

bool ConcurrentRelation::Related(uint32_t object, uint32_t label,
                                 uint64_t* epoch) const {
  return core_.Read(epoch, [&](const RelationIndex& rel) {
    return rel.Related(object, label);
  });
}

std::vector<uint32_t> ConcurrentRelation::LabelsOf(uint32_t object,
                                                   uint64_t* epoch) const {
  return core_.Read(
      epoch, [&](const RelationIndex& rel) { return rel.LabelsOf(object); });
}

std::vector<uint32_t> ConcurrentRelation::ObjectsOf(uint32_t label,
                                                    uint64_t* epoch) const {
  return core_.Read(
      epoch, [&](const RelationIndex& rel) { return rel.ObjectsOf(label); });
}

uint64_t ConcurrentRelation::CountLabelsOf(uint32_t object,
                                           uint64_t* epoch) const {
  return core_.Read(epoch, [&](const RelationIndex& rel) {
    return rel.CountLabelsOf(object);
  });
}

uint64_t ConcurrentRelation::CountObjectsOf(uint32_t label,
                                            uint64_t* epoch) const {
  return core_.Read(epoch, [&](const RelationIndex& rel) {
    return rel.CountObjectsOf(label);
  });
}

uint64_t ConcurrentRelation::num_pairs(uint64_t* epoch) const {
  return core_.Read(epoch,
                    [](const RelationIndex& rel) { return rel.num_pairs(); });
}

uint64_t ConcurrentRelation::AddPairsBatch(const RelationPairs& pairs) {
  // Append inside the exclusive section, after the apply succeeded, so log
  // order is exactly epoch order and a throwing batch logs nothing.
  std::string payload;
  if (log_ != nullptr) {
    payload =
        serve_persist::EncodePairsBatch(serve_persist::WalOp::kAddPairs, pairs);
  }
  // One virtual call for the batch: backends route cold-start batches onto
  // their bulk build instead of |batch| pairwise insertions.
  uint64_t added = core_.Write([&](RelationIndex& rel) {
    uint64_t n = rel.AddPairsBulk(pairs);
    if (log_ != nullptr) {
      // Inside the exclusive section on the facade's single writer thread:
      // this scope holds the log's writer role.
      log_->writer_role().AssertHeld();
      log_->LogApplied(payload);
    }
    return n;
  });
  if (log_ != nullptr) {
    log_->writer_role().AssertHeld();
    log_->MaybeSync();
  }
  return added;
}

uint64_t ConcurrentRelation::RemovePairsBatch(const RelationPairs& pairs) {
  std::string payload;
  if (log_ != nullptr) {
    payload = serve_persist::EncodePairsBatch(
        serve_persist::WalOp::kRemovePairs, pairs);
  }
  uint64_t removed = core_.Write([&](RelationIndex& rel) {
    uint64_t n = 0;
    for (auto [o, a] : pairs) n += rel.RemovePair(o, a);
    if (log_ != nullptr) {
      log_->writer_role().AssertHeld();
      log_->LogApplied(payload);
    }
    return n;
  });
  if (log_ != nullptr) {
    log_->writer_role().AssertHeld();
    log_->MaybeSync();
  }
  return removed;
}

persist::Status ConcurrentRelation::OpenDurable(persist::Env* env,
                                                const std::string& dir,
                                                const DurableOptions& opt,
                                                RecoveryStats* stats) {
  DYNDEX_CHECK(log_ == nullptr);
  return serve_persist::OpenDurableRelationCore(env, dir, opt, core_, &log_,
                                                stats);
}

persist::Status ConcurrentRelation::Checkpoint() {
  DYNDEX_CHECK(log_ != nullptr);
  return serve_persist::CheckpointRelationCore(core_, *log_);
}

persist::Status ConcurrentRelation::SyncWal() {
  DYNDEX_CHECK(log_ != nullptr);
  log_->writer_role().AssertHeld();
  return log_->Sync();
}

persist::Status ConcurrentRelation::CloseDurable() {
  DYNDEX_CHECK(log_ != nullptr);
  log_->writer_role().AssertHeld();
  persist::Status s = log_->Close();
  log_.reset();
  return s;
}

}  // namespace dyndex
