// Durability plumbing for the serving layer: the record codecs that put
// facade batches into WAL frames and facade state into snapshot sections,
// plus the per-core DurableLog that owns a directory's on-disk state.
//
// Per-core layout (one directory per EpochGuard-wrapped backend):
//   <dir>/SNAPSHOT  checksummed section container (persist/snapshot.h):
//                   "meta"  version / kind / backend name / last covered seq
//                   "docs"  every live document + next id   (index cores)
//                   "pairs" every live pair                  (relation cores)
//   <dir>/WAL       framed log (persist/wal.h); one frame per applied batch,
//                   seq strictly +1 per frame, payload = record codec below.
//
// Durable state at any instant = SNAPSHOT ⊕ the WAL frames past its seq.
// Recovery loads the snapshot, replays exactly the frames with seq above the
// snapshot's, truncates the log at the first bad frame (prefix contract of
// ScanWal), and reopens for append. A checkpoint writes a fresh snapshot
// (atomic rename) and only then resets the log — a crash between the two
// replays old frames against the new snapshot, which the seq skip rule makes
// a no-op, so every crash point lands on a batch-prefix-consistent state.
//
// Logging is linearized with the batch: the facade encodes the payload
// before applying (the apply may consume its input), applies inside the
// exclusive section, and appends the frame before the section ends — a batch
// that throws logs nothing, and no reader-visible state ever leads the log
// by more than the current unsynced group-commit window.
#ifndef DYNDEX_SERVE_PERSISTENCE_H_
#define DYNDEX_SERVE_PERSISTENCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "persist/env.h"
#include "persist/snapshot.h"
#include "persist/status.h"
#include "persist/wal.h"
#include "serve/dynamic_index.h"
#include "serve/epoch_guard.h"
#include "serve/relation_index.h"
#include "text/concat_text.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace dyndex {

/// Durability knobs shared by every durable facade.
struct DurableOptions {
  /// Group-commit window: fsync the WAL after this many logged batches.
  /// 1 (default) syncs every batch — nothing acked is ever lost; larger
  /// windows trade the unsynced tail for throughput; 0 never syncs
  /// automatically (the caller drives SyncWal()).
  uint64_t sync_every_batches = 1;
};

/// What recovery found and did; filled by OpenDurable.
struct RecoveryStats {
  bool snapshot_loaded = false;    // a SNAPSHOT existed and verified
  uint64_t snapshot_seq = 0;       // batches the snapshot covered
  uint64_t replayed_batches = 0;   // WAL frames applied on top
  uint64_t skipped_frames = 0;     // frames at or below the snapshot seq
  uint64_t dropped_wal_bytes = 0;  // torn/corrupt tail truncated away
};

namespace serve_persist {

inline constexpr uint32_t kFormatVersion = 1;
inline constexpr char kSnapshotFileName[] = "SNAPSHOT";
inline constexpr char kWalFileName[] = "WAL";
inline constexpr char kManifestFileName[] = "MANIFEST";
inline constexpr char kMetaSection[] = "meta";
inline constexpr char kDocsSection[] = "docs";
inline constexpr char kPairsSection[] = "pairs";

/// WAL record kinds — one per facade batch operation.
enum class WalOp : uint8_t {
  kInsertDocs = 1,
  kEraseDocs = 2,
  kAddPairs = 3,
  kRemovePairs = 4,
};

/// What state a snapshot/manifest meta section describes.
enum class StateKind : uint8_t {
  kIndex = 1,
  kRelation = 2,
  kShardedIndex = 3,
  kShardedRelation = 4,
};

// --- WAL record codec ------------------------------------------------------

std::string EncodeInsertBatch(const std::vector<std::vector<Symbol>>& docs);
std::string EncodeEraseBatch(const std::vector<DocId>& ids);
std::string EncodePairsBatch(WalOp op, const RelationPairs& pairs);

struct WalRecord {
  WalOp op = WalOp::kInsertDocs;
  std::vector<std::vector<Symbol>> docs;  // kInsertDocs
  std::vector<DocId> ids;                 // kEraseDocs
  RelationPairs pairs;                    // kAddPairs / kRemovePairs
};

/// Bounds-checked decode; kCorruption on any malformed payload (a frame CRC
/// protects against rot, not against a foreign/mis-versioned record).
persist::Status DecodeWalRecord(std::string_view payload, WalRecord* out);

// --- snapshot section codecs ----------------------------------------------

struct SnapshotMeta {
  uint32_t version = kFormatVersion;
  StateKind kind = StateKind::kIndex;
  std::string backend;      // backend_name() the state was exported from
  uint64_t last_seq = 0;    // WAL seq this snapshot covers
  uint64_t next_id = 0;     // index cores: the id counter to restore
  uint32_t num_shards = 0;  // sharded manifests: the bound shard count
};

std::string EncodeMeta(const SnapshotMeta& meta);
persist::Status DecodeMeta(std::string_view data, SnapshotMeta* out);

std::string EncodeDocs(const std::vector<Document>& docs);
persist::Status DecodeDocs(std::string_view data, std::vector<Document>* out);
std::string EncodePairs(const RelationPairs& pairs);
persist::Status DecodePairs(std::string_view data, RelationPairs* out);

// --- the per-core durable handle ------------------------------------------

/// Owns one directory's WAL writer, the logged-batch sequence, the
/// group-commit countdown, and the sticky failure status. Writer-thread-only
/// after open (same discipline as the facade mutations it rides along with).
///
/// The single-writer contract is machine-checked as a *role capability*
/// (util/sync.h ThreadRole): the mutable state is GUARDED_BY(writer_role_)
/// and every mutating entry point REQUIRES it, so a call from a path that
/// never established the role (via writer_role().AssertHeld(), a runtime
/// no-op) is a compile error under -Wthread-safety. The facades assert the
/// role inside their exclusive-writer sections — including inside Write()
/// lambdas, which the analysis treats as separate functions.
///
/// Failure model is fail-stop for the log: once an append or sync fails, the
/// status sticks, further appends are dropped, and every durability
/// entry point (SyncWal / Checkpoint / Close) reports the original error —
/// the in-memory facade keeps serving, it just stops promising durability.
class DurableLog {
 public:
  /// Phase 1 of open: ensures `dir` exists, reads the snapshot (`snapshot`
  /// left empty when none), scans the WAL prefix. No writes yet.
  static persist::Status Attach(persist::Env* env, const std::string& dir,
                                const DurableOptions& opt,
                                std::unique_ptr<DurableLog>* out,
                                std::vector<persist::SnapshotSection>* snapshot,
                                persist::WalScanResult* wal);

  /// Phase 2, after the caller replayed the scanned frames: records the
  /// recovered sequence, truncates any torn tail the scan reported, and
  /// opens the writer for append (creating the log when absent).
  persist::Status FinishOpen(uint64_t seq, const persist::WalScanResult& wal)
      DYNDEX_REQUIRES(writer_role_);

  /// Logs one applied batch (call inside the exclusive section, after the
  /// apply succeeded). Never throws; failures stick in status().
  void LogApplied(std::string_view payload) DYNDEX_REQUIRES(writer_role_);

  /// Group commit: syncs when the unsynced batch count reaches the window.
  persist::Status MaybeSync() DYNDEX_REQUIRES(writer_role_);
  /// Unconditional sync of everything logged so far.
  persist::Status Sync() DYNDEX_REQUIRES(writer_role_);

  /// Writes `sections` as the new snapshot (atomic temp + rename), then
  /// resets the WAL. The caller provides a meta section whose last_seq is
  /// seq() — state exported under the same exclusive-writer discipline that
  /// froze the log.
  persist::Status Checkpoint(
      const std::vector<persist::SnapshotSection>& sections)
      DYNDEX_REQUIRES(writer_role_);

  /// Final sync + close. The log is unusable afterwards.
  persist::Status Close() DYNDEX_REQUIRES(writer_role_);

  persist::Status status() const DYNDEX_REQUIRES(writer_role_) {
    return status_;
  }
  uint64_t seq() const DYNDEX_REQUIRES(writer_role_) { return seq_; }

  /// The single-writer role capability; call writer_role().AssertHeld() at
  /// the top of any writer-discipline scope (including inside Write()
  /// lambdas) before touching the log.
  const ThreadRole& writer_role() const
      DYNDEX_RETURN_CAPABILITY(writer_role_) {
    return writer_role_;
  }

  persist::Env* env() const { return env_; }
  const std::string& dir() const { return dir_; }
  std::string snapshot_path() const { return dir_ + "/" + kSnapshotFileName; }
  std::string wal_path() const { return dir_ + "/" + kWalFileName; }

 private:
  DurableLog(persist::Env* env, std::string dir, const DurableOptions& opt)
      : env_(env), dir_(std::move(dir)), opt_(opt) {}

  persist::Env* env_;
  std::string dir_;
  DurableOptions opt_;
  /// The single-writer state, guarded by the role capability (see the class
  /// comment): mutated only from the facade's exclusive-writer discipline.
  ThreadRole writer_role_;
  std::unique_ptr<persist::WalWriter> wal_ DYNDEX_GUARDED_BY(writer_role_);
  /// Last logged (or recovered) batch seq.
  uint64_t seq_ DYNDEX_GUARDED_BY(writer_role_) = 0;
  /// Batches logged since the last sync.
  uint64_t unsynced_ DYNDEX_GUARDED_BY(writer_role_) = 0;
  persist::Status status_ DYNDEX_GUARDED_BY(writer_role_) =
      persist::Status::Ok();
};

// --- core-level open / replay / checkpoint --------------------------------
//
// These operate on the EpochGuard cores directly so the single-core facades
// (ConcurrentIndex / ConcurrentRelation) and the per-shard loops of the
// sharded facades share one recovery implementation. Preconditions: the core
// is fresh (empty, epoch 0) and externally quiesced — recovery IS the
// writer. Snapshot loads run under Maintain (state restoration, epoch
// untouched); frame replay runs under Write with no logging, so the epoch
// after open counts exactly the batches replayed on top of the snapshot.

persist::Status OpenDurableIndexCore(persist::Env* env, const std::string& dir,
                                     const DurableOptions& opt,
                                     EpochGuard<DynamicIndex>& core,
                                     std::unique_ptr<DurableLog>* out,
                                     RecoveryStats* stats);

persist::Status CheckpointIndexCore(EpochGuard<DynamicIndex>& core,
                                    DurableLog& log);

persist::Status OpenDurableRelationCore(persist::Env* env,
                                        const std::string& dir,
                                        const DurableOptions& opt,
                                        EpochGuard<RelationIndex>& core,
                                        std::unique_ptr<DurableLog>* out,
                                        RecoveryStats* stats);

persist::Status CheckpointRelationCore(EpochGuard<RelationIndex>& core,
                                       DurableLog& log);

// --- sharded manifest ------------------------------------------------------
//
// The sharded facades bind their shard set with one more snapshot container
// (a single meta section) at <dir>/MANIFEST. The manifest is written on the
// first durable open, before any shard logs a batch; on reopen a kind /
// shard-count / backend mismatch is refused loudly, and every bound shard
// directory must still hold its log — a vanished shard is kCorruption, not
// an empty shard silently served.

persist::Status WriteManifest(persist::Env* env, const std::string& dir,
                              const SnapshotMeta& meta);

/// NotFound when no manifest exists (first open); kCorruption on damage.
persist::Status ReadManifest(persist::Env* env, const std::string& dir,
                             SnapshotMeta* out);

/// Reopen-time check that `meta` (from disk) matches what the facade was
/// built with; kInvalidArgument with a descriptive message otherwise.
persist::Status CheckManifest(const SnapshotMeta& meta, StateKind kind,
                              uint32_t num_shards, const char* backend);

}  // namespace serve_persist
}  // namespace dyndex

#endif  // DYNDEX_SERVE_PERSISTENCE_H_
