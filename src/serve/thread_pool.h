// Small scatter-join thread pool for the sharded serving layer: a sharded
// facade fans one batch (or one read) out across its shards and joins before
// returning, so the only primitive needed is "run these K closures, one of
// them inline on the caller, and wait for all of them".
//
// Deadlock discipline: submitted closures may block on shard locks
// (EpochGuard's shared_mutex) but must never wait on this pool themselves —
// locks are only ever held by closures that are already running, and running
// closures finish without queueing more work, so the wait graph stays
// acyclic even with concurrent RunAll callers (parallel writers + fanned-out
// readers sharing one pool). The queue discipline itself is machine-checked:
// mu_ guards queue_/stop_ via Clang Thread Safety Analysis annotations
// (util/thread_annotations.h), and this file carries no suppressions.
#ifndef DYNDEX_SERVE_THREAD_POOL_H_
#define DYNDEX_SERVE_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace dyndex {

/// Fixed-size worker pool with a blocking scatter-join entry point.
/// Thread-safe: any number of threads may call RunAll concurrently.
class ThreadPool {
 public:
  /// With 0 workers every RunAll degenerates to an inline loop (the natural
  /// single-shard configuration).
  explicit ThreadPool(uint32_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs every closure in `tasks`: tasks[0] inline on the calling thread,
  /// the rest on workers (the caller helps drain its own leftovers when all
  /// workers are busy). Returns once all of them have finished. Closures
  /// must not call back into this pool. A throwing closure does not abort
  /// the batch: every task still runs to completion (shard state never
  /// diverges by slice), and the *first* exception is rethrown to the
  /// RunAll caller after the join.
  void RunAll(std::vector<std::function<void()>> tasks) DYNDEX_EXCLUDES(mu_);

  uint32_t workers() const { return static_cast<uint32_t>(threads_.size()); }

 private:
  void WorkerLoop() DYNDEX_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ DYNDEX_GUARDED_BY(mu_);
  bool stop_ DYNDEX_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace dyndex

#endif  // DYNDEX_SERVE_THREAD_POOL_H_
