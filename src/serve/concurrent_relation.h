// Concurrent query serving over a RelationIndex: N reader threads run
// Related/LabelsOf/ObjectsOf/counting queries against a consistent snapshot
// while one writer thread applies batched pair updates — the Theorem 2/3
// analogue of serve/concurrent_index.h, on the same serving core.
//
// The lock discipline (shared_mutex readers, writer-priority gate, epoch as
// the linearization point) lives in serve/epoch_guard.h and is shared with
// the document ConcurrentIndex; this class only maps the relation API onto
// it. Relation backends have no background builders, so the core's
// PollPending hook is a no-op here — batches are applied synchronously under
// the exclusive lock and the epoch bumps once per batch.
#ifndef DYNDEX_SERVE_CONCURRENT_RELATION_H_
#define DYNDEX_SERVE_CONCURRENT_RELATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "persist/env.h"
#include "persist/status.h"
#include "serve/epoch_guard.h"
#include "serve/persistence.h"
#include "serve/relation_index.h"

namespace dyndex {

class ConcurrentRelation {
 public:
  explicit ConcurrentRelation(std::unique_ptr<RelationIndex> relation)
      : core_(std::move(relation)) {}

  // --- reader API (any thread) ---------------------------------------------
  // Every query optionally reports the epoch of the snapshot it observed.

  bool Related(uint32_t object, uint32_t label,
               uint64_t* epoch = nullptr) const;
  std::vector<uint32_t> LabelsOf(uint32_t object,
                                 uint64_t* epoch = nullptr) const;
  std::vector<uint32_t> ObjectsOf(uint32_t label,
                                  uint64_t* epoch = nullptr) const;
  uint64_t CountLabelsOf(uint32_t object, uint64_t* epoch = nullptr) const;
  uint64_t CountObjectsOf(uint32_t label, uint64_t* epoch = nullptr) const;
  uint64_t num_pairs(uint64_t* epoch = nullptr) const;

  // Graph view (Theorem 3): edge u -> v is the pair (u, v).
  bool HasEdge(uint32_t u, uint32_t v, uint64_t* epoch = nullptr) const {
    return Related(u, v, epoch);
  }
  std::vector<uint32_t> Neighbors(uint32_t u, uint64_t* epoch = nullptr) const {
    return LabelsOf(u, epoch);
  }
  std::vector<uint32_t> Reverse(uint32_t v, uint64_t* epoch = nullptr) const {
    return ObjectsOf(v, epoch);
  }

  /// Number of applied write batches so far (plain atomic load).
  uint64_t epoch() const { return core_.epoch(); }
  /// Current seqlock word of the serving core (even = quiescent).
  uint64_t sequence() const { return core_.sequence(); }

  /// Optimistic read-path knobs / counters (see serve/epoch_guard.h).
  /// Policies are atomic snapshots — settable at any time, readers in
  /// flight or not.
  void set_optimistic_policy(const OptimisticPolicy& policy) {
    core_.set_optimistic_policy(policy);
  }
  OptimisticStats optimistic_stats() const {
    return core_.optimistic_stats();
  }
  /// Reader-progress-aware write pacing knobs / counters: when enabled and
  /// readers report stalled captures, AddPairsBatch/RemovePairsBatch wait
  /// (bounded, no lock held) for an even-sequence window before admitting
  /// the batch.
  void set_pacing_policy(const PacingPolicy& policy) {
    core_.set_pacing_policy(policy);
  }
  PacingPolicy pacing_policy() const { return core_.pacing_policy(); }
  PacingStats pacing_stats() const { return core_.pacing_stats(); }
  /// Retired-but-not-yet-reclaimed batches (grace period still open).
  uint64_t retired_pending() const { return core_.retired_pending(); }

  // --- writer API (one thread at a time) -----------------------------------

  /// Applies the batch atomically w.r.t. readers (bulk path for backends
  /// that have one); returns how many pairs were new.
  uint64_t AddPairsBatch(const RelationPairs& pairs);
  /// Returns how many of `pairs` were present and removed.
  uint64_t RemovePairsBatch(const RelationPairs& pairs);

  // --- durability (writer thread; see serve/persistence.h) -----------------

  /// Binds this (fresh, empty) facade to `dir`: recovers snapshot + WAL tail
  /// if present, then logs every subsequent batch. Corrupt snapshot /
  /// mismatched backend is a loud error, never a silently-empty relation.
  persist::Status OpenDurable(persist::Env* env, const std::string& dir,
                              const DurableOptions& opt = {},
                              RecoveryStats* stats = nullptr);
  /// Writes a fresh snapshot (atomic rename) and resets the WAL.
  persist::Status Checkpoint();
  /// Forces the WAL to disk regardless of the group-commit window; also
  /// surfaces any sticky append/sync failure from earlier batches.
  persist::Status SyncWal();
  /// Final sync + detach; the facade keeps serving, un-durably.
  persist::Status CloseDurable();
  bool durable() const { return log_ != nullptr; }

  const char* backend_name() const {
    return core_.unsynchronized().backend_name();
  }

  /// The wrapped relation, with no locking. Callers must guarantee
  /// quiescence.
  RelationIndex& unsynchronized() { return core_.unsynchronized(); }

 private:
  EpochGuard<RelationIndex> core_;
  std::unique_ptr<serve_persist::DurableLog> log_;  // null until OpenDurable
};

}  // namespace dyndex

#endif  // DYNDEX_SERVE_CONCURRENT_RELATION_H_
