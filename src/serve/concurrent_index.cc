#include "serve/concurrent_index.h"

#include <string>
#include <utility>

#include "util/check.h"

namespace dyndex {

uint64_t ConcurrentIndex::Count(const std::vector<Symbol>& pattern,
                                uint64_t* epoch) const {
  return core_.Read(
      epoch, [&](const DynamicIndex& idx) { return idx.Count(pattern); });
}

std::vector<Occurrence> ConcurrentIndex::Locate(
    const std::vector<Symbol>& pattern, uint64_t* epoch) const {
  return core_.Read(
      epoch, [&](const DynamicIndex& idx) { return idx.Locate(pattern); });
}

bool ConcurrentIndex::Extract(DocId id, uint64_t from, uint64_t len,
                              std::vector<Symbol>* out,
                              uint64_t* epoch) const {
  // Buffer into the lambda's return value, never into *out directly: a
  // discarded optimistic attempt re-runs the lambda, and the contract is
  // that *out stays untouched on false (and on any abandoned attempt).
  auto result =
      core_.Read(epoch, [&](const DynamicIndex& idx)
                            -> std::pair<bool, std::vector<Symbol>> {
        if (!idx.Contains(id)) return {false, {}};
        return {true, idx.Extract(id, from, len)};
      });
  if (!result.first) return false;
  *out = std::move(result.second);
  return true;
}

uint64_t ConcurrentIndex::num_docs(uint64_t* epoch) const {
  return core_.Read(epoch,
                    [](const DynamicIndex& idx) { return idx.num_docs(); });
}

std::vector<DocId> ConcurrentIndex::InsertBatch(
    std::vector<std::vector<Symbol>> docs) {
  // Encode before applying (the apply consumes `docs`); append inside the
  // exclusive section, after the apply succeeded, so log order is exactly
  // epoch order and a throwing batch logs nothing.
  std::string payload;
  if (log_ != nullptr) payload = serve_persist::EncodeInsertBatch(docs);
  // One virtual call for the batch: cold-start backends with a bulk
  // constructor load it in one pass instead of |batch| insertions.
  auto ids = core_.Write([&](DynamicIndex& idx) {
    auto result = idx.InsertBulk(std::move(docs));
    if (log_ != nullptr) {
      // Inside the exclusive section on the facade's single writer thread:
      // this scope holds the log's writer role.
      log_->writer_role().AssertHeld();
      log_->LogApplied(payload);
    }
    return result;
  });
  if (log_ != nullptr) {
    log_->writer_role().AssertHeld();
    log_->MaybeSync();
  }
  return ids;
}

uint64_t ConcurrentIndex::EraseBatch(const std::vector<DocId>& ids) {
  std::string payload;
  if (log_ != nullptr) payload = serve_persist::EncodeEraseBatch(ids);
  uint64_t erased = core_.Write([&](DynamicIndex& idx) {
    uint64_t n = 0;
    for (DocId id : ids) n += idx.Erase(id);
    if (log_ != nullptr) {
      log_->writer_role().AssertHeld();
      log_->LogApplied(payload);
    }
    return n;
  });
  if (log_ != nullptr) {
    log_->writer_role().AssertHeld();
    log_->MaybeSync();
  }
  return erased;
}

// Poll/Flush publish internal rebuilds only; the logical document set is
// unchanged, so the epoch must not move (Maintain) — queries before and after
// a swap see identical answers, which is exactly what the harness asserts.
void ConcurrentIndex::Poll() {
  core_.Maintain([](DynamicIndex& idx) { idx.PollPending(); });
}

void ConcurrentIndex::Flush() {
  core_.Maintain([](DynamicIndex& idx) { idx.ForceAllPending(); });
}

persist::Status ConcurrentIndex::OpenDurable(persist::Env* env,
                                             const std::string& dir,
                                             const DurableOptions& opt,
                                             RecoveryStats* stats) {
  DYNDEX_CHECK(log_ == nullptr);
  return serve_persist::OpenDurableIndexCore(env, dir, opt, core_, &log_,
                                             stats);
}

persist::Status ConcurrentIndex::Checkpoint() {
  DYNDEX_CHECK(log_ != nullptr);
  return serve_persist::CheckpointIndexCore(core_, *log_);
}

persist::Status ConcurrentIndex::SyncWal() {
  DYNDEX_CHECK(log_ != nullptr);
  log_->writer_role().AssertHeld();
  return log_->Sync();
}

persist::Status ConcurrentIndex::CloseDurable() {
  DYNDEX_CHECK(log_ != nullptr);
  log_->writer_role().AssertHeld();
  persist::Status s = log_->Close();
  log_.reset();
  return s;
}

}  // namespace dyndex
