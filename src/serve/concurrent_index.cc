#include "serve/concurrent_index.h"

#include <thread>
#include <utility>

#include "util/check.h"

namespace dyndex {

// Readers stand aside while a writer is queued (writer-priority gate): the
// platform rwlock prefers readers, so without the gate a saturating read
// workload starves the writer indefinitely. The gate is advisory — a reader
// that raced past it still holds a correct shared lock; it only bounds how
// long writer_waiting_ can stay hot.
ConcurrentIndex::ReadGuard::ReadGuard(const ConcurrentIndex& idx) : idx_(idx) {
  for (;;) {
    while (idx_.writer_waiting_.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
    idx_.mu_.lock_shared();
    if (idx_.writer_waiting_.load(std::memory_order_acquire) == 0) return;
    idx_.mu_.unlock_shared();  // a writer queued meanwhile: let it in
  }
}

ConcurrentIndex::ReadGuard::~ReadGuard() { idx_.mu_.unlock_shared(); }

ConcurrentIndex::WriteGuard::WriteGuard(ConcurrentIndex& idx) : idx_(idx) {
  idx_.writer_waiting_.fetch_add(1, std::memory_order_acq_rel);
  idx_.mu_.lock();
  idx_.writer_waiting_.fetch_sub(1, std::memory_order_acq_rel);
}

ConcurrentIndex::WriteGuard::~WriteGuard() { idx_.mu_.unlock(); }

ConcurrentIndex::ConcurrentIndex(std::unique_ptr<DynamicIndex> index)
    : index_(std::move(index)) {
  DYNDEX_CHECK(index_ != nullptr);
}

uint64_t ConcurrentIndex::Count(const std::vector<Symbol>& pattern,
                                uint64_t* epoch) const {
  ReadGuard lock(*this);
  if (epoch != nullptr) *epoch = epoch_;
  return index_->Count(pattern);
}

std::vector<Occurrence> ConcurrentIndex::Locate(
    const std::vector<Symbol>& pattern, uint64_t* epoch) const {
  ReadGuard lock(*this);
  if (epoch != nullptr) *epoch = epoch_;
  return index_->Locate(pattern);
}

bool ConcurrentIndex::Extract(DocId id, uint64_t from, uint64_t len,
                              std::vector<Symbol>* out,
                              uint64_t* epoch) const {
  ReadGuard lock(*this);
  if (epoch != nullptr) *epoch = epoch_;
  if (!index_->Contains(id)) return false;
  *out = index_->Extract(id, from, len);
  return true;
}

uint64_t ConcurrentIndex::num_docs(uint64_t* epoch) const {
  ReadGuard lock(*this);
  if (epoch != nullptr) *epoch = epoch_;
  return index_->num_docs();
}

uint64_t ConcurrentIndex::epoch() const {
  ReadGuard lock(*this);
  return epoch_;
}

std::vector<DocId> ConcurrentIndex::InsertBatch(
    std::vector<std::vector<Symbol>> docs) {
  WriteGuard lock(*this);
  // One virtual call for the batch: cold-start backends with a bulk
  // constructor load it in one pass instead of |batch| insertions.
  std::vector<DocId> ids = index_->InsertBulk(std::move(docs));
  index_->PollPending();
  ++epoch_;
  return ids;
}

uint64_t ConcurrentIndex::EraseBatch(const std::vector<DocId>& ids) {
  WriteGuard lock(*this);
  uint64_t erased = 0;
  for (DocId id : ids) erased += index_->Erase(id);
  index_->PollPending();
  ++epoch_;
  return erased;
}

// Poll/Flush publish internal rebuilds only; the logical document set is
// unchanged, so the epoch must not move — queries before and after a swap
// see identical answers, which is exactly what the harness asserts.
void ConcurrentIndex::Poll() {
  WriteGuard lock(*this);
  index_->PollPending();
}

void ConcurrentIndex::Flush() {
  WriteGuard lock(*this);
  index_->ForceAllPending();
}

}  // namespace dyndex
