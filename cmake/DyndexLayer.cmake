# Helper for declaring one layer of the dyndex stack.
#
# Each layer's headers are exposed through a staged include directory that
# contains a single symlink, `<layer>/ -> src/<layer>/`. A target can therefore
# only resolve `#include "<layer>/foo.h"` if it links (directly or
# transitively) the `dyndex_<layer>` target: layering violations fail the
# compile, not review.
#
# DEPS are the layers named in this layer's *public headers*: they are linked
# PUBLIC, so their headers propagate to consumers (they are part of this
# layer's interface, that is unavoidable). PRIVATE_DEPS are layers used only
# by this layer's .cc files: linked PRIVATE, so their headers do NOT leak to
# consumers — CMake still records them as $<LINK_ONLY:> for the final link.
# The compile-time-visible set for any target is therefore its declared deps
# plus the public-interface closure of those deps, nothing more.
#
# dyndex_add_layer(<layer>
#   [SOURCES <file>...]        # .cc files; omit for a header-only layer
#   [DEPS <target>...]         # used in public headers -> PUBLIC
#   [PRIVATE_DEPS <target>...])# used only in .cc files  -> PRIVATE
function(dyndex_add_layer LAYER)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS;PRIVATE_DEPS" ${ARGN})

  set(stage "${PROJECT_BINARY_DIR}/layer_include/${LAYER}")
  file(MAKE_DIRECTORY "${stage}")
  file(CREATE_LINK "${CMAKE_CURRENT_SOURCE_DIR}" "${stage}/${LAYER}"
       SYMBOLIC)

  set(target dyndex_${LAYER})
  if(ARG_SOURCES)
    add_library(${target} STATIC ${ARG_SOURCES})
    target_include_directories(${target} PUBLIC "${stage}")
    target_compile_features(${target} PUBLIC cxx_std_20)
    target_compile_options(${target} PRIVATE ${DYNDEX_WARNING_OPTIONS})
    if(ARG_DEPS)
      target_link_libraries(${target} PUBLIC ${ARG_DEPS})
    endif()
    if(ARG_PRIVATE_DEPS)
      target_link_libraries(${target} PRIVATE ${ARG_PRIVATE_DEPS})
    endif()
  else()
    add_library(${target} INTERFACE)
    target_include_directories(${target} INTERFACE "${stage}")
    target_compile_features(${target} INTERFACE cxx_std_20)
    if(ARG_PRIVATE_DEPS)
      message(FATAL_ERROR
              "header-only layer '${LAYER}' cannot have PRIVATE_DEPS")
    endif()
    if(ARG_DEPS)
      target_link_libraries(${target} INTERFACE ${ARG_DEPS})
    endif()
  endif()
  add_library(dyndex::${LAYER} ALIAS ${target})
endfunction()
