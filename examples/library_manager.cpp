// The library management problem (the paper's name for dynamic indexing):
// maintain a changing corpus of documents under insertions and deletions with
// worst-case-smoothed updates (Transformation 2, threaded background
// rebuilds), and compare its space against the uncompressed suffix-tree
// solution on the same corpus.
#include <cstdio>
#include <vector>

#include "baseline/suffix_tree_index.h"
#include "core/transformation2.h"
#include "gen/text_gen.h"
#include "text/fm_index.h"
#include "util/rng.h"

using namespace dyndex;

int main() {
  T2Options opt;
  opt.mode = RebuildMode::kThreaded;  // real background rebuilds
  DynamicCollectionT2<FmIndex> library(opt);
  SuffixTreeIndex uncompressed;  // the O(n log n)-bit comparator

  Rng rng(7);
  std::vector<DocId> shelf_t2, shelf_st;

  // Acquire 600 "books" (synthetic, sigma=64 Zipf text), retiring old ones.
  for (int i = 0; i < 600; ++i) {
    auto book = ZipfText(rng, rng.Range(500, 2000), 64);
    shelf_t2.push_back(library.Insert(book));
    shelf_st.push_back(uncompressed.Insert(book));
    if (shelf_t2.size() > 400) {
      // Retire the oldest volume from both.
      library.Erase(shelf_t2.front());
      uncompressed.Erase(shelf_st.front());
      shelf_t2.erase(shelf_t2.begin());
      shelf_st.erase(shelf_st.begin());
    }
  }
  library.ForceAllPending();

  std::printf("library: %llu docs, %llu symbols\n",
              static_cast<unsigned long long>(library.num_docs()),
              static_cast<unsigned long long>(library.live_symbols()));

  // Agreement check between the two indexes on random queries.
  uint64_t disagreements = 0;
  for (int q = 0; q < 100; ++q) {
    auto p = UniformText(rng, 3, 64);
    if (library.Count(p) != uncompressed.Count(p)) ++disagreements;
  }
  std::printf("query agreement with uncompressed index: %llu/100 disagree\n",
              static_cast<unsigned long long>(disagreements));

  SpaceBreakdown sp = library.Space();
  double n = static_cast<double>(library.live_symbols());
  std::printf("compressed  : %.2f bytes/symbol "
              "(indexes %.2f, reporters %.2f, C0 %.2f, bookkeeping %.2f)\n",
              sp.total() / n, sp.static_indexes / n, sp.reporters / n,
              sp.uncompressed / n, sp.bookkeeping / n);
  std::printf("suffix tree : %.2f bytes/symbol\n",
              uncompressed.SpaceBytes() / n);
  std::printf("tops=%u pending=%u tau=%u\n", library.num_tops(),
              library.num_pending(), library.tau());
  return 0;
}
