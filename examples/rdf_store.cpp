// RDF triple store served concurrently over dynamic binary relations
// (Section 5 / Theorem 2, on the serve-layer relation facade).
//
// The paper: "the set of subject-predicate-object RDF triples can be
// represented as a graph or as two binary relations... given x, enumerate all
// the triples in which x occurs as a subject; given x and p, enumerate all
// triples in which x occurs as a subject and p occurs as a predicate."
//
// We store one ConcurrentRelation per triple dimension:
//   subjects  : subject  -> triple-id
//   predicates: predicate-> triple-id
//   objects   : object   -> triple-id
// and answer both query shapes with relation primitives. Each relation is a
// ConcurrentRelation over the Theorem 2 backend, so any number of reader
// threads could run these queries while a writer retracts and asserts
// triples in batches; the epoch reported by each query identifies the
// snapshot it saw. Bulk assertion rides AddPairsBatch, which routes
// cold-start batches into one compressed sub-collection build.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/concurrent_relation.h"
#include "serve/relation_index.h"

using namespace dyndex;

namespace {

struct Triple {
  uint32_t subject, predicate, object;
};

class TripleStore {
 public:
  TripleStore()
      : by_subject_(MakeRelationIndex(RelationBackend::kTheorem2)),
        by_predicate_(MakeRelationIndex(RelationBackend::kTheorem2)),
        by_object_(MakeRelationIndex(RelationBackend::kTheorem2)) {}

  /// Asserts a batch of triples atomically per dimension; returns the ids.
  std::vector<uint32_t> AddBatch(const std::vector<Triple>& triples) {
    std::vector<uint32_t> ids;
    RelationPairs s, p, o;
    for (const Triple& t : triples) {
      uint32_t id = next_id_++;
      ids.push_back(id);
      triples_[id] = t;
      s.push_back({t.subject, id});
      p.push_back({t.predicate, id});
      o.push_back({t.object, id});
    }
    by_subject_.AddPairsBatch(s);
    by_predicate_.AddPairsBatch(p);
    by_object_.AddPairsBatch(o);
    return ids;
  }

  void Remove(uint32_t id) {
    const Triple& t = triples_.at(id);
    by_subject_.RemovePairsBatch({{t.subject, id}});
    by_predicate_.RemovePairsBatch({{t.predicate, id}});
    by_object_.RemovePairsBatch({{t.object, id}});
    triples_.erase(id);
  }

  /// All triples with subject s (readable from any thread).
  std::vector<Triple> BySubject(uint32_t s) const {
    std::vector<Triple> out;
    for (uint32_t id : by_subject_.LabelsOf(s)) {
      out.push_back(triples_.at(id));
    }
    return out;
  }

  /// All triples with subject s AND predicate p (intersection of the two
  /// relations, iterating the smaller side and probing the other).
  std::vector<Triple> BySubjectPredicate(uint32_t s, uint32_t p) const {
    std::vector<Triple> out;
    if (by_subject_.CountLabelsOf(s) <= by_predicate_.CountLabelsOf(p)) {
      for (uint32_t id : by_subject_.LabelsOf(s)) {
        if (by_predicate_.Related(p, id)) out.push_back(triples_.at(id));
      }
    } else {
      for (uint32_t id : by_predicate_.LabelsOf(p)) {
        if (by_subject_.Related(s, id)) out.push_back(triples_.at(id));
      }
    }
    return out;
  }

  uint64_t CountBySubject(uint32_t s) const {
    return by_subject_.CountLabelsOf(s);
  }

  /// Write batches applied to the subject dimension so far.
  uint64_t epoch() const { return by_subject_.epoch(); }

  uint64_t size() const { return triples_.size(); }

 private:
  ConcurrentRelation by_subject_, by_predicate_, by_object_;
  std::unordered_map<uint32_t, Triple> triples_;
  uint32_t next_id_ = 0;
};

// Tiny vocabulary for a readable demo.
const char* kEntities[] = {"alice", "bob", "carol", "paperX", "paperY",
                           "waterloo", "kansas"};
const char* kPredicates[] = {"knows", "authored", "cites", "affiliatedWith"};

}  // namespace

int main() {
  TripleStore store;
  // (subject, predicate, object) indices into the vocab arrays, asserted as
  // one batch per dimension (one epoch).
  std::vector<uint32_t> ids = store.AddBatch({
      {0, 0, 1},  // alice knows bob
      {0, 1, 3},  // alice authored paperX
      {1, 1, 4},  // bob authored paperY
      {3, 2, 4},  // paperX cites paperY
      {0, 3, 5},  // alice affiliatedWith waterloo
      {1, 3, 6},  // bob affiliatedWith kansas
      {0, 0, 2},  // alice knows carol
  });

  std::printf("store holds %llu triples at epoch %llu\n",
              static_cast<unsigned long long>(store.size()),
              static_cast<unsigned long long>(store.epoch()));

  std::printf("triples with subject 'alice' (%llu):\n",
              static_cast<unsigned long long>(store.CountBySubject(0)));
  for (const Triple& t : store.BySubject(0)) {
    std::printf("  alice %s %s\n", kPredicates[t.predicate],
                kEntities[t.object]);
  }

  std::printf("alice + knows:\n");
  for (const Triple& t : store.BySubjectPredicate(0, 0)) {
    std::printf("  alice knows %s\n", kEntities[t.object]);
  }

  store.Remove(ids[0]);  // retract "alice knows bob"
  std::printf("after retraction (epoch %llu), alice + knows:\n",
              static_cast<unsigned long long>(store.epoch()));
  for (const Triple& t : store.BySubjectPredicate(0, 0)) {
    std::printf("  alice knows %s\n", kEntities[t.object]);
  }
  return 0;
}
