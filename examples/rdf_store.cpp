// RDF triple store over dynamic binary relations (Section 5 / Theorem 2).
//
// The paper: "the set of subject-predicate-object RDF triples can be
// represented as a graph or as two binary relations... given x, enumerate all
// the triples in which x occurs as a subject; given x and p, enumerate all
// triples in which x occurs as a subject and p occurs as a predicate."
//
// We store one DynamicRelation per predicate dimension:
//   subjects  : subject  -> triple-id
//   predicates: predicate-> triple-id
//   objects   : object   -> triple-id
// and answer both query shapes with relation primitives.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "relation/dynamic_relation.h"

using namespace dyndex;

namespace {

struct Triple {
  uint32_t subject, predicate, object;
};

class TripleStore {
 public:
  uint32_t Add(uint32_t s, uint32_t p, uint32_t o) {
    uint32_t id = next_id_++;
    triples_[id] = {s, p, o};
    by_subject_.AddPair(s, id);
    by_predicate_.AddPair(p, id);
    by_object_.AddPair(o, id);
    return id;
  }

  void Remove(uint32_t id) {
    const Triple& t = triples_.at(id);
    by_subject_.RemovePair(t.subject, id);
    by_predicate_.RemovePair(t.predicate, id);
    by_object_.RemovePair(t.object, id);
    triples_.erase(id);
  }

  /// All triples with subject s.
  std::vector<Triple> BySubject(uint32_t s) const {
    std::vector<Triple> out;
    by_subject_.ForEachLabelOfObject(
        s, [&](uint32_t id) { out.push_back(triples_.at(id)); });
    return out;
  }

  /// All triples with subject s AND predicate p (intersection of the two
  /// relations, iterating the smaller side and probing the other).
  std::vector<Triple> BySubjectPredicate(uint32_t s, uint32_t p) const {
    std::vector<Triple> out;
    if (by_subject_.CountLabelsOf(s) <= by_predicate_.CountLabelsOf(p)) {
      by_subject_.ForEachLabelOfObject(s, [&](uint32_t id) {
        if (by_predicate_.Related(p, id)) out.push_back(triples_.at(id));
      });
    } else {
      by_predicate_.ForEachLabelOfObject(p, [&](uint32_t id) {
        if (by_subject_.Related(s, id)) out.push_back(triples_.at(id));
      });
    }
    return out;
  }

  uint64_t CountBySubject(uint32_t s) const {
    return by_subject_.CountLabelsOf(s);
  }

  uint64_t size() const { return triples_.size(); }

 private:
  DynamicRelation by_subject_, by_predicate_, by_object_;
  std::unordered_map<uint32_t, Triple> triples_;
  uint32_t next_id_ = 0;
};

// Tiny vocabulary for a readable demo.
const char* kEntities[] = {"alice", "bob", "carol", "paperX", "paperY",
                           "waterloo", "kansas"};
const char* kPredicates[] = {"knows", "authored", "cites", "affiliatedWith"};

}  // namespace

int main() {
  TripleStore store;
  // (subject, predicate, object) indices into the vocab arrays.
  uint32_t t0 = store.Add(0, 0, 1);  // alice knows bob
  store.Add(0, 1, 3);                // alice authored paperX
  store.Add(1, 1, 4);                // bob authored paperY
  store.Add(3, 2, 4);                // paperX cites paperY
  store.Add(0, 3, 5);                // alice affiliatedWith waterloo
  store.Add(1, 3, 6);                // bob affiliatedWith kansas
  store.Add(0, 0, 2);                // alice knows carol

  std::printf("store holds %llu triples\n",
              static_cast<unsigned long long>(store.size()));

  std::printf("triples with subject 'alice' (%llu):\n",
              static_cast<unsigned long long>(store.CountBySubject(0)));
  for (const Triple& t : store.BySubject(0)) {
    std::printf("  alice %s %s\n", kPredicates[t.predicate],
                kEntities[t.object]);
  }

  std::printf("alice + knows:\n");
  for (const Triple& t : store.BySubjectPredicate(0, 0)) {
    std::printf("  alice knows %s\n", kEntities[t.object]);
  }

  store.Remove(t0);  // retract "alice knows bob"
  std::printf("after retraction, alice + knows:\n");
  for (const Triple& t : store.BySubjectPredicate(0, 0)) {
    std::printf("  alice knows %s\n", kEntities[t.object]);
  }
  return 0;
}
