// Quickstart: a dynamic compressed document collection in a dozen lines.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run  :  ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "core/dynamic_collection.h"
#include "text/fm_index.h"

using namespace dyndex;

int main() {
  // A fully-dynamic compressed index: Transformation 1 over an FM-index.
  DynamicCollectionT1<FmIndex> collection;

  // Insert documents (byte strings are widened to the internal alphabet).
  DocId doc1 = collection.Insert(SymbolsFromString("the quick brown fox"));
  DocId doc2 = collection.Insert(SymbolsFromString("the lazy dog naps"));
  DocId doc3 = collection.Insert(SymbolsFromString("quick quick slow"));

  // Pattern search returns (document, offset) pairs.
  auto pattern = SymbolsFromString("quick");
  std::printf("occurrences of 'quick':\n");
  for (const Occurrence& occ : collection.Find(pattern)) {
    std::printf("  doc %llu offset %llu\n",
                static_cast<unsigned long long>(occ.doc),
                static_cast<unsigned long long>(occ.offset));
  }
  std::printf("count('quick') = %llu\n",
              static_cast<unsigned long long>(collection.Count(pattern)));

  // Extract a slice of a stored document straight from the compressed form.
  std::printf("doc2[4..8] = '%s'\n",
              StringFromSymbols(collection.Extract(doc2, 4, 4)).c_str());

  // Deleting a document hides all its occurrences immediately.
  collection.Erase(doc3);
  std::printf("after deleting doc3, count('quick') = %llu\n",
              static_cast<unsigned long long>(collection.Count(pattern)));

  (void)doc1;
  std::printf("collection: %llu docs, %llu symbols live\n",
              static_cast<unsigned long long>(collection.num_docs()),
              static_cast<unsigned long long>(collection.live_symbols()));
  return 0;
}
