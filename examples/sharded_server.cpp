// Sharded serving walkthrough: a document index and a graph, each split
// across 4 hash-partitioned shards with parallel write fan-out and per-shard
// epoch vectors as snapshot tokens.
//
// Build:  cmake -B build && cmake --build build
// Run  :  ./build/examples/example_sharded_server
#include <cstdio>
#include <string>
#include <vector>

#include "serve/sharded_index.h"
#include "serve/sharded_relation.h"

using namespace dyndex;

namespace {

std::string EpochsToString(const ShardEpochs& epochs) {
  std::string out = "[";
  for (uint64_t e : epochs) {
    if (out.size() > 1) out += " ";
    out += std::to_string(e);
  }
  return out + "]";
}

}  // namespace

int main() {
  // ---- documents: 4 shards over Transformation 2 --------------------------
  DynamicIndexOptions opt;
  opt.mode = RebuildMode::kSynchronous;
  ShardedIndex index(/*num_shards=*/4, Backend::kT2, opt);

  // One batch, fanned out: each shard's slice applies under its own lock,
  // in parallel with the other shards' slices.
  std::vector<DocId> ids = index.InsertBatch({
      SymbolsFromString("error: disk full on node-3"),
      SymbolsFromString("info: compaction finished"),
      SymbolsFromString("error: disk full on node-7"),
      SymbolsFromString("warn: retry on node-3"),
      SymbolsFromString("info: disk resized on node-3"),
      SymbolsFromString("error: timeout talking to node-9"),
  });
  std::printf("inserted %zu docs; doc 0 lives on shard %u, doc 1 on %u\n",
              ids.size(), index.shard_of(ids[0]), index.shard_of(ids[1]));

  // Fanned-out queries report one epoch per shard: the snapshot token.
  ShardEpochs epochs;
  auto pattern = SymbolsFromString("disk full");
  uint64_t hits = index.Count(pattern, &epochs);
  std::printf("count('disk full') = %llu at shard epochs %s\n",
              static_cast<unsigned long long>(hits),
              EpochsToString(epochs).c_str());
  for (const Occurrence& occ : index.Locate(pattern)) {
    std::printf("  doc %llu offset %llu\n",
                static_cast<unsigned long long>(occ.doc),
                static_cast<unsigned long long>(occ.offset));
  }

  // Id-keyed operations route to the owning shard (id % num_shards).
  std::vector<Symbol> slice;
  if (index.Extract(ids[1], 6, 10, &slice)) {
    std::printf("doc1[6..16] = '%s'\n", StringFromSymbols(slice).c_str());
  }
  index.EraseBatch({ids[0]});
  std::printf("after erasing doc0, count('disk full') = %llu\n",
              static_cast<unsigned long long>(index.Count(pattern)));

  // Degenerate inputs answer totally through the facade (no aborts).
  std::printf("count('') = %llu, DocLenOf(bogus) = %llu\n",
              static_cast<unsigned long long>(index.Count({})),
              static_cast<unsigned long long>(index.DocLenOf(424242)));

  // ---- graph: 4 shards partitioned by source vertex -----------------------
  ShardedRelation graph(/*num_shards=*/4, RelationBackend::kGraph);
  graph.AddEdgesBatch({{1, 2}, {1, 3}, {2, 3}, {7, 3}, {7, 1}});
  std::printf("graph: %llu edges across %u shards\n",
              static_cast<unsigned long long>(graph.num_edges()),
              graph.num_shards());

  // Out-neighbors live on one shard; in-neighbors fan out and merge.
  std::printf("out(1):");
  for (uint32_t v : graph.Neighbors(1)) std::printf(" %u", v);
  ShardEpochs gepochs;
  std::printf("\nin(3):");
  for (uint32_t u : graph.Reverse(3, &gepochs)) std::printf(" %u", u);
  std::printf("  (epochs %s)\n", EpochsToString(gepochs).c_str());

  graph.RemoveEdgesBatch({{1, 2}});
  std::printf("after retract, has(1->2) = %d, in-degree(3) = %llu\n",
              graph.HasEdge(1, 2),
              static_cast<unsigned long long>(graph.InDegree(3)));
  return 0;
}
