// Search-log analytics: the paper's motivating database example
// ("suppose we keep a search log and want to find out how many times URLs
// containing a certain substring were accessed").
//
// A rolling window of access-log lines is kept in a compressed dynamic index
// with counting support (Theorem 1): new log lines stream in, expired lines
// are deleted, and substring-count analytics run continuously.
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "core/dynamic_collection.h"
#include "text/fm_index.h"
#include "util/rng.h"

using namespace dyndex;

namespace {

// Synthesizes an access-log line like "GET /shop/cart/item-17 HTTP/1.1".
std::string MakeLogLine(Rng& rng) {
  static const char* kSections[] = {"shop", "blog", "api", "static", "admin"};
  static const char* kPages[] = {"cart", "search", "user", "index", "item"};
  std::string line = "GET /";
  line += kSections[rng.Below(5)];
  line += "/";
  line += kPages[rng.Below(5)];
  line += "/item-" + std::to_string(rng.Below(100));
  line += " HTTP/1.1";
  return line;
}

}  // namespace

int main() {
  DynamicCollectionOptions opt;
  opt.counting = true;  // enable O(log n) substring counting (Theorem 1)
  DynamicCollectionT1<FmIndex> log_index(opt);

  Rng rng(2026);
  std::deque<DocId> window;
  const size_t kWindowSize = 2000;

  // Stream 10k log lines through a 2k-line rolling window.
  for (int i = 0; i < 10000; ++i) {
    window.push_back(log_index.Insert(SymbolsFromString(MakeLogLine(rng))));
    if (window.size() > kWindowSize) {
      log_index.Erase(window.front());
      window.pop_front();
    }
  }

  std::printf("window: %llu lines, %llu symbols (compressed index)\n",
              static_cast<unsigned long long>(log_index.num_docs()),
              static_cast<unsigned long long>(log_index.live_symbols()));

  // Substring-count analytics over the live window.
  for (const char* q : {"/shop/", "/api/", "cart", "item-7", "admin"}) {
    std::printf("  lines containing %-8s : %llu\n", q,
                static_cast<unsigned long long>(
                    log_index.Count(SymbolsFromString(q))));
  }

  // Drill-down: list the first few hits for one query.
  auto hits = log_index.Find(SymbolsFromString("/admin/"));
  std::printf("sample '/admin/' hits (%zu total):\n", hits.size());
  for (size_t i = 0; i < hits.size() && i < 3; ++i) {
    auto line = log_index.Extract(hits[i].doc, 0,
                                  log_index.DocLenOf(hits[i].doc));
    std::printf("  %s\n", StringFromSymbols(line).c_str());
  }
  return 0;
}
