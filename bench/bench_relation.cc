// Relation serving benchmarks: bulk vs pairwise construction of the
// Theorem 2 dynamic relation (the cold-start path AddPairsBulk routes into
// one sub-collection build), and concurrent reader throughput over
// ConcurrentRelation on the shared epoch core — the relation-side analogue
// of bench_serve_concurrent.
//
// The headline row pair: RelationBuild/pairwise vs RelationBuild/bulk at
// 2^20 (~1e6) pairs. Pairwise insertion pays the merge cascade over and over
// (every C0 overflow exports and rebuilds a prefix of levels); bulk places
// the whole batch with exactly one static build.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "gen/relation_gen.h"
#include "serve/concurrent_relation.h"
#include "serve/relation_index.h"
#include "util/rng.h"

namespace dyndex {
namespace {

constexpr uint32_t kObjects = 1 << 14;
constexpr uint32_t kLabels = 1 << 13;
constexpr uint64_t kQueriesPerReader = 2048;

const RelationPairs& GetPairs(uint64_t count) {
  static auto* cache = new std::map<uint64_t, RelationPairs>();
  auto it = cache->find(count);
  if (it == cache->end()) {
    Rng rng(91);
    it = cache->emplace(count, GenPairs(rng, count, kObjects, kLabels, 0.8))
             .first;
  }
  return it->second;
}

void BM_RelationBuild_Pairwise(benchmark::State& state) {
  const RelationPairs& pairs = GetPairs(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    DynamicRelation rel;
    for (auto [o, a] : pairs) rel.AddPair(o, a);
    benchmark::DoNotOptimize(rel.num_pairs());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_RelationBuild_Bulk(benchmark::State& state) {
  const RelationPairs& pairs = GetPairs(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    DynamicRelation rel;
    rel.AddPairsBulk(pairs);
    benchmark::DoNotOptimize(rel.num_pairs());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}

// Iterations(1) on the 2^20 pairwise row: one build is already seconds-long,
// and the fixed seed makes a single measurement stable enough to diff.
BENCHMARK(BM_RelationBuild_Pairwise)
    ->Arg(1 << 17)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RelationBuild_Pairwise)
    ->Arg(1 << 20)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RelationBuild_Bulk)
    ->Arg(1 << 17)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

void BM_RelationBuild_BaselineBulk(benchmark::State& state) {
  const RelationPairs& raw = GetPairs(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    BaselineRelation rel(kObjects, kLabels);
    rel.AddPairsBulk(raw);
    benchmark::DoNotOptimize(rel.num_pairs());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RelationBuild_BaselineBulk)
    ->Arg(1 << 17)
    ->Unit(benchmark::kMillisecond);

/// Prebuilt concurrent relation + query stream, shared across iterations.
struct RelServeFixture {
  std::unique_ptr<ConcurrentRelation> rel;
  RelationPairs churn;  // writer add/remove pool
};

RelServeFixture* GetServeFixture() {
  static RelServeFixture* fixture = [] {
    auto* f = new RelServeFixture();
    RelationIndexOptions opt;
    f->rel = std::make_unique<ConcurrentRelation>(
        MakeRelationIndex(RelationBackend::kTheorem2, opt));
    f->rel->AddPairsBatch(GetPairs(1 << 17));
    Rng rng(92);
    f->churn = GenPairs(rng, 4096, kObjects, kLabels, 0.8);
    return f;
  }();
  return fixture;
}

void RelReaderWork(const ConcurrentRelation& rel, uint64_t seed,
                   uint64_t queries) {
  Rng rng(seed);
  for (uint64_t q = 0; q < queries; ++q) {
    uint32_t o = static_cast<uint32_t>(rng.Below(kObjects));
    uint32_t a = static_cast<uint32_t>(rng.Below(kLabels));
    switch (rng.Below(3)) {
      case 0:
        benchmark::DoNotOptimize(rel.Related(o, a));
        break;
      case 1:
        benchmark::DoNotOptimize(rel.CountLabelsOf(o));
        break;
      default:
        benchmark::DoNotOptimize(rel.CountObjectsOf(a));
        break;
    }
  }
}

/// Writer loop: balanced add/remove batches so the relation size stays flat
/// while C0 and the purge machinery keep churning under the exclusive lock.
void RelWriterWork(RelServeFixture* f, const std::atomic<bool>& stop) {
  uint64_t n = 0;
  while (!stop.load(std::memory_order_acquire)) {
    RelationPairs batch(f->churn.begin() + (n % 128) * 32,
                        f->churn.begin() + (n % 128) * 32 + 32);
    f->rel->AddPairsBatch(batch);
    f->rel->RemovePairsBatch(batch);
    ++n;
  }
}

void BM_RelationConcurrentReads(benchmark::State& state) {
  RelServeFixture* f = GetServeFixture();
  const int readers = static_cast<int>(state.range(0));
  const bool with_writer = state.range(1) != 0;
  uint64_t round = 0;
  for (auto _ : state) {
    std::atomic<bool> stop{false};
    std::thread writer;
    if (with_writer) {
      writer = std::thread(RelWriterWork, f, std::cref(stop));
    }
    std::vector<std::thread> pool;
    for (int r = 0; r < readers; ++r) {
      pool.emplace_back(RelReaderWork, std::cref(*f->rel), round * 131 + r,
                        kQueriesPerReader);
    }
    for (auto& t : pool) t.join();
    stop.store(true, std::memory_order_release);
    if (writer.joinable()) writer.join();
    ++round;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * readers *
                          static_cast<int64_t>(kQueriesPerReader));
  state.counters["readers"] = readers;
  state.counters["writer"] = with_writer ? 1 : 0;
}

BENCHMARK(BM_RelationConcurrentReads)
    ->ArgNames({"readers", "writer"})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dyndex

BENCHMARK_MAIN();
