// Theorem 3 (E10): dynamic directed graphs as binary relations.
//
// Power-law digraph; neighbor enumeration, reverse neighbors, adjacency,
// degree counting, and edge churn on the compressed dynamic graph.
#include <benchmark/benchmark.h>

#include "gen/relation_gen.h"
#include "relation/dynamic_graph.h"
#include "util/rng.h"

namespace dyndex {
namespace {

constexpr uint32_t kNodes = 4096;
constexpr uint64_t kEdges = 1 << 17;

DynamicGraph* GetGraph() {
  static std::unique_ptr<DynamicGraph> g = [] {
    auto graph = std::make_unique<DynamicGraph>();
    Rng rng(31);
    for (auto [u, v] : GenEdges(rng, kEdges, kNodes, /*zipf=*/0.8)) {
      graph->AddEdge(u, v);
    }
    return graph;
  }();
  return g.get();
}

void BM_Thm3_OutNeighbors(benchmark::State& state) {
  auto* g = GetGraph();
  Rng rng(32);
  uint64_t reported = 0;
  for (auto _ : state) {
    uint32_t u = static_cast<uint32_t>(rng.Below(kNodes));
    g->ForEachOutNeighbor(u, [&](uint32_t) { ++reported; });
  }
  state.counters["neighbors_per_query"] =
      static_cast<double>(reported) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_Thm3_OutNeighbors);

void BM_Thm3_InNeighbors(benchmark::State& state) {
  auto* g = GetGraph();
  Rng rng(33);
  uint64_t reported = 0;
  for (auto _ : state) {
    uint32_t v = static_cast<uint32_t>(rng.Below(kNodes));
    g->ForEachInNeighbor(v, [&](uint32_t) { ++reported; });
  }
  state.counters["neighbors_per_query"] =
      static_cast<double>(reported) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_Thm3_InNeighbors);

void BM_Thm3_Adjacency(benchmark::State& state) {
  auto* g = GetGraph();
  Rng rng(34);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        g->HasEdge(static_cast<uint32_t>(rng.Below(kNodes)),
                   static_cast<uint32_t>(rng.Below(kNodes))));
  }
}
BENCHMARK(BM_Thm3_Adjacency);

void BM_Thm3_Degrees(benchmark::State& state) {
  auto* g = GetGraph();
  Rng rng(35);
  for (auto _ : state) {
    uint32_t u = static_cast<uint32_t>(rng.Below(kNodes));
    benchmark::DoNotOptimize(g->OutDegree(u));
    benchmark::DoNotOptimize(g->InDegree(u));
  }
}
BENCHMARK(BM_Thm3_Degrees);

void BM_Thm3_EdgeChurn(benchmark::State& state) {
  auto* g = GetGraph();
  Rng rng(36);
  for (auto _ : state) {
    uint32_t u = static_cast<uint32_t>(rng.Below(kNodes));
    uint32_t v = static_cast<uint32_t>(rng.Below(kNodes));
    if (g->AddEdge(u, v)) g->RemoveEdge(u, v);
  }
}
BENCHMARK(BM_Thm3_EdgeChurn);

void BM_Thm3_Space(benchmark::State& state) {
  auto* g = GetGraph();
  for (auto _ : state) benchmark::DoNotOptimize(g->num_edges());
  state.counters["bytes_per_edge"] =
      static_cast<double>(g->SpaceBytes()) /
      static_cast<double>(g->num_edges());
}
BENCHMARK(BM_Thm3_Space);

}  // namespace
}  // namespace dyndex

BENCHMARK_MAIN();
