// Theorem 3 (E10): dynamic directed graphs as binary relations.
//
// Power-law digraph; neighbor enumeration, reverse neighbors, adjacency,
// degree counting, and edge churn on the compressed dynamic graph.
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "gen/relation_gen.h"
#include "relation/dynamic_graph.h"
#include "serve/concurrent_relation.h"
#include "serve/relation_index.h"
#include "util/rng.h"

namespace dyndex {
namespace {

constexpr uint32_t kNodes = 4096;
constexpr uint64_t kEdges = 1 << 17;

DynamicGraph* GetGraph() {
  static std::unique_ptr<DynamicGraph> g = [] {
    auto graph = std::make_unique<DynamicGraph>();
    Rng rng(31);
    for (auto [u, v] : GenEdges(rng, kEdges, kNodes, /*zipf=*/0.8)) {
      graph->AddEdge(u, v);
    }
    return graph;
  }();
  return g.get();
}

void BM_Thm3_OutNeighbors(benchmark::State& state) {
  auto* g = GetGraph();
  Rng rng(32);
  uint64_t reported = 0;
  for (auto _ : state) {
    uint32_t u = static_cast<uint32_t>(rng.Below(kNodes));
    g->ForEachOutNeighbor(u, [&](uint32_t) { ++reported; });
  }
  state.counters["neighbors_per_query"] =
      static_cast<double>(reported) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_Thm3_OutNeighbors);

void BM_Thm3_InNeighbors(benchmark::State& state) {
  auto* g = GetGraph();
  Rng rng(33);
  uint64_t reported = 0;
  for (auto _ : state) {
    uint32_t v = static_cast<uint32_t>(rng.Below(kNodes));
    g->ForEachInNeighbor(v, [&](uint32_t) { ++reported; });
  }
  state.counters["neighbors_per_query"] =
      static_cast<double>(reported) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_Thm3_InNeighbors);

void BM_Thm3_Adjacency(benchmark::State& state) {
  auto* g = GetGraph();
  Rng rng(34);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        g->HasEdge(static_cast<uint32_t>(rng.Below(kNodes)),
                   static_cast<uint32_t>(rng.Below(kNodes))));
  }
}
BENCHMARK(BM_Thm3_Adjacency);

void BM_Thm3_Degrees(benchmark::State& state) {
  auto* g = GetGraph();
  Rng rng(35);
  for (auto _ : state) {
    uint32_t u = static_cast<uint32_t>(rng.Below(kNodes));
    benchmark::DoNotOptimize(g->OutDegree(u));
    benchmark::DoNotOptimize(g->InDegree(u));
  }
}
BENCHMARK(BM_Thm3_Degrees);

void BM_Thm3_EdgeChurn(benchmark::State& state) {
  auto* g = GetGraph();
  Rng rng(36);
  for (auto _ : state) {
    uint32_t u = static_cast<uint32_t>(rng.Below(kNodes));
    uint32_t v = static_cast<uint32_t>(rng.Below(kNodes));
    if (g->AddEdge(u, v)) g->RemoveEdge(u, v);
  }
}
BENCHMARK(BM_Thm3_EdgeChurn);

// Bulk edge loading (Coimbra et al.: batched construction is where dynamic
// succinct graphs win or lose) vs pairwise AddEdge.
void BM_Thm3_Build_Pairwise(benchmark::State& state) {
  Rng rng(31);
  auto edges = GenEdges(rng, kEdges, kNodes, /*zipf=*/0.8);
  for (auto _ : state) {
    DynamicGraph g;
    for (auto [u, v] : edges) g.AddEdge(u, v);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kEdges));
}
void BM_Thm3_Build_Bulk(benchmark::State& state) {
  Rng rng(31);
  auto edges = GenEdges(rng, kEdges, kNodes, /*zipf=*/0.8);
  for (auto _ : state) {
    DynamicGraph g;
    g.AddEdgesBulk(edges);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kEdges));
}
BENCHMARK(BM_Thm3_Build_Pairwise)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Thm3_Build_Bulk)->Unit(benchmark::kMillisecond);

// Concurrent neighbor queries over the graph view of ConcurrentRelation
// (the shared epoch core), scaling reader threads.
void BM_Thm3_ConcurrentNeighbors(benchmark::State& state) {
  static ConcurrentRelation* shared = [] {
    auto* r = new ConcurrentRelation(
        MakeRelationIndex(RelationBackend::kGraph));
    Rng rng(31);
    r->AddPairsBatch(GenEdges(rng, kEdges, kNodes, /*zipf=*/0.8));
    return r;
  }();
  const int readers = static_cast<int>(state.range(0));
  constexpr uint64_t kQueries = 2048;
  uint64_t round = 0;
  for (auto _ : state) {
    std::vector<std::thread> pool;
    for (int r = 0; r < readers; ++r) {
      pool.emplace_back([seed = round * 131 + r] {
        Rng rng(seed);
        for (uint64_t q = 0; q < kQueries; ++q) {
          benchmark::DoNotOptimize(shared->Neighbors(
              static_cast<uint32_t>(rng.Below(kNodes))));
        }
      });
    }
    for (auto& t : pool) t.join();
    ++round;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * readers *
                          static_cast<int64_t>(kQueries));
  state.counters["readers"] = readers;
}
BENCHMARK(BM_Thm3_ConcurrentNeighbors)
    ->ArgName("readers")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_Thm3_Space(benchmark::State& state) {
  auto* g = GetGraph();
  for (auto _ : state) benchmark::DoNotOptimize(g->num_edges());
  state.counters["bytes_per_edge"] =
      static_cast<double>(g->SpaceBytes()) /
      static_cast<double>(g->num_edges());
}
BENCHMARK(BM_Thm3_Space);

}  // namespace
}  // namespace dyndex

BENCHMARK_MAIN();
