// Ablation (DESIGN.md): balanced vs Huffman-shaped wavelet tree for the
// relation label string S. Theorem 2's space bound is nH + o(n log sigma_l)
// with H the zero-order entropy of S — achieved by the Huffman shape. On
// Zipf-skewed labels the shape both shrinks the bitmaps towards nH0 and
// shortens the expected root-to-leaf path below log sigma.
#include <benchmark/benchmark.h>

#include <memory>

#include "gen/text_gen.h"
#include "seq/huffman_wavelet_tree.h"
#include "seq/wavelet_tree.h"
#include "suffix/entropy.h"
#include "util/rng.h"

namespace dyndex {
namespace {

constexpr uint64_t kN = 1 << 20;
constexpr uint32_t kSigma = 1024;

const std::vector<uint32_t>& GetZipfData() {
  static std::vector<uint32_t> data = [] {
    Rng rng(51);
    auto t = ZipfText(rng, kN, kSigma, 1.1);
    return std::vector<uint32_t>(t.begin(), t.end());
  }();
  return data;
}

template <typename WT>
const WT& GetTree() {
  static std::unique_ptr<WT> wt =
      std::make_unique<WT>(GetZipfData(), kSigma + kMinSymbol);
  return *wt;
}

template <typename WT>
void RunAccess(benchmark::State& state) {
  const WT& wt = GetTree<WT>();
  Rng rng(52);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wt.Access(rng.Below(kN)));
  }
  state.counters["bytes"] = static_cast<double>(wt.SpaceBytes());
}
void BM_Ablation_Access_Balanced(benchmark::State& state) {
  RunAccess<WaveletTree>(state);
}
void BM_Ablation_Access_Huffman(benchmark::State& state) {
  RunAccess<HuffmanWaveletTree>(state);
}
BENCHMARK(BM_Ablation_Access_Balanced);
BENCHMARK(BM_Ablation_Access_Huffman);

template <typename WT>
void RunRank(benchmark::State& state) {
  const WT& wt = GetTree<WT>();
  const auto& data = GetZipfData();
  Rng rng(53);
  for (auto _ : state) {
    // Rank of a symbol drawn from the data distribution (skewed, so Huffman
    // paths are short in expectation).
    uint64_t i = rng.Below(kN);
    benchmark::DoNotOptimize(wt.Rank(data[i], i));
  }
}
void BM_Ablation_Rank_Balanced(benchmark::State& state) {
  RunRank<WaveletTree>(state);
}
void BM_Ablation_Rank_Huffman(benchmark::State& state) {
  RunRank<HuffmanWaveletTree>(state);
}
BENCHMARK(BM_Ablation_Rank_Balanced);
BENCHMARK(BM_Ablation_Rank_Huffman);

void BM_Ablation_SpaceVsEntropy(benchmark::State& state) {
  const auto& balanced = GetTree<WaveletTree>();
  const auto& huffman = GetTree<HuffmanWaveletTree>();
  for (auto _ : state) benchmark::DoNotOptimize(huffman.size());
  std::vector<Symbol> as_text(GetZipfData().begin(), GetZipfData().end());
  state.counters["H0_bits"] = EntropyH0(as_text);
  state.counters["huffman_bits_per_sym"] = huffman.BitsPerSymbol();
  state.counters["balanced_bytes"] = static_cast<double>(balanced.SpaceBytes());
  state.counters["huffman_bytes"] = static_cast<double>(huffman.SpaceBytes());
}
BENCHMARK(BM_Ablation_SpaceVsEntropy);

}  // namespace
}  // namespace dyndex

BENCHMARK_MAIN();
