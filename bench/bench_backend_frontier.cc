// Head-to-head backend frontier: every RelationBackend measured over the
// same workloads, so backend choice is a measured space-vs-speed tradeoff
// instead of a default. One binary emits the whole frontier table in the
// standard BENCH_*.json format:
//
//  * FrontierBuildBulk/<backend>/<edges>  -- cold bulk build of a Zipf graph
//    at 2^17 and 2^20 edges, with space_bytes / bytes_per_edge counters (the
//    space axis of the frontier, reported honestly for every backend).
//  * FrontierUpdateMix/<backend>          -- the update-heavy mix: a warm
//    structure replaying a seeded add/remove churn stream (the same
//    gen/relation_gen.h GenChurnStream the differential fuzzer replays).
//  * FrontierChurnMix/<backend>/<regime>  -- social-network-shaped churn
//    (Zipf 0.99 label popularity) in write_heavy and read_heavy regimes,
//    queries interleaved with updates.
//  * FrontierRelated|Neighbors|Reverse/<backend>/<edges> -- point and
//    O(result) queries against warm fixtures at both graph sizes; Reverse
//    goes through each backend's reverse machinery (the fast tier's mirrored
//    index vs the succinct structures' native rank/select).
//  * FrontierConcurrentReaders/<backend>  -- 4 optimistic lock-free readers
//    vs one paced churn writer over ConcurrentRelation, with the full
//    optimistic_stats()/pacing_stats() counter set per backend: the fast
//    tier republishes pointers far more often than the succinct backends, so
//    validated/retries/fallbacks must stay sane alongside raw throughput.
//
// Rows are registered per backend name (RegisterBenchmark) so the JSON and
// the README frontier table read directly, without decoding arg indexes.
//
// Fixed seeds end to end: rows are diffable run-to-run and against the
// committed bench/baselines/ snapshot.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gen/relation_gen.h"
#include "serve/concurrent_relation.h"
#include "serve/relation_index.h"
#include "util/rng.h"

namespace dyndex {
namespace {

constexpr uint32_t kNodes = 1 << 17;       // graph id universe
constexpr uint64_t kEdgesSmall = 1 << 17;  // avg degree 1
constexpr uint64_t kEdgesLarge = 1 << 20;  // avg degree 8
constexpr double kGraphZipf = 0.8;

// Churn universe shaped like a social graph: avg forward degree 16 (reverse
// 32), so adjacency sets sit in each backend's steady-state representation
// (hash mode for the fast tier, multi-level wavelet structures for the
// succinct ones) instead of the near-empty cold edge.
constexpr uint32_t kChurnObjects = 1 << 12;
constexpr uint32_t kChurnLabels = 1 << 11;
constexpr uint64_t kChurnBaseEdges = 1 << 16;
constexpr uint64_t kMixOps = 2048;

constexpr uint64_t kQueriesPerRow = 1024;
constexpr int kBenchReaders = 4;
constexpr uint64_t kQueriesPerReader = 2048;

const std::vector<RelationBackend>& AllBackends() {
  static const auto* backends = new std::vector<RelationBackend>{
      RelationBackend::kFast, RelationBackend::kTheorem2,
      RelationBackend::kBaseline, RelationBackend::kGraph,
      RelationBackend::kDeletionOnly};
  return *backends;
}

RelationIndexOptions FrontierOptions() {
  RelationIndexOptions opt;
  // Size the baseline's initial capacities to the id universe so every
  // backend pays construction once instead of doubling rebuilds mid-bench.
  opt.baseline_max_objects = kNodes;
  opt.baseline_max_labels = kNodes;
  return opt;
}

const RelationPairs& GraphEdges(uint64_t count) {
  static auto* cache = new std::map<uint64_t, RelationPairs>();
  auto it = cache->find(count);
  if (it == cache->end()) {
    Rng rng(417);
    it = cache->emplace(count, GenEdges(rng, count, kNodes, kGraphZipf)).first;
  }
  return it->second;
}

// --- cold bulk build + the space axis --------------------------------------

void RunBuildBulk(benchmark::State& state, RelationBackend backend,
                  uint64_t edges) {
  const RelationPairs& pairs = GraphEdges(edges);
  uint64_t space = 0;
  uint64_t live = 0;
  for (auto _ : state) {
    auto rel = MakeRelationIndex(backend, FrontierOptions());
    benchmark::DoNotOptimize(rel->AddPairsBulk(pairs));
    space = rel->SpaceBytes();
    live = rel->num_pairs();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pairs.size()));
  state.counters["edges"] = static_cast<double>(live);
  state.counters["space_bytes"] = static_cast<double>(space);
  state.counters["bytes_per_edge"] =
      live == 0 ? 0 : static_cast<double>(space) / static_cast<double>(live);
}

// --- churn mixes over the shared stream generator ---------------------------

struct MixFixture {
  std::unique_ptr<RelationIndex> rel;
  std::vector<ChurnEvent> stream;
};

void ReplayStream(RelationIndex* rel, const std::vector<ChurnEvent>& stream) {
  for (const ChurnEvent& ev : stream) {
    switch (ev.op) {
      case ChurnOp::kAdd:
        benchmark::DoNotOptimize(rel->AddPair(ev.object, ev.label));
        break;
      case ChurnOp::kRemove:
        benchmark::DoNotOptimize(rel->RemovePair(ev.object, ev.label));
        break;
      case ChurnOp::kRelated:
        benchmark::DoNotOptimize(rel->Related(ev.object, ev.label));
        break;
      case ChurnOp::kLabelsOf: {
        std::vector<uint32_t> v = rel->LabelsOf(ev.object);
        benchmark::DoNotOptimize(v.data());
        break;
      }
      case ChurnOp::kObjectsOf: {
        std::vector<uint32_t> v = rel->ObjectsOf(ev.label);
        benchmark::DoNotOptimize(v.data());
        break;
      }
    }
  }
}

/// Warm fixture + stream, cached per (backend, regime). The stream is
/// replayed once before timing: replay N applied to the same start state is
/// idempotent in its end state, so every timed replay does identical work.
MixFixture* GetMixFixture(RelationBackend backend, const char* regime,
                          double add_fraction, double remove_fraction,
                          double zipf) {
  static auto* cache = new std::map<std::pair<int, std::string>,
                                    std::unique_ptr<MixFixture>>();
  auto key = std::make_pair(static_cast<int>(backend), std::string(regime));
  auto it = cache->find(key);
  if (it != cache->end()) return it->second.get();
  auto f = std::make_unique<MixFixture>();
  f->rel = MakeRelationIndex(backend, FrontierOptions());
  Rng rng(523);
  f->rel->AddPairsBulk(
      GenPairs(rng, kChurnBaseEdges, kChurnObjects, kChurnLabels, zipf));
  ChurnStreamOptions copt;
  copt.num_ops = kMixOps;
  copt.num_objects = kChurnObjects;
  copt.num_labels = kChurnLabels;
  copt.zipf_theta = zipf;
  copt.add_fraction = add_fraction;
  copt.remove_fraction = remove_fraction;
  f->stream = GenChurnStream(rng, copt);
  ReplayStream(f->rel.get(), f->stream);  // settle into the steady state
  MixFixture* out = f.get();
  (*cache)[key] = std::move(f);
  return out;
}

void RunMix(benchmark::State& state, RelationBackend backend,
            const char* regime, double add_fraction, double remove_fraction,
            double zipf) {
  MixFixture* f =
      GetMixFixture(backend, regime, add_fraction, remove_fraction, zipf);
  for (auto _ : state) {
    ReplayStream(f->rel.get(), f->stream);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f->stream.size()));
  state.counters["space_bytes"] = static_cast<double>(f->rel->SpaceBytes());
}

// --- warm query rows --------------------------------------------------------

RelationIndex* GetGraphFixture(RelationBackend backend, uint64_t edges) {
  static auto* cache =
      new std::map<std::pair<int, uint64_t>, std::unique_ptr<RelationIndex>>();
  auto key = std::make_pair(static_cast<int>(backend), edges);
  auto it = cache->find(key);
  if (it == cache->end()) {
    auto rel = MakeRelationIndex(backend, FrontierOptions());
    rel->AddPairsBulk(GraphEdges(edges));
    it = cache->emplace(key, std::move(rel)).first;
  }
  return it->second.get();
}

enum class QueryKind { kRelated, kNeighbors, kReverse };

void RunQueries(benchmark::State& state, RelationBackend backend,
                uint64_t edges, QueryKind kind) {
  RelationIndex* rel = GetGraphFixture(backend, edges);
  // Query arguments sampled from live edges: sources/targets with real
  // adjacency, so O(result) rows measure result delivery, not miss probes.
  const RelationPairs& pairs = GraphEdges(edges);
  Rng rng(771);
  std::vector<std::pair<uint32_t, uint32_t>> sample;
  sample.reserve(kQueriesPerRow);
  for (uint64_t i = 0; i < kQueriesPerRow; ++i) {
    sample.push_back(pairs[rng.Below(pairs.size())]);
  }
  uint64_t results = 0;
  for (auto _ : state) {
    for (const auto& [u, v] : sample) {
      switch (kind) {
        case QueryKind::kRelated:
          benchmark::DoNotOptimize(rel->Related(u, v));
          ++results;
          break;
        case QueryKind::kNeighbors: {
          std::vector<uint32_t> out = rel->LabelsOf(u);
          benchmark::DoNotOptimize(out.data());
          results += out.size();
          break;
        }
        case QueryKind::kReverse: {
          std::vector<uint32_t> out = rel->ObjectsOf(v);
          benchmark::DoNotOptimize(out.data());
          results += out.size();
          break;
        }
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kQueriesPerRow));
  state.counters["results_per_query"] =
      state.iterations() == 0
          ? 0
          : static_cast<double>(results) /
                static_cast<double>(state.iterations() * kQueriesPerRow);
  state.counters["space_bytes"] = static_cast<double>(rel->SpaceBytes());
}

// --- concurrent readers vs a paced writer -----------------------------------

struct ConcurrentFixture {
  std::unique_ptr<ConcurrentRelation> rel;
  RelationPairs churn;
};

ConcurrentFixture* GetConcurrentFixture(RelationBackend backend) {
  static auto* cache =
      new std::map<int, std::unique_ptr<ConcurrentFixture>>();
  auto it = cache->find(static_cast<int>(backend));
  if (it != cache->end()) return it->second.get();
  auto f = std::make_unique<ConcurrentFixture>();
  f->rel = std::make_unique<ConcurrentRelation>(
      MakeRelationIndex(backend, FrontierOptions()));
  f->rel->AddPairsBatch(GraphEdges(kEdgesSmall));
  Rng rng(529);
  f->churn = GenPairs(rng, 4096, kNodes, kNodes, kGraphZipf);
  ConcurrentFixture* out = f.get();
  (*cache)[static_cast<int>(backend)] = std::move(f);
  return out;
}

void RunConcurrentReaders(benchmark::State& state, RelationBackend backend) {
  ConcurrentFixture* f = GetConcurrentFixture(backend);
  // The standard serving configuration: optimistic lock-free reads, write
  // pacing in the unconditional write-rate-limiter mode (stall_threshold 0).
  OptimisticPolicy policy;
  policy.max_attempts = 3;
  f->rel->set_optimistic_policy(policy);
  PacingPolicy pacing;
  pacing.min_even_window_us = 2000;
  pacing.max_delay_us = 4000;
  pacing.stall_threshold = 0;
  f->rel->set_pacing_policy(pacing);
  const OptimisticStats before = f->rel->optimistic_stats();
  const PacingStats pace_before = f->rel->pacing_stats();
  uint64_t round = 0;
  uint64_t writer_batches = 0;
  for (auto _ : state) {
    std::atomic<bool> stop{false};
    uint64_t batches = 0;
    std::thread writer([&] {
      uint64_t n = 0;
      while (!stop.load(std::memory_order_acquire)) {
        RelationPairs batch(f->churn.begin() + (n % 128) * 32,
                            f->churn.begin() + (n % 128) * 32 + 32);
        f->rel->AddPairsBatch(batch);
        f->rel->RemovePairsBatch(batch);
        ++n;
        ++batches;
      }
    });
    std::vector<std::thread> pool;
    for (int r = 0; r < kBenchReaders; ++r) {
      pool.emplace_back([f, seed = round * 131 + r] {
        Rng rng(seed);
        for (uint64_t q = 0; q < kQueriesPerReader; ++q) {
          uint32_t u = static_cast<uint32_t>(rng.Below(kNodes));
          uint32_t v = static_cast<uint32_t>(rng.Below(kNodes));
          switch (rng.Below(3)) {
            case 0:
              benchmark::DoNotOptimize(f->rel->Related(u, v));
              break;
            case 1:
              benchmark::DoNotOptimize(f->rel->CountLabelsOf(u));
              break;
            default:
              benchmark::DoNotOptimize(f->rel->CountObjectsOf(v));
              break;
          }
        }
      });
    }
    for (auto& t : pool) t.join();
    stop.store(true, std::memory_order_release);
    writer.join();
    writer_batches += batches;
    ++round;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kBenchReaders *
                          static_cast<int64_t>(kQueriesPerReader));
  state.counters["writer_batches"] = static_cast<double>(writer_batches);
  // Full read-path outcome + pacing counter set (see bench_serve_sharded):
  // the fast tier's pointer churn must show up as validations, not as a
  // fallback avalanche.
  const OptimisticStats after = f->rel->optimistic_stats();
  const PacingStats pace_after = f->rel->pacing_stats();
  state.counters["validated"] =
      static_cast<double>(after.validated - before.validated);
  state.counters["retries"] =
      static_cast<double>(after.retries - before.retries);
  state.counters["fallbacks"] =
      static_cast<double>(after.fallbacks - before.fallbacks);
  state.counters["capture_exhausted"] = static_cast<double>(
      after.capture_exhausted - before.capture_exhausted);
  state.counters["retries_exhausted"] = static_cast<double>(
      after.retries_exhausted - before.retries_exhausted);
  state.counters["locked_reads"] =
      static_cast<double>(after.locked_reads - before.locked_reads);
  state.counters["pace_waits"] =
      static_cast<double>(pace_after.waits - pace_before.waits);
  state.counters["pace_wait_us"] =
      static_cast<double>(pace_after.wait_us - pace_before.wait_us);
}

void RegisterAll() {
  for (RelationBackend backend : AllBackends()) {
    const std::string name = RelationBackendName(backend);
    const bool rebuild_per_insert = backend == RelationBackend::kDeletionOnly;
    for (uint64_t edges : {kEdgesSmall, kEdgesLarge}) {
      auto* build = benchmark::RegisterBenchmark(
          ("FrontierBuildBulk/" + name + "/" + std::to_string(edges)).c_str(),
          RunBuildBulk, backend, edges);
      build->Unit(benchmark::kMillisecond);
      // One cold build at 2^20 is tens of ms to seconds depending on the
      // backend; the fixed seed makes a single measurement diffable.
      if (edges == kEdgesLarge) build->Iterations(1);
    }
    auto* update = benchmark::RegisterBenchmark(
        ("FrontierUpdateMix/" + name).c_str(), RunMix, backend, "update",
        /*add_fraction=*/0.55, /*remove_fraction=*/0.45, /*zipf=*/0.8);
    update->Unit(benchmark::kMillisecond);
    // Every point insert rebuilds the deletion-only structure: seconds per
    // replay — measure one.
    if (rebuild_per_insert) update->Iterations(1);
    auto* write_heavy = benchmark::RegisterBenchmark(
        ("FrontierChurnMix/" + name + "/write_heavy").c_str(), RunMix, backend,
        "write_heavy", 0.45, 0.35, 0.99);
    write_heavy->Unit(benchmark::kMillisecond);
    if (rebuild_per_insert) write_heavy->Iterations(1);
    auto* read_heavy = benchmark::RegisterBenchmark(
        ("FrontierChurnMix/" + name + "/read_heavy").c_str(), RunMix, backend,
        "read_heavy", 0.10, 0.05, 0.99);
    read_heavy->Unit(benchmark::kMillisecond);
    if (rebuild_per_insert) read_heavy->Iterations(1);
    for (uint64_t edges : {kEdgesSmall, kEdgesLarge}) {
      const std::string suffix = "/" + name + "/" + std::to_string(edges);
      benchmark::RegisterBenchmark(("FrontierRelated" + suffix).c_str(),
                                   RunQueries, backend, edges,
                                   QueryKind::kRelated)
          ->Unit(benchmark::kMicrosecond);
      benchmark::RegisterBenchmark(("FrontierNeighbors" + suffix).c_str(),
                                   RunQueries, backend, edges,
                                   QueryKind::kNeighbors)
          ->Unit(benchmark::kMicrosecond);
      benchmark::RegisterBenchmark(("FrontierReverse" + suffix).c_str(),
                                   RunQueries, backend, edges,
                                   QueryKind::kReverse)
          ->Unit(benchmark::kMicrosecond);
    }
    benchmark::RegisterBenchmark(
        ("FrontierConcurrentReaders/" + name).c_str(), RunConcurrentReaders,
        backend)
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace dyndex

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  dyndex::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
