// Table 2 (E2): dynamic document collections — the paper's headline result.
//
// Comparison under identical corpora:
//  * ours (Transformation 1 and 2 over a static FM-index): queries carry no
//    dynamic-rank factor; updates pay the rebuild factor,
//  * the dynamic-wavelet-tree FM-index ([30]/[35] rows): every search and
//    update step pays a dynamic rank/select (the Fredman-Saks bottleneck),
//  * the uncompressed suffix tree ([9]-style O(n log n) bits): fast but big.
//
// Expected shape: our Count/Find within a small factor of the static index
// and several times faster than the baseline; baseline updates and ours in
// the same ballpark; suffix tree fastest but an order of magnitude larger.
#include <benchmark/benchmark.h>

#include "baseline/dynamic_fm_index.h"
#include "baseline/suffix_tree_index.h"
#include "bench/bench_util.h"
#include "core/dynamic_collection.h"
#include "core/transformation2.h"
#include "text/fm_index.h"

namespace dyndex {
namespace {

using bench::Corpus;
using bench::GetCorpus;
using bench::MakePatterns;

constexpr uint64_t kSymbols = 1 << 18;
constexpr uint32_t kSigma = 64;

template <typename Coll>
Coll* GetFilled() {
  static std::unique_ptr<Coll> cached = [] {
    auto coll = std::make_unique<Coll>();
    const Corpus& c = GetCorpus(kSymbols, kSigma);
    for (const auto& d : c.docs) coll->Insert(d);
    return coll;
  }();
  return cached.get();
}

DynamicFmIndex* GetBaseline() {
  static std::unique_ptr<DynamicFmIndex> cached = [] {
    DynamicFmIndex::Options opt;
    opt.max_docs = 4096;
    opt.max_symbol = kMinSymbol + kSigma;
    auto idx = std::make_unique<DynamicFmIndex>(opt);
    const Corpus& c = GetCorpus(kSymbols, kSigma);
    idx->InsertBulk(c.docs);  // one SA-IS pass, not |T| LF-walk insertions
    return idx;
  }();
  return cached.get();
}

template <typename Coll>
void RunCount(benchmark::State& state, Coll* coll) {
  auto patterns = MakePatterns(GetCorpus(kSymbols, kSigma),
                               static_cast<uint64_t>(state.range(0)), 64);
  size_t i = 0;
  uint64_t matched = 0;
  for (auto _ : state) {
    matched += coll->Count(patterns[i++ % patterns.size()]);
  }
  state.counters["matches_per_query"] =
      static_cast<double>(matched) / static_cast<double>(state.iterations());
}

void BM_Table2_Count_OursT1(benchmark::State& state) {
  RunCount(state, GetFilled<DynamicCollectionT1<FmIndex>>());
}
void BM_Table2_Count_OursT2(benchmark::State& state) {
  RunCount(state, GetFilled<DynamicCollectionT2<FmIndex>>());
}
void BM_Table2_Count_BaselineDynFm(benchmark::State& state) {
  RunCount(state, GetBaseline());
}
void BM_Table2_Count_SuffixTree(benchmark::State& state) {
  RunCount(state, GetFilled<SuffixTreeIndex>());
}
BENCHMARK(BM_Table2_Count_OursT1)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_Table2_Count_OursT2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_Table2_Count_BaselineDynFm)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_Table2_Count_SuffixTree)->Arg(4)->Arg(8)->Arg(16);

template <typename Coll>
void RunFind(benchmark::State& state, Coll* coll) {
  auto patterns = MakePatterns(GetCorpus(kSymbols, kSigma), 10, 64);
  size_t i = 0;
  uint64_t occ = 0;
  for (auto _ : state) {
    auto v = coll->Find(patterns[i++ % patterns.size()]);
    occ += v.size();
    benchmark::DoNotOptimize(v.data());
  }
  state.counters["occ_per_query"] =
      static_cast<double>(occ) / static_cast<double>(state.iterations());
}

void BM_Table2_Find_OursT1(benchmark::State& state) {
  RunFind(state, GetFilled<DynamicCollectionT1<FmIndex>>());
}
void BM_Table2_Find_OursT2(benchmark::State& state) {
  RunFind(state, GetFilled<DynamicCollectionT2<FmIndex>>());
}
void BM_Table2_Find_BaselineDynFm(benchmark::State& state) {
  RunFind(state, GetBaseline());
}
void BM_Table2_Find_SuffixTree(benchmark::State& state) {
  RunFind(state, GetFilled<SuffixTreeIndex>());
}
BENCHMARK(BM_Table2_Find_OursT1);
BENCHMARK(BM_Table2_Find_OursT2);
BENCHMARK(BM_Table2_Find_BaselineDynFm);
BENCHMARK(BM_Table2_Find_SuffixTree);

// Update cost: insert + erase one document, reported per symbol.
template <typename Coll>
void RunChurn(benchmark::State& state, Coll* coll) {
  Rng rng(5);
  const uint64_t len = 512;
  for (auto _ : state) {
    auto doc = UniformText(rng, len, kSigma);
    DocId id = coll->Insert(doc);
    coll->Erase(id);
  }
  state.counters["ns_per_symbol"] = benchmark::Counter(
      static_cast<double>(state.iterations() * 2 * len),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_Table2_Churn_OursT1(benchmark::State& state) {
  RunChurn(state, GetFilled<DynamicCollectionT1<FmIndex>>());
}
void BM_Table2_Churn_OursT2(benchmark::State& state) {
  RunChurn(state, GetFilled<DynamicCollectionT2<FmIndex>>());
}
void BM_Table2_Churn_BaselineDynFm(benchmark::State& state) {
  RunChurn(state, GetBaseline());
}
void BM_Table2_Churn_SuffixTree(benchmark::State& state) {
  RunChurn(state, GetFilled<SuffixTreeIndex>());
}
BENCHMARK(BM_Table2_Churn_OursT1);
BENCHMARK(BM_Table2_Churn_OursT2);
BENCHMARK(BM_Table2_Churn_BaselineDynFm);
BENCHMARK(BM_Table2_Churn_SuffixTree);

// Space column of Table 2.
void BM_Table2_Space(benchmark::State& state) {
  auto* t1 = GetFilled<DynamicCollectionT1<FmIndex>>();
  auto* st = GetFilled<SuffixTreeIndex>();
  auto* base = GetBaseline();
  for (auto _ : state) benchmark::DoNotOptimize(t1->live_symbols());
  double n = static_cast<double>(t1->live_symbols());
  state.counters["ours_bytes_per_sym"] = t1->Space().total() / n;
  state.counters["baseline_bytes_per_sym"] = base->SpaceBytes() / n;
  state.counters["suffixtree_bytes_per_sym"] = st->SpaceBytes() / n;
}
BENCHMARK(BM_Table2_Space);

}  // namespace
}  // namespace dyndex

BENCHMARK_MAIN();
