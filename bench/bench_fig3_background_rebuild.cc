// Figure 3 (E7): the background-rebuild lifecycle of Transformation 2 —
// lock C_j as L_j, serve the new document from Temp_{j+1}, build N_{j+1} in
// the background, swap.
//
// We verify the figure's operational promise: queries stay answerable (and
// fast) *while* a merge is in flight, because the locked old copies remain
// query targets until the swap.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/transformation2.h"
#include "gen/text_gen.h"
#include "text/fm_index.h"

namespace dyndex {
namespace {

using bench::GetCorpus;
using bench::MakePatterns;

// Query latency with an in-flight background build vs. settled state.
void BM_Fig3_QueryDuringRebuild(benchmark::State& state) {
  T2Options opt;
  opt.mode = RebuildMode::kThreaded;
  DynamicCollectionT2<FmIndex> coll(opt);
  Rng rng(15);
  std::vector<std::vector<Symbol>> docs;
  for (uint64_t total = 0; total < (1 << 17);) {
    docs.push_back(MarkovText(rng, 512, 16));
    total += docs.back().size();
  }
  for (const auto& d : docs) coll.Insert(d);
  auto patterns = MakePatterns(GetCorpus(1 << 16, 16), 6, 32);

  uint64_t during = 0, total_queries = 0;
  size_t i = 0;
  for (auto _ : state) {
    // Keep feeding inserts so background builds are regularly in flight;
    // measure a query right after each insert.
    coll.Insert(MarkovText(rng, 512, 16));
    bool pending = coll.num_pending() > 0;
    benchmark::DoNotOptimize(coll.Count(patterns[i++ % patterns.size()]));
    during += pending;
    ++total_queries;
  }
  coll.ForceAllPending();
  state.counters["fraction_with_pending_build"] =
      static_cast<double>(during) / static_cast<double>(total_queries);
}
BENCHMARK(BM_Fig3_QueryDuringRebuild)->Unit(benchmark::kMicrosecond);

// Settled-state comparison point for the benchmark above.
void BM_Fig3_QuerySettled(benchmark::State& state) {
  T2Options opt;
  opt.mode = RebuildMode::kThreaded;
  static std::unique_ptr<DynamicCollectionT2<FmIndex>> coll = [&] {
    auto c = std::make_unique<DynamicCollectionT2<FmIndex>>(opt);
    Rng rng(15);
    for (uint64_t total = 0; total < (1 << 17);) {
      auto d = MarkovText(rng, 512, 16);
      total += d.size();
      c->Insert(std::move(d));
    }
    c->ForceAllPending();
    return c;
  }();
  auto patterns = MakePatterns(GetCorpus(1 << 16, 16), 6, 32);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coll->Count(patterns[i++ % patterns.size()]));
  }
}
BENCHMARK(BM_Fig3_QuerySettled)->Unit(benchmark::kMicrosecond);

// Correctness-of-lifecycle micro-check as a benchmark: deletions racing the
// background build are replayed at swap (the Figure 3(c) hand-off).
void BM_Fig3_ChurnWithRacingDeletes(benchmark::State& state) {
  T2Options opt;
  opt.mode = RebuildMode::kThreaded;
  DynamicCollectionT2<FmIndex> coll(opt);
  Rng rng(16);
  std::vector<DocId> ids;
  for (auto _ : state) {
    for (int k = 0; k < 32; ++k) {
      ids.push_back(coll.Insert(MarkovText(rng, 512, 16)));
      if (ids.size() > 64) {
        size_t victim = rng.Below(ids.size());
        coll.Erase(ids[victim]);
        ids.erase(ids.begin() + static_cast<int64_t>(victim));
      }
    }
  }
  coll.ForceAllPending();
  state.counters["docs"] = static_cast<double>(coll.num_docs());
}
BENCHMARK(BM_Fig3_ChurnWithRacingDeletes)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dyndex

BENCHMARK_MAIN();
