// Durability cost model: what a checkpoint costs, and what recovery buys.
//
//   SnapshotWrite    — Checkpoint() of a live ConcurrentIndex (state export
//                      under the maintenance lock + checksummed snapshot
//                      write + WAL reset) at 2^17..2^20 live symbols.
//   RecoverSnapshot  — OpenDurable() against a checkpointed directory: one
//                      verified snapshot read + LoadSnapshot (the baseline
//                      backend routes it onto its bulk SA-IS build).
//   RecoverWalReplay — OpenDurable() against a checkpoint-free directory:
//                      every batch replays through the facade write path.
//   ColdRebuild      — the non-durable reference: the same documents bulk
//                      inserted into a fresh facade (what a restart costs
//                      WITHOUT persistence, assuming the data survived
//                      somewhere else).
//
// All on MemEnv, so rows measure the CPU/format cost of the durability
// mechanics, not disk hardware. The headline comparison is
// RecoverSnapshot vs RecoverWalReplay vs ColdRebuild at 2^20 symbols.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "persist/env.h"
#include "serve/concurrent_index.h"
#include "serve/dynamic_index.h"
#include "serve/persistence.h"
#include "util/check.h"
#include "util/rng.h"

namespace dyndex {
namespace {

constexpr uint64_t kDocLen = 64;
constexpr uint32_t kSigma = 16;
constexpr uint64_t kBatchDocs = 256;

/// 2^20 symbols is 16384 documents; give the baseline backend's separator
/// pool headroom beyond its 4096 default.
DynamicIndexOptions IndexOpts() {
  DynamicIndexOptions opt;
  opt.baseline_max_docs = 1u << 15;
  return opt;
}

/// Deterministic corpus of `total_symbols / kDocLen` documents.
const std::vector<std::vector<Symbol>>& GetDocs(uint64_t total_symbols) {
  static auto* cache = new std::map<uint64_t, std::vector<std::vector<Symbol>>>();
  auto it = cache->find(total_symbols);
  if (it == cache->end()) {
    Rng rng(1234);
    std::vector<std::vector<Symbol>> docs(total_symbols / kDocLen);
    for (auto& doc : docs) {
      doc.resize(kDocLen);
      for (Symbol& s : doc) {
        s = kMinSymbol + static_cast<Symbol>(rng.Below(kSigma));
      }
    }
    it = cache->emplace(total_symbols, std::move(docs)).first;
  }
  return it->second;
}

/// Populates a durable facade over `env` at `dir` with the corpus, in
/// kBatchDocs-document batches; optionally checkpoints at the end.
void Populate(persist::Env* env, const std::string& dir,
              uint64_t total_symbols, bool checkpoint) {
  const auto& docs = GetDocs(total_symbols);
  ConcurrentIndex index(MakeDynamicIndex(Backend::kBaseline, IndexOpts()));
  DurableOptions opt;
  opt.sync_every_batches = 16;
  DYNDEX_CHECK(index.OpenDurable(env, dir, opt).ok());
  for (uint64_t at = 0; at < docs.size(); at += kBatchDocs) {
    const uint64_t n = std::min<uint64_t>(kBatchDocs, docs.size() - at);
    std::vector<std::vector<Symbol>> batch(docs.begin() + at,
                                           docs.begin() + at + n);
    index.InsertBatch(std::move(batch));
  }
  if (checkpoint) DYNDEX_CHECK(index.Checkpoint().ok());
  DYNDEX_CHECK(index.CloseDurable().ok());
}

void BM_Persist_SnapshotWrite(benchmark::State& state) {
  const uint64_t total = static_cast<uint64_t>(state.range(0));
  persist::MemEnv env;
  const auto& docs = GetDocs(total);
  ConcurrentIndex index(MakeDynamicIndex(Backend::kBaseline, IndexOpts()));
  DYNDEX_CHECK(index.OpenDurable(&env, "db").ok());
  index.InsertBatch(docs);
  for (auto _ : state) {
    DYNDEX_CHECK(index.Checkpoint().ok());
  }
  uint64_t snap_size = 0;
  DYNDEX_CHECK(env.GetFileSize("db/SNAPSHOT", &snap_size).ok());
  state.counters["snapshot_bytes"] = static_cast<double>(snap_size);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(total));
}

void BM_Persist_RecoverSnapshot(benchmark::State& state) {
  const uint64_t total = static_cast<uint64_t>(state.range(0));
  persist::MemEnv env;
  Populate(&env, "db", total, /*checkpoint=*/true);
  for (auto _ : state) {
    ConcurrentIndex index(MakeDynamicIndex(Backend::kBaseline, IndexOpts()));
    RecoveryStats stats;
    DYNDEX_CHECK(index.OpenDurable(&env, "db", {}, &stats).ok());
    DYNDEX_CHECK(stats.snapshot_loaded && stats.replayed_batches == 0);
    benchmark::DoNotOptimize(index.num_docs());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(total));
}

void BM_Persist_RecoverWalReplay(benchmark::State& state) {
  const uint64_t total = static_cast<uint64_t>(state.range(0));
  persist::MemEnv env;
  Populate(&env, "db", total, /*checkpoint=*/false);
  for (auto _ : state) {
    ConcurrentIndex index(MakeDynamicIndex(Backend::kBaseline, IndexOpts()));
    RecoveryStats stats;
    DYNDEX_CHECK(index.OpenDurable(&env, "db", {}, &stats).ok());
    DYNDEX_CHECK(!stats.snapshot_loaded && stats.replayed_batches > 0);
    benchmark::DoNotOptimize(index.num_docs());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(total));
}

void BM_Persist_ColdRebuild(benchmark::State& state) {
  const uint64_t total = static_cast<uint64_t>(state.range(0));
  const auto& docs = GetDocs(total);
  for (auto _ : state) {
    ConcurrentIndex index(MakeDynamicIndex(Backend::kBaseline, IndexOpts()));
    index.InsertBatch(docs);
    benchmark::DoNotOptimize(index.num_docs());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(total));
}

BENCHMARK(BM_Persist_SnapshotWrite)->Arg(1 << 17)->Arg(1 << 20);
BENCHMARK(BM_Persist_RecoverSnapshot)->Arg(1 << 17)->Arg(1 << 20);
BENCHMARK(BM_Persist_RecoverWalReplay)->Arg(1 << 17)->Arg(1 << 20);
BENCHMARK(BM_Persist_ColdRebuild)->Arg(1 << 17)->Arg(1 << 20);

}  // namespace
}  // namespace dyndex

BENCHMARK_MAIN();
