// E12: space accounting (Sections 2, 3, A.5).
//
// The paper's dynamization overhead on top of the static index is
// O(n (log sigma + log tau)/tau + n w(n)) bits. We sweep tau and report
// measured bytes/symbol next to the corpus's H0/Hk entropy bounds, and the
// overhead of the dynamic structure relative to a one-shot static build of
// the same data.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/dynamic_collection.h"
#include "suffix/entropy.h"
#include "text/fm_index.h"

namespace dyndex {
namespace {

using bench::Corpus;
using bench::GetCorpus;

constexpr uint64_t kSymbols = 1 << 18;
constexpr uint32_t kSigma = 64;

void BM_Space_TauSweep(benchmark::State& state) {
  uint32_t tau = static_cast<uint32_t>(state.range(0));
  DynamicCollectionOptions opt;
  opt.tau = tau;
  DynamicCollectionT1<FmIndex> coll(opt);
  const Corpus& c = GetCorpus(kSymbols, kSigma);
  std::vector<DocId> ids;
  for (const auto& d : c.docs) ids.push_back(coll.Insert(d));
  // Delete just under the purge threshold so dead rows are resident — the
  // worst case for the tau space term.
  uint64_t deleted = 0;
  for (size_t i = 0; i < ids.size() && (deleted + 1) * tau < kSymbols;
       i += 2) {
    deleted += coll.DocLenOf(ids[i]);
    coll.Erase(ids[i]);
  }
  for (auto _ : state) benchmark::DoNotOptimize(coll.live_symbols());
  double n = static_cast<double>(coll.live_symbols());
  SpaceBreakdown sp = coll.Space();
  state.counters["bytes_per_sym"] = sp.total() / n;
  state.counters["reporter_bytes_per_sym"] = sp.reporters / n;
  state.counters["dead_fraction"] =
      static_cast<double>(deleted) / static_cast<double>(kSymbols);
}
BENCHMARK(BM_Space_TauSweep)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// Static one-shot build of the same corpus: the floor the dynamic structure
// is compared against, plus the entropy reference points.
void BM_Space_StaticFloorAndEntropy(benchmark::State& state) {
  const Corpus& c = GetCorpus(kSymbols, kSigma);
  FmIndex idx = FmIndex::Build(ConcatText(c.documents), {});
  for (auto _ : state) benchmark::DoNotOptimize(idx.TextSize());
  std::vector<Symbol> flat;
  for (const auto& d : c.docs) flat.insert(flat.end(), d.begin(), d.end());
  double n = static_cast<double>(flat.size());
  state.counters["static_bytes_per_sym"] = idx.SpaceBytes() / n;
  state.counters["H0_bits_per_sym"] = EntropyH0(flat);
  state.counters["H2_bits_per_sym"] = EntropyHk(flat, 2);
  state.counters["log_sigma_bits"] = static_cast<double>(BitWidth(kSigma - 1));
}
BENCHMARK(BM_Space_StaticFloorAndEntropy)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dyndex

BENCHMARK_MAIN();
