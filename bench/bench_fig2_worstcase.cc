// Figure 2 (E6): Transformation 2's collection layout (C_j / L_j / Temp_j /
// tops) exists to smooth worst-case update latency.
//
// We measure per-insert latency distributions over an identical stream:
//  * Transformation 1: amortized — occasional full-merge spikes,
//  * Transformation 2 synchronous: same spikes, bounded duplication,
//  * Transformation 2 threaded: merges run on a builder thread, so the
//    worst observed insert latency collapses by orders of magnitude.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include "bench/bench_util.h"
#include "core/dynamic_collection.h"
#include "core/transformation2.h"
#include "gen/text_gen.h"
#include "text/fm_index.h"

namespace dyndex {
namespace {

struct LatencyStats {
  double mean_us = 0, p99_us = 0, max_us = 0;
};

template <typename MakeColl>
LatencyStats MeasureInsertLatency(MakeColl make, uint64_t target) {
  auto coll = make();
  Rng rng(13);
  std::vector<double> lat_us;
  uint64_t total = 0;
  while (total < target) {
    auto doc = MarkovText(rng, 256, 16);
    total += doc.size();
    auto t0 = std::chrono::steady_clock::now();
    coll->Insert(std::move(doc));
    auto t1 = std::chrono::steady_clock::now();
    lat_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  std::sort(lat_us.begin(), lat_us.end());
  LatencyStats s;
  for (double v : lat_us) s.mean_us += v;
  s.mean_us /= static_cast<double>(lat_us.size());
  s.p99_us = lat_us[lat_us.size() * 99 / 100];
  s.max_us = lat_us.back();
  return s;
}

void ReportLatency(benchmark::State& state, const LatencyStats& s) {
  state.counters["mean_us"] = s.mean_us;
  state.counters["p99_us"] = s.p99_us;
  state.counters["max_us"] = s.max_us;
}

void BM_Fig2_InsertLatency_T1(benchmark::State& state) {
  LatencyStats s;
  for (auto _ : state) {
    s = MeasureInsertLatency(
        [] { return std::make_unique<DynamicCollectionT1<FmIndex>>(); },
        1 << 17);
  }
  ReportLatency(state, s);
}
void BM_Fig2_InsertLatency_T2Sync(benchmark::State& state) {
  LatencyStats s;
  for (auto _ : state) {
    s = MeasureInsertLatency(
        [] {
          T2Options opt;
          opt.mode = RebuildMode::kSynchronous;
          return std::make_unique<DynamicCollectionT2<FmIndex>>(opt);
        },
        1 << 17);
  }
  ReportLatency(state, s);
}
void BM_Fig2_InsertLatency_T2Threaded(benchmark::State& state) {
  LatencyStats s;
  for (auto _ : state) {
    s = MeasureInsertLatency(
        [] {
          T2Options opt;
          opt.mode = RebuildMode::kThreaded;
          return std::make_unique<DynamicCollectionT2<FmIndex>>(opt);
        },
        1 << 17);
  }
  ReportLatency(state, s);
}
BENCHMARK(BM_Fig2_InsertLatency_T1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Fig2_InsertLatency_T2Sync)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Fig2_InsertLatency_T2Threaded)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Space duplication during locked rebuilds: T2 keeps old copies alive while
// new ones build; the paper bounds the duplicated fraction by O(1/tau).
void BM_Fig2_SpaceDuringRebuilds(benchmark::State& state) {
  T2Options opt;
  opt.mode = RebuildMode::kThreaded;
  DynamicCollectionT2<FmIndex> coll(opt);
  Rng rng(14);
  uint64_t peak = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      coll.Insert(MarkovText(rng, 256, 16));
      peak = std::max(peak, coll.Space().total());
    }
  }
  coll.ForceAllPending();
  double n = static_cast<double>(coll.live_symbols());
  state.counters["peak_bytes_per_sym"] = static_cast<double>(peak) / n;
  state.counters["settled_bytes_per_sym"] =
      static_cast<double>(coll.Space().total()) / n;
}
BENCHMARK(BM_Fig2_SpaceDuringRebuilds)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dyndex

BENCHMARK_MAIN();
