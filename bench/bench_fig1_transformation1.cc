// Figure 1 (E5): Transformation 1's sub-collection organization.
//
// The figure shows C0 (uncompressed, fully dynamic) feeding geometrically
// growing static sub-collections C1..Cr. We measure the organization
// empirically: amortized insertion cost per symbol as the collection grows,
// the number of occupied levels, and the fraction of data left uncompressed
// in C0 (the paper bounds it by O(1/log^2 n)).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/dynamic_collection.h"
#include "gen/text_gen.h"
#include "text/fm_index.h"

namespace dyndex {
namespace {

void BM_Fig1_InsertStream(benchmark::State& state) {
  uint64_t target = static_cast<uint64_t>(state.range(0));
  uint64_t inserted = 0;
  uint32_t levels = 0;
  double c0_fraction = 0;
  for (auto _ : state) {
    DynamicCollectionT1<FmIndex> coll;
    Rng rng(11);
    inserted = 0;
    while (inserted < target) {
      auto doc = MarkovText(rng, 256, 16);
      inserted += doc.size();
      coll.Insert(std::move(doc));
    }
    levels = coll.num_levels();
    c0_fraction = static_cast<double>(coll.c0_symbols()) /
                  static_cast<double>(coll.live_symbols());
    benchmark::DoNotOptimize(levels);
  }
  state.counters["ns_per_symbol"] = benchmark::Counter(
      static_cast<double>(state.iterations() * inserted),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.counters["levels"] = levels;
  state.counters["c0_fraction"] = c0_fraction;
}
BENCHMARK(BM_Fig1_InsertStream)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Arg(1 << 18)
    ->Unit(benchmark::kMillisecond);

// Transformation 3 ablation (Appendix A.4): the doubling schedule trades a
// log log n query factor for cheaper amortized insertion.
void BM_Fig1_InsertStream_T3(benchmark::State& state) {
  uint64_t target = static_cast<uint64_t>(state.range(0));
  uint64_t inserted = 0;
  uint32_t levels = 0;
  for (auto _ : state) {
    DynamicCollectionT3<FmIndex> coll;
    Rng rng(11);
    inserted = 0;
    while (inserted < target) {
      auto doc = MarkovText(rng, 256, 16);
      inserted += doc.size();
      coll.Insert(std::move(doc));
    }
    levels = coll.num_levels();
    benchmark::DoNotOptimize(levels);
  }
  state.counters["ns_per_symbol"] = benchmark::Counter(
      static_cast<double>(state.iterations() * inserted),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.counters["levels"] = levels;
}
BENCHMARK(BM_Fig1_InsertStream_T3)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Arg(1 << 18)
    ->Unit(benchmark::kMillisecond);

// Level occupancy snapshot after a long stream: the geometric size ladder.
void BM_Fig1_LevelLadder(benchmark::State& state) {
  static std::unique_ptr<DynamicCollectionT1<FmIndex>> coll = [] {
    auto c = std::make_unique<DynamicCollectionT1<FmIndex>>();
    Rng rng(12);
    for (uint64_t total = 0; total < (1 << 18);) {
      auto doc = MarkovText(rng, 256, 16);
      total += doc.size();
      c->Insert(std::move(doc));
    }
    return c;
  }();
  for (auto _ : state) benchmark::DoNotOptimize(coll->LevelSizes());
  auto sizes = coll->LevelSizes();
  for (uint32_t i = 0; i < sizes.size(); ++i) {
    state.counters["level" + std::to_string(i + 1) + "_syms"] =
        static_cast<double>(sizes[i]);
    state.counters["level" + std::to_string(i + 1) + "_cap"] =
        static_cast<double>(coll->MaxSizeOfLevel(i + 1));
  }
  state.counters["c0_syms"] = static_cast<double>(coll->c0_symbols());
}
BENCHMARK(BM_Fig1_LevelLadder);

}  // namespace
}  // namespace dyndex

BENCHMARK_MAIN();
