// Concurrent serving throughput: queries/second at 1/2/4/8 reader threads
// against a ConcurrentIndex over Transformation 2 (threaded rebuilds), with
// and without a live writer applying batched updates, and with the
// optimistic seqlock read path on (optimistic:1, the default policy) vs
// pinned to the shared lock (optimistic:0, the locked baseline). Rows also
// report the read-path outcome counters (validated / retries / fallbacks,
// the fallback-cause split capture_exhausted / retries_exhausted /
// locked_reads) and the writer's batch count, so the JSON shows both sides
// of the tradeoff: lock-free readers stop throttling the writer, so
// writer_batches rises under optimistic:1 — and on few-core machines the
// now-unthrottled writer competes with readers for CPU, which can depress
// reader items/s even though no reader ever waits on the lock.
//
// The paced:1 rows measure the fix for exactly that starvation: with
// write pacing (PacingPolicy, see serve/epoch_guard.h) the writer holds
// the sequence even for a bounded window between consecutive batches, so
// readers get CPU and lock-free validation windows back; reader items/s
// recovers while writer_batches drops by the policy-controlled factor
// reported in the same row (pace_waits / pace_wait_us). This fixture uses
// the unconditional stall_threshold:0 mode (see BenchPacing below for
// why); the stall-conditional threshold>=1 handshake is exercised
// deterministically in tests/serve_pacing_test.cc. Compare adjacent rows
// (same fixture state): paced:1 vs paced:0 under optimistic:1, and
// optimistic:1 vs optimistic:0.
//
// This is the serving-path headline the dynamic-graph literature reports
// (concurrent-reader scaling): the paper's Figure 3 background-rebuild story
// only pays off if readers keep scaling while the writer churns levels.
//
// Each benchmark iteration runs `kQueriesPerReader` queries on each of R
// reader threads (plus one writer when writer:1) and reports aggregate
// items/s; UseRealTime makes the denominator wall-clock, so items/s is true
// aggregate throughput.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "serve/concurrent_index.h"
#include "serve/dynamic_index.h"
#include "util/rng.h"

namespace dyndex {
namespace {

constexpr uint64_t kCorpusSymbols = 1 << 17;
constexpr uint64_t kDocLen = 256;
constexpr uint32_t kSigma = 8;
constexpr uint64_t kPatternLen = 4;
constexpr uint32_t kNumPatterns = 64;
constexpr uint64_t kQueriesPerReader = 512;

/// Prebuilt serving index + query/update streams, shared across iterations.
struct ServeFixture {
  std::unique_ptr<ConcurrentIndex> index;
  std::vector<std::vector<Symbol>> patterns;
  std::vector<std::vector<Symbol>> update_docs;  // writer insert pool
  std::vector<DocId> churn_ids;                  // ids the writer cycles
};

ServeFixture* GetFixture() {
  static ServeFixture* fixture = [] {
    auto* f = new ServeFixture();
    const bench::Corpus& corpus =
        bench::GetCorpus(kCorpusSymbols, kSigma, kDocLen);
    DynamicIndexOptions opt;
    opt.mode = RebuildMode::kThreaded;
    opt.min_c0 = 4096;
    f->index = std::make_unique<ConcurrentIndex>(
        MakeDynamicIndex(Backend::kT2, opt));
    f->index->InsertBatch(corpus.docs);
    f->index->Flush();
    f->patterns = bench::MakePatterns(corpus, kPatternLen, kNumPatterns);
    Rng rng(bench::kPatternSeed + 1);
    for (int i = 0; i < 64; ++i) {
      f->update_docs.push_back(MarkovText(rng, kDocLen, kSigma, 4));
    }
    return f;
  }();
  return fixture;
}

void ReaderWork(const ConcurrentIndex& index,
                const std::vector<std::vector<Symbol>>& patterns,
                uint64_t seed, uint64_t queries) {
  Rng rng(seed);
  for (uint64_t q = 0; q < queries; ++q) {
    uint64_t c = index.Count(patterns[rng.Below(patterns.size())]);
    benchmark::DoNotOptimize(c);
  }
}

/// Writer loop: balanced insert/erase batches so collection size stays flat
/// while levels keep churning (locks, background builds, swaps, replays).
void WriterWork(ServeFixture* f, const std::atomic<bool>& stop,
                uint64_t* batches) {
  uint64_t n = 0;
  while (!stop.load(std::memory_order_acquire)) {
    std::vector<DocId> ids = f->index->InsertBatch(
        {f->update_docs[n % f->update_docs.size()]});
    f->churn_ids.insert(f->churn_ids.end(), ids.begin(), ids.end());
    if (f->churn_ids.size() > 32) {
      std::vector<DocId> victims(f->churn_ids.begin(),
                                 f->churn_ids.begin() + 16);
      f->churn_ids.erase(f->churn_ids.begin(), f->churn_ids.begin() + 16);
      f->index->EraseBatch(victims);
    }
    ++n;
  }
  *batches = n;
}

/// Pacing knobs of the paced:1 rows. stall_threshold 0 is the unconditional
/// write-rate-limiter mode: every batch admission waits until the sequence
/// has been even for 5 ms (at most 5 ms of delay per batch). This fixture
/// needs the unconditional mode because T2's threaded rebuilds do the heavy
/// work on background builder threads *outside* the exclusive section — the
/// sequence stays mostly even and readers starve for CPU against the
/// builders, a regime the stalled-capture signal (threshold >= 1) cannot
/// see. The window is sized against the fixture's ~1 ms batches so the
/// paced writer's duty cycle (batch + spawned rebuild work) drops to
/// roughly a sixth, returning the CPU to readers.
PacingPolicy BenchPacing() {
  PacingPolicy pacing;
  pacing.min_even_window_us = 5000;
  pacing.max_delay_us = 5000;
  pacing.stall_threshold = 0;
  return pacing;
}

void BM_ServeConcurrentCount(benchmark::State& state) {
  ServeFixture* f = GetFixture();
  const int readers = static_cast<int>(state.range(0));
  const bool with_writer = state.range(1) != 0;
  const bool optimistic = state.range(2) != 0;
  const bool paced = state.range(3) != 0;
  // optimistic:0 pins every read to the shared lock — the locked baseline
  // the seqlock read path is compared against. paced:0 disables write
  // pacing — the unpaced (pre-pacing) writer behavior.
  OptimisticPolicy policy;
  policy.max_attempts = optimistic ? 3 : 0;
  f->index->set_optimistic_policy(policy);
  f->index->set_pacing_policy(paced ? BenchPacing() : PacingPolicy{});
  const OptimisticStats before = f->index->optimistic_stats();
  const PacingStats pace_before = f->index->pacing_stats();
  uint64_t round = 0;
  uint64_t writer_batches = 0;
  for (auto _ : state) {
    std::atomic<bool> stop{false};
    std::thread writer;
    uint64_t batches = 0;
    if (with_writer) {
      writer = std::thread(WriterWork, f, std::cref(stop), &batches);
    }
    std::vector<std::thread> pool;
    for (int r = 0; r < readers; ++r) {
      pool.emplace_back(ReaderWork, std::cref(*f->index),
                        std::cref(f->patterns), round * 131 + r,
                        kQueriesPerReader);
    }
    for (auto& t : pool) t.join();
    stop.store(true, std::memory_order_release);
    if (writer.joinable()) writer.join();
    writer_batches += batches;
    ++round;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * readers *
                          static_cast<int64_t>(kQueriesPerReader));
  state.counters["readers"] = readers;
  state.counters["writer"] = with_writer ? 1 : 0;
  state.counters["optimistic"] = optimistic ? 1 : 0;
  state.counters["paced"] = paced ? 1 : 0;
  state.counters["writer_batches"] = static_cast<double>(writer_batches);
  // Read-path outcome counters for this run (validated = lock-free
  // successes; locked_reads covers fallbacks and the locked baseline;
  // fallbacks == capture_exhausted + retries_exhausted splits writer
  // pressure from validation churn). pace_waits / pace_wait_us quantify
  // the writer-side cost of the paced rows.
  const OptimisticStats after = f->index->optimistic_stats();
  const PacingStats pace_after = f->index->pacing_stats();
  state.counters["validated"] =
      static_cast<double>(after.validated - before.validated);
  state.counters["retries"] =
      static_cast<double>(after.retries - before.retries);
  state.counters["fallbacks"] =
      static_cast<double>(after.fallbacks - before.fallbacks);
  state.counters["capture_exhausted"] = static_cast<double>(
      after.capture_exhausted - before.capture_exhausted);
  state.counters["retries_exhausted"] = static_cast<double>(
      after.retries_exhausted - before.retries_exhausted);
  state.counters["capture_stalled"] = static_cast<double>(
      after.capture_stalled - before.capture_stalled);
  state.counters["locked_reads"] =
      static_cast<double>(after.locked_reads - before.locked_reads);
  state.counters["pace_waits"] =
      static_cast<double>(pace_after.waits - pace_before.waits);
  state.counters["pace_wait_us"] =
      static_cast<double>(pace_after.wait_us - pace_before.wait_us);
}

// Adjacent rows are the comparable ones (the fixture index drifts as writer
// rows churn it): each writer-on reader count runs paced optimistic,
// unpaced optimistic, then the locked baseline back-to-back. Pacing without
// a writer is a no-op (no stalls accrue), so writer:0 rows only run
// paced:0.
BENCHMARK(BM_ServeConcurrentCount)
    ->ArgNames({"readers", "writer", "optimistic", "paced"})
    ->Args({1, 0, 1, 0})
    ->Args({1, 0, 0, 0})
    ->Args({2, 0, 1, 0})
    ->Args({2, 0, 0, 0})
    ->Args({4, 0, 1, 0})
    ->Args({4, 0, 0, 0})
    ->Args({8, 0, 1, 0})
    ->Args({8, 0, 0, 0})
    ->Args({1, 1, 1, 1})
    ->Args({1, 1, 1, 0})
    ->Args({1, 1, 0, 0})
    ->Args({2, 1, 1, 1})
    ->Args({2, 1, 1, 0})
    ->Args({2, 1, 0, 0})
    ->Args({4, 1, 1, 1})
    ->Args({4, 1, 1, 0})
    ->Args({4, 1, 0, 0})
    ->Args({8, 1, 1, 1})
    ->Args({8, 1, 1, 0})
    ->Args({8, 1, 0, 0})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dyndex

BENCHMARK_MAIN();
