// Table 1 (E1): static compressed index trade-offs.
//
// Paper claim: a static index answers range-finding in time depending only on
// |P| (times a log-sigma factor for the wavelet-tree variant), locates each
// occurrence in O(s) and extracts length-l substrings in O(s + l), where s is
// the SA sample rate — the space/time knob. We reproduce the shape: trange
// linear in |P|, tlocate linear in s, textract affine in s and l.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "text/fm_index.h"

namespace dyndex {
namespace {

using bench::Corpus;
using bench::GetCorpus;
using bench::MakePatterns;

const FmIndex& GetIndex(uint32_t sigma, uint32_t sample_rate) {
  static std::map<std::pair<uint32_t, uint32_t>, std::unique_ptr<FmIndex>>
      cache;
  auto key = std::make_pair(sigma, sample_rate);
  auto it = cache.find(key);
  if (it != cache.end()) return *it->second;
  const Corpus& c = GetCorpus(1 << 20, sigma);
  FmIndex::Options opt;
  opt.sample_rate = sample_rate;
  auto idx = std::make_unique<FmIndex>(FmIndex::Build(ConcatText(c.documents),
                                                      opt));
  const FmIndex& ref = *idx;
  cache[key] = std::move(idx);
  return ref;
}

// trange vs |P| and sigma: per-pattern-symbol cost should be flat in |P|.
void BM_Table1_RangeFind(benchmark::State& state) {
  uint32_t sigma = static_cast<uint32_t>(state.range(0));
  uint64_t plen = static_cast<uint64_t>(state.range(1));
  const FmIndex& idx = GetIndex(sigma, 32);
  auto patterns = MakePatterns(GetCorpus(1 << 20, sigma), plen, 64);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.Find(patterns[i++ % patterns.size()]));
  }
  state.counters["ns_per_pattern_char"] = benchmark::Counter(
      static_cast<double>(state.iterations() * plen),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_Table1_RangeFind)
    ->ArgsProduct({{4, 64, 4096}, {4, 8, 16, 32, 64}});

// tlocate vs s: per-occurrence time should grow ~linearly with s.
void BM_Table1_LocatePerOcc(benchmark::State& state) {
  uint32_t s = static_cast<uint32_t>(state.range(0));
  const FmIndex& idx = GetIndex(64, s);
  auto patterns = MakePatterns(GetCorpus(1 << 20, 64), 8, 32);
  uint64_t located = 0;
  size_t i = 0;
  for (auto _ : state) {
    RowRange r = idx.Find(patterns[i++ % patterns.size()]);
    uint64_t limit = r.begin + std::min<uint64_t>(r.size(), 64);
    for (uint64_t row = r.begin; row < limit; ++row) {
      benchmark::DoNotOptimize(idx.Locate(row));
      ++located;
    }
  }
  state.counters["occ_located"] = benchmark::Counter(
      static_cast<double>(located), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Table1_LocatePerOcc)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// textract vs s and l.
void BM_Table1_Extract(benchmark::State& state) {
  uint32_t s = static_cast<uint32_t>(state.range(0));
  uint64_t len = static_cast<uint64_t>(state.range(1));
  const FmIndex& idx = GetIndex(64, s);
  Rng rng(4);
  std::vector<Symbol> out;
  for (auto _ : state) {
    uint64_t pos = rng.Below(idx.TextSize() - len);
    out.clear();
    idx.Extract(pos, len, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["ns_per_char"] = benchmark::Counter(
      static_cast<double>(state.iterations() * len),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_Table1_Extract)->ArgsProduct({{4, 64, 256}, {16, 256}});

// Space vs s: the O(n log n / s) sampling term.
void BM_Table1_SpacePerSymbol(benchmark::State& state) {
  uint32_t s = static_cast<uint32_t>(state.range(0));
  const FmIndex& idx = GetIndex(64, s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.SpaceBytes());
  }
  state.counters["bytes_per_symbol"] =
      static_cast<double>(idx.SpaceBytes()) /
      static_cast<double>(idx.TextSize());
}
BENCHMARK(BM_Table1_SpacePerSymbol)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace dyndex

BENCHMARK_MAIN();
