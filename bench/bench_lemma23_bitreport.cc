// Lemmas 2-3 (E11): live-row reporters.
//
// Lemma 2: O(n)-bit layout, report(s,e) in O(k), zero in O(log^eps n).
// Lemma 3: O((n/tau) log tau)-bit layout with the same operations.
// We compare both layouts against a naive full-scan and record the space gap
// at Lemma 3's intended operating point (dead fraction <= 1/tau).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bits/live_row_reporter.h"
#include "util/rng.h"

namespace dyndex {
namespace {

constexpr uint64_t kBits = 1 << 22;

template <typename T>
T* GetReporter(int dead_percent) {
  static std::map<int, std::unique_ptr<T>> cache;
  auto it = cache.find(dead_percent);
  if (it != cache.end()) return it->second.get();
  auto r = std::make_unique<T>(kBits, /*with_counting=*/true);
  Rng rng(41 + dead_percent);
  uint64_t dead = kBits * static_cast<uint64_t>(dead_percent) / 100;
  for (uint64_t i = 0; i < dead; ++i) r->Kill(rng.Below(kBits));
  T* raw = r.get();
  cache[dead_percent] = std::move(r);
  return raw;
}

template <typename T>
void RunReport(benchmark::State& state) {
  int dead_percent = static_cast<int>(state.range(0));
  T* r = GetReporter<T>(dead_percent);
  Rng rng(42);
  uint64_t reported = 0;
  const uint64_t span = 4096;
  for (auto _ : state) {
    uint64_t s = rng.Below(kBits - span);
    r->ForEachLive(s, s + span, [&](uint64_t) { ++reported; });
  }
  state.counters["live_per_query"] =
      static_cast<double>(reported) / static_cast<double>(state.iterations());
  state.counters["bytes"] = static_cast<double>(r->SpaceBytes());
}
void BM_Lemma2_Report_Plain(benchmark::State& state) {
  RunReport<LiveBitsPlain>(state);
}
void BM_Lemma3_Report_Sparse(benchmark::State& state) {
  RunReport<LiveBitsSparse>(state);
}
BENCHMARK(BM_Lemma2_Report_Plain)->Arg(1)->Arg(10)->Arg(50);
BENCHMARK(BM_Lemma3_Report_Sparse)->Arg(1)->Arg(10)->Arg(50);

template <typename T>
void RunCount(benchmark::State& state) {
  T* r = GetReporter<T>(static_cast<int>(state.range(0)));
  Rng rng(43);
  const uint64_t span = 1 << 16;
  for (auto _ : state) {
    uint64_t s = rng.Below(kBits - span);
    benchmark::DoNotOptimize(r->CountLive(s, s + span));
  }
}
void BM_Lemma2_Count_Plain(benchmark::State& state) {
  RunCount<LiveBitsPlain>(state);
}
void BM_Lemma3_Count_Sparse(benchmark::State& state) {
  RunCount<LiveBitsSparse>(state);
}
BENCHMARK(BM_Lemma2_Count_Plain)->Arg(1)->Arg(10);
BENCHMARK(BM_Lemma3_Count_Sparse)->Arg(1)->Arg(10);

// zero(i): the update side of the lemmas.
template <typename T>
void RunKill(benchmark::State& state) {
  T r(kBits, true);
  Rng rng(44);
  for (auto _ : state) {
    r.Kill(rng.Below(kBits));
  }
}
void BM_Lemma2_Kill_Plain(benchmark::State& state) {
  RunKill<LiveBitsPlain>(state);
}
void BM_Lemma3_Kill_Sparse(benchmark::State& state) {
  RunKill<LiveBitsSparse>(state);
}
BENCHMARK(BM_Lemma2_Kill_Plain);
BENCHMARK(BM_Lemma3_Kill_Sparse);

// Space at Lemma 3's operating point: few dead rows.
void BM_Lemma23_SpaceAtLowDeadFraction(benchmark::State& state) {
  auto* plain = GetReporter<LiveBitsPlain>(1);
  auto* sparse = GetReporter<LiveBitsSparse>(1);
  for (auto _ : state) benchmark::DoNotOptimize(plain->dead_count());
  state.counters["plain_bits_per_row"] =
      static_cast<double>(plain->SpaceBytes()) * 8 / kBits;
  state.counters["sparse_bits_per_row"] =
      static_cast<double>(sparse->SpaceBytes()) * 8 / kBits;
}
BENCHMARK(BM_Lemma23_SpaceAtLowDeadFraction);

}  // namespace
}  // namespace dyndex

BENCHMARK_MAIN();
