// Sharded serving throughput: the single-writer bottleneck vs K shards with
// parallel write fan-out (the tentpole scaling axis of the sharded layer).
//
// Three rows per shard count (1/2/4/8):
//  * ColdBulkLoad  -- one InsertBatch of the whole corpus into a cold index:
//    K independent SA-IS bulk builds running in parallel.
//  * WriteBatches  -- warm mixed insert+erase batches against the dynamic
//    baseline backend: per-shard sub-batches apply under K independent
//    exclusive locks instead of serializing on one.
//  * ReadersWithWriter -- 4 reader threads hammer fanned-out Count while one
//    writer churns batches; sharding narrows the write lock to one shard at
//    a time, so readers stall less. Runs with the optimistic seqlock read
//    path plus reader-progress-aware write pacing (optimistic:1 paced:1 —
//    each shard paces independently on its own stalled readers), unpaced
//    (paced:0), and pinned to the shared lock (optimistic:0), and reports
//    the per-shard read-path outcome counters (including the
//    capture_exhausted / retries_exhausted fallback-cause split) and the
//    summed pacing counters, so the JSON carries the full comparison per
//    shard count.
//
// Scaling expectation: the fan-out is real OS-thread parallelism, so the
// >= 2x write-batch speedup at 4 shards materializes on machines with >= 4
// cores (CI runners, dev boxes). On a single-core container the rows still
// measure the fan-out overhead honestly — expect ~flat trajectories there.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "serve/sharded_index.h"
#include "util/rng.h"

namespace dyndex {
namespace {

constexpr uint64_t kCorpusSymbols = 1 << 17;
constexpr uint64_t kDocLen = 256;
constexpr uint32_t kSigma = 8;
constexpr uint64_t kPatternLen = 4;
constexpr uint32_t kNumPatterns = 64;
constexpr uint64_t kBatchDocs = 32;
constexpr uint64_t kQueriesPerReader = 256;
constexpr int kBenchReaders = 4;

DynamicIndexOptions BaselineOptions() {
  DynamicIndexOptions opt;
  opt.baseline_max_docs = 8192;
  return opt;
}

// --- cold bulk load --------------------------------------------------------

void BM_ShardedColdBulkLoad(benchmark::State& state) {
  const uint32_t shards = static_cast<uint32_t>(state.range(0));
  const bench::Corpus& corpus =
      bench::GetCorpus(kCorpusSymbols, kSigma, kDocLen);
  for (auto _ : state) {
    ShardedIndex index(shards, Backend::kBaseline, BaselineOptions());
    std::vector<DocId> ids = index.InsertBatch(corpus.docs);
    benchmark::DoNotOptimize(ids.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(corpus.total_symbols));
  state.counters["shards"] = shards;
}

BENCHMARK(BM_ShardedColdBulkLoad)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- warm write batches ----------------------------------------------------

/// Warm sharded index + a pool of update docs, built once per shard count.
struct WriteFixture {
  std::unique_ptr<ShardedIndex> index;
  std::vector<std::vector<Symbol>> update_docs;
  uint64_t batch_symbols = 0;
};

WriteFixture* GetWriteFixture(uint32_t shards) {
  static std::map<uint32_t, std::unique_ptr<WriteFixture>> cache;
  auto it = cache.find(shards);
  if (it != cache.end()) return it->second.get();
  auto f = std::make_unique<WriteFixture>();
  const bench::Corpus& corpus =
      bench::GetCorpus(kCorpusSymbols, kSigma, kDocLen);
  f->index = std::make_unique<ShardedIndex>(shards, Backend::kBaseline,
                                            BaselineOptions());
  f->index->InsertBatch(corpus.docs);
  Rng rng(bench::kPatternSeed + 7);
  for (uint64_t i = 0; i < kBatchDocs; ++i) {
    f->update_docs.push_back(MarkovText(rng, kDocLen, kSigma, 4));
    f->batch_symbols += kDocLen;
  }
  WriteFixture* out = f.get();
  cache[shards] = std::move(f);
  return out;
}

/// One timed unit: insert a batch of kBatchDocs docs (fanned out across the
/// shards), then erase exactly those ids (fanned out again) — the collection
/// returns to its pre-iteration size, so iterations are comparable.
void BM_ShardedWriteBatches(benchmark::State& state) {
  const uint32_t shards = static_cast<uint32_t>(state.range(0));
  WriteFixture* f = GetWriteFixture(shards);
  for (auto _ : state) {
    std::vector<DocId> ids = f->index->InsertBatch(f->update_docs);
    uint64_t erased = f->index->EraseBatch(ids);
    benchmark::DoNotOptimize(erased);
  }
  // Symbols written per iteration: the batch in, then the batch back out.
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * f->batch_symbols));
  state.counters["shards"] = shards;
}

BENCHMARK(BM_ShardedWriteBatches)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- readers vs writer -----------------------------------------------------

void ReaderWork(const ShardedIndex& index,
                const std::vector<std::vector<Symbol>>& patterns,
                uint64_t seed, uint64_t queries) {
  Rng rng(seed);
  for (uint64_t q = 0; q < queries; ++q) {
    uint64_t c = index.Count(patterns[rng.Below(patterns.size())]);
    benchmark::DoNotOptimize(c);
  }
}

void BM_ShardedReadersWithWriter(benchmark::State& state) {
  const uint32_t shards = static_cast<uint32_t>(state.range(0));
  const bool optimistic = state.range(1) != 0;
  const bool paced = state.range(2) != 0;
  WriteFixture* f = GetWriteFixture(shards);
  const bench::Corpus& corpus =
      bench::GetCorpus(kCorpusSymbols, kSigma, kDocLen);
  auto patterns = bench::MakePatterns(corpus, kPatternLen, kNumPatterns);
  // optimistic:0 pins every read to the shared lock — the locked baseline.
  // paced:1 enables per-shard write pacing in the unconditional
  // (stall_threshold:0, write-rate-limiter) mode: each shard holds its
  // sequence even for 2 ms (at most 4 ms delay) before admitting its next
  // sub-batch — shards pace independently, on their own clocks.
  OptimisticPolicy policy;
  policy.max_attempts = optimistic ? 3 : 0;
  f->index->set_optimistic_policy(policy);
  PacingPolicy pacing;
  if (paced) {
    pacing.min_even_window_us = 2000;
    pacing.max_delay_us = 4000;
    pacing.stall_threshold = 0;
  }
  f->index->set_pacing_policy(pacing);
  const OptimisticStats before = f->index->optimistic_stats();
  const PacingStats pace_before = f->index->pacing_stats();
  uint64_t round = 0;
  uint64_t writer_batches = 0;
  for (auto _ : state) {
    std::atomic<bool> stop{false};
    uint64_t batches = 0;
    std::thread writer([&] {
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<DocId> ids = f->index->InsertBatch(f->update_docs);
        f->index->EraseBatch(ids);
        ++batches;
      }
    });
    std::vector<std::thread> pool;
    for (int r = 0; r < kBenchReaders; ++r) {
      pool.emplace_back(ReaderWork, std::cref(*f->index), std::cref(patterns),
                        round * 131 + r, kQueriesPerReader);
    }
    for (auto& t : pool) t.join();
    stop.store(true, std::memory_order_release);
    writer.join();
    writer_batches += batches;
    ++round;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kBenchReaders *
                          static_cast<int64_t>(kQueriesPerReader));
  state.counters["shards"] = shards;
  state.counters["optimistic"] = optimistic ? 1 : 0;
  state.counters["paced"] = paced ? 1 : 0;
  state.counters["writer_batches"] = static_cast<double>(writer_batches);
  // Read-path outcomes summed over shards (validated = lock-free successes;
  // locked_reads covers fallbacks and the locked baseline; fallbacks ==
  // capture_exhausted + retries_exhausted splits writer pressure from
  // validation churn). pace_waits / pace_wait_us sum the per-shard writer
  // delays of the paced rows.
  const OptimisticStats after = f->index->optimistic_stats();
  const PacingStats pace_after = f->index->pacing_stats();
  state.counters["validated"] =
      static_cast<double>(after.validated - before.validated);
  state.counters["retries"] =
      static_cast<double>(after.retries - before.retries);
  state.counters["fallbacks"] =
      static_cast<double>(after.fallbacks - before.fallbacks);
  state.counters["capture_exhausted"] = static_cast<double>(
      after.capture_exhausted - before.capture_exhausted);
  state.counters["retries_exhausted"] = static_cast<double>(
      after.retries_exhausted - before.retries_exhausted);
  state.counters["locked_reads"] =
      static_cast<double>(after.locked_reads - before.locked_reads);
  state.counters["pace_waits"] =
      static_cast<double>(pace_after.waits - pace_before.waits);
  state.counters["pace_wait_us"] =
      static_cast<double>(pace_after.wait_us - pace_before.wait_us);
}

// Paced/unpaced/locked triples run back-to-back: the warm fixture drifts as
// the writer churns it, so adjacent rows are the comparable ones.
BENCHMARK(BM_ShardedReadersWithWriter)
    ->ArgNames({"shards", "optimistic", "paced"})
    ->Args({1, 1, 1})
    ->Args({1, 1, 0})
    ->Args({1, 0, 0})
    ->Args({2, 1, 1})
    ->Args({2, 1, 0})
    ->Args({2, 0, 0})
    ->Args({4, 1, 1})
    ->Args({4, 1, 0})
    ->Args({4, 0, 0})
    ->Args({8, 1, 1})
    ->Args({8, 1, 0})
    ->Args({8, 0, 0})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dyndex

BENCHMARK_MAIN();
