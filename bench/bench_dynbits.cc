// Microbenchmarks of the dynamic-bits engine (src/dynbits): the substrate
// every dynamic baseline in the repo bottoms out in.
//
// Point operations (Insert/Erase/Rank1/Select1/Get) are measured on prebuilt
// vectors of n in {1e4, 1e6, 1e7} bits, and construction is measured both
// through the bulk path (Build) and the incremental path (N x PushBack).
//
// The benchmark is engine-agnostic: the bulk benchmarks fall back to PushBack
// when the engine predates Build(), so one binary produces comparable
// BENCH_dynbits.json trajectories across the AVL -> B-tree rewrite
// (scripts/compare_benchmarks.py diffs two such files).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <vector>

#include "dynbits/dynamic_bit_vector.h"
#include "util/rng.h"

namespace dyndex {
namespace {

constexpr uint64_t kFixtureSeed = 0xdb17;

std::vector<uint64_t> RandomWords(uint64_t nbits, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> words((nbits + 63) / 64, 0);
  for (auto& w : words) w = rng.Next();
  if (nbits % 64 != 0) words.back() &= LowMask(nbits % 64);
  return words;
}

template <typename V>
concept HasBulkLoad = requires(V v, const uint64_t* w, uint64_t n) {
  v.Build(w, n);
};

template <typename V>
void FillBulk(V* v, const std::vector<uint64_t>& words, uint64_t nbits) {
  if constexpr (HasBulkLoad<V>) {
    v->Build(words.data(), nbits);
  } else {
    for (uint64_t i = 0; i < nbits; ++i) {
      v->PushBack((words[i >> 6] >> (i & 63)) & 1);
    }
  }
}

/// Cached ~50% density fixture of n bits (built once per size).
const DynamicBitVector& GetFilled(uint64_t n) {
  static std::map<uint64_t, std::unique_ptr<DynamicBitVector>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    auto v = std::make_unique<DynamicBitVector>();
    FillBulk(v.get(), RandomWords(n, kFixtureSeed + n), n);
    it = cache.emplace(n, std::move(v)).first;
  }
  return *it->second;
}

// Query positions are precomputed (power-of-two count, masked index) so the
// loop measures the structure, not the RNG's modulo.
constexpr uint64_t kQueries = 1 << 14;

std::vector<uint64_t> RandomPositions(uint64_t bound, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> out(kQueries);
  for (auto& p : out) p = rng.Below(bound);
  return out;
}

void BM_DynBits_Rank1(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  const DynamicBitVector& v = GetFilled(n);
  auto pos = RandomPositions(n + 1, 1);
  uint64_t acc = 0, q = 0;
  for (auto _ : state) acc += v.Rank1(pos[q++ & (kQueries - 1)]);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_DynBits_Rank1)->Arg(10000)->Arg(1000000)->Arg(10000000);

void BM_DynBits_Select1(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  const DynamicBitVector& v = GetFilled(n);
  auto pos = RandomPositions(v.ones(), 2);
  uint64_t acc = 0, q = 0;
  for (auto _ : state) acc += v.Select1(pos[q++ & (kQueries - 1)]);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_DynBits_Select1)->Arg(10000)->Arg(1000000)->Arg(10000000);

void BM_DynBits_Get(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  const DynamicBitVector& v = GetFilled(n);
  auto pos = RandomPositions(n, 3);
  uint64_t acc = 0, q = 0;
  for (auto _ : state) acc += v.Get(pos[q++ & (kQueries - 1)]);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_DynBits_Get)->Arg(10000)->Arg(1000000)->Arg(10000000);

// One random Insert + one random Erase per iteration, so the vector stays at
// n bits and the numbers are per-update-pair.
void BM_DynBits_InsertErase(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  DynamicBitVector v;
  FillBulk(&v, RandomWords(n, kFixtureSeed + n), n);
  Rng rng(4);
  for (auto _ : state) {
    v.Insert(rng.Below(v.size() + 1), rng.Below(2) != 0);
    v.Erase(rng.Below(v.size()));
  }
  benchmark::DoNotOptimize(v.size());
}
BENCHMARK(BM_DynBits_InsertErase)->Arg(10000)->Arg(1000000)->Arg(10000000);

// Construction via the best available bulk path (Build on the B-tree engine,
// PushBack fallback on engines that predate it).
void BM_DynBits_BuildBulk(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  auto words = RandomWords(n, kFixtureSeed + n);
  for (auto _ : state) {
    DynamicBitVector v;
    FillBulk(&v, words, n);
    benchmark::DoNotOptimize(v.ones());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_DynBits_BuildBulk)
    ->Arg(10000)
    ->Arg(1000000)
    ->Arg(10000000)
    ->Unit(benchmark::kMicrosecond);

// Construction via N x PushBack (the only path the AVL engine had).
void BM_DynBits_BuildPushBack(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  auto words = RandomWords(n, kFixtureSeed + n);
  for (auto _ : state) {
    DynamicBitVector v;
    for (uint64_t i = 0; i < n; ++i) {
      v.PushBack((words[i >> 6] >> (i & 63)) & 1);
    }
    benchmark::DoNotOptimize(v.ones());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_DynBits_BuildPushBack)
    ->Arg(10000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

void BM_DynBits_SpaceBytesPerBit(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  const DynamicBitVector& v = GetFilled(n);
  for (auto _ : state) benchmark::DoNotOptimize(v.SpaceBytes());
  state.counters["bytes_per_bit"] =
      static_cast<double>(v.SpaceBytes()) / static_cast<double>(n);
}
BENCHMARK(BM_DynBits_SpaceBytesPerBit)->Arg(1000000);

}  // namespace
}  // namespace dyndex

BENCHMARK_MAIN();
