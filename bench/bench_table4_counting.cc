// Table 4 (E4) + Theorem 1 (E8): counting queries.
//
// Paper claim: augmenting each sub-collection's dead-row vector with a
// dynamic rank structure supports counting in trange + O(log n) per
// sub-collection, much cheaper than enumerating occurrences; the price is an
// O(log n / log log n) additive term per update symbol.
//
// Expected shape: augmented counting beats enumeration by a factor that grows
// with the number of matches; counting-enabled updates are measurably (but
// modestly) slower.
#include <benchmark/benchmark.h>

#include "baseline/dynamic_fm_index.h"
#include "bench/bench_util.h"
#include "core/dynamic_collection.h"
#include "text/fm_index.h"

namespace dyndex {
namespace {

using bench::Corpus;
using bench::GetCorpus;
using bench::MakePatterns;

constexpr uint64_t kSymbols = 1 << 18;
constexpr uint32_t kSigma = 16;

DynamicCollectionT1<FmIndex>* GetColl(bool counting) {
  static std::unique_ptr<DynamicCollectionT1<FmIndex>> with = nullptr;
  static std::unique_ptr<DynamicCollectionT1<FmIndex>> without = nullptr;
  auto& slot = counting ? with : without;
  if (slot == nullptr) {
    DynamicCollectionOptions opt;
    opt.counting = counting;
    slot = std::make_unique<DynamicCollectionT1<FmIndex>>(opt);
    // Insert then delete a slice so the dead-row structures are non-trivial.
    const Corpus& c = GetCorpus(kSymbols, kSigma);
    std::vector<DocId> ids;
    for (const auto& d : c.docs) ids.push_back(slot->Insert(d));
    for (size_t i = 0; i < ids.size(); i += 10) slot->Erase(ids[i]);
  }
  return slot.get();
}

void RunCount(benchmark::State& state, bool counting, uint64_t plen) {
  auto* coll = GetColl(counting);
  auto patterns = MakePatterns(GetCorpus(kSymbols, kSigma), plen, 64);
  size_t i = 0;
  uint64_t matches = 0;
  for (auto _ : state) {
    matches += coll->Count(patterns[i++ % patterns.size()]);
  }
  state.counters["matches_per_query"] =
      static_cast<double>(matches) / static_cast<double>(state.iterations());
}

// Short patterns = many matches: this is where Theorem 1 pays.
void BM_Table4_Count_Augmented(benchmark::State& state) {
  RunCount(state, true, static_cast<uint64_t>(state.range(0)));
}
void BM_Table4_Count_Enumerating(benchmark::State& state) {
  RunCount(state, false, static_cast<uint64_t>(state.range(0)));
}
BENCHMARK(BM_Table4_Count_Augmented)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_Table4_Count_Enumerating)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Baseline comparator: backward search on the dynamic wavelet tree counts in
// O(|P| log n log sigma) regardless of the number of matches.
void BM_Table4_Count_BaselineDynFm(benchmark::State& state) {
  static std::unique_ptr<DynamicFmIndex> idx = [] {
    DynamicFmIndex::Options opt;
    opt.max_docs = 4096;
    opt.max_symbol = kMinSymbol + kSigma;
    auto p = std::make_unique<DynamicFmIndex>(opt);
    for (const auto& d : GetCorpus(kSymbols, kSigma).docs) p->Insert(d);
    return p;
  }();
  auto patterns = MakePatterns(GetCorpus(kSymbols, kSigma),
                               static_cast<uint64_t>(state.range(0)), 64);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx->Count(patterns[i++ % patterns.size()]));
  }
}
BENCHMARK(BM_Table4_Count_BaselineDynFm)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// The update-cost price of counting support (Theorem 1's last column).
void RunChurn(benchmark::State& state, bool counting) {
  auto* coll = GetColl(counting);
  Rng rng(7);
  const uint64_t len = 512;
  for (auto _ : state) {
    auto doc = UniformText(rng, len, kSigma);
    DocId id = coll->Insert(doc);
    coll->Erase(id);
  }
  state.counters["ns_per_symbol"] = benchmark::Counter(
      static_cast<double>(state.iterations() * 2 * len),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
void BM_Table4_Churn_WithCounting(benchmark::State& state) {
  RunChurn(state, true);
}
void BM_Table4_Churn_WithoutCounting(benchmark::State& state) {
  RunChurn(state, false);
}
BENCHMARK(BM_Table4_Churn_WithCounting);
BENCHMARK(BM_Table4_Churn_WithoutCounting);

}  // namespace
}  // namespace dyndex

BENCHMARK_MAIN();
