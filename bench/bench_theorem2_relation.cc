// Theorem 2 (E9): dynamic binary relations.
//
// Ours (framework over static wavelet-tree relations) vs the baseline of
// Navarro-Nekrich [35] (dynamic wavelet tree + dynamic bit vector, paying
// dynamic rank/select per reported datum).
//
// Expected shape: reporting and adjacency faster in ours (static rank/select
// per datum, times the O(log log n) sub-collection fan-out); counting O(log n)
// in both; updates amortized polylog in ours vs log-per-step in the baseline.
#include <benchmark/benchmark.h>

#include "gen/relation_gen.h"
#include "relation/baseline_relation.h"
#include "relation/dynamic_relation.h"
#include "util/rng.h"

namespace dyndex {
namespace {

constexpr uint32_t kObjects = 4096;
constexpr uint32_t kLabels = 2048;
constexpr uint64_t kPairs = 1 << 17;

DynamicRelation* GetOurs() {
  static std::unique_ptr<DynamicRelation> rel = [] {
    auto r = std::make_unique<DynamicRelation>();
    Rng rng(21);
    for (auto [o, a] : GenPairs(rng, kPairs, kObjects, kLabels, 0.8)) {
      r->AddPair(o, a);
    }
    return r;
  }();
  return rel.get();
}

BaselineRelation* GetBase() {
  static std::unique_ptr<BaselineRelation> rel = [] {
    auto r = std::make_unique<BaselineRelation>(kObjects, kLabels);
    Rng rng(21);
    for (auto [o, a] : GenPairs(rng, kPairs, kObjects, kLabels, 0.8)) {
      r->AddPair(o, a);
    }
    return r;
  }();
  return rel.get();
}

template <typename R>
void RunLabelsOfObject(benchmark::State& state, R* rel) {
  Rng rng(22);
  uint64_t reported = 0;
  for (auto _ : state) {
    uint32_t o = static_cast<uint32_t>(rng.Below(kObjects));
    rel->ForEachLabelOfObject(o, [&](uint32_t) { ++reported; });
  }
  state.counters["reported_per_query"] =
      static_cast<double>(reported) / static_cast<double>(state.iterations());
}
void BM_Thm2_LabelsOfObject_Ours(benchmark::State& state) {
  RunLabelsOfObject(state, GetOurs());
}
void BM_Thm2_LabelsOfObject_Baseline(benchmark::State& state) {
  RunLabelsOfObject(state, GetBase());
}
BENCHMARK(BM_Thm2_LabelsOfObject_Ours);
BENCHMARK(BM_Thm2_LabelsOfObject_Baseline);

template <typename R>
void RunObjectsOfLabel(benchmark::State& state, R* rel) {
  Rng rng(23);
  uint64_t reported = 0;
  for (auto _ : state) {
    uint32_t a = static_cast<uint32_t>(rng.Below(kLabels));
    rel->ForEachObjectOfLabel(a, [&](uint32_t) { ++reported; });
  }
  state.counters["reported_per_query"] =
      static_cast<double>(reported) / static_cast<double>(state.iterations());
}
void BM_Thm2_ObjectsOfLabel_Ours(benchmark::State& state) {
  RunObjectsOfLabel(state, GetOurs());
}
void BM_Thm2_ObjectsOfLabel_Baseline(benchmark::State& state) {
  RunObjectsOfLabel(state, GetBase());
}
BENCHMARK(BM_Thm2_ObjectsOfLabel_Ours);
BENCHMARK(BM_Thm2_ObjectsOfLabel_Baseline);

template <typename R>
void RunAdjacency(benchmark::State& state, R* rel) {
  Rng rng(24);
  for (auto _ : state) {
    uint32_t o = static_cast<uint32_t>(rng.Below(kObjects));
    uint32_t a = static_cast<uint32_t>(rng.Below(kLabels));
    benchmark::DoNotOptimize(rel->Related(o, a));
  }
}
void BM_Thm2_Adjacency_Ours(benchmark::State& state) {
  RunAdjacency(state, GetOurs());
}
void BM_Thm2_Adjacency_Baseline(benchmark::State& state) {
  RunAdjacency(state, GetBase());
}
BENCHMARK(BM_Thm2_Adjacency_Ours);
BENCHMARK(BM_Thm2_Adjacency_Baseline);

template <typename R>
void RunCounts(benchmark::State& state, R* rel) {
  Rng rng(25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rel->CountLabelsOf(static_cast<uint32_t>(rng.Below(kObjects))));
    benchmark::DoNotOptimize(
        rel->CountObjectsOf(static_cast<uint32_t>(rng.Below(kLabels))));
  }
}
void BM_Thm2_Counts_Ours(benchmark::State& state) {
  RunCounts(state, GetOurs());
}
void BM_Thm2_Counts_Baseline(benchmark::State& state) {
  RunCounts(state, GetBase());
}
BENCHMARK(BM_Thm2_Counts_Ours);
BENCHMARK(BM_Thm2_Counts_Baseline);

template <typename R>
void RunUpdateChurn(benchmark::State& state, R* rel) {
  Rng rng(26);
  for (auto _ : state) {
    uint32_t o = static_cast<uint32_t>(rng.Below(kObjects));
    uint32_t a = static_cast<uint32_t>(rng.Below(kLabels));
    if (rel->AddPair(o, a)) rel->RemovePair(o, a);
  }
}
void BM_Thm2_Update_Ours(benchmark::State& state) {
  RunUpdateChurn(state, GetOurs());
}
void BM_Thm2_Update_Baseline(benchmark::State& state) {
  RunUpdateChurn(state, GetBase());
}
BENCHMARK(BM_Thm2_Update_Ours);
BENCHMARK(BM_Thm2_Update_Baseline);

// Construction: the cold-start bulk path (one sub-collection build) vs the
// pairwise merge cascade, for ours and the baseline.
void BM_Thm2_Build_Pairwise_Ours(benchmark::State& state) {
  Rng rng(21);
  auto pairs = GenPairs(rng, kPairs, kObjects, kLabels, 0.8);
  for (auto _ : state) {
    DynamicRelation r;
    for (auto [o, a] : pairs) r.AddPair(o, a);
    benchmark::DoNotOptimize(r.num_pairs());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kPairs));
}
void BM_Thm2_Build_Bulk_Ours(benchmark::State& state) {
  Rng rng(21);
  auto pairs = GenPairs(rng, kPairs, kObjects, kLabels, 0.8);
  for (auto _ : state) {
    DynamicRelation r;
    r.AddPairsBulk(pairs);
    benchmark::DoNotOptimize(r.num_pairs());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kPairs));
}
void BM_Thm2_Build_Bulk_Baseline(benchmark::State& state) {
  Rng rng(21);
  auto pairs = GenPairs(rng, kPairs, kObjects, kLabels, 0.8);
  for (auto _ : state) {
    BaselineRelation r(kObjects, kLabels);
    r.AddPairsBulk(pairs);
    benchmark::DoNotOptimize(r.num_pairs());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kPairs));
}
BENCHMARK(BM_Thm2_Build_Pairwise_Ours)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Thm2_Build_Bulk_Ours)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Thm2_Build_Bulk_Baseline)->Unit(benchmark::kMillisecond);

void BM_Thm2_Space(benchmark::State& state) {
  auto* ours = GetOurs();
  auto* base = GetBase();
  for (auto _ : state) benchmark::DoNotOptimize(ours->num_pairs());
  double n = static_cast<double>(ours->num_pairs());
  state.counters["ours_bytes_per_pair"] = ours->SpaceBytes() / n;
  state.counters["baseline_bytes_per_pair"] = base->SpaceBytes() / n;
}
BENCHMARK(BM_Thm2_Space);

}  // namespace
}  // namespace dyndex

BENCHMARK_MAIN();
