// Table 3 (E3): the O(n log sigma)-bit regime — trange = o(|P|).
//
// Paper claim (Grossi-Vitter row): with word-packed text, range-finding costs
// O(|P|/log_sigma n + log^eps n), i.e. *sublinear in |P|* — the first
// compressed dynamic structure with that property — while the FM-index
// backward search is Theta(|P|) rank operations. Locate is O(log^eps n)
// (here O(1): direct SA lookup) vs O(s) LF-steps; extraction reads packed
// words vs LF-decoding.
//
// Expected shape: per-pattern-char cost of the packed index falls sharply as
// |P| grows while the FM-index stays flat; crossover at small |P|.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/dynamic_collection.h"
#include "text/fm_index.h"
#include "text/packed_sa_index.h"

namespace dyndex {
namespace {

using bench::Corpus;
using bench::GetCorpus;
using bench::MakePatterns;

constexpr uint64_t kSymbols = 1 << 20;
constexpr uint32_t kSigma = 4;  // log sigma << word size: packing pays off

template <typename I>
const I& GetStatic() {
  static std::unique_ptr<I> cached = [] {
    const Corpus& c = GetCorpus(kSymbols, kSigma, /*doc_len=*/4096);
    return std::make_unique<I>(
        I::Build(ConcatText(c.documents), typename I::Options()));
  }();
  return *cached;
}

template <typename I>
void RunRangeFind(benchmark::State& state) {
  uint64_t plen = static_cast<uint64_t>(state.range(0));
  const I& idx = GetStatic<I>();
  auto patterns =
      MakePatterns(GetCorpus(kSymbols, kSigma, 4096), plen, 64);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.Find(patterns[i++ % patterns.size()]));
  }
  state.counters["ns_per_pattern_char"] = benchmark::Counter(
      static_cast<double>(state.iterations() * plen),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_Table3_RangeFind_Fm(benchmark::State& state) {
  RunRangeFind<FmIndex>(state);
}
void BM_Table3_RangeFind_PackedSa(benchmark::State& state) {
  RunRangeFind<PackedSaIndex>(state);
}
BENCHMARK(BM_Table3_RangeFind_Fm)->Arg(8)->Arg(32)->Arg(128)->Arg(512);
BENCHMARK(BM_Table3_RangeFind_PackedSa)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

template <typename I>
void RunLocate(benchmark::State& state) {
  const I& idx = GetStatic<I>();
  auto patterns = MakePatterns(GetCorpus(kSymbols, kSigma, 4096), 12, 32);
  size_t i = 0;
  for (auto _ : state) {
    RowRange r = idx.Find(patterns[i++ % patterns.size()]);
    uint64_t limit = r.begin + std::min<uint64_t>(r.size(), 32);
    for (uint64_t row = r.begin; row < limit; ++row) {
      benchmark::DoNotOptimize(idx.Locate(row));
    }
  }
}
void BM_Table3_Locate_Fm(benchmark::State& state) { RunLocate<FmIndex>(state); }
void BM_Table3_Locate_PackedSa(benchmark::State& state) {
  RunLocate<PackedSaIndex>(state);
}
BENCHMARK(BM_Table3_Locate_Fm);
BENCHMARK(BM_Table3_Locate_PackedSa);

template <typename I>
void RunExtract(benchmark::State& state) {
  const I& idx = GetStatic<I>();
  Rng rng(6);
  std::vector<Symbol> out;
  const uint64_t len = 1024;
  for (auto _ : state) {
    out.clear();
    idx.Extract(rng.Below(idx.TextSize() - len), len, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["ns_per_char"] = benchmark::Counter(
      static_cast<double>(state.iterations() * len),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
void BM_Table3_Extract_Fm(benchmark::State& state) {
  RunExtract<FmIndex>(state);
}
void BM_Table3_Extract_PackedSa(benchmark::State& state) {
  RunExtract<PackedSaIndex>(state);
}
BENCHMARK(BM_Table3_Extract_Fm);
BENCHMARK(BM_Table3_Extract_PackedSa);

// The dynamized variant: the framework is index-generic, so the packed index
// inherits dynamism unchanged (the paper's Table 3 "Our" rows).
void BM_Table3_DynamicCount_PackedSa(benchmark::State& state) {
  static std::unique_ptr<DynamicCollectionT1<PackedSaIndex>> coll = [] {
    auto c = std::make_unique<DynamicCollectionT1<PackedSaIndex>>();
    for (const auto& d : GetCorpus(kSymbols / 4, kSigma, 4096).docs) {
      c->Insert(d);
    }
    return c;
  }();
  auto patterns = MakePatterns(GetCorpus(kSymbols / 4, kSigma, 4096), 64, 64);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coll->Count(patterns[i++ % patterns.size()]));
  }
}
BENCHMARK(BM_Table3_DynamicCount_PackedSa);

// Space: the substitution's honest cost (n log n + n log sigma bits vs the
// paper's O(n log sigma)) — recorded for EXPERIMENTS.md.
void BM_Table3_Space(benchmark::State& state) {
  const auto& fm = GetStatic<FmIndex>();
  const auto& sa = GetStatic<PackedSaIndex>();
  for (auto _ : state) benchmark::DoNotOptimize(fm.TextSize());
  double n = static_cast<double>(fm.TextSize());
  state.counters["fm_bytes_per_sym"] = fm.SpaceBytes() / n;
  state.counters["packed_bytes_per_sym"] = sa.SpaceBytes() / n;
}
BENCHMARK(BM_Table3_Space);

}  // namespace
}  // namespace dyndex

BENCHMARK_MAIN();
