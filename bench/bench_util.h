// Shared fixtures for the paper-reproduction benchmarks: cached corpora and
// prebuilt structures so google-benchmark iterations measure queries, not
// construction.
#ifndef DYNDEX_BENCH_BENCH_UTIL_H_
#define DYNDEX_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "gen/text_gen.h"
#include "text/concat_text.h"
#include "util/rng.h"

namespace dyndex {
namespace bench {

/// A reusable corpus: documents + patterns sampled from them.
struct Corpus {
  std::vector<std::vector<Symbol>> docs;
  std::vector<Document> documents;  // with ids 0..n-1
  uint64_t total_symbols = 0;
  uint32_t sigma = 0;
};

// Every corpus/pattern stream is seeded purely from its parameters (never
// from time or an entropy source), so BENCH_*.json trajectories written by
// scripts/run_benchmarks.sh are comparable run-to-run and commit-to-commit.
inline constexpr uint64_t kCorpusSeedMix = 1315423911u;
inline constexpr uint64_t kPatternSeed = 99;

/// Builds (and caches) a corpus of ~`total` symbols over alphabet `sigma`,
/// Markov-generated so higher-order entropy is below log(sigma).
inline const Corpus& GetCorpus(uint64_t total, uint32_t sigma,
                               uint64_t doc_len = 512) {
  static std::map<std::tuple<uint64_t, uint32_t, uint64_t>,
                  std::unique_ptr<Corpus>>
      cache;
  auto key = std::make_tuple(total, sigma, doc_len);
  auto it = cache.find(key);
  if (it != cache.end()) return *it->second;
  auto corpus = std::make_unique<Corpus>();
  corpus->sigma = sigma;
  // Mix all three shape parameters so distinct corpora get distinct (but
  // fixed) streams; previously doc_len was left out and two corpora differing
  // only in doc_len shared one stream.
  Rng rng((total * kCorpusSeedMix + sigma) ^ (doc_len << 32));
  while (corpus->total_symbols < total) {
    uint64_t len = rng.Range(doc_len / 2, doc_len + doc_len / 2);
    corpus->docs.push_back(MarkovText(rng, len, sigma, /*branch=*/4));
    corpus->total_symbols += len;
  }
  for (uint32_t i = 0; i < corpus->docs.size(); ++i) {
    corpus->documents.push_back({i, corpus->docs[i]});
  }
  const Corpus& ref = *corpus;
  cache[key] = std::move(corpus);
  return ref;
}

/// Patterns of length `len` sampled from the corpus (guaranteed hits).
inline std::vector<std::vector<Symbol>> MakePatterns(
    const Corpus& corpus, uint64_t len, uint32_t count,
    uint64_t seed = kPatternSeed) {
  Rng rng(seed);
  std::vector<std::vector<Symbol>> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    out.push_back(SamplePattern(rng, corpus.docs, len, corpus.sigma));
  }
  return out;
}

}  // namespace bench
}  // namespace dyndex

#endif  // DYNDEX_BENCH_BENCH_UTIL_H_
