#!/usr/bin/env python3
"""Diffs two google-benchmark JSON files and prints a per-benchmark speedup
table.

Usage:
  scripts/compare_benchmarks.py BEFORE.json AFTER.json

BEFORE/AFTER are files written by scripts/run_benchmarks.sh (or any
--benchmark_out=... --benchmark_out_format=json run). Benchmarks are matched
by name; speedup = before_time / after_time, so > 1.0 means AFTER is faster.
Aggregate rows (mean/median/stddev repetitions) are skipped. Exits non-zero
if the two files share no benchmark names.
"""

import json
import math
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        # Later duplicates (e.g. reruns appended to one file) win.
        out[b["name"]] = (float(b["cpu_time"]), b.get("time_unit", "ns"))
    return out


TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def main(argv):
    if len(argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    before, after = load(argv[1]), load(argv[2])
    shared = [name for name in before if name in after]
    if not shared:
        sys.stderr.write("error: no benchmark names in common\n")
        return 1
    rows = []
    for name in shared:
        b_ns = before[name][0] * TO_NS[before[name][1]]
        a_ns = after[name][0] * TO_NS[after[name][1]]
        rows.append((name, b_ns, a_ns, b_ns / a_ns if a_ns > 0 else math.inf))

    def fmt_ns(ns):
        for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
            if ns >= div:
                return f"{ns / div:.2f} {unit}"
        return f"{ns:.0f} ns"

    name_w = max(len(r[0]) for r in rows)
    header = f"{'benchmark':<{name_w}}  {'before':>10}  {'after':>10}  speedup"
    print(header)
    print("-" * len(header))
    for name, b_ns, a_ns, speedup in rows:
        print(f"{name:<{name_w}}  {fmt_ns(b_ns):>10}  {fmt_ns(a_ns):>10}  "
              f"{speedup:6.2f}x")
    finite = [r[3] for r in rows if math.isfinite(r[3]) and r[3] > 0]
    if finite:
        geomean = math.exp(sum(math.log(s) for s in finite) / len(finite))
        print("-" * len(header))
        print(f"{'geomean':<{name_w}}  {'':>10}  {'':>10}  {geomean:6.2f}x")
    only_before = sorted(set(before) - set(after))
    only_after = sorted(set(after) - set(before))
    if only_before:
        print(f"only in {argv[1]}: {', '.join(only_before)}")
    if only_after:
        print(f"only in {argv[2]}: {', '.join(only_after)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
