#!/usr/bin/env python3
"""Diffs two google-benchmark JSON files (or two directories of them) and
prints a per-benchmark speedup table.

Usage:
  scripts/compare_benchmarks.py [--fail-below=X] BEFORE.json AFTER.json
  scripts/compare_benchmarks.py [--fail-below=X] BEFORE_DIR/ AFTER_DIR/

BEFORE/AFTER are files written by scripts/run_benchmarks.sh (or any
--benchmark_out=... --benchmark_out_format=json run). Benchmarks are matched
by name; speedup = before_time / after_time, so > 1.0 means AFTER is faster.
Aggregate rows (mean/median/stddev repetitions) are skipped. Exits non-zero
if the two files share no benchmark names.

Directory mode matches BENCH_*.json files by filename (so two
run_benchmarks.sh output trees — e.g. the CI bench-json artifacts of two
commits — diff in one invocation) and prints one table per shared file plus
an overall geomean.

--fail-below=X turns the diff into an advisory regression gate: exit code 3
when the overall geomean speedup falls below X. Use a *loose* threshold
(e.g. 0.25 = "4x slower") when BEFORE is a committed baseline measured on a
different machine — absolute times are not portable, so only gross
regressions are actionable across hosts.
"""

import json
import math
import os
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        # Later duplicates (e.g. reruns appended to one file) win.
        out[b["name"]] = (float(b["cpu_time"]), b.get("time_unit", "ns"))
    return out


TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def compare_files(before_path, after_path):
    """Prints one speedup table; returns the per-benchmark speedups."""
    before, after = load(before_path), load(after_path)
    shared = [name for name in before if name in after]
    if not shared:
        sys.stderr.write(
            f"error: no benchmark names in common between {before_path} "
            f"and {after_path}\n")
        return None
    rows = []
    for name in shared:
        b_ns = before[name][0] * TO_NS[before[name][1]]
        a_ns = after[name][0] * TO_NS[after[name][1]]
        rows.append((name, b_ns, a_ns, b_ns / a_ns if a_ns > 0 else math.inf))

    def fmt_ns(ns):
        for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
            if ns >= div:
                return f"{ns / div:.2f} {unit}"
        return f"{ns:.0f} ns"

    name_w = max(len(r[0]) for r in rows)
    header = f"{'benchmark':<{name_w}}  {'before':>10}  {'after':>10}  speedup"
    print(header)
    print("-" * len(header))
    for name, b_ns, a_ns, speedup in rows:
        print(f"{name:<{name_w}}  {fmt_ns(b_ns):>10}  {fmt_ns(a_ns):>10}  "
              f"{speedup:6.2f}x")
    finite = [r[3] for r in rows if math.isfinite(r[3]) and r[3] > 0]
    if finite:
        geomean = math.exp(sum(math.log(s) for s in finite) / len(finite))
        print("-" * len(header))
        print(f"{'geomean':<{name_w}}  {'':>10}  {'':>10}  {geomean:6.2f}x")
    only_before = sorted(set(before) - set(after))
    only_after = sorted(set(after) - set(before))
    if only_before:
        print(f"only in {before_path}: {', '.join(only_before)}")
    if only_after:
        print(f"only in {after_path}: {', '.join(only_after)}")
    return [r[3] for r in rows]


def geomean_of(speedups):
    finite = [s for s in speedups if math.isfinite(s) and s > 0]
    if not finite:
        return None
    return math.exp(sum(math.log(s) for s in finite) / len(finite))


def apply_gate(speedups, fail_below):
    """Exit status for the optional --fail-below regression gate."""
    if fail_below is None:
        return 0
    geomean = geomean_of(speedups)
    if geomean is None:
        sys.stderr.write("error: nothing comparable for --fail-below\n")
        return 1
    if geomean < fail_below:
        sys.stderr.write(
            f"FAIL: geomean speedup {geomean:.2f}x is below the "
            f"--fail-below={fail_below} threshold\n")
        return 3
    print(f"gate ok: geomean {geomean:.2f}x >= {fail_below}")
    return 0


def compare_dirs(before_dir, after_dir):
    """Prints one table per shared file; returns all speedups (None if no
    comparable files at all)."""
    before_files = {f for f in os.listdir(before_dir) if f.endswith(".json")}
    after_files = {f for f in os.listdir(after_dir) if f.endswith(".json")}
    shared = sorted(before_files & after_files)
    if not shared:
        sys.stderr.write("error: no .json files in common\n")
        return None
    all_speedups = []
    for name in shared:
        print(f"== {name}")
        speedups = compare_files(os.path.join(before_dir, name),
                                 os.path.join(after_dir, name))
        if speedups:
            all_speedups.extend(speedups)
        print()
    for name in sorted(before_files - after_files):
        print(f"only in {before_dir}: {name}")
    for name in sorted(after_files - before_files):
        print(f"only in {after_dir}: {name}")
    geomean = geomean_of(all_speedups)
    if geomean is not None:
        finite = [s for s in all_speedups if math.isfinite(s) and s > 0]
        print(f"overall geomean ({len(finite)} benchmarks): {geomean:.2f}x")
    # Mirror single-file mode: nothing comparable at all is a failure.
    return all_speedups if all_speedups else None


def main(argv):
    args = list(argv[1:])
    fail_below = None
    for arg in list(args):
        if arg.startswith("--fail-below="):
            try:
                fail_below = float(arg.split("=", 1)[1])
            except ValueError:
                sys.stderr.write(f"error: bad threshold in '{arg}'\n")
                return 2
            args.remove(arg)
    if len(args) != 2:
        sys.stderr.write(__doc__)
        return 2
    if os.path.isdir(args[0]) and os.path.isdir(args[1]):
        speedups = compare_dirs(args[0], args[1])
    else:
        speedups = compare_files(args[0], args[1])
    if speedups is None:
        return 1
    return apply_gate(speedups, fail_below)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
