#!/usr/bin/env python3
"""dyndex invariant linter: machine-checks the repo-specific concurrency
discipline that Clang Thread Safety Analysis cannot see.

Clang TSA (src/util/thread_annotations.h) proves lock discipline: which
mutex guards which member, which function requires which capability. What it
cannot prove is the *seqlock + epoch-reclamation* discipline the serve layer
is built on. Those invariants are lexical/structural, so this linter enforces
them directly:

  reader-container        Members of types marked `// lint:reader-shared`
                          (reachable by optimistic seqlock readers with no
                          lock held) must not be std::vector / std::map /
                          std::unordered_map / std::deque / std::list: those
                          containers relocate their buffers on growth, which
                          unmaps memory a validating reader may still be
                          walking. Use std::atomic<T*>, SeqHashMap / SeqBox,
                          or retire_vector (buffer frees routed through the
                          retire sink).
  publish-retire          A function that publishes a snapshot pointer
                          (`x.store(p)` where x is declared std::atomic<T*>)
                          must also Retire(...) the displaced value in the
                          same function, or carry a justified allow. A
                          published-over pointer that is freed directly can
                          be freed under a reader mid-traversal.
  no-assert               `assert(` is compiled out in release builds, which
                          is exactly where torn-read validation must still
                          fire. Use DYNDEX_CHECK (util/check.h), which is
                          always on and throws TornReadError-compatible
                          failures on the optimistic read path.
  no-blocking-under-lock  No sleep_for / sleep_until / usleep / .join( /
                          RunAll( lexically inside a region holding a lock
                          guard (std::*_lock/lock_guard, MutexLock,
                          WriteLock, ReadLock, ExclusiveSection). Blocking
                          while holding the EpochGuard mutex stalls every
                          reader that fell back to the locked path and every
                          writer. CondVar::Wait is exempt: it releases the
                          mutex while blocked (that is its contract).
  layer-dag               `#include "<layer>/..."` edges must respect the
                          layer DAG declared via dyndex_add_layer() in
                          src/*/CMakeLists.txt: a header may include only the
                          transitive *public* (DEPS) closure of its layer; a
                          .cc may additionally use PRIVATE_DEPS closures.

Escape hatch: `// lint:allow(<rule>)` on the offending line or the line
directly above suppresses that rule for that line. Every allow in src/ must
carry a justification in the surrounding comment; allows are grep-able so
the set of waived sites stays reviewable.

Marker: `// lint:reader-shared` directly above a class/struct (or its
template<> line) opts that type — including its nested structs — into the
reader-container rule.

Modes:
  --mode=auto    (default) use libclang for the reader-container rule when
                 the python bindings are importable, token mode otherwise.
  --mode=ast     require libclang; error out (exit 2) if unavailable.
  --mode=tokens  pure token mode; what CI runs, fully deterministic.

The token mode is the *authoritative* semantics (the fixture corpus under
tests/lint_fixtures/ pins it); the AST mode only sharpens member-type
resolution for reader-container. The other rules are token-level in every
mode, deliberately: `assert` is a macro (invisible to the AST after
preprocessing), no-blocking-under-lock is defined lexically, layer-dag is a
build-system property, and publish-retire's same-function pairing is handled
conservatively (names declared both as atomic pointer and atomic non-pointer
are dropped as ambiguous; stores of nullptr are exempt — withdrawing a
pointer frees nothing by itself).

Output: `file:line: [rule] message`, one per finding.
Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

ALL_RULES = (
    "reader-container",
    "publish-retire",
    "no-assert",
    "no-blocking-under-lock",
    "layer-dag",
)

CXX_EXTS = (".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx")

BAD_CONTAINERS = ("vector", "unordered_map", "map", "deque", "list")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Lexing: blank out comments and string/char literals so token scans cannot
# match inside them, while collecting the comment text per line for the
# lint:allow / lint:reader-shared directives.
# ---------------------------------------------------------------------------


@dataclass
class Lexed:
    code_lines: list[str]  # comments/strings blanked, newlines preserved
    comment_lines: list[str]  # comment text per line ("" when none)
    raw_lines: list[str] = field(default_factory=list)  # for #include paths


def lex(text: str) -> Lexed:
    code = []
    comments = []
    cur_code = []
    cur_comment = []
    state = "code"  # code | line_comment | block_comment | string | char
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            code.append("".join(cur_code))
            comments.append("".join(cur_comment))
            cur_code, cur_comment = [], []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                cur_code.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw strings are not used in this codebase; a plain scanner
                # with escape handling is sufficient (and fails loudly on
                # mismatched quotes by blanking to end of line).
                state = "string"
                cur_code.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                cur_code.append(" ")
                i += 1
                continue
            cur_code.append(c)
            i += 1
        elif state == "line_comment":
            cur_comment.append(c)
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                cur_code.append("  ")
                i += 2
            else:
                cur_comment.append(c)
                cur_code.append(" ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                cur_code.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                cur_code.append(" ")
                i += 1
            else:
                cur_code.append(" ")
                i += 1
    if cur_code or cur_comment:
        code.append("".join(cur_code))
        comments.append("".join(cur_comment))
    return Lexed(code, comments, text.splitlines())


ALLOW_RE = re.compile(r"lint:allow\(\s*([a-z-]+)\s*\)")
MARKER = "lint:reader-shared"


def allows_for(lexed: Lexed) -> list[set]:
    out = []
    for comment in lexed.comment_lines:
        out.append(set(ALLOW_RE.findall(comment)))
    return out


def is_allowed(allows: list[set], line0: int, rule: str) -> bool:
    """Allowed if the directive sits on the line or the line directly above."""
    if line0 < len(allows) and rule in allows[line0]:
        return True
    return line0 > 0 and rule in allows[line0 - 1]


# ---------------------------------------------------------------------------
# Block tree: classify every brace-delimited region so rules can ask "is this
# line a class member?" / "what function encloses this store?".
# ---------------------------------------------------------------------------


@dataclass
class Block:
    kind: str  # class | function | namespace | control | other
    start: int  # 0-based line of the '{'
    end: int = -1  # 0-based line of the '}' (inclusive)
    marked: bool = False  # reader-shared (class blocks only)
    parent: "Block | None" = None
    children: list = field(default_factory=list)


CLASS_RE = re.compile(r"\b(class|struct|union)\b")
NAMESPACE_RE = re.compile(r"\bnamespace\b")
ENUM_RE = re.compile(r"\benum\b")
CONTROL_RE = re.compile(r"\b(if|for|while|switch|catch|do|else)\b")
ACCESS_RE = re.compile(r"\b(public|private|protected)\s*:")


def build_blocks(lexed: Lexed) -> list[Block]:
    """Returns the flat list of all blocks (roots have parent None)."""
    text = "\n".join(lexed.code_lines)
    blocks: list[Block] = []
    stack: list[Block] = []
    head_start = 0  # char offset where the current statement head begins
    line = 0
    head_start_line = 0
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
        elif c in ";":
            head_start = i + 1
            head_start_line = line
        elif c == "{":
            head = text[head_start:i]
            head = ACCESS_RE.sub("", head)
            kind = classify_head(head)
            marked = False
            if kind == "class":
                for l in range(head_start_line, line + 1):
                    if l < len(lexed.comment_lines) and MARKER in lexed.comment_lines[l]:
                        marked = True
            blk = Block(kind=kind, start=line, marked=marked,
                        parent=stack[-1] if stack else None)
            if stack:
                stack[-1].children.append(blk)
            blocks.append(blk)
            stack.append(blk)
            head_start = i + 1
            head_start_line = line
        elif c == "}":
            if stack:
                stack.pop().end = line
            head_start = i + 1
            head_start_line = line
        i += 1
    for blk in stack:  # unbalanced braces: close at EOF, stay usable
        blk.end = line
    return blocks


def classify_head(head: str) -> str:
    if ENUM_RE.search(head):
        return "other"
    if CLASS_RE.search(head) and "=" not in head.split("<")[0]:
        return "class"
    if NAMESPACE_RE.search(head):
        return "namespace"
    if CONTROL_RE.search(head):
        return "control"
    if "(" in head or "]" in head:  # function/ctor (init list) or lambda
        return "function"
    return "other"


def innermost_block(blocks: list[Block], line0: int) -> Block | None:
    best = None
    for b in blocks:
        if b.start < line0 <= b.end:
            if best is None or b.start > best.start:
                best = b
    return best


def enclosing_function(blocks: list[Block], line0: int) -> Block | None:
    b = innermost_block(blocks, line0)
    while b is not None and b.kind != "function":
        b = b.parent
    return b


# ---------------------------------------------------------------------------
# Rule: reader-container
# ---------------------------------------------------------------------------

MEMBER_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?std::(" + "|".join(BAD_CONTAINERS) + r")\s*<"
)


def in_marked_class_scope(blocks: list[Block], line0: int) -> bool:
    """True when every enclosing block up to (and including) a marked class
    is class-kind — i.e. the line is a member of a marked type or of a struct
    nested inside one, not a local inside a method body."""
    b = innermost_block(blocks, line0)
    while b is not None:
        if b.kind != "class":
            return False
        if b.marked:
            return True
        b = b.parent
    return False


def _after_template_args(code: str, start: int) -> str:
    """Text after the balanced <...> starting at `start` (index of '<')."""
    depth = 0
    for i in range(start, len(code)):
        if code[i] == "<":
            depth += 1
        elif code[i] == ">":
            depth -= 1
            if depth == 0:
                return code[i + 1:]
    return ""


def rule_reader_container(path, lexed, blocks, allows) -> list[Finding]:
    out = []
    for line0, code in enumerate(lexed.code_lines):
        m = MEMBER_DECL_RE.match(code)
        if not m:
            continue
        if code.lstrip().startswith("using "):
            continue
        # Parameter-list continuation, not a declaration of its own.
        prev = next((lexed.code_lines[l].rstrip() for l in
                     range(line0 - 1, -1, -1) if lexed.code_lines[l].strip()),
                    "")
        if prev.endswith((",", "(")):
            continue
        # Method returning a container, not a container member.
        if "(" in _after_template_args(code, code.index("<", m.start())):
            continue
        if not in_marked_class_scope(blocks, line0):
            continue
        if is_allowed(allows, line0, "reader-container"):
            continue
        out.append(Finding(
            path, line0 + 1, "reader-container",
            f"std::{m.group(1)} member of a reader-shared type: growth "
            "relocates the buffer under optimistic readers; use "
            "std::atomic<T*>, SeqHashMap/SeqBox, or retire_vector"))
    return out


def rule_reader_container_ast(path, lexed, blocks, allows, index) -> list[Finding]:
    """libclang variant: resolves member types through typedefs/aliases
    instead of matching the spelled declaration. Falls back to the token
    rule on any parse problem."""
    try:
        tu = index.parse(path, args=["-std=c++20", "-fsyntax-only"],
                         options=0)
        import clang.cindex as ci
        out = []
        marker_lines = {i for i, c in enumerate(lexed.comment_lines)
                        if MARKER in c}

        def type_is_bad(t) -> bool:
            spelling = t.get_canonical().spelling
            return any(re.search(rf"\bstd::{c}<", spelling)
                       for c in BAD_CONTAINERS)

        def class_is_marked(cursor) -> bool:
            start0 = cursor.extent.start.line - 1
            return any(l in marker_lines for l in range(max(0, start0 - 3), start0 + 1))

        def walk(cursor, inside_marked):
            for ch in cursor.get_children():
                if ch.location.file and ch.location.file.name != path:
                    continue
                if ch.kind in (ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL,
                               ci.CursorKind.CLASS_TEMPLATE):
                    walk(ch, inside_marked or class_is_marked(ch))
                elif ch.kind == ci.CursorKind.FIELD_DECL and inside_marked:
                    if type_is_bad(ch.type):
                        line0 = ch.location.line - 1
                        if not is_allowed(allows, line0, "reader-container"):
                            out.append(Finding(
                                path, ch.location.line, "reader-container",
                                f"{ch.type.spelling} member of a reader-shared "
                                "type: growth relocates the buffer under "
                                "optimistic readers; use std::atomic<T*>, "
                                "SeqHashMap/SeqBox, or retire_vector"))
                else:
                    walk(ch, inside_marked)

        walk(tu.cursor, False)
        return out
    except Exception:
        return rule_reader_container(path, lexed, blocks, allows)


# ---------------------------------------------------------------------------
# Rule: publish-retire
# ---------------------------------------------------------------------------

ATOMIC_DECL_RE = re.compile(r"std::atomic\s*<\s*([^<>;]+?)\s*>")
STORE_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*\.\s*store\s*\(")
RETIRE_RE = re.compile(r"\bRetire\s*\(|\bParkSink|\.\s*Park\s*\(")


def atomic_name_kinds(lexed: Lexed) -> dict:
    """name -> set of {'ptr','nonptr'} over every std::atomic<...> declaration
    in the file. Names appearing with both kinds are ambiguous and dropped by
    the caller (e.g. `slots` in fast_relation.h: atomic<uint32_t> in one rep,
    atomic<AdjSet*> in another)."""
    kinds: dict = {}
    for code in lexed.code_lines:
        m = ATOMIC_DECL_RE.search(code)
        if not m:
            continue
        inner = m.group(1).strip()
        # Declared name: last identifier once trailing initializers go.
        rest = code[m.end():]
        rest = re.sub(r"\{[^{}]*\}\s*;?\s*$", ";", rest)
        rest = re.sub(r"=[^;]*;", ";", rest)
        names = re.findall(r"\b([A-Za-z_]\w*)\b", rest)
        names = [x for x in names if x not in
                 ("const", "mutable", "static", "constexpr", "kPageSize")]
        if not names:
            continue
        kind = "ptr" if inner.endswith("*") else "nonptr"
        kinds.setdefault(names[-1], set()).add(kind)
    return kinds


def rule_publish_retire(path, lexed, blocks, allows) -> list[Finding]:
    kinds = atomic_name_kinds(lexed)
    out = []
    for line0, code in enumerate(lexed.code_lines):
        for m in STORE_RE.finditer(code):
            name = m.group(1)
            k = kinds.get(name)
            if k != {"ptr"}:
                continue  # non-pointer, ambiguous, or declared elsewhere
            arg = code[m.end():].lstrip()
            if arg.startswith("nullptr"):
                continue  # withdrawing a pointer frees nothing by itself
            fn = enclosing_function(blocks, line0)
            if fn is None:
                continue
            region = "\n".join(lexed.code_lines[fn.start:fn.end + 1])
            if RETIRE_RE.search(region):
                continue
            if is_allowed(allows, line0, "publish-retire"):
                continue
            out.append(Finding(
                path, line0 + 1, "publish-retire",
                f"`{name}.store(...)` publishes a snapshot pointer but the "
                "enclosing function never Retires the displaced value; an "
                "optimistic reader may still be traversing it"))
    return out


# ---------------------------------------------------------------------------
# Rule: no-assert
# ---------------------------------------------------------------------------

ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")


def rule_no_assert(path, lexed, blocks, allows) -> list[Finding]:
    out = []
    for line0, code in enumerate(lexed.code_lines):
        for _ in ASSERT_RE.finditer(code):
            if is_allowed(allows, line0, "no-assert"):
                continue
            out.append(Finding(
                path, line0 + 1, "no-assert",
                "assert() is compiled out in release builds; use "
                "DYNDEX_CHECK (util/check.h), which stays on where torn-read "
                "validation must fire"))
    return out


# ---------------------------------------------------------------------------
# Rule: no-blocking-under-lock
# ---------------------------------------------------------------------------

GUARD_RE = re.compile(
    r"\b(?:std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\s*<[^>]*>"
    r"|MutexLock|WriteLock|ReadLock|ExclusiveSection)\s+\w+\s*[({]"
)
BLOCKING_RE = re.compile(
    r"\bsleep_for\s*\(|\bsleep_until\s*\(|\busleep\s*\(|\.\s*join\s*\(|"
    r"\bRunAll\s*\("
)


def rule_no_blocking_under_lock(path, lexed, blocks, allows) -> list[Finding]:
    # A guard declared on line L holds its lock from L to the end of the
    # innermost block containing L.
    held: list = []  # (start0, end0)
    for line0, code in enumerate(lexed.code_lines):
        if GUARD_RE.search(code):
            blk = innermost_block(blocks, line0)
            end0 = blk.end if blk is not None else len(lexed.code_lines) - 1
            held.append((line0, end0))
    out = []
    for line0, code in enumerate(lexed.code_lines):
        m = BLOCKING_RE.search(code)
        if not m:
            continue
        if not any(s <= line0 <= e for s, e in held):
            continue
        if is_allowed(allows, line0, "no-blocking-under-lock"):
            continue
        out.append(Finding(
            path, line0 + 1, "no-blocking-under-lock",
            f"blocking call `{m.group(0).strip('(').strip()}` lexically "
            "inside a lock-holding region; sleeping or joining under a lock "
            "stalls every reader on the locked fallback path"))
    return out


# ---------------------------------------------------------------------------
# Rule: layer-dag
# ---------------------------------------------------------------------------

LAYER_CALL_RE = re.compile(r"dyndex_add_layer\(\s*(\w+)(.*?)\)", re.S)
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"(\w+)/')


def parse_layers(root: str) -> dict:
    """root is a directory whose src/*/CMakeLists.txt declare layers.
    Returns layer -> {'deps': [...], 'private': [...]}."""
    layers: dict = {}
    src = os.path.join(root, "src")
    if not os.path.isdir(src):
        return layers
    for layer_dir in sorted(os.listdir(src)):
        cml = os.path.join(src, layer_dir, "CMakeLists.txt")
        if not os.path.isfile(cml):
            continue
        with open(cml, "r", encoding="utf-8", errors="replace") as f:
            text = "\n".join(l.split("#", 1)[0] for l in f.read().splitlines())
        for m in LAYER_CALL_RE.finditer(text):
            name, body = m.group(1), m.group(2)
            deps: dict = {"deps": [], "private": []}
            tokens = body.split()
            bucket = None
            for tok in tokens:
                if tok == "DEPS":
                    bucket = "deps"
                elif tok == "PRIVATE_DEPS":
                    bucket = "private"
                elif tok in ("SOURCES",):
                    bucket = None
                elif bucket and tok.startswith("dyndex::"):
                    deps[bucket].append(tok.split("::", 1)[1])
            layers[name] = deps
    return layers


def public_closure(layers: dict, layer: str, seen=None) -> set:
    if seen is None:
        seen = set()
    if layer in seen or layer not in layers:
        return seen
    seen.add(layer)
    for d in layers[layer]["deps"]:
        public_closure(layers, d, seen)
    return seen


def find_layer_root(path: str, cache: dict):
    """Walk up from `path` looking for <root>/src/<layer>/ layout with
    dyndex_add_layer declarations. Returns (root, layers) or (None, None)."""
    d = os.path.dirname(os.path.abspath(path))
    chain = []
    while True:
        chain.append(d)
        parent = os.path.dirname(d)
        base = os.path.basename(d)
        grand = os.path.dirname(parent)
        if os.path.basename(parent) == "src":
            root = grand
            if root in cache:
                return (root, cache[root]) if cache[root] else (None, None)
            layers = parse_layers(root)
            cache[root] = layers if base in layers else None
            if cache[root]:
                return root, layers
        if parent == d:
            return None, None
        d = parent


def rule_layer_dag(path, lexed, blocks, allows, root_cache) -> list[Finding]:
    root, layers = find_layer_root(path, root_cache)
    if root is None:
        return []
    rel = os.path.relpath(os.path.abspath(path), os.path.join(root, "src"))
    layer = rel.split(os.sep, 1)[0]
    if layer not in layers:
        return []
    allowed = public_closure(layers, layer)
    is_header = os.path.splitext(path)[1] in (".h", ".hh", ".hpp")
    if not is_header:
        for d in layers[layer]["private"]:
            allowed |= public_closure(layers, d)
    out = []
    # Include paths are string literals, which the lexer blanks: scan the
    # raw lines (the regex anchors on `#include`, so comments cannot match).
    for line0, raw in enumerate(lexed.raw_lines):
        m = INCLUDE_RE.match(raw)
        if not m:
            continue
        target = m.group(1)
        if target not in layers or target in allowed:
            continue
        if is_allowed(allows, line0, "layer-dag"):
            continue
        how = "public (DEPS) closure" if is_header else "DEPS/PRIVATE_DEPS closure"
        out.append(Finding(
            path, line0 + 1, "layer-dag",
            f'layer "{layer}" does not declare "{target}" in its {how}; '
            "declare the dependency in src/"
            f"{layer}/CMakeLists.txt or drop the include"))
    return out


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def collect_files(paths) -> list:
    out = []
    for p in paths:
        if os.path.isdir(p):
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames.sort()
                for f in sorted(filenames):
                    if os.path.splitext(f)[1] in CXX_EXTS:
                        out.append(os.path.join(dirpath, f))
        elif os.path.isfile(p):
            out.append(p)
        else:
            print(f"lint_invariants: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="dyndex concurrency-invariant linter (see module docstring)")
    ap.add_argument("paths", nargs="+", help="files or directories to lint")
    ap.add_argument("--mode", choices=("auto", "ast", "tokens"), default="auto")
    ap.add_argument("--rules", default=",".join(ALL_RULES),
                    help="comma-separated subset of: " + " ".join(ALL_RULES))
    args = ap.parse_args(argv)

    rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    for r in rules:
        if r not in ALL_RULES:
            print(f"lint_invariants: unknown rule: {r}", file=sys.stderr)
            return 2

    ast_index = None
    if args.mode in ("auto", "ast"):
        try:
            import clang.cindex as ci
            ast_index = ci.Index.create()
        except Exception as e:
            if args.mode == "ast":
                print(f"lint_invariants: --mode=ast but libclang is "
                      f"unavailable ({e})", file=sys.stderr)
                return 2
            ast_index = None  # documented fallback: token mode

    findings: list = []
    root_cache: dict = {}
    for path in collect_files(args.paths):
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"lint_invariants: cannot read {path}: {e}", file=sys.stderr)
            return 2
        lexed = lex(text)
        blocks = build_blocks(lexed)
        allows = allows_for(lexed)
        if "reader-container" in rules:
            if ast_index is not None:
                findings += rule_reader_container_ast(
                    path, lexed, blocks, allows, ast_index)
            else:
                findings += rule_reader_container(path, lexed, blocks, allows)
        if "publish-retire" in rules:
            findings += rule_publish_retire(path, lexed, blocks, allows)
        if "no-assert" in rules:
            findings += rule_no_assert(path, lexed, blocks, allows)
        if "no-blocking-under-lock" in rules:
            findings += rule_no_blocking_under_lock(path, lexed, blocks, allows)
        if "layer-dag" in rules:
            findings += rule_layer_dag(path, lexed, blocks, allows, root_cache)

    for f in findings:
        print(f.render())
    if findings:
        print(f"lint_invariants: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
