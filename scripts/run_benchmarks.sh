#!/usr/bin/env bash
# Runs every bench_* binary in a build tree and writes one BENCH_<name>.json
# per benchmark. Corpora and patterns use fixed seeds (see bench/bench_util.h),
# so JSON trajectories are comparable run-to-run and commit-to-commit.
#
# Usage: scripts/run_benchmarks.sh [BUILD_DIR] [OUT_DIR] [EXTRA_BENCH_ARGS...]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"
shift $(( $# > 2 ? 2 : $# )) || true

if [[ ! -d "${BUILD_DIR}/bench" ]]; then
  echo "error: ${BUILD_DIR}/bench not found; build with:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j --target bench_all" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"
ran=0
for bin in "${BUILD_DIR}"/bench/bench_*; do
  [[ -x "${bin}" && ! -d "${bin}" ]] || continue
  name="$(basename "${bin}")"
  out="${OUT_DIR}/BENCH_${name#bench_}.json"
  echo "== ${name} -> ${out}"
  "${bin}" --benchmark_format=json --benchmark_out="${out}" \
           --benchmark_out_format=json "$@" >/dev/null
  ran=$((ran + 1))
done
if [[ "${ran}" -eq 0 ]]; then
  # Configure-only trees have a bench/ dir but no binaries in it.
  echo "error: no bench_* binaries in ${BUILD_DIR}/bench; build with:" >&2
  echo "  cmake --build ${BUILD_DIR} -j --target bench_all" >&2
  exit 1
fi
echo "done: ${ran} benchmarks."
