#!/usr/bin/env bash
# Runs every bench_* binary in a build tree (bench_serve_sharded and friends
# are picked up automatically) and writes one BENCH_<name>.json per
# benchmark. Corpora and patterns use fixed seeds (see bench/bench_util.h),
# so JSON trajectories are comparable run-to-run and commit-to-commit.
#
# Usage: scripts/run_benchmarks.sh [BUILD_DIR] [OUT_DIR] [EXTRA_BENCH_ARGS...]
#
# With DYNDEX_BASELINE_DIR set, the run finishes with an advisory
# scripts/compare_benchmarks.py diff against it; DYNDEX_BASELINE_FAIL_BELOW
# (default: unset = report only) turns that into a gate on the geomean.
# Directory diffs match by *filename*, so point it at the OUT_DIR of a
# previous full sweep (e.g. another commit's bench-json CI artifact). The
# committed bench/baselines holds the CI perf-smoke set (BENCH_*_smoke.json
# names) and pairs with the smoke step in ci.yml, not with a full sweep.
# Keep thresholds loose across machines.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"
shift $(( $# > 2 ? 2 : $# )) || true

if [[ ! -d "${BUILD_DIR}/bench" ]]; then
  echo "error: ${BUILD_DIR}/bench not found; build with:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j --target bench_all" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"
ran=0
for bin in "${BUILD_DIR}"/bench/bench_*; do
  [[ -x "${bin}" && ! -d "${bin}" ]] || continue
  name="$(basename "${bin}")"
  out="${OUT_DIR}/BENCH_${name#bench_}.json"
  echo "== ${name} -> ${out}"
  "${bin}" --benchmark_format=json --benchmark_out="${out}" \
           --benchmark_out_format=json "$@" >/dev/null
  ran=$((ran + 1))
done
if [[ "${ran}" -eq 0 ]]; then
  # Configure-only trees have a bench/ dir but no binaries in it.
  echo "error: no bench_* binaries in ${BUILD_DIR}/bench; build with:" >&2
  echo "  cmake --build ${BUILD_DIR} -j --target bench_all" >&2
  exit 1
fi
echo "done: ${ran} benchmarks."

if [[ -n "${DYNDEX_BASELINE_DIR:-}" ]]; then
  echo "== comparing against baseline ${DYNDEX_BASELINE_DIR}"
  gate=()
  if [[ -n "${DYNDEX_BASELINE_FAIL_BELOW:-}" ]]; then
    gate=("--fail-below=${DYNDEX_BASELINE_FAIL_BELOW}")
  fi
  # ${gate[@]+...}: empty-array expansion is an unbound-variable error under
  # `set -u` on bash < 4.4 (macOS ships 3.2).
  "$(dirname "$0")/compare_benchmarks.py" ${gate[@]+"${gate[@]}"} \
      "${DYNDEX_BASELINE_DIR}" "${OUT_DIR}"
fi
