// Concurrent sharded serving: N reader threads hammer fanned-out and
// single-shard queries on a ShardedIndex / ShardedRelation while one writer
// applies batches whose per-shard sub-batches run in parallel on the
// scatter-join pool.
//
// Linearizability is checked per *epoch vector*: the whole write schedule is
// generated up front and split per shard exactly the way the sharded facade
// splits it, so shard s's state after its e-th touched batch is known before
// any thread starts. A fanned-out query reports one epoch per shard; its
// answer must equal the sum/merge of the per-shard expectations at exactly
// those epochs. Single-shard queries are checked against the owning shard's
// scalar epoch. Failures collect into a mutex-guarded list (gtest assertions
// stay on the main thread).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gen/text_gen.h"
#include "serve/sharded_index.h"
#include "serve/sharded_relation.h"
#include "tests/model_checker.h"
#include "util/rng.h"

namespace dyndex {
namespace {

constexpr int kReaders = 4;
constexpr uint32_t kShards = 3;  // odd: uneven splits and id mapping
constexpr uint32_t kSigma = 4;
constexpr uint32_t kNumImmortal = 6;
constexpr uint32_t kNumPatterns = 6;

class FailureLog {
 public:
  void Add(std::string msg) {
    std::lock_guard<std::mutex> lock(mu_);
    if (failures_.size() < 20) failures_.push_back(std::move(msg));
  }
  std::vector<std::string> Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return failures_;
  }

 private:
  std::mutex mu_;
  std::vector<std::string> failures_;
};

// ---------------------------------------------------------------------------
// Documents

struct Batch {
  bool is_insert = false;
  std::vector<uint32_t> docs;  // insert: indices into Script::contents
  std::vector<DocId> erases;   // erase: predicted global ids
};

struct Script {
  std::vector<std::vector<Symbol>> contents;  // global id -> symbols (dense
                                              // sequential minting)
  std::vector<Batch> batches;
  std::vector<std::vector<Symbol>> patterns;
  // expected[s][e][p]: sorted global-id occurrences of patterns[p] within
  // shard s at shard-epoch e (a shard's epoch moves only when a batch
  // touches it).
  std::vector<std::vector<std::vector<std::vector<Occurrence>>>> expected;
  // Shard-epoch at which each immortal doc (global ids 0..kNumImmortal-1)
  // becomes visible in its shard.
  std::vector<uint64_t> immortal_epoch;
};

Script MakeScript(uint64_t seed, int num_batches) {
  Script s;
  Rng rng(seed);
  auto gen_doc = [&](uint64_t max_len) {
    s.contents.push_back(UniformText(rng, rng.Range(1, max_len), kSigma));
    return static_cast<uint32_t>(s.contents.size() - 1);
  };
  Batch first;
  first.is_insert = true;
  for (uint32_t i = 0; i < kNumImmortal; ++i) first.docs.push_back(gen_doc(50));
  s.batches.push_back(std::move(first));
  std::vector<DocId> mortal_live;
  for (int b = 1; b < num_batches; ++b) {
    Batch batch;
    if (b % 2 == 1 || mortal_live.size() < 2) {
      batch.is_insert = true;
      uint32_t k = static_cast<uint32_t>(rng.Range(1, 4));
      for (uint32_t i = 0; i < k; ++i) {
        batch.docs.push_back(gen_doc(rng.Below(8) == 0 ? 200 : 60));
        mortal_live.push_back(batch.docs.back());
      }
    } else {
      uint32_t k = static_cast<uint32_t>(rng.Range(1, 2));
      for (uint32_t i = 0; i < k && !mortal_live.empty(); ++i) {
        uint64_t pick = rng.Below(mortal_live.size());
        batch.erases.push_back(mortal_live[pick]);
        mortal_live.erase(mortal_live.begin() + static_cast<int64_t>(pick));
      }
    }
    s.batches.push_back(std::move(batch));
  }
  for (uint32_t p = 0; p < kNumPatterns; ++p) {
    s.patterns.push_back(
        SamplePattern(rng, s.contents, rng.Range(1, 4), kSigma));
  }
  // Replay the schedule split per shard, exactly as ShardedIndex splits it:
  // doc j (global insertion order) -> shard j % kShards; erase of global id
  // g -> shard g % kShards; a shard's epoch moves only on touched batches.
  std::vector<ReferenceModel> models(kShards);
  s.expected.resize(kShards);
  s.immortal_epoch.assign(kNumImmortal, 0);
  auto snapshot = [&](uint32_t shard) {
    std::vector<std::vector<Occurrence>> at_epoch(kNumPatterns);
    for (uint32_t p = 0; p < kNumPatterns; ++p) {
      at_epoch[p] = models[shard].Find(s.patterns[p]);
    }
    s.expected[shard].push_back(std::move(at_epoch));
  };
  for (uint32_t shard = 0; shard < kShards; ++shard) snapshot(shard);
  DocId next_id = 0;
  for (const Batch& batch : s.batches) {
    std::vector<bool> touched(kShards, false);
    for (uint32_t doc : batch.docs) {
      uint32_t shard = static_cast<uint32_t>(next_id % kShards);
      models[shard].Insert(next_id, s.contents[doc]);
      if (next_id < kNumImmortal) {
        s.immortal_epoch[next_id] = s.expected[shard].size();  // next epoch
      }
      ++next_id;
      touched[shard] = true;
    }
    for (DocId id : batch.erases) {
      uint32_t shard = static_cast<uint32_t>(id % kShards);
      models[shard].Erase(id);
      touched[shard] = true;
    }
    for (uint32_t shard = 0; shard < kShards; ++shard) {
      if (touched[shard]) snapshot(shard);
    }
  }
  return s;
}

void DocReaderLoop(const ShardedIndex& index, const Script& script,
                   uint64_t seed, const std::atomic<bool>& done,
                   FailureLog* failures, uint64_t* queries_run) {
  Rng rng(seed);
  uint64_t n = 0;
  while (!done.load(std::memory_order_acquire)) {
    uint32_t p = static_cast<uint32_t>(rng.Below(kNumPatterns));
    switch (rng.Below(3)) {
      case 0: {
        ShardEpochs eps;
        auto got = index.Locate(script.patterns[p], &eps);
        std::sort(got.begin(), got.end());
        std::vector<Occurrence> want;
        for (uint32_t shard = 0; shard < kShards; ++shard) {
          const auto& at = script.expected[shard][eps[shard]][p];
          want.insert(want.end(), at.begin(), at.end());
        }
        std::sort(want.begin(), want.end());
        if (got != want) {
          failures->Add("Locate mismatch: pattern " + std::to_string(p) +
                        ": got " + std::to_string(got.size()) + " occs, want " +
                        std::to_string(want.size()));
        }
        break;
      }
      case 1: {
        ShardEpochs eps;
        uint64_t got = index.Count(script.patterns[p], &eps);
        uint64_t want = 0;
        for (uint32_t shard = 0; shard < kShards; ++shard) {
          want += script.expected[shard][eps[shard]][p].size();
        }
        if (got != want) {
          failures->Add("Count mismatch: pattern " + std::to_string(p) +
                        ": got " + std::to_string(got) + ", want " +
                        std::to_string(want));
        }
        break;
      }
      default: {
        DocId id = rng.Below(kNumImmortal);
        const auto& want = script.contents[id];
        std::vector<Symbol> got;
        uint64_t epoch = 0;
        bool present = index.Extract(id, 0, want.size(), &got, &epoch);
        if (epoch >= script.immortal_epoch[id]) {
          if (!present) {
            failures->Add("Extract: immortal doc " + std::to_string(id) +
                          " absent at shard epoch " + std::to_string(epoch));
          } else if (got != want) {
            failures->Add("Extract mismatch: doc " + std::to_string(id));
          }
        }
        break;
      }
    }
    ++n;
  }
  *queries_run = n;
}

void RunShardedDocScenario(Backend backend, RebuildMode mode, uint64_t seed,
                           int num_batches) {
  Script script = MakeScript(seed, num_batches);
  DynamicIndexOptions opt;
  opt.min_c0 = 64;
  opt.tau = 4;
  opt.mode = mode;
  ShardedIndex index(kShards, backend, opt);
  FailureLog failures;
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  std::vector<uint64_t> query_counts(kReaders, 0);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back(DocReaderLoop, std::cref(index), std::cref(script),
                         seed * 1000 + r, std::cref(done), &failures,
                         &query_counts[r]);
  }
  DocId next_id = 0;
  for (const Batch& batch : script.batches) {
    if (batch.is_insert) {
      std::vector<std::vector<Symbol>> docs;
      for (uint32_t doc : batch.docs) docs.push_back(script.contents[doc]);
      std::vector<DocId> ids = index.InsertBatch(std::move(docs));
      for (uint64_t i = 0; i < ids.size(); ++i) {
        if (ids[i] != next_id + i) {
          failures.Add("unexpected id " + std::to_string(ids[i]) + " want " +
                       std::to_string(next_id + i));
        }
      }
      next_id += ids.size();
    } else {
      uint64_t erased = index.EraseBatch(batch.erases);
      if (erased != batch.erases.size()) {
        failures.Add("EraseBatch erased " + std::to_string(erased) + " of " +
                     std::to_string(batch.erases.size()));
      }
    }
    index.Poll();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  for (const std::string& f : failures.Take()) ADD_FAILURE() << f;
  uint64_t total_queries = 0;
  for (uint64_t c : query_counts) total_queries += c;
  EXPECT_GT(total_queries, 0u);
  // Quiesce; the final per-shard epochs must match the touched-batch counts
  // and the final answers the full merged expectation.
  index.Flush();
  ShardEpochs final_epochs = index.epochs();
  for (uint32_t shard = 0; shard < kShards; ++shard) {
    ASSERT_EQ(final_epochs[shard] + 1, script.expected[shard].size())
        << "shard " << shard;
  }
  for (uint32_t p = 0; p < kNumPatterns; ++p) {
    auto got = index.Locate(script.patterns[p]);
    std::sort(got.begin(), got.end());
    std::vector<Occurrence> want;
    for (uint32_t shard = 0; shard < kShards; ++shard) {
      const auto& at = script.expected[shard].back()[p];
      want.insert(want.end(), at.begin(), at.end());
    }
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "pattern " << p;
  }
  index.CheckInvariants();
}

TEST(ServeShardedConcurrent, ReadersDuringParallelThreadedWrites) {
  RunShardedDocScenario(Backend::kT2, RebuildMode::kThreaded, 52, 80);
}

TEST(ServeShardedConcurrent, ReadersDuringParallelSynchronousWrites) {
  RunShardedDocScenario(Backend::kT2, RebuildMode::kSynchronous, 53, 80);
}

TEST(ServeShardedConcurrent, ReadersOverShardedBaseline) {
  RunShardedDocScenario(Backend::kBaseline, RebuildMode::kSynchronous, 54, 60);
}

// ---------------------------------------------------------------------------
// Relations

using PairSet = std::set<std::pair<uint32_t, uint32_t>>;

constexpr uint32_t kObjects = 32;
constexpr uint32_t kLabels = 24;

struct RelBatch {
  bool is_add = false;
  RelationPairs pairs;
};

struct RelScript {
  std::vector<RelBatch> batches;
  // snapshots[s][e]: shard s's pair set at shard-epoch e.
  std::vector<std::vector<PairSet>> snapshots;
};

RelScript MakeRelScript(const ShardedRelation& rel, uint64_t seed,
                        int num_batches) {
  RelScript s;
  Rng rng(seed);
  std::vector<PairSet> models(kShards);
  PairSet all;
  s.snapshots.assign(kShards, {});
  for (uint32_t shard = 0; shard < kShards; ++shard) {
    s.snapshots[shard].push_back({});  // epoch 0: empty
  }
  for (int b = 0; b < num_batches; ++b) {
    RelBatch batch;
    batch.is_add = b % 3 != 2 || all.size() < 10;
    std::vector<bool> touched(kShards, false);
    if (batch.is_add) {
      uint64_t n = rng.Range(1, 40);
      for (uint64_t i = 0; i < n; ++i) {
        uint32_t o = static_cast<uint32_t>(rng.Below(kObjects));
        uint32_t a = static_cast<uint32_t>(rng.Below(kLabels));
        batch.pairs.push_back({o, a});
        uint32_t shard = rel.shard_of_object(o);
        models[shard].insert({o, a});
        all.insert({o, a});
        touched[shard] = true;
      }
    } else {
      uint64_t m = rng.Range(1, std::min<uint64_t>(15, all.size()));
      for (uint64_t i = 0; i < m && !all.empty(); ++i) {
        auto it = all.begin();
        std::advance(it, static_cast<int64_t>(rng.Below(all.size())));
        batch.pairs.push_back(*it);
        uint32_t shard = rel.shard_of_object(it->first);
        models[shard].erase(*it);
        all.erase(it);
        touched[shard] = true;
      }
    }
    for (uint32_t shard = 0; shard < kShards; ++shard) {
      if (touched[shard]) s.snapshots[shard].push_back(models[shard]);
    }
    s.batches.push_back(std::move(batch));
  }
  return s;
}

void RelReaderLoop(const ShardedRelation& rel, const RelScript& script,
                   uint64_t seed, const std::atomic<bool>& done,
                   FailureLog* failures, uint64_t* queries_run) {
  Rng rng(seed);
  uint64_t n = 0;
  while (!done.load(std::memory_order_acquire)) {
    switch (rng.Below(3)) {
      case 0: {
        // Object-keyed: one shard, scalar epoch.
        uint32_t o = static_cast<uint32_t>(rng.Below(kObjects));
        uint32_t shard = rel.shard_of_object(o);
        uint64_t epoch = 0;
        std::vector<uint32_t> got = rel.LabelsOf(o, &epoch);
        std::sort(got.begin(), got.end());
        std::vector<uint32_t> want;
        for (const auto& [oo, aa] : script.snapshots[shard][epoch]) {
          if (oo == o) want.push_back(aa);
        }
        if (got != want) {
          failures->Add("LabelsOf mismatch: o=" + std::to_string(o) +
                        " at shard epoch " + std::to_string(epoch));
        }
        break;
      }
      case 1: {
        // Label-keyed: fan-out, epoch vector.
        uint32_t a = static_cast<uint32_t>(rng.Below(kLabels));
        ShardEpochs eps;
        uint64_t got = rel.CountObjectsOf(a, &eps);
        uint64_t want = 0;
        for (uint32_t shard = 0; shard < kShards; ++shard) {
          for (const auto& [oo, aa] : script.snapshots[shard][eps[shard]]) {
            want += aa == a;
          }
        }
        if (got != want) {
          failures->Add("CountObjectsOf mismatch: a=" + std::to_string(a) +
                        ": got " + std::to_string(got) + ", want " +
                        std::to_string(want));
        }
        break;
      }
      default: {
        ShardEpochs eps;
        uint64_t got = rel.num_pairs(&eps);
        uint64_t want = 0;
        for (uint32_t shard = 0; shard < kShards; ++shard) {
          want += script.snapshots[shard][eps[shard]].size();
        }
        if (got != want) {
          failures->Add("num_pairs mismatch: got " + std::to_string(got) +
                        ", want " + std::to_string(want));
        }
        break;
      }
    }
    ++n;
  }
  *queries_run = n;
}

TEST(ServeShardedConcurrent, RelationReadersDuringParallelWrites) {
  RelationIndexOptions opt;
  opt.min_c0 = 16;
  opt.tau = 3;
  ShardedRelation rel(kShards, RelationBackend::kTheorem2, opt);
  RelScript script = MakeRelScript(rel, 99, 70);
  FailureLog failures;
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  std::vector<uint64_t> query_counts(kReaders, 0);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back(RelReaderLoop, std::cref(rel), std::cref(script),
                         7700 + r, std::cref(done), &failures,
                         &query_counts[r]);
  }
  for (const RelBatch& batch : script.batches) {
    if (batch.is_add) {
      rel.AddPairsBatch(batch.pairs);
    } else {
      uint64_t removed = rel.RemovePairsBatch(batch.pairs);
      if (removed != batch.pairs.size()) {
        failures.Add("RemovePairsBatch removed " + std::to_string(removed) +
                     " of " + std::to_string(batch.pairs.size()));
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  for (const std::string& f : failures.Take()) ADD_FAILURE() << f;
  uint64_t total_queries = 0;
  for (uint64_t c : query_counts) total_queries += c;
  EXPECT_GT(total_queries, 0u);
  // Quiesced final state == merged final snapshots.
  ShardEpochs final_epochs = rel.epochs();
  uint64_t want_pairs = 0;
  for (uint32_t shard = 0; shard < kShards; ++shard) {
    ASSERT_EQ(final_epochs[shard] + 1, script.snapshots[shard].size())
        << "shard " << shard;
    want_pairs += script.snapshots[shard].back().size();
  }
  ASSERT_EQ(rel.num_pairs(), want_pairs);
  rel.CheckInvariants();
}

}  // namespace
}  // namespace dyndex
