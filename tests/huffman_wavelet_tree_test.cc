#include "seq/huffman_wavelet_tree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gen/text_gen.h"
#include "suffix/entropy.h"
#include "util/rng.h"

namespace dyndex {
namespace {

void CheckAgainstNaive(const HuffmanWaveletTree& wt,
                       const std::vector<uint32_t>& data, uint32_t sigma) {
  ASSERT_EQ(wt.size(), data.size());
  std::vector<uint64_t> counts(sigma, 0);
  std::vector<uint64_t> seen(sigma, 0);
  for (uint64_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(wt.Access(i), data[i]) << i;
    ASSERT_EQ(wt.Rank(data[i], i), counts[data[i]]) << i;
    ASSERT_EQ(wt.Select(data[i], seen[data[i]]), i) << i;
    ++counts[data[i]];
    ++seen[data[i]];
  }
  for (uint32_t c = 0; c < sigma; ++c) {
    ASSERT_EQ(wt.Count(c), counts[c]) << "c=" << c;
    ASSERT_EQ(wt.Rank(c, data.size()), counts[c]) << "c=" << c;
  }
}

class HuffmanWtTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(HuffmanWtTest, UniformDataMatchesNaive) {
  auto [n, sigma] = GetParam();
  Rng rng(n + sigma);
  std::vector<uint32_t> data(n);
  for (auto& v : data) v = static_cast<uint32_t>(rng.Below(sigma));
  HuffmanWaveletTree wt(data, sigma);
  CheckAgainstNaive(wt, data, sigma);
}

TEST_P(HuffmanWtTest, SkewedDataMatchesNaive) {
  auto [n, sigma] = GetParam();
  Rng rng(n * 3 + sigma);
  std::vector<uint32_t> data(n);
  for (auto& v : data) {
    // Geometric-ish skew: most mass on small symbols.
    uint32_t s = 0;
    while (s + 1 < sigma && rng.Chance(0.5)) ++s;
    v = s;
  }
  HuffmanWaveletTree wt(data, sigma);
  CheckAgainstNaive(wt, data, sigma);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HuffmanWtTest,
                         ::testing::Combine(::testing::Values(1, 64, 1000,
                                                              10000),
                                            ::testing::Values(2u, 3u, 17u,
                                                              256u)));

TEST(HuffmanWtBasic, SingleDistinctSymbol) {
  std::vector<uint32_t> data(100, 5);
  HuffmanWaveletTree wt(data, 8);
  EXPECT_EQ(wt.Access(42), 5u);
  EXPECT_EQ(wt.Rank(5, 100), 100u);
  EXPECT_EQ(wt.Rank(3, 100), 0u);
  EXPECT_EQ(wt.Select(5, 99), 99u);
  EXPECT_EQ(wt.Count(5), 100u);
  EXPECT_DOUBLE_EQ(wt.BitsPerSymbol(), 0.0);
}

TEST(HuffmanWtBasic, AbsentSymbolRankIsZero) {
  HuffmanWaveletTree wt({0, 1, 0, 1}, 16);
  EXPECT_EQ(wt.Rank(7, 4), 0u);
  EXPECT_EQ(wt.Count(7), 0u);
}

TEST(HuffmanWtBasic, EmptySequence) {
  HuffmanWaveletTree wt({}, 4);
  EXPECT_EQ(wt.size(), 0u);
  EXPECT_EQ(wt.Count(2), 0u);
}

TEST(HuffmanWtBasic, BitsPerSymbolApproachesH0) {
  // Zipf data: the Huffman shape must land within 1 bit of H0 (classic
  // Huffman bound), far below the balanced log2(sigma) = 8.
  Rng rng(77);
  auto text = ZipfText(rng, 100000, 256, 1.3);
  std::vector<uint32_t> data(text.begin(), text.end());
  HuffmanWaveletTree wt(data, 2 + 256);
  double h0 = EntropyH0(text);
  EXPECT_GE(wt.BitsPerSymbol() + 1e-9, h0);
  EXPECT_LE(wt.BitsPerSymbol(), h0 + 1.0);
  EXPECT_LT(wt.BitsPerSymbol(), 8.0);
}

TEST(HuffmanWtBasic, TwoSymbolsOneBitEach) {
  std::vector<uint32_t> data{0, 1, 1, 0, 1};
  HuffmanWaveletTree wt(data, 2);
  EXPECT_DOUBLE_EQ(wt.BitsPerSymbol(), 1.0);
  CheckAgainstNaive(wt, data, 2);
}

}  // namespace
}  // namespace dyndex
