#include "core/semi_static_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "gen/text_gen.h"
#include "tests/testing_util.h"
#include "text/fm_index.h"
#include "text/packed_sa_index.h"
#include "util/rng.h"

namespace dyndex {
namespace {

using Occ = std::pair<DocId, uint64_t>;

template <typename I>
class SemiStaticIndexTest : public ::testing::Test {
 protected:
  using Semi = SemiStaticIndex<I>;

  std::unique_ptr<Semi> Build(const std::map<DocId, std::vector<Symbol>>& docs,
                              bool counting) {
    std::vector<Document> d;
    for (const auto& [id, syms] : docs) d.push_back({id, syms});
    typename Semi::Options opt;
    opt.counting = counting;
    return std::make_unique<Semi>(d, opt);
  }

  static std::vector<Occ> Occurrences(const Semi& s,
                                      const std::vector<Symbol>& p) {
    std::vector<Occ> out;
    s.ForEachOccurrence(p, [&](DocId id, uint64_t off) {
      out.emplace_back(id, off);
    });
    std::sort(out.begin(), out.end());
    return out;
  }

  static std::vector<Occ> Naive(const std::map<DocId, std::vector<Symbol>>& m,
                                const std::vector<Symbol>& p) {
    std::vector<Occ> out;
    for (const auto& [id, doc] : m) {
      if (doc.size() < p.size()) continue;
      for (uint64_t i = 0; i + p.size() <= doc.size(); ++i) {
        if (std::equal(p.begin(), p.end(),
                       doc.begin() + static_cast<int64_t>(i))) {
          out.emplace_back(id, i);
        }
      }
    }
    return out;
  }
};

using IndexTypes = ::testing::Types<FmIndex, PackedSaIndex>;
TYPED_TEST_SUITE(SemiStaticIndexTest, IndexTypes);

TYPED_TEST(SemiStaticIndexTest, DeletionHidesAllOccurrences) {
  Rng rng(21);
  std::map<DocId, std::vector<Symbol>> model;
  for (DocId id = 100; id < 110; ++id) {
    model[id] = UniformText(rng, rng.Range(30, 90), 4);
  }
  auto semi = this->Build(model, /*counting=*/true);
  // Delete half the docs one by one, re-checking queries each time.
  for (DocId id = 100; id < 105; ++id) {
    ASSERT_TRUE(semi->EraseDoc(id));
    ASSERT_FALSE(semi->EraseDoc(id));  // second call is a no-op
    model.erase(id);
    for (int q = 0; q < 10; ++q) {
      std::vector<std::vector<Symbol>> live;
      for (const auto& [i, d] : model) live.push_back(d);
      auto p = SamplePattern(rng, live, rng.Range(1, 4), 4);
      ASSERT_EQ(this->Occurrences(*semi, p), this->Naive(model, p));
      ASSERT_EQ(semi->Count(p), this->Naive(model, p).size());
    }
  }
}

TYPED_TEST(SemiStaticIndexTest, CountWithAndWithoutAugmentation) {
  Rng rng(22);
  std::map<DocId, std::vector<Symbol>> model;
  for (DocId id = 0; id < 6; ++id) {
    model[id] = UniformText(rng, 200, 3);
  }
  auto with = this->Build(model, true);
  auto without = this->Build(model, false);
  with->EraseDoc(2);
  without->EraseDoc(2);
  model.erase(2);
  for (int q = 0; q < 30; ++q) {
    std::vector<std::vector<Symbol>> live;
    for (const auto& [i, d] : model) live.push_back(d);
    auto p = SamplePattern(rng, live, rng.Range(1, 5), 3);
    uint64_t expect = this->Naive(model, p).size();
    ASSERT_EQ(with->Count(p), expect);
    ASSERT_EQ(without->Count(p), expect);
  }
}

TYPED_TEST(SemiStaticIndexTest, PurgeThreshold) {
  Rng rng(23);
  std::map<DocId, std::vector<Symbol>> model;
  for (DocId id = 0; id < 10; ++id) model[id] = UniformText(rng, 100, 4);
  auto semi = this->Build(model, false);
  EXPECT_FALSE(semi->NeedsPurge(8));
  semi->EraseDoc(0);  // 10% dead
  EXPECT_FALSE(semi->NeedsPurge(8));
  EXPECT_TRUE(semi->NeedsPurge(10));
  semi->EraseDoc(1);  // 20% dead
  EXPECT_TRUE(semi->NeedsPurge(5));
}

TYPED_TEST(SemiStaticIndexTest, ExportLiveDocsReconstructsContent) {
  Rng rng(24);
  std::map<DocId, std::vector<Symbol>> model;
  for (DocId id = 0; id < 8; ++id) {
    model[id] = UniformText(rng, rng.Range(1, 50), 16);
  }
  auto semi = this->Build(model, false);
  semi->EraseDoc(3);
  semi->EraseDoc(5);
  model.erase(3);
  model.erase(5);
  std::vector<Document> out;
  semi->ExportLiveDocs(&out);
  ASSERT_EQ(out.size(), model.size());
  for (const Document& d : out) {
    ASSERT_EQ(d.symbols, model.at(d.id)) << "doc " << d.id;
  }
}

TYPED_TEST(SemiStaticIndexTest, ExtractAndDocLen) {
  Rng rng(25);
  std::map<DocId, std::vector<Symbol>> model{{42, UniformText(rng, 120, 8)}};
  auto semi = this->Build(model, false);
  EXPECT_EQ(semi->DocLenOf(42), 120u);
  std::vector<Symbol> out;
  semi->Extract(42, 10, 20, &out);
  std::vector<Symbol> expect(model[42].begin() + 10, model[42].begin() + 30);
  EXPECT_EQ(out, expect);
}

TYPED_TEST(SemiStaticIndexTest, EraseEverything) {
  Rng rng(26);
  std::map<DocId, std::vector<Symbol>> model;
  for (DocId id = 0; id < 5; ++id) model[id] = UniformText(rng, 40, 4);
  auto semi = this->Build(model, true);
  for (DocId id = 0; id < 5; ++id) ASSERT_TRUE(semi->EraseDoc(id));
  EXPECT_EQ(semi->live_symbols(), 0u);
  EXPECT_EQ(semi->num_live_docs(), 0u);
  auto p = std::vector<Symbol>{2};
  EXPECT_TRUE(this->Occurrences(*semi, p).empty());
  EXPECT_EQ(semi->Count(p), 0u);
}

}  // namespace
}  // namespace dyndex
