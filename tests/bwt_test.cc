#include "suffix/bwt.h"

#include <gtest/gtest.h>

#include <vector>

#include "gen/text_gen.h"
#include "suffix/sais.h"
#include "util/rng.h"

namespace dyndex {
namespace {

class BwtRoundTripTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(BwtRoundTripTest, InverseRecoversText) {
  auto [n, sigma] = GetParam();
  Rng rng(n + sigma);
  std::vector<Symbol> t = UniformText(rng, n, sigma);
  t.push_back(kSentinel);
  uint32_t full_sigma = 0;
  for (Symbol s : t) full_sigma = s + 1 > full_sigma ? s + 1 : full_sigma;
  auto sa = BuildSuffixArray(t, full_sigma);
  auto bwt = BwtFromSuffixArray(t, sa);
  ASSERT_EQ(bwt.size(), t.size());
  // Exactly one sentinel in the BWT.
  uint64_t sentinels = 0;
  for (Symbol c : bwt) sentinels += c == kSentinel;
  EXPECT_EQ(sentinels, 1u);
  EXPECT_EQ(InverseBwt(bwt, full_sigma), t);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BwtRoundTripTest,
    ::testing::Combine(::testing::Values(1, 2, 17, 256, 4000),
                       ::testing::Values(2u, 4u, 26u, 300u)));

TEST(BwtTest, KnownTransform) {
  // "banana$" with a=2,b=3,n=4 and $=0 -> BWT should be "annb$aa":
  // suffixes sorted: $, a$, ana$, anana$, banana$, na$, nana$
  // preceding chars:  a   n    n      b       $     a    a
  std::vector<Symbol> t{3, 2, 4, 2, 4, 2, 0};
  auto sa = BuildSuffixArray(t, 5);
  auto bwt = BwtFromSuffixArray(t, sa);
  EXPECT_EQ(bwt, (std::vector<Symbol>{2, 4, 4, 3, 0, 2, 2}));
}

TEST(BwtTest, RepetitiveTextGroupsRuns) {
  // BWT of a highly repetitive text should contain long runs; sanity-check
  // that the run count is far below n.
  Rng rng(5);
  std::vector<Symbol> t;
  auto unit = UniformText(rng, 25, 4);
  for (int rep = 0; rep < 40; ++rep) {
    t.insert(t.end(), unit.begin(), unit.end());
  }
  t.push_back(kSentinel);
  auto sa = BuildSuffixArray(t, 8);
  auto bwt = BwtFromSuffixArray(t, sa);
  uint64_t runs = 1;
  for (uint64_t i = 1; i < bwt.size(); ++i) runs += bwt[i] != bwt[i - 1];
  EXPECT_LT(runs * 4, bwt.size());
}

}  // namespace
}  // namespace dyndex
