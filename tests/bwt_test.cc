#include "suffix/bwt.h"

#include <gtest/gtest.h>

#include <vector>

#include "gen/text_gen.h"
#include "suffix/sais.h"
#include "util/rng.h"

namespace dyndex {
namespace {

class BwtRoundTripTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(BwtRoundTripTest, InverseRecoversText) {
  auto [n, sigma] = GetParam();
  Rng rng(n + sigma);
  std::vector<Symbol> t = UniformText(rng, n, sigma);
  t.push_back(kSentinel);
  uint32_t full_sigma = 0;
  for (Symbol s : t) full_sigma = s + 1 > full_sigma ? s + 1 : full_sigma;
  auto sa = BuildSuffixArray(t, full_sigma);
  auto bwt = BwtFromSuffixArray(t, sa);
  ASSERT_EQ(bwt.size(), t.size());
  // Exactly one sentinel in the BWT.
  uint64_t sentinels = 0;
  for (Symbol c : bwt) sentinels += c == kSentinel;
  EXPECT_EQ(sentinels, 1u);
  EXPECT_EQ(InverseBwt(bwt, full_sigma), t);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BwtRoundTripTest,
    ::testing::Combine(::testing::Values(1, 2, 17, 256, 4000),
                       ::testing::Values(2u, 4u, 26u, 300u)));

TEST(BwtTest, KnownTransform) {
  // "banana$" with a=2,b=3,n=4 and $=0 -> BWT should be "annb$aa":
  // suffixes sorted: $, a$, ana$, anana$, banana$, na$, nana$
  // preceding chars:  a   n    n      b       $     a    a
  std::vector<Symbol> t{3, 2, 4, 2, 4, 2, 0};
  auto sa = BuildSuffixArray(t, 5);
  auto bwt = BwtFromSuffixArray(t, sa);
  EXPECT_EQ(bwt, (std::vector<Symbol>{2, 4, 4, 3, 0, 2, 2}));
}

// --- fuzz-style adversarial inputs ----------------------------------------

namespace {
void ExpectRoundTrip(std::vector<Symbol> t) {
  t.push_back(kSentinel);
  uint32_t sigma = 0;
  for (Symbol s : t) sigma = s + 1 > sigma ? s + 1 : sigma;
  auto sa = BuildSuffixArray(t, sigma);
  auto bwt = BwtFromSuffixArray(t, sa);
  ASSERT_EQ(InverseBwt(bwt, sigma), t);
}
}  // namespace

TEST(BwtAdversarialTest, AlphabetOfSizeOne) {
  for (uint64_t n : {1ull, 2ull, 64ull, 1000ull}) {
    ExpectRoundTrip(std::vector<Symbol>(n, 2));
  }
}

TEST(BwtAdversarialTest, AllEqualSymbolRunsGroupToOneRun) {
  // BWT of c^n $ is c...c$ rotated: exactly two runs after the sentinel.
  std::vector<Symbol> t(300, 5);
  t.push_back(kSentinel);
  auto sa = BuildSuffixArray(t, 6);
  auto bwt = BwtFromSuffixArray(t, sa);
  uint64_t runs = 1;
  for (uint64_t i = 1; i < bwt.size(); ++i) runs += bwt[i] != bwt[i - 1];
  EXPECT_LE(runs, 3u);
  EXPECT_EQ(InverseBwt(bwt, 6), t);
}

TEST(BwtAdversarialTest, ConcatOfLengthOneDocuments) {
  std::vector<Symbol> t;
  Rng rng(79);
  for (int d = 0; d < 150; ++d) {
    t.push_back(2 + static_cast<Symbol>(rng.Below(3)));
    t.push_back(kSeparator);
  }
  ExpectRoundTrip(std::move(t));
}

TEST(BwtAdversarialTest, BoundarySizes) {
  Rng rng(80);
  for (uint64_t n : {1ull, 2ull, 3ull, 31ull, 32ull, 33ull, 255ull, 256ull,
                     257ull, 1023ull, 1024ull, 1025ull}) {
    ExpectRoundTrip(UniformText(rng, n, 4));
  }
}

TEST(BwtAdversarialTest, SeededFuzzSweep) {
  for (uint64_t seed = 0; seed < 120; ++seed) {
    Rng rng(seed * 31 + 7);
    uint64_t n = 1 + rng.Below(80);
    uint32_t sigma = 1 + static_cast<uint32_t>(rng.Below(8));
    std::vector<Symbol> t = UniformText(rng, n, sigma);
    for (auto& s : t) {
      if (rng.Below(10) == 0) s = kSeparator;
    }
    SCOPED_TRACE("fuzz seed=" + std::to_string(seed));
    ExpectRoundTrip(std::move(t));
  }
}

TEST(BwtTest, RepetitiveTextGroupsRuns) {
  // BWT of a highly repetitive text should contain long runs; sanity-check
  // that the run count is far below n.
  Rng rng(5);
  std::vector<Symbol> t;
  auto unit = UniformText(rng, 25, 4);
  for (int rep = 0; rep < 40; ++rep) {
    t.insert(t.end(), unit.begin(), unit.end());
  }
  t.push_back(kSentinel);
  auto sa = BuildSuffixArray(t, 8);
  auto bwt = BwtFromSuffixArray(t, sa);
  uint64_t runs = 1;
  for (uint64_t i = 1; i < bwt.size(); ++i) runs += bwt[i] != bwt[i - 1];
  EXPECT_LT(runs * 4, bwt.size());
}

}  // namespace
}  // namespace dyndex
