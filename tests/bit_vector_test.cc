#include "bits/bit_vector.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace dyndex {
namespace {

TEST(BitVectorTest, SetGet) {
  BitVector b(200);
  EXPECT_EQ(b.size(), 200u);
  for (uint64_t i = 0; i < 200; i += 3) b.Set(i, true);
  for (uint64_t i = 0; i < 200; ++i) EXPECT_EQ(b.Get(i), i % 3 == 0) << i;
}

TEST(BitVectorTest, FillTrueClearsTail) {
  for (uint64_t n : {1ull, 63ull, 64ull, 65ull, 127ull, 128ull, 1000ull}) {
    BitVector b(n, true);
    EXPECT_EQ(b.CountOnes(), n) << n;
    for (uint64_t i = 0; i < n; ++i) EXPECT_TRUE(b.Get(i));
  }
}

TEST(BitVectorTest, PushBack) {
  BitVector b;
  Rng rng(3);
  std::vector<bool> expect;
  for (int i = 0; i < 5000; ++i) {
    bool bit = rng.Chance(0.3);
    b.PushBack(bit);
    expect.push_back(bit);
  }
  ASSERT_EQ(b.size(), expect.size());
  uint64_t ones = 0;
  for (uint64_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b.Get(i), expect[i]);
    ones += expect[i];
  }
  EXPECT_EQ(b.CountOnes(), ones);
}

TEST(BitVectorTest, ZeroSize) {
  BitVector b(0);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.CountOnes(), 0u);
}

}  // namespace
}  // namespace dyndex
