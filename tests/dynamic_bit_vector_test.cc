#include "dynbits/dynamic_bit_vector.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace dyndex {
namespace {

void CheckAgainstModel(const DynamicBitVector& dbv,
                       const std::vector<bool>& model) {
  ASSERT_EQ(dbv.size(), model.size());
  uint64_t ones = 0, k1 = 0, k0 = 0;
  for (uint64_t i = 0; i < model.size(); ++i) {
    ASSERT_EQ(dbv.Get(i), model[i]) << i;
    ASSERT_EQ(dbv.Rank1(i), ones) << i;
    if (model[i]) {
      ASSERT_EQ(dbv.Select1(k1), i);
      ++k1;
      ++ones;
    } else {
      ASSERT_EQ(dbv.Select0(k0), i);
      ++k0;
    }
  }
  ASSERT_EQ(dbv.ones(), ones);
}

TEST(DynamicBitVectorTest, AppendOnly) {
  DynamicBitVector dbv;
  std::vector<bool> model;
  Rng rng(1);
  for (int i = 0; i < 4000; ++i) {
    bool b = rng.Chance(0.4);
    dbv.PushBack(b);
    model.push_back(b);
  }
  CheckAgainstModel(dbv, model);
}

TEST(DynamicBitVectorTest, RandomInsertions) {
  DynamicBitVector dbv;
  std::vector<bool> model;
  Rng rng(2);
  for (int i = 0; i < 4000; ++i) {
    uint64_t pos = rng.Below(model.size() + 1);
    bool b = rng.Chance(0.5);
    dbv.Insert(pos, b);
    model.insert(model.begin() + static_cast<int64_t>(pos), b);
  }
  CheckAgainstModel(dbv, model);
}

TEST(DynamicBitVectorTest, InsertThenEraseAll) {
  DynamicBitVector dbv;
  std::vector<bool> model;
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    uint64_t pos = rng.Below(model.size() + 1);
    bool b = rng.Chance(0.5);
    dbv.Insert(pos, b);
    model.insert(model.begin() + static_cast<int64_t>(pos), b);
  }
  while (!model.empty()) {
    uint64_t pos = rng.Below(model.size());
    dbv.Erase(pos);
    model.erase(model.begin() + static_cast<int64_t>(pos));
    if (model.size() % 257 == 0) CheckAgainstModel(dbv, model);
  }
  EXPECT_EQ(dbv.size(), 0u);
  EXPECT_EQ(dbv.ones(), 0u);
}

TEST(DynamicBitVectorTest, MixedChurn) {
  DynamicBitVector dbv;
  std::vector<bool> model;
  Rng rng(4);
  for (int step = 0; step < 12000; ++step) {
    uint64_t op = rng.Below(10);
    if (op < 5 || model.empty()) {
      uint64_t pos = rng.Below(model.size() + 1);
      bool b = rng.Chance(0.5);
      dbv.Insert(pos, b);
      model.insert(model.begin() + static_cast<int64_t>(pos), b);
    } else if (op < 8) {
      uint64_t pos = rng.Below(model.size());
      dbv.Erase(pos);
      model.erase(model.begin() + static_cast<int64_t>(pos));
    } else {
      uint64_t pos = rng.Below(model.size());
      bool b = rng.Chance(0.5);
      dbv.Set(pos, b);
      model[pos] = b;
    }
    if (step % 1000 == 999) CheckAgainstModel(dbv, model);
  }
  CheckAgainstModel(dbv, model);
}

TEST(DynamicBitVectorTest, SetDoesNotChangeSize) {
  DynamicBitVector dbv;
  for (int i = 0; i < 100; ++i) dbv.PushBack(false);
  dbv.Set(50, true);
  EXPECT_EQ(dbv.size(), 100u);
  EXPECT_EQ(dbv.ones(), 1u);
  EXPECT_TRUE(dbv.Get(50));
  dbv.Set(50, true);  // idempotent
  EXPECT_EQ(dbv.ones(), 1u);
}

TEST(DynamicBitVectorTest, LargeSequentialRank) {
  DynamicBitVector dbv;
  for (int i = 0; i < 100000; ++i) dbv.PushBack(i % 3 == 0);
  EXPECT_EQ(dbv.Rank1(100000), (100000u + 2) / 3);
  EXPECT_EQ(dbv.Select1(0), 0u);
  EXPECT_EQ(dbv.Select1(1), 3u);
  EXPECT_EQ(dbv.Rank1(50000), (50000u + 2) / 3);
}

TEST(DynamicBitVectorTest, MoveSemantics) {
  DynamicBitVector a;
  a.PushBack(true);
  a.PushBack(false);
  DynamicBitVector b = std::move(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_TRUE(b.Get(0));
  DynamicBitVector c;
  c = std::move(b);
  EXPECT_EQ(c.size(), 2u);
  // Moved-from objects are valid empty vectors and fully reusable.
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(b.size(), 0u);
  a.PushBack(true);
  b.Insert(0, false);
  EXPECT_EQ(a.ones(), 1u);
  EXPECT_EQ(b.Rank1(1), 0u);
  EXPECT_EQ(c.size(), 2u);
}

}  // namespace
}  // namespace dyndex
