// Single-threaded differential model checking of the sharded serving layer:
// ShardedIndex against the string-scan ReferenceModel and ShardedRelation
// against a std::set<pair> model, driven through seeded mixed batches at
// several shard counts. Verifies the id-minting contract (round-robin
// placement makes global ids dense and sequential for a single writer), the
// cross-shard merge semantics of fanned-out queries, and that the facade
// hardening semantics survive the sharded layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "gen/text_gen.h"
#include "serve/sharded_index.h"
#include "serve/sharded_relation.h"
#include "tests/model_checker.h"
#include "util/rng.h"

namespace dyndex {
namespace {

constexpr uint32_t kSigma = 4;

DynamicIndexOptions SmallDocOptions() {
  DynamicIndexOptions opt;
  opt.min_c0 = 64;  // frequent level overflows inside every shard
  opt.tau = 4;
  return opt;
}

void RunShardedDocChurn(uint32_t shards, Backend backend, uint64_t seed,
                        int rounds) {
  SCOPED_TRACE("shards=" + std::to_string(shards) +
               " backend=" + BackendName(backend) +
               " seed=" + std::to_string(seed));
  ShardedIndex index(shards, backend, SmallDocOptions());
  ReferenceModel model;
  Rng rng(seed);
  std::vector<DocId> live;
  // Round-robin placement from a zero cursor mints global ids 0,1,2,... in
  // insertion order for a single writer; the model predicts them.
  DocId next_id = 0;
  for (int round = 0; round < rounds; ++round) {
    if (rng.Below(10) < 6 || live.size() < 4) {
      uint64_t n = rng.Range(1, 6);
      std::vector<std::vector<Symbol>> docs;
      std::vector<DocId> want_ids;
      for (uint64_t i = 0; i < n; ++i) {
        docs.push_back(UniformText(rng, rng.Range(1, 60), kSigma));
        want_ids.push_back(next_id++);
      }
      std::vector<DocId> got_ids = index.InsertBatch(docs);  // copies docs
      ASSERT_EQ(got_ids, want_ids) << "round=" << round;
      for (uint64_t i = 0; i < n; ++i) {
        ASSERT_EQ(index.shard_of(want_ids[i]), want_ids[i] % shards);
        model.Insert(want_ids[i], docs[i]);
        live.push_back(want_ids[i]);
      }
    } else {
      uint64_t m = rng.Range(1, std::min<uint64_t>(4, live.size()));
      std::vector<DocId> victims;
      for (uint64_t i = 0; i < m; ++i) {
        uint64_t pick = rng.Below(live.size());
        victims.push_back(live[pick]);
        live.erase(live.begin() + static_cast<int64_t>(pick));
      }
      ASSERT_EQ(index.EraseBatch(victims), victims.size())
          << "round=" << round;
      for (DocId id : victims) model.Erase(id);
      // Double-erase must be total and count zero.
      ASSERT_EQ(index.EraseBatch(victims), 0u);
    }
    // Fanned-out queries vs the model.
    auto live_docs = model.LiveDocs();
    auto pattern =
        SamplePattern(rng, live_docs, rng.Range(1, 5), kSigma);
    auto expect = model.Find(pattern);
    ShardEpochs epochs;
    auto got = index.Locate(pattern, &epochs);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expect) << "round=" << round;
    ASSERT_EQ(epochs.size(), shards);
    ASSERT_EQ(index.Count(pattern), expect.size()) << "round=" << round;
    ASSERT_EQ(index.num_docs(), model.num_docs());
    // Id-keyed queries route to one shard.
    if (!live.empty()) {
      DocId id = live[rng.Below(live.size())];
      uint64_t doc_len = model.DocLenOf(id);
      ASSERT_EQ(index.DocLenOf(id), doc_len);
      uint64_t from = rng.Below(doc_len);
      uint64_t len = rng.Below(doc_len - from + 1);
      std::vector<Symbol> out;
      uint64_t epoch = 0;
      ASSERT_TRUE(index.Extract(id, from, len, &out, &epoch));
      if (len > 0) {
        ASSERT_EQ(out, model.Extract(id, from, len)) << "round=" << round;
      }
      ASSERT_LE(epoch, index.epochs()[index.shard_of(id)]);
    }
    // Degenerate inputs stay total through the sharded layer.
    ASSERT_EQ(index.Count({}), 0u);
    ASSERT_TRUE(index.Locate({}).empty());
    std::vector<Symbol> unused;
    ASSERT_FALSE(index.Extract(kInvalidDocId, 0, 1, &unused));
    ASSERT_EQ(index.DocLenOf(next_id + 1000), 0u);
  }
  index.Flush();
  index.CheckInvariants();
  ASSERT_EQ(index.num_docs(), model.num_docs());
  ASSERT_EQ(index.live_symbols(), model.live_symbols());
}

TEST(ServeSharded, DocDifferentialChurnAcrossShardCounts) {
  for (uint32_t shards : {1u, 2u, 3u, 4u}) {
    RunShardedDocChurn(shards, Backend::kT2, 7000 + shards, 35);
  }
}

TEST(ServeSharded, DocDifferentialChurnBaselineBackend) {
  for (uint32_t shards : {1u, 4u}) {
    RunShardedDocChurn(shards, Backend::kBaseline, 7100 + shards, 30);
  }
}

TEST(ServeSharded, DocDifferentialChurnT1Backend) {
  RunShardedDocChurn(3, Backend::kT1, 7201, 30);
}

// A cold bulk batch bigger than any shard's C0 exercises the per-shard bulk
// build path end to end and the global-id scatter.
TEST(ServeSharded, ColdBulkBatchSpreadsAndAnswers) {
  Rng rng(424242);
  std::vector<std::vector<Symbol>> docs;
  ReferenceModel model;
  for (int i = 0; i < 64; ++i) {
    docs.push_back(UniformText(rng, 40, kSigma));
  }
  for (uint32_t shards : {1u, 4u}) {
    ShardedIndex index(shards, Backend::kBaseline, SmallDocOptions());
    std::vector<DocId> ids = index.InsertBatch(docs);
    ASSERT_EQ(ids.size(), docs.size());
    for (uint64_t i = 0; i < docs.size(); ++i) {
      ASSERT_EQ(ids[i], i);  // dense sequential minting from cold start
      model.Insert(ids[i], docs[i]);
    }
    auto pattern = SamplePattern(rng, docs, 3, kSigma);
    auto got = index.Locate(pattern);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, model.Find(pattern)) << "shards=" << shards;
    model = ReferenceModel();
  }
}

using PairSet = std::set<std::pair<uint32_t, uint32_t>>;

constexpr uint32_t kObjects = 48;
constexpr uint32_t kLabels = 40;

RelationIndexOptions TightRelOptions() {
  RelationIndexOptions opt;
  opt.min_c0 = 16;
  opt.tau = 3;
  opt.baseline_max_objects = kObjects;
  opt.baseline_max_labels = kLabels;
  return opt;
}

void RunShardedRelationChurn(uint32_t shards, RelationBackend backend,
                             uint64_t seed, int rounds) {
  SCOPED_TRACE("shards=" + std::to_string(shards) +
               " backend=" + RelationBackendName(backend) +
               " seed=" + std::to_string(seed));
  ShardedRelation rel(shards, backend, TightRelOptions());
  PairSet model;
  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    if (rng.Below(10) < 6 || model.size() < 8) {
      RelationPairs batch;
      uint64_t n = rng.Range(1, 80);
      uint64_t fresh = 0;
      for (uint64_t i = 0; i < n; ++i) {
        uint32_t o = static_cast<uint32_t>(rng.Below(kObjects));
        uint32_t a = static_cast<uint32_t>(rng.Below(kLabels));
        batch.push_back({o, a});
        fresh += model.insert({o, a}).second ? 1 : 0;
      }
      ASSERT_EQ(rel.AddPairsBatch(batch), fresh) << "round=" << round;
    } else {
      RelationPairs batch;
      uint64_t present = 0;
      uint64_t m = rng.Range(1, 30);
      for (uint64_t i = 0; i < m; ++i) {
        if (!model.empty() && rng.Chance(0.7)) {
          auto it = model.begin();
          std::advance(it, static_cast<int64_t>(rng.Below(model.size())));
          batch.push_back(*it);
          model.erase(it);
          ++present;
        } else {
          batch.push_back({static_cast<uint32_t>(rng.Below(kObjects)),
                           static_cast<uint32_t>(rng.Below(kLabels))});
          present += model.erase(batch.back()) > 0;
        }
      }
      ASSERT_EQ(rel.RemovePairsBatch(batch), present) << "round=" << round;
    }
    // Object-keyed single-shard queries.
    uint32_t o = static_cast<uint32_t>(rng.Below(kObjects));
    std::vector<uint32_t> labels = rel.LabelsOf(o);
    std::sort(labels.begin(), labels.end());
    std::vector<uint32_t> expect_labels;
    for (auto [oo, aa] : model) {
      if (oo == o) expect_labels.push_back(aa);
    }
    ASSERT_EQ(labels, expect_labels) << "round=" << round << " o=" << o;
    ASSERT_EQ(rel.CountLabelsOf(o), expect_labels.size());
    // Label-keyed fanned-out queries.
    uint32_t a = static_cast<uint32_t>(rng.Below(kLabels));
    ShardEpochs epochs;
    std::vector<uint32_t> objects = rel.ObjectsOf(a, &epochs);
    ASSERT_EQ(epochs.size(), shards);
    std::sort(objects.begin(), objects.end());
    std::vector<uint32_t> expect_objects;
    for (auto [oo, aa] : model) {
      if (aa == a) expect_objects.push_back(oo);
    }
    ASSERT_EQ(objects, expect_objects) << "round=" << round << " a=" << a;
    ASSERT_EQ(rel.CountObjectsOf(a), expect_objects.size());
    ASSERT_EQ(rel.num_pairs(), model.size());
    uint32_t po = static_cast<uint32_t>(rng.Below(kObjects));
    uint32_t pa = static_cast<uint32_t>(rng.Below(kLabels));
    ASSERT_EQ(rel.Related(po, pa), model.count({po, pa}) > 0);
  }
  rel.CheckInvariants();
}

TEST(ServeSharded, RelationDifferentialChurnTheorem2) {
  for (uint32_t shards : {1u, 2u, 4u}) {
    RunShardedRelationChurn(shards, RelationBackend::kTheorem2,
                            8000 + shards, 40);
  }
}

TEST(ServeSharded, RelationDifferentialChurnBaseline) {
  for (uint32_t shards : {1u, 3u}) {
    RunShardedRelationChurn(shards, RelationBackend::kBaseline,
                            8100 + shards, 35);
  }
}

TEST(ServeSharded, RelationDifferentialChurnDeletionOnly) {
  RunShardedRelationChurn(3, RelationBackend::kDeletionOnly, 8201, 30);
}

TEST(ServeSharded, RelationDifferentialChurnFast) {
  for (uint32_t shards : {1u, 3u}) {
    RunShardedRelationChurn(shards, RelationBackend::kFast, 8300 + shards, 40);
  }
}

TEST(ServeSharded, GraphViewRoutesThroughShards) {
  ShardedRelation graph(4, RelationBackend::kGraph, TightRelOptions());
  ASSERT_EQ(graph.AddEdgesBatch({{1, 2}, {1, 3}, {2, 1}, {7, 2}}), 4u);
  ASSERT_TRUE(graph.HasEdge(1, 2));
  std::vector<uint32_t> out = graph.Neighbors(1);
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out, (std::vector<uint32_t>{2, 3}));
  ShardEpochs epochs;
  std::vector<uint32_t> in = graph.Reverse(2, &epochs);
  std::sort(in.begin(), in.end());
  ASSERT_EQ(in, (std::vector<uint32_t>{1, 7}));
  ASSERT_EQ(epochs.size(), 4u);
  ASSERT_EQ(graph.OutDegree(1), 2u);
  ASSERT_EQ(graph.InDegree(2), 2u);
  ASSERT_EQ(graph.num_edges(), 4u);
  ASSERT_EQ(graph.RemoveEdgesBatch({{1, 2}, {9, 9}}), 1u);
  ASSERT_EQ(graph.num_edges(), 3u);
  graph.CheckInvariants();
}

}  // namespace
}  // namespace dyndex
