#include "suffix/sais.h"

#include <gtest/gtest.h>

#include <vector>

#include "gen/text_gen.h"
#include "tests/testing_util.h"
#include "util/rng.h"

namespace dyndex {
namespace {

std::vector<Symbol> WithSentinel(std::vector<Symbol> t) {
  t.push_back(kSentinel);
  return t;
}

void ExpectValidSuffixArray(const std::vector<Symbol>& text) {
  uint32_t sigma = 0;
  for (Symbol s : text) sigma = s + 1 > sigma ? s + 1 : sigma;
  auto sa = BuildSuffixArray(text, sigma);
  auto expect = NaiveSuffixArray(text);
  ASSERT_EQ(sa, expect);
}

TEST(SaisTest, TinyInputs) {
  ExpectValidSuffixArray({0});
  ExpectValidSuffixArray({5, 0});
  ExpectValidSuffixArray({2, 2, 0});
  ExpectValidSuffixArray({3, 2, 0});
  ExpectValidSuffixArray({2, 3, 0});
}

TEST(SaisTest, ClassicBanana) {
  // "banana" mapped to integers: b=4,a=3,n=5.
  std::vector<Symbol> t{4, 3, 5, 3, 5, 3, 0};
  ExpectValidSuffixArray(t);
}

TEST(SaisTest, AllEqualSymbols) {
  ExpectValidSuffixArray(WithSentinel(std::vector<Symbol>(500, 7)));
}

TEST(SaisTest, StrictlyIncreasingAndDecreasing) {
  std::vector<Symbol> inc, dec;
  for (uint32_t i = 0; i < 200; ++i) inc.push_back(2 + i);
  for (uint32_t i = 0; i < 200; ++i) dec.push_back(2 + 199 - i);
  ExpectValidSuffixArray(WithSentinel(inc));
  ExpectValidSuffixArray(WithSentinel(dec));
}

TEST(SaisTest, PeriodicText) {
  std::vector<Symbol> t;
  for (int i = 0; i < 300; ++i) t.push_back(2 + (i % 3));
  ExpectValidSuffixArray(WithSentinel(t));
}

class SaisRandomTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(SaisRandomTest, MatchesNaiveSort) {
  auto [n, sigma] = GetParam();
  Rng rng(n * 1000 + sigma);
  ExpectValidSuffixArray(WithSentinel(UniformText(rng, n, sigma)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SaisRandomTest,
    ::testing::Combine(::testing::Values(1, 2, 10, 100, 1000, 5000),
                       ::testing::Values(1u, 2u, 4u, 26u, 1000u)));

TEST(SaisTest, MarkovAndZipfTexts) {
  Rng rng(11);
  ExpectValidSuffixArray(WithSentinel(MarkovText(rng, 2000, 16)));
  ExpectValidSuffixArray(WithSentinel(ZipfText(rng, 2000, 64)));
}

// --- fuzz-style adversarial inputs ----------------------------------------

TEST(SaisAdversarialTest, AlphabetOfSizeOne) {
  // Text uses a single distinct symbol besides the sentinel, at several
  // lengths including the trivial ones.
  for (uint64_t n : {1ull, 2ull, 3ull, 63ull, 64ull, 65ull, 1000ull}) {
    ExpectValidSuffixArray(WithSentinel(std::vector<Symbol>(n, 2)));
  }
}

TEST(SaisAdversarialTest, AllEqualLargeRuns) {
  // All-equal texts are the worst case for induced sorting: every suffix
  // comparison runs to the end.
  ExpectValidSuffixArray(WithSentinel(std::vector<Symbol>(5000, 9)));
}

TEST(SaisAdversarialTest, BoundarySizes) {
  // Sizes straddling internal block/bucket boundaries (powers of two +- 1)
  // — the shapes documents take at the paper's max_j/2 "large document"
  // threshold.
  Rng rng(77);
  for (uint64_t n : {31ull, 32ull, 33ull, 127ull, 128ull, 129ull, 255ull,
                     256ull, 257ull, 1023ull, 1024ull, 1025ull}) {
    ExpectValidSuffixArray(WithSentinel(UniformText(rng, n, 4)));
  }
}

TEST(SaisAdversarialTest, ConcatOfLengthOneDocuments) {
  // A concatenation of length-1 documents is alternating symbol/separator:
  // maximal separator density, each text symbol is its own L/S context.
  std::vector<Symbol> t;
  Rng rng(78);
  for (int d = 0; d < 200; ++d) {
    t.push_back(2 + static_cast<Symbol>(rng.Below(4)));
    t.push_back(kSeparator);
  }
  ExpectValidSuffixArray(WithSentinel(t));
}

TEST(SaisAdversarialTest, NestedRepetitionsAndRunBoundaries) {
  // abab..., aabb..., fibonacci-like repetition: stress L/S type switches.
  std::vector<Symbol> ab, aabb, fib_a{2}, fib_b{2, 3};
  for (int i = 0; i < 500; ++i) ab.push_back(2 + (i & 1));
  for (int i = 0; i < 500; ++i) aabb.push_back(2 + ((i >> 1) & 1));
  for (int i = 0; i < 10; ++i) {
    auto next = fib_b;
    next.insert(next.end(), fib_a.begin(), fib_a.end());
    fib_a = std::move(fib_b);
    fib_b = std::move(next);
  }
  ExpectValidSuffixArray(WithSentinel(ab));
  ExpectValidSuffixArray(WithSentinel(aabb));
  ExpectValidSuffixArray(WithSentinel(fib_b));
}

TEST(SaisAdversarialTest, SeededFuzzSweep) {
  // Many small random shapes; the failing seed is in the assertion message.
  for (uint64_t seed = 0; seed < 150; ++seed) {
    Rng rng(seed);
    uint64_t n = 1 + rng.Below(64);
    uint32_t sigma = 1 + static_cast<uint32_t>(rng.Below(6));
    std::vector<Symbol> t = UniformText(rng, n, sigma);
    // Randomly sprinkle separators to mimic document concatenations.
    for (auto& s : t) {
      if (rng.Below(8) == 0) s = kSeparator;
    }
    SCOPED_TRACE("fuzz seed=" + std::to_string(seed));
    ExpectValidSuffixArray(WithSentinel(t));
  }
}

TEST(SaisTest, SentinelRowIsFirst) {
  Rng rng(12);
  auto t = WithSentinel(UniformText(rng, 1000, 8));
  auto sa = BuildSuffixArray(t, 10);
  EXPECT_EQ(sa[0], t.size() - 1);
  // Permutation property.
  std::vector<bool> seen(t.size(), false);
  for (uint64_t v : sa) {
    ASSERT_LT(v, t.size());
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

}  // namespace
}  // namespace dyndex
