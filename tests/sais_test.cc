#include "suffix/sais.h"

#include <gtest/gtest.h>

#include <vector>

#include "gen/text_gen.h"
#include "tests/testing_util.h"
#include "util/rng.h"

namespace dyndex {
namespace {

std::vector<Symbol> WithSentinel(std::vector<Symbol> t) {
  t.push_back(kSentinel);
  return t;
}

void ExpectValidSuffixArray(const std::vector<Symbol>& text) {
  uint32_t sigma = 0;
  for (Symbol s : text) sigma = s + 1 > sigma ? s + 1 : sigma;
  auto sa = BuildSuffixArray(text, sigma);
  auto expect = NaiveSuffixArray(text);
  ASSERT_EQ(sa, expect);
}

TEST(SaisTest, TinyInputs) {
  ExpectValidSuffixArray({0});
  ExpectValidSuffixArray({5, 0});
  ExpectValidSuffixArray({2, 2, 0});
  ExpectValidSuffixArray({3, 2, 0});
  ExpectValidSuffixArray({2, 3, 0});
}

TEST(SaisTest, ClassicBanana) {
  // "banana" mapped to integers: b=4,a=3,n=5.
  std::vector<Symbol> t{4, 3, 5, 3, 5, 3, 0};
  ExpectValidSuffixArray(t);
}

TEST(SaisTest, AllEqualSymbols) {
  ExpectValidSuffixArray(WithSentinel(std::vector<Symbol>(500, 7)));
}

TEST(SaisTest, StrictlyIncreasingAndDecreasing) {
  std::vector<Symbol> inc, dec;
  for (uint32_t i = 0; i < 200; ++i) inc.push_back(2 + i);
  for (uint32_t i = 0; i < 200; ++i) dec.push_back(2 + 199 - i);
  ExpectValidSuffixArray(WithSentinel(inc));
  ExpectValidSuffixArray(WithSentinel(dec));
}

TEST(SaisTest, PeriodicText) {
  std::vector<Symbol> t;
  for (int i = 0; i < 300; ++i) t.push_back(2 + (i % 3));
  ExpectValidSuffixArray(WithSentinel(t));
}

class SaisRandomTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(SaisRandomTest, MatchesNaiveSort) {
  auto [n, sigma] = GetParam();
  Rng rng(n * 1000 + sigma);
  ExpectValidSuffixArray(WithSentinel(UniformText(rng, n, sigma)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SaisRandomTest,
    ::testing::Combine(::testing::Values(1, 2, 10, 100, 1000, 5000),
                       ::testing::Values(1u, 2u, 4u, 26u, 1000u)));

TEST(SaisTest, MarkovAndZipfTexts) {
  Rng rng(11);
  ExpectValidSuffixArray(WithSentinel(MarkovText(rng, 2000, 16)));
  ExpectValidSuffixArray(WithSentinel(ZipfText(rng, 2000, 64)));
}

TEST(SaisTest, SentinelRowIsFirst) {
  Rng rng(12);
  auto t = WithSentinel(UniformText(rng, 1000, 8));
  auto sa = BuildSuffixArray(t, 10);
  EXPECT_EQ(sa[0], t.size() - 1);
  // Permutation property.
  std::vector<bool> seen(t.size(), false);
  for (uint64_t v : sa) {
    ASSERT_LT(v, t.size());
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

}  // namespace
}  // namespace dyndex
