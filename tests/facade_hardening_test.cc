// Degenerate-input semantics of the serving facades, regression-tested for
// every backend: empty / out-of-alphabet patterns, unknown document ids,
// out-of-range extract windows, empty documents, and relation ids beyond a
// backend's capacity must all answer totally (0 / empty / false) instead of
// tripping a DYNDEX_CHECK abort deep inside a backend.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "serve/concurrent_index.h"
#include "serve/dynamic_index.h"
#include "serve/relation_index.h"
#include "text/concat_text.h"

namespace dyndex {
namespace {

std::vector<Backend> AllDocBackends() {
  return {Backend::kT1, Backend::kT2, Backend::kT3, Backend::kBaseline};
}

std::vector<RelationBackend> AllRelationBackends() {
  return {RelationBackend::kTheorem2, RelationBackend::kBaseline,
          RelationBackend::kGraph, RelationBackend::kDeletionOnly,
          RelationBackend::kFast};
}

DynamicIndexOptions SmallDocOptions() {
  DynamicIndexOptions opt;
  opt.min_c0 = 64;  // force documents past C0 into compressed levels
  return opt;
}

std::vector<Symbol> Doc(std::initializer_list<Symbol> s) { return s; }

TEST(FacadeHardening, DegeneratePatternsAnswerZeroOnEveryBackend) {
  for (Backend b : AllDocBackends()) {
    auto index = MakeDynamicIndex(b, SmallDocOptions());
    // Both cold (empty index) and warm.
    for (int warm = 0; warm < 2; ++warm) {
      SCOPED_TRACE(std::string(index->backend_name()) +
                   (warm ? " warm" : " cold"));
      EXPECT_EQ(index->Count({}), 0u);
      EXPECT_TRUE(index->Locate({}).empty());
      // Reserved / unrepresentable symbols: the sentinel, the separator, and
      // the internal terminator range must never match document boundaries.
      for (Symbol s : {kSentinel, kSeparator, kMaxPatternSymbol,
                       std::numeric_limits<Symbol>::max()}) {
        EXPECT_EQ(index->Count({s}), 0u) << "symbol " << s;
        EXPECT_TRUE(index->Locate({kMinSymbol, s}).empty()) << "symbol " << s;
      }
      if (warm == 0) {
        index->Insert(Doc({2, 3, 4, 2, 3}));
        index->Insert(Doc({3, 3, 3}));
        // Push one doc large enough to leave C0 on the transformations.
        index->Insert(std::vector<Symbol>(200, 2));
      }
    }
    // Sanity: real patterns still work after the degenerate probes
    // ({3,3,3} holds two overlapping occurrences).
    EXPECT_EQ(index->Count({3, 3}), 2u);
  }
}

TEST(FacadeHardening, UnknownDocIdsAnswerEmptyOnEveryBackend) {
  for (Backend b : AllDocBackends()) {
    auto index = MakeDynamicIndex(b, SmallDocOptions());
    SCOPED_TRACE(index->backend_name());
    DocId id = index->Insert(Doc({5, 6, 7, 8}));
    for (DocId bogus : {id + 1, DocId{12345}, kInvalidDocId}) {
      EXPECT_FALSE(index->Contains(bogus));
      EXPECT_EQ(index->DocLenOf(bogus), 0u);
      EXPECT_TRUE(index->Extract(bogus, 0, 4).empty());
      EXPECT_FALSE(index->Erase(bogus));
    }
    // Erased ids become unknown ids.
    EXPECT_TRUE(index->Erase(id));
    EXPECT_EQ(index->DocLenOf(id), 0u);
    EXPECT_TRUE(index->Extract(id, 0, 1).empty());
  }
}

TEST(FacadeHardening, ExtractClampsToStoredSuffixOnEveryBackend) {
  for (Backend b : AllDocBackends()) {
    auto index = MakeDynamicIndex(b, SmallDocOptions());
    SCOPED_TRACE(index->backend_name());
    std::vector<Symbol> doc = {9, 8, 7, 6, 5};
    DocId id = index->Insert(doc);
    EXPECT_EQ(index->Extract(id, 0, 5), doc);
    EXPECT_EQ(index->Extract(id, 0, 100), doc);  // len clamped
    EXPECT_EQ(index->Extract(id, 3, 100), (Doc({6, 5})));
    EXPECT_TRUE(index->Extract(id, 5, 1).empty());   // from == len
    EXPECT_TRUE(index->Extract(id, 99, 1).empty());  // from past the end
    EXPECT_TRUE(index->Extract(id, 2, 0).empty());   // empty window
  }
}

TEST(FacadeHardening, UnstorableDocumentsAreRejectedOnEveryBackend) {
  for (Backend b : AllDocBackends()) {
    auto index = MakeDynamicIndex(b, SmallDocOptions());
    SCOPED_TRACE(index->backend_name());
    EXPECT_EQ(index->Insert({}), kInvalidDocId);
    // Reserved symbols (sentinel, separator, the terminator range) must
    // never reach a backend's storage path.
    for (Symbol s : {kSentinel, kSeparator, kMaxPatternSymbol,
                     std::numeric_limits<Symbol>::max()}) {
      EXPECT_EQ(index->Insert(Doc({2, s, 3})), kInvalidDocId) << s;
    }
    if (b == Backend::kBaseline) {
      // Beyond the baseline's fixed alphabet capacity (max_symbol = 258).
      EXPECT_EQ(index->Insert(Doc({2, 300})), kInvalidDocId);
    } else {
      // The transformation backends remap any non-reserved symbol.
      DocId big = index->Insert(Doc({2, 70000, 5}));
      EXPECT_NE(big, kInvalidDocId);
      EXPECT_EQ(index->Count({70000u}), 1u);
      EXPECT_TRUE(index->Erase(big));
    }
    EXPECT_EQ(index->num_docs(), 0u);
    // A bulk batch mixing empty and real documents inserts the real ones and
    // reports kInvalidDocId at the empty slots.
    std::vector<DocId> ids = index->InsertBulk({Doc({2, 3}), {}, Doc({4})});
    ASSERT_EQ(ids.size(), 3u);
    EXPECT_NE(ids[0], kInvalidDocId);
    EXPECT_EQ(ids[1], kInvalidDocId);
    EXPECT_NE(ids[2], kInvalidDocId);
    EXPECT_EQ(index->num_docs(), 2u);
    EXPECT_EQ(index->DocLenOf(ids[2]), 1u);
  }
}

TEST(FacadeHardening, ConcurrentIndexPassesDegenerateQueriesThrough) {
  ConcurrentIndex index(MakeDynamicIndex(Backend::kT2, SmallDocOptions()));
  EXPECT_EQ(index.Count({}), 0u);
  EXPECT_TRUE(index.Locate({}).empty());
  std::vector<Symbol> out;
  EXPECT_FALSE(index.Extract(99, 0, 1, &out));
  index.InsertBatch({Doc({2, 2, 3})});
  EXPECT_EQ(index.Count({}), 0u);
  EXPECT_EQ(index.Count({2, 2}), 1u);
}

TEST(FacadeHardening, RelationIdsBeyondCapacityAnswerEmpty) {
  RelationIndexOptions opt;
  opt.baseline_max_objects = 8;
  opt.baseline_max_labels = 8;
  opt.min_c0 = 16;
  for (RelationBackend b : AllRelationBackends()) {
    auto rel = MakeRelationIndex(b, opt);
    SCOPED_TRACE(rel->backend_name());
    ASSERT_TRUE(rel->AddPair(1, 2));
    ASSERT_TRUE(rel->AddPair(3, 2));
    const uint32_t huge = std::numeric_limits<uint32_t>::max();
    for (uint32_t bogus : {uint32_t{8}, uint32_t{100000}, huge}) {
      // For fixed-capacity backends these are beyond capacity; for the
      // dynamic backends they are merely absent. Either way: total answers.
      EXPECT_FALSE(rel->Related(bogus, 2)) << bogus;
      EXPECT_FALSE(rel->Related(1, bogus)) << bogus;
      EXPECT_TRUE(rel->LabelsOf(bogus).empty()) << bogus;
      EXPECT_TRUE(rel->ObjectsOf(bogus).empty()) << bogus;
      EXPECT_EQ(rel->CountLabelsOf(bogus), 0u) << bogus;
      EXPECT_EQ(rel->CountObjectsOf(bogus), 0u) << bogus;
      EXPECT_FALSE(rel->RemovePair(bogus, bogus));
    }
    EXPECT_EQ(rel->num_pairs(), 2u);
    // Bulk batches drop unrepresentable pairs instead of aborting. The
    // deletion-only backend has fixed capacities; the baseline grows on
    // demand but cannot represent UINT32_MAX (it would need capacity 2^32);
    // the fast tier reserves the top two id values as hash sentinels; the
    // Theorem 2/3 structures accept any uint32 id.
    bool capped = b == RelationBackend::kBaseline ||
                  b == RelationBackend::kDeletionOnly ||
                  b == RelationBackend::kFast;
    uint64_t added = rel->AddPairsBulk({{2, 2}, {huge, 1}, {4, 4}});
    if (capped) {
      EXPECT_EQ(added, 2u);
      EXPECT_EQ(rel->num_pairs(), 4u);
    } else {
      EXPECT_EQ(added, 3u);
      EXPECT_TRUE(rel->Related(huge, 1));
    }
    EXPECT_TRUE(rel->Related(2, 2));
    EXPECT_TRUE(rel->Related(4, 4));
    rel->CheckInvariants();
  }
}

TEST(FacadeHardening, BaselineRelationGrowsCapacityOnDemand) {
  RelationIndexOptions opt;
  opt.baseline_max_objects = 4;
  opt.baseline_max_labels = 4;
  auto rel = MakeRelationIndex(RelationBackend::kBaseline, opt);
  ASSERT_TRUE(rel->AddPair(1, 2));
  // Ids beyond both initial capacities grow the structure (doubling rebuild)
  // instead of being screened out.
  EXPECT_TRUE(rel->AddPair(100, 200));
  EXPECT_TRUE(rel->Related(100, 200));
  EXPECT_EQ(rel->CountLabelsOf(100), 1u);
  EXPECT_EQ(rel->LabelsOf(100), std::vector<uint32_t>{200});
  // Queries alone never grow: absent ids answer empty.
  EXPECT_FALSE(rel->Related(5000, 1));
  EXPECT_TRUE(rel->LabelsOf(5000).empty());
  EXPECT_FALSE(rel->RemovePair(5000, 1));
  // The bulk path grows too (warm relation: per-pair inserts).
  EXPECT_EQ(rel->AddPairsBulk({{1000, 1}, {2, 900}}), 2u);
  EXPECT_TRUE(rel->Related(1000, 1));
  EXPECT_TRUE(rel->Related(2, 900));
  // Pairs inserted before a growth rebuild survive it.
  EXPECT_TRUE(rel->Related(1, 2));
  EXPECT_EQ(rel->num_pairs(), 4u);
  rel->CheckInvariants();
}

TEST(FacadeHardening, DeletionOnlyBackendServesMixedChurn) {
  auto rel = MakeRelationIndex(RelationBackend::kDeletionOnly, {});
  // Empty-relation queries (the default-constructed static core has a zero
  // id universe; nothing may abort).
  EXPECT_EQ(rel->num_pairs(), 0u);
  EXPECT_FALSE(rel->Related(0, 0));
  EXPECT_TRUE(rel->LabelsOf(0).empty());
  EXPECT_EQ(rel->CountLabelsOf(7), 0u);
  EXPECT_EQ(rel->CountObjectsOf(7), 0u);
  EXPECT_FALSE(rel->RemovePair(3, 3));
  // Insert / delete / re-insert across rebuilds and a shrinking universe.
  EXPECT_TRUE(rel->AddPair(5, 9));
  EXPECT_TRUE(rel->AddPair(2, 1));
  EXPECT_FALSE(rel->AddPair(5, 9));
  EXPECT_EQ(rel->AddPairsBulk({{5, 9}, {6, 1}, {6, 1}, {7, 2}}), 2u);
  EXPECT_EQ(rel->num_pairs(), 4u);
  EXPECT_TRUE(rel->RemovePair(7, 2));  // drops the largest object id
  EXPECT_EQ(rel->CountLabelsOf(7), 0u);
  EXPECT_TRUE(rel->RemovePair(5, 9));  // purge may shrink num_labels
  EXPECT_EQ(rel->num_pairs(), 2u);
  EXPECT_TRUE(rel->Related(2, 1));
  EXPECT_TRUE(rel->Related(6, 1));
  EXPECT_EQ(rel->CountObjectsOf(1), 2u);
  EXPECT_TRUE(rel->AddPair(5, 9));  // universe grows back
  EXPECT_TRUE(rel->Related(5, 9));
  rel->CheckInvariants();
}

}  // namespace
}  // namespace dyndex
