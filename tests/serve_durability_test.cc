// Durability plumbing of the serving facades: ConcurrentIndex /
// ConcurrentRelation and their sharded siblings bound to a MemEnv directory
// — batch logging, checkpointing, crash-and-reopen recovery, the group-commit
// window, and the loud-refusal paths (mismatched backend, mismatched shard
// count, corrupt snapshot, vanished shard state).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "persist/env.h"
#include "persist/status.h"
#include "serve/concurrent_index.h"
#include "serve/concurrent_relation.h"
#include "serve/dynamic_index.h"
#include "serve/persistence.h"
#include "serve/relation_index.h"
#include "serve/sharded_index.h"
#include "serve/sharded_relation.h"

namespace dyndex {
namespace {

using persist::MemEnv;

std::vector<Symbol> Doc(int tag, int len) {
  std::vector<Symbol> doc;
  doc.reserve(len);
  for (int i = 0; i < len; ++i) {
    doc.push_back(kMinSymbol + static_cast<Symbol>((tag * 31 + i * 7) % 13));
  }
  return doc;
}

/// Asserts that `facade` serves exactly the documents in `model`
/// (id -> symbols), checking membership, content, and the doc count.
template <typename Facade>
void ExpectServes(Facade& facade,
                  const std::map<DocId, std::vector<Symbol>>& model) {
  EXPECT_EQ(facade.num_docs(), model.size());
  for (const auto& [id, symbols] : model) {
    std::vector<Symbol> got;
    ASSERT_TRUE(facade.Extract(id, 0, symbols.size(), &got)) << "id=" << id;
    EXPECT_EQ(got, symbols) << "id=" << id;
  }
}

class IndexDurabilityTest : public ::testing::TestWithParam<Backend> {};

TEST_P(IndexDurabilityTest, RoundTripThroughCrash) {
  MemEnv env;
  std::map<DocId, std::vector<Symbol>> model;
  {
    ConcurrentIndex index(MakeDynamicIndex(GetParam()));
    ASSERT_TRUE(index.OpenDurable(&env, "db").ok());
    EXPECT_TRUE(index.durable());
    for (int batch = 0; batch < 3; ++batch) {
      std::vector<std::vector<Symbol>> docs;
      for (int d = 0; d < 4; ++d) docs.push_back(Doc(batch * 4 + d, 6 + d));
      std::vector<DocId> ids = index.InsertBatch(docs);
      ASSERT_EQ(ids.size(), docs.size());
      for (size_t d = 0; d < docs.size(); ++d) model[ids[d]] = docs[d];
    }
    std::vector<DocId> dead = {model.begin()->first,
                               std::next(model.begin(), 5)->first};
    EXPECT_EQ(index.EraseBatch(dead), 2u);
    for (DocId id : dead) model.erase(id);
    // No CloseDurable: the facade just vanishes, as in a crash. Every batch
    // was synced (default group-commit window of 1), so nothing may be lost.
  }
  ConcurrentIndex reopened(MakeDynamicIndex(GetParam()));
  RecoveryStats stats;
  ASSERT_TRUE(reopened.OpenDurable(&env, "db", {}, &stats).ok());
  EXPECT_FALSE(stats.snapshot_loaded);
  EXPECT_EQ(stats.replayed_batches, 4u);  // 3 inserts + 1 erase
  EXPECT_EQ(stats.dropped_wal_bytes, 0u);
  EXPECT_EQ(reopened.epoch(), 4u);
  ExpectServes(reopened, model);
  // The recovered facade keeps logging: a post-recovery batch must survive
  // the next reopen too.
  std::vector<DocId> extra = reopened.InsertBatch({Doc(99, 9)});
  ASSERT_EQ(extra.size(), 1u);
  model[extra[0]] = Doc(99, 9);
  ASSERT_TRUE(reopened.CloseDurable().ok());
  EXPECT_FALSE(reopened.durable());

  ConcurrentIndex again(MakeDynamicIndex(GetParam()));
  ASSERT_TRUE(again.OpenDurable(&env, "db", {}, &stats).ok());
  EXPECT_EQ(stats.replayed_batches, 5u);
  ExpectServes(again, model);
}

TEST_P(IndexDurabilityTest, CheckpointCutsTheReplayTail) {
  MemEnv env;
  std::map<DocId, std::vector<Symbol>> model;
  {
    ConcurrentIndex index(MakeDynamicIndex(GetParam()));
    ASSERT_TRUE(index.OpenDurable(&env, "db").ok());
    for (int batch = 0; batch < 4; ++batch) {
      std::vector<DocId> ids = index.InsertBatch({Doc(batch, 8)});
      model[ids[0]] = Doc(batch, 8);
      if (batch == 2) {
        ASSERT_TRUE(index.Checkpoint().ok());
      }
    }
  }
  ConcurrentIndex reopened(MakeDynamicIndex(GetParam()));
  RecoveryStats stats;
  ASSERT_TRUE(reopened.OpenDurable(&env, "db", {}, &stats).ok());
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_EQ(stats.snapshot_seq, 3u);     // checkpoint after the third batch
  EXPECT_EQ(stats.replayed_batches, 1u)  // only the fourth replays
      << "checkpoint did not reset the WAL";
  ExpectServes(reopened, model);
  // Ids minted after recovery must not collide with snapshot-restored ids.
  std::vector<DocId> fresh = reopened.InsertBatch({Doc(50, 5)});
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(model.count(fresh[0]), 0u);
}

TEST_P(IndexDurabilityTest, GroupCommitWindowLosesOnlyTheUnsyncedTail) {
  MemEnv env;
  DurableOptions opt;
  opt.sync_every_batches = 3;
  {
    ConcurrentIndex index(MakeDynamicIndex(GetParam()));
    ASSERT_TRUE(index.OpenDurable(&env, "db", opt).ok());
    for (int batch = 0; batch < 5; ++batch) {
      index.InsertBatch({Doc(batch, 8)});
    }
    // Batches 1-3 hit the window and synced; 4-5 sit in the page cache.
    env.SimulateCrash();
  }
  ConcurrentIndex reopened(MakeDynamicIndex(GetParam()));
  RecoveryStats stats;
  ASSERT_TRUE(reopened.OpenDurable(&env, "db", opt, &stats).ok());
  EXPECT_EQ(stats.replayed_batches, 3u);
  EXPECT_EQ(reopened.num_docs(), 3u);
}

TEST_P(IndexDurabilityTest, SyncWalNarrowsTheLossWindowToZero) {
  MemEnv env;
  DurableOptions opt;
  opt.sync_every_batches = 100;  // effectively manual
  {
    ConcurrentIndex index(MakeDynamicIndex(GetParam()));
    ASSERT_TRUE(index.OpenDurable(&env, "db", opt).ok());
    index.InsertBatch({Doc(0, 8), Doc(1, 8)});
    ASSERT_TRUE(index.SyncWal().ok());
    env.SimulateCrash();
  }
  ConcurrentIndex reopened(MakeDynamicIndex(GetParam()));
  ASSERT_TRUE(reopened.OpenDurable(&env, "db", opt).ok());
  EXPECT_EQ(reopened.num_docs(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, IndexDurabilityTest,
                         ::testing::Values(Backend::kT1, Backend::kT2,
                                           Backend::kT3, Backend::kBaseline),
                         [](const auto& info) {
                           return BackendName(info.param);
                         });

TEST(IndexDurabilityRefusalTest, BackendMismatchIsLoud) {
  MemEnv env;
  {
    ConcurrentIndex index(MakeDynamicIndex(Backend::kT1));
    ASSERT_TRUE(index.OpenDurable(&env, "db").ok());
    index.InsertBatch({Doc(0, 8)});
    ASSERT_TRUE(index.Checkpoint().ok());
  }
  ConcurrentIndex other(MakeDynamicIndex(Backend::kBaseline));
  persist::Status s = other.OpenDurable(&env, "db");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_FALSE(other.durable());
}

TEST(IndexDurabilityRefusalTest, CorruptSnapshotIsLoudNotEmpty) {
  MemEnv env;
  {
    ConcurrentIndex index(MakeDynamicIndex(Backend::kT1));
    ASSERT_TRUE(index.OpenDurable(&env, "db").ok());
    index.InsertBatch({Doc(0, 64)});
    ASSERT_TRUE(index.Checkpoint().ok());
  }
  ASSERT_TRUE(env.CorruptByte("db/SNAPSHOT", 40, 0x08).ok());
  ConcurrentIndex reopened(MakeDynamicIndex(Backend::kT1));
  persist::Status s = reopened.OpenDurable(&env, "db");
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_EQ(reopened.num_docs(), 0u);
  EXPECT_FALSE(reopened.durable());
}

TEST(IndexDurabilityRefusalTest, RelationWalInAnIndexDirIsLoud) {
  MemEnv env;
  {
    ConcurrentRelation relation(MakeRelationIndex(RelationBackend::kBaseline));
    ASSERT_TRUE(relation.OpenDurable(&env, "db").ok());
    relation.AddPairsBatch({{1, 2}});
  }
  ConcurrentIndex index(MakeDynamicIndex(Backend::kT1));
  persist::Status s = index.OpenDurable(&env, "db");
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

class RelationDurabilityTest
    : public ::testing::TestWithParam<RelationBackend> {};

TEST_P(RelationDurabilityTest, RoundTripThroughCrash) {
  MemEnv env;
  RelationPairs live;
  {
    ConcurrentRelation relation(MakeRelationIndex(GetParam()));
    ASSERT_TRUE(relation.OpenDurable(&env, "db").ok());
    EXPECT_EQ(relation.AddPairsBatch({{1, 10}, {1, 11}, {2, 10}, {3, 12}}),
              4u);
    EXPECT_EQ(relation.RemovePairsBatch({{1, 11}, {9, 9}}), 1u);
    EXPECT_EQ(relation.AddPairsBatch({{4, 13}}), 1u);
    live = {{1, 10}, {2, 10}, {3, 12}, {4, 13}};
  }
  ConcurrentRelation reopened(MakeRelationIndex(GetParam()));
  RecoveryStats stats;
  ASSERT_TRUE(reopened.OpenDurable(&env, "db", {}, &stats).ok());
  EXPECT_EQ(stats.replayed_batches, 3u);
  EXPECT_EQ(reopened.num_pairs(), live.size());
  for (const auto& [object, label] : live) {
    EXPECT_TRUE(reopened.Related(object, label))
        << object << " -> " << label;
  }
  EXPECT_FALSE(reopened.Related(1, 11));
  EXPECT_EQ(reopened.LabelsOf(1), std::vector<uint32_t>{10});
}

TEST_P(RelationDurabilityTest, CheckpointCompactsRemovals) {
  MemEnv env;
  {
    ConcurrentRelation relation(MakeRelationIndex(GetParam()));
    ASSERT_TRUE(relation.OpenDurable(&env, "db").ok());
    relation.AddPairsBatch({{1, 10}, {2, 20}, {3, 30}});
    relation.RemovePairsBatch({{2, 20}});
    ASSERT_TRUE(relation.Checkpoint().ok());
    relation.AddPairsBatch({{5, 50}});
  }
  ConcurrentRelation reopened(MakeRelationIndex(GetParam()));
  RecoveryStats stats;
  ASSERT_TRUE(reopened.OpenDurable(&env, "db", {}, &stats).ok());
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_EQ(stats.snapshot_seq, 2u);
  EXPECT_EQ(stats.replayed_batches, 1u);
  EXPECT_EQ(reopened.num_pairs(), 3u);
  EXPECT_TRUE(reopened.Related(1, 10));
  EXPECT_FALSE(reopened.Related(2, 20));
  EXPECT_TRUE(reopened.Related(5, 50));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, RelationDurabilityTest,
                         ::testing::Values(RelationBackend::kTheorem2,
                                           RelationBackend::kBaseline,
                                           RelationBackend::kGraph,
                                           RelationBackend::kDeletionOnly,
                                           RelationBackend::kFast),
                         [](const auto& info) {
                           return RelationBackendName(info.param);
                         });

TEST(ShardedIndexDurabilityTest, RoundTripThroughCrash) {
  MemEnv env;
  std::map<DocId, std::vector<Symbol>> model;
  {
    ShardedIndex index(3, Backend::kT1);
    ASSERT_TRUE(index.OpenDurable(&env, "db").ok());
    EXPECT_TRUE(index.durable());
    for (int batch = 0; batch < 3; ++batch) {
      std::vector<std::vector<Symbol>> docs;
      for (int d = 0; d < 5; ++d) docs.push_back(Doc(batch * 5 + d, 6));
      std::vector<DocId> ids = index.InsertBatch(docs);
      for (size_t d = 0; d < docs.size(); ++d) model[ids[d]] = docs[d];
    }
    std::vector<DocId> dead = {model.begin()->first,
                               std::next(model.begin(), 7)->first};
    EXPECT_EQ(index.EraseBatch(dead), 2u);
    for (DocId id : dead) model.erase(id);
  }
  ShardedIndex reopened(3, Backend::kT1);
  RecoveryStats stats;
  ASSERT_TRUE(reopened.OpenDurable(&env, "db", {}, &stats).ok());
  EXPECT_FALSE(stats.snapshot_loaded);
  EXPECT_GE(stats.replayed_batches, 3u);  // per-shard sub-batches, summed
  ExpectServes(reopened, model);
  reopened.CheckInvariants();
  // Round-robin placement resumes without colliding with recovered ids.
  std::vector<std::vector<Symbol>> fresh_docs = {Doc(90, 6), Doc(91, 6),
                                                 Doc(92, 6)};
  std::vector<DocId> fresh = reopened.InsertBatch(fresh_docs);
  ASSERT_EQ(fresh.size(), fresh_docs.size());
  for (size_t d = 0; d < fresh.size(); ++d) {
    ASSERT_NE(fresh[d], kInvalidDocId);
    EXPECT_EQ(model.count(fresh[d]), 0u);
    model[fresh[d]] = fresh_docs[d];
  }
  ExpectServes(reopened, model);
}

TEST(ShardedIndexDurabilityTest, CheckpointAllShardsAndReopen) {
  MemEnv env;
  std::map<DocId, std::vector<Symbol>> model;
  {
    ShardedIndex index(2, Backend::kBaseline);
    ASSERT_TRUE(index.OpenDurable(&env, "db").ok());
    std::vector<std::vector<Symbol>> docs;
    for (int d = 0; d < 6; ++d) docs.push_back(Doc(d, 7));
    std::vector<DocId> ids = index.InsertBatch(docs);
    for (size_t d = 0; d < docs.size(); ++d) model[ids[d]] = docs[d];
    ASSERT_TRUE(index.Checkpoint().ok());
    std::vector<DocId> more = index.InsertBatch({Doc(40, 7)});
    model[more[0]] = Doc(40, 7);
    ASSERT_TRUE(index.CloseDurable().ok());
  }
  ShardedIndex reopened(2, Backend::kBaseline);
  RecoveryStats stats;
  ASSERT_TRUE(reopened.OpenDurable(&env, "db", {}, &stats).ok());
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_EQ(stats.replayed_batches, 1u);  // one shard got the straggler
  ExpectServes(reopened, model);
}

TEST(ShardedIndexDurabilityTest, ShardCountMismatchIsLoud) {
  MemEnv env;
  {
    ShardedIndex index(3, Backend::kT1);
    ASSERT_TRUE(index.OpenDurable(&env, "db").ok());
    index.InsertBatch({Doc(0, 6)});
  }
  ShardedIndex wrong(4, Backend::kT1);
  persist::Status s = wrong.OpenDurable(&env, "db");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_FALSE(wrong.durable());
}

TEST(ShardedIndexDurabilityTest, BackendMismatchIsLoud) {
  MemEnv env;
  {
    ShardedIndex index(2, Backend::kT1);
    ASSERT_TRUE(index.OpenDurable(&env, "db").ok());
  }
  ShardedIndex wrong(2, Backend::kBaseline);
  persist::Status s = wrong.OpenDurable(&env, "db");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(ShardedIndexDurabilityTest, VanishedShardIsLoudNotPartial) {
  MemEnv env;
  {
    ShardedIndex index(3, Backend::kT1);
    ASSERT_TRUE(index.OpenDurable(&env, "db").ok());
    index.InsertBatch({Doc(0, 6), Doc(1, 6), Doc(2, 6)});
  }
  ASSERT_TRUE(env.DeleteFile("db/shard-1/WAL").ok());
  ShardedIndex reopened(3, Backend::kT1);
  persist::Status s = reopened.OpenDurable(&env, "db");
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_FALSE(reopened.durable());
}

TEST(ShardedRelationDurabilityTest, RoundTripThroughCrash) {
  MemEnv env;
  RelationPairs live;
  {
    ShardedRelation relation(3, RelationBackend::kTheorem2);
    ASSERT_TRUE(relation.OpenDurable(&env, "db").ok());
    RelationPairs pairs;
    for (uint32_t i = 0; i < 24; ++i) pairs.push_back({i, 100 + i % 5});
    EXPECT_EQ(relation.AddPairsBatch(pairs), pairs.size());
    RelationPairs dead = {{0, 100}, {7, 102}};
    EXPECT_EQ(relation.RemovePairsBatch(dead), 2u);
    for (const auto& p : pairs) {
      if (p != dead[0] && p != dead[1]) live.push_back(p);
    }
    ASSERT_TRUE(relation.Checkpoint().ok());
    EXPECT_EQ(relation.AddPairsBatch({{50, 500}}), 1u);
    live.push_back({50, 500});
  }
  ShardedRelation reopened(3, RelationBackend::kTheorem2);
  RecoveryStats stats;
  ASSERT_TRUE(reopened.OpenDurable(&env, "db", {}, &stats).ok());
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_EQ(reopened.num_pairs(), live.size());
  for (const auto& [object, label] : live) {
    EXPECT_TRUE(reopened.Related(object, label))
        << object << " -> " << label;
  }
  EXPECT_FALSE(reopened.Related(0, 100));
  reopened.CheckInvariants();
}

TEST(ShardedRelationDurabilityTest, ShardCountMismatchIsLoud) {
  MemEnv env;
  {
    ShardedRelation relation(2, RelationBackend::kBaseline);
    ASSERT_TRUE(relation.OpenDurable(&env, "db").ok());
    relation.AddPairsBatch({{1, 2}});
  }
  ShardedRelation wrong(3, RelationBackend::kBaseline);
  persist::Status s = wrong.OpenDurable(&env, "db");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(ShardedRelationDurabilityTest, IndexManifestRefusedByRelation) {
  MemEnv env;
  {
    ShardedIndex index(2, Backend::kT1);
    ASSERT_TRUE(index.OpenDurable(&env, "db").ok());
  }
  ShardedRelation relation(2, RelationBackend::kTheorem2);
  persist::Status s = relation.OpenDurable(&env, "db");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

}  // namespace
}  // namespace dyndex
