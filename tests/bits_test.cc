#include "util/bits.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace dyndex {
namespace {

TEST(BitsTest, PopcountMatchesNaive) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t x = rng.Next();
    uint32_t naive = 0;
    for (int b = 0; b < 64; ++b) naive += (x >> b) & 1;
    EXPECT_EQ(Popcount(x), naive);
  }
}

TEST(BitsTest, SelectInWordMatchesNaive) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    uint64_t x = rng.Next() & rng.Next();  // sparser words too
    uint32_t ones = Popcount(x);
    if (ones == 0) continue;
    uint32_t k = static_cast<uint32_t>(rng.Below(ones));
    uint32_t pos = SelectInWord(x, k);
    // Verify: bit set and exactly k ones before it.
    EXPECT_TRUE((x >> pos) & 1);
    uint32_t before = pos == 0 ? 0 : Popcount(x & LowMask(pos));
    EXPECT_EQ(before, k);
  }
}

TEST(BitsTest, SelectInWordEdgeCases) {
  EXPECT_EQ(SelectInWord(1ull, 0), 0u);
  EXPECT_EQ(SelectInWord(1ull << 63, 0), 63u);
  EXPECT_EQ(SelectInWord(~0ull, 63), 63u);
  EXPECT_EQ(SelectInWord(~0ull, 0), 0u);
  EXPECT_EQ(SelectInWord(0x8000000000000001ull, 1), 63u);
}

TEST(BitsTest, Logs) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2), 1u);
  EXPECT_EQ(FloorLog2(3), 1u);
  EXPECT_EQ(FloorLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(0), 0u);
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(1025), 11u);
  EXPECT_EQ(BitWidth(0), 1u);
  EXPECT_EQ(BitWidth(1), 1u);
  EXPECT_EQ(BitWidth(255), 8u);
  EXPECT_EQ(BitWidth(256), 9u);
}

TEST(BitsTest, LowMask) {
  EXPECT_EQ(LowMask(0), 0ull);
  EXPECT_EQ(LowMask(1), 1ull);
  EXPECT_EQ(LowMask(63), ~0ull >> 1);
  EXPECT_EQ(LowMask(64), ~0ull);
}

TEST(BitsTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 64), 0u);
  EXPECT_EQ(CeilDiv(1, 64), 1u);
  EXPECT_EQ(CeilDiv(64, 64), 1u);
  EXPECT_EQ(CeilDiv(65, 64), 2u);
}

TEST(BitsTest, ReadWriteBitsRoundTrip) {
  Rng rng(11);
  std::vector<uint64_t> words(8);
  for (int trial = 0; trial < 2000; ++trial) {
    uint64_t pos = rng.Below(8 * 64 - 64);
    uint32_t len = static_cast<uint32_t>(rng.Below(65));
    uint64_t value = rng.Next();
    uint64_t before0 = pos > 0 ? ReadBits(words.data(), 0,
                                          static_cast<uint32_t>(
                                              pos > 64 ? 64 : pos))
                               : 0;
    WriteBits(words.data(), pos, len, value);
    EXPECT_EQ(ReadBits(words.data(), pos, len), value & LowMask(len));
    // The prefix ahead of the write is untouched.
    if (pos > 0) {
      uint32_t plen = static_cast<uint32_t>(pos > 64 ? 64 : pos);
      EXPECT_EQ(ReadBits(words.data(), 0, plen), before0);
    }
  }
}

TEST(BitsTest, CopyBitsMatchesNaive) {
  Rng rng(13);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint64_t> src(10), dst(10), expect;
    for (auto& w : src) w = rng.Next();
    for (auto& w : dst) w = rng.Next();
    expect = dst;
    uint64_t len = rng.Below(9 * 64);
    uint64_t sp = rng.Below(10 * 64 - len + 1);
    uint64_t dp = rng.Below(10 * 64 - len + 1);
    for (uint64_t k = 0; k < len; ++k) {
      uint64_t bit = (src[(sp + k) >> 6] >> ((sp + k) & 63)) & 1;
      uint64_t mask = 1ull << ((dp + k) & 63);
      if (bit) {
        expect[(dp + k) >> 6] |= mask;
      } else {
        expect[(dp + k) >> 6] &= ~mask;
      }
    }
    CopyBits(dst.data(), dp, src.data(), sp, len);
    EXPECT_EQ(dst, expect) << "sp=" << sp << " dp=" << dp << " len=" << len;
  }
}

TEST(BitsTest, PopcountBitsMasksTail) {
  std::vector<uint64_t> words{~0ull, ~0ull};
  EXPECT_EQ(PopcountBits(words.data(), 0), 0u);
  EXPECT_EQ(PopcountBits(words.data(), 1), 1u);
  EXPECT_EQ(PopcountBits(words.data(), 64), 64u);
  EXPECT_EQ(PopcountBits(words.data(), 65), 65u);
  EXPECT_EQ(PopcountBits(words.data(), 128), 128u);
}

TEST(BitsTest, DefaultTauGrowsSlowly) {
  EXPECT_GE(DefaultTau(10), 4u);
  EXPECT_GE(DefaultTau(1 << 20), 4u);
  EXPECT_LE(DefaultTau(1 << 20), 8u);
  EXPECT_LE(DefaultTau(1ull << 40), 12u);
}

}  // namespace
}  // namespace dyndex
