// Concurrent serving: N reader threads hammer Count/Locate/Extract on a
// ConcurrentIndex while one writer applies insert/erase batches and
// Transformation 2 rebuilds levels on real builder threads.
//
// Linearizability check: the whole write script is generated up front, so the
// collection state after every batch (= every epoch) is known before any
// thread starts. Each query reports the epoch of the snapshot it observed;
// the answer must equal the precomputed answer at exactly that epoch. All
// reader-side comparisons collect failures into a mutex-guarded list (gtest
// assertions stay on the main thread).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gen/text_gen.h"
#include "serve/concurrent_index.h"
#include "serve/dynamic_index.h"
#include "tests/model_checker.h"
#include "util/rng.h"

namespace dyndex {
namespace {

constexpr int kReaders = 4;
constexpr uint32_t kSigma = 4;
constexpr uint32_t kNumImmortal = 6;
constexpr uint32_t kNumPatterns = 6;

struct Batch {
  bool is_insert = false;
  std::vector<uint32_t> docs;  // insert: indices into Script::contents
  std::vector<DocId> erases;   // erase: predicted doc ids
};

// The full write schedule plus everything readers need, all computed before
// any thread starts; immutable afterwards.
struct Script {
  std::vector<std::vector<Symbol>> contents;  // doc id -> symbols (ids are
                                              // assigned sequentially)
  std::vector<Batch> batches;
  std::vector<std::vector<Symbol>> patterns;
  // expected[e][p]: sorted occurrences of patterns[p] at epoch e.
  std::vector<std::vector<std::vector<Occurrence>>> expected;
};

Script MakeScript(uint64_t seed, int num_batches) {
  Script s;
  Rng rng(seed);
  auto gen_doc = [&](uint64_t max_len) {
    s.contents.push_back(UniformText(rng, rng.Range(1, max_len), kSigma));
    return static_cast<uint32_t>(s.contents.size() - 1);
  };
  // Batch 0: the immortal docs readers may Extract at any epoch >= 1.
  Batch first;
  first.is_insert = true;
  for (uint32_t i = 0; i < kNumImmortal; ++i) first.docs.push_back(gen_doc(50));
  s.batches.push_back(std::move(first));
  std::vector<DocId> mortal_live;
  for (int b = 1; b < num_batches; ++b) {
    Batch batch;
    if (b % 2 == 1 || mortal_live.size() < 2) {
      batch.is_insert = true;
      uint32_t k = static_cast<uint32_t>(rng.Range(1, 3));
      for (uint32_t i = 0; i < k; ++i) {
        // Mostly small docs; occasionally one big enough to push a level
        // overflow and with it a background build + swap.
        batch.docs.push_back(gen_doc(rng.Below(8) == 0 ? 220 : 60));
        mortal_live.push_back(batch.docs.back());
      }
    } else {
      uint32_t k = static_cast<uint32_t>(rng.Range(1, 2));
      for (uint32_t i = 0; i < k && !mortal_live.empty(); ++i) {
        uint64_t pick = rng.Below(mortal_live.size());
        batch.erases.push_back(mortal_live[pick]);
        mortal_live.erase(mortal_live.begin() + static_cast<int64_t>(pick));
      }
    }
    s.batches.push_back(std::move(batch));
  }
  for (uint32_t p = 0; p < kNumPatterns; ++p) {
    s.patterns.push_back(
        SamplePattern(rng, s.contents, rng.Range(1, 4), kSigma));
  }
  // Replay the schedule through the reference model: expected answers at
  // every epoch (epoch e = state after e batches).
  ReferenceModel model;
  s.expected.resize(s.batches.size() + 1);
  auto snapshot = [&](uint64_t epoch) {
    s.expected[epoch].resize(kNumPatterns);
    for (uint32_t p = 0; p < kNumPatterns; ++p) {
      s.expected[epoch][p] = model.Find(s.patterns[p]);
    }
  };
  snapshot(0);
  for (uint64_t b = 0; b < s.batches.size(); ++b) {
    const Batch& batch = s.batches[b];
    for (uint32_t doc : batch.docs) model.Insert(doc, s.contents[doc]);
    for (DocId id : batch.erases) model.Erase(id);
    snapshot(b + 1);
  }
  return s;
}

class FailureLog {
 public:
  void Add(std::string msg) {
    std::lock_guard<std::mutex> lock(mu_);
    if (failures_.size() < 20) failures_.push_back(std::move(msg));
  }
  std::vector<std::string> Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return failures_;
  }

 private:
  std::mutex mu_;
  std::vector<std::string> failures_;
};

void ReaderLoop(const ConcurrentIndex& index, const Script& script,
                uint64_t seed, const std::atomic<bool>& done,
                FailureLog* failures, uint64_t* queries_run) {
  Rng rng(seed);
  uint64_t n = 0;
  while (!done.load(std::memory_order_acquire)) {
    uint32_t p = static_cast<uint32_t>(rng.Below(kNumPatterns));
    uint64_t epoch = 0;
    switch (rng.Below(3)) {
      case 0: {
        auto got = index.Locate(script.patterns[p], &epoch);
        std::sort(got.begin(), got.end());
        if (got != script.expected[epoch][p]) {
          failures->Add("Locate mismatch: pattern " + std::to_string(p) +
                        " at epoch " + std::to_string(epoch) + ": got " +
                        std::to_string(got.size()) + " occs, want " +
                        std::to_string(script.expected[epoch][p].size()));
        }
        break;
      }
      case 1: {
        uint64_t got = index.Count(script.patterns[p], &epoch);
        uint64_t want = script.expected[epoch][p].size();
        if (got != want) {
          failures->Add("Count mismatch: pattern " + std::to_string(p) +
                        " at epoch " + std::to_string(epoch) + ": got " +
                        std::to_string(got) + ", want " +
                        std::to_string(want));
        }
        break;
      }
      default: {
        DocId id = rng.Below(kNumImmortal);
        const auto& want = script.contents[id];
        std::vector<Symbol> got;
        bool present = index.Extract(id, 0, want.size(), &got, &epoch);
        if (epoch >= 1) {
          if (!present) {
            failures->Add("Extract: immortal doc " + std::to_string(id) +
                          " absent at epoch " + std::to_string(epoch));
          } else if (got != want) {
            failures->Add("Extract mismatch: doc " + std::to_string(id) +
                          " at epoch " + std::to_string(epoch));
          }
        }
        break;
      }
    }
    ++n;
  }
  *queries_run = n;
}

void RunConcurrentScenario(std::unique_ptr<DynamicIndex> backend,
                           uint64_t seed, int num_batches) {
  Script script = MakeScript(seed, num_batches);
  ConcurrentIndex index(std::move(backend));
  FailureLog failures;
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  std::vector<uint64_t> query_counts(kReaders, 0);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back(ReaderLoop, std::cref(index), std::cref(script),
                         seed * 1000 + r, std::cref(done), &failures,
                         &query_counts[r]);
  }
  // Writer: apply the script, checking the predicted ids; yield a little so
  // readers overlap with many distinct epochs and in-flight rebuilds.
  DocId next_id = 0;
  for (const Batch& batch : script.batches) {
    if (batch.is_insert) {
      std::vector<std::vector<Symbol>> docs;
      for (uint32_t doc : batch.docs) docs.push_back(script.contents[doc]);
      std::vector<DocId> ids = index.InsertBatch(std::move(docs));
      for (uint64_t i = 0; i < ids.size(); ++i) {
        if (ids[i] != next_id + i) {
          failures.Add("unexpected id " + std::to_string(ids[i]));
        }
      }
      next_id += ids.size();
    } else {
      uint64_t erased = index.EraseBatch(batch.erases);
      if (erased != batch.erases.size()) {
        failures.Add("EraseBatch erased " + std::to_string(erased) + " of " +
                     std::to_string(batch.erases.size()));
      }
    }
    index.Poll();  // publish finished rebuilds between batches
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  for (const std::string& f : failures.Take()) ADD_FAILURE() << f;
  uint64_t total_queries = 0;
  for (uint64_t c : query_counts) total_queries += c;
  EXPECT_GT(total_queries, 0u);
  // Quiesce and verify the final state exhaustively against the model.
  index.Flush();
  uint64_t final_epoch = index.epoch();
  ASSERT_EQ(final_epoch, script.batches.size());
  for (uint32_t p = 0; p < kNumPatterns; ++p) {
    auto got = index.Locate(script.patterns[p]);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, script.expected[final_epoch][p]) << "pattern " << p;
  }
  index.unsynchronized().CheckInvariants();
}

DynamicIndexOptions SmallServeOptions(RebuildMode mode) {
  DynamicIndexOptions opt;
  opt.min_c0 = 64;  // frequent level overflows -> many background builds
  opt.tau = 4;
  opt.mode = mode;
  return opt;
}

// The headline scenario: readers against Transformation 2 with real builder
// threads, so queries overlap lock/build/swap/replay at every stage.
TEST(ServeConcurrent, ReadersDuringThreadedRebuilds) {
  RunConcurrentScenario(
      MakeDynamicIndex(Backend::kT2, SmallServeOptions(RebuildMode::kThreaded)),
      42, 90);
}

TEST(ServeConcurrent, ReadersDuringSynchronousRebuilds) {
  RunConcurrentScenario(MakeDynamicIndex(Backend::kT2, SmallServeOptions(
                                                  RebuildMode::kSynchronous)),
                        43, 90);
}

TEST(ServeConcurrent, ReadersOverTransformation1) {
  RunConcurrentScenario(MakeDynamicIndex(Backend::kT1, SmallServeOptions(
                                                  RebuildMode::kSynchronous)),
                        44, 70);
}

TEST(ServeConcurrent, ReadersOverBaseline) {
  RunConcurrentScenario(MakeDynamicIndex(Backend::kBaseline,
                                         SmallServeOptions(
                                             RebuildMode::kSynchronous)),
                        45, 70);
}

// A second threaded-T2 run with a different seed: more erase pressure on the
// deletion-replay path (deletions racing in-flight builds).
TEST(ServeConcurrent, ThreadedRebuildsSecondSeed) {
  RunConcurrentScenario(
      MakeDynamicIndex(Backend::kT2, SmallServeOptions(RebuildMode::kThreaded)),
      1337, 110);
}

}  // namespace
}  // namespace dyndex
