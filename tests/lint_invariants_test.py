#!/usr/bin/env python3
"""Pins the semantics of scripts/lint_invariants.py against the fixture
corpus in tests/lint_fixtures/ (see its README.md):

  * each bad fixture yields >= 1 finding of exactly its own rule;
  * the good corpus (including the escape-hatch files, which contain real
    violations suppressed with lint:allow) is completely clean;
  * the repo's own src/ tree is clean — the linter gates CI on it, so a
    regression here should fail close to the change that caused it;
  * --rules subsetting and the unknown-rule/ bad-path error paths exit 2.

Runs the linter in --mode=tokens (the authoritative semantics). When the
libclang python bindings are importable, the bad/good expectations are
repeated under --mode=ast as a consistency check; silently skipped
otherwise, since the AST mode is an opportunistic sharpening only.

Registered with ctest as lint_invariants_test (label tier1); runnable
directly: python3 tests/lint_invariants_test.py
"""

import os
import subprocess
import sys
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINTER = os.path.join(REPO, "scripts", "lint_invariants.py")
FIXTURES = os.path.join(REPO, "tests", "lint_fixtures")

RULES = (
    "reader-container",
    "publish-retire",
    "no-assert",
    "no-blocking-under-lock",
    "layer-dag",
)

BAD_BY_RULE = {
    "reader-container": "bad/reader_container.h",
    "publish-retire": "bad/publish_retire.cc",
    "no-assert": "bad/no_assert.cc",
    "no-blocking-under-lock": "bad/blocking_under_lock.cc",
    "layer-dag": "bad/layerdag",
}


def run_linter(*args, mode="tokens"):
    proc = subprocess.run(
        [sys.executable, LINTER, f"--mode={mode}", *args],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def have_libclang():
    try:
        import clang.cindex  # noqa: F401
        clang.cindex.Index.create()
        return True
    except Exception:
        return False


class LintInvariantsTest(unittest.TestCase):
    def check_bad(self, rule, mode):
        path = os.path.join(FIXTURES, BAD_BY_RULE[rule])
        code, out, _ = run_linter(path, mode=mode)
        self.assertEqual(code, 1, f"{rule}: expected findings, got none\n{out}")
        lines = [l for l in out.splitlines() if l.strip()]
        self.assertTrue(lines, f"{rule}: exit 1 but empty output")
        for line in lines:
            self.assertIn(f"[{rule}]", line,
                          f"{rule}: unexpected cross-rule finding: {line}")

    def check_good(self, mode):
        code, out, err = run_linter(os.path.join(FIXTURES, "good"), mode=mode)
        self.assertEqual(code, 0, f"good corpus not clean:\n{out}{err}")
        self.assertEqual(out.strip(), "")

    def test_bad_fixtures_token_mode(self):
        for rule in RULES:
            with self.subTest(rule=rule):
                self.check_bad(rule, "tokens")

    def test_good_fixtures_token_mode(self):
        self.check_good("tokens")

    def test_escape_hatch_alone(self):
        # The escape-hatch files are real violations + allows; linting just
        # them isolates the hatch from the rest of the good corpus.
        code, out, err = run_linter(
            os.path.join(FIXTURES, "good", "escape_hatch.cc"),
            os.path.join(FIXTURES, "good", "layerdag", "src", "alpha",
                         "allowed.h"))
        self.assertEqual(code, 0, f"escape hatch failed:\n{out}{err}")

    def test_repo_src_is_clean(self):
        code, out, err = run_linter(os.path.join(REPO, "src"))
        self.assertEqual(code, 0, f"src/ has findings:\n{out}{err}")

    def test_rules_subset(self):
        # With only no-assert enabled, the reader-container fixture is clean.
        code, out, _ = run_linter(
            "--rules=no-assert",
            os.path.join(FIXTURES, BAD_BY_RULE["reader-container"]))
        self.assertEqual(code, 0, out)

    def test_unknown_rule_is_usage_error(self):
        code, _, err = run_linter("--rules=no-such-rule", FIXTURES)
        self.assertEqual(code, 2, err)

    def test_missing_path_is_usage_error(self):
        code, _, err = run_linter(os.path.join(FIXTURES, "does-not-exist"))
        self.assertEqual(code, 2, err)

    @unittest.skipUnless(have_libclang(), "libclang python bindings absent")
    def test_ast_mode_matches_token_mode(self):
        for rule in RULES:
            with self.subTest(rule=rule):
                self.check_bad(rule, "ast")
        self.check_good("ast")


if __name__ == "__main__":
    unittest.main(verbosity=2)
