// Model tests of the fully-dynamic relation (Theorem 2), the dynamic graph
// (Theorem 3), and the rank/select-bottlenecked baseline relation [35].
#include "relation/dynamic_relation.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "gen/relation_gen.h"
#include "relation/baseline_relation.h"
#include "relation/dynamic_graph.h"
#include "util/rng.h"

namespace dyndex {
namespace {

using PairSet = std::set<std::pair<uint32_t, uint32_t>>;

DynamicRelationOptions SmallRel() {
  DynamicRelationOptions opt;
  opt.min_c0 = 16;
  opt.tau = 3;
  return opt;
}

template <typename Rel>
void CheckAgainstModel(const Rel& rel, const PairSet& model, uint32_t t,
                       uint32_t sl) {
  for (uint32_t o = 0; o < t; ++o) {
    std::multiset<uint32_t> got;
    rel.ForEachLabelOfObject(o, [&](uint32_t a) { got.insert(a); });
    std::multiset<uint32_t> expect;
    for (auto [oo, aa] : model) {
      if (oo == o) expect.insert(aa);
    }
    ASSERT_EQ(got, expect) << "object " << o;
    ASSERT_EQ(rel.CountLabelsOf(o), expect.size()) << "object " << o;
  }
  for (uint32_t a = 0; a < sl; ++a) {
    std::multiset<uint32_t> got;
    rel.ForEachObjectOfLabel(a, [&](uint32_t o) { got.insert(o); });
    std::multiset<uint32_t> expect;
    for (auto [oo, aa] : model) {
      if (aa == a) expect.insert(oo);
    }
    ASSERT_EQ(got, expect) << "label " << a;
    ASSERT_EQ(rel.CountObjectsOf(a), expect.size()) << "label " << a;
  }
}

TEST(DynamicRelationTest, ChurnMatchesModel) {
  DynamicRelation rel(SmallRel());
  PairSet model;
  Rng rng(41);
  uint32_t t = 30, sl = 25;
  for (int step = 0; step < 3000; ++step) {
    uint32_t o = static_cast<uint32_t>(rng.Below(t));
    uint32_t a = static_cast<uint32_t>(rng.Below(sl));
    if (rng.Below(3) != 0) {
      bool added = rel.AddPair(o, a);
      ASSERT_EQ(added, model.insert({o, a}).second) << "step " << step;
    } else {
      bool removed = rel.RemovePair(o, a);
      ASSERT_EQ(removed, model.erase({o, a}) > 0) << "step " << step;
    }
    if (step % 200 == 199) {
      ASSERT_EQ(rel.num_pairs(), model.size());
      rel.CheckInvariants();
      // Spot-check adjacency.
      for (int q = 0; q < 30; ++q) {
        uint32_t qo = static_cast<uint32_t>(rng.Below(t));
        uint32_t qa = static_cast<uint32_t>(rng.Below(sl));
        ASSERT_EQ(rel.Related(qo, qa), model.count({qo, qa}) > 0);
      }
    }
  }
  CheckAgainstModel(rel, model, t, sl);
  rel.CheckInvariants();
}

TEST(DynamicRelationTest, SlotReuseAfterLabelDeath) {
  DynamicRelation rel(SmallRel());
  // Fill past C0 so label slots land in compressed sub-collections.
  Rng rng(42);
  auto pairs = GenPairs(rng, 200, 40, 40);
  PairSet model;
  for (auto [o, a] : pairs) {
    rel.AddPair(o, a);
    model.insert({o, a});
  }
  // Kill every pair of label 7; its slot becomes reusable while stale
  // bitmaps still reference it.
  std::vector<std::pair<uint32_t, uint32_t>> dead;
  for (auto [o, a] : model) {
    if (a == 7) dead.push_back({o, a});
  }
  for (auto [o, a] : dead) {
    ASSERT_TRUE(rel.RemovePair(o, a));
    model.erase({o, a});
  }
  EXPECT_EQ(rel.CountObjectsOf(7), 0u);
  // New pairs with fresh label ids (forcing slot reuse) must not leak the
  // dead label's pairs.
  for (uint32_t i = 0; i < 30; ++i) {
    uint32_t fresh = 1000 + i;
    rel.AddPair(i % 40, fresh);
    model.insert({i % 40, fresh});
  }
  uint64_t fresh_total = 0;
  for (uint32_t i = 0; i < 30; ++i) {
    fresh_total += rel.CountObjectsOf(1000 + i);
  }
  EXPECT_EQ(fresh_total, 30u);
  EXPECT_EQ(rel.CountObjectsOf(7), 0u);
  rel.CheckInvariants();
}

TEST(DynamicRelationTest, ArbitrarySparseIds) {
  DynamicRelation rel(SmallRel());
  // Ids far apart exercise the SN/NS mapping.
  EXPECT_TRUE(rel.AddPair(4000000000u, 3999999999u));
  EXPECT_TRUE(rel.AddPair(7, 3999999999u));
  EXPECT_FALSE(rel.AddPair(7, 3999999999u));
  EXPECT_TRUE(rel.Related(4000000000u, 3999999999u));
  EXPECT_EQ(rel.CountObjectsOf(3999999999u), 2u);
  std::set<uint32_t> objs;
  rel.ForEachObjectOfLabel(3999999999u, [&](uint32_t o) { objs.insert(o); });
  EXPECT_EQ(objs, (std::set<uint32_t>{7, 4000000000u}));
}

TEST(DynamicGraphTest, NeighborsAndDegrees) {
  DynamicGraph g(SmallRel());
  PairSet model;
  Rng rng(43);
  auto edges = GenEdges(rng, 500, 40);
  for (auto [u, v] : edges) {
    ASSERT_TRUE(g.AddEdge(u, v));
    model.insert({u, v});
  }
  // Remove a quarter.
  std::vector<std::pair<uint32_t, uint32_t>> all(model.begin(), model.end());
  for (size_t i = 0; i < all.size(); i += 4) {
    ASSERT_TRUE(g.RemoveEdge(all[i].first, all[i].second));
    model.erase(all[i]);
  }
  EXPECT_EQ(g.num_edges(), model.size());
  for (uint32_t u = 0; u < 40; ++u) {
    std::set<uint32_t> out_got, in_got;
    for (uint32_t v : g.OutNeighbors(u)) out_got.insert(v);
    for (uint32_t v : g.InNeighbors(u)) in_got.insert(v);
    std::set<uint32_t> out_expect, in_expect;
    for (auto [a, b] : model) {
      if (a == u) out_expect.insert(b);
      if (b == u) in_expect.insert(a);
    }
    ASSERT_EQ(out_got, out_expect) << "node " << u;
    ASSERT_EQ(in_got, in_expect) << "node " << u;
    ASSERT_EQ(g.OutDegree(u), out_expect.size());
    ASSERT_EQ(g.InDegree(u), in_expect.size());
  }
  for (int q = 0; q < 100; ++q) {
    uint32_t u = static_cast<uint32_t>(rng.Below(40));
    uint32_t v = static_cast<uint32_t>(rng.Below(40));
    ASSERT_EQ(g.HasEdge(u, v), model.count({u, v}) > 0);
  }
}

TEST(DynamicGraphTest, SelfLoopsAndIsolatedNodes) {
  DynamicGraph g(SmallRel());
  EXPECT_TRUE(g.AddEdge(5, 5));
  EXPECT_TRUE(g.HasEdge(5, 5));
  EXPECT_EQ(g.OutDegree(5), 1u);
  EXPECT_EQ(g.InDegree(5), 1u);
  EXPECT_EQ(g.OutDegree(99), 0u);  // never-seen node
  EXPECT_TRUE(g.RemoveEdge(5, 5));
  EXPECT_FALSE(g.HasEdge(5, 5));
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(BaselineRelationTest, ChurnMatchesModel) {
  uint32_t t = 20, sl = 15;
  BaselineRelation rel(t, sl);
  PairSet model;
  Rng rng(44);
  for (int step = 0; step < 2000; ++step) {
    uint32_t o = static_cast<uint32_t>(rng.Below(t));
    uint32_t a = static_cast<uint32_t>(rng.Below(sl));
    if (rng.Below(3) != 0) {
      ASSERT_EQ(rel.AddPair(o, a), model.insert({o, a}).second);
    } else {
      ASSERT_EQ(rel.RemovePair(o, a), model.erase({o, a}) > 0);
    }
    if (step % 400 == 399) {
      ASSERT_EQ(rel.num_pairs(), model.size());
    }
  }
  CheckAgainstModel(rel, model, t, sl);
}

TEST(BaselineRelationTest, EmptyObjectQueries) {
  BaselineRelation rel(5, 5);
  EXPECT_EQ(rel.CountLabelsOf(3), 0u);
  EXPECT_FALSE(rel.Related(3, 3));
  EXPECT_FALSE(rel.RemovePair(3, 3));
  rel.ForEachLabelOfObject(3, [](uint32_t) { FAIL(); });
}

}  // namespace
}  // namespace dyndex
