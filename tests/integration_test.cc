// Cross-module integration tests: byte-string round trips through the whole
// stack, agreement between all four dynamic collection implementations on a
// shared random workload, and framework/index interoperability.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "baseline/dynamic_fm_index.h"
#include "baseline/suffix_tree_index.h"
#include "core/dynamic_collection.h"
#include "core/transformation2.h"
#include "gen/text_gen.h"
#include "text/fm_index.h"
#include "text/packed_sa_index.h"
#include "util/rng.h"

namespace dyndex {
namespace {

TEST(IntegrationTest, ByteStringRoundTripThroughEverything) {
  const std::string text = "engineers build; theorists bound. build, bound!";
  DynamicCollectionT1<FmIndex> coll;
  DocId id = coll.Insert(SymbolsFromString(text));
  EXPECT_EQ(StringFromSymbols(coll.Extract(id, 0, text.size())), text);
  auto occ = coll.Find(SymbolsFromString("build"));
  EXPECT_EQ(occ.size(), 2u);
  EXPECT_EQ(coll.Count(SymbolsFromString("bound")), 2u);
  EXPECT_EQ(coll.Count(SymbolsFromString("; ")), 1u);
}

// All four dynamic collection implementations must agree on every answer.
TEST(IntegrationTest, FourImplementationsAgree) {
  DynamicCollectionOptions small;
  small.min_c0 = 64;
  T2Options t2opt;
  t2opt.min_c0 = 64;
  t2opt.mode = RebuildMode::kThreaded;
  DynamicCollectionT1<FmIndex> a(small);
  DynamicCollectionT3<FmIndex> b(small);
  DynamicCollectionT2<FmIndex> c(t2opt);
  DynamicCollectionT1<PackedSaIndex> d(small);

  Rng rng(321);
  std::vector<std::vector<Symbol>> live_docs;
  std::vector<std::array<DocId, 4>> ids;
  for (int step = 0; step < 250; ++step) {
    if (rng.Below(3) != 0 || ids.empty()) {
      auto doc = UniformText(rng, rng.Range(1, 80), 5);
      ids.push_back({a.Insert(doc), b.Insert(doc), c.Insert(doc),
                     d.Insert(doc)});
      live_docs.push_back(std::move(doc));
    } else {
      size_t k = rng.Below(ids.size());
      EXPECT_TRUE(a.Erase(ids[k][0]));
      EXPECT_TRUE(b.Erase(ids[k][1]));
      EXPECT_TRUE(c.Erase(ids[k][2]));
      EXPECT_TRUE(d.Erase(ids[k][3]));
      ids.erase(ids.begin() + static_cast<int64_t>(k));
      live_docs.erase(live_docs.begin() + static_cast<int64_t>(k));
    }
    if (step % 10 == 9 && !live_docs.empty()) {
      auto p = SamplePattern(rng, live_docs, rng.Range(1, 6), 5);
      uint64_t ca = a.Count(p);
      ASSERT_EQ(ca, b.Count(p)) << "T3 disagrees at step " << step;
      ASSERT_EQ(ca, c.Count(p)) << "T2 disagrees at step " << step;
      ASSERT_EQ(ca, d.Count(p)) << "PackedSA disagrees at step " << step;
    }
  }
  c.ForceAllPending();
  ASSERT_EQ(a.num_docs(), c.num_docs());
  ASSERT_EQ(a.live_symbols(), d.live_symbols());
}

// The framework and the rank/select-bottlenecked baseline answer identically;
// only the cost model differs.
TEST(IntegrationTest, FrameworkAgreesWithDynamicFmBaseline) {
  DynamicCollectionOptions small;
  small.min_c0 = 64;
  DynamicCollectionT1<FmIndex> ours(small);
  DynamicFmIndex::Options bopt;
  bopt.max_docs = 512;
  bopt.max_symbol = kMinSymbol + 8;
  DynamicFmIndex baseline(bopt);
  SuffixTreeIndex tree;

  Rng rng(322);
  std::vector<std::vector<Symbol>> live;
  std::vector<std::array<DocId, 3>> ids;
  for (int step = 0; step < 200; ++step) {
    if (rng.Below(3) != 0 || ids.empty()) {
      auto doc = UniformText(rng, rng.Range(1, 50), 8);
      ids.push_back({ours.Insert(doc), baseline.Insert(doc),
                     tree.Insert(doc)});
      live.push_back(std::move(doc));
    } else {
      size_t k = rng.Below(ids.size());
      ours.Erase(ids[k][0]);
      baseline.Erase(ids[k][1]);
      tree.Erase(ids[k][2]);
      ids.erase(ids.begin() + static_cast<int64_t>(k));
      live.erase(live.begin() + static_cast<int64_t>(k));
    }
    if (step % 10 == 9 && !live.empty()) {
      auto p = SamplePattern(rng, live, rng.Range(1, 5), 8);
      uint64_t expect = ours.Count(p);
      ASSERT_EQ(baseline.Count(p), expect) << "step " << step;
      ASSERT_EQ(tree.Count(p), expect) << "step " << step;
      // Occurrence multisets of (offset) must match too (doc ids differ
      // across implementations, offsets must agree as multisets).
      auto offs = [](std::vector<Occurrence> v) {
        std::vector<uint64_t> o;
        for (const auto& x : v) o.push_back(x.offset);
        std::sort(o.begin(), o.end());
        return o;
      };
      ASSERT_EQ(offs(ours.Find(p)), offs(baseline.Find(p))) << "step " << step;
    }
  }
}

// Long pipeline: generator -> T2 threaded -> deletions -> extraction equals
// original bytes even across merges, purges and global rebases.
TEST(IntegrationTest, ContentSurvivesAllRebuildPaths) {
  T2Options opt;
  opt.min_c0 = 64;
  opt.tau = 4;
  opt.mode = RebuildMode::kThreaded;
  DynamicCollectionT2<FmIndex> coll(opt);
  Rng rng(323);
  std::map<DocId, std::vector<Symbol>> model;
  for (int i = 0; i < 150; ++i) {
    auto doc = MarkovText(rng, rng.Range(10, 400), 16);
    model.emplace(coll.Insert(doc), doc);
  }
  // Delete enough to trigger purges and merges.
  int k = 0;
  for (auto it = model.begin(); it != model.end();) {
    if (++k % 3 == 0) {
      coll.Erase(it->first);
      it = model.erase(it);
    } else {
      ++it;
    }
  }
  coll.ForceAllPending();
  for (const auto& [id, doc] : model) {
    ASSERT_EQ(coll.Extract(id, 0, doc.size()), doc) << "doc " << id;
  }
}

}  // namespace
}  // namespace dyndex
