#include "bits/rank_select.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace dyndex {
namespace {

// Parameterized over (size, density-percent).
class RankSelectTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {
 protected:
  void Build() {
    auto [n, density] = GetParam();
    n_ = n;
    BitVector b(n);
    Rng rng(n * 131 + density);
    bits_.assign(n, false);
    for (uint64_t i = 0; i < n; ++i) {
      bits_[i] = rng.Below(100) < static_cast<uint64_t>(density);
      b.Set(i, bits_[i]);
    }
    rs_.Build(std::move(b));
  }

  uint64_t n_ = 0;
  std::vector<bool> bits_;
  RankSelect rs_;
};

TEST_P(RankSelectTest, RankMatchesNaive) {
  Build();
  uint64_t r = 0;
  for (uint64_t i = 0; i <= n_; ++i) {
    ASSERT_EQ(rs_.Rank1(i), r) << i;
    ASSERT_EQ(rs_.Rank0(i), i - r) << i;
    if (i < n_ && bits_[i]) ++r;
  }
  EXPECT_EQ(rs_.ones(), r);
}

TEST_P(RankSelectTest, SelectMatchesNaive) {
  Build();
  uint64_t k1 = 0, k0 = 0;
  for (uint64_t i = 0; i < n_; ++i) {
    if (bits_[i]) {
      ASSERT_EQ(rs_.Select1(k1), i) << k1;
      ++k1;
    } else {
      ASSERT_EQ(rs_.Select0(k0), i) << k0;
      ++k0;
    }
  }
}

TEST_P(RankSelectTest, RankSelectInverse) {
  Build();
  for (uint64_t k = 0; k < rs_.ones(); k += 7) {
    uint64_t p = rs_.Select1(k);
    EXPECT_EQ(rs_.Rank1(p), k);
    EXPECT_TRUE(rs_.Get(p));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RankSelectTest,
    ::testing::Combine(::testing::Values(1, 63, 64, 65, 511, 512, 513, 4096,
                                         100000),
                       ::testing::Values(0, 1, 50, 99, 100)));

TEST(RankSelectBasic, AllOnes) {
  RankSelect rs(BitVector(1000, true));
  EXPECT_EQ(rs.ones(), 1000u);
  EXPECT_EQ(rs.Rank1(777), 777u);
  EXPECT_EQ(rs.Select1(999), 999u);
}

TEST(RankSelectBasic, Empty) {
  RankSelect rs{BitVector(0)};
  EXPECT_EQ(rs.ones(), 0u);
  EXPECT_EQ(rs.Rank1(0), 0u);
}

}  // namespace
}  // namespace dyndex
