// Direct unit coverage of relation/fast_relation.h representation edges the
// differential fuzzer reaches only probabilistically: the exact inline->hash
// promotion and demotion boundaries, tombstone reuse and rehash, sticky
// empty sets, sparse ids across page-directory growth, sentinel-adjacent
// ids, and honest space accounting.
#include "relation/fast_relation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace dyndex {
namespace {

std::vector<uint32_t> SortedLabels(const FastRelation& rel, uint32_t object) {
  std::vector<uint32_t> out;
  rel.ForEachLabelOfObject(object, [&](uint32_t a) { out.push_back(a); });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(FastRelationTest, PromotionAndDemotionBoundary) {
  FastRelationOptions opt;
  opt.inline_threshold = 4;
  FastRelation rel(opt);
  // Grow one object's set through the inline threshold...
  for (uint32_t a = 0; a < 16; ++a) {
    ASSERT_TRUE(rel.AddPair(7, a));
    ASSERT_FALSE(rel.AddPair(7, a));  // duplicate
    rel.CheckInvariants();
    ASSERT_EQ(rel.CountLabelsOf(7), a + 1);
    for (uint32_t b = 0; b <= a; ++b) ASSERT_TRUE(rel.Related(7, b));
  }
  std::vector<uint32_t> all(16);
  for (uint32_t a = 0; a < 16; ++a) all[a] = a;
  ASSERT_EQ(SortedLabels(rel, 7), all);
  // ...and shrink it back through the demotion point (size < threshold/2).
  for (uint32_t a = 15; a != UINT32_MAX; --a) {
    ASSERT_TRUE(rel.RemovePair(7, a));
    ASSERT_FALSE(rel.RemovePair(7, a));  // already gone
    rel.CheckInvariants();
    ASSERT_EQ(rel.CountLabelsOf(7), a);
  }
  ASSERT_EQ(rel.num_pairs(), 0u);
  // The emptied set is sticky; it must keep working.
  ASSERT_FALSE(rel.Related(7, 3));
  ASSERT_TRUE(rel.AddPair(7, 3));
  ASSERT_EQ(SortedLabels(rel, 7), std::vector<uint32_t>{3});
  rel.CheckInvariants();
}

TEST(FastRelationTest, TombstoneChurnInHashMode) {
  FastRelationOptions opt;
  opt.inline_threshold = 2;  // hash almost immediately, demote below 1
  FastRelation rel(opt);
  Rng rng(1234);
  std::vector<bool> present(64, false);
  uint64_t live = 0;
  // Add/remove churn against one object keeps the set in hash mode and
  // cycles slots through value -> tombstone -> value.
  for (int step = 0; step < 4000; ++step) {
    uint32_t a = static_cast<uint32_t>(rng.Below(64));
    if (rng.Chance(0.5)) {
      ASSERT_EQ(rel.AddPair(9, a), !present[a]) << "step=" << step;
      if (!present[a]) {
        present[a] = true;
        ++live;
      }
    } else {
      ASSERT_EQ(rel.RemovePair(9, a), static_cast<bool>(present[a]))
          << "step=" << step;
      if (present[a]) {
        present[a] = false;
        --live;
      }
    }
    ASSERT_EQ(rel.CountLabelsOf(9), live);
    if (step % 257 == 0) rel.CheckInvariants();
  }
  rel.CheckInvariants();
}

TEST(FastRelationTest, SparseIdsAcrossPageGrowth) {
  FastRelation rel;
  // Ids spread over many 4096-entry pages, added out of order, force the
  // top table to grow and republish while earlier pages stay reachable.
  const std::vector<uint32_t> objects = {5,        4096,      4095,
                                         1u << 20, 1u << 24,  (1u << 24) + 1,
                                         77,       3u << 22,  fast_internal::kMaxId};
  uint32_t label = 0;
  for (uint32_t o : objects) {
    ASSERT_TRUE(rel.AddPair(o, label));
    ASSERT_TRUE(rel.AddPair(o, label + 1));
    ++label;
  }
  label = 0;
  for (uint32_t o : objects) {
    ASSERT_TRUE(rel.Related(o, label));
    ASSERT_TRUE(rel.Related(o, label + 1));
    ASSERT_EQ(rel.CountLabelsOf(o), 2u);
    ++label;
  }
  ASSERT_EQ(rel.num_pairs(), 2 * objects.size());
  // Labels are sparse too (reverse directory exercises the same growth).
  ASSERT_TRUE(rel.AddPair(1, fast_internal::kMaxId));
  ASSERT_TRUE(rel.Related(1, fast_internal::kMaxId));
  ASSERT_EQ(rel.CountObjectsOf(fast_internal::kMaxId),
            1u);
  rel.CheckInvariants();
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  rel.ExportLivePairs(&pairs);
  ASSERT_EQ(pairs.size(), rel.num_pairs());
  ASSERT_TRUE(std::is_sorted(pairs.begin(), pairs.end()));
}

TEST(FastRelationTest, BulkIntoExistingSetsMergesOnce) {
  FastRelation rel;
  ASSERT_TRUE(rel.AddPair(3, 10));
  ASSERT_TRUE(rel.AddPair(3, 30));
  ASSERT_TRUE(rel.AddPair(4, 10));
  // Batch overlaps live pairs, repeats itself, and extends set 3 past the
  // default inline threshold in one go.
  std::vector<std::pair<uint32_t, uint32_t>> batch;
  for (uint32_t a = 0; a < 20; ++a) batch.push_back({3, a});
  batch.push_back({3, 10});  // duplicate within batch and vs live
  batch.push_back({4, 10});  // duplicate vs live
  batch.push_back({5, 1});
  // Fresh pairs: (3, 0..19) minus the live (3,10) = 19, plus (5,1) = 20.
  ASSERT_EQ(rel.AddPairsBulk(batch), 20u);
  ASSERT_EQ(rel.CountLabelsOf(3), 21u);  // {0..19} plus the pre-existing 30
  ASSERT_EQ(rel.CountObjectsOf(10), 2u);
  rel.CheckInvariants();
  // Reverse side answers through the mirror only.
  std::vector<uint32_t> of10;
  rel.ForEachObjectOfLabel(10, [&](uint32_t o) { of10.push_back(o); });
  std::sort(of10.begin(), of10.end());
  ASSERT_EQ(of10, (std::vector<uint32_t>{3, 4}));
}

TEST(FastRelationTest, SpaceBytesIsHonestAndGrows) {
  FastRelation rel;
  const uint64_t empty = rel.SpaceBytes();
  ASSERT_GT(empty, 0u);
  Rng rng(99);
  std::vector<std::pair<uint32_t, uint32_t>> batch;
  for (int i = 0; i < 20000; ++i) {
    batch.push_back({static_cast<uint32_t>(rng.Below(512)),
                     static_cast<uint32_t>(rng.Below(512))});
  }
  rel.AddPairsBulk(batch);
  const uint64_t loaded = rel.SpaceBytes();
  // Two directions of uint32 slots at <= 100% load plus directory overhead:
  // at least 8 bytes/pair, and growth must be monotone with content.
  ASSERT_GT(loaded, empty);
  ASSERT_GE(loaded, rel.num_pairs() * 8);
  rel.CheckInvariants();
}

TEST(FastRelationTest, BuildMatchesIncrementalTwin) {
  Rng rng(31337);
  std::vector<std::pair<uint32_t, uint32_t>> batch;
  for (int i = 0; i < 5000; ++i) {
    batch.push_back({static_cast<uint32_t>(rng.Below(300)),
                     static_cast<uint32_t>(rng.Below(200))});
  }
  FastRelation built;
  built.Build(batch);
  FastRelation incremental;
  for (auto [o, a] : batch) incremental.AddPair(o, a);
  ASSERT_EQ(built.num_pairs(), incremental.num_pairs());
  std::vector<std::pair<uint32_t, uint32_t>> a, b;
  built.ExportLivePairs(&a);
  incremental.ExportLivePairs(&b);
  ASSERT_EQ(a, b);
  built.CheckInvariants();
  incremental.CheckInvariants();
}

}  // namespace
}  // namespace dyndex
