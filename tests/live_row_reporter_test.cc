#include "bits/live_row_reporter.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace dyndex {
namespace {

// Both reporter layouts must behave identically; test them through a common
// template fixture.
template <typename T>
class LiveBitsTest : public ::testing::Test {};

using Layouts = ::testing::Types<LiveBitsPlain, LiveBitsSparse>;
TYPED_TEST_SUITE(LiveBitsTest, Layouts);

TYPED_TEST(LiveBitsTest, AllLiveInitially) {
  TypeParam lb(300);
  EXPECT_EQ(lb.dead_count(), 0u);
  std::vector<uint64_t> rows;
  lb.ReportLive(0, 300, &rows);
  ASSERT_EQ(rows.size(), 300u);
  for (uint64_t i = 0; i < 300; ++i) EXPECT_EQ(rows[i], i);
}

TYPED_TEST(LiveBitsTest, KillAndReport) {
  TypeParam lb(200);
  for (uint64_t i = 0; i < 200; i += 2) lb.Kill(i);
  EXPECT_EQ(lb.dead_count(), 100u);
  std::vector<uint64_t> rows;
  lb.ReportLive(10, 20, &rows);
  EXPECT_EQ(rows, (std::vector<uint64_t>{11, 13, 15, 17, 19}));
  EXPECT_FALSE(lb.IsLive(10));
  EXPECT_TRUE(lb.IsLive(11));
}

TYPED_TEST(LiveBitsTest, KillIsIdempotent) {
  TypeParam lb(10);
  lb.Kill(5);
  lb.Kill(5);
  EXPECT_EQ(lb.dead_count(), 1u);
}

TYPED_TEST(LiveBitsTest, RandomModel) {
  uint64_t n = 5000;
  TypeParam lb(n, /*with_counting=*/true);
  std::vector<bool> model(n, true);
  Rng rng(99);
  for (int step = 0; step < 3000; ++step) {
    uint64_t i = rng.Below(n);
    lb.Kill(i);
    model[i] = false;
    if (step % 50 == 0) {
      uint64_t s = rng.Below(n);
      uint64_t e = s + rng.Below(n - s + 1);
      std::vector<uint64_t> got;
      lb.ReportLive(s, e, &got);
      std::vector<uint64_t> expect;
      uint64_t live = 0;
      for (uint64_t j = s; j < e; ++j) {
        if (model[j]) {
          expect.push_back(j);
          ++live;
        }
      }
      ASSERT_EQ(got, expect) << "[" << s << "," << e << ")";
      ASSERT_EQ(lb.CountLive(s, e), live);
    }
  }
}

TYPED_TEST(LiveBitsTest, CountingOnFullAndEmptyRanges) {
  TypeParam lb(1000, /*with_counting=*/true);
  EXPECT_EQ(lb.CountLive(0, 1000), 1000u);
  EXPECT_EQ(lb.CountLive(500, 500), 0u);
  for (uint64_t i = 100; i < 200; ++i) lb.Kill(i);
  EXPECT_EQ(lb.CountLive(0, 1000), 900u);
  EXPECT_EQ(lb.CountLive(100, 200), 0u);
  EXPECT_EQ(lb.CountLive(99, 201), 2u);
  EXPECT_EQ(lb.CountLive(150, 160), 0u);
}

TYPED_TEST(LiveBitsTest, WordBoundaryKills) {
  TypeParam lb(256, /*with_counting=*/true);
  for (uint64_t i : {0ull, 63ull, 64ull, 127ull, 128ull, 255ull}) lb.Kill(i);
  std::vector<uint64_t> rows;
  lb.ReportLive(0, 256, &rows);
  EXPECT_EQ(rows.size(), 250u);
  EXPECT_EQ(lb.CountLive(0, 256), 250u);
  EXPECT_EQ(lb.CountLive(63, 65), 0u);
}

TYPED_TEST(LiveBitsTest, KillEverything) {
  TypeParam lb(130, /*with_counting=*/true);
  for (uint64_t i = 0; i < 130; ++i) lb.Kill(i);
  EXPECT_EQ(lb.dead_count(), 130u);
  std::vector<uint64_t> rows;
  lb.ReportLive(0, 130, &rows);
  EXPECT_TRUE(rows.empty());
  EXPECT_EQ(lb.CountLive(0, 130), 0u);
}

TEST(LiveBitsSpace, SparseUsesLessWhenFewDead) {
  uint64_t n = 1 << 20;
  LiveBitsPlain plain(n);
  LiveBitsSparse sparse(n);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    uint64_t p = rng.Below(n);
    plain.Kill(p);
    sparse.Kill(p);
  }
  // The Lemma-3 layout must be far smaller than the Lemma-2 layout when the
  // number of dead rows is tiny.
  EXPECT_LT(sparse.SpaceBytes() * 10, plain.SpaceBytes());
}

}  // namespace
}  // namespace dyndex
