// Differential recovery fuzzer: the fault-injection proof of the durability
// tentpole. Each seed drives a durable facade through random churn (insert /
// erase batches, random checkpoints, random group-commit window), then kills
// the "machine" at a random point — clean power cut, torn tail, truncated
// log, or a bit flip in the WAL or the snapshot — and recovers into a fresh
// facade.
//
// The verdict, per seed, must be one of exactly two things:
//   * recovery succeeds and the recovered state is byte-for-byte the
//     reference model at some batch prefix (reported, not guessed: the
//     prefix is snapshot_seq + replayed_batches), or
//   * recovery fails LOUDLY (checksum / format error) and serves nothing.
// A recovered facade that answers queries differently from every recorded
// prefix is the one forbidden outcome — silent wrong answers.
//
// 450 seeded kill points (300 document-index, 150 relation) run in tier 1
// and under ASan in CI; the crash-loop job repeats them under TSan as well.

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "persist/env.h"
#include "persist/status.h"
#include "serve/concurrent_index.h"
#include "serve/concurrent_relation.h"
#include "serve/dynamic_index.h"
#include "serve/persistence.h"
#include "serve/relation_index.h"
#include "util/rng.h"

namespace dyndex {
namespace {

using persist::MemEnv;

using DocModel = std::map<DocId, std::vector<Symbol>>;
using PairModel = std::set<std::pair<uint32_t, uint32_t>>;

enum KillMode : uint32_t {
  kPowerCut = 0,     // synced prefix + random torn tail
  kTruncateWal = 1,  // media loses a suffix of the log
  kFlipWalBit = 2,   // rot in the log
  kFlipSnapBit = 3,  // rot in the snapshot
  kNumKillModes = 4,
};

/// Crashes the process (drop unsynced buffers) and then applies the chosen
/// media fault. Returns true when the fault may legitimately make recovery
/// fail loudly (structural damage), false when recovery must succeed.
bool Kill(MemEnv& env, Rng& rng, KillMode mode) {
  if (mode == kPowerCut) {
    env.SimulateCrash(rng.Below(48));
    return false;  // a pure power cut never damages synced bytes
  }
  env.SimulateCrash();
  uint64_t wal_size = 0, snap_size = 0;
  const bool has_wal = env.GetFileSize("db/WAL", &wal_size).ok();
  const bool has_snap = env.GetFileSize("db/SNAPSHOT", &snap_size).ok();
  switch (mode) {
    case kTruncateWal:
      if (!has_wal || wal_size == 0) return false;
      EXPECT_TRUE(env.TruncateFile("db/WAL", rng.Below(wal_size)).ok());
      return true;  // may cut the 8-byte log header mid-way
    case kFlipWalBit:
      if (!has_wal || wal_size == 0) return false;
      EXPECT_TRUE(env.CorruptByte("db/WAL", rng.Below(wal_size),
                                  static_cast<uint8_t>(1u << rng.Below(8)))
                      .ok());
      return true;  // may hit the header magic
    case kFlipSnapBit:
      if (!has_snap || snap_size == 0) return false;  // no snapshot yet
      EXPECT_TRUE(env.CorruptByte("db/SNAPSHOT", rng.Below(snap_size),
                                  static_cast<uint8_t>(1u << rng.Below(8)))
                      .ok());
      return true;  // every snapshot flip must be loud
    default:
      return false;
  }
}

std::vector<Symbol> RandomDoc(Rng& rng) {
  std::vector<Symbol> doc(3 + rng.Below(6));
  for (Symbol& s : doc) {
    s = kMinSymbol + static_cast<Symbol>(rng.Below(12));
  }
  return doc;
}

void ExpectIndexMatches(ConcurrentIndex& index, const DocModel& model) {
  ASSERT_EQ(index.num_docs(), model.size());
  for (const auto& [id, symbols] : model) {
    std::vector<Symbol> got;
    ASSERT_TRUE(index.Extract(id, 0, symbols.size(), &got)) << "id=" << id;
    ASSERT_EQ(got, symbols) << "id=" << id;
  }
}

void RunIndexSeed(uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  Rng rng(seed);
  MemEnv env;
  const Backend backend =
      seed % 2 == 0 ? Backend::kT1 : Backend::kBaseline;
  DurableOptions opt;
  opt.sync_every_batches = rng.Chance(0.3) ? 2 : 1;

  // Drive the churn, recording the reference model after every batch:
  // prefix[k] is the exact logical state after the first k batches.
  DocModel model;
  std::vector<DocModel> prefix = {model};
  const uint32_t batches = 6 + rng.Below(4);
  {
    ConcurrentIndex index(MakeDynamicIndex(backend));
    ASSERT_TRUE(index.OpenDurable(&env, "db", opt).ok());
    for (uint32_t b = 0; b < batches; ++b) {
      if (!model.empty() && rng.Chance(0.35)) {
        std::vector<DocId> dead;
        const uint32_t n = 1 + rng.Below(2);
        for (uint32_t i = 0; i < n && !model.empty(); ++i) {
          auto victim = std::next(model.begin(), rng.Below(model.size()));
          dead.push_back(victim->first);
          model.erase(victim);
        }
        ASSERT_EQ(index.EraseBatch(dead), dead.size());
      } else {
        std::vector<std::vector<Symbol>> docs(1 + rng.Below(3));
        for (auto& doc : docs) doc = RandomDoc(rng);
        std::vector<DocId> ids = index.InsertBatch(docs);
        ASSERT_EQ(ids.size(), docs.size());
        for (size_t d = 0; d < docs.size(); ++d) model[ids[d]] = docs[d];
      }
      prefix.push_back(model);
      if (rng.Chance(0.25)) {
        ASSERT_TRUE(index.Checkpoint().ok());
      }
    }
    // The facade is dropped without CloseDurable — this *is* the crash.
  }
  const KillMode mode = static_cast<KillMode>(rng.Below(kNumKillModes));
  const bool may_fail_loudly = Kill(env, rng, mode);

  ConcurrentIndex recovered(MakeDynamicIndex(backend));
  RecoveryStats stats;
  persist::Status s = recovered.OpenDurable(&env, "db", opt, &stats);
  if (s.ok()) {
    const uint64_t p = stats.snapshot_seq + stats.replayed_batches;
    ASSERT_LT(p, prefix.size()) << "recovered past the last batch";
    ExpectIndexMatches(recovered, prefix[p]);
    if (mode == kPowerCut && opt.sync_every_batches == 1) {
      // Every batch was fsync'd before the power cut: zero loss allowed.
      ASSERT_EQ(p, batches);
    }
  } else {
    ASSERT_TRUE(may_fail_loudly)
        << "mode " << mode << " must recover, got: " << s.ToString();
    ASSERT_TRUE(s.IsCorruption()) << s.ToString();
    ASSERT_EQ(recovered.num_docs(), 0u) << "loud failure must serve nothing";
  }
}

void ExpectRelationMatches(ConcurrentRelation& relation, const PairModel& model,
                           const PairModel& universe) {
  ASSERT_EQ(relation.num_pairs(), model.size());
  for (const auto& [object, label] : universe) {
    ASSERT_EQ(relation.Related(object, label),
              model.count({object, label}) != 0)
        << object << " -> " << label;
  }
}

void RunRelationSeed(uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  Rng rng(seed);
  MemEnv env;
  const RelationBackend backend = seed % 3 == 0 ? RelationBackend::kTheorem2
                                  : seed % 3 == 1
                                      ? RelationBackend::kGraph
                                      : RelationBackend::kFast;
  DurableOptions opt;
  opt.sync_every_batches = rng.Chance(0.3) ? 2 : 1;

  PairModel model;
  PairModel universe;  // every pair this seed ever touched
  std::vector<PairModel> prefix = {model};
  const uint32_t batches = 6 + rng.Below(4);
  {
    ConcurrentRelation relation(MakeRelationIndex(backend));
    ASSERT_TRUE(relation.OpenDurable(&env, "db", opt).ok());
    for (uint32_t b = 0; b < batches; ++b) {
      if (!model.empty() && rng.Chance(0.35)) {
        RelationPairs dead;
        const uint32_t n = 1 + rng.Below(3);
        for (uint32_t i = 0; i < n && !model.empty(); ++i) {
          auto victim = std::next(model.begin(), rng.Below(model.size()));
          dead.push_back(*victim);
          model.erase(victim);
        }
        ASSERT_EQ(relation.RemovePairsBatch(dead), dead.size());
      } else {
        RelationPairs fresh;
        const uint32_t n = 1 + rng.Below(4);
        for (uint32_t i = 0; i < n; ++i) {
          std::pair<uint32_t, uint32_t> p = {rng.Below(24), rng.Below(16)};
          if (model.insert(p).second) fresh.push_back(p);
          universe.insert(p);
        }
        // A batch whose pairs were all duplicates is empty; it still logs
        // (one frame, one epoch bump) and its model prefix is unchanged.
        ASSERT_EQ(relation.AddPairsBatch(fresh), fresh.size());
      }
      prefix.push_back(model);
      if (rng.Chance(0.25)) {
        ASSERT_TRUE(relation.Checkpoint().ok());
      }
    }
  }
  const KillMode mode = static_cast<KillMode>(rng.Below(kNumKillModes));
  const bool may_fail_loudly = Kill(env, rng, mode);

  ConcurrentRelation recovered(MakeRelationIndex(backend));
  RecoveryStats stats;
  persist::Status s = recovered.OpenDurable(&env, "db", opt, &stats);
  if (s.ok()) {
    const uint64_t p = stats.snapshot_seq + stats.replayed_batches;
    ASSERT_LT(p, prefix.size()) << "recovered past the last batch";
    ExpectRelationMatches(recovered, prefix[p], universe);
    if (mode == kPowerCut && opt.sync_every_batches == 1) {
      ASSERT_EQ(p, batches);
    }
  } else {
    ASSERT_TRUE(may_fail_loudly)
        << "mode " << mode << " must recover, got: " << s.ToString();
    ASSERT_TRUE(s.IsCorruption()) << s.ToString();
    ASSERT_EQ(recovered.num_pairs(), 0u) << "loud failure must serve nothing";
  }
}

TEST(PersistRecoveryFuzzTest, IndexKillPointsBank0) {
  for (uint64_t seed = 0; seed < 150; ++seed) RunIndexSeed(seed);
}

TEST(PersistRecoveryFuzzTest, IndexKillPointsBank1) {
  for (uint64_t seed = 150; seed < 300; ++seed) RunIndexSeed(seed);
}

TEST(PersistRecoveryFuzzTest, RelationKillPoints) {
  for (uint64_t seed = 1000; seed < 1150; ++seed) RunRelationSeed(seed);
}

}  // namespace
}  // namespace dyndex
