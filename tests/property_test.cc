// Property-based tests: structural invariants that must hold for any input,
// plus the differential model check (tests/model_checker.h) run against every
// dynamic backend through the serve-layer DynamicIndex facade.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "gen/text_gen.h"
#include "seq/wavelet_tree.h"
#include "serve/dynamic_index.h"
#include "tests/model_checker.h"
#include "text/fm_index.h"
#include "text/packed_sa_index.h"
#include "util/rng.h"

namespace dyndex {
namespace {

class FmPropertyTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  void Build(uint64_t n) {
    uint32_t sigma = GetParam();
    Rng rng(sigma * 7 + n);
    docs_ = RandomDocs(rng, 6, n / 8, n / 4, sigma);
    std::vector<Document> d;
    for (uint32_t i = 0; i < docs_.size(); ++i) d.push_back({i, docs_[i]});
    text_ = ConcatText(d);
    FmIndex::Options opt;
    opt.sample_rate = 4;
    idx_ = FmIndex::Build(text_, opt);
  }

  std::vector<std::vector<Symbol>> docs_;
  ConcatText text_;
  FmIndex idx_;
};

// LF is a permutation of the rows.
TEST_P(FmPropertyTest, LfIsAPermutation) {
  Build(400);
  std::set<uint64_t> images;
  for (uint64_t row = 0; row < idx_.NumRows(); ++row) {
    uint64_t lf = idx_.LF(row);
    ASSERT_LT(lf, idx_.NumRows());
    ASSERT_TRUE(images.insert(lf).second) << "LF not injective at " << row;
  }
}

// Iterating LF from row 0 visits every row exactly once (one cycle through
// the whole text: the BWT's defining property for a sentinel-terminated
// concatenation).
TEST_P(FmPropertyTest, LfIsASingleCycle) {
  Build(300);
  uint64_t row = 0;
  std::set<uint64_t> visited;
  for (uint64_t k = 0; k < idx_.NumRows(); ++k) {
    ASSERT_TRUE(visited.insert(row).second) << "cycle shorter than n at " << k;
    row = idx_.LF(row);
  }
  EXPECT_EQ(row, 0u);  // back to the sentinel row
  EXPECT_EQ(visited.size(), idx_.NumRows());
}

// Locate over the full row set is a permutation of text positions.
TEST_P(FmPropertyTest, LocateIsAPermutationOfPositions) {
  Build(250);
  std::set<uint64_t> positions;
  for (uint64_t row = 0; row < idx_.NumRows(); ++row) {
    uint64_t pos = idx_.Locate(row);
    ASSERT_LE(pos, idx_.TextSize());
    ASSERT_TRUE(positions.insert(pos).second);
  }
  EXPECT_EQ(positions.size(), idx_.NumRows());
}

// Find ranges for the sigma single-symbol patterns partition the rows
// holding text symbols (plus sentinel and separator rows).
TEST_P(FmPropertyTest, SingleSymbolRangesPartitionRows) {
  Build(300);
  uint64_t covered = 0;
  uint64_t prev_end = 0;
  for (Symbol c = kMinSymbol; c < text_.sigma(); ++c) {
    RowRange r = idx_.Find(&c, 1);
    if (r.empty()) continue;
    ASSERT_GE(r.begin, prev_end);  // ranges ordered and disjoint
    prev_end = r.end;
    covered += r.size();
  }
  // Rows = sentinel (1) + separators (num docs) + symbol rows.
  EXPECT_EQ(covered + 1 + text_.num_docs(), idx_.NumRows());
}

INSTANTIATE_TEST_SUITE_P(Alphabets, FmPropertyTest,
                         ::testing::Values(2u, 4u, 26u, 200u));

// Wavelet tree: sum of Rank over all symbols at any prefix equals the prefix
// length (rank partition law).
TEST(WaveletProperty, RanksPartitionEveryPrefix) {
  Rng rng(5);
  uint32_t sigma = 17;
  std::vector<uint32_t> data(800);
  for (auto& v : data) v = static_cast<uint32_t>(rng.Below(sigma));
  WaveletTree wt(data, sigma);
  for (uint64_t i = 0; i <= data.size(); i += 37) {
    uint64_t sum = 0;
    for (uint32_t c = 0; c < sigma; ++c) sum += wt.Rank(c, i);
    ASSERT_EQ(sum, i);
  }
}

// PackedSaIndex: SA and ISA are mutually inverse permutations.
TEST(PackedSaProperty, SaIsaInverse) {
  Rng rng(6);
  auto docs = RandomDocs(rng, 4, 50, 150, 8);
  std::vector<Document> d;
  for (uint32_t i = 0; i < docs.size(); ++i) d.push_back({i, docs[i]});
  PackedSaIndex idx = PackedSaIndex::Build(ConcatText(d), {});
  std::set<uint64_t> seen;
  for (uint64_t row = 0; row < idx.NumRows(); ++row) {
    uint64_t pos = idx.Locate(row);
    ASSERT_TRUE(seen.insert(pos).second);
  }
  EXPECT_EQ(seen.size(), idx.NumRows());
}

// Suffixes in SA order are lexicographically sorted (checked via Extract on
// a prefix window).
TEST(PackedSaProperty, RowsAreSorted) {
  Rng rng(7);
  auto docs = RandomDocs(rng, 3, 40, 80, 4);
  std::vector<Document> d;
  for (uint32_t i = 0; i < docs.size(); ++i) d.push_back({i, docs[i]});
  ConcatText text(d);
  PackedSaIndex idx = PackedSaIndex::Build(text, {});
  auto suffix_prefix = [&](uint64_t row) {
    uint64_t pos = idx.Locate(row);
    uint64_t len = std::min<uint64_t>(12, idx.TextSize() + 1 - pos);
    std::vector<Symbol> out;
    // Read from the raw concatenation (simplest ground truth).
    for (uint64_t i = 0; i < len; ++i) {
      out.push_back(pos + i < text.symbols().size() ? text.symbols()[pos + i]
                                                    : kSentinel);
    }
    return out;
  };
  for (uint64_t row = 1; row < idx.NumRows(); ++row) {
    auto a = suffix_prefix(row - 1);
    auto b = suffix_prefix(row);
    ASSERT_LE(a, b) << "row " << row;
  }
}

// Differential model check: every backend behind the DynamicIndex facade must
// agree with the naive string-scan ReferenceModel on a seeded random op
// sequence. A failure prints the seed/step/backend for a one-token repro.
class DifferentialBackendTest : public ::testing::TestWithParam<Backend> {
 protected:
  static DynamicIndexOptions SmallOptions() {
    DynamicIndexOptions opt;
    opt.min_c0 = 64;  // force frequent level rebuilds
    opt.tau = 4;
    return opt;
  }
};

TEST_P(DifferentialBackendTest, SeededChurnMatchesModel) {
  for (uint64_t seed : {101ull, 202ull, 303ull}) {
    auto index = MakeDynamicIndex(GetParam(), SmallOptions());
    ChurnConfig cfg;
    cfg.steps = 400;
    RunDifferentialChurn(*index, seed, cfg);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_P(DifferentialBackendTest, WideAlphabetChurnMatchesModel) {
  auto opt = SmallOptions();
  opt.baseline_max_symbol = 2 + 64;
  auto index = MakeDynamicIndex(GetParam(), opt);
  ChurnConfig cfg;
  cfg.steps = 250;
  cfg.sigma = 64;
  cfg.max_doc_len = 40;
  RunDifferentialChurn(*index, 404, cfg);
}

TEST_P(DifferentialBackendTest, DeleteHeavyChurnMatchesModel) {
  auto index = MakeDynamicIndex(GetParam(), SmallOptions());
  ChurnConfig cfg;
  cfg.steps = 300;
  cfg.insert_weight = 4;
  cfg.erase_weight = 4;
  RunDifferentialChurn(*index, 505, cfg);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, DifferentialBackendTest,
                         ::testing::Values(Backend::kT1, Backend::kT2,
                                           Backend::kT3, Backend::kBaseline),
                         [](const auto& info) {
                           return std::string(BackendName(info.param));
                         });

// Transformation 2 with real builder threads must stay consistent while
// builds are in flight: check queries after every single op.
TEST(DifferentialT2Threaded, EveryStepConsistentDuringBackgroundBuilds) {
  DynamicIndexOptions opt;
  opt.min_c0 = 64;
  opt.tau = 4;
  opt.mode = RebuildMode::kThreaded;
  auto index = MakeDynamicIndex(Backend::kT2, opt);
  ChurnConfig cfg;
  cfg.steps = 250;
  cfg.check_every_step = true;
  RunDifferentialChurn(*index, 606, cfg);
}

// Count is monotone under pattern extension: count(Pc) <= count(P).
TEST(FmProperty, CountMonotoneInPatternExtension) {
  Rng rng(8);
  auto docs = RandomDocs(rng, 5, 100, 200, 4);
  std::vector<Document> d;
  for (uint32_t i = 0; i < docs.size(); ++i) d.push_back({i, docs[i]});
  FmIndex idx = FmIndex::Build(ConcatText(d), {});
  for (int trial = 0; trial < 50; ++trial) {
    auto p = SamplePattern(rng, docs, 2, 4);
    RowRange r2 = idx.Find(p);
    for (Symbol c = kMinSymbol; c < kMinSymbol + 4; ++c) {
      auto ext = p;
      ext.push_back(c);
      ASSERT_LE(idx.Find(ext).size(), r2.size());
    }
  }
}

}  // namespace
}  // namespace dyndex
