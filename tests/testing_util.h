// Naive reference implementations shared by the test suite.
#ifndef DYNDEX_TESTS_TESTING_UTIL_H_
#define DYNDEX_TESTS_TESTING_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "text/concat_text.h"

namespace dyndex {

/// All (doc index, offset) occurrences of `pattern` in `docs`, sorted.
inline std::vector<std::pair<uint32_t, uint64_t>> NaiveOccurrences(
    const std::vector<std::vector<Symbol>>& docs,
    const std::vector<Symbol>& pattern) {
  std::vector<std::pair<uint32_t, uint64_t>> out;
  for (uint32_t d = 0; d < docs.size(); ++d) {
    const auto& doc = docs[d];
    if (pattern.empty() || doc.size() < pattern.size()) continue;
    for (uint64_t i = 0; i + pattern.size() <= doc.size(); ++i) {
      bool match = true;
      for (uint64_t j = 0; j < pattern.size(); ++j) {
        if (doc[i + j] != pattern[j]) {
          match = false;
          break;
        }
      }
      if (match) out.emplace_back(d, i);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Naive suffix array by sorting all suffix start positions.
inline std::vector<uint64_t> NaiveSuffixArray(const std::vector<Symbol>& text) {
  std::vector<uint64_t> sa(text.size());
  for (uint64_t i = 0; i < text.size(); ++i) sa[i] = i;
  std::sort(sa.begin(), sa.end(), [&](uint64_t a, uint64_t b) {
    while (a < text.size() && b < text.size()) {
      if (text[a] != text[b]) return text[a] < text[b];
      ++a;
      ++b;
    }
    return a == text.size() && b != text.size();
  });
  return sa;
}

}  // namespace dyndex

#endif  // DYNDEX_TESTS_TESTING_UTIL_H_
