// GOOD: the sleep happens after the guard's block closes, and a condition
// variable wait under the lock is the normal pattern (Wait releases the
// mutex while blocked — that is its contract), so neither may be flagged.
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

std::mutex mu;
std::condition_variable cv;
int count = 0;

void IncrementThenSleep() {
  {
    std::lock_guard<std::mutex> lock(mu);
    ++count;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

void WaitForCount() {
  std::unique_lock<std::mutex> lock(mu);
  while (count == 0) cv.wait(lock);
}
