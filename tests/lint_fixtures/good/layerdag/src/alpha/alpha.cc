// GOOD: a .cc additionally sees PRIVATE_DEPS closures (gamma), which its
// headers may not leak.
#include "alpha/alpha.h"

#include "gamma/gamma.h"

int AlphaImpl() { return AlphaValue(); }
