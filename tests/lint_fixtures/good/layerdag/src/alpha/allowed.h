// GOOD (via escape hatch): an undeclared include edge waived with an
// explicit, grep-able allow.
#include "gamma/gamma.h"  // lint:allow(layer-dag) fixture: proves the hatch

inline int AllowedValue() { return 2; }
