// GOOD: a public header may include its declared DEPS and their transitive
// public closure (beta publicly re-exports delta).
#include "alpha/other.h"  // own layer is always visible
#include "beta/beta.h"
#include "delta/delta.h"

inline int AlphaValue() { return 1; }
