// GOOD (via escape hatch): one real violation of each lexical rule, each
// suppressed by `// lint:allow(<rule>)` on the offending line or the line
// directly above. This file must lint clean — it proves the hatch.
#include <atomic>
#include <cassert>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

// lint:reader-shared
struct Suppressed {
  // lint:allow(reader-container) fixture: proves the hatch, not a pattern
  std::vector<int> values;
};

struct Node {
  int value = 0;
};

std::mutex mu;

class Holder {
 public:
  void Swap(Node* next) {
    // lint:allow(publish-retire) fixture: proves the hatch, not a pattern
    current_.store(next, std::memory_order_release);
  }

 private:
  std::atomic<Node*> current_{nullptr};
};

int Deref(const int* p) {
  assert(p != nullptr);  // lint:allow(no-assert)
  return *p;
}

void SlowIncrement() {
  std::lock_guard<std::mutex> lock(mu);
  // lint:allow(no-blocking-under-lock) fixture: proves the hatch
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
