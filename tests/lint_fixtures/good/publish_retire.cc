// GOOD: every snapshot publish Retires the displaced value in the same
// function, and nullptr stores (withdrawing a pointer) are exempt.
#include <atomic>
#include <memory>
#include <utility>

struct Node {
  int value = 0;
};

template <typename T>
void Retire(T&&) {}

class Holder {
 public:
  void Swap(std::unique_ptr<Node> next) {
    current_.store(next.get(), std::memory_order_release);
    Retire(std::move(owner_));
    owner_ = std::move(next);
  }

  void Drop() { current_.store(nullptr, std::memory_order_release); }

 private:
  std::unique_ptr<Node> owner_;
  std::atomic<Node*> current_{nullptr};
};
