// GOOD: a reader-shared type built from seqlock-safe parts — atomic install
// points and retire_vector storage — plus a std::vector in an UNMARKED
// writer-side type, which the rule must not touch.
#include <atomic>
#include <vector>

template <typename T>
class retire_vector;  // stand-in; the rule keys on the name

// lint:reader-shared
struct SnapshotTable {
  retire_vector<std::atomic<int*>>* slots = nullptr;
  std::atomic<SnapshotTable*> next{nullptr};
  int size = 0;

  // Methods may *return* containers; only member storage is constrained.
  std::vector<int> LiveSorted() const;
};

// Not marked reader-shared: writer-side bookkeeping may use std containers.
struct WriterState {
  std::vector<int> pending;
};
