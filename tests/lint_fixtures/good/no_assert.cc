// GOOD: DYNDEX_CHECK stays on in release builds; static_assert is a
// compile-time construct and is not the banned macro.
#define DYNDEX_CHECK(cond) \
  do {                     \
  } while (false)

static_assert(sizeof(int) >= 4, "ILP32 or wider");

int Deref(const int* p) {
  DYNDEX_CHECK(p != nullptr);
  return *p;
}
