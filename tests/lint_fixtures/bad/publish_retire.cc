// BAD: publishes a new snapshot pointer and deletes the displaced one
// directly instead of routing it through Retire — an optimistic reader that
// loaded the old pointer before the store may still be traversing it.
#include <atomic>

struct Node {
  int value = 0;
};

class Holder {
 public:
  void Swap(Node* next) {
    Node* old = current_.load(std::memory_order_relaxed);
    current_.store(next, std::memory_order_release);  // expect: [publish-retire]
    delete old;
  }

 private:
  std::atomic<Node*> current_{nullptr};
};
