// BAD: a reader-shared type holding a relocating std container. Growth of
// `children` moves the buffer while an optimistic reader may be walking it.
#include <vector>

// lint:reader-shared
struct TreeNode {
  std::vector<TreeNode*> children;  // expect: [reader-container]
  int value = 0;
};
