// BAD: sleeping while holding the mutex stalls every thread queued on it.
#include <chrono>
#include <mutex>
#include <thread>

std::mutex mu;
int count = 0;

void SlowIncrement() {
  std::lock_guard<std::mutex> lock(mu);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(10));  // expect: [no-blocking-under-lock]
  ++count;
}
