// BAD: assert() vanishes under NDEBUG, which is exactly the release build
// where torn-read validation still has to fire.
#include <cassert>

int Deref(const int* p) {
  assert(p != nullptr);  // expect: [no-assert]
  return *p;
}
