// BAD: alpha declares only beta in DEPS, so a public header reaching into
// gamma is a layering violation (and would not even compile in the real
// build, where include visibility follows the link graph).
#include "beta/beta.h"
#include "gamma/gamma.h"  // expect: [layer-dag]

inline int AlphaValue() { return 1; }
